file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_stalls.dir/bench_e5_stalls.cpp.o"
  "CMakeFiles/bench_e5_stalls.dir/bench_e5_stalls.cpp.o.d"
  "bench_e5_stalls"
  "bench_e5_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
