file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_chdl.dir/bench_a4_chdl.cpp.o"
  "CMakeFiles/bench_a4_chdl.dir/bench_a4_chdl.cpp.o.d"
  "bench_a4_chdl"
  "bench_a4_chdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_chdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
