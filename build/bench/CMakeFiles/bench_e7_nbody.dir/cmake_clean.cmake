file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_nbody.dir/bench_e7_nbody.cpp.o"
  "CMakeFiles/bench_e7_nbody.dir/bench_e7_nbody.cpp.o.d"
  "bench_e7_nbody"
  "bench_e7_nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
