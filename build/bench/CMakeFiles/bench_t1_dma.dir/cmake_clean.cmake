file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_dma.dir/bench_t1_dma.cpp.o"
  "CMakeFiles/bench_t1_dma.dir/bench_t1_dma.cpp.o.d"
  "bench_t1_dma"
  "bench_t1_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
