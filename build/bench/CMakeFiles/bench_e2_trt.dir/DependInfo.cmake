
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e2_trt.cpp" "bench/CMakeFiles/bench_e2_trt.dir/bench_e2_trt.cpp.o" "gcc" "bench/CMakeFiles/bench_e2_trt.dir/bench_e2_trt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trt/CMakeFiles/atlantis_trt.dir/DependInfo.cmake"
  "/root/repo/build/src/volren/CMakeFiles/atlantis_volren.dir/DependInfo.cmake"
  "/root/repo/build/src/nbody/CMakeFiles/atlantis_nbody.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/atlantis_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atlantis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/atlantis_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chdl/CMakeFiles/atlantis_chdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
