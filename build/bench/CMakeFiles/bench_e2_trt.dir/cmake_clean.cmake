file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_trt.dir/bench_e2_trt.cpp.o"
  "CMakeFiles/bench_e2_trt.dir/bench_e2_trt.cpp.o.d"
  "bench_e2_trt"
  "bench_e2_trt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_trt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
