# Empty dependencies file for bench_a3_aib_buffer.
# This may be replaced when dependencies are built.
