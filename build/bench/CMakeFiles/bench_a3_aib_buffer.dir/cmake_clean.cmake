file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_aib_buffer.dir/bench_a3_aib_buffer.cpp.o"
  "CMakeFiles/bench_a3_aib_buffer.dir/bench_a3_aib_buffer.cpp.o.d"
  "bench_a3_aib_buffer"
  "bench_a3_aib_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_aib_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
