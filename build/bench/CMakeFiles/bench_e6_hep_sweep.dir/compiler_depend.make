# Empty compiler generated dependencies file for bench_e6_hep_sweep.
# This may be replaced when dependencies are built.
