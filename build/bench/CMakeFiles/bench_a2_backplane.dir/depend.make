# Empty dependencies file for bench_a2_backplane.
# This may be replaced when dependencies are built.
