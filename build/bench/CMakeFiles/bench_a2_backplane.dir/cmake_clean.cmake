file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_backplane.dir/bench_a2_backplane.cpp.o"
  "CMakeFiles/bench_a2_backplane.dir/bench_a2_backplane.cpp.o.d"
  "bench_a2_backplane"
  "bench_a2_backplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_backplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
