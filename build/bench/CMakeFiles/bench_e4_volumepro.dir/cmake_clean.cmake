file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_volumepro.dir/bench_e4_volumepro.cpp.o"
  "CMakeFiles/bench_e4_volumepro.dir/bench_e4_volumepro.cpp.o.d"
  "bench_e4_volumepro"
  "bench_e4_volumepro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_volumepro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
