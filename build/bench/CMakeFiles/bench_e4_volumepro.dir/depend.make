# Empty dependencies file for bench_e4_volumepro.
# This may be replaced when dependencies are built.
