file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_volren.dir/bench_e3_volren.cpp.o"
  "CMakeFiles/bench_e3_volren.dir/bench_e3_volren.cpp.o.d"
  "bench_e3_volren"
  "bench_e3_volren.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_volren.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
