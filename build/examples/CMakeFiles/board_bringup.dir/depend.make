# Empty dependencies file for board_bringup.
# This may be replaced when dependencies are built.
