file(REMOVE_RECURSE
  "CMakeFiles/board_bringup.dir/board_bringup.cpp.o"
  "CMakeFiles/board_bringup.dir/board_bringup.cpp.o.d"
  "board_bringup"
  "board_bringup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/board_bringup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
