# Empty compiler generated dependencies file for volume_viewer.
# This may be replaced when dependencies are built.
