file(REMOVE_RECURSE
  "CMakeFiles/volume_viewer.dir/volume_viewer.cpp.o"
  "CMakeFiles/volume_viewer.dir/volume_viewer.cpp.o.d"
  "volume_viewer"
  "volume_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
