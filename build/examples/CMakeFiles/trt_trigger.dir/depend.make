# Empty dependencies file for trt_trigger.
# This may be replaced when dependencies are built.
