file(REMOVE_RECURSE
  "CMakeFiles/trt_trigger.dir/trt_trigger.cpp.o"
  "CMakeFiles/trt_trigger.dir/trt_trigger.cpp.o.d"
  "trt_trigger"
  "trt_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trt_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
