# Empty compiler generated dependencies file for edge_detect.
# This may be replaced when dependencies are built.
