# Empty dependencies file for galaxy_cluster.
# This may be replaced when dependencies are built.
