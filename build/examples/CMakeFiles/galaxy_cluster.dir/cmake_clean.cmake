file(REMOVE_RECURSE
  "CMakeFiles/galaxy_cluster.dir/galaxy_cluster.cpp.o"
  "CMakeFiles/galaxy_cluster.dir/galaxy_cluster.cpp.o.d"
  "galaxy_cluster"
  "galaxy_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galaxy_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
