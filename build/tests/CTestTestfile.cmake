# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/chdl_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/trt_test[1]_include.cmake")
include("/root/repo/build/tests/volren_test[1]_include.cmake")
include("/root/repo/build/tests/nbody_test[1]_include.cmake")
include("/root/repo/build/tests/imgproc_test[1]_include.cmake")
