file(REMOVE_RECURSE
  "CMakeFiles/hw_test.dir/hw/test_clock.cpp.o"
  "CMakeFiles/hw_test.dir/hw/test_clock.cpp.o.d"
  "CMakeFiles/hw_test.dir/hw/test_fpga.cpp.o"
  "CMakeFiles/hw_test.dir/hw/test_fpga.cpp.o.d"
  "CMakeFiles/hw_test.dir/hw/test_hostcpu.cpp.o"
  "CMakeFiles/hw_test.dir/hw/test_hostcpu.cpp.o.d"
  "CMakeFiles/hw_test.dir/hw/test_memory.cpp.o"
  "CMakeFiles/hw_test.dir/hw/test_memory.cpp.o.d"
  "CMakeFiles/hw_test.dir/hw/test_pci.cpp.o"
  "CMakeFiles/hw_test.dir/hw/test_pci.cpp.o.d"
  "CMakeFiles/hw_test.dir/hw/test_slink.cpp.o"
  "CMakeFiles/hw_test.dir/hw/test_slink.cpp.o.d"
  "hw_test"
  "hw_test.pdb"
  "hw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
