file(REMOVE_RECURSE
  "CMakeFiles/trt_test.dir/trt/test_events.cpp.o"
  "CMakeFiles/trt_test.dir/trt/test_events.cpp.o.d"
  "CMakeFiles/trt_test.dir/trt/test_geometry.cpp.o"
  "CMakeFiles/trt_test.dir/trt/test_geometry.cpp.o.d"
  "CMakeFiles/trt_test.dir/trt/test_histogram.cpp.o"
  "CMakeFiles/trt_test.dir/trt/test_histogram.cpp.o.d"
  "CMakeFiles/trt_test.dir/trt/test_hwmodel.cpp.o"
  "CMakeFiles/trt_test.dir/trt/test_hwmodel.cpp.o.d"
  "CMakeFiles/trt_test.dir/trt/test_multiboard.cpp.o"
  "CMakeFiles/trt_test.dir/trt/test_multiboard.cpp.o.d"
  "CMakeFiles/trt_test.dir/trt/test_patterns.cpp.o"
  "CMakeFiles/trt_test.dir/trt/test_patterns.cpp.o.d"
  "CMakeFiles/trt_test.dir/trt/test_slink_frontend.cpp.o"
  "CMakeFiles/trt_test.dir/trt/test_slink_frontend.cpp.o.d"
  "CMakeFiles/trt_test.dir/trt/test_trt_core.cpp.o"
  "CMakeFiles/trt_test.dir/trt/test_trt_core.cpp.o.d"
  "trt_test"
  "trt_test.pdb"
  "trt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
