# Empty compiler generated dependencies file for trt_test.
# This may be replaced when dependencies are built.
