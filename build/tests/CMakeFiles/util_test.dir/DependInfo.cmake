
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_bitops.cpp" "tests/CMakeFiles/util_test.dir/util/test_bitops.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_bitops.cpp.o.d"
  "/root/repo/tests/util/test_cfloat.cpp" "tests/CMakeFiles/util_test.dir/util/test_cfloat.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_cfloat.cpp.o.d"
  "/root/repo/tests/util/test_cfloat_properties.cpp" "tests/CMakeFiles/util_test.dir/util/test_cfloat_properties.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_cfloat_properties.cpp.o.d"
  "/root/repo/tests/util/test_fixed_point.cpp" "tests/CMakeFiles/util_test.dir/util/test_fixed_point.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_fixed_point.cpp.o.d"
  "/root/repo/tests/util/test_image.cpp" "tests/CMakeFiles/util_test.dir/util/test_image.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_image.cpp.o.d"
  "/root/repo/tests/util/test_log.cpp" "tests/CMakeFiles/util_test.dir/util/test_log.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_log.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/util_test.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/util_test.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/util_test.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_table.cpp.o.d"
  "/root/repo/tests/util/test_units.cpp" "tests/CMakeFiles/util_test.dir/util/test_units.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trt/CMakeFiles/atlantis_trt.dir/DependInfo.cmake"
  "/root/repo/build/src/volren/CMakeFiles/atlantis_volren.dir/DependInfo.cmake"
  "/root/repo/build/src/nbody/CMakeFiles/atlantis_nbody.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/atlantis_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atlantis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/atlantis_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chdl/CMakeFiles/atlantis_chdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
