file(REMOVE_RECURSE
  "CMakeFiles/util_test.dir/util/test_bitops.cpp.o"
  "CMakeFiles/util_test.dir/util/test_bitops.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_cfloat.cpp.o"
  "CMakeFiles/util_test.dir/util/test_cfloat.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_cfloat_properties.cpp.o"
  "CMakeFiles/util_test.dir/util/test_cfloat_properties.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_fixed_point.cpp.o"
  "CMakeFiles/util_test.dir/util/test_fixed_point.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_image.cpp.o"
  "CMakeFiles/util_test.dir/util/test_image.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_log.cpp.o"
  "CMakeFiles/util_test.dir/util/test_log.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_rng.cpp.o"
  "CMakeFiles/util_test.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_stats.cpp.o"
  "CMakeFiles/util_test.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_table.cpp.o"
  "CMakeFiles/util_test.dir/util/test_table.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_units.cpp.o"
  "CMakeFiles/util_test.dir/util/test_units.cpp.o.d"
  "util_test"
  "util_test.pdb"
  "util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
