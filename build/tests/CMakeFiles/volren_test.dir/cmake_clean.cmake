file(REMOVE_RECURSE
  "CMakeFiles/volren_test.dir/volren/test_camera.cpp.o"
  "CMakeFiles/volren_test.dir/volren/test_camera.cpp.o.d"
  "CMakeFiles/volren_test.dir/volren/test_interp_core.cpp.o"
  "CMakeFiles/volren_test.dir/volren/test_interp_core.cpp.o.d"
  "CMakeFiles/volren_test.dir/volren/test_memsim.cpp.o"
  "CMakeFiles/volren_test.dir/volren/test_memsim.cpp.o.d"
  "CMakeFiles/volren_test.dir/volren/test_pipeline.cpp.o"
  "CMakeFiles/volren_test.dir/volren/test_pipeline.cpp.o.d"
  "CMakeFiles/volren_test.dir/volren/test_raycast.cpp.o"
  "CMakeFiles/volren_test.dir/volren/test_raycast.cpp.o.d"
  "CMakeFiles/volren_test.dir/volren/test_renderer.cpp.o"
  "CMakeFiles/volren_test.dir/volren/test_renderer.cpp.o.d"
  "CMakeFiles/volren_test.dir/volren/test_transfer.cpp.o"
  "CMakeFiles/volren_test.dir/volren/test_transfer.cpp.o.d"
  "CMakeFiles/volren_test.dir/volren/test_volume.cpp.o"
  "CMakeFiles/volren_test.dir/volren/test_volume.cpp.o.d"
  "volren_test"
  "volren_test.pdb"
  "volren_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volren_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
