
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/volren/test_camera.cpp" "tests/CMakeFiles/volren_test.dir/volren/test_camera.cpp.o" "gcc" "tests/CMakeFiles/volren_test.dir/volren/test_camera.cpp.o.d"
  "/root/repo/tests/volren/test_interp_core.cpp" "tests/CMakeFiles/volren_test.dir/volren/test_interp_core.cpp.o" "gcc" "tests/CMakeFiles/volren_test.dir/volren/test_interp_core.cpp.o.d"
  "/root/repo/tests/volren/test_memsim.cpp" "tests/CMakeFiles/volren_test.dir/volren/test_memsim.cpp.o" "gcc" "tests/CMakeFiles/volren_test.dir/volren/test_memsim.cpp.o.d"
  "/root/repo/tests/volren/test_pipeline.cpp" "tests/CMakeFiles/volren_test.dir/volren/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/volren_test.dir/volren/test_pipeline.cpp.o.d"
  "/root/repo/tests/volren/test_raycast.cpp" "tests/CMakeFiles/volren_test.dir/volren/test_raycast.cpp.o" "gcc" "tests/CMakeFiles/volren_test.dir/volren/test_raycast.cpp.o.d"
  "/root/repo/tests/volren/test_renderer.cpp" "tests/CMakeFiles/volren_test.dir/volren/test_renderer.cpp.o" "gcc" "tests/CMakeFiles/volren_test.dir/volren/test_renderer.cpp.o.d"
  "/root/repo/tests/volren/test_transfer.cpp" "tests/CMakeFiles/volren_test.dir/volren/test_transfer.cpp.o" "gcc" "tests/CMakeFiles/volren_test.dir/volren/test_transfer.cpp.o.d"
  "/root/repo/tests/volren/test_volume.cpp" "tests/CMakeFiles/volren_test.dir/volren/test_volume.cpp.o" "gcc" "tests/CMakeFiles/volren_test.dir/volren/test_volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trt/CMakeFiles/atlantis_trt.dir/DependInfo.cmake"
  "/root/repo/build/src/volren/CMakeFiles/atlantis_volren.dir/DependInfo.cmake"
  "/root/repo/build/src/nbody/CMakeFiles/atlantis_nbody.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/atlantis_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atlantis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/atlantis_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chdl/CMakeFiles/atlantis_chdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
