# Empty dependencies file for volren_test.
# This may be replaced when dependencies are built.
