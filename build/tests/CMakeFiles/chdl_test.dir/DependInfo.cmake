
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chdl/test_bitvec.cpp" "tests/CMakeFiles/chdl_test.dir/chdl/test_bitvec.cpp.o" "gcc" "tests/CMakeFiles/chdl_test.dir/chdl/test_bitvec.cpp.o.d"
  "/root/repo/tests/chdl/test_builder.cpp" "tests/CMakeFiles/chdl_test.dir/chdl/test_builder.cpp.o" "gcc" "tests/CMakeFiles/chdl_test.dir/chdl/test_builder.cpp.o.d"
  "/root/repo/tests/chdl/test_design.cpp" "tests/CMakeFiles/chdl_test.dir/chdl/test_design.cpp.o" "gcc" "tests/CMakeFiles/chdl_test.dir/chdl/test_design.cpp.o.d"
  "/root/repo/tests/chdl/test_export.cpp" "tests/CMakeFiles/chdl_test.dir/chdl/test_export.cpp.o" "gcc" "tests/CMakeFiles/chdl_test.dir/chdl/test_export.cpp.o.d"
  "/root/repo/tests/chdl/test_fsm.cpp" "tests/CMakeFiles/chdl_test.dir/chdl/test_fsm.cpp.o" "gcc" "tests/CMakeFiles/chdl_test.dir/chdl/test_fsm.cpp.o.d"
  "/root/repo/tests/chdl/test_fuzz.cpp" "tests/CMakeFiles/chdl_test.dir/chdl/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/chdl_test.dir/chdl/test_fuzz.cpp.o.d"
  "/root/repo/tests/chdl/test_netlist_stats.cpp" "tests/CMakeFiles/chdl_test.dir/chdl/test_netlist_stats.cpp.o" "gcc" "tests/CMakeFiles/chdl_test.dir/chdl/test_netlist_stats.cpp.o.d"
  "/root/repo/tests/chdl/test_sim.cpp" "tests/CMakeFiles/chdl_test.dir/chdl/test_sim.cpp.o" "gcc" "tests/CMakeFiles/chdl_test.dir/chdl/test_sim.cpp.o.d"
  "/root/repo/tests/chdl/test_vcd.cpp" "tests/CMakeFiles/chdl_test.dir/chdl/test_vcd.cpp.o" "gcc" "tests/CMakeFiles/chdl_test.dir/chdl/test_vcd.cpp.o.d"
  "/root/repo/tests/chdl/test_verify.cpp" "tests/CMakeFiles/chdl_test.dir/chdl/test_verify.cpp.o" "gcc" "tests/CMakeFiles/chdl_test.dir/chdl/test_verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trt/CMakeFiles/atlantis_trt.dir/DependInfo.cmake"
  "/root/repo/build/src/volren/CMakeFiles/atlantis_volren.dir/DependInfo.cmake"
  "/root/repo/build/src/nbody/CMakeFiles/atlantis_nbody.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/atlantis_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atlantis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/atlantis_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chdl/CMakeFiles/atlantis_chdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
