# Empty dependencies file for chdl_test.
# This may be replaced when dependencies are built.
