file(REMOVE_RECURSE
  "CMakeFiles/chdl_test.dir/chdl/test_bitvec.cpp.o"
  "CMakeFiles/chdl_test.dir/chdl/test_bitvec.cpp.o.d"
  "CMakeFiles/chdl_test.dir/chdl/test_builder.cpp.o"
  "CMakeFiles/chdl_test.dir/chdl/test_builder.cpp.o.d"
  "CMakeFiles/chdl_test.dir/chdl/test_design.cpp.o"
  "CMakeFiles/chdl_test.dir/chdl/test_design.cpp.o.d"
  "CMakeFiles/chdl_test.dir/chdl/test_export.cpp.o"
  "CMakeFiles/chdl_test.dir/chdl/test_export.cpp.o.d"
  "CMakeFiles/chdl_test.dir/chdl/test_fsm.cpp.o"
  "CMakeFiles/chdl_test.dir/chdl/test_fsm.cpp.o.d"
  "CMakeFiles/chdl_test.dir/chdl/test_fuzz.cpp.o"
  "CMakeFiles/chdl_test.dir/chdl/test_fuzz.cpp.o.d"
  "CMakeFiles/chdl_test.dir/chdl/test_netlist_stats.cpp.o"
  "CMakeFiles/chdl_test.dir/chdl/test_netlist_stats.cpp.o.d"
  "CMakeFiles/chdl_test.dir/chdl/test_sim.cpp.o"
  "CMakeFiles/chdl_test.dir/chdl/test_sim.cpp.o.d"
  "CMakeFiles/chdl_test.dir/chdl/test_vcd.cpp.o"
  "CMakeFiles/chdl_test.dir/chdl/test_vcd.cpp.o.d"
  "CMakeFiles/chdl_test.dir/chdl/test_verify.cpp.o"
  "CMakeFiles/chdl_test.dir/chdl/test_verify.cpp.o.d"
  "chdl_test"
  "chdl_test.pdb"
  "chdl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
