file(REMOVE_RECURSE
  "CMakeFiles/imgproc_test.dir/imgproc/test_conv_core.cpp.o"
  "CMakeFiles/imgproc_test.dir/imgproc/test_conv_core.cpp.o.d"
  "CMakeFiles/imgproc_test.dir/imgproc/test_filters.cpp.o"
  "CMakeFiles/imgproc_test.dir/imgproc/test_filters.cpp.o.d"
  "CMakeFiles/imgproc_test.dir/imgproc/test_hwmodel.cpp.o"
  "CMakeFiles/imgproc_test.dir/imgproc/test_hwmodel.cpp.o.d"
  "CMakeFiles/imgproc_test.dir/imgproc/test_sobel_core.cpp.o"
  "CMakeFiles/imgproc_test.dir/imgproc/test_sobel_core.cpp.o.d"
  "imgproc_test"
  "imgproc_test.pdb"
  "imgproc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imgproc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
