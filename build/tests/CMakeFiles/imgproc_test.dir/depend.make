# Empty dependencies file for imgproc_test.
# This may be replaced when dependencies are built.
