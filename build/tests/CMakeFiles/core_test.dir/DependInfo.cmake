
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_aab.cpp" "tests/CMakeFiles/core_test.dir/core/test_aab.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/test_aab.cpp.o.d"
  "/root/repo/tests/core/test_acb.cpp" "tests/CMakeFiles/core_test.dir/core/test_acb.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/test_acb.cpp.o.d"
  "/root/repo/tests/core/test_aib.cpp" "tests/CMakeFiles/core_test.dir/core/test_aib.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/test_aib.cpp.o.d"
  "/root/repo/tests/core/test_driver.cpp" "tests/CMakeFiles/core_test.dir/core/test_driver.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/test_driver.cpp.o.d"
  "/root/repo/tests/core/test_integration.cpp" "tests/CMakeFiles/core_test.dir/core/test_integration.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/test_integration.cpp.o.d"
  "/root/repo/tests/core/test_memmodule.cpp" "tests/CMakeFiles/core_test.dir/core/test_memmodule.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/test_memmodule.cpp.o.d"
  "/root/repo/tests/core/test_selftest.cpp" "tests/CMakeFiles/core_test.dir/core/test_selftest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/test_selftest.cpp.o.d"
  "/root/repo/tests/core/test_system.cpp" "tests/CMakeFiles/core_test.dir/core/test_system.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/test_system.cpp.o.d"
  "/root/repo/tests/core/test_taskswitch.cpp" "tests/CMakeFiles/core_test.dir/core/test_taskswitch.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/test_taskswitch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trt/CMakeFiles/atlantis_trt.dir/DependInfo.cmake"
  "/root/repo/build/src/volren/CMakeFiles/atlantis_volren.dir/DependInfo.cmake"
  "/root/repo/build/src/nbody/CMakeFiles/atlantis_nbody.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/atlantis_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atlantis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/atlantis_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chdl/CMakeFiles/atlantis_chdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
