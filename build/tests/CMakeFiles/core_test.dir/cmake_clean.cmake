file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/test_aab.cpp.o"
  "CMakeFiles/core_test.dir/core/test_aab.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_acb.cpp.o"
  "CMakeFiles/core_test.dir/core/test_acb.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_aib.cpp.o"
  "CMakeFiles/core_test.dir/core/test_aib.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_driver.cpp.o"
  "CMakeFiles/core_test.dir/core/test_driver.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_integration.cpp.o"
  "CMakeFiles/core_test.dir/core/test_integration.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_memmodule.cpp.o"
  "CMakeFiles/core_test.dir/core/test_memmodule.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_selftest.cpp.o"
  "CMakeFiles/core_test.dir/core/test_selftest.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_system.cpp.o"
  "CMakeFiles/core_test.dir/core/test_system.cpp.o.d"
  "CMakeFiles/core_test.dir/core/test_taskswitch.cpp.o"
  "CMakeFiles/core_test.dir/core/test_taskswitch.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
