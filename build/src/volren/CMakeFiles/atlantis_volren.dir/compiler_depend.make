# Empty compiler generated dependencies file for atlantis_volren.
# This may be replaced when dependencies are built.
