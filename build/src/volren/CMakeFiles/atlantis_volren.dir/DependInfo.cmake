
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/volren/camera.cpp" "src/volren/CMakeFiles/atlantis_volren.dir/camera.cpp.o" "gcc" "src/volren/CMakeFiles/atlantis_volren.dir/camera.cpp.o.d"
  "/root/repo/src/volren/interp_core.cpp" "src/volren/CMakeFiles/atlantis_volren.dir/interp_core.cpp.o" "gcc" "src/volren/CMakeFiles/atlantis_volren.dir/interp_core.cpp.o.d"
  "/root/repo/src/volren/memsim.cpp" "src/volren/CMakeFiles/atlantis_volren.dir/memsim.cpp.o" "gcc" "src/volren/CMakeFiles/atlantis_volren.dir/memsim.cpp.o.d"
  "/root/repo/src/volren/pipeline.cpp" "src/volren/CMakeFiles/atlantis_volren.dir/pipeline.cpp.o" "gcc" "src/volren/CMakeFiles/atlantis_volren.dir/pipeline.cpp.o.d"
  "/root/repo/src/volren/raycast.cpp" "src/volren/CMakeFiles/atlantis_volren.dir/raycast.cpp.o" "gcc" "src/volren/CMakeFiles/atlantis_volren.dir/raycast.cpp.o.d"
  "/root/repo/src/volren/renderer.cpp" "src/volren/CMakeFiles/atlantis_volren.dir/renderer.cpp.o" "gcc" "src/volren/CMakeFiles/atlantis_volren.dir/renderer.cpp.o.d"
  "/root/repo/src/volren/transfer.cpp" "src/volren/CMakeFiles/atlantis_volren.dir/transfer.cpp.o" "gcc" "src/volren/CMakeFiles/atlantis_volren.dir/transfer.cpp.o.d"
  "/root/repo/src/volren/volume.cpp" "src/volren/CMakeFiles/atlantis_volren.dir/volume.cpp.o" "gcc" "src/volren/CMakeFiles/atlantis_volren.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/atlantis_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chdl/CMakeFiles/atlantis_chdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
