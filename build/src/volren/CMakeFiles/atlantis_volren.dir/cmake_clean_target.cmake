file(REMOVE_RECURSE
  "libatlantis_volren.a"
)
