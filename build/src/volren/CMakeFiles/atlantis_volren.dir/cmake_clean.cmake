file(REMOVE_RECURSE
  "CMakeFiles/atlantis_volren.dir/camera.cpp.o"
  "CMakeFiles/atlantis_volren.dir/camera.cpp.o.d"
  "CMakeFiles/atlantis_volren.dir/interp_core.cpp.o"
  "CMakeFiles/atlantis_volren.dir/interp_core.cpp.o.d"
  "CMakeFiles/atlantis_volren.dir/memsim.cpp.o"
  "CMakeFiles/atlantis_volren.dir/memsim.cpp.o.d"
  "CMakeFiles/atlantis_volren.dir/pipeline.cpp.o"
  "CMakeFiles/atlantis_volren.dir/pipeline.cpp.o.d"
  "CMakeFiles/atlantis_volren.dir/raycast.cpp.o"
  "CMakeFiles/atlantis_volren.dir/raycast.cpp.o.d"
  "CMakeFiles/atlantis_volren.dir/renderer.cpp.o"
  "CMakeFiles/atlantis_volren.dir/renderer.cpp.o.d"
  "CMakeFiles/atlantis_volren.dir/transfer.cpp.o"
  "CMakeFiles/atlantis_volren.dir/transfer.cpp.o.d"
  "CMakeFiles/atlantis_volren.dir/volume.cpp.o"
  "CMakeFiles/atlantis_volren.dir/volume.cpp.o.d"
  "libatlantis_volren.a"
  "libatlantis_volren.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlantis_volren.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
