# Empty compiler generated dependencies file for atlantis_chdl.
# This may be replaced when dependencies are built.
