file(REMOVE_RECURSE
  "CMakeFiles/atlantis_chdl.dir/bitvec.cpp.o"
  "CMakeFiles/atlantis_chdl.dir/bitvec.cpp.o.d"
  "CMakeFiles/atlantis_chdl.dir/builder.cpp.o"
  "CMakeFiles/atlantis_chdl.dir/builder.cpp.o.d"
  "CMakeFiles/atlantis_chdl.dir/design.cpp.o"
  "CMakeFiles/atlantis_chdl.dir/design.cpp.o.d"
  "CMakeFiles/atlantis_chdl.dir/export.cpp.o"
  "CMakeFiles/atlantis_chdl.dir/export.cpp.o.d"
  "CMakeFiles/atlantis_chdl.dir/fsm.cpp.o"
  "CMakeFiles/atlantis_chdl.dir/fsm.cpp.o.d"
  "CMakeFiles/atlantis_chdl.dir/hostif.cpp.o"
  "CMakeFiles/atlantis_chdl.dir/hostif.cpp.o.d"
  "CMakeFiles/atlantis_chdl.dir/sim.cpp.o"
  "CMakeFiles/atlantis_chdl.dir/sim.cpp.o.d"
  "CMakeFiles/atlantis_chdl.dir/stats.cpp.o"
  "CMakeFiles/atlantis_chdl.dir/stats.cpp.o.d"
  "CMakeFiles/atlantis_chdl.dir/vcd.cpp.o"
  "CMakeFiles/atlantis_chdl.dir/vcd.cpp.o.d"
  "CMakeFiles/atlantis_chdl.dir/verify.cpp.o"
  "CMakeFiles/atlantis_chdl.dir/verify.cpp.o.d"
  "libatlantis_chdl.a"
  "libatlantis_chdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlantis_chdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
