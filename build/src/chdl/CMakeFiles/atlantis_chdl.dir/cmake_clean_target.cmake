file(REMOVE_RECURSE
  "libatlantis_chdl.a"
)
