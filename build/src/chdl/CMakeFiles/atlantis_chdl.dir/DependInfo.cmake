
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chdl/bitvec.cpp" "src/chdl/CMakeFiles/atlantis_chdl.dir/bitvec.cpp.o" "gcc" "src/chdl/CMakeFiles/atlantis_chdl.dir/bitvec.cpp.o.d"
  "/root/repo/src/chdl/builder.cpp" "src/chdl/CMakeFiles/atlantis_chdl.dir/builder.cpp.o" "gcc" "src/chdl/CMakeFiles/atlantis_chdl.dir/builder.cpp.o.d"
  "/root/repo/src/chdl/design.cpp" "src/chdl/CMakeFiles/atlantis_chdl.dir/design.cpp.o" "gcc" "src/chdl/CMakeFiles/atlantis_chdl.dir/design.cpp.o.d"
  "/root/repo/src/chdl/export.cpp" "src/chdl/CMakeFiles/atlantis_chdl.dir/export.cpp.o" "gcc" "src/chdl/CMakeFiles/atlantis_chdl.dir/export.cpp.o.d"
  "/root/repo/src/chdl/fsm.cpp" "src/chdl/CMakeFiles/atlantis_chdl.dir/fsm.cpp.o" "gcc" "src/chdl/CMakeFiles/atlantis_chdl.dir/fsm.cpp.o.d"
  "/root/repo/src/chdl/hostif.cpp" "src/chdl/CMakeFiles/atlantis_chdl.dir/hostif.cpp.o" "gcc" "src/chdl/CMakeFiles/atlantis_chdl.dir/hostif.cpp.o.d"
  "/root/repo/src/chdl/sim.cpp" "src/chdl/CMakeFiles/atlantis_chdl.dir/sim.cpp.o" "gcc" "src/chdl/CMakeFiles/atlantis_chdl.dir/sim.cpp.o.d"
  "/root/repo/src/chdl/stats.cpp" "src/chdl/CMakeFiles/atlantis_chdl.dir/stats.cpp.o" "gcc" "src/chdl/CMakeFiles/atlantis_chdl.dir/stats.cpp.o.d"
  "/root/repo/src/chdl/vcd.cpp" "src/chdl/CMakeFiles/atlantis_chdl.dir/vcd.cpp.o" "gcc" "src/chdl/CMakeFiles/atlantis_chdl.dir/vcd.cpp.o.d"
  "/root/repo/src/chdl/verify.cpp" "src/chdl/CMakeFiles/atlantis_chdl.dir/verify.cpp.o" "gcc" "src/chdl/CMakeFiles/atlantis_chdl.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
