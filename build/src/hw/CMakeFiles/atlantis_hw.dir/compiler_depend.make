# Empty compiler generated dependencies file for atlantis_hw.
# This may be replaced when dependencies are built.
