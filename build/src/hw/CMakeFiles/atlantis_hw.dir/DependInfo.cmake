
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/fpga.cpp" "src/hw/CMakeFiles/atlantis_hw.dir/fpga.cpp.o" "gcc" "src/hw/CMakeFiles/atlantis_hw.dir/fpga.cpp.o.d"
  "/root/repo/src/hw/hostcpu.cpp" "src/hw/CMakeFiles/atlantis_hw.dir/hostcpu.cpp.o" "gcc" "src/hw/CMakeFiles/atlantis_hw.dir/hostcpu.cpp.o.d"
  "/root/repo/src/hw/pci.cpp" "src/hw/CMakeFiles/atlantis_hw.dir/pci.cpp.o" "gcc" "src/hw/CMakeFiles/atlantis_hw.dir/pci.cpp.o.d"
  "/root/repo/src/hw/sdram.cpp" "src/hw/CMakeFiles/atlantis_hw.dir/sdram.cpp.o" "gcc" "src/hw/CMakeFiles/atlantis_hw.dir/sdram.cpp.o.d"
  "/root/repo/src/hw/slink.cpp" "src/hw/CMakeFiles/atlantis_hw.dir/slink.cpp.o" "gcc" "src/hw/CMakeFiles/atlantis_hw.dir/slink.cpp.o.d"
  "/root/repo/src/hw/sram.cpp" "src/hw/CMakeFiles/atlantis_hw.dir/sram.cpp.o" "gcc" "src/hw/CMakeFiles/atlantis_hw.dir/sram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chdl/CMakeFiles/atlantis_chdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
