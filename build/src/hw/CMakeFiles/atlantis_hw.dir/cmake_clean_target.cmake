file(REMOVE_RECURSE
  "libatlantis_hw.a"
)
