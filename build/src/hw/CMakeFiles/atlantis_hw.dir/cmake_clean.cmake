file(REMOVE_RECURSE
  "CMakeFiles/atlantis_hw.dir/fpga.cpp.o"
  "CMakeFiles/atlantis_hw.dir/fpga.cpp.o.d"
  "CMakeFiles/atlantis_hw.dir/hostcpu.cpp.o"
  "CMakeFiles/atlantis_hw.dir/hostcpu.cpp.o.d"
  "CMakeFiles/atlantis_hw.dir/pci.cpp.o"
  "CMakeFiles/atlantis_hw.dir/pci.cpp.o.d"
  "CMakeFiles/atlantis_hw.dir/sdram.cpp.o"
  "CMakeFiles/atlantis_hw.dir/sdram.cpp.o.d"
  "CMakeFiles/atlantis_hw.dir/slink.cpp.o"
  "CMakeFiles/atlantis_hw.dir/slink.cpp.o.d"
  "CMakeFiles/atlantis_hw.dir/sram.cpp.o"
  "CMakeFiles/atlantis_hw.dir/sram.cpp.o.d"
  "libatlantis_hw.a"
  "libatlantis_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlantis_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
