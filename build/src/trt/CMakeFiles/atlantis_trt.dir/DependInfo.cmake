
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trt/events.cpp" "src/trt/CMakeFiles/atlantis_trt.dir/events.cpp.o" "gcc" "src/trt/CMakeFiles/atlantis_trt.dir/events.cpp.o.d"
  "/root/repo/src/trt/geometry.cpp" "src/trt/CMakeFiles/atlantis_trt.dir/geometry.cpp.o" "gcc" "src/trt/CMakeFiles/atlantis_trt.dir/geometry.cpp.o.d"
  "/root/repo/src/trt/histogram.cpp" "src/trt/CMakeFiles/atlantis_trt.dir/histogram.cpp.o" "gcc" "src/trt/CMakeFiles/atlantis_trt.dir/histogram.cpp.o.d"
  "/root/repo/src/trt/hwmodel.cpp" "src/trt/CMakeFiles/atlantis_trt.dir/hwmodel.cpp.o" "gcc" "src/trt/CMakeFiles/atlantis_trt.dir/hwmodel.cpp.o.d"
  "/root/repo/src/trt/multiboard.cpp" "src/trt/CMakeFiles/atlantis_trt.dir/multiboard.cpp.o" "gcc" "src/trt/CMakeFiles/atlantis_trt.dir/multiboard.cpp.o.d"
  "/root/repo/src/trt/patterns.cpp" "src/trt/CMakeFiles/atlantis_trt.dir/patterns.cpp.o" "gcc" "src/trt/CMakeFiles/atlantis_trt.dir/patterns.cpp.o.d"
  "/root/repo/src/trt/slink_frontend.cpp" "src/trt/CMakeFiles/atlantis_trt.dir/slink_frontend.cpp.o" "gcc" "src/trt/CMakeFiles/atlantis_trt.dir/slink_frontend.cpp.o.d"
  "/root/repo/src/trt/trt_core.cpp" "src/trt/CMakeFiles/atlantis_trt.dir/trt_core.cpp.o" "gcc" "src/trt/CMakeFiles/atlantis_trt.dir/trt_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/atlantis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chdl/CMakeFiles/atlantis_chdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/atlantis_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
