# Empty compiler generated dependencies file for atlantis_trt.
# This may be replaced when dependencies are built.
