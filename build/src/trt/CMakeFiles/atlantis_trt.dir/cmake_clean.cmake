file(REMOVE_RECURSE
  "CMakeFiles/atlantis_trt.dir/events.cpp.o"
  "CMakeFiles/atlantis_trt.dir/events.cpp.o.d"
  "CMakeFiles/atlantis_trt.dir/geometry.cpp.o"
  "CMakeFiles/atlantis_trt.dir/geometry.cpp.o.d"
  "CMakeFiles/atlantis_trt.dir/histogram.cpp.o"
  "CMakeFiles/atlantis_trt.dir/histogram.cpp.o.d"
  "CMakeFiles/atlantis_trt.dir/hwmodel.cpp.o"
  "CMakeFiles/atlantis_trt.dir/hwmodel.cpp.o.d"
  "CMakeFiles/atlantis_trt.dir/multiboard.cpp.o"
  "CMakeFiles/atlantis_trt.dir/multiboard.cpp.o.d"
  "CMakeFiles/atlantis_trt.dir/patterns.cpp.o"
  "CMakeFiles/atlantis_trt.dir/patterns.cpp.o.d"
  "CMakeFiles/atlantis_trt.dir/slink_frontend.cpp.o"
  "CMakeFiles/atlantis_trt.dir/slink_frontend.cpp.o.d"
  "CMakeFiles/atlantis_trt.dir/trt_core.cpp.o"
  "CMakeFiles/atlantis_trt.dir/trt_core.cpp.o.d"
  "libatlantis_trt.a"
  "libatlantis_trt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlantis_trt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
