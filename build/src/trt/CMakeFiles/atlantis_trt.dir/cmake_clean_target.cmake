file(REMOVE_RECURSE
  "libatlantis_trt.a"
)
