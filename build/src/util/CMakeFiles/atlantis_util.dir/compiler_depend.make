# Empty compiler generated dependencies file for atlantis_util.
# This may be replaced when dependencies are built.
