file(REMOVE_RECURSE
  "CMakeFiles/atlantis_util.dir/cfloat.cpp.o"
  "CMakeFiles/atlantis_util.dir/cfloat.cpp.o.d"
  "CMakeFiles/atlantis_util.dir/image.cpp.o"
  "CMakeFiles/atlantis_util.dir/image.cpp.o.d"
  "CMakeFiles/atlantis_util.dir/log.cpp.o"
  "CMakeFiles/atlantis_util.dir/log.cpp.o.d"
  "CMakeFiles/atlantis_util.dir/status.cpp.o"
  "CMakeFiles/atlantis_util.dir/status.cpp.o.d"
  "CMakeFiles/atlantis_util.dir/table.cpp.o"
  "CMakeFiles/atlantis_util.dir/table.cpp.o.d"
  "libatlantis_util.a"
  "libatlantis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlantis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
