file(REMOVE_RECURSE
  "libatlantis_util.a"
)
