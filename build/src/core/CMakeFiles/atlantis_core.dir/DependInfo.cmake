
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aab.cpp" "src/core/CMakeFiles/atlantis_core.dir/aab.cpp.o" "gcc" "src/core/CMakeFiles/atlantis_core.dir/aab.cpp.o.d"
  "/root/repo/src/core/acb.cpp" "src/core/CMakeFiles/atlantis_core.dir/acb.cpp.o" "gcc" "src/core/CMakeFiles/atlantis_core.dir/acb.cpp.o.d"
  "/root/repo/src/core/aib.cpp" "src/core/CMakeFiles/atlantis_core.dir/aib.cpp.o" "gcc" "src/core/CMakeFiles/atlantis_core.dir/aib.cpp.o.d"
  "/root/repo/src/core/driver.cpp" "src/core/CMakeFiles/atlantis_core.dir/driver.cpp.o" "gcc" "src/core/CMakeFiles/atlantis_core.dir/driver.cpp.o.d"
  "/root/repo/src/core/memmodule.cpp" "src/core/CMakeFiles/atlantis_core.dir/memmodule.cpp.o" "gcc" "src/core/CMakeFiles/atlantis_core.dir/memmodule.cpp.o.d"
  "/root/repo/src/core/selftest.cpp" "src/core/CMakeFiles/atlantis_core.dir/selftest.cpp.o" "gcc" "src/core/CMakeFiles/atlantis_core.dir/selftest.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/atlantis_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/atlantis_core.dir/system.cpp.o.d"
  "/root/repo/src/core/taskswitch.cpp" "src/core/CMakeFiles/atlantis_core.dir/taskswitch.cpp.o" "gcc" "src/core/CMakeFiles/atlantis_core.dir/taskswitch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/atlantis_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/chdl/CMakeFiles/atlantis_chdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
