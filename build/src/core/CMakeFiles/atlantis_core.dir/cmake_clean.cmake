file(REMOVE_RECURSE
  "CMakeFiles/atlantis_core.dir/aab.cpp.o"
  "CMakeFiles/atlantis_core.dir/aab.cpp.o.d"
  "CMakeFiles/atlantis_core.dir/acb.cpp.o"
  "CMakeFiles/atlantis_core.dir/acb.cpp.o.d"
  "CMakeFiles/atlantis_core.dir/aib.cpp.o"
  "CMakeFiles/atlantis_core.dir/aib.cpp.o.d"
  "CMakeFiles/atlantis_core.dir/driver.cpp.o"
  "CMakeFiles/atlantis_core.dir/driver.cpp.o.d"
  "CMakeFiles/atlantis_core.dir/memmodule.cpp.o"
  "CMakeFiles/atlantis_core.dir/memmodule.cpp.o.d"
  "CMakeFiles/atlantis_core.dir/selftest.cpp.o"
  "CMakeFiles/atlantis_core.dir/selftest.cpp.o.d"
  "CMakeFiles/atlantis_core.dir/system.cpp.o"
  "CMakeFiles/atlantis_core.dir/system.cpp.o.d"
  "CMakeFiles/atlantis_core.dir/taskswitch.cpp.o"
  "CMakeFiles/atlantis_core.dir/taskswitch.cpp.o.d"
  "libatlantis_core.a"
  "libatlantis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlantis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
