file(REMOVE_RECURSE
  "libatlantis_core.a"
)
