# Empty compiler generated dependencies file for atlantis_core.
# This may be replaced when dependencies are built.
