
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imgproc/conv_core.cpp" "src/imgproc/CMakeFiles/atlantis_imgproc.dir/conv_core.cpp.o" "gcc" "src/imgproc/CMakeFiles/atlantis_imgproc.dir/conv_core.cpp.o.d"
  "/root/repo/src/imgproc/filters.cpp" "src/imgproc/CMakeFiles/atlantis_imgproc.dir/filters.cpp.o" "gcc" "src/imgproc/CMakeFiles/atlantis_imgproc.dir/filters.cpp.o.d"
  "/root/repo/src/imgproc/hwmodel.cpp" "src/imgproc/CMakeFiles/atlantis_imgproc.dir/hwmodel.cpp.o" "gcc" "src/imgproc/CMakeFiles/atlantis_imgproc.dir/hwmodel.cpp.o.d"
  "/root/repo/src/imgproc/sobel_core.cpp" "src/imgproc/CMakeFiles/atlantis_imgproc.dir/sobel_core.cpp.o" "gcc" "src/imgproc/CMakeFiles/atlantis_imgproc.dir/sobel_core.cpp.o.d"
  "/root/repo/src/imgproc/window.cpp" "src/imgproc/CMakeFiles/atlantis_imgproc.dir/window.cpp.o" "gcc" "src/imgproc/CMakeFiles/atlantis_imgproc.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/atlantis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chdl/CMakeFiles/atlantis_chdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/atlantis_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
