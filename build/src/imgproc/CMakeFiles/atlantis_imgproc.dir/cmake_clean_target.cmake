file(REMOVE_RECURSE
  "libatlantis_imgproc.a"
)
