file(REMOVE_RECURSE
  "CMakeFiles/atlantis_imgproc.dir/conv_core.cpp.o"
  "CMakeFiles/atlantis_imgproc.dir/conv_core.cpp.o.d"
  "CMakeFiles/atlantis_imgproc.dir/filters.cpp.o"
  "CMakeFiles/atlantis_imgproc.dir/filters.cpp.o.d"
  "CMakeFiles/atlantis_imgproc.dir/hwmodel.cpp.o"
  "CMakeFiles/atlantis_imgproc.dir/hwmodel.cpp.o.d"
  "CMakeFiles/atlantis_imgproc.dir/sobel_core.cpp.o"
  "CMakeFiles/atlantis_imgproc.dir/sobel_core.cpp.o.d"
  "CMakeFiles/atlantis_imgproc.dir/window.cpp.o"
  "CMakeFiles/atlantis_imgproc.dir/window.cpp.o.d"
  "libatlantis_imgproc.a"
  "libatlantis_imgproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlantis_imgproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
