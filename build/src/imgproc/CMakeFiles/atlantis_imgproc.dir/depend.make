# Empty dependencies file for atlantis_imgproc.
# This may be replaced when dependencies are built.
