file(REMOVE_RECURSE
  "libatlantis_nbody.a"
)
