
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nbody/force.cpp" "src/nbody/CMakeFiles/atlantis_nbody.dir/force.cpp.o" "gcc" "src/nbody/CMakeFiles/atlantis_nbody.dir/force.cpp.o.d"
  "/root/repo/src/nbody/integrator.cpp" "src/nbody/CMakeFiles/atlantis_nbody.dir/integrator.cpp.o" "gcc" "src/nbody/CMakeFiles/atlantis_nbody.dir/integrator.cpp.o.d"
  "/root/repo/src/nbody/plummer.cpp" "src/nbody/CMakeFiles/atlantis_nbody.dir/plummer.cpp.o" "gcc" "src/nbody/CMakeFiles/atlantis_nbody.dir/plummer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/atlantis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
