# Empty compiler generated dependencies file for atlantis_nbody.
# This may be replaced when dependencies are built.
