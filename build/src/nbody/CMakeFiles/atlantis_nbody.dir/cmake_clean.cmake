file(REMOVE_RECURSE
  "CMakeFiles/atlantis_nbody.dir/force.cpp.o"
  "CMakeFiles/atlantis_nbody.dir/force.cpp.o.d"
  "CMakeFiles/atlantis_nbody.dir/integrator.cpp.o"
  "CMakeFiles/atlantis_nbody.dir/integrator.cpp.o.d"
  "CMakeFiles/atlantis_nbody.dir/plummer.cpp.o"
  "CMakeFiles/atlantis_nbody.dir/plummer.cpp.o.d"
  "libatlantis_nbody.a"
  "libatlantis_nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlantis_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
