// R1 — robustness: fault injection, retry/backoff and graceful
// degradation on the ATLANTIS fabric.
//
// The paper's machine is trigger/DAQ hardware: S-Link feeds from the
// detector, PCI DMA through the PLX 9080, SRAM-configured ORCA parts.
// All of it faults in the field. This bench sweeps injected fault rate
// against the driver's retry policy and measures what recovery costs:
// the DMA retry/backoff overhead on the CompactPCI segment, the S-Link
// retransmission overhead on a detector-fed two-board TRT scan, and the
// degraded throughput after a whole-board drop-out. The zero-rate
// column doubles as the zero-cost-when-off gate: with faults disabled
// the ledger must be bit-identical to a build with no injector at all.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "sim/fault.hpp"
#include "trt/multiboard.hpp"
#include "util/table.hpp"

using namespace atlantis;

namespace {

struct DmaCell {
  double rate = 0.0;
  std::string policy;
  std::uint64_t faults = 0;
  std::uint64_t retries = 0;
  double recovery_ms = 0.0;
  double elapsed_ms = 0.0;
  double mbps = 0.0;
  util::Picoseconds elapsed_ps = 0;
};

/// Runs `transfers` DMA writes under one (rate, policy) cell; nullptr
/// plan means "no injector bound at all" (the reference build).
DmaCell run_dma_cell(int transfers, std::uint64_t bytes,
                     const sim::FaultPlan* plan, const sim::RetryPolicy& pol,
                     const std::string& policy_name) {
  core::AtlantisSystem sys("crate");
  sim::FaultInjector inj{plan != nullptr ? *plan : sim::FaultPlan{}};
  if (plan != nullptr) sys.set_fault_injector(&inj);
  core::AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.set_retry_policy(pol);
  std::uint64_t moved = 0;
  for (int i = 0; i < transfers; ++i) {
    if (drv.try_dma_write(bytes).ok()) moved += bytes;
  }
  DmaCell cell;
  cell.policy = policy_name;
  cell.faults = drv.dma_faults();
  cell.retries = drv.dma_retries();
  cell.recovery_ms = util::ps_to_ms(drv.recovery_time());
  cell.elapsed_ms = util::ps_to_ms(drv.elapsed());
  cell.elapsed_ps = drv.elapsed();
  cell.mbps = static_cast<double>(moved) /
              (static_cast<double>(drv.elapsed()) * 1e-12) / 1e6;
  return cell;
}

struct TrtCell {
  double rate = 0.0;
  int events = 0;
  double total_ms = 0.0;
  std::uint64_t retransmits = 0;
  double recovery_ms = 0.0;
  double events_per_s = 0.0;
  bool degraded = false;
  int active_boards = 0;
  bool correct = true;
};

/// Runs `events` detector-fed two-board scans under one S-Link error
/// rate (plus whatever else the plan schedules).
TrtCell run_trt_cell(const trt::PatternBank& bank,
                     const std::vector<trt::Event>& events,
                     const sim::FaultPlan* plan) {
  core::AtlantisSystem sys("crate");
  sys.add_acb("acb0");
  sys.add_acb("acb1");
  sys.add_aib("aib0");
  sim::FaultInjector inj{plan != nullptr ? *plan : sim::FaultPlan{}};
  if (plan != nullptr) sys.set_fault_injector(&inj);
  trt::MultiBoardConfig cfg;
  cfg.detector_fed = true;
  TrtCell cell;
  cell.events = static_cast<int>(events.size());
  util::Picoseconds total = 0;
  for (const trt::Event& ev : events) {
    const trt::MultiBoardResult r =
        trt::histogram_multiboard(bank, ev, cfg, sys);
    total += r.total_time;
    cell.retransmits += r.slink_retransmits;
    cell.recovery_ms += util::ps_to_ms(r.recovery_time);
    cell.degraded = cell.degraded || r.degraded;
    cell.active_boards = r.active_boards;
    cell.correct =
        cell.correct && r.histogram.counts ==
                            trt::histogram_reference(bank, ev).histogram.counts;
  }
  cell.total_ms = util::ps_to_ms(total);
  cell.events_per_s =
      static_cast<double>(events.size()) / (cell.total_ms * 1e-3);
  return cell;
}

}  // namespace

int main() {
  bench::banner("R1", "fault injection, retry/backoff, graceful degradation");

  const bool smoke = bench::smoke();
  const int transfers = smoke ? 50 : 400;
  const std::uint64_t bytes = 64 * util::kKiB;
  const int n_events = smoke ? 2 : 8;

  // --- Part A: DMA fault rate x retry policy --------------------------
  sim::RetryPolicy fast;
  fast.initial_backoff = 1 * util::kMicrosecond;
  fast.max_backoff = 100 * util::kMicrosecond;
  sim::RetryPolicy deflt;
  sim::RetryPolicy patient;
  patient.initial_backoff = 100 * util::kMicrosecond;
  patient.multiplier = 4.0;
  patient.max_attempts = 6;
  const std::vector<std::pair<std::string, sim::RetryPolicy>> policies = {
      {"fast", fast}, {"default", deflt}, {"patient", patient}};
  const std::vector<double> rates = {0.0, 0.01, 0.05, 0.2};

  // The reference build: no injector bound anywhere.
  const DmaCell reference =
      run_dma_cell(transfers, bytes, nullptr, deflt, "default");

  util::Table dma_table("R1a: " + std::to_string(transfers) +
                        " x 64 KiB DMA writes, stall+abort rate x policy");
  dma_table.set_header({"rate", "policy", "faults", "retries",
                        "recovery (ms)", "elapsed (ms)", "eff MB/s"});
  std::vector<DmaCell> dma_cells;
  for (const double rate : rates) {
    for (const auto& [pname, pol] : policies) {
      sim::FaultPlan plan;
      plan.seed = 2026;
      plan.with_rate(sim::FaultKind::kDmaStall, rate / 2)
          .with_rate(sim::FaultKind::kDmaAbort, rate / 2);
      DmaCell cell = run_dma_cell(transfers, bytes, &plan, pol, pname);
      cell.rate = rate;
      dma_table.add_row({util::Table::fmt(rate, 2), pname,
                         std::to_string(cell.faults),
                         std::to_string(cell.retries),
                         util::Table::fmt(cell.recovery_ms, 3),
                         util::Table::fmt(cell.elapsed_ms, 2),
                         util::Table::fmt(cell.mbps, 1)});
      dma_cells.push_back(std::move(cell));
    }
  }
  dma_table.print();

  // Zero-cost-when-off: the rate-0 cell (injector bound, plan inert)
  // must be picosecond-identical to the reference build without one.
  const DmaCell& zero = dma_cells.front();
  bench::expect(zero.elapsed_ps == reference.elapsed_ps &&
                    zero.faults == 0 && zero.retries == 0,
                "faults disabled: driver ledger bit-identical to the "
                "no-injector build");
  const DmaCell& heavy = dma_cells.back();  // 0.2 rate, patient policy
  bench::expect(heavy.faults > 0 && heavy.retries > 0,
                "non-zero rate actually faults and retries");
  bench::expect(heavy.recovery_ms > 0.0 && heavy.mbps < reference.mbps,
                "recovery overhead shows up as lost effective bandwidth");

  // Retries land on the timeline, not just in driver counters.
  {
    core::AtlantisSystem sys("crate");
    sim::FaultPlan plan;
    plan.inject(sim::FaultKind::kDmaStall, "pci/acb0", 1);
    sim::FaultInjector inj(plan);
    sys.set_fault_injector(&inj);
    core::AtlantisDriver drv(sys, sys.add_acb("acb0"));
    (void)drv.try_dma_write(bytes);
    const sim::ResourceStats st = sys.timeline().stats(sys.pci_segment());
    bench::expect(st.faults == 1 && st.retries == 1 && st.retry_time > 0,
                  "fault, retry and recovery time visible in the "
                  "timeline's per-resource stats");
    std::ostringstream trace;
    sys.timeline().export_chrome_trace(trace);
    bench::expect(trace.str().find("backoff") != std::string::npos,
                  "backoff transactions appear in the Chrome trace");
  }

  // --- Part B: S-Link error rate on the detector-fed 2-board scan -----
  trt::DetectorGeometry geo;
  geo.layers = 20;
  geo.straws_per_layer = 200;
  // 2816 patterns: 2 passes per board on the 704-bit datapath, 4 when a
  // single survivor has to carry the whole bank — so a drop-out actually
  // costs compute time instead of hiding in the pass quantization.
  trt::PatternBank bank(geo, 2816);
  trt::EventGenerator gen(bank, trt::EventParams{});
  std::vector<trt::Event> events;
  for (int i = 0; i < n_events; ++i) events.push_back(gen.generate());

  const TrtCell trt_ref = run_trt_cell(bank, events, nullptr);
  const std::vector<double> link_rates = {0.0, 0.25, 0.5, 1.0};
  util::Table trt_table("R1b: detector-fed 2-board TRT scan, " +
                        std::to_string(n_events) +
                        " events, S-Link LDERR rate sweep");
  trt_table.set_header({"lderr rate", "retransmits", "recovery (ms)",
                        "total (ms)", "events/s"});
  std::vector<TrtCell> trt_cells;
  for (const double rate : link_rates) {
    sim::FaultPlan plan;
    plan.seed = 4711;
    plan.with_rate(sim::FaultKind::kSlinkError, rate);
    TrtCell cell = run_trt_cell(bank, events, &plan);
    cell.rate = rate;
    trt_table.add_row({util::Table::fmt(rate, 2),
                       std::to_string(cell.retransmits),
                       util::Table::fmt(cell.recovery_ms, 3),
                       util::Table::fmt(cell.total_ms, 2),
                       util::Table::fmt(cell.events_per_s, 0)});
    trt_cells.push_back(std::move(cell));
  }
  trt_table.print();

  bench::expect(trt_cells.front().total_ms == trt_ref.total_ms &&
                    trt_cells.front().retransmits == 0,
                "zero-rate scan identical to the no-injector scan");
  const TrtCell& noisy = trt_cells.back();
  bench::expect(noisy.retransmits > 0 && noisy.recovery_ms > 0.0,
                "LDERR bursts cost visible retransmissions");
  // The retransmission occupies the link under the (longer) scan, so it
  // must never *shorten* the schedule; its real cost is the accounted
  // recovery time on the link resource.
  bench::expect(noisy.total_ms >= trt_cells.front().total_ms,
                "link recovery never speeds the scan up");
  bool all_correct = true;
  for (const TrtCell& c : trt_cells) all_correct = all_correct && c.correct;
  bench::expect(all_correct,
                "every faulted scan still produces the reference histogram");

  // --- Part C: board drop-out and graceful degradation ----------------
  sim::FaultPlan dropout_plan;
  dropout_plan.inject(sim::FaultKind::kBoardDropout, "board/acb1", 1);
  const TrtCell degraded = run_trt_cell(bank, events, &dropout_plan);
  util::Table deg_table("R1c: whole-board drop-out on the 2-board scan");
  deg_table.set_header({"configuration", "boards", "events/s", "degraded",
                        "correct"});
  deg_table.add_row({"clean", "2", util::Table::fmt(trt_ref.events_per_s, 0),
                     "no", "yes"});
  deg_table.add_row({"acb1 dropped", std::to_string(degraded.active_boards),
                     util::Table::fmt(degraded.events_per_s, 0),
                     degraded.degraded ? "yes" : "no",
                     degraded.correct ? "yes" : "no"});
  deg_table.print();

  bench::expect(degraded.degraded && degraded.active_boards == 1,
                "drop-out masks the board and flags the run degraded");
  bench::expect(degraded.correct,
                "the survivor absorbs the dead board's slice: histograms "
                "stay correct");
  bench::expect(degraded.events_per_s < trt_ref.events_per_s,
                "degraded mode costs throughput, not correctness");

  // --- artifact --------------------------------------------------------
  std::ofstream json("BENCH_fault.json");
  json << "{\n  \"transfers\": " << transfers
       << ",\n  \"dma_sweep\": [";
  for (std::size_t i = 0; i < dma_cells.size(); ++i) {
    const DmaCell& c = dma_cells[i];
    json << (i != 0 ? "," : "") << "\n    {\"rate\": " << c.rate
         << ", \"policy\": \"" << c.policy << "\", \"faults\": " << c.faults
         << ", \"retries\": " << c.retries
         << ", \"recovery_ms\": " << c.recovery_ms
         << ", \"elapsed_ms\": " << c.elapsed_ms
         << ", \"effective_mbps\": " << c.mbps << "}";
  }
  json << "\n  ],\n  \"trt_events\": " << n_events
       << ",\n  \"slink_sweep\": [";
  for (std::size_t i = 0; i < trt_cells.size(); ++i) {
    const TrtCell& c = trt_cells[i];
    json << (i != 0 ? "," : "") << "\n    {\"rate\": " << c.rate
         << ", \"retransmits\": " << c.retransmits
         << ", \"recovery_ms\": " << c.recovery_ms
         << ", \"total_ms\": " << c.total_ms
         << ", \"events_per_s\": " << c.events_per_s
         << ", \"correct\": " << (c.correct ? "true" : "false") << "}";
  }
  json << "\n  ],\n  \"dropout\": {\"degraded\": "
       << (degraded.degraded ? "true" : "false")
       << ", \"active_boards\": " << degraded.active_boards
       << ", \"events_per_s\": " << degraded.events_per_s
       << ", \"clean_events_per_s\": " << trt_ref.events_per_s
       << ", \"correct\": " << (degraded.correct ? "true" : "false")
       << "}\n}\n";
  json.close();
  std::printf("\nwrote BENCH_fault.json\n");

  return bench::finish();
}
