// A5 — simulator speed: event-driven incremental evaluation vs the
// full-sweep reference, and parallel multi-FPGA stepping of an ACB
// matrix. The headline claim is that on the quiescent-heavy TRT
// histogrammer workload (sparse straw pushes separated by idle cycles —
// how the core actually behaves between hits) the dirty-worklist
// evaluator is >= 3x faster in cycles/sec, while producing bit-identical
// results. Emits BENCH_simspeed.json for machine consumption.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chdl/hostif.hpp"
#include "chdl/sim.hpp"
#include "core/acb.hpp"
#include "hw/fpga.hpp"
#include "imgproc/conv_core.hpp"
#include "trt/trt_core.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/worker_pool.hpp"

namespace {

using atlantis::chdl::Design;
using atlantis::chdl::EvalMode;
using atlantis::chdl::HostInterface;
using atlantis::chdl::Simulator;

template <typename F>
double seconds(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Quiescent-heavy workload: one straw push, then `period - 1` idle
/// cycles, repeated — the duty cycle of a histogrammer between hits.
void drive_trt(Simulator& sim, int cycles, int period, int straw_count) {
  HostInterface host(sim);
  atlantis::util::Rng rng(42);
  int c = 0;
  while (c < cycles) {
    host.write(0x01, rng.next_below(static_cast<std::uint64_t>(straw_count)));
    ++c;
    const int idle = std::min(period - 1, cycles - c);
    host.idle(idle);
    c += idle;
  }
}

/// Active-heavy workload: one pixel per clock, the streaming convolver's
/// steady state. Event-driven evaluation has no quiescence to exploit
/// here, so this bounds its overhead.
void drive_conv(Simulator& sim, int pixels) {
  HostInterface host(sim);
  atlantis::util::Rng rng(7);
  for (int i = 0; i < pixels; ++i) host.write(0x01, rng.next_below(256));
}

struct ModeResult {
  double secs = 0;
  double cycles_per_sec = 0;
  std::uint64_t comp_evals = 0;
  std::vector<std::uint64_t> observed;  // architectural results to compare
};

}  // namespace

int main() {
  using namespace atlantis;
  bench::banner("A5", "simulator speed: event-driven + parallel stepping");

  std::ofstream json("BENCH_simspeed.json");
  json << "{\n";

  // --- TRT histogrammer, quiescent-heavy -----------------------------------
  trt::DetectorGeometry geo;
  geo.layers = 16;
  geo.straws_per_layer = 64;
  trt::PatternBank bank(geo, 256);
  chdl::Design trt_design("trt_bench");
  trt::build_trt_core(trt_design, bank);

  const int kTrtCycles = 24000;
  const int kTrtPeriod = 64;
  auto run_trt = [&](EvalMode mode) {
    Simulator sim(trt_design, mode);
    sim.peek_u64("host_rdata");  // settle power-up state outside the timer
    sim.reset_activity();
    ModeResult r;
    r.secs = seconds([&] {
      drive_trt(sim, kTrtCycles, kTrtPeriod, geo.straw_count());
    });
    r.cycles_per_sec = kTrtCycles / r.secs;
    r.comp_evals = sim.activity().comp_evals;
    HostInterface host(sim);
    r.observed.push_back(host.read(0x03));  // patterns over threshold
    for (int p = 0; p < 256; p += 17) {
      r.observed.push_back(host.read(0x10 + static_cast<std::uint32_t>(p)));
    }
    return r;
  };
  const ModeResult trt_full = run_trt(EvalMode::kFullSweep);
  const ModeResult trt_event = run_trt(EvalMode::kEventDriven);
  const double trt_speedup = trt_event.cycles_per_sec / trt_full.cycles_per_sec;

  // --- 3x3 convolution engine, active-heavy --------------------------------
  chdl::Design conv_design("conv_bench");
  imgproc::build_conv_core(conv_design, 256, imgproc::Kernel3x3::gaussian());
  const int kConvPixels = 20000;
  auto run_conv = [&](EvalMode mode) {
    Simulator sim(conv_design, mode);
    sim.peek_u64("host_rdata");
    sim.reset_activity();
    ModeResult r;
    r.secs = seconds([&] { drive_conv(sim, kConvPixels); });
    r.cycles_per_sec = kConvPixels / r.secs;
    r.comp_evals = sim.activity().comp_evals;
    HostInterface host(sim);
    r.observed.push_back(host.read(0x02));
    r.observed.push_back(host.read(0x03));
    return r;
  };
  const ModeResult conv_full = run_conv(EvalMode::kFullSweep);
  const ModeResult conv_event = run_conv(EvalMode::kEventDriven);
  const double conv_speedup =
      conv_event.cycles_per_sec / conv_full.cycles_per_sec;

  // --- ACB matrix: serial vs worker-pool stepping --------------------------
  // Four TRT cores on one board, all kept in full-sweep mode so every
  // simulator has real per-edge work for the pool to overlap.
  trt::PatternBank small_bank(geo, 64);
  chdl::Design node_design("trt_node");
  trt::build_trt_core(node_design, small_bank);
  const int kMatrixCycles = 2000;
  auto run_matrix = [&](bool parallel) {
    core::AcbBoard board(parallel ? "acb_par" : "acb_ser");
    const hw::Bitstream bs = hw::Bitstream::from_design(node_design);
    for (int i = 0; i < core::AcbBoard::kFpgaCount; ++i) {
      board.fpga(i).configure(bs);
      board.fpga(i).sim()->set_eval_mode(EvalMode::kFullSweep);
      board.fpga(i).sim()->peek_u64("host_rdata");
    }
    double secs = seconds([&] { board.step_matrix(kMatrixCycles, parallel); });
    return kMatrixCycles / secs;
  };
  const double matrix_serial_cps = run_matrix(false);
  const double matrix_parallel_cps = run_matrix(true);
  const double matrix_speedup = matrix_parallel_cps / matrix_serial_cps;
  const int workers = util::WorkerPool::shared().size();

  // --- report ---------------------------------------------------------------
  util::Table t("A5: cycles/sec by evaluation policy");
  t.set_header({"workload", "full-sweep", "event-driven", "speedup",
                "evals full", "evals event"});
  auto row = [&](const std::string& name, const ModeResult& f,
                 const ModeResult& e, double s) {
    t.add_row({name, std::to_string(static_cast<long long>(f.cycles_per_sec)),
               std::to_string(static_cast<long long>(e.cycles_per_sec)),
               std::to_string(s).substr(0, 5), std::to_string(f.comp_evals),
               std::to_string(e.comp_evals)});
  };
  row("TRT histogrammer (1/64 duty)", trt_full, trt_event, trt_speedup);
  row("3x3 conv (pixel every clock)", conv_full, conv_event, conv_speedup);
  t.add_row({"ACB 2x2 matrix (4 sims)",
             std::to_string(static_cast<long long>(matrix_serial_cps)),
             std::to_string(static_cast<long long>(matrix_parallel_cps)),
             std::to_string(matrix_speedup).substr(0, 5),
             "serial", "pool x" + std::to_string(workers)});
  t.add_note("matrix row compares serial vs worker-pool stepping "
             "(full-sweep sims; speedup tracks available cores)");
  t.print();

  json << "  \"trt\": {\"cycles\": " << kTrtCycles
       << ", \"duty_period\": " << kTrtPeriod
       << ", \"full_sweep_cps\": " << trt_full.cycles_per_sec
       << ", \"event_cps\": " << trt_event.cycles_per_sec
       << ", \"speedup\": " << trt_speedup
       << ", \"full_evals\": " << trt_full.comp_evals
       << ", \"event_evals\": " << trt_event.comp_evals << "},\n";
  json << "  \"conv\": {\"cycles\": " << kConvPixels
       << ", \"full_sweep_cps\": " << conv_full.cycles_per_sec
       << ", \"event_cps\": " << conv_event.cycles_per_sec
       << ", \"speedup\": " << conv_speedup
       << ", \"full_evals\": " << conv_full.comp_evals
       << ", \"event_evals\": " << conv_event.comp_evals << "},\n";
  json << "  \"acb_matrix\": {\"cycles\": " << kMatrixCycles
       << ", \"sims\": " << core::AcbBoard::kFpgaCount
       << ", \"workers\": " << workers
       << ", \"serial_cps\": " << matrix_serial_cps
       << ", \"parallel_cps\": " << matrix_parallel_cps
       << ", \"speedup\": " << matrix_speedup << "}\n";
  json << "}\n";
  json.close();
  std::printf("\nwrote BENCH_simspeed.json\n");

  bench::expect(trt_event.observed == trt_full.observed,
                "event-driven TRT results are bit-identical to full sweep");
  bench::expect(conv_event.observed == conv_full.observed,
                "event-driven conv results are bit-identical to full sweep");
  bench::expect(trt_speedup >= 3.0,
                "event-driven >= 3x on the quiescent-heavy TRT workload");
  bench::expect(trt_event.comp_evals * 5 < trt_full.comp_evals,
                "dirty worklist skips most evaluations on sparse input");
  bench::expect(matrix_parallel_cps > 0 && matrix_serial_cps > 0,
                "parallel ACB stepping reported");
  return bench::finish();
}
