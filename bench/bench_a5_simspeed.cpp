// A5 — simulator speed: the evaluation backends (full-sweep reference,
// event-driven dirty worklist, threaded region superops) and the
// netlist optimizer, plus parallel multi-FPGA stepping of an ACB
// matrix. The headline claims: on the quiescent-heavy TRT histogrammer
// workload (sparse straw pushes separated by idle cycles — how the core
// actually behaves between hits) the dirty-worklist evaluator is >= 3x
// faster in cycles/sec than full sweep, the threaded backend is >= 3x
// faster again than event-driven, all bit-identical; and the optimizer
// pipeline (fold/dce/cse/fuse) shrinks the op tape on top of that.
// Emits BENCH_simspeed.json with one row per backend per workload.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "chdl/hostif.hpp"
#include "chdl/sim.hpp"
#include "chdl/stats.hpp"
#include "chdl/threaded.hpp"
#include "core/acb.hpp"
#include "hw/fpga.hpp"
#include "imgproc/conv_core.hpp"
#include "trt/trt_core.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/worker_pool.hpp"

namespace {

using atlantis::chdl::Design;
using atlantis::chdl::EvalMode;
using atlantis::chdl::HostInterface;
using atlantis::chdl::OptimizePassStats;
using atlantis::chdl::OptimizeReport;
using atlantis::chdl::SimOptions;
using atlantis::chdl::Simulator;

template <typename F>
double seconds(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Quiescent-heavy workload: one straw push, then `period - 1` idle
/// cycles, repeated — the duty cycle of a histogrammer between hits.
void drive_trt(Simulator& sim, int cycles, int period, int straw_count) {
  HostInterface host(sim);
  atlantis::util::Rng rng(42);
  int c = 0;
  while (c < cycles) {
    host.write(0x01, rng.next_below(static_cast<std::uint64_t>(straw_count)));
    ++c;
    const int idle = std::min(period - 1, cycles - c);
    host.idle(idle);
    c += idle;
  }
}

/// Active-heavy workload: one pixel per clock, the streaming convolver's
/// steady state. Event-driven evaluation has no quiescence to exploit
/// here, so this bounds its overhead.
void drive_conv(Simulator& sim, int pixels) {
  HostInterface host(sim);
  atlantis::util::Rng rng(7);
  for (int i = 0; i < pixels; ++i) host.write(0x01, rng.next_below(256));
}

struct ModeResult {
  double secs = 0;
  double cycles_per_sec = 0;
  std::uint64_t comp_evals = 0;
  std::size_t tape_ops = 0;
  EvalMode resolved = EvalMode::kEventDriven;  // what actually ran
  OptimizeReport opt;                   // copy; empty when optimizer off
  bool optimized = false;
  std::vector<std::uint64_t> observed;  // architectural results to compare
};

const char* mode_name(EvalMode m) {
  switch (m) {
    case EvalMode::kFullSweep: return "full_sweep";
    case EvalMode::kEventDriven: return "event";
    case EvalMode::kThreaded: return "threaded";
    case EvalMode::kAuto: return "auto";
  }
  return "?";
}

/// The five evaluation policies every workload runs under. kAuto is the
/// default_sim_options() production policy: it must land on (within
/// noise of) the best pinned backend for each workload.
SimOptions policy_full() {
  return SimOptions{.mode = EvalMode::kFullSweep, .optimize = false};
}
SimOptions policy_event_raw() {
  return SimOptions{.mode = EvalMode::kEventDriven, .optimize = false};
}
SimOptions policy_event_opt() {
  return SimOptions{.mode = EvalMode::kEventDriven, .optimize = true};
}
SimOptions policy_threaded() {
  return SimOptions{.mode = EvalMode::kThreaded, .optimize = true};
}
SimOptions policy_auto() {
  return SimOptions{.mode = EvalMode::kAuto, .optimize = true};
}

std::int64_t pass_removed(const OptimizeReport& r, const char* name) {
  const OptimizePassStats* p = r.pass(name);
  return p == nullptr ? 0 : p->ops_before - p->ops_after;
}

std::int64_t pass_rewrites(const OptimizeReport& r, const char* name) {
  const OptimizePassStats* p = r.pass(name);
  return p == nullptr ? 0 : p->rewrites;
}

std::vector<int> worker_counts_from_env() {
  std::vector<int> counts;
  const char* env = std::getenv("A5_WORKERS");
  std::stringstream ss(env != nullptr ? env : "1,2,4");
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int v = std::atoi(item.c_str());
    if (v >= 1) counts.push_back(v);
  }
  if (counts.empty()) counts = {1, 2, 4};
  return counts;
}

}  // namespace

int main() {
  using namespace atlantis;
  bench::banner("A5", "simulator speed: event-driven + optimizer + parallel");

  std::ofstream json("BENCH_simspeed.json");
  json << "{\n";

  // --- TRT histogrammer, quiescent-heavy -----------------------------------
  trt::DetectorGeometry geo;
  geo.layers = 16;
  geo.straws_per_layer = 64;
  trt::PatternBank bank(geo, 256);
  chdl::Design trt_design("trt_bench");
  trt::build_trt_core(trt_design, bank);

  // Smoke mode (BENCH_SMOKE=1, the CI setting) shrinks the workloads and
  // skips the wall-clock speed expectations below; the bit-identical
  // and op-count checks still run in full.
  const bool smoke = bench::smoke();
  // Full runs take the best of five timings per policy: the wall-clock
  // ratio checks below compare backends within a few percent, the fast
  // backends finish a run in single-digit milliseconds, and a single
  // timing on a busy host can eat that margin in scheduler noise.
  const int kReps = smoke ? 1 : 5;
  auto best_of = [&](const auto& fn) {
    ModeResult best = fn();
    for (int rep = 1; rep < kReps; ++rep) {
      ModeResult r = fn();
      if (r.cycles_per_sec > best.cycles_per_sec) best = std::move(r);
    }
    return best;
  };
  const int kTrtCycles = smoke ? 4000 : 24000;
  const int kTrtPeriod = 64;
  auto run_trt = [&](const SimOptions& so) {
    Simulator sim(trt_design, so);
    sim.peek_u64("host_rdata");  // settle power-up state outside the timer
    sim.reset_activity();
    ModeResult r;
    r.secs = seconds([&] {
      drive_trt(sim, kTrtCycles, kTrtPeriod, geo.straw_count());
    });
    r.cycles_per_sec = kTrtCycles / r.secs;
    r.comp_evals = sim.activity().comp_evals;
    r.tape_ops = sim.tape_ops();
    r.resolved = sim.eval_mode();
    if (sim.optimize_report() != nullptr) {
      r.opt = *sim.optimize_report();
      r.optimized = true;
    }
    HostInterface host(sim);
    r.observed.push_back(host.read(0x03));  // patterns over threshold
    for (int p = 0; p < 256; p += 17) {
      r.observed.push_back(host.read(0x10 + static_cast<std::uint32_t>(p)));
    }
    return r;
  };
  const ModeResult trt_full = best_of([&] { return run_trt(policy_full()); });
  const ModeResult trt_raw = best_of([&] { return run_trt(policy_event_raw()); });
  const ModeResult trt_opt = best_of([&] { return run_trt(policy_event_opt()); });
  const ModeResult trt_thr = best_of([&] { return run_trt(policy_threaded()); });
  const ModeResult trt_auto = best_of([&] { return run_trt(policy_auto()); });
  const double trt_speedup = trt_opt.cycles_per_sec / trt_full.cycles_per_sec;
  const double trt_thr_speedup =
      trt_thr.cycles_per_sec / trt_opt.cycles_per_sec;

  // --- 3x3 convolution engine, active-heavy --------------------------------
  chdl::Design conv_design("conv_bench");
  imgproc::build_conv_core(conv_design, 256, imgproc::Kernel3x3::gaussian());
  const int kConvPixels = smoke ? 4000 : 20000;
  auto run_conv = [&](const SimOptions& so) {
    Simulator sim(conv_design, so);
    sim.peek_u64("host_rdata");
    sim.reset_activity();
    ModeResult r;
    r.secs = seconds([&] { drive_conv(sim, kConvPixels); });
    r.cycles_per_sec = kConvPixels / r.secs;
    r.comp_evals = sim.activity().comp_evals;
    r.tape_ops = sim.tape_ops();
    r.resolved = sim.eval_mode();
    if (sim.optimize_report() != nullptr) {
      r.opt = *sim.optimize_report();
      r.optimized = true;
    }
    HostInterface host(sim);
    r.observed.push_back(host.read(0x02));
    r.observed.push_back(host.read(0x03));
    return r;
  };
  const ModeResult conv_full = best_of([&] { return run_conv(policy_full()); });
  const ModeResult conv_raw = best_of([&] { return run_conv(policy_event_raw()); });
  const ModeResult conv_opt = best_of([&] { return run_conv(policy_event_opt()); });
  const ModeResult conv_thr = best_of([&] { return run_conv(policy_threaded()); });
  const ModeResult conv_auto = best_of([&] { return run_conv(policy_auto()); });
  const double conv_speedup =
      conv_opt.cycles_per_sec / conv_full.cycles_per_sec;
  const double conv_thr_speedup =
      conv_thr.cycles_per_sec / conv_opt.cycles_per_sec;

  // --- ACB matrix: worker-count sweep --------------------------------------
  // Four TRT cores on one board, all kept in full-sweep mode so every
  // simulator has real per-edge work for the pool to overlap. The sweep
  // steps the same matrix with pools of 1/2/4 workers (override with
  // A5_WORKERS=comma-separated counts).
  trt::PatternBank small_bank(geo, 64);
  chdl::Design node_design("trt_node");
  trt::build_trt_core(node_design, small_bank);
  const int kMatrixCycles = smoke ? 400 : 2000;
  auto run_matrix = [&](bool parallel, util::WorkerPool* pool) {
    core::AcbBoard board(parallel ? "acb_par" : "acb_ser");
    const hw::Bitstream bs = hw::Bitstream::from_design(node_design);
    for (int i = 0; i < core::AcbBoard::kFpgaCount; ++i) {
      board.fpga(i).configure(bs);
      board.fpga(i).sim()->set_eval_mode(EvalMode::kFullSweep);
      board.fpga(i).sim()->peek_u64("host_rdata");
    }
    double secs = seconds(
        [&] { board.step_matrix(kMatrixCycles, parallel, false, pool); });
    return std::pair<double, double>{kMatrixCycles / secs, secs};
  };
  const double matrix_serial_cps = run_matrix(false, nullptr).first;
  struct MatrixRow {
    int workers = 0;
    double cps = 0;
    // Per-worker share of the wall clock spent inside simulator steps
    // (index 0 = the calling thread). A flat-lined pool shows up here as
    // helpers stuck near zero while worker 0 does everything.
    std::vector<double> util;
    std::vector<std::uint64_t> tasks;
  };
  std::vector<MatrixRow> matrix_rows;
  double matrix_best_cps = 0;
  for (const int w : worker_counts_from_env()) {
    util::WorkerPool pool(w);
    pool.reset_worker_stats();
    const auto [cps, secs] = run_matrix(true, &pool);
    MatrixRow mr;
    mr.workers = pool.size();
    mr.cps = cps;
    for (const util::WorkerPool::WorkerStats& ws : pool.worker_stats()) {
      mr.util.push_back(secs > 0
                            ? static_cast<double>(ws.busy_ns) / (secs * 1e9)
                            : 0.0);
      mr.tasks.push_back(ws.tasks);
    }
    matrix_rows.push_back(std::move(mr));
    if (cps > matrix_best_cps) matrix_best_cps = cps;
  }
  const double matrix_speedup = matrix_best_cps / matrix_serial_cps;

  // --- report ---------------------------------------------------------------
  util::Table t("A5: cycles/sec by evaluation policy");
  t.set_header({"workload", "full-sweep", "event raw", "event+opt", "threaded",
                "auto", "thr/event", "tape ops", "fold/dce/cse/fuse"});
  auto row = [&](const std::string& name, const ModeResult& f,
                 const ModeResult& raw, const ModeResult& opt,
                 const ModeResult& thr, const ModeResult& au, double thr_s) {
    std::string tape = std::to_string(opt.opt.ops_before) + "->" +
                       std::to_string(opt.tape_ops);
    std::string passes = std::to_string(pass_removed(opt.opt, "fold")) + "/" +
                         std::to_string(pass_removed(opt.opt, "dce")) + "/" +
                         std::to_string(pass_removed(opt.opt, "cse")) + "/" +
                         std::to_string(pass_rewrites(opt.opt, "fuse"));
    t.add_row({name, std::to_string(static_cast<long long>(f.cycles_per_sec)),
               std::to_string(static_cast<long long>(raw.cycles_per_sec)),
               std::to_string(static_cast<long long>(opt.cycles_per_sec)),
               std::to_string(static_cast<long long>(thr.cycles_per_sec)),
               std::to_string(static_cast<long long>(au.cycles_per_sec)) +
                   " (" + mode_name(au.resolved) + ")",
               std::to_string(thr_s).substr(0, 5), tape, passes});
  };
  row("TRT histogrammer (1/64 duty)", trt_full, trt_raw, trt_opt, trt_thr,
      trt_auto, trt_thr_speedup);
  row("3x3 conv (pixel every clock)", conv_full, conv_raw, conv_opt, conv_thr,
      conv_auto, conv_thr_speedup);
  for (const MatrixRow& mr : matrix_rows) {
    std::string util_s;
    for (std::size_t i = 0; i < mr.util.size(); ++i) {
      if (i != 0) util_s += "/";
      util_s += std::to_string(static_cast<int>(mr.util[i] * 100 + 0.5));
      util_s += "%";
    }
    t.add_row({"ACB 2x2 matrix, pool x" + std::to_string(mr.workers),
               std::to_string(static_cast<long long>(matrix_serial_cps)),
               "-", std::to_string(static_cast<long long>(mr.cps)), "-", "-",
               std::to_string(mr.cps / matrix_serial_cps).substr(0, 5),
               "-", "util " + util_s});
  }
  t.add_note("threaded = region-superop backend (" +
             std::string(chdl::threaded_uses_computed_goto()
                             ? "computed-goto"
                             : "switch") +
             " dispatch); thr/event = threaded vs event+opt cycles/sec");
  t.add_note("auto = default production policy; resolves per design to the "
             "event or threaded backend by tape size (resolved mode in "
             "parentheses)");
  t.add_note("tape ops column: comb ops as elaborated -> ops compiled after "
             "fold/dce/cse/fuse; pass column counts ops removed (fuse: "
             "rewrites)");
  t.add_note("matrix rows compare serial stepping vs a worker pool of the "
             "given size; util = per-worker share of wall time inside "
             "simulator steps (worker 0 = caller)");
  t.print();

  const char* dispatch =
      chdl::threaded_uses_computed_goto() ? "computed_goto" : "switch";
  auto emit_workload = [&](const char* key, int cycles, const ModeResult& f,
                           const ModeResult& raw, const ModeResult& opt,
                           const ModeResult& thr, const ModeResult& au,
                           double speedup, double thr_speedup,
                           bool trailing_comma) {
    // One row per backend, tagged with a "backend" field, plus the flat
    // keys older consumers of this file already read.
    const auto backend_row = [&](const char* backend, const ModeResult& r,
                                 bool last) {
      json << "    {\"backend\": \"" << backend
           << "\", \"cps\": " << r.cycles_per_sec
           << ", \"evals\": " << r.comp_evals
           << ", \"tape_ops\": " << r.tape_ops
           << ", \"optimized\": " << (r.optimized ? "true" : "false") << "}"
           << (last ? "\n" : ",\n");
    };
    json << "  \"" << key << "\": {\"cycles\": " << cycles
         << ", \"full_sweep_cps\": " << f.cycles_per_sec
         << ", \"event_raw_cps\": " << raw.cycles_per_sec
         << ", \"event_cps\": " << opt.cycles_per_sec
         << ", \"threaded_cps\": " << thr.cycles_per_sec
         << ", \"auto_cps\": " << au.cycles_per_sec
         << ", \"auto_resolved\": \"" << mode_name(au.resolved) << "\""
         << ", \"speedup\": " << speedup
         << ", \"threaded_speedup\": " << thr_speedup
         << ", \"dispatch\": \"" << dispatch << "\""
         << ", \"full_evals\": " << f.comp_evals
         << ", \"event_evals\": " << opt.comp_evals
         << ", \"threaded_evals\": " << thr.comp_evals
         << ", \"tape_ops_before\": " << opt.opt.ops_before
         << ", \"tape_ops_after\": " << opt.tape_ops
         << ", \"fold_removed\": " << pass_removed(opt.opt, "fold")
         << ", \"dce_removed\": " << pass_removed(opt.opt, "dce")
         << ", \"cse_removed\": " << pass_removed(opt.opt, "cse")
         << ", \"fuse_rewrites\": " << pass_rewrites(opt.opt, "fuse")
         << ", \"backends\": [\n";
    backend_row("full_sweep", f, false);
    backend_row("event_raw", raw, false);
    backend_row("event_opt", opt, false);
    backend_row("threaded", thr, false);
    backend_row("auto", au, true);
    json << "  ]}" << (trailing_comma ? ",\n" : "\n");
  };
  emit_workload("trt", kTrtCycles, trt_full, trt_raw, trt_opt, trt_thr,
                trt_auto, trt_speedup, trt_thr_speedup, true);
  emit_workload("conv", kConvPixels, conv_full, conv_raw, conv_opt, conv_thr,
                conv_auto, conv_speedup, conv_thr_speedup, true);
  json << "  \"acb_matrix\": {\"cycles\": " << kMatrixCycles
       << ", \"sims\": " << core::AcbBoard::kFpgaCount
       << ", \"serial_cps\": " << matrix_serial_cps
       << ", \"parallel_cps\": " << matrix_best_cps
       << ", \"speedup\": " << matrix_speedup << ", \"sweep\": [";
  for (std::size_t i = 0; i < matrix_rows.size(); ++i) {
    const MatrixRow& mr = matrix_rows[i];
    json << (i != 0 ? ", " : "") << "{\"workers\": " << mr.workers
         << ", \"parallel_cps\": " << mr.cps << ", \"worker_util\": [";
    for (std::size_t wi = 0; wi < mr.util.size(); ++wi) {
      json << (wi != 0 ? ", " : "") << mr.util[wi];
    }
    json << "], \"worker_tasks\": [";
    for (std::size_t wi = 0; wi < mr.tasks.size(); ++wi) {
      json << (wi != 0 ? ", " : "") << mr.tasks[wi];
    }
    json << "]}";
  }
  json << "]}\n";
  json << "}\n";
  json.close();
  std::printf("\nwrote BENCH_simspeed.json\n");

  bench::expect(trt_raw.observed == trt_full.observed,
                "event-driven TRT results are bit-identical to full sweep");
  bench::expect(trt_opt.observed == trt_full.observed,
                "optimized TRT results are bit-identical to full sweep");
  bench::expect(conv_raw.observed == conv_full.observed,
                "event-driven conv results are bit-identical to full sweep");
  bench::expect(conv_opt.observed == conv_full.observed,
                "optimized conv results are bit-identical to full sweep");
  bench::expect(trt_thr.observed == trt_full.observed,
                "threaded TRT results are bit-identical to full sweep");
  bench::expect(conv_thr.observed == conv_full.observed,
                "threaded conv results are bit-identical to full sweep");
  bench::expect(trt_auto.observed == trt_full.observed,
                "auto TRT results are bit-identical to full sweep");
  bench::expect(conv_auto.observed == conv_full.observed,
                "auto conv results are bit-identical to full sweep");
  bench::expect(trt_auto.resolved != EvalMode::kAuto &&
                    conv_auto.resolved != EvalMode::kAuto,
                "auto mode resolves to a concrete backend at construction");
  if (smoke) {
    std::printf("  [smoke   ] wall-clock speed expectations skipped "
                "(BENCH_SMOKE set)\n");
  } else {
    bench::expect(trt_speedup >= 3.0,
                  "event+optimizer >= 3x on the quiescent-heavy TRT workload");
    bench::expect(trt_thr_speedup >= 3.0,
                  "threaded backend >= 3x over event-driven on the "
                  "quiescent-heavy TRT workload");
    // The default policy must not leave meaningful speed on the table on
    // either workload shape (0.95 absorbs run-to-run timer noise).
    bench::expect(trt_auto.cycles_per_sec >=
                      0.95 * std::max(trt_opt.cycles_per_sec,
                                      trt_thr.cycles_per_sec),
                  "auto policy within 5% of the best pinned backend on TRT");
    bench::expect(conv_auto.cycles_per_sec >=
                      0.95 * std::max(conv_opt.cycles_per_sec,
                                      conv_thr.cycles_per_sec),
                  "auto policy within 5% of the best pinned backend on conv");
  }
  bool stats_cover_pool = !matrix_rows.empty();
  for (const MatrixRow& mr : matrix_rows) {
    std::uint64_t total_tasks = 0;
    for (const std::uint64_t tk : mr.tasks) total_tasks += tk;
    stats_cover_pool = stats_cover_pool &&
                       static_cast<int>(mr.tasks.size()) == mr.workers &&
                       total_tasks > 0;
  }
  bench::expect(stats_cover_pool,
                "per-worker utilization covers every pool worker and "
                "records executed chunks");
  bench::expect(trt_opt.comp_evals * 5 < trt_full.comp_evals,
                "dirty worklist skips most evaluations on sparse input");
  bench::expect(trt_opt.tape_ops <
                    static_cast<std::size_t>(trt_opt.opt.ops_before),
                "optimizer shrinks the TRT op tape");
  bench::expect(conv_opt.tape_ops <
                    static_cast<std::size_t>(conv_opt.opt.ops_before),
                "optimizer shrinks the conv op tape");
  bench::expect(matrix_best_cps > 0 && matrix_serial_cps > 0,
                "parallel ACB stepping reported");
  return bench::finish();
}
