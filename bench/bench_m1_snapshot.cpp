// M1 — the snapshot/restore layer: stream size, save/restore wall
// latency, bit-identical mid-stream restore under a fault plan, and
// what preemptive scheduling buys on a deadline-heavy mix.
//
// Part 1 freezes a two-board crate mid-serve — ledger, queues, per-job
// progress, per-board driver/switcher state, the timeline and the
// fault injector, all in one versioned stream — and restores it into an
// identically assembled twin. The twin must finish the run with a
// bit-identical schedule and ledger (that is the whole point of the
// layer: a restore is indistinguishable from never having paused).
//
// Part 2 runs the same staged workload — two 30 ms background jobs,
// then eight 100 us jobs under a 40 ms deadline — under the batched,
// abort/rerun and checkpoint/resume policies. Batching makes the
// deadline jobs wait out the background batch; abort/rerun holds the
// deadlines but re-pays the evicted compute; checkpoint/resume holds
// the deadlines at a strictly smaller makespan. Writes
// BENCH_snapshot.json.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "serve/jobservice.hpp"
#include "sim/fault.hpp"
#include "sim/snapshot.hpp"
#include "sim/timeline.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace atlantis;

namespace {

std::string serialize(const sim::Timeline& tl) {
  std::ostringstream os;
  for (const sim::Transaction& t : tl.transactions()) {
    os << sim::txn_kind_name(t.kind) << '|' << t.label << '|'
       << tl.track_name(t.track) << '|' << t.post << '|' << t.start << '|'
       << t.end << '|' << t.bytes << '\n';
  }
  return os.str();
}

std::string serialize(const std::vector<serve::JobRecord>& records) {
  std::ostringstream os;
  for (const serve::JobRecord& r : records) {
    os << r.id << '|' << r.tenant << '|' << r.config << '|' << r.board << '|'
       << r.start << '|' << r.finish << '|' << r.preemptions << '|'
       << util::error_code_name(r.error) << '|' << r.outcome.checksum << '\n';
  }
  return os.str();
}

serve::JobSpec make_job(const std::string& tenant, const std::string& config,
                        int index, util::Picoseconds compute,
                        util::Picoseconds deadline = 0) {
  serve::JobSpec job;
  job.tenant = tenant;
  job.kind = serve::JobKind::kCustom;
  job.config = config;
  job.deadline = deadline;
  job.work = [index, compute] {
    serve::JobOutcome out;
    out.checksum =
        0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1);
    out.compute_time = compute;
    out.dma_in_bytes = 1024;
    out.dma_out_bytes = 256;
    return out;
  };
  return job;
}

struct World {
  std::unique_ptr<sim::FaultInjector> injector;
  core::AtlantisSystem sys;
  std::unique_ptr<serve::JobService> service;

  World(serve::ServeOptions options, int boards, const sim::FaultPlan* plan)
      : sys("crate") {
    for (int i = 0; i < boards; ++i) sys.add_acb("acb" + std::to_string(i));
    if (plan != nullptr) {
      injector = std::make_unique<sim::FaultInjector>(*plan);
      sys.set_fault_injector(injector.get());
    }
    service = std::make_unique<serve::JobService>(sys, options);
    service->register_config(hw::Bitstream{"alpha", {}, nullptr, 1.0, {}});
    service->register_config(hw::Bitstream{"beta", {}, nullptr, 1.0, {}});
  }

  ~World() { sys.set_fault_injector(nullptr); }
};

void submit_serve_mix(serve::JobService& s, int jobs) {
  for (int i = 0; i < jobs; ++i) {
    const std::string tenant =
        i % 3 == 0 ? "atlas" : (i % 3 == 1 ? "cms" : "lhcb");
    const std::string config = (i % 2 == 0) ? "alpha" : "beta";
    (void)s.submit(
             make_job(tenant, config, i, (i % 5 + 1) * util::kMicrosecond))
        .value_or_throw();
  }
}

struct PolicyCell {
  std::string name;
  double makespan_ms = 0.0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t preemptions = 0;
};

/// Two 30 ms background jobs dispatched first, then eight 100 us
/// deadline jobs land — the staging where scheduling policy decides
/// who makes their deadline.
PolicyCell run_policy(const std::string& name, serve::Policy policy) {
  serve::ServeOptions options;
  options.policy = policy;
  options.preempt_slice = util::kMillisecond;
  World world(options, 1, nullptr);
  for (int i = 0; i < 2; ++i) {
    (void)world.service
        ->submit(make_job("batch", "alpha", i, 30 * util::kMillisecond))
        .value_or_throw();
  }
  serve::RunOptions one_step;
  one_step.max_dispatches = 1;
  world.service->run(one_step);
  for (int i = 2; i < 10; ++i) {
    (void)world.service
        ->submit(make_job("rt", "alpha", i, 100 * util::kMicrosecond,
                          40 * util::kMillisecond))
        .value_or_throw();
  }
  world.service->run();
  PolicyCell cell;
  cell.name = name;
  util::Picoseconds last_finish = 0;
  for (const serve::JobRecord& rec : world.service->jobs()) {
    last_finish = std::max(last_finish, rec.finish);
    cell.preemptions += rec.preemptions;
    if (rec.deadline > 0 && rec.finish > rec.deadline) ++cell.deadline_misses;
  }
  cell.makespan_ms = util::ps_to_ms(last_finish);
  return cell;
}

}  // namespace

int main() {
  bench::banner("M1", "snapshot/restore: stream cost, bit-identical "
                      "mid-stream restore, preempt vs rerun");

  const int n_jobs = bench::smoke() ? 12 : 36;

  // --- part 1: freeze a fault-plan serve run mid-stream ----------------
  sim::FaultPlan plan;
  plan.seed = 20260808;
  plan.with_rate(sim::FaultKind::kDmaStall, 0.10);
  plan.inject(sim::FaultKind::kBoardDropout, "board/acb1", /*nth=*/2);
  serve::ServeOptions options;  // batched, the serving default

  World ref(options, 2, &plan);
  submit_serve_mix(*ref.service, n_jobs);
  ref.service->run();
  const std::string want_records = serialize(ref.service->jobs());
  const std::string want_schedule = serialize(ref.sys.timeline());

  World live(options, 2, &plan);
  submit_serve_mix(*live.service, n_jobs);
  serve::RunOptions three_steps;
  three_steps.max_dispatches = 3;
  live.service->run(three_steps);

  const auto save_begin = std::chrono::steady_clock::now();
  sim::SnapshotWriter w;
  live.service->save_state(w);
  const std::vector<std::uint8_t> bytes = w.bytes();
  const auto save_end = std::chrono::steady_clock::now();

  World twin(options, 2, &plan);
  submit_serve_mix(*twin.service, n_jobs);
  const auto restore_begin = std::chrono::steady_clock::now();
  auto opened = sim::SnapshotReader::open(bytes);
  if (!opened.ok()) {
    std::printf("snapshot reopen failed: %s\n", opened.message().c_str());
    return 1;
  }
  twin.service->load_state(opened.value());
  const auto restore_end = std::chrono::steady_clock::now();
  twin.service->run();

  const double save_us =
      std::chrono::duration<double, std::micro>(save_end - save_begin).count();
  const double restore_us =
      std::chrono::duration<double, std::micro>(restore_end - restore_begin)
          .count();
  const bool identical = serialize(twin.service->jobs()) == want_records &&
                         serialize(twin.sys.timeline()) == want_schedule;

  util::Table snap("mid-stream snapshot of a 2-board serve run (" +
                   std::to_string(n_jobs) + " jobs, fault plan active)");
  snap.set_header({"metric", "value"});
  snap.add_row({"stream size (bytes)", std::to_string(bytes.size())});
  snap.add_row({"save latency (us)", util::Table::fmt(save_us, 1)});
  snap.add_row({"restore latency (us)", util::Table::fmt(restore_us, 1)});
  snap.add_row({"restored replay", identical ? "bit-identical" : "DIVERGED"});
  snap.print();

  bench::expect(identical,
                "restored twin finishes with a bit-identical schedule, "
                "ledger and fault tail");
  bench::expect(bytes.size() > 0 && bytes.size() < (1u << 20),
                "snapshot stream is compact (under 1 MiB for this crate)");

  std::string warm_start_json;

  // --- part 1.5: instant warm start from a committed genesis snapshot --
  // A serve bench normally pays a warm-up before the measured region:
  // staging configurations, filling the LRU caches, running the first
  // scheduling steps. The snapshot layer makes that a one-time cost: a
  // "genesis" snapshot of the warmed-up crate is committed under
  // bench/data/, and every later run seeds from the file instead of
  // re-running the warm-up. The workload is fixed (36 jobs, no smoke
  // shrink) so one committed file serves every mode, and the stream is
  // deterministic, so staleness is plain byte inequality — a stale or
  // missing file is regenerated in place and the run continues.
  {
    constexpr int kWarmJobs = 36;
    const std::string warm_file = bench::data_path("warm_m1.snap");

    // The warm-up cost worth skipping is the *functional* work — the
    // pure job payloads (pattern banks, lookup tables, reference
    // results) evaluated while the crate warms. The snapshot carries
    // their outcomes in a few bytes each, so the warm path loads in
    // microseconds what the cold path recomputes in milliseconds.
    auto heavy_job = [](const std::string& tenant, const std::string& config,
                        int index) {
      serve::JobSpec job;
      job.tenant = tenant;
      job.kind = serve::JobKind::kCustom;
      job.config = config;
      job.work = [index] {
        std::uint64_t x =
            0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1);
        for (int i = 0; i < 200000; ++i) {  // a real table-build payload
          x ^= x >> 30;
          x *= 0xbf58476d1ce4e5b9ull;
          x ^= x >> 27;
        }
        serve::JobOutcome out;
        out.checksum = x;
        out.compute_time = util::kMicrosecond;
        out.dma_in_bytes = 1024;
        out.dma_out_bytes = 256;
        return out;
      };
      return job;
    };
    auto submit_warm_mix = [&heavy_job](serve::JobService& s) {
      for (int i = 0; i < kWarmJobs; ++i) {
        const std::string tenant =
            i % 3 == 0 ? "atlas" : (i % 3 == 1 ? "cms" : "lhcb");
        (void)s.submit(heavy_job(tenant, i % 2 == 0 ? "alpha" : "beta", i))
            .value_or_throw();
      }
    };

    // Cold: pay the warm-up (six scheduling steps, every payload
    // evaluated) for real.
    World cold(options, 2, &plan);
    submit_warm_mix(*cold.service);
    const auto cold_begin = std::chrono::steady_clock::now();
    serve::RunOptions six_steps;
    six_steps.max_dispatches = 6;
    cold.service->run(six_steps);
    const auto cold_end = std::chrono::steady_clock::now();
    sim::SnapshotWriter ww;
    cold.service->save_state(ww);
    const std::vector<std::uint8_t> genesis = ww.bytes();

    bool regenerated = false;
    {
      const auto committed = bench::load_snapshot_file(warm_file);
      if (!committed.has_value() || *committed != genesis) {
        regenerated = true;
        if (!bench::save_snapshot_file(warm_file, genesis)) {
          std::printf("cannot write %s\n", warm_file.c_str());
          return 1;
        }
      }
    }

    // Warm: seed an identically assembled crate from the file.
    const auto file_bytes = bench::load_snapshot_file(warm_file);
    World warm(options, 2, &plan);
    submit_warm_mix(*warm.service);
    const auto warm_begin = std::chrono::steady_clock::now();
    auto warm_opened = sim::SnapshotReader::open(*file_bytes);
    if (!warm_opened.ok()) {
      std::printf("warm snapshot reopen failed: %s\n",
                  warm_opened.message().c_str());
      return 1;
    }
    warm.service->load_state(warm_opened.value());
    const auto warm_end = std::chrono::steady_clock::now();

    const double cold_us =
        std::chrono::duration<double, std::micro>(cold_end - cold_begin)
            .count();
    const double warm_us =
        std::chrono::duration<double, std::micro>(warm_end - warm_begin)
            .count();

    // The warm crate must be indistinguishable from the cold one.
    cold.service->run();
    warm.service->run();
    const bool warm_identical =
        serialize(warm.service->jobs()) == serialize(cold.service->jobs()) &&
        serialize(warm.sys.timeline()) == serialize(cold.sys.timeline());

    util::Table wt("instant warm start: committed genesis snapshot vs "
                   "re-running the warm-up (36 jobs, 6 steps)");
    wt.set_header({"metric", "value"});
    wt.add_row({"cold warm-up (us)", util::Table::fmt(cold_us, 1)});
    wt.add_row({"warm seed from file (us)", util::Table::fmt(warm_us, 1)});
    wt.add_row({"speedup", util::Table::fmt(cold_us / warm_us, 1) + "x"});
    wt.add_row({"genesis file", regenerated ? "regenerated" : "committed"});
    wt.add_row(
        {"warm continuation", warm_identical ? "bit-identical" : "DIVERGED"});
    wt.print();

    bench::expect(warm_identical,
                  "warm-started crate finishes bit-identically to the "
                  "cold one");
    if (!bench::smoke()) {
      bench::expect(warm_us < cold_us,
                    "seeding from the genesis file beats re-running the "
                    "warm-up");
    }
    warm_start_json = ",\n  \"warm_start\": {\"jobs\": 36"
                      ",\n    \"cold_setup_us\": " + std::to_string(cold_us) +
                      ",\n    \"warm_setup_us\": " + std::to_string(warm_us) +
                      ",\n    \"genesis_bytes\": " +
                      std::to_string(genesis.size()) +
                      ",\n    \"regenerated\": " +
                      (regenerated ? "true" : "false") +
                      ",\n    \"identical\": " +
                      (warm_identical ? "true" : "false") + "}";
  }

  // --- part 2: scheduling policies on the deadline mix -----------------
  const PolicyCell batched = run_policy("batched", serve::Policy::kBatched);
  const PolicyCell rerun =
      run_policy("abort+rerun", serve::Policy::kAbortRerun);
  const PolicyCell resume =
      run_policy("checkpoint+resume", serve::Policy::kPreemptive);

  util::Table pol("deadline mix: 2x30 ms background + 8x100 us @ 40 ms "
                  "deadline, 1 board");
  pol.set_header({"policy", "makespan (ms)", "deadline misses",
                  "preemptions"});
  for (const PolicyCell* c : {&batched, &rerun, &resume}) {
    pol.add_row({c->name, util::Table::fmt(c->makespan_ms, 2),
                 std::to_string(c->deadline_misses),
                 std::to_string(c->preemptions)});
  }
  pol.print();

  bench::expect(batched.deadline_misses == 8,
                "the batched drain misses every deadline behind the "
                "background batch");
  bench::expect(resume.deadline_misses == 0 && rerun.deadline_misses == 0,
                "both preemptive policies hold every deadline");
  bench::expect(resume.preemptions > 0,
                "the deadline jobs actually preempted the background work");
  bench::expect(resume.makespan_ms < rerun.makespan_ms,
                "checkpoint/resume beats abort/rerun on makespan "
                "(preempted compute is not re-paid)");

  // --- artifact --------------------------------------------------------
  std::ofstream json("BENCH_snapshot.json");
  json << "{\n  \"jobs\": " << n_jobs
       << ",\n  \"snapshot_bytes\": " << bytes.size()
       << ",\n  \"save_us\": " << save_us
       << ",\n  \"restore_us\": " << restore_us
       << ",\n  \"restore_identical\": " << (identical ? "true" : "false")
       << warm_start_json << ",\n  \"policies\": [";
  bool first = true;
  for (const PolicyCell* c : {&batched, &rerun, &resume}) {
    json << (first ? "" : ",") << "\n    {\"policy\": \"" << c->name
         << "\", \"makespan_ms\": " << c->makespan_ms
         << ", \"deadline_misses\": " << c->deadline_misses
         << ", \"preemptions\": " << c->preemptions << "}";
    first = false;
  }
  json << "\n  ]\n}\n";
  json.close();
  std::printf("\nwrote BENCH_snapshot.json\n");

  return bench::finish();
}
