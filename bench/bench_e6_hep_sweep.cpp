// E6 — §3.1: "Results show speedup rates in the range from 10 to 1,000
// compared to workstation implementations", with the footnote that the
// top end was "measured on Enable-1 with parallel histogramming only, no
// I/O was needed". This sweep reproduces that spread as a function of
// the two knobs the configurable memory system provides — RAM width
// (176..1408 bit) and pattern count — and of whether I/O is on the
// critical path.
#include "bench_common.hpp"
#include "core/driver.hpp"
#include "hw/hostcpu.hpp"
#include "trt/hwmodel.hpp"
#include "trt/multiboard.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace atlantis;
  bench::banner("E6", "HEP speed-up sweep: RAM width x pattern count x I/O");

  const trt::DetectorGeometry geo;
  util::Table t("E6: speed-up vs Pentium-II/300 software");
  t.set_header({"patterns", "RAM width (bit)", "I/O", "hw time (ms)",
                "sw time (ms)", "speed-up"});

  double min_speedup = 1e9, max_speedup = 0.0;
  for (const int patterns : {240, 1584, 2400}) {
    trt::PatternBank bank(geo, patterns);
    trt::EventParams ep;
    ep.tracks = 10;
    ep.noise_occupancy = 0.03;
    const trt::Event ev = trt::EventGenerator(bank, ep).generate();
    const double sw_ms = util::ps_to_ms(hw::pentium2_300().time_for_ops(
        trt::histogram_reference_dense(bank, ev).op_count));
    for (const int modules : {1, 4, 8}) {
      for (const bool with_io : {true, false}) {
        core::AtlantisSystem sys("crate");
        core::AtlantisDriver drv(sys, sys.add_acb("acb0"));
        trt::TrtHwConfig cfg;
        cfg.ram_width_bits = 176 * modules;
        // Without host I/O the trigger runs from the detector links
        // (the Enable-1 footnote condition) and only hit straws stream.
        cfg.stream_all_straws = with_io;
        const trt::TrtHwResult r = trt::histogram_atlantis(
            bank, ev, cfg, with_io ? &drv : nullptr);
        const double hw_ms = util::ps_to_ms(r.total_time);
        const double speedup = sw_ms / hw_ms;
        min_speedup = std::min(min_speedup, speedup);
        max_speedup = std::max(max_speedup, speedup);
        t.add_row({std::to_string(patterns),
                   std::to_string(176 * modules), with_io ? "host DMA" : "none",
                   util::Table::fmt(hw_ms, 2), util::Table::fmt(sw_ms, 1),
                   util::Table::fmt(speedup, 1)});
      }
    }
  }
  t.add_note("paper: 'speedup rates in the range from 10 to 1,000'; the "
             "top end is histogramming-only with no I/O (Enable-1 footnote)");
  t.print();

  std::printf("\nspeed-up range: %.1f .. %.1f\n", min_speedup, max_speedup);

  // --- crate timeline: contention, overlap and the exported trace ----------
  // One crate, two boards. First both drivers push a 1 MiB block through
  // the shared CompactPCI segment at the same time (the second queues —
  // the delay the scalar ledgers never showed), then the full 2-ACB
  // trigger runs on the backplane. The whole schedule is exported as
  // Chrome-trace JSON for Perfetto / chrome://tracing.
  core::AtlantisSystem crate("crate");
  core::AtlantisDriver d0(crate, crate.add_acb("acb0"));
  core::AtlantisDriver d1(crate, crate.add_acb("acb1"));
  crate.add_aib("aib0");

  const std::uint64_t kBlock = util::kMiB;
  const util::Picoseconds solo =
      d0.board().pci().transfer(hw::DmaDirection::kWrite, kBlock).duration;
  d0.dma_write_async(kBlock);
  d1.dma_write_async(kBlock);
  const util::Picoseconds shared0 = d0.wait();
  const util::Picoseconds shared1 = d1.wait();
  const sim::ResourceStats pci = crate.timeline().stats(crate.pci_segment());

  trt::PatternBank tl_bank(geo, 1584);
  trt::EventParams tl_ep;
  tl_ep.tracks = 10;
  tl_ep.noise_occupancy = 0.03;
  const trt::Event tl_ev = trt::EventGenerator(tl_bank, tl_ep).generate();
  const trt::MultiBoardResult mb =
      trt::histogram_multiboard(tl_bank, tl_ev, trt::MultiBoardConfig{}, crate);

  bench::timeline_stats(crate.timeline(),
                        "E6: crate timeline, per resource (2-ACB run)");
  const bool trace_ok =
      crate.timeline().export_chrome_trace_file("TRACE_hep_sweep.json");
  std::printf("\nwrote TRACE_hep_sweep.json (%d resources, %d tracks, "
              "%zu transactions)\n",
              crate.timeline().resource_count(),
              crate.timeline().track_count(),
              crate.timeline().transactions().size());

  bench::expect(min_speedup > 0.8, "FPGA never loses to the workstation");
  bench::expect(max_speedup > 100.0,
                "I/O-free parallel histogramming reaches the 100-1000 regime");
  bench::expect(max_speedup / min_speedup > 30.0,
                "configuration spread spans more than an order of magnitude");
  bench::expect(std::max(shared0, shared1) >= 2 * solo,
                "two boards sharing CompactPCI serialize (second queues)");
  bench::expect(pci.queue_delay > 0,
                "the PCI segment records the queuing delay");
  bench::expect(mb.total_time > 0 && mb.compute_time > 0,
                "the 2-ACB trigger ran on the crate timeline");
  bench::expect(trace_ok, "Chrome-trace export written");
  return bench::finish();
}
