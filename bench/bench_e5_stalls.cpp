// E5 — §3.2: "compared to conventional architectures the number of
// pipeline stalls is reduced from more than 90% to less than 10% of
// rendering time" by ray multi-threading (one context switch per sample).
#include "bench_common.hpp"
#include "util/table.hpp"
#include "volren/pipeline.hpp"
#include "volren/raycast.hpp"
#include "volren/renderer.hpp"

int main() {
  using namespace atlantis;
  using namespace atlantis::volren;
  bench::banner("E5", "ray-pipeline stalls vs thread contexts");

  // Real per-ray sample counts from an actual frame.
  const Volume vol = make_ct_phantom(128, 128, 64);
  const Camera cam(vol, ViewDirection::kOblique, 128, 64, false);
  const RenderOutput frame =
      render(vol, tf_semi_low(), cam, RenderParams{});

  util::Table t("E5: stall fraction vs resident ray contexts (pipeline depth 24)");
  t.set_header({"contexts", "stall %", "efficiency %"});
  double single_stall = 0.0, many_stall = 1.0;
  for (const int contexts : {1, 2, 4, 8, 16, 24, 32, 64}) {
    PipelineParams p;
    p.depth = 24;
    p.contexts = contexts;
    const PipelineResult r = simulate_pipeline(frame.stats.samples_per_ray, p);
    t.add_row({std::to_string(contexts),
               util::Table::fmt(100.0 * r.stall_fraction(), 1),
               util::Table::fmt(100.0 * r.efficiency(), 1)});
    if (contexts == 1) single_stall = r.stall_fraction();
    if (contexts == 32) many_stall = r.stall_fraction();
  }
  t.add_note("paper: 'from more than 90% to less than 10%'");
  t.print();

  bench::expect(single_stall > 0.9,
                "single-context pipeline stalls >90% of the time");
  bench::expect(many_stall < 0.1,
                "32 ray contexts push stalls below 10%");
  return bench::finish();
}
