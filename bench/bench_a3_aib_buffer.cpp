// A3 — §2.2 design claim: "To provide a sustained and high I/O bandwidth
// even at small block sizes buffering of data can be done in two stages"
// (32k x 36 port FIFO + 1M x 36 SRAM). The ablation runs bursty external
// traffic against a backplane that grants drain windows in large
// arbitration slabs, with and without the SRAM stage.
#include "bench_common.hpp"
#include "core/aib.hpp"
#include "util/table.hpp"

int main() {
  using namespace atlantis;
  using namespace atlantis::core;
  bench::banner("A3", "AIB two-stage buffering under bursty drain");

  util::Table t("A3: sustained channel throughput (offered ~70% of 264 MB/s)");
  t.set_header({"input burst (words)", "stage 2", "sustained MB/s",
                "lost words", "FIFO peak", "SRAM peak"});

  double worst_loss_one_stage = 0.0;
  double best_two_stage = 0.0;
  for (const std::uint64_t burst : {512ull, 3584ull, 16384ull}) {
    for (const bool stage2 : {false, true}) {
      AibChannel ch("ch");
      ChannelTrafficParams p;
      p.burst_words = burst;
      p.gap_cycles = burst * 3 / 7;  // ~70% duty producer
      p.drain_period = 300'000;
      p.drain_window = 240'000;
      p.cycles = 3'000'000;
      p.use_stage2 = stage2;
      const ChannelTrafficResult r = ch.simulate(p);
      t.add_row({std::to_string(burst), stage2 ? "yes" : "no",
                 util::Table::fmt(r.sustained_mbps, 1),
                 std::to_string(r.stalled_words),
                 std::to_string(r.fifo_watermark),
                 std::to_string(r.sram_watermark)});
      if (!stage2) {
        worst_loss_one_stage =
            std::max(worst_loss_one_stage, static_cast<double>(r.stalled_words));
      } else {
        best_two_stage = std::max(best_two_stage, r.sustained_mbps);
      }
    }
  }
  t.add_note("drain arrives in 240k-cycle arbitration slabs with 60k-cycle "
             "dead time; only the 1M-word SRAM stage rides that out");
  t.print();

  bench::expect(worst_loss_one_stage > 0.0,
                "FIFO-only channel drops words under slab arbitration");
  bench::expect(best_two_stage > 0.65 * AibChannel::peak_mbps(),
                "two-stage buffer sustains the offered rate");
  return bench::finish();
}
