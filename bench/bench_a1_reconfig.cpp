// A1 — §2 design claim: "In particular the partial reconfiguration is of
// great interest for co-processing applications involving hardware task
// switches." The ablation: task-switch latency with ORCA partial
// reconfiguration vs full reconfiguration (the Virtex path).
#include "bench_common.hpp"
#include "core/taskswitch.hpp"
#include "util/table.hpp"

int main() {
  using namespace atlantis;
  bench::banner("A1", "hardware task switching: partial vs full reconfiguration");

  auto make_task = [](const std::string& name, double fraction) {
    hw::Bitstream bs;
    bs.name = name;
    bs.stats.design_name = name;
    bs.stats.gate_equivalents = 60'000;
    bs.fraction = fraction;
    return bs;
  };

  util::Table t("A1: reconfiguration latency and achievable switch rate");
  t.set_header({"device", "mode", "array fraction", "latency (ms)",
                "switches/s"});
  double orca_partial_ms = 0.0, full_ms = 0.0;
  for (const double fraction : {0.1, 0.25, 0.5, 1.0}) {
    hw::FpgaDevice dev("orca", hw::orca_3t125());
    core::TaskSwitcher sw(dev);
    sw.add_task(make_task("a", fraction));
    sw.add_task(make_task("b", fraction));
    sw.switch_to("a");                                   // initial full load
    const util::Picoseconds lat = sw.switch_to("b");     // partial switch
    const double ms = util::ps_to_ms(lat);
    if (fraction == 0.25) orca_partial_ms = ms;
    t.add_row({"ORCA 3T125", fraction < 1.0 ? "partial" : "partial(full array)",
               util::Table::fmt(fraction, 2), util::Table::fmt(ms, 2),
               util::Table::fmt(1000.0 / ms, 1)});
  }
  {
    hw::FpgaDevice dev("virtex", hw::virtex_xcv600());
    core::TaskSwitcher sw(dev);
    sw.add_task(make_task("a", 0.25));
    sw.add_task(make_task("b", 0.25));
    sw.switch_to("a");
    const double ms = util::ps_to_ms(sw.switch_to("b"));
    full_ms = ms;
    t.add_row({"Virtex XCV600", "full (no partial support)", "1.00",
               util::Table::fmt(ms, 2), util::Table::fmt(1000.0 / ms, 1)});
  }
  t.add_note("ORCA partial reconfiguration is the ACB's hardware-task-"
             "switch mechanism (§2)");
  t.print();

  bench::expect(orca_partial_ms < full_ms / 2,
                "partial reconfiguration switches tasks much faster than a "
                "full device load");
  bench::expect(1000.0 / orca_partial_ms > 100.0,
                "quarter-array tasks switch at >100 Hz");
  return bench::finish();
}
