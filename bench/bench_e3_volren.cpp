// E3 — §3.4 "Volume Rendering": the CT study.
//
// Paper: 256x256x128 CT data set, three viewing directions, three
// soft-tissue opacity levels, 256x128 images. "On average one achieves
// efficiencies of between 90% and 97%. The number of sample points
// varies between 10-15% of all voxels if the data set consists mainly of
// empty space and opaque objects and 25-40% for semi transparent opacity
// levels. The above results correspond to rendering rates from 20 Hz on
// semi-transparent data sets to 138 Hz for opaque objects and parallel
// projection." Plus: ">25 MHz [FPGA clock] reduces the frame rate
// accordingly" and "perspective views reduce the rendering speed by a
// factor of about 2".
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "volren/renderer.hpp"

int main() {
  using namespace atlantis;
  using namespace atlantis::volren;
  bench::banner("E3", "volume rendering: efficiency, sample fraction, frame rate");

  const Volume vol = make_ct_phantom(256, 256, 128);
  FpgaRendererConfig cfg;  // 256x128 image, 100 MHz technology, >25 MHz FPGA
  cfg.render = paper_render_params();
  cfg.camera_zoom = kPaperCameraZoom;
  cfg.memory_reuse = 2.0;  // interpolation neighbourhood registers
  FpgaVolumeRenderer renderer(vol, cfg);

  util::Table t("E3: CT phantom 256x256x128, image 256x128, parallel projection");
  t.set_header({"view", "opacity", "samples/voxels %", "efficiency %",
                "fps @100MHz", "fps @25MHz FPGA"});

  util::Accumulator eff, opaque_fps, semi_fps, semi_high_fps;
  util::Accumulator opaque_frac, semi_high_frac;
  const TransferFunction tfs[] = {tf_opaque(), tf_semi_low(), tf_semi_high()};
  for (const auto view : {ViewDirection::kFrontal, ViewDirection::kLateral,
                          ViewDirection::kOblique}) {
    for (const auto& tf : tfs) {
      const FrameReport rep = renderer.render_frame(tf, view);
      t.add_row({rep.view, rep.transfer,
                 util::Table::fmt(100.0 * rep.sample_fraction, 1),
                 util::Table::fmt(100.0 * rep.efficiency, 1),
                 util::Table::fmt(rep.fps_tech, 1),
                 util::Table::fmt(rep.fps_fpga, 1)});
      eff.add(rep.efficiency);
      if (rep.transfer == "opaque") {
        opaque_fps.add(rep.fps_tech);
        opaque_frac.add(rep.sample_fraction);
      } else {
        semi_fps.add(rep.fps_tech);
        if (rep.transfer == "semi-high") {
          semi_high_fps.add(rep.fps_tech);
          semi_high_frac.add(rep.sample_fraction);
        }
      }
    }
  }
  t.add_note("paper: efficiency 90-97%, samples 10-15% (opaque) / 25-40% "
             "(semi), 20 Hz (semi) .. 138 Hz (opaque)");
  t.print();

  // Perspective factor: frontal view, where parallel projection is
  // grid-aligned and the perspective fan breaks the row coherence.
  const FrameReport par =
      renderer.render_frame(tf_semi_low(), ViewDirection::kFrontal, false);
  const FrameReport persp =
      renderer.render_frame(tf_semi_low(), ViewDirection::kFrontal, true);
  const double factor = par.fps_tech / persp.fps_tech;
  std::printf("\nperspective slowdown (frontal, semi-low): %.2fx (paper: ~2)\n",
              factor);

  bench::expect(eff.mean() > 0.85 && eff.max() <= 1.0,
                "pipeline efficiency in the 90-97% regime");
  bench::expect(opaque_frac.mean() > 0.05 && opaque_frac.mean() < 0.20,
                "opaque sample fraction in the 10-15% regime");
  bench::expect(semi_high_frac.mean() > 0.18 && semi_high_frac.mean() < 0.50,
                "semi-transparent sample fraction in the 25-40% regime");
  bench::expect(opaque_fps.max() > 60.0,
                "opaque frames reach the ~100 Hz regime at 100 MHz "
                "(paper estimate: 138 Hz)");
  bench::expect(semi_high_fps.min() < 60.0,
                "semi-transparent frames drop toward the 20 Hz regime");
  bench::expect(opaque_fps.mean() > 2.0 * semi_high_fps.mean(),
                "opaque clearly outruns semi-transparent");
  bench::expect(factor > 1.3 && factor < 4.0,
                "perspective costs about a factor of 2");
  return bench::finish();
}
