// R2 — chaos serving: what the self-healing supervisor buys under a
// fault storm.
//
// The same multi-tenant job mix runs four times under one FaultPlan —
// DMA stalls/aborts, configuration SEUs and CRC failures, whole-board
// drop-outs, service crashes — with progressively less supervision:
//
//   supervised      full loop: health scores, quarantine/probation,
//                   circuit breakers, escalating scrub, field repair,
//                   periodic checkpoints + crash restore, spare drain
//   no-breaker      same, with the reconfig/DMA circuit breakers off
//   abort-rerun     same, but checkpoint_every = 0: a service crash
//                   replays the whole run from the genesis checkpoint
//   unsupervised    a pure observer — identical availability accounting,
//                   zero healing: dead boards stay dead, failed jobs
//                   stay failed, nothing checkpoints
//
// Reported per row: availability (1 - board-downtime / board-time),
// MTTR, deadline-miss rate, goodput and the number of failed reconfig
// attempts the crate burned against flaky configuration paths. The
// gates double as the regression contract: supervision must beat the
// unsupervised baseline on availability AND MTTR, the breaker row must
// waste fewer reconfig attempts than the no-breaker row, and the
// supervised run must replay bit-identically.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "serve/jobservice.hpp"
#include "serve/supervisor.hpp"
#include "sim/fault.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace atlantis;

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;

serve::JobSpec make_job(int index, util::Picoseconds compute,
                        util::Picoseconds deadline) {
  serve::JobSpec job;
  job.tenant = index % 3 == 0 ? "atlas" : (index % 3 == 1 ? "cms" : "lhcb");
  job.kind = serve::JobKind::kCustom;
  job.config = (index % 2 == 0) ? "alpha" : "beta";
  job.arrival = 0;
  job.deadline = deadline;
  job.work = [index, compute] {
    serve::JobOutcome out;
    out.checksum = kGolden * static_cast<std::uint64_t>(index + 1);
    out.compute_time = compute;
    out.dma_in_bytes = 2048;
    out.dma_out_bytes = 512;
    return out;
  };
  return job;
}

void submit_mix(serve::JobService& s, int n_jobs) {
  for (int i = 0; i < n_jobs; ++i) {
    const util::Picoseconds deadline =
        (i % 5 == 0) ? 100 * util::kMillisecond : 0;
    (void)s.submit(make_job(i, (i % 5 + 1) * util::kMicrosecond, deadline))
        .value_or_throw();
  }
}

sim::FaultPlan storm_plan() {
  sim::FaultPlan plan;
  plan.seed = 20260808;
  plan.with_rate(sim::FaultKind::kDmaStall, 0.35)
      .with_rate(sim::FaultKind::kDmaAbort, 0.20)
      .with_rate(sim::FaultKind::kSeuConfig, 0.50)
      .with_rate(sim::FaultKind::kConfigCrc, 0.30)
      .with_rate(sim::FaultKind::kBoardDropout, 0.05)
      .with_rate(sim::FaultKind::kServiceCrash, 0.04);
  return plan;
}

serve::ServeOptions storm_serve_options(int n_jobs) {
  serve::ServeOptions options;
  options.policy = serve::Policy::kPreemptive;
  options.preempt_slice = util::kMillisecond;
  options.max_queued_per_tenant = static_cast<std::size_t>(n_jobs);
  return options;
}

serve::SupervisorOptions supervised_options() {
  serve::SupervisorOptions options;
  options.dispatches_per_tick = 2;
  options.checkpoint_every = 4;
  options.repair_after = 3;
  options.max_job_retries = 1000000;
  // A twitchier reconfig breaker than the library default: under this
  // storm's CRC rate the health score and the default breaker trip at
  // about the same window, which hides the breaker's contribution. Two
  // failures in a window with a long escalating open is the "stop
  // hammering the config port" deployment the bench is contrasting.
  options.reconfig_breaker.failure_threshold = 2;
  options.reconfig_breaker.base_open_ticks = 4;
  return options;
}

serve::SupervisorOptions unsupervised_options() {
  serve::SupervisorOptions options;
  options.dispatches_per_tick = 2;
  options.enable_quarantine = false;
  options.enable_breakers = false;
  options.enable_scrub = false;
  options.enable_checkpoints = false;
  options.repair_after = 0;      // dead boards stay dead
  options.max_job_retries = 0;   // failed jobs stay failed
  return options;
}

struct ChaosCell {
  std::string mode;
  std::uint64_t served = 0;
  std::uint64_t lost = 0;  // submitted jobs with no kOk result anywhere
  double availability = 0.0;  // over the common mission horizon (below)
  double own_availability = 0.0;  // supervisor's own-horizon figure
  double mttr_ms = 0.0;
  double miss_rate = 0.0;  // share of deadline jobs late or lost
  double goodput = 0.0;    // served per modelled second
  std::uint64_t reconfig_failures = 0;  // failed reconfig attempts burned
  std::uint64_t crashes = 0;
  std::uint64_t restores = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t drained = 0;
  std::uint64_t fault_events = 0;
  // Raw figures for the common-horizon renormalization.
  util::Picoseconds elapsed_ps = 0;   // cumulative serving time
  util::Picoseconds downtime_ps = 0;  // board-time dead or quarantined
  double repair_total_ps = 0.0;       // mttr * recoveries
  std::uint64_t recoveries = 0;
  int dead_at_end = 0;  // boards still dead when the run finished
  std::string fingerprint;  // ledger + report, for the replay gate
};

std::string serialize(const std::vector<serve::JobRecord>& records) {
  std::ostringstream os;
  for (const serve::JobRecord& r : records) {
    os << r.id << '|' << r.tenant << '|' << r.config << '|' << r.board << '|'
       << r.start << '|' << r.finish << '|' << r.preemptions << '|'
       << r.migrated << '|' << util::error_name(r.error) << '|'
       << r.outcome.checksum << '\n';
  }
  return os.str();
}

/// One storm run under one supervision level. The spare crate (attached
/// for every healing mode) runs without an injector: it models the
/// known-good crate disaster traffic drains to.
ChaosCell run_mode(const std::string& mode, int n_jobs,
                   const serve::SupervisorOptions& sup_options,
                   bool with_spare) {
  const sim::FaultPlan plan = storm_plan();
  sim::FaultInjector injector(plan);
  core::AtlantisSystem sys("crate");
  core::AtlantisSystem spare_sys("spare");
  for (int i = 0; i < 3; ++i) sys.add_acb("acb" + std::to_string(i));
  spare_sys.add_acb("spare0");
  sys.set_fault_injector(&injector);
  serve::JobService service(sys, storm_serve_options(n_jobs));
  serve::JobService spare(spare_sys, storm_serve_options(n_jobs));
  for (serve::JobService* s : {&service, &spare}) {
    s->register_config(hw::Bitstream{"alpha", {}, nullptr, 1.0, {}});
    s->register_config(hw::Bitstream{"beta", {}, nullptr, 1.0, {}});
  }
  submit_mix(service, n_jobs);

  serve::Supervisor sup(service, sup_options);
  if (with_spare) sup.set_spare(&spare);
  const serve::SupervisorReport& rep = sup.run();

  ChaosCell cell;
  cell.mode = mode;
  std::uint64_t deadline_jobs = 0;
  std::uint64_t deadline_bad = 0;
  util::Picoseconds makespan = 0;
  for (const serve::JobService* s : {&service, &spare}) {
    for (const serve::JobRecord& r : s->jobs()) {
      if (r.migrated) continue;  // finished (or not) on the spare's ledger
      const bool ok = r.error == util::ErrorCode::kOk;
      if (ok) {
        ++cell.served;
        makespan = std::max(makespan, r.finish);
      }
      if (r.deadline > 0) {
        ++deadline_jobs;
        if (!ok || r.finish > r.deadline) ++deadline_bad;
      }
    }
  }
  cell.lost = static_cast<std::uint64_t>(n_jobs) - cell.served;
  cell.own_availability = rep.availability;
  cell.elapsed_ps = rep.elapsed;
  cell.downtime_ps = rep.downtime;
  cell.recoveries = rep.recoveries;
  cell.repair_total_ps = static_cast<double>(rep.mttr) *
                         static_cast<double>(rep.recoveries);
  for (int i = 0; i < service.board_count(); ++i) {
    if (service.board_dead(i)) ++cell.dead_at_end;
  }
  cell.mttr_ms = util::ps_to_ms(rep.mttr);
  cell.miss_rate = deadline_jobs == 0
                       ? 0.0
                       : static_cast<double>(deadline_bad) /
                             static_cast<double>(deadline_jobs);
  cell.goodput = makespan == 0 ? 0.0
                               : static_cast<double>(cell.served) /
                                     (static_cast<double>(makespan) * 1e-12);
  for (int i = 0; i < service.board_count(); ++i) {
    cell.reconfig_failures += service.driver(i).config_retries() +
                              service.switcher(i).reconfig_retries();
  }
  cell.crashes = rep.crashes;
  cell.restores = rep.restores;
  cell.quarantines = rep.quarantines;
  cell.drained = rep.drained_jobs;
  cell.fault_events = injector.log().size();
  std::ostringstream fp;
  fp << serialize(service.jobs()) << serialize(spare.jobs()) << rep.ticks
     << '|' << rep.crashes << '|' << rep.restores << '|' << rep.quarantines
     << '|' << rep.readmissions << '|' << rep.repairs << '|' << rep.scrubs
     << '|' << rep.downtime << '|' << rep.mttr << '|' << rep.availability;
  cell.fingerprint = fp.str();
  sys.set_fault_injector(nullptr);
  return cell;
}

}  // namespace

int main() {
  bench::banner("R2",
                "chaos serving: supervised vs unsupervised under a storm");

  // No smoke shrink: the storm's stochastic gates (a crash must hit, the
  // breaker must trip) need the full 150-job horizon, and the whole
  // four-mode sweep is tens of milliseconds of modelled discrete events.
  const int n_jobs = 150;
  std::printf("storm: %d jobs, 3-board crate + 1-board spare, plan seed "
              "20260808\n",
              n_jobs);

  serve::SupervisorOptions no_breaker = supervised_options();
  no_breaker.enable_breakers = false;
  serve::SupervisorOptions abort_rerun = supervised_options();
  abort_rerun.checkpoint_every = 0;  // crash -> replay from genesis

  std::vector<ChaosCell> cells;
  cells.push_back(
      run_mode("supervised", n_jobs, supervised_options(), true));
  cells.push_back(run_mode("no-breaker", n_jobs, no_breaker, true));
  cells.push_back(run_mode("abort-rerun", n_jobs, abort_rerun, true));
  cells.push_back(
      run_mode("unsupervised", n_jobs, unsupervised_options(), false));

  // Apples to apples: score every mode over the same mission time — the
  // longest cumulative serving time any mode needed. A crate that
  // finished early with live boards just idles (no penalty); one that
  // "finished" early because its boards died and the rest of the work
  // failed keeps paying for the dead boards until the mission ends.
  util::Picoseconds mission = 0;
  for (const ChaosCell& c : cells) mission = std::max(mission, c.elapsed_ps);
  for (ChaosCell& c : cells) {
    const double extension = static_cast<double>(c.dead_at_end) *
                             static_cast<double>(mission - c.elapsed_ps);
    const double board_time = 3.0 * static_cast<double>(mission);
    const double down = static_cast<double>(c.downtime_ps) + extension;
    c.availability = std::max(0.0, 1.0 - down / board_time);
    const double recoveries =
        static_cast<double>(std::max<std::uint64_t>(c.recoveries, 1));
    c.mttr_ms = (c.repair_total_ps + extension) * 1e-9 / recoveries;
  }

  util::Table table("R2: one storm, four supervision levels");
  table.set_header({"mode", "served", "lost", "avail", "mttr (ms)",
                    "miss rate", "goodput/s", "reconf fails", "crashes",
                    "quarantines"});
  for (const ChaosCell& c : cells) {
    table.add_row({c.mode, std::to_string(c.served), std::to_string(c.lost),
                   util::Table::fmt(100.0 * c.availability, 2) + "%",
                   util::Table::fmt(c.mttr_ms, 2),
                   util::Table::fmt(100.0 * c.miss_rate, 1) + "%",
                   util::Table::fmt(c.goodput, 0),
                   std::to_string(c.reconfig_failures),
                   std::to_string(c.crashes),
                   std::to_string(c.quarantines)});
  }
  table.print();

  const ChaosCell& sup = cells[0];
  const ChaosCell& nobrk = cells[1];
  const ChaosCell& abort = cells[2];
  const ChaosCell& unsup = cells[3];

  bench::expect(unsup.fault_events > 0 && sup.fault_events > 0,
                "the storm actually stormed in every mode");
  bench::expect(sup.lost == 0 && abort.lost == 0 && nobrk.lost == 0,
                "every supervised mode serves all " +
                    std::to_string(n_jobs) + " jobs despite the storm");
  bench::expect(unsup.lost > 0,
                "the unsupervised crate loses jobs to the same storm");
  bench::expect(sup.availability > unsup.availability,
                "supervision strictly improves availability (" +
                    util::Table::fmt(100.0 * sup.availability, 2) + "% vs " +
                    util::Table::fmt(100.0 * unsup.availability, 2) + "%)");
  bench::expect(sup.mttr_ms < unsup.mttr_ms,
                "supervision strictly improves MTTR (" +
                    util::Table::fmt(sup.mttr_ms, 2) + " ms vs " +
                    util::Table::fmt(unsup.mttr_ms, 2) + " ms)");
  bench::expect(sup.reconfig_failures < nobrk.reconfig_failures,
                "circuit breakers burn fewer failed reconfig attempts (" +
                    std::to_string(sup.reconfig_failures) + " vs " +
                    std::to_string(nobrk.reconfig_failures) + ")");
  bench::expect(sup.crashes > 0 && sup.restores > 0,
                "service crashes hit and checkpoint restores recovered");

  // Replay: the supervised storm is bit-identical under the same plan —
  // ledger, spare ledger and every supervision counter.
  const ChaosCell replay =
      run_mode("supervised", n_jobs, supervised_options(), true);
  bench::expect(replay.fingerprint == sup.fingerprint,
                "supervised storm replays bit-identically");

  // --- artifact --------------------------------------------------------
  std::ofstream json("BENCH_chaos.json");
  json << "{\n  \"jobs\": " << n_jobs << ",\n  \"boards\": 3"
       << ",\n  \"plan_seed\": 20260808,\n  \"modes\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ChaosCell& c = cells[i];
    json << (i != 0 ? "," : "") << "\n    {\"mode\": \"" << c.mode
         << "\", \"served\": " << c.served << ", \"lost\": " << c.lost
         << ", \"availability\": " << c.availability
         << ", \"availability_own_horizon\": " << c.own_availability
         << ", \"elapsed_ms\": " << util::ps_to_ms(c.elapsed_ps)
         << ", \"dead_boards_at_end\": " << c.dead_at_end
         << ", \"mttr_ms\": " << c.mttr_ms
         << ", \"deadline_miss_rate\": " << c.miss_rate
         << ", \"goodput_jobs_per_s\": " << c.goodput
         << ", \"failed_reconfig_attempts\": " << c.reconfig_failures
         << ", \"crashes\": " << c.crashes << ", \"restores\": " << c.restores
         << ", \"quarantines\": " << c.quarantines
         << ", \"drained_jobs\": " << c.drained
         << ", \"fault_events\": " << c.fault_events << "}";
  }
  json << "\n  ],\n  \"replay_identical\": "
       << (replay.fingerprint == sup.fingerprint ? "true" : "false")
       << "\n}\n";
  json.close();
  std::printf("\nwrote BENCH_chaos.json\n");

  return bench::finish();
}
