// T1 — Table 1 of §3.4: ATLANTIS DMA performance over CompactPCI.
//
// "Following are some results showing the data throughput over CPCI for
// various applications, measured with ATLANTIS, microenable driver,
// design speed 40 MHz." The numeric cells of the table are lost in the
// available scan (see DESIGN.md); the properties the surrounding text
// fixes are checked instead: throughput grows with block size
// (setup-latency amortization), posted writes beat reads, and the
// sustained rate saturates below the stated 125 MB/s maximum.
//
// The sweep runs on the crate timeline; the per-resource table and
// BENCH_dma.json report what the CompactPCI segment saw, and the ledger
// check proves elapsed() equals the scalar sum of transfer durations
// (single driver, no contention — nothing queues).
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace atlantis;
  bench::banner("T1", "DMA performance vs block size (Table 1)");

  core::AtlantisSystem sys("crate");
  core::AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.set_design_clock(40.0);  // the paper's measurement condition

  util::Table table("Table 1. ATLANTIS DMA performance (microenable driver, 40 MHz design)");
  table.set_header({"Block size (kByte)", "DMA Read perf. (MB/s)",
                    "DMA Write perf. (MB/s)"});
  std::vector<std::uint64_t> blocks{1, 4, 16, 64, 256, 1024};
  std::vector<double> reads, writes;
  util::Picoseconds ledger_sum = 0;  // hand-summed durations for the check
  for (const std::uint64_t kb : blocks) {
    const auto r = drv.dma_read(kb * util::kKiB);
    const auto w = drv.dma_write(kb * util::kKiB);
    ledger_sum += r.duration + w.duration;
    reads.push_back(r.mbps());
    writes.push_back(w.mbps());
    table.add_row({std::to_string(kb), util::Table::fmt(r.mbps(), 1),
                   util::Table::fmt(w.mbps(), 1)});
  }
  table.add_note("paper cells lost in the scan; shape checks below encode "
                 "the in-text constraints (125 MB/s max, read < write)");
  table.print();

  bench::timeline_stats(sys.timeline(), "T1: crate timeline, per resource");

  const sim::ResourceStats pci = sys.timeline().stats(sys.pci_segment());
  std::ofstream json("BENCH_dma.json");
  json << "{\n  \"design_clock_mhz\": 40.0,\n  \"blocks\": [";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    json << (i != 0 ? ", " : "") << "{\"kbyte\": " << blocks[i]
         << ", \"read_mbps\": " << reads[i]
         << ", \"write_mbps\": " << writes[i] << "}";
  }
  json << "],\n  \"elapsed_ms\": " << util::ps_to_ms(drv.elapsed())
       << ",\n  \"pci_segment\": {\"transactions\": " << pci.transactions
       << ", \"bytes\": " << pci.bytes
       << ", \"busy_ms\": " << util::ps_to_ms(pci.busy)
       << ", \"queue_ms\": " << util::ps_to_ms(pci.queue_delay)
       << ", \"utilization\": "
       << pci.utilization(sys.timeline().horizon()) << "}\n}\n";
  json.close();
  std::printf("\nwrote BENCH_dma.json\n");

  bool monotone = true;
  for (std::size_t i = 1; i < reads.size(); ++i) {
    monotone = monotone && reads[i] > reads[i - 1] && writes[i] > writes[i - 1];
  }
  bench::expect(monotone, "throughput grows with block size");
  bool read_below_write = true;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    read_below_write = read_below_write && reads[i] < writes[i];
  }
  bench::expect(read_below_write, "DMA read trails DMA write (posted writes)");
  bench::expect(writes.back() > 100.0 && writes.back() <= 125.0,
                "large-block write saturates near the 125 MB/s max");
  bench::expect(reads.front() < 30.0,
                "small blocks dominated by driver/DMA setup");
  bench::expect(drv.elapsed() == ledger_sum,
                "timeline elapsed() is bit-identical to the scalar ledger");
  bench::expect(pci.queue_delay == 0,
                "single driver: nothing queues on the CompactPCI segment");
  return bench::finish();
}
