// S1 — the serving layer: batched scheduling with a bitstream cache
// versus reconfigure-per-job.
//
// A two-board crate serves a mixed stream of TRT event blocks and image
// tiles submitted by two tenants. The naive policy drains the stream in
// strict submission order with the cache disabled, so nearly every job
// swaps the FPGA configuration; the batched policy groups same-config
// jobs and keeps recent bitstreams staged. The shape the paper's
// reconfiguration model predicts: batching + cache wins by well over 2x
// because a full configuration load costs milliseconds while a job costs
// microseconds. A third row drops a board mid-stream and checks the
// service drains it without losing a single job.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "imgproc/filters.hpp"
#include "imgproc/serve_adapter.hpp"
#include "serve/jobservice.hpp"
#include "sim/fault.hpp"
#include "trt/hwmodel.hpp"
#include "trt/serve_adapter.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace atlantis;

namespace {

struct ServeCell {
  std::string name;
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  double jobs_per_s = 0.0;   // simulated-time throughput
  double p50_ms = 0.0;       // queue wait, all tenants pooled
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  std::uint64_t full_reconfigs = 0;
  double reconfig_ms = 0.0;
  double makespan_ms = 0.0;
  int dead_boards = 0;
};

struct Workload {
  trt::PatternBank* bank = nullptr;
  std::vector<trt::Event>* events = nullptr;
  trt::TrtHwConfig trt_cfg;
  std::vector<imgproc::Gray8>* tiles = nullptr;
  imgproc::Kernel3x3 blur_kernel;
  imgproc::Kernel3x3 edge_kernel;
  imgproc::ImgHwConfig img_cfg;
  std::vector<int> order;  // 0 = TRT, 1 = imgproc blur, 2 = imgproc edge
};

ServeCell run_cell(const std::string& name, const Workload& w,
                   const serve::ServeOptions& options,
                   const sim::FaultPlan* plan) {
  core::AtlantisSystem sys("crate");
  sys.add_acb("acb0");
  sys.add_acb("acb1");
  sim::FaultInjector injector{plan != nullptr ? *plan : sim::FaultPlan{}};
  if (plan != nullptr) sys.set_fault_injector(&injector);

  serve::JobService service(sys, options);
  service.register_config(hw::Bitstream{"trt_lut", {}, nullptr, 1.0});
  service.register_config(hw::Bitstream{"img_conv", {}, nullptr, 1.0});
  service.register_config(hw::Bitstream{"img_edge", {}, nullptr, 1.0});

  ServeCell cell;
  cell.name = name;
  std::uint64_t hits = 0, misses = 0;
  util::Picoseconds makespan = 0, reconfig_time = 0;

  // The stream arrives in bursts: each wave is submitted, then served to
  // completion before the next burst lands. Later waves revisit
  // configurations the earlier waves staged — that is where the
  // bitstream cache pays (per-run() queues drain one config at a time,
  // so a single monolithic run would never swing back to a config).
  constexpr int kWaves = 8;
  const std::size_t per_wave = (w.order.size() + kWaves - 1) / kWaves;
  std::size_t next_event = 0, next_tile = 0, i = 0;
  for (int wave = 0; wave < kWaves && i < w.order.size(); ++wave) {
    for (std::size_t j = 0; j < per_wave && i < w.order.size(); ++j, ++i) {
      const util::Picoseconds arrival =
          static_cast<util::Picoseconds>(i) * 10 * util::kMicrosecond;
      if (w.order[i] == 0) {
        const trt::Event& ev = (*w.events)[next_event++ % w.events->size()];
        (void)service
            .submit(trt::make_histogram_job(*w.bank, ev, w.trt_cfg,
                                            "trigger", "trt_lut", arrival))
            .value();
      } else {
        const imgproc::Gray8& tile =
            (*w.tiles)[next_tile++ % w.tiles->size()];
        const bool edge = w.order[i] == 2;
        (void)service
            .submit(imgproc::make_filter_job(
                tile, edge ? w.edge_kernel : w.blur_kernel, w.img_cfg,
                edge ? "mosaic" : "imaging", edge ? "img_edge" : "img_conv",
                arrival))
            .value();
      }
    }
    const serve::ServiceReport& rep = service.run();
    cell.served += rep.served;
    cell.failed += rep.failed;
    cell.full_reconfigs += rep.full_reconfigs;
    cell.dead_boards += static_cast<int>(rep.dead_boards.size());
    hits += rep.cache_hits;
    misses += rep.cache_misses;
    reconfig_time += rep.reconfig_time;
    makespan = std::max(makespan, rep.makespan);
  }

  cell.hit_rate = hits + misses == 0
                      ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(hits + misses);
  cell.reconfig_ms = util::ps_to_ms(reconfig_time);
  cell.makespan_ms = util::ps_to_ms(makespan);
  if (makespan > 0) {
    cell.jobs_per_s = static_cast<double>(cell.served) /
                      (static_cast<double>(makespan) / 1e12);
  }
  std::vector<double> waits;
  for (const serve::JobRecord& rec : service.jobs()) {
    if (rec.board >= 0) waits.push_back(static_cast<double>(rec.queue_wait));
  }
  if (!waits.empty()) {
    cell.p50_ms = util::ps_to_ms(
        static_cast<util::Picoseconds>(util::percentile(waits, 0.50)));
    cell.p99_ms = util::ps_to_ms(
        static_cast<util::Picoseconds>(util::percentile(waits, 0.99)));
  }
  if (plan != nullptr) sys.set_fault_injector(nullptr);
  return cell;
}

}  // namespace

int main() {
  bench::banner("S1", "job service: batching + bitstream cache vs "
                      "reconfigure-per-job");

  const int n_jobs = bench::smoke() ? 12 : 48;

  // --- shared workload (identical stream for every policy) -------------
  // Reduced TRT geometry: a job must cost far less than the ~19 ms full
  // configuration load, or reconfiguration policy would not matter.
  trt::DetectorGeometry geo;
  geo.layers = 32;
  geo.straws_per_layer = 128;
  trt::PatternBank bank(geo, 256);
  trt::EventParams ep;
  ep.tracks = 6;
  ep.noise_occupancy = 0.02;
  trt::EventGenerator gen(bank, ep);
  std::vector<trt::Event> events;
  for (int i = 0; i < 8; ++i) events.push_back(gen.generate());

  std::vector<imgproc::Gray8> tiles;
  util::Rng rng(0x51ull);
  for (int t = 0; t < 8; ++t) {
    imgproc::Gray8 tile(64, 64);
    for (int y = 0; y < 64; ++y) {
      for (int x = 0; x < 64; ++x) {
        tile(x, y) = static_cast<std::uint8_t>(rng.next_below(256));
      }
    }
    tiles.push_back(std::move(tile));
  }

  Workload w;
  w.bank = &bank;
  w.events = &events;
  w.trt_cfg = trt::TrtHwConfig{};
  w.tiles = &tiles;
  w.blur_kernel = imgproc::Kernel3x3::gaussian();
  w.edge_kernel = imgproc::Kernel3x3::sharpen();
  // An irregular interleave over THREE configurations on two boards:
  // a strictly alternating two-config stream would park each
  // configuration on its own board by accident, hiding both the
  // reconfiguration cost the naive policy pays and the cache hits the
  // batched policy earns when it swings back to a staged bitstream.
  for (int i = 0; i < n_jobs; ++i) {
    w.order.push_back(static_cast<int>(rng.next_below(3)));
  }

  serve::ServeOptions naive;
  naive.max_batch = 1;
  naive.cache_capacity = 0;
  naive.fifo_order = true;
  serve::ServeOptions batched;  // defaults: batch 8, cache 4

  const ServeCell n = run_cell("naive fifo", w, naive, nullptr);
  const ServeCell b = run_cell("batched+cache", w, batched, nullptr);
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kBoardDropout, "board/acb1", /*nth=*/1);
  const ServeCell d = run_cell("dropout", w, batched, &plan);

  util::Table table("mixed TRT/imgproc stream, " + std::to_string(n_jobs) +
                    " jobs, 2 boards");
  table.set_header({"policy", "served", "jobs/s", "p50 wait (ms)",
                    "p99 wait (ms)", "hit rate", "reconfigs",
                    "reconfig (ms)", "makespan (ms)"});
  for (const ServeCell* c : {&n, &b, &d}) {
    table.add_row({c->name, std::to_string(c->served),
                   util::Table::fmt(c->jobs_per_s, 0),
                   util::Table::fmt(c->p50_ms, 2),
                   util::Table::fmt(c->p99_ms, 2),
                   util::Table::fmt(c->hit_rate, 2),
                   std::to_string(c->full_reconfigs),
                   util::Table::fmt(c->reconfig_ms, 1),
                   util::Table::fmt(c->makespan_ms, 1)});
  }
  table.print();

  const double speedup = n.jobs_per_s > 0 ? b.jobs_per_s / n.jobs_per_s : 0.0;
  std::printf("\nbatched+cache vs naive: %.1fx throughput\n", speedup);

  bench::expect(n.served == static_cast<std::uint64_t>(n_jobs) &&
                    b.served == static_cast<std::uint64_t>(n_jobs),
                "both policies serve the full stream");
  bench::expect(speedup >= 2.0,
                "batching + warm cache is at least 2x naive throughput");
  bench::expect(b.full_reconfigs < n.full_reconfigs,
                "batching amortizes full reconfigurations");
  bench::expect(b.hit_rate > 0.0,
                "revisiting a staged configuration hits the cache");
  bench::expect(d.served == static_cast<std::uint64_t>(n_jobs) &&
                    d.failed == 0 && d.dead_boards == 1,
                "a mid-stream board dropout is drained without losing jobs");
  bench::expect(b.p99_ms < n.p99_ms,
                "batching also cuts tail queue latency, not just throughput");

  // --- artifact --------------------------------------------------------
  std::ofstream json("BENCH_serve.json");
  json << "{\n  \"jobs\": " << n_jobs
       << ",\n  \"speedup\": " << speedup << ",\n  \"rows\": [";
  bool first = true;
  for (const ServeCell* c : {&n, &b, &d}) {
    json << (first ? "" : ",") << "\n    {\"policy\": \"" << c->name
         << "\", \"served\": " << c->served << ", \"failed\": " << c->failed
         << ", \"jobs_per_s\": " << c->jobs_per_s
         << ", \"p50_queue_ms\": " << c->p50_ms
         << ", \"p99_queue_ms\": " << c->p99_ms
         << ", \"cache_hit_rate\": " << c->hit_rate
         << ", \"full_reconfigs\": " << c->full_reconfigs
         << ", \"reconfig_ms\": " << c->reconfig_ms
         << ", \"makespan_ms\": " << c->makespan_ms
         << ", \"dead_boards\": " << c->dead_boards << "}";
    first = false;
  }
  json << "\n  ]\n}\n";
  json.close();
  std::printf("\nwrote BENCH_serve.json\n");

  return bench::finish();
}
