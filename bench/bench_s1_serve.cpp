// S1 — the serving layer: batched scheduling with a bitstream cache
// versus reconfigure-per-job, and differential partial reconfiguration
// on the cache-miss path.
//
// A two-board crate serves a mixed stream of TRT event blocks and image
// tiles submitted by two tenants. The naive policy drains the stream in
// strict submission order with the cache disabled, so nearly every job
// swaps the FPGA configuration; the batched policy groups same-config
// jobs and keeps recent bitstreams staged. The three configurations
// share a common base bitstream and differ in a few of the ORCA's 32
// configuration regions, so with region-diff loading enabled a cache
// miss re-shifts a handful of frames instead of the full 18.75 ms load
// — the hardware task switch the paper's ORCA parts were chosen for.
// A config-diff-ordered row additionally serves the queue whose
// configuration is cheapest to switch to. A dropout row drops a board
// mid-stream and checks the service drains it without losing a job.
// Every policy must produce bit-identical job results (the ledger
// check): reconfiguration policy moves time, never answers.
//
// Set S1_DIFF=off to pin every row to the full-configure path (the CI
// A/B baseline).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "imgproc/filters.hpp"
#include "imgproc/serve_adapter.hpp"
#include "serve/jobservice.hpp"
#include "sim/fault.hpp"
#include "sim/snapshot.hpp"
#include "trt/hwmodel.hpp"
#include "trt/serve_adapter.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace atlantis;

namespace {

constexpr int kRegions = 32;  // ORCA 3T125 configuration regions

struct ServeCell {
  std::string name;
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  double jobs_per_s = 0.0;   // simulated-time throughput
  double p50_ms = 0.0;       // queue wait, all tenants pooled
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  std::uint64_t full_reconfigs = 0;
  std::uint64_t partial_reconfigs = 0;
  std::uint64_t regions_loaded = 0;
  double reconfig_ms = 0.0;
  double partial_reconfig_ms = 0.0;
  double makespan_ms = 0.0;
  int dead_boards = 0;
  std::uint64_t migrated = 0;      // jobs drained to the spare crate
  std::uint64_t results_hash = 0;  // job outcomes, timing-free
  std::uint64_t func_hash = 0;     // id-free functional ledger digest
};

struct Workload {
  trt::PatternBank* bank = nullptr;
  std::vector<trt::Event>* events = nullptr;
  trt::TrtHwConfig trt_cfg;
  std::vector<imgproc::Gray8>* tiles = nullptr;
  imgproc::Kernel3x3 blur_kernel;
  imgproc::Kernel3x3 edge_kernel;
  imgproc::ImgHwConfig img_cfg;
  std::vector<int> order;  // 0 = TRT, 1 = imgproc blur, 2 = imgproc edge
};

/// The three serve configurations as region-signed bitstreams: all share
/// a base; the TRT LUT occupies its own frames, the two image kernels
/// share their convolution datapath and differ only in coefficient
/// pages. Switching conv<->edge costs 2 frames, trt<->img costs 8.
std::vector<hw::Bitstream> make_configs() {
  const auto base = hw::make_region_signatures("serve_base", kRegions);
  hw::Bitstream trt_lut;
  trt_lut.name = "trt_lut";
  trt_lut.region_sigs = base;
  hw::stamp_regions(trt_lut.region_sigs, "trt_lut", 0, 3);
  hw::Bitstream img_conv;
  img_conv.name = "img_conv";
  img_conv.region_sigs = base;
  hw::stamp_regions(img_conv.region_sigs, "img_datapath", 3, 6);
  hw::Bitstream img_edge = img_conv;
  img_edge.name = "img_edge";
  hw::stamp_regions(img_edge.region_sigs, "edge_coeffs", 6, 8);
  return {trt_lut, img_conv, img_edge};
}

/// Timing-free digest of every job's outcome: policy changes the
/// schedule, never the answers.
std::uint64_t hash_results(const std::vector<serve::JobRecord>& records) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const serve::JobRecord& r : records) {
    mix(r.id);
    mix(static_cast<std::uint64_t>(r.error));
    mix(r.outcome.checksum);
    for (const char c : r.config) mix(static_cast<std::uint64_t>(c));
  }
  return h;
}

/// Id-free digest of what was actually served, summed over any number
/// of ledgers: migration reissues JobIds on the target, so the check
/// "no job was lost or altered crossing crates" must hash (tenant,
/// config, checksum) of every served record, order-independently.
std::uint64_t functional_digest(
    const std::vector<const std::vector<serve::JobRecord>*>& ledgers) {
  std::vector<std::uint64_t> entries;
  for (const auto* records : ledgers) {
    for (const serve::JobRecord& r : *records) {
      if (r.error != util::ErrorCode::kOk || r.migrated) continue;
      std::uint64_t h = 1469598103934665603ull;
      auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      for (const char c : r.tenant) mix(static_cast<std::uint64_t>(c));
      for (const char c : r.config) mix(static_cast<std::uint64_t>(c));
      mix(r.outcome.checksum);
      entries.push_back(h);
    }
  }
  std::sort(entries.begin(), entries.end());
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t e : entries) {
    h ^= e;
    h *= 1099511628211ull;
  }
  return h;
}

ServeCell run_cell(const std::string& name, const Workload& w,
                   const serve::ServeOptions& options,
                   const sim::FaultPlan* plan, bool migrate = false) {
  core::AtlantisSystem sys("crate");
  sys.add_acb("acb0");
  sys.add_acb("acb1");
  sim::FaultInjector injector{plan != nullptr ? *plan : sim::FaultPlan{}};
  if (plan != nullptr) sys.set_fault_injector(&injector);

  serve::JobService service(sys, options);
  for (const hw::Bitstream& bs : make_configs()) service.register_config(bs);

  // Spare crate standing by: with a migration target set, losing the
  // serving capacity drains pending jobs there via migrate_job instead
  // of failing them with kBoardDead.
  core::AtlantisSystem spare_sys("spare");
  std::unique_ptr<serve::JobService> spare;
  if (migrate) {
    spare_sys.add_acb("spare0");
    spare = std::make_unique<serve::JobService>(spare_sys, options);
    for (const hw::Bitstream& bs : make_configs()) spare->register_config(bs);
    service.set_migration_target(spare.get());
  }

  ServeCell cell;
  cell.name = name;
  std::uint64_t hits = 0, misses = 0;
  util::Picoseconds makespan = 0, reconfig_time = 0, partial_time = 0;

  // The stream arrives in bursts: each wave is submitted, then served to
  // completion before the next burst lands. Later waves revisit
  // configurations the earlier waves staged — that is where the
  // bitstream cache pays (per-run() queues drain one config at a time,
  // so a single monolithic run would never swing back to a config).
  constexpr int kWaves = 8;
  const std::size_t per_wave = (w.order.size() + kWaves - 1) / kWaves;
  std::size_t next_event = 0, next_tile = 0, i = 0;
  for (int wave = 0; wave < kWaves && i < w.order.size(); ++wave) {
    for (std::size_t j = 0; j < per_wave && i < w.order.size(); ++j, ++i) {
      const util::Picoseconds arrival =
          static_cast<util::Picoseconds>(i) * 10 * util::kMicrosecond;
      if (w.order[i] == 0) {
        const trt::Event& ev = (*w.events)[next_event++ % w.events->size()];
        (void)service
            .submit(trt::make_histogram_job(*w.bank, ev, w.trt_cfg,
                                            "trigger", "trt_lut", arrival))
            .value_or_throw();
      } else {
        const imgproc::Gray8& tile =
            (*w.tiles)[next_tile++ % w.tiles->size()];
        const bool edge = w.order[i] == 2;
        (void)service
            .submit(imgproc::make_filter_job(
                tile, edge ? w.edge_kernel : w.blur_kernel, w.img_cfg,
                edge ? "mosaic" : "imaging", edge ? "img_edge" : "img_conv",
                arrival))
            .value_or_throw();
      }
    }
    const serve::ServiceReport& rep = service.run();
    cell.served += rep.served;
    cell.failed += rep.failed;
    cell.full_reconfigs += rep.full_reconfigs;
    cell.partial_reconfigs += rep.partial_reconfigs;
    cell.regions_loaded += rep.regions_loaded;
    cell.dead_boards += static_cast<int>(rep.dead_boards.size());
    hits += rep.cache_hits;
    misses += rep.cache_misses;
    reconfig_time += rep.reconfig_time;
    partial_time += rep.partial_reconfig_time;
    makespan = std::max(makespan, rep.makespan);
    cell.migrated += rep.migrated;
    if (spare) {
      // Serve whatever this wave drained to the spare crate.
      const serve::ServiceReport& srep = spare->run();
      cell.served += srep.served;
      cell.failed += srep.failed;
      makespan = std::max(makespan, srep.makespan);
    }
  }

  cell.hit_rate = hits + misses == 0
                      ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(hits + misses);
  cell.reconfig_ms = util::ps_to_ms(reconfig_time);
  cell.partial_reconfig_ms = util::ps_to_ms(partial_time);
  cell.makespan_ms = util::ps_to_ms(makespan);
  if (makespan > 0) {
    cell.jobs_per_s = static_cast<double>(cell.served) /
                      (static_cast<double>(makespan) / 1e12);
  }
  std::vector<double> waits;
  for (const serve::JobRecord& rec : service.jobs()) {
    if (rec.board >= 0) waits.push_back(static_cast<double>(rec.queue_wait));
  }
  if (!waits.empty()) {
    cell.p50_ms = util::ps_to_ms(
        static_cast<util::Picoseconds>(util::percentile(waits, 0.50)));
    cell.p99_ms = util::ps_to_ms(
        static_cast<util::Picoseconds>(util::percentile(waits, 0.99)));
  }
  cell.results_hash = hash_results(service.jobs());
  std::vector<const std::vector<serve::JobRecord>*> ledgers{&service.jobs()};
  if (spare) ledgers.push_back(&spare->jobs());
  cell.func_hash = functional_digest(ledgers);
  if (plan != nullptr) sys.set_fault_injector(nullptr);
  return cell;
}

}  // namespace

int main() {
  bench::banner("S1", "job service: batching + bitstream cache + "
                      "differential reconfiguration vs reconfigure-per-job");

  const int n_jobs = bench::smoke() ? 12 : 48;
  const char* s1_diff = std::getenv("S1_DIFF");
  const bool diff_on = s1_diff == nullptr || std::string(s1_diff) != "off";
  if (!diff_on) std::printf("S1_DIFF=off: differential loading disabled\n");

  // --- shared workload (identical stream for every policy) -------------
  // Reduced TRT geometry: a job must cost far less than the ~19 ms full
  // configuration load, or reconfiguration policy would not matter.
  trt::DetectorGeometry geo;
  geo.layers = 32;
  geo.straws_per_layer = 128;
  trt::PatternBank bank(geo, 256);
  trt::EventParams ep;
  ep.tracks = 6;
  ep.noise_occupancy = 0.02;
  trt::EventGenerator gen(bank, ep);
  std::vector<trt::Event> events;
  for (int i = 0; i < 8; ++i) events.push_back(gen.generate());

  std::vector<imgproc::Gray8> tiles;
  util::Rng rng(0x51ull);
  for (int t = 0; t < 8; ++t) {
    imgproc::Gray8 tile(64, 64);
    for (int y = 0; y < 64; ++y) {
      for (int x = 0; x < 64; ++x) {
        tile(x, y) = static_cast<std::uint8_t>(rng.next_below(256));
      }
    }
    tiles.push_back(std::move(tile));
  }

  Workload w;
  w.bank = &bank;
  w.events = &events;
  w.trt_cfg = trt::TrtHwConfig{};
  w.tiles = &tiles;
  w.blur_kernel = imgproc::Kernel3x3::gaussian();
  w.edge_kernel = imgproc::Kernel3x3::sharpen();
  // An irregular interleave over THREE configurations on two boards:
  // a strictly alternating two-config stream would park each
  // configuration on its own board by accident, hiding both the
  // reconfiguration cost the naive policy pays and the cache hits the
  // batched policy earns when it swings back to a staged bitstream.
  for (int i = 0; i < n_jobs; ++i) {
    w.order.push_back(static_cast<int>(rng.next_below(3)));
  }

  serve::ServeOptions naive;
  naive.max_batch = 1;
  naive.cache_capacity = 0;
  naive.fifo_order = true;
  naive.differential_reconfig = false;  // the legacy baseline
  serve::ServeOptions batched;  // defaults: batch 8, cache 4
  batched.differential_reconfig = false;
  serve::ServeOptions batched_diff = batched;
  batched_diff.differential_reconfig = diff_on;
  serve::ServeOptions ordered = batched_diff;
  ordered.diff_order = true;

  const ServeCell n = run_cell("naive fifo", w, naive, nullptr);
  const ServeCell b = run_cell("batched+cache", w, batched, nullptr);
  const ServeCell bd = run_cell("batched+diff", w, batched_diff, nullptr);
  const ServeCell od = run_cell("batched+diff+order", w, ordered, nullptr);
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kBoardDropout, "board/acb1", /*nth=*/1);
  const ServeCell d = run_cell("dropout", w, batched_diff, &plan);
  // Total crate loss with a spare crate standing by: both boards drop
  // on their first dispatch, so every job crosses crates via
  // migrate_job instead of failing with kBoardDead.
  sim::FaultPlan total_loss;
  total_loss.inject(sim::FaultKind::kBoardDropout, "board/acb0", /*nth=*/1);
  total_loss.inject(sim::FaultKind::kBoardDropout, "board/acb1", /*nth=*/1);
  const ServeCell m =
      run_cell("dropout+migrate", w, batched_diff, &total_loss,
               /*migrate=*/true);

  util::Table table("mixed TRT/imgproc stream, " + std::to_string(n_jobs) +
                    " jobs, 2 boards");
  table.set_header({"policy", "served", "jobs/s", "p99 wait (ms)",
                    "hit rate", "full rcfg", "partial rcfg", "regions",
                    "reconfig (ms)", "partial (ms)", "makespan (ms)"});
  for (const ServeCell* c : {&n, &b, &bd, &od, &d, &m}) {
    table.add_row({c->name, std::to_string(c->served),
                   util::Table::fmt(c->jobs_per_s, 0),
                   util::Table::fmt(c->p99_ms, 2),
                   util::Table::fmt(c->hit_rate, 2),
                   std::to_string(c->full_reconfigs),
                   std::to_string(c->partial_reconfigs),
                   std::to_string(c->regions_loaded),
                   util::Table::fmt(c->reconfig_ms, 1),
                   util::Table::fmt(c->partial_reconfig_ms, 1),
                   util::Table::fmt(c->makespan_ms, 1)});
  }
  table.print();

  const double speedup = n.jobs_per_s > 0 ? b.jobs_per_s / n.jobs_per_s : 0.0;
  const double diff_saving =
      bd.reconfig_ms > 0 ? b.reconfig_ms / bd.reconfig_ms : 0.0;
  std::printf("\nbatched+cache vs naive: %.1fx throughput\n", speedup);
  if (diff_on) {
    std::printf("region-diff loading vs full reconfiguration: "
                "%.1fx less reconfig time\n", diff_saving);
  }

  bench::expect(n.served == static_cast<std::uint64_t>(n_jobs) &&
                    b.served == static_cast<std::uint64_t>(n_jobs) &&
                    bd.served == static_cast<std::uint64_t>(n_jobs) &&
                    od.served == static_cast<std::uint64_t>(n_jobs),
                "every policy serves the full stream");
  bench::expect(n.results_hash == b.results_hash &&
                    n.results_hash == bd.results_hash &&
                    n.results_hash == od.results_hash &&
                    n.results_hash == d.results_hash,
                "job results are bit-identical across every policy "
                "(ledger equality)");
  bench::expect(speedup >= 2.0,
                "batching + warm cache is at least 2x naive throughput");
  bench::expect(b.full_reconfigs < n.full_reconfigs,
                "batching amortizes full reconfigurations");
  bench::expect(b.hit_rate > 0.0,
                "revisiting a staged configuration hits the cache");
  bench::expect(d.served == static_cast<std::uint64_t>(n_jobs) &&
                    d.failed == 0 && d.dead_boards == 1,
                "a mid-stream board dropout is drained without losing jobs");
  bench::expect(m.served == static_cast<std::uint64_t>(n_jobs) &&
                    m.failed == 0 && m.migrated > 0,
                "total crate loss drains every job to the spare crate via "
                "migrate_job");
  bench::expect(m.func_hash == bd.func_hash,
                "migration preserves the functional ledger digest "
                "(no job lost or altered crossing crates)");
  bench::expect(b.p99_ms < n.p99_ms,
                "batching also cuts tail queue latency, not just throughput");
  if (diff_on) {
    bench::expect(bd.partial_reconfigs > 0,
                  "warm cache misses take the differential path");
    bench::expect(bd.regions_loaded > 0 &&
                      bd.regions_loaded < bd.partial_reconfigs * kRegions,
                  "differential loads move a strict subset of the frames");
    // The two cold full configurations (one per board) are paid by every
    // policy; with only a smoke-sized stream they dominate the total, so
    // the 2x bar only applies to the full run.
    if (!bench::smoke()) {
      bench::expect(bd.reconfig_ms * 2.0 <= b.reconfig_ms,
                    "region-diff loading at least halves total reconfig time");
    } else {
      bench::expect(bd.reconfig_ms < b.reconfig_ms,
                    "region-diff loading cuts total reconfig time");
    }
    bench::expect(od.reconfig_ms <= bd.reconfig_ms * 1.001,
                  "config-diff ordering never pays more reconfiguration");
  }

  // --- instant warm start from a committed genesis snapshot ------------
  // Same idea as bench_m1's part 1.5, on the real mixed workload: the
  // first 12 jobs of the stream (fixed regardless of BENCH_SMOKE, so one
  // committed file serves both modes — the RNG hands out the same first
  // 12 order draws either way) are served cold once, with every TRT
  // histogram and image filter actually evaluated, and the resulting
  // warmed crate — staged bitstreams, filled caches, finished ledger —
  // is committed under bench/data/. Every later run seeds from the file
  // and reports the setup time both ways. Stale or missing files are
  // regenerated in place (the stream is deterministic, so staleness is
  // plain byte inequality).
  double warm_cold_us = 0.0, warm_seed_us = 0.0;
  bool warm_identical = false, warm_regenerated = false;
  std::size_t warm_genesis_bytes = 0;
  {
    constexpr int kWarmJobs = 12;
    const std::string warm_file = bench::data_path("warm_s1.snap");
    auto build_and_submit = [&](core::AtlantisSystem& sys)
        -> std::unique_ptr<serve::JobService> {
      sys.add_acb("acb0");
      sys.add_acb("acb1");
      auto service = std::make_unique<serve::JobService>(sys, batched_diff);
      for (const hw::Bitstream& bs : make_configs()) {
        service->register_config(bs);
      }
      std::size_t next_event = 0, next_tile = 0;
      for (int i = 0; i < kWarmJobs; ++i) {
        const util::Picoseconds arrival =
            static_cast<util::Picoseconds>(i) * 10 * util::kMicrosecond;
        if (w.order[static_cast<std::size_t>(i)] == 0) {
          const trt::Event& ev = events[next_event++ % events.size()];
          (void)service
              ->submit(trt::make_histogram_job(bank, ev, w.trt_cfg, "trigger",
                                               "trt_lut", arrival))
              .value_or_throw();
        } else {
          const imgproc::Gray8& tile = tiles[next_tile++ % tiles.size()];
          const bool edge = w.order[static_cast<std::size_t>(i)] == 2;
          (void)service
              ->submit(imgproc::make_filter_job(
                  tile, edge ? w.edge_kernel : w.blur_kernel, w.img_cfg,
                  edge ? "mosaic" : "imaging",
                  edge ? "img_edge" : "img_conv", arrival))
              .value_or_throw();
        }
      }
      return service;
    };

    core::AtlantisSystem cold_sys("crate");
    auto cold = build_and_submit(cold_sys);
    const auto cold_begin = std::chrono::steady_clock::now();
    cold->run();
    const auto cold_end = std::chrono::steady_clock::now();
    sim::SnapshotWriter ww;
    cold->save_state(ww);
    const std::vector<std::uint8_t> genesis = ww.bytes();
    warm_genesis_bytes = genesis.size();

    const auto committed = bench::load_snapshot_file(warm_file);
    if (!committed.has_value() || *committed != genesis) {
      warm_regenerated = true;
      if (!bench::save_snapshot_file(warm_file, genesis)) {
        std::printf("cannot write %s\n", warm_file.c_str());
        return 1;
      }
    }
    const auto file_bytes = bench::load_snapshot_file(warm_file);

    core::AtlantisSystem warm_sys("crate");
    auto warm = build_and_submit(warm_sys);
    const auto warm_begin = std::chrono::steady_clock::now();
    auto opened = sim::SnapshotReader::open(*file_bytes);
    if (!opened.ok()) {
      std::printf("warm snapshot reopen failed: %s\n",
                  opened.message().c_str());
      return 1;
    }
    warm->load_state(opened.value());
    const auto warm_end = std::chrono::steady_clock::now();

    warm_cold_us =
        std::chrono::duration<double, std::micro>(cold_end - cold_begin)
            .count();
    warm_seed_us =
        std::chrono::duration<double, std::micro>(warm_end - warm_begin)
            .count();
    warm_identical = hash_results(warm->jobs()) == hash_results(cold->jobs()) &&
                     warm->pending() == 0;

    util::Table wt("instant warm start: committed genesis snapshot vs "
                   "serving the first " + std::to_string(kWarmJobs) +
                   " jobs cold");
    wt.set_header({"metric", "value"});
    wt.add_row({"cold warm-up (us)", util::Table::fmt(warm_cold_us, 1)});
    wt.add_row({"warm seed from file (us)", util::Table::fmt(warm_seed_us, 1)});
    wt.add_row({"speedup",
                util::Table::fmt(warm_cold_us / warm_seed_us, 1) + "x"});
    wt.add_row({"genesis file",
                warm_regenerated ? "regenerated" : "committed"});
    wt.add_row({"warm ledger", warm_identical ? "bit-identical" : "DIVERGED"});
    wt.print();

    bench::expect(warm_identical,
                  "warm-seeded crate carries the exact cold ledger");
    if (!bench::smoke()) {
      bench::expect(warm_seed_us < warm_cold_us,
                    "seeding from the genesis file beats serving the "
                    "warm-up jobs cold");
    }
  }

  // --- artifact --------------------------------------------------------
  std::ofstream json("BENCH_serve.json");
  json << "{\n  \"jobs\": " << n_jobs
       << ",\n  \"differential\": " << (diff_on ? "true" : "false")
       << ",\n  \"speedup\": " << speedup
       << ",\n  \"diff_reconfig_saving\": " << diff_saving
       << ",\n  \"warm_start\": {\"jobs\": 12, \"cold_setup_us\": "
       << warm_cold_us << ", \"warm_setup_us\": " << warm_seed_us
       << ", \"genesis_bytes\": " << warm_genesis_bytes
       << ", \"regenerated\": " << (warm_regenerated ? "true" : "false")
       << ", \"identical\": " << (warm_identical ? "true" : "false") << "}"
       << ",\n  \"rows\": [";
  bool first = true;
  for (const ServeCell* c : {&n, &b, &bd, &od, &d, &m}) {
    json << (first ? "" : ",") << "\n    {\"policy\": \"" << c->name
         << "\", \"served\": " << c->served << ", \"failed\": " << c->failed
         << ", \"jobs_per_s\": " << c->jobs_per_s
         << ", \"p50_queue_ms\": " << c->p50_ms
         << ", \"p99_queue_ms\": " << c->p99_ms
         << ", \"cache_hit_rate\": " << c->hit_rate
         << ", \"full_reconfigs\": " << c->full_reconfigs
         << ", \"partial_reconfigs\": " << c->partial_reconfigs
         << ", \"regions_loaded\": " << c->regions_loaded
         << ", \"reconfig_ms\": " << c->reconfig_ms
         << ", \"partial_reconfig_ms\": " << c->partial_reconfig_ms
         << ", \"makespan_ms\": " << c->makespan_ms
         << ", \"results_hash\": " << c->results_hash
         << ", \"func_hash\": " << c->func_hash
         << ", \"migrated\": " << c->migrated
         << ", \"dead_boards\": " << c->dead_boards << "}";
    first = false;
  }
  json << "\n  ]\n}\n";
  json.close();
  std::printf("\nwrote BENCH_serve.json\n");

  return bench::finish();
}
