// E7 — §3.3: FPGA floating point for the N-body force sub-task.
//
// Context the paper cites: "In 1995 approx. 10 MFLOP per Xilinx chip were
// reported for 18 bit precision, and 40 MFLOP with 32 bit precision on an
// 8 chip Altera board" — and the Enable++ study [15] indicating "FPGAs
// can indeed provide a significant performance increase even in this
// area". The harness reports the pair-pipeline throughput per format
// next to those historical anchors and the workstation x87 baseline,
// plus the accuracy cost of the reduced formats.
#include "bench_common.hpp"
#include "hw/hostcpu.hpp"
#include "nbody/force.hpp"
#include "nbody/plummer.hpp"
#include "util/table.hpp"

int main() {
  using namespace atlantis;
  using namespace atlantis::nbody;
  bench::banner("E7", "N-body force pipeline: precision vs throughput");

  const ParticleSet particles = make_plummer(512);
  const auto ref = accel_reference(particles, 0.05);

  // Workstation baseline: x87 direct summation at the PII/300 FLOP rate.
  const double host_mflops = hw::pentium2_300().mflops();
  const double host_pairs_per_s = host_mflops * 1e6 / kFlopsPerPair;

  util::Table t("E7: 512-particle Plummer sphere, 25 MHz pair pipeline");
  t.set_header({"arithmetic", "mean rel. err", "max rel. err", "MFLOP/s",
                "Mpairs/s", "vs PII/300"});
  t.add_row({"PII/300 x87 double (baseline)", "0", "0",
             util::Table::fmt(host_mflops, 0),
             util::Table::fmt(host_pairs_per_s / 1e6, 2), "1.0"});

  struct Row {
    const char* name;
    util::CFloatFormat fmt;
  };
  const Row rows[] = {{"fp18 (e6 m11)", util::kFloat18},
                      {"fp24 (e7 m16)", util::kFloat24},
                      {"fp32 (e8 m23)", util::kFloat32}};
  double err18 = 0.0, err32 = 0.0, mflops18 = 0.0;
  for (const Row& row : rows) {
    ForcePipelineConfig cfg;
    cfg.format = row.fmt;
    cfg.clock_mhz = 25.0;
    const ForcePipelineResult r = accel_pipeline(particles, cfg);
    const util::Accumulator err = accel_error(ref, r.accel);
    t.add_row({row.name, util::Table::fmt(err.mean(), 6),
               util::Table::fmt(err.max(), 6),
               util::Table::fmt(r.mflops(), 0),
               util::Table::fmt(r.pairs_per_second() / 1e6, 2),
               util::Table::fmt(r.pairs_per_second() / host_pairs_per_s, 1)});
    if (row.fmt == util::kFloat18) {
      err18 = err.mean();
      mflops18 = r.mflops();
    }
    if (row.fmt == util::kFloat32) err32 = err.mean();
  }
  t.add_note("1995 anchors: ~10 MFLOP/chip at 18 bit, 40 MFLOP on an "
             "8-chip board at 32 bit");
  t.print();

  // Four parallel pipelines: one per ACB FPGA.
  ForcePipelineConfig four;
  four.pipelines = 4;
  const ForcePipelineResult r4 = accel_pipeline(particles, four);
  std::printf("\n4 pipelines (one per ACB FPGA): %.0f MFLOP/s equivalent\n",
              r4.mflops());

  bench::expect(mflops18 > 100.0,
                "a 1999 pair pipeline leaves the 1995 ~10 MFLOP results "
                "an order of magnitude behind");
  bench::expect(mflops18 > 2.0 * host_mflops,
                "FPGA force pipeline beats the workstation FPU");
  bench::expect(err18 < 0.05, "18-bit force errors stay at percent level");
  bench::expect(err32 < 1e-4, "32-bit force errors are negligible");
  bench::expect(err32 < err18, "precision ladder is monotone");
  return bench::finish();
}
