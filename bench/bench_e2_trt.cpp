// E2 — §3.4 "HEP": TRT full-scan histogramming.
//
// Paper: "The execution time on the test system (algorithm plus I/O),
// 19.2 ms compared to 35 ms using a C++ implementation on a Pentium-
// II/300 standard PC, extrapolates to 2.7 ms using 2 ACB with 4 memory
// modules each (1408 bit RAM access). This corresponds to a speed-up by
// a factor of 13."
#include <algorithm>
#include <fstream>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "hw/hostcpu.hpp"
#include "trt/hwmodel.hpp"
#include "trt/multiboard.hpp"
#include "util/table.hpp"

int main() {
  using namespace atlantis;
  bench::banner("E2", "TRT full-scan histogramming: ATLANTIS vs Pentium-II/300");

  const trt::DetectorGeometry geo;  // 80,000 straws
  const int patterns = 1584;        // B-physics scan bank (240..2400 range)
  trt::PatternBank bank(geo, patterns);
  trt::EventParams ep;
  ep.tracks = 10;
  ep.noise_occupancy = 0.03;
  trt::EventGenerator gen(bank, ep);
  const trt::Event ev = gen.generate();

  // Software baseline: the dense LUT walk on the Pentium-II/300 model.
  const trt::ReferenceResult sw = trt::histogram_reference_dense(bank, ev);
  const double sw_ms =
      util::ps_to_ms(hw::pentium2_300().time_for_ops(sw.op_count));

  auto run_hw = [&](int width_bits, bool ideal, bool overlap = false) {
    core::AtlantisSystem sys("crate");
    core::AtlantisDriver drv(sys, sys.add_acb("acb0"));
    trt::TrtHwConfig cfg;
    cfg.ram_width_bits = width_bits;
    cfg.ideal_packing = ideal;
    cfg.overlap_io = overlap;
    return trt::histogram_atlantis(bank, ev, cfg, &drv);
  };
  const trt::TrtHwResult one = run_hw(176, false);    // measured system
  const trt::TrtHwResult eight = run_hw(1408, false); // honest datapath
  const trt::TrtHwResult ideal = run_hw(1408, true);  // paper's linear extrap.
  // Same measured system, but the image DMA streams in under the scan
  // (async post + wait on the crate timeline instead of chained calls).
  const trt::TrtHwResult olap = run_hw(176, false, true);

  // The 2-ACB system modelled end to end: image broadcast over the
  // backplane, parallel slice histogramming, partial-histogram collect.
  core::AtlantisSystem crate("crate2");
  crate.add_acb("acb0");
  crate.add_acb("acb1");
  crate.add_aib("aib0");
  const trt::MultiBoardResult two_board =
      trt::histogram_multiboard(bank, ev, trt::MultiBoardConfig{}, crate);

  const double one_ms = util::ps_to_ms(one.total_time);
  const double eight_ms = util::ps_to_ms(eight.total_time);
  const double ideal_ms = util::ps_to_ms(ideal.total_time);
  const double two_ms = util::ps_to_ms(two_board.total_time);
  const double olap_ms = util::ps_to_ms(olap.total_time);

  util::Table t("E2: 80k-straw event, 1584 patterns, 40 MHz design");
  t.set_header({"configuration", "paper (ms)", "measured (ms)", "speed-up vs SW"});
  t.add_row({"Pentium-II/300 C++ (dense LUT walk)", "35",
             util::Table::fmt(sw_ms, 1), "1.0"});
  t.add_row({"1 ACB, 1 module (176-bit RAM), incl. I/O", "19.2",
             util::Table::fmt(one_ms, 1), util::Table::fmt(sw_ms / one_ms, 1)});
  t.add_row({"1 ACB, 1 module, image DMA overlapped with scan", "-",
             util::Table::fmt(olap_ms, 1),
             util::Table::fmt(sw_ms / olap_ms, 1)});
  t.add_row({"2 ACB x 4 modules (1408-bit), quantized passes", "-",
             util::Table::fmt(eight_ms, 1),
             util::Table::fmt(sw_ms / eight_ms, 1)});
  t.add_row({"2 ACB system model (backplane broadcast + collect)", "-",
             util::Table::fmt(two_ms, 1),
             util::Table::fmt(sw_ms / two_ms, 1)});
  t.add_row({"2 ACB x 4 modules, linear extrapolation (paper's method)",
             "2.7", util::Table::fmt(ideal_ms, 1),
             util::Table::fmt(sw_ms / ideal_ms, 1)});
  t.add_note("paper speed-up 13 uses the linear extrapolation row");
  t.print();

  std::ofstream json("BENCH_trt.json");
  json << "{\n  \"patterns\": " << patterns
       << ",\n  \"software_ms\": " << sw_ms
       << ",\n  \"one_board_ms\": " << one_ms
       << ",\n  \"one_board_overlap_ms\": " << olap_ms
       << ",\n  \"eight_module_ms\": " << eight_ms
       << ",\n  \"ideal_extrapolation_ms\": " << ideal_ms
       << ",\n  \"two_board_ms\": " << two_ms
       << ",\n  \"two_board_phases_ms\": {\"broadcast\": "
       << util::ps_to_ms(two_board.broadcast_time)
       << ", \"compute\": " << util::ps_to_ms(two_board.compute_time)
       << ", \"collect\": " << util::ps_to_ms(two_board.collect_time) << "}"
       << ",\n  \"speedup_measured\": " << sw_ms / one_ms
       << ",\n  \"speedup_extrapolated\": " << sw_ms / ideal_ms << "\n}\n";
  json.close();
  std::printf("\nwrote BENCH_trt.json\n");

  bench::expect(sw_ms > 25.0 && sw_ms < 50.0,
                "software baseline lands near the measured 35 ms");
  bench::expect(one_ms > 14.0 && one_ms < 25.0,
                "single-module system lands near the measured 19.2 ms");
  bench::expect(one_ms < sw_ms, "ATLANTIS beats the workstation at 1 module");
  bench::expect(ideal_ms < 4.5, "extrapolated system lands near 2.7 ms");
  const double speedup = sw_ms / ideal_ms;
  bench::expect(speedup > 8.0 && speedup < 20.0,
                "extrapolated speed-up is in the paper's factor-13 regime");
  bench::expect(eight.histogram.counts == one.histogram.counts &&
                    two_board.histogram.counts == one.histogram.counts,
                "all configurations compute identical histograms");
  bench::expect(two_ms < one_ms,
                "the modelled 2-ACB system beats the single board");
  bench::expect(olap.total_time < one.total_time,
                "overlapping the image DMA with the scan beats the "
                "sequential schedule");
  bench::expect(olap.total_time ==
                    std::max(olap.io_in_time, olap.compute_time) +
                        olap.readout_time,
                "overlapped total is max(io, compute) + readout exactly");
  return bench::finish();
}
