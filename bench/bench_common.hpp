// Shared helpers for the experiment harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace atlantis::bench {

inline int g_failures = 0;

/// Records a reproduced-shape check: prints PASS/FAIL and accumulates
/// the exit status, so the bench sweep doubles as a regression gate.
inline void expect(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "shape OK " : "SHAPE FAIL", what.c_str());
  if (!ok) ++g_failures;
}

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline int finish() {
  if (g_failures > 0) {
    std::printf("\n%d shape check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("\nall shape checks passed\n");
  return 0;
}

}  // namespace atlantis::bench
