// Shared helpers for the experiment harnesses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "sim/timeline.hpp"
#include "util/table.hpp"

// Compiled in by bench/CMakeLists.txt: the source-tree directory holding
// committed warm-start snapshots (bench/data). Falls back to the working
// directory so the header stays usable outside the bench build.
#ifndef ATLANTIS_BENCH_DATA_DIR
#define ATLANTIS_BENCH_DATA_DIR "."
#endif

namespace atlantis::bench {

inline int g_failures = 0;

/// Records a reproduced-shape check: prints PASS/FAIL and accumulates
/// the exit status, so the bench sweep doubles as a regression gate.
inline void expect(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "shape OK " : "SHAPE FAIL", what.c_str());
  if (!ok) ++g_failures;
}

inline void banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

/// True when BENCH_SMOKE is set (and not "0"): benches shrink their
/// workloads and skip wall-clock speed expectations, so CI can run them
/// on every PR without flaking on loaded runners.
inline bool smoke() {
  const char* env = std::getenv("BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Path of a committed warm-start artifact under bench/data.
inline std::string data_path(const std::string& name) {
  return std::string(ATLANTIS_BENCH_DATA_DIR) + "/" + name;
}

/// Reads a committed snapshot byte-for-byte; nullopt when missing or
/// unreadable, so benches can regenerate instead of failing.
inline std::optional<std::vector<std::uint8_t>> load_snapshot_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (!in.good() && !in.eof()) return std::nullopt;
  if (bytes.empty()) return std::nullopt;
  return bytes;
}

inline bool save_snapshot_file(const std::string& path,
                               const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

/// Per-resource view of a crate timeline: what was busy, for how long,
/// and how much of the wait was queuing behind other actors.
inline void timeline_stats(const sim::Timeline& tl, const std::string& title) {
  util::Table t(title);
  t.set_header({"resource", "ch", "txns", "bytes", "busy (us)", "queue (us)",
                "util"});
  const util::Picoseconds horizon = tl.horizon();
  for (const sim::ResourceStats& s : tl.all_stats()) {
    if (s.transactions == 0) continue;
    t.add_row({s.name, std::to_string(s.channels),
               std::to_string(s.transactions), std::to_string(s.bytes),
               util::Table::fmt(static_cast<double>(s.busy) * 1e-6, 1),
               util::Table::fmt(static_cast<double>(s.queue_delay) * 1e-6, 1),
               util::Table::fmt(
                   100.0 * s.utilization(horizon) / s.channels, 1) + "%"});
  }
  t.print();
}

inline int finish() {
  if (g_failures > 0) {
    std::printf("\n%d shape check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("\nall shape checks passed\n");
  return 0;
}

}  // namespace atlantis::bench
