// Microbenchmarks (google-benchmark) of the reproduction's own kernels:
// the CHDL cycle simulator, the soft-float pipeline, the ray caster and
// the TRT reference. These measure the *simulator*, not the modelled
// hardware — they exist so performance regressions in the framework are
// visible.
#include <benchmark/benchmark.h>

#include "chdl/builder.hpp"
#include "chdl/sim.hpp"
#include "nbody/force.hpp"
#include "nbody/plummer.hpp"
#include "trt/hwmodel.hpp"
#include "volren/renderer.hpp"

namespace {

using namespace atlantis;

void BM_ChdlSimCounterCycles(benchmark::State& state) {
  chdl::Design d("cnt");
  const chdl::Wire en = d.input("en", 1);
  for (int i = 0; i < 32; ++i) {
    d.output("q" + std::to_string(i),
             chdl::counter(d, "c" + std::to_string(i), 16, en));
  }
  chdl::Simulator sim(d);
  sim.poke("en", 1);
  for (auto _ : state) {
    sim.step();
    benchmark::DoNotOptimize(sim.cycles());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChdlSimCounterCycles);

void BM_ChdlSimWideDatapath(benchmark::State& state) {
  chdl::Design d("wide");
  const chdl::Wire a = d.input("a", 176);
  const chdl::Wire b = d.input("b", 176);
  d.output("y", d.reg("r", d.bxor(d.band(a, b), d.bor(a, b))));
  chdl::Simulator sim(d);
  sim.poke(d.port("a"), chdl::BitVec::ones(176));
  sim.poke(d.port("b"), chdl::BitVec(176, 0x5A5A5A5A));
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChdlSimWideDatapath);

void BM_CFloatMultiply(benchmark::State& state) {
  const util::CFloatFormat fmt =
      state.range(0) == 18 ? util::kFloat18 : util::kFloat32;
  util::CFloat a = util::CFloat::from_double(3.14159, fmt);
  const util::CFloat b = util::CFloat::from_double(1.0001, fmt);
  for (auto _ : state) {
    a = a * b;
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CFloatMultiply)->Arg(18)->Arg(32);

void BM_CFloatRsqrt(benchmark::State& state) {
  const util::CFloat x = util::CFloat::from_double(42.0, util::kFloat32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::CFloat::rsqrt(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CFloatRsqrt);

void BM_RaycastFrame(benchmark::State& state) {
  const volren::Volume vol = volren::make_ct_phantom(64, 64, 32);
  const volren::Camera cam(vol, volren::ViewDirection::kFrontal, 64, 32,
                           false);
  const volren::TransferFunction tf = volren::tf_opaque();
  for (auto _ : state) {
    const auto out = volren::render(vol, tf, cam, volren::RenderParams{});
    benchmark::DoNotOptimize(out.stats.samples);
  }
}
BENCHMARK(BM_RaycastFrame)->Unit(benchmark::kMillisecond);

void BM_TrtReferenceHistogram(benchmark::State& state) {
  trt::DetectorGeometry geo;
  geo.layers = 50;
  geo.straws_per_layer = 400;
  trt::PatternBank bank(geo, 512);
  const trt::Event ev = trt::EventGenerator(bank, trt::EventParams{}).generate();
  for (auto _ : state) {
    const auto r = trt::histogram_reference(bank, ev);
    benchmark::DoNotOptimize(r.histogram.counts.data());
  }
  state.SetItemsProcessed(state.iterations() * ev.hits.size());
}
BENCHMARK(BM_TrtReferenceHistogram);

void BM_ForcePipelineStep(benchmark::State& state) {
  const nbody::ParticleSet p = nbody::make_plummer(64);
  nbody::ForcePipelineConfig cfg;
  cfg.format = util::kFloat18;
  for (auto _ : state) {
    const auto r = nbody::accel_pipeline(p, cfg);
    benchmark::DoNotOptimize(r.accel.data());
  }
  state.SetItemsProcessed(state.iterations() * p.size() * (p.size() - 1));
}
BENCHMARK(BM_ForcePipelineStep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
