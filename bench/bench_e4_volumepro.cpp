// E4 — §3.4: "Comparing these results with the performance of the only
// commercially available volume rendering hardware, VolumePro [18],
// simulations suggest a speed-up by a factor of 10 to 25 when using
// [large] data sets."
//
// Mechanism: VolumePro is a fixed-function engine that resamples EVERY
// voxel every frame (~500 Mvoxel/s, i.e. 256^3 at 30 Hz); the ATLANTIS
// renderer touches only the algorithmically-selected sample fraction.
// Empty space grows with the cube of the data-set size while the
// contributing surfaces grow with the square, so the advantage widens on
// large volumes — which is why the paper's 10-25x claim is attached to
// its biggest data sets.
#include "bench_common.hpp"
#include "util/table.hpp"
#include "volren/renderer.hpp"

int main() {
  using namespace atlantis;
  using namespace atlantis::volren;
  bench::banner("E4", "ATLANTIS renderer vs VolumePro-class brute force");

  util::Table t("E4: frame-rate ratio vs volume size and opacity");
  t.set_header({"volume", "opacity", "atlantis fps@100MHz", "volumepro fps",
                "speed-up"});

  double speedup_256 = 0.0, speedup_512 = 0.0, worst = 1e9;
  const int sizes[][3] = {
      {256, 256, 128}, {256, 256, 256}, {512, 512, 512}};
  for (const auto& s : sizes) {
    const bool large = s[0] == 512;
    const Volume vol = make_ct_phantom(s[0], s[1], s[2]);
    FpgaRendererConfig cfg;
    cfg.render = paper_render_params();
    cfg.camera_zoom = kPaperCameraZoom;
    cfg.memory_reuse = 2.0;
    FpgaVolumeRenderer renderer(vol, cfg);
    const double vp_fps = FpgaVolumeRenderer::volumepro_fps(vol.voxel_count());
    std::vector<TransferFunction> tfs = {tf_opaque()};
    if (!large) tfs.push_back(tf_semi_low());  // keep the 512^3 run short
    for (const auto& tf : tfs) {
      const FrameReport rep =
          renderer.render_frame(tf, ViewDirection::kFrontal);
      const double speedup = rep.fps_tech / vp_fps;
      t.add_row({std::to_string(s[0]) + "x" + std::to_string(s[1]) + "x" +
                     std::to_string(s[2]),
                 rep.transfer, util::Table::fmt(rep.fps_tech, 1),
                 util::Table::fmt(vp_fps, 1), util::Table::fmt(speedup, 1)});
      worst = std::min(worst, speedup);
      if (s[0] == 256 && s[2] == 256 && rep.transfer == "opaque") {
        speedup_256 = speedup;
      }
      if (large) speedup_512 = speedup;
    }
  }
  t.add_note("paper: 'a speed-up by a factor of 10 to 25' on large data sets");
  t.print();

  bench::expect(worst > 1.0, "ATLANTIS wins at every configuration");
  bench::expect(speedup_512 > speedup_256,
                "the advantage widens with data-set size");
  bench::expect(speedup_512 >= 8.0 && speedup_512 <= 40.0,
                "512^3 speed-up lands in the paper's 10-25 regime");
  return bench::finish();
}
