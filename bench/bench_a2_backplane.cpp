// A2 — §2.3 design claims: configurable channel granularity ("from 16
// channels of a single byte to 2 channels of 64 bit"), 1 GB/s per slot,
// and "configuring the backplane for two independent pairs of ACBs and
// AIBs, an integrated bandwidth of 2 GB/s will result".
#include "bench_common.hpp"
#include "core/aab.hpp"
#include "util/table.hpp"

int main() {
  using namespace atlantis;
  using core::Backplane;
  bench::banner("A2", "active backplane: granularity and aggregate bandwidth");

  Backplane bp("aab", 8);
  util::Table t("A2: channel configurations (66 MHz private bus)");
  t.set_header({"configuration", "channels", "per-channel MB/s",
                "slot total MB/s"});
  const std::vector<std::vector<int>> configs = {
      std::vector<int>(16, 8), std::vector<int>(8, 16),
      {32, 32, 32, 32}, {64, 64}, {64, 32, 16, 8, 8}};
  double min_total = 1e9;
  for (const auto& widths : configs) {
    bp.configure_channels(widths);
    std::string desc;
    for (const int w : widths) desc += std::to_string(w) + " ";
    t.add_row({desc, std::to_string(bp.channel_count()),
               util::Table::fmt(bp.channel_mbps(0), 0),
               util::Table::fmt(bp.slot_mbps(), 0)});
    min_total = std::min(min_total, bp.slot_mbps());
  }
  t.add_note("paper: 'The total bandwidth is 1 GB/s per slot'");
  t.print();

  bp.configure_channels({32, 32, 32, 32});
  util::Table p("A2: paired streaming (independent ACB/AIB pairs)");
  p.set_header({"pairs", "aggregate MB/s"});
  for (const int pairs : {1, 2, 3}) {
    p.add_row({std::to_string(pairs),
               util::Table::fmt(bp.paired_mbps(pairs), 0)});
  }
  p.add_note("paper: two pairs -> '2 GB/s for a single ATLANTIS system'");
  p.print();

  // Latency shape: a 64 kB block vs hop distance.
  util::Table lat("A2: 64 kB transfer time vs slot distance (32-bit channel)");
  lat.set_header({"hops", "time (us)"});
  for (const int to : {2, 4, 7}) {
    lat.add_row({std::to_string(to - 1),
                 util::Table::fmt(util::ps_to_us(bp.transfer(1, to, 0,
                                                             64 * 1024)),
                                  2)});
  }
  lat.print();

  bench::expect(min_total > 1000.0,
                "every granularity keeps the 1 GB/s slot bandwidth");
  bench::expect(bp.paired_mbps(2) > 2000.0, "two pairs deliver 2 GB/s");
  const double vs_pci = bp.slot_mbps() / 125.0;
  std::printf("\nbackplane vs host PCI: %.1fx\n", vs_pci);
  bench::expect(vs_pci > 8.0,
                "private bus dwarfs the 125 MB/s host PCI path");
  return bench::finish();
}
