// C1 — cluster-scale serving: one front-end API sharding a synthetic
// million-user tenant population across a simulated fleet of ATLANTIS
// crates.
//
// An open-loop load generator replays the same request stream — drawn
// from a 1,000,000-user population with deterministic exponential
// inter-arrivals — against four serving topologies at equal offered
// load:
//
//   single_shard          one crate absorbs the whole stream (the
//                         scale-up ceiling the fleet is measured from);
//   random                four crates, cache-oblivious deterministic
//                         spray placement;
//   consistent_hash       four crates, configuration-keyed ring
//                         placement (serve/placement.hpp): every
//                         configuration lives on one shard, so its
//                         bitstream stays staged in that shard's
//                         per-board LRU caches and differential
//                         reconfiguration sees mostly-warm regions;
//   consistent_hash_qos   ring placement plus the front-end's QoS
//                         gates: weighted-fair tenant shares, deadline
//                         admission and bounded per-shard queues with
//                         shed/retry verdicts.
//
// Reported per policy: p50/p99/p999 request sojourn (arrival -> result
// DMA complete, modelled time), throughput, cache hit rate and
// reconfiguration traffic, plus the schedule digest. The digest is the
// determinism gate: the consistent_hash row is re-run under worker
// pools of 1, 2 and 4 threads and must produce the identical digest
// (the cluster schedule is a function of the request stream, never of
// host parallelism).
//
// Shape expectations (CI guards read them from BENCH_cluster.json):
// consistent_hash p99 < random p99, and sharded p99 < single_shard p99
// at the same offered load.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/cluster.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "util/worker_pool.hpp"

using namespace atlantis;

namespace {

constexpr std::uint64_t kUsers = 1'000'000;  // synthetic user population
constexpr int kRegions = 32;                 // ORCA 3T125 config regions
constexpr int kShards = 4;
constexpr int kConfigs = 3 * kShards;  // ~3 resident configs per shard
constexpr int kTenants = 6;

/// One request of the open-loop stream, fully determined by the seed.
struct Request {
  std::uint64_t user = 0;
  int tenant = 0;
  int config = 0;
  util::Picoseconds arrival = 0;
  util::Picoseconds deadline = 0;  // only honoured by the QoS row
};

/// The kConfigs bitstreams share a base and stamp disjoint region
/// windows, so differential reconfiguration moves a few frames per
/// switch — IF the switch target was recently resident on that board.
std::vector<hw::Bitstream> make_configs() {
  const auto base = hw::make_region_signatures("cluster_base", kRegions);
  std::vector<hw::Bitstream> configs;
  for (int c = 0; c < kConfigs; ++c) {
    hw::Bitstream bs;
    // This model population happens to split 3/3/3/3 over the 4-shard
    // ring, so the consistent-hash rows measure placement affinity
    // itself rather than small-population ownership luck (12 keys on a
    // ring are inherently lumpy; a real fleet would rebalance or add
    // shards when ownership skews).
    bs.name = "model" + std::to_string(c);
    bs.region_sigs = base;
    // Wide tenant cores (10 of 32 regions): two different configs
    // disagree on most of their stamped windows, so a cache miss costs
    // a double-digit-region differential load (~6 ms on the modelled
    // ORCA config port) while a cache hit costs nothing — the economics
    // that placement affinity is supposed to exploit.
    const int from = (c * 7) % (kRegions - 10);
    hw::stamp_regions(bs.region_sigs, "tenant_core" + std::to_string(c),
                      from, from + 9);
    configs.push_back(bs);
  }
  return configs;
}

/// The deterministic open-loop stream: `n` requests over the
/// million-user population, exponential inter-arrivals at `offered_rps`
/// (modelled requests per second).
std::vector<Request> make_stream(int n, double offered_rps) {
  std::vector<Request> stream;
  stream.reserve(static_cast<std::size_t>(n));
  util::Rng rng(0xC1C1C1C1ull);
  const double mean_gap_ps =
      static_cast<double>(util::kSecond) / offered_rps;
  double clock = 0.0;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.user = rng.next_u64() % kUsers;
    // Users stick to their tenant and their tenant's configurations —
    // the locality the configuration-keyed ring exploits.
    r.tenant = static_cast<int>(r.user % kTenants);
    r.config = static_cast<int>(r.user % kConfigs);
    clock += -mean_gap_ps * std::log(rng.uniform(1e-12, 1.0));
    r.arrival = static_cast<util::Picoseconds>(clock);
    // A third of the traffic is latency-sensitive (the QoS row's
    // deadline admission bites on these).
    if (r.user % 3 == 0) r.deadline = r.arrival + 400 * util::kMillisecond;
    stream.push_back(r);
  }
  return stream;
}

serve::JobSpec to_job(const Request& r, bool with_deadline) {
  serve::JobSpec job;
  job.tenant = "tenant" + std::to_string(r.tenant);
  job.kind = serve::JobKind::kCustom;
  job.config = "model" + std::to_string(r.config);
  job.arrival = r.arrival;
  if (with_deadline) job.deadline = r.deadline;
  const std::uint64_t user = r.user;
  job.work = [user] {
    serve::JobOutcome out;
    out.checksum = 0x9e3779b97f4a7c15ull * (user + 1);
    // Draw cost from high bits of the user id: the config id comes from
    // the low bits (user % kConfigs), and taking both from the same
    // residue class would give each configuration a fixed compute class
    // — silently skewing per-config work 4x and turning the placement
    // comparison into a load-imbalance measurement.
    out.compute_time = ((user >> 9) % 4 + 1) * 500 * util::kMicrosecond;
    out.dma_in_bytes = 4096 + ((user >> 11) % 8) * 1024;
    out.dma_out_bytes = 512;
    return out;
  };
  return job;
}

struct ClusterCell {
  std::string name;
  int shards = 0;
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;  // QoS/SLO admission refusals
  std::uint64_t shed = 0;      // bounded-queue overload
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double jobs_per_s = 0.0;
  double hit_rate = 0.0;
  std::uint64_t full_reconfigs = 0;
  std::uint64_t partial_reconfigs = 0;
  double makespan_ms = 0.0;
  std::uint64_t schedule_digest = 0;
  std::uint64_t func_digest = 0;
};

/// Replays the stream in `waves` submission bursts (run() drains the
/// fleet between bursts — the cadence that makes cache residency
/// matter), then reduces the cluster ledger into one row.
ClusterCell run_cell(const std::string& name, int shards,
                     serve::PlacementPolicy placement, bool qos,
                     const std::vector<Request>& stream, int waves,
                     util::WorkerPool* pool = nullptr) {
  const std::size_t per_wave = (stream.size() + waves - 1) / waves;
  serve::ClusterOptions options;
  options.boards_per_shard = 2;
  options.placement = placement;
  if (qos) {
    options.max_pending_per_shard = per_wave / 4 + 8;
    options.max_placement_attempts = 2;
    options.slo_admission = true;
    options.fair_admission = true;
    // The heaviest tenant is deliberately under-weighted, like a free
    // tier sharing the fleet with paying SLO tenants.
    options.tenant_weights["tenant0"] = 0.25;
  } else {
    // Bounded-load placement: each shard holds at most ~1.25x its fair
    // share of a wave and the attempts walk spans the whole fleet, so a
    // hot ring owner spills its excess to that configuration's (fixed)
    // successor instead of queueing it — nothing is ever shed, and the
    // single-shard row degenerates to one unbounded queue.
    options.max_pending_per_shard =
        shards == 1 ? per_wave + 8
                    : (per_wave * 5) / (4 * static_cast<std::size_t>(shards)) + 1;
    options.max_placement_attempts = shards;
    options.slo_admission = false;
    options.fair_admission = false;
  }
  serve::Cluster cluster(options);
  for (int s = 0; s < shards; ++s) cluster.add_shard();
  for (const hw::Bitstream& bs : make_configs()) cluster.register_config(bs);

  serve::RunOptions run_options;
  run_options.pool = pool;
  for (int w = 0; w < waves; ++w) {
    const std::size_t lo = static_cast<std::size_t>(w) * per_wave;
    const std::size_t hi = std::min(stream.size(), lo + per_wave);
    for (std::size_t i = lo; i < hi; ++i) {
      (void)cluster.submit(to_job(stream[i], qos));
    }
    cluster.run(run_options);
  }

  if (std::getenv("C1_DEBUG") != nullptr) {
    std::map<std::pair<int, int>, int> slow;  // (wave, shard) -> count
    for (const serve::ClusterRecord& rec : cluster.jobs()) {
      const serve::JobRecord& jr = cluster.shard_record(rec.id);
      const util::Picoseconds soj =
          std::max(jr.finish - jr.arrival, jr.finish - jr.start);
      if (jr.error == util::ErrorCode::kOk && jr.finish > 0 &&
          soj > 500 * util::kMillisecond) {
        ++slow[{static_cast<int>(rec.id / per_wave), rec.shard}];
      }
    }
    std::printf("[debug %s] slow jobs (>500ms) by (wave, shard):\n",
                name.c_str());
    for (const auto& [key, n] : slow) {
      std::printf("  wave %3d shard %d: %d\n", key.first, key.second, n);
    }
  }

  ClusterCell cell;
  cell.name = name;
  cell.shards = shards;
  util::LogHistogram latency;
  util::Picoseconds makespan = 0;
  for (const serve::ClusterRecord& rec : cluster.jobs()) {
    const serve::JobRecord& jr = cluster.shard_record(rec.id);
    if (jr.error == util::ErrorCode::kOk && jr.finish > 0) {
      ++cell.served;
      latency.add(static_cast<double>(
          std::max(jr.finish - jr.arrival, jr.finish - jr.start)));
      makespan = std::max(makespan, jr.finish);
    } else if (jr.error != util::ErrorCode::kOk) {
      ++cell.failed;
    }
  }
  for (const util::ErrorCode code : cluster.refusals()) {
    if (code == util::ErrorCode::kShardOverload) {
      ++cell.shed;
    } else {
      ++cell.rejected;
    }
  }
  cell.p50_ms = util::ps_to_ms(static_cast<util::Picoseconds>(
      latency.quantile(0.50)));
  cell.p99_ms = util::ps_to_ms(static_cast<util::Picoseconds>(
      latency.quantile(0.99)));
  cell.p999_ms = util::ps_to_ms(static_cast<util::Picoseconds>(
      latency.quantile(0.999)));
  cell.makespan_ms = util::ps_to_ms(makespan);
  cell.jobs_per_s = makespan > 0 ? static_cast<double>(cell.served) /
                                       util::ps_to_s(makespan)
                                 : 0.0;
  // Fleet-wide reconfiguration economics over the whole replay.
  std::uint64_t switches = 0, hits = 0, misses = 0, partials = 0;
  for (int s = 0; s < shards; ++s) {
    if (cluster.shard_retired(s)) continue;
    for (int b = 0; b < cluster.service(s).board_count(); ++b) {
      const core::TaskSwitcher& sw = cluster.service(s).switcher(b);
      switches += sw.switch_count();
      hits += sw.cache_hits();
      misses += sw.cache_misses();
      partials += sw.partial_switches();
    }
  }
  cell.hit_rate = (hits + misses) == 0
                      ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(hits + misses);
  cell.full_reconfigs = switches - hits - partials;
  cell.partial_reconfigs = partials;
  cell.schedule_digest = cluster.schedule_digest();
  cell.func_digest = cluster.functional_digest();
  return cell;
}

}  // namespace

int main() {
  bench::banner("C1", "cluster-scale serving over a sharded fleet");

  const bool smoke = bench::smoke();
  const int n_requests = smoke ? 2'400 : 24'000;
  // Fixed wave geometry: the full run replays more waves, not bigger
  // ones, so smoke and full runs see the same per-wave queue dynamics.
  const int waves = n_requests / 300;
  // Offered load near the cache-oblivious fleet's effective capacity:
  // random placement burns ~1/3 of board time on reconfiguration, so at
  // this rate its queues compound while affine placement cruises.
  const double offered_rps = 3000.0;
  const std::vector<Request> stream = make_stream(n_requests, offered_rps);

  std::printf("\n%d requests from a %llu-user population, %.0f req/s "
              "offered, %d waves%s\n",
              n_requests, static_cast<unsigned long long>(kUsers),
              offered_rps, waves, smoke ? " (smoke)" : "");

  const ClusterCell single =
      run_cell("single_shard", 1, serve::PlacementPolicy::kConsistentHash,
               /*qos=*/false, stream, waves);
  const ClusterCell random =
      run_cell("random", kShards, serve::PlacementPolicy::kRandom,
               /*qos=*/false, stream, waves);
  const ClusterCell hashed =
      run_cell("consistent_hash", kShards,
               serve::PlacementPolicy::kConsistentHash, /*qos=*/false,
               stream, waves);
  const ClusterCell qos =
      run_cell("consistent_hash_qos", kShards,
               serve::PlacementPolicy::kConsistentHash, /*qos=*/true,
               stream, waves);

  // Determinism: the fleet schedule may not depend on host parallelism.
  bool pool_identical = true;
  for (const int threads : {1, 2, 4}) {
    util::WorkerPool pool(threads);
    const ClusterCell again =
        run_cell("consistent_hash", kShards,
                 serve::PlacementPolicy::kConsistentHash, /*qos=*/false,
                 stream, waves, &pool);
    pool_identical =
        pool_identical && again.schedule_digest == hashed.schedule_digest;
  }

  util::Table table("cluster policies at equal offered load");
  table.set_header({"policy", "shards", "served", "refused", "p50 ms",
                    "p99 ms", "p999 ms", "jobs/s", "hit rate", "full rc",
                    "part rc"});
  for (const ClusterCell* c : {&single, &random, &hashed, &qos}) {
    table.add_row(
        {c->name, std::to_string(c->shards), std::to_string(c->served),
         std::to_string(c->rejected + c->shed),
         util::Table::fmt(c->p50_ms, 2), util::Table::fmt(c->p99_ms, 2),
         util::Table::fmt(c->p999_ms, 2), util::Table::fmt(c->jobs_per_s, 1),
         util::Table::fmt(c->hit_rate, 3), std::to_string(c->full_reconfigs),
         std::to_string(c->partial_reconfigs)});
  }
  table.print();

  bench::expect(pool_identical,
                "cluster schedule bit-identical across worker pools 1/2/4");
  bench::expect(hashed.func_digest == random.func_digest,
                "placement policy moves jobs, never answers");
  bench::expect(hashed.p99_ms < random.p99_ms,
                "consistent-hash placement beats random on p99");
  bench::expect(hashed.hit_rate > random.hit_rate,
                "configuration affinity raises the fleet cache hit rate");
  bench::expect(hashed.p99_ms < single.p99_ms,
                "sharding beats the single-crate ceiling on p99");
  bench::expect(single.served == hashed.served &&
                    random.served == hashed.served,
                "placement-only rows admit the full stream");
  bench::expect(qos.rejected + qos.shed > 0,
                "the QoS row sheds or rejects under pressure");

  std::ofstream json("BENCH_cluster.json");
  json << "{\n  \"users\": " << kUsers
       << ",\n  \"requests\": " << n_requests
       << ",\n  \"offered_rps\": " << offered_rps
       << ",\n  \"waves\": " << waves
       << ",\n  \"pool_identical\": " << (pool_identical ? "true" : "false")
       << ",\n  \"rows\": [";
  bool first = true;
  for (const ClusterCell* c : {&single, &random, &hashed, &qos}) {
    json << (first ? "" : ",") << "\n    {\"policy\": \"" << c->name
         << "\", \"shards\": " << c->shards << ", \"served\": " << c->served
         << ", \"failed\": " << c->failed << ", \"rejected\": " << c->rejected
         << ", \"shed\": " << c->shed << ", \"p50_ms\": " << c->p50_ms
         << ", \"p99_ms\": " << c->p99_ms << ", \"p999_ms\": " << c->p999_ms
         << ", \"jobs_per_s\": " << c->jobs_per_s
         << ", \"cache_hit_rate\": " << c->hit_rate
         << ", \"full_reconfigs\": " << c->full_reconfigs
         << ", \"partial_reconfigs\": " << c->partial_reconfigs
         << ", \"makespan_ms\": " << c->makespan_ms
         << ", \"schedule_digest\": " << c->schedule_digest
         << ", \"func_digest\": " << c->func_digest << "}";
    first = false;
  }
  json << "\n  ]\n}\n";
  json.close();
  std::printf("\nwrote BENCH_cluster.json\n");

  return bench::finish();
}
