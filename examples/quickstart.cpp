// Quickstart: the CHDL workflow in one file.
//
// 1. Describe hardware as ordinary C++ (a pulse counter with a host
//    register file).
// 2. Simulate it by just *using* it — the same code that would drive the
//    real board drives the simulator; no test bench is written.
// 3. Check the resource footprint against a real device budget and
//    "configure" it onto a simulated ORCA 3T125.
// 4. Serve it: hand the design to the crate's JobService and let two
//    tenants stream jobs at it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "chdl/builder.hpp"
#include "chdl/hostif.hpp"
#include "chdl/sim.hpp"
#include "chdl/stats.hpp"
#include "chdl/vcd.hpp"
#include "core/system.hpp"
#include "hw/fpga.hpp"
#include "serve/jobservice.hpp"

using namespace atlantis;

// --- Step 1: design entry ---------------------------------------------
// A C++ function that *generates structure*: an event counter with a
// programmable divider, exposed through the standard host register map.
chdl::Design make_pulse_counter() {
  chdl::Design d("pulse_counter");
  chdl::HostRegFile host(d);

  // Host-programmable divider: one carry pulse every (div+1) events.
  const chdl::Wire div = host.write_reg("divider", /*addr=*/1, /*width=*/16);
  const chdl::Wire pulse = host.write_strobe(/*addr=*/2);

  // Prescaler counts pulses and wraps at the divider value.
  chdl::RegOpts popts;
  popts.enable = pulse;
  const chdl::Wire pre = d.reg_forward("prescaler", 16, popts);
  const chdl::Wire wrap = d.eq(pre, div);
  d.reg_connect(pre, d.mux(wrap, d.constant(16, 0),
                           d.add(pre, d.constant(16, 1))));

  // Main counter advances on every wrap.
  const chdl::Wire events =
      chdl::counter(d, "events", 32, d.band(pulse, wrap));
  host.map_read(/*addr=*/3, events);
  host.finish();
  return d;
}

int main() {
  // --- Step 2: the application IS the test bench ---------------------
  chdl::Design design = make_pulse_counter();
  chdl::Simulator sim(design);
  chdl::VcdWriter vcd(sim, "quickstart.vcd");  // waveforms, free of charge
  chdl::HostInterface host(sim);

  host.write(1, 3);  // divide by 4
  for (int i = 0; i < 42; ++i) host.write(2, 0);
  std::printf("pushed 42 pulses at divider 4 -> events register = %llu\n",
              static_cast<unsigned long long>(host.read(3)));
  std::printf("simulated %llu design clocks\n",
              static_cast<unsigned long long>(sim.cycles()));

  // --- Step 3: does it fit the silicon? -------------------------------
  const chdl::NetlistStats stats = chdl::analyze(design);
  std::printf("%s\n", stats.to_string().c_str());
  hw::FpgaDevice orca("acb0/fpga0", hw::orca_3t125());
  const util::Picoseconds t =
      orca.configure(hw::Bitstream::from_design(design));
  std::printf("configured onto %s in %.2f ms (bitstream model)\n",
              orca.family().name.c_str(), util::ps_to_ms(t));

  // --- Step 4: serve it ------------------------------------------------
  // The JobService is the front door for production use: tenants submit
  // jobs, the scheduler batches per configuration, the bitstream cache
  // amortizes reconfiguration across the mix.
  core::AtlantisSystem sys("crate");
  sys.add_acb("acb0");
  serve::JobService service(sys);
  service.register_config(hw::Bitstream::from_design(design));
  for (int i = 0; i < 8; ++i) {
    serve::JobSpec job;
    job.tenant = (i % 2 == 0) ? "alice" : "bob";
    job.config = design.name();
    job.work = [] {
      serve::JobOutcome out;
      out.compute_time = util::kMicrosecond;  // 1 us of design clocks
      out.dma_in_bytes = 4096;
      out.dma_out_bytes = 64;
      return out;
    };
    (void)service.submit(std::move(job)).value();
  }
  const serve::ServiceReport& rep = service.run();
  std::printf(
      "served %llu jobs in %llu batches (%llu full reconfigs) -> %.0f "
      "jobs/s\n",
      static_cast<unsigned long long>(rep.served),
      static_cast<unsigned long long>(rep.batches),
      static_cast<unsigned long long>(rep.full_reconfigs),
      rep.jobs_per_second);
  for (const serve::TenantStats& tenant : rep.tenants) {
    std::printf("  tenant %-5s: %llu jobs, p99 queue wait %.2f us\n",
                tenant.tenant.c_str(),
                static_cast<unsigned long long>(tenant.jobs),
                static_cast<double>(tenant.p99_wait) / 1e6);
  }
  std::printf("waveforms written to quickstart.vcd\n");
  return 0;
}
