// Astronomy scenario: evolve a small star cluster with the FPGA force
// pipeline as the force engine of a leapfrog integrator — the §3.3
// workflow where the host integrates and the coprocessor evaluates the
// O(N^2) pair forces in reduced-precision arithmetic.
//
// Build & run:  ./build/examples/galaxy_cluster
#include <cstdio>

#include "hw/hostcpu.hpp"
#include "nbody/force.hpp"
#include "nbody/integrator.hpp"
#include "nbody/plummer.hpp"

using namespace atlantis;
using namespace atlantis::nbody;

int main() {
  constexpr int kParticles = 256;
  constexpr double kSoftening = 0.05;
  constexpr double kDt = 0.01;
  constexpr int kSteps = 40;

  ParticleSet cluster = make_plummer(kParticles);
  std::printf("Plummer sphere: %d particles, E0 = %.6f\n", kParticles,
              total_energy(cluster, kSoftening));

  // The coprocessor force engine (18-bit pipeline, 25 MHz) with a time
  // ledger accumulated across the run.
  util::Picoseconds hw_time = 0;
  std::uint64_t pair_total = 0;
  ForcePipelineConfig cfg;
  cfg.format = util::kFloat18;
  cfg.softening = kSoftening;
  ForceEngine engine = [&](const ParticleSet& p) {
    ForcePipelineResult r = accel_pipeline(p, cfg);
    hw_time += r.time;
    pair_total += r.pairs;
    return std::move(r.accel);
  };

  const double drift = integrate(cluster, kDt, kSteps, engine, kSoftening);
  std::printf("after %d leapfrog steps: relative energy drift %.2e\n", kSteps,
              drift);
  std::printf("force pipeline: %llu pairs in %.2f ms of hardware time "
              "(%.0f MFLOP/s equivalent)\n",
              static_cast<unsigned long long>(pair_total),
              util::ps_to_ms(hw_time),
              static_cast<double>(pair_total) * kFlopsPerPair /
                  util::ps_to_s(hw_time) / 1e6);

  // What the host CPU alone would have needed.
  const double host_s = static_cast<double>(pair_total) * kFlopsPerPair /
                        (hw::pentium2_300().mflops() * 1e6);
  std::printf("Pentium-II/300 x87 would need ~%.2f ms for the same pairs "
              "(%.1fx slower)\n",
              host_s * 1e3,
              host_s / util::ps_to_s(hw_time));

  // Accuracy spot check on the final state.
  const auto exact = accel_reference(cluster, kSoftening);
  const auto approx = accel_pipeline(cluster, cfg);
  const util::Accumulator err = accel_error(exact, approx.accel);
  std::printf("18-bit force error on the final state: mean %.2e, max %.2e\n",
              err.mean(), err.max());
  return drift < 0.05 ? 0 : 1;
}
