// Medical-imaging scenario: render the CT phantom from the paper's three
// viewing directions at the three opacity presets and write the images
// as PGM files, together with the frame-rate report the hardware model
// predicts for each.
//
// Build & run:  ./build/examples/volume_viewer
// Output:       volren_<view>_<opacity>.pgm (9 images + 1 perspective)
#include <cstdio>
#include <string>

#include "util/image.hpp"
#include "volren/renderer.hpp"

using namespace atlantis;
using namespace atlantis::volren;

int main() {
  std::printf("generating 256x256x128 CT phantom...\n");
  const Volume vol = make_ct_phantom(256, 256, 128);

  FpgaRendererConfig cfg;
  cfg.render = paper_render_params();
  cfg.camera_zoom = kPaperCameraZoom;
  cfg.memory_reuse = 2.0;
  FpgaVolumeRenderer renderer(vol, cfg);

  const TransferFunction tfs[] = {tf_opaque(), tf_semi_low(), tf_semi_high()};
  for (const auto view : {ViewDirection::kFrontal, ViewDirection::kLateral,
                          ViewDirection::kOblique}) {
    for (const auto& tf : tfs) {
      const FrameReport rep = renderer.render_frame(tf, view);
      const std::string path =
          "volren_" + rep.view + "_" + rep.transfer + ".pgm";
      util::write_pgm(rep.image, path);
      std::printf(
          "%-28s %7llu samples (%.1f%% of voxels), %5.1f fps @100MHz, "
          "%5.1f fps on the >25MHz FPGA\n",
          path.c_str(), static_cast<unsigned long long>(rep.stats.samples),
          100.0 * rep.sample_fraction, rep.fps_tech, rep.fps_fpga);
    }
  }

  // One perspective rendering for comparison.
  const FrameReport persp =
      renderer.render_frame(tf_opaque(), ViewDirection::kOblique, true);
  util::write_pgm(persp.image, "volren_oblique_perspective.pgm");
  std::printf("%-28s perspective projection, %5.1f fps @100MHz\n",
              "volren_oblique_perspective.pgm", persp.fps_tech);

  std::printf("\nVolumePro-class brute force on this volume: %.1f fps\n",
              FpgaVolumeRenderer::volumepro_fps(vol.voxel_count()));
  return 0;
}
