// Industrial image-processing scenario: inspect a synthetic part image
// with a filter chain (denoise -> edge detect -> binarize), comparing the
// software reference with the streaming CHDL convolution engine and the
// ATLANTIS timing model.
//
// Build & run:  ./build/examples/edge_detect
// Output:       edges_input.pgm, edges_sobel.pgm, edges_binary.pgm
#include <cstdio>

#include "chdl/hostif.hpp"
#include "chdl/sim.hpp"
#include "core/driver.hpp"
#include "imgproc/conv_core.hpp"
#include "imgproc/hwmodel.hpp"
#include "imgproc/sobel_core.hpp"
#include "util/image.hpp"
#include "util/rng.hpp"

using namespace atlantis;
using namespace atlantis::imgproc;

// A machined part: bright plate with drilled holes and a slot, plus
// sensor noise — the kind of frame an inspection camera delivers.
Gray8 make_part_image(int w, int h, std::uint64_t seed) {
  Gray8 img(w, h, 30);
  util::Rng rng(seed);
  auto disc = [&](int cx, int cy, int r, std::uint8_t v) {
    for (int y = cy - r; y <= cy + r; ++y) {
      for (int x = cx - r; x <= cx + r; ++x) {
        if (img.in_bounds(x, y) &&
            (x - cx) * (x - cx) + (y - cy) * (y - cy) <= r * r) {
          img(x, y) = v;
        }
      }
    }
  };
  // Plate.
  for (int y = h / 8; y < 7 * h / 8; ++y) {
    for (int x = w / 8; x < 7 * w / 8; ++x) img(x, y) = 190;
  }
  // Holes and a slot.
  disc(w / 3, h / 3, h / 10, 30);
  disc(2 * w / 3, 2 * h / 3, h / 12, 30);
  for (int y = h / 2 - 3; y <= h / 2 + 3; ++y) {
    for (int x = w / 4; x < 3 * w / 4; ++x) img(x, y) = 30;
  }
  // Sensor noise.
  for (auto& px : img.data()) {
    const int noisy = px + static_cast<int>(5.0 * rng.normal());
    px = static_cast<std::uint8_t>(std::clamp(noisy, 0, 255));
  }
  return img;
}

int main() {
  constexpr int kW = 256, kH = 192;
  const Gray8 input = make_part_image(kW, kH, 42);
  util::write_pgm(input, "edges_input.pgm");

  // Software filter chain.
  const Gray8 smooth = convolve3x3(input, Kernel3x3::gaussian());
  const Gray8 edges = sobel_magnitude(smooth);
  const Gray8 binary = threshold(edges, 96);
  util::write_pgm(edges, "edges_sobel.pgm");
  util::write_pgm(binary, "edges_binary.pgm");
  int edge_pixels = 0;
  for (const std::uint8_t px : binary.data()) {
    if (px != 0) ++edge_pixels;
  }
  std::printf("software chain: %d edge pixels of %d\n", edge_pixels, kW * kH);

  // Gate-level check of the first stage on an image stripe: the CHDL
  // engine must match convolve3x3 bit for bit (full images run through
  // the same engine; a stripe keeps the demo fast).
  constexpr int kStripeH = 24;
  Gray8 stripe(kW + 2, kStripeH + 2);
  for (int y = 0; y < kStripeH + 2; ++y) {
    for (int x = 0; x < kW + 2; ++x) stripe(x, y) = input.clamped(x - 1, y - 1);
  }
  chdl::Design d("conv");
  build_conv_core(d, kW + 2, Kernel3x3::gaussian());
  chdl::Simulator sim(d);
  chdl::HostInterface host(sim);
  host.write(0x00, 0);
  std::vector<std::uint8_t> out;
  for (int y = 0; y < stripe.height(); ++y) {
    for (int x = 0; x < stripe.width(); ++x) {
      host.write(0x01, stripe(x, y));
      out.push_back(static_cast<std::uint8_t>(host.read(0x02)));
    }
  }
  // Align the output stream by its fixed pipeline latency (a little over
  // one image row: the line buffers plus the MAC register).
  int mismatches = -1;
  for (int offset = 0; offset < 4 * (kW + 2) && mismatches != 0; ++offset) {
    mismatches = 0;
    for (int y = 0; y < kStripeH && mismatches == 0; ++y) {
      for (int x = 0; x < kW; ++x) {
        const std::size_t idx =
            static_cast<std::size_t>((y + 1) * (kW + 2) + (x + 1)) + offset;
        if (idx < out.size() && out[idx] != smooth(x, y)) {
          ++mismatches;
          break;
        }
      }
    }
  }
  std::printf("CHDL convolution engine vs software: %s\n",
              mismatches == 0 ? "bit-exact on the test stripe" : "MISMATCH");

  // Timing: three chained filters on the board vs the host CPU.
  core::AtlantisSystem sys("crate");
  core::AtlantisDriver drv(sys, sys.add_acb("acb0"));
  ImgHwConfig cfg;
  cfg.chained_filters = 3;
  const ImgHwResult hw = filter_atlantis(kW, kH, cfg, &drv);
  const auto host_time =
      filter_host_time(kW, kH,
                       convolve_ops_per_pixel() + sobel_ops_per_pixel() + 3.0,
                       hw::pentium2_300());
  std::printf("3-filter chain on ATLANTIS: %.2f ms (incl. DMA) vs host "
              "%.2f ms -> %.1fx\n",
              util::ps_to_ms(hw.total_time), util::ps_to_ms(host_time),
              static_cast<double>(host_time) /
                  static_cast<double>(hw.total_time));

  // The composed Sobel engine with its on-board go/no-go edge counter:
  // what the inspection station actually deploys.
  chdl::Design sd("sobel");
  imgproc::build_sobel_core(sd, kW + 2);
  chdl::Simulator ssim(sd);
  chdl::HostInterface shost(ssim);
  shost.write(0x00, 0);
  shost.write(0x05, 96);  // same threshold as the software chain
  for (int y = 0; y < kStripeH + 2; ++y) {
    for (int x = 0; x < kW + 2; ++x) {
      shost.write(0x01, stripe(x, y));
    }
  }
  std::printf("sobel engine edge counter on the stripe: %llu pixels above "
              "threshold\n",
              static_cast<unsigned long long>(shost.read(0x04)));
  std::printf("wrote edges_input.pgm, edges_sobel.pgm, edges_binary.pgm\n");
  return mismatches == 0 ? 0 : 1;
}
