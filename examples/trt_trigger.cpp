// HEP scenario: the TRT second-level trigger end to end.
//
// Builds an ATLANTIS crate with one computing board, loads the LUT
// histogrammer, generates synthetic detector events, and runs the
// trigger three ways:
//   * software reference on the host-CPU model (the workstation side),
//   * ATLANTIS execution model at full scale (80k straws), with event
//     blocks submitted through the JobService like a production client,
//   * bit-accurate CHDL simulation on a reduced geometry.
//
// Build & run:  ./build/examples/trt_trigger
#include <cstdio>
#include <vector>

#include "chdl/hostif.hpp"
#include "core/driver.hpp"
#include "hw/hostcpu.hpp"
#include "serve/jobservice.hpp"
#include "trt/hwmodel.hpp"
#include "trt/serve_adapter.hpp"
#include "trt/trt_core.hpp"

using namespace atlantis;

int main() {
  // --- Full-scale trigger on the execution model ----------------------
  const trt::DetectorGeometry geo;  // 80,000 straws
  trt::PatternBank bank(geo, 1584);
  trt::EventParams ep;
  ep.tracks = 8;
  ep.noise_occupancy = 0.03;
  trt::EventGenerator gen(bank, ep);

  core::AtlantisSystem sys("crate");
  core::AtlantisDriver drv(sys, sys.add_acb("acb0"));
  for (int i = 0; i < 4; ++i) {
    sys.acb(0).attach_memory(i, core::MemModule::make_trt("lut" + std::to_string(i)));
  }
  std::printf("crate: 1 ACB, %d-bit LUT access, %d patterns, %d straws\n",
              sys.acb(0).total_memory_width_bits(), bank.pattern_count(),
              geo.straw_count());

  // The event loop goes through the JobService: the trigger farm is a
  // tenant submitting event blocks, exactly like production clients.
  const int threshold = trt::default_threshold(geo, ep.straw_efficiency);
  constexpr int kEvents = 5;
  trt::TrtHwConfig cfg;
  cfg.ram_width_bits = sys.acb(0).total_memory_width_bits();
  std::vector<trt::Event> events;
  events.reserve(kEvents);
  for (int e = 0; e < kEvents; ++e) events.push_back(gen.generate());

  serve::JobService service(sys);
  service.register_config(hw::Bitstream{"trt_lut", {}, nullptr, 1.0});
  for (const trt::Event& ev : events) {
    (void)service
        .submit(trt::make_histogram_job(bank, ev, cfg, "trigger", "trt_lut"))
        .value();
  }
  const serve::ServiceReport& rep = service.run();
  double eff_sum = 0.0, pur_sum = 0.0;
  for (int e = 0; e < kEvents; ++e) {
    const serve::JobRecord& rec = service.job(static_cast<serve::JobId>(e));
    const trt::Event& ev = events[static_cast<std::size_t>(e)];
    // Re-derive the found-track list from the reference histogram (the
    // hardware result is bit-identical; the job carries its digest).
    const auto found =
        trt::histogram_reference(bank, ev).histogram.tracks_above(threshold);
    const trt::TrackFinderQuality q = trt::score_tracks(ev, found);
    eff_sum += q.efficiency();
    pur_sum += q.purity();
    const double sw_ms = util::ps_to_ms(hw::pentium2_300().time_for_ops(
        trt::histogram_reference_dense(bank, ev).op_count));
    std::printf(
        "event %d: %5zu hits, %2d/%2d true tracks found (purity %.2f), "
        "hw %.2f ms vs sw %.1f ms\n",
        e, ev.hits.size(), q.matched, q.true_tracks, q.purity(),
        util::ps_to_ms(rec.finish - rec.start), sw_ms);
  }
  std::printf("mean efficiency %.3f, mean purity %.3f over %d events\n",
              eff_sum / kEvents, pur_sum / kEvents, kEvents);
  std::printf(
      "service: %llu jobs, %llu batches, %llu full reconfigs, %.0f jobs/s\n",
      static_cast<unsigned long long>(rep.served),
      static_cast<unsigned long long>(rep.batches),
      static_cast<unsigned long long>(rep.full_reconfigs),
      rep.jobs_per_second);

  // --- Reduced geometry, gate level ------------------------------------
  trt::DetectorGeometry tiny;
  tiny.layers = 6;
  tiny.straws_per_layer = 16;
  trt::PatternBank tiny_bank(tiny, 12);
  chdl::Design d("trt_core");
  trt::build_trt_core(d, tiny_bank);
  drv.configure(0, hw::Bitstream::from_design(d));
  chdl::HostInterface* hif = drv.host_if(0);
  trt::EventGenerator tiny_gen(tiny_bank, trt::EventParams{.tracks = 2});
  const trt::Event tev = tiny_gen.generate();
  hif->write(0x00, 0);
  for (const std::int32_t s : tev.hits) {
    hif->write(0x01, static_cast<std::uint64_t>(s));
  }
  hif->idle(2);
  const trt::ReferenceResult ref = trt::histogram_reference(tiny_bank, tev);
  bool identical = true;
  for (int p = 0; p < tiny_bank.pattern_count(); ++p) {
    identical = identical &&
                hif->read(0x10 + static_cast<std::uint32_t>(p)) ==
                    ref.histogram.counts[static_cast<std::size_t>(p)];
  }
  std::printf("gate-level CHDL core vs software reference: %s (%d patterns, "
              "%zu hits)\n",
              identical ? "bit-exact" : "MISMATCH", tiny_bank.pattern_count(),
              tev.hits.size());
  return identical ? 0 : 1;
}
