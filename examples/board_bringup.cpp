// Board bring-up scenario: what a lab session with a freshly assembled
// ACB looks like — run the self-test suite (configure/readback on every
// FPGA, memory march tests, DMA loopback, S-Link pattern loop), then
// inspect a generated design's netlist and resource report.
//
// Build & run:  ./build/examples/board_bringup
// Output:       bringup_netlist.txt, bringup_graph.dot
#include <cstdio>
#include <fstream>

#include "chdl/export.hpp"
#include "chdl/stats.hpp"
#include "core/selftest.hpp"
#include "hw/slink.hpp"
#include "imgproc/sobel_core.hpp"

using namespace atlantis;

int main() {
  // A board populated the way the 2-D image-processing application
  // would ship it.
  core::AcbBoard board("acb0");
  board.attach_memory(0, core::MemModule::make_image("frames"));
  board.attach_memory(1, core::MemModule::make_trt("aux"));

  std::printf("=== ACB self test ===\n");
  const core::SelfTestReport report = core::self_test_acb(board);
  std::printf("%s", report.to_string().c_str());

  std::printf("\n=== external S-Link check ===\n");
  hw::SlinkChannel link("acb0/lvds0", 32 * 1024, 40.0);
  const core::SelfTestStep slink = core::slink_test(link);
  std::printf("%s: %s (%.1f MB/s peak)\n", slink.name.c_str(),
              slink.passed ? "ok" : "FAILED", link.peak_mbps());

  std::printf("\n=== design inspection ===\n");
  chdl::Design sobel("sobel512");
  imgproc::build_sobel_core(sobel, 512);
  const chdl::NetlistStats stats = chdl::analyze(sobel);
  std::printf("%s\n", stats.to_string().c_str());
  {
    std::ofstream netlist("bringup_netlist.txt");
    netlist << chdl::export_netlist(sobel);
    std::ofstream dot("bringup_graph.dot");
    dot << chdl::export_dot(sobel);
  }
  std::printf("wrote bringup_netlist.txt and bringup_graph.dot\n");

  const bool ok = report.all_passed() && slink.passed;
  std::printf("\nbring-up %s\n", ok ? "PASSED" : "FAILED");
  return ok ? 0 : 1;
}
