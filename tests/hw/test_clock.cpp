#include "hw/clock.hpp"

#include <gtest/gtest.h>

namespace atlantis::hw {
namespace {

TEST(Clock, PeriodMatchesFrequency) {
  ClockGenerator clk("clk", 1.0, 80.0, 40.0);
  EXPECT_DOUBLE_EQ(clk.mhz(), 40.0);
  EXPECT_EQ(clk.period(), 25'000);  // 25 ns in ps
  clk.set_mhz(80.0);
  EXPECT_EQ(clk.period(), 12'500);
  clk.set_mhz(66.0);
  EXPECT_NEAR(static_cast<double>(clk.period()), 15'152.0, 1.0);
}

TEST(Clock, ProgrammableRangeEnforced) {
  // "programmable in the range of a few MHz up to at least 80 MHz".
  ClockGenerator clk("clk");
  EXPECT_NO_THROW(clk.set_mhz(1.0));
  EXPECT_NO_THROW(clk.set_mhz(80.0));
  EXPECT_THROW(clk.set_mhz(0.5), util::Error);
  EXPECT_THROW(clk.set_mhz(100.0), util::Error);
}

TEST(Clock, CyclesScaleLinearly) {
  ClockGenerator clk("clk", 1.0, 80.0, 40.0);
  EXPECT_EQ(clk.cycles(1'000'000), 25 * util::kMillisecond);
  EXPECT_EQ(clk.cycles(0), 0);
}

TEST(Clock, NamePreserved) {
  ClockGenerator clk("acb0/clk_io2");
  EXPECT_EQ(clk.name(), "acb0/clk_io2");
}

}  // namespace
}  // namespace atlantis::hw
