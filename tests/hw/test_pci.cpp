#include "hw/pci.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace atlantis::hw {
namespace {

TEST(Pci, PeakBandwidthIs132) {
  const PciParams p;
  EXPECT_DOUBLE_EQ(p.peak_mbps(), 132.0);  // 32 bit x 33 MHz
}

TEST(Pci, ZeroLengthRejected) {
  Plx9080 plx;
  EXPECT_THROW(plx.transfer(DmaDirection::kRead, 0), util::Error);
}

TEST(Pci, ThroughputGrowsWithBlockSize) {
  // The Table 1 mechanism: fixed setup cost amortizes over the block.
  Plx9080 plx;
  double prev = 0.0;
  for (const std::uint64_t kb : {1, 4, 16, 64, 256, 1024}) {
    const DmaTransfer t = plx.transfer(DmaDirection::kWrite, kb * util::kKiB);
    EXPECT_GT(t.mbps(), prev) << kb << " kB";
    prev = t.mbps();
  }
}

TEST(Pci, SaturatesBelowBusMaximum) {
  // "allowing 125 MB/s max. data rate" — the sustained rate must stay
  // below the 132 MB/s theoretical peak even for huge blocks.
  Plx9080 plx;
  const DmaTransfer w = plx.transfer(DmaDirection::kWrite, 64 * util::kMiB);
  const DmaTransfer r = plx.transfer(DmaDirection::kRead, 64 * util::kMiB);
  EXPECT_LT(w.mbps(), 132.0);
  EXPECT_GT(w.mbps(), 100.0);
  EXPECT_LT(r.mbps(), w.mbps());
}

TEST(Pci, ReadSlowerThanWriteAtEveryBlockSize) {
  // PLX 9080 posts writes; reads pay turnaround on every burst.
  Plx9080 plx;
  for (const std::uint64_t kb : {1, 8, 64, 512}) {
    const double w =
        plx.transfer(DmaDirection::kWrite, kb * util::kKiB).mbps();
    const double r = plx.transfer(DmaDirection::kRead, kb * util::kKiB).mbps();
    EXPECT_LT(r, w) << kb << " kB";
  }
}

TEST(Pci, SmallBlocksDominatedBySetup) {
  Plx9080 plx;
  const DmaTransfer t = plx.transfer(DmaDirection::kWrite, util::kKiB);
  // 1 kB at full speed would take ~8 us; setup adds 40 us, so the
  // effective rate collapses to well under a third of peak.
  EXPECT_LT(t.mbps(), 0.35 * plx.params().peak_mbps());
}

TEST(Pci, DurationDecomposes) {
  PciParams p;
  Plx9080 plx(p);
  const std::uint64_t bytes = 8 * util::kKiB;  // exactly 2 pages
  const DmaTransfer t = plx.transfer(DmaDirection::kWrite, bytes);
  const double rate = p.peak_mbps() * p.write_efficiency * 1e6;
  const auto burst = static_cast<util::Picoseconds>(
      static_cast<double>(bytes) / rate * 1e12);
  EXPECT_NEAR(static_cast<double>(t.duration),
              static_cast<double>(p.setup_latency + 2 * p.descriptor_latency +
                                  burst),
              1000.0);
}

TEST(Pci, TargetAccessIsTenBusClocks) {
  Plx9080 plx;
  EXPECT_EQ(plx.target_access(), 10 * util::period_from_mhz(33.0));
}

TEST(Pci, RecordAccumulates) {
  Plx9080 plx;
  const DmaTransfer a = plx.transfer(DmaDirection::kWrite, 1000);
  const DmaTransfer b = plx.transfer(DmaDirection::kRead, 2000);
  plx.record(a);
  plx.record(b);
  EXPECT_EQ(plx.total_bytes(), 3000u);
  EXPECT_EQ(plx.total_time(), a.duration + b.duration);
}

// Parameterized shape check across directions.
class DmaSweep : public ::testing::TestWithParam<DmaDirection> {};

TEST_P(DmaSweep, TimeIsMonotoneInBytes) {
  Plx9080 plx;
  util::Picoseconds prev = 0;
  for (std::uint64_t bytes = 512; bytes <= 4 * util::kMiB; bytes *= 2) {
    const DmaTransfer t = plx.transfer(GetParam(), bytes);
    EXPECT_GT(t.duration, prev);
    prev = t.duration;
  }
}

INSTANTIATE_TEST_SUITE_P(Directions, DmaSweep,
                         ::testing::Values(DmaDirection::kRead,
                                           DmaDirection::kWrite));

}  // namespace
}  // namespace atlantis::hw
