#include "hw/hostcpu.hpp"

#include <gtest/gtest.h>

namespace atlantis::hw {
namespace {

TEST(HostCpu, ModelsAreOrderedBySpeed) {
  EXPECT_LT(pentium200_mmx().ops_per_second(),
            pentium2_300().ops_per_second());
  EXPECT_LT(pentium2_300().ops_per_second(), celeron450().ops_per_second());
}

TEST(HostCpu, TimeScalesWithOps) {
  const HostCpuModel cpu = pentium2_300();
  const auto t1 = cpu.time_for_ops(1e6);
  const auto t2 = cpu.time_for_ops(2e6);
  EXPECT_NEAR(static_cast<double>(t2), 2.0 * static_cast<double>(t1),
              static_cast<double>(t1) * 0.01);
}

TEST(HostCpu, Pentium2FlopsInEraRange) {
  // Late-90s x87: around 100 MFLOPS sustained.
  const double mflops = pentium2_300().mflops();
  EXPECT_GT(mflops, 50.0);
  EXPECT_LT(mflops, 200.0);
}

TEST(HostCpu, CalibrationAnchorsTrtBaseline) {
  // The §3.4 anchor: the dense TRT histogram walk costs ~8M simple ops
  // (see trt tests); at the Pentium-II/300 rate that must land in the
  // neighbourhood of the measured 35 ms.
  const HostCpuModel cpu = pentium2_300();
  const double ms = util::ps_to_ms(cpu.time_for_ops(7.0e6));
  EXPECT_GT(ms, 20.0);
  EXPECT_LT(ms, 50.0);
}

}  // namespace
}  // namespace atlantis::hw
