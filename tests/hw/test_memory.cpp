#include <gtest/gtest.h>

#include "hw/fifo.hpp"
#include "hw/sdram.hpp"
#include "hw/sram.hpp"
#include "util/rng.hpp"

namespace atlantis::hw {
namespace {

TEST(SyncSram, ShapeAndCapacity) {
  // The TRT module: 512k x 176 = 11.26 MB.
  SramConfig cfg{512 * 1024, 176, 1, 40.0};
  EXPECT_EQ(cfg.total_bytes(), 512ll * 1024 * 176 / 8);
  SyncSram mem("trt0", cfg);
  EXPECT_EQ(mem.config().words, 512 * 1024);
}

TEST(SyncSram, ReadWriteRoundtrip) {
  SyncSram mem("m", SramConfig{64, 176, 2, 40.0});
  chdl::BitVec v(176);
  v.set_bit(0, true);
  v.set_bit(100, true);
  v.set_bit(175, true);
  mem.write(1, 17, v);
  EXPECT_EQ(mem.read(1, 17), v);
  EXPECT_FALSE(mem.read(0, 17).any());  // other bank untouched
}

TEST(SyncSram, BoundsAndWidthChecked) {
  SyncSram mem("m", SramConfig{16, 8, 1, 40.0});
  EXPECT_THROW(mem.read(1, 0), util::Error);
  EXPECT_THROW(mem.read(0, 16), util::Error);
  EXPECT_THROW(mem.write(0, 0, chdl::BitVec(9, 0)), util::Error);
}

TEST(SyncSram, BanksServeAccessesInParallel) {
  SyncSram one("m1", SramConfig{1024, 72, 1, 40.0});
  SyncSram two("m2", SramConfig{1024, 72, 2, 40.0});
  EXPECT_EQ(one.cycles_for(100), 100u);
  EXPECT_EQ(two.cycles_for(100), 50u);
  EXPECT_EQ(two.time_for(100), one.time_for(100) / 2);
}

TEST(SyncSram, PeakBandwidthScalesWithWidthAndBanks) {
  SyncSram narrow("n", SramConfig{1024, 72, 1, 40.0});
  SyncSram wide("w", SramConfig{1024, 176, 1, 40.0});
  EXPECT_GT(wide.peak_mbps(), narrow.peak_mbps());
}

TEST(Sdram, OpenRowHitsAreSingleCycle) {
  Sdram mem("sd");
  const std::uint64_t first = mem.access(0);     // cold miss
  const std::uint64_t second = mem.access(8);    // same row
  EXPECT_GT(first, 1u);
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(mem.row_hits(), 1u);
  EXPECT_EQ(mem.row_misses(), 1u);
}

TEST(Sdram, RowMissPaysPrechargeActivate) {
  SdramConfig cfg;
  Sdram mem("sd", cfg);
  mem.access(0);
  // Jump 8 rows ahead: same bank (banks interleave per row), new row.
  const std::uint64_t miss =
      mem.access(static_cast<std::uint64_t>(cfg.row_bytes) * 8);
  EXPECT_EQ(miss, static_cast<std::uint64_t>(cfg.t_rp + cfg.t_rcd + cfg.t_cas) + 1);
}

TEST(Sdram, SequentialBeatsRandom) {
  SdramConfig cfg;
  Sdram seq("seq", cfg);
  Sdram rnd("rnd", cfg);
  util::Rng rng(77);
  std::uint64_t seq_cycles = 0, rnd_cycles = 0;
  for (int i = 0; i < 10000; ++i) {
    seq_cycles += seq.access(static_cast<std::uint64_t>(i) * 4);
    rnd_cycles += rnd.access(rng.next_below(
        static_cast<std::uint64_t>(cfg.capacity_bytes)));
  }
  EXPECT_LT(seq_cycles, rnd_cycles / 2);
  EXPECT_GT(seq.hit_rate(), 0.95);
  EXPECT_LT(rnd.hit_rate(), 0.2);
}

TEST(Sdram, CountersReset) {
  Sdram mem("sd");
  mem.access(0);
  mem.access(4);
  mem.reset_counters();
  EXPECT_EQ(mem.total_accesses(), 0u);
  EXPECT_EQ(mem.row_hits(), 0u);
  // After reset every bank is closed again: first access misses.
  EXPECT_GT(mem.access(0), 1u);
}

TEST(Sdram, OutOfRangeThrows) {
  Sdram mem("sd");
  EXPECT_THROW(
      mem.access(static_cast<std::uint64_t>(mem.config().capacity_bytes)),
      util::Error);
}

TEST(Fifo, PushPopOccupancy) {
  Fifo f("f", 4);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.push(3), 3u);
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(f.push(3), 1u);  // only one slot left
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.total_rejected(), 2u);
  EXPECT_EQ(f.pop(10), 4u);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.total_pushed(), 4u);
  EXPECT_EQ(f.total_popped(), 4u);
}

TEST(Fifo, WatermarkTracksPeak) {
  Fifo f("f", 100);
  f.push(30);
  f.tick();
  f.pop(20);
  f.tick();
  f.push(50);
  f.tick();
  EXPECT_EQ(f.high_watermark(), 60u);
}

TEST(Fifo, AibDepthsMatchPaper) {
  // "A 32k*36 FIFO-style buffer ... A 1M*36 general purpose buffer".
  Fifo stage1("fifo", 32 * 1024);
  Fifo stage2("sram", 1024 * 1024);
  EXPECT_EQ(stage1.depth(), 32768u);
  EXPECT_EQ(stage2.depth(), 1048576u);
}

}  // namespace
}  // namespace atlantis::hw
