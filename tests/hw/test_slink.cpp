#include "hw/slink.hpp"

#include <gtest/gtest.h>

namespace atlantis::hw {
namespace {

TEST(Slink, WordsArriveInOrder) {
  SlinkChannel link("sl0");
  EXPECT_TRUE(link.send({1, false}));
  EXPECT_TRUE(link.send({2, true}));
  EXPECT_TRUE(link.send({3, false}));
  auto a = link.receive();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->payload, 1u);
  EXPECT_FALSE(a->control);
  auto b = link.receive();
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->control);
  EXPECT_EQ(link.receive()->payload, 3u);
  EXPECT_FALSE(link.receive().has_value());
}

TEST(Slink, XoffWhenBufferFull) {
  SlinkChannel link("sl0", /*fifo_words=*/4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(link.send({static_cast<std::uint32_t>(i), false}));
  }
  EXPECT_TRUE(link.xoff());
  EXPECT_FALSE(link.send({99, false}));
  EXPECT_EQ(link.words_refused(), 1u);
  // Draining reopens the link.
  link.receive();
  EXPECT_FALSE(link.xoff());
  EXPECT_TRUE(link.send({99, false}));
}

TEST(Slink, FragmentFramedByControlWords) {
  SlinkChannel link("sl0");
  const std::vector<std::uint32_t> payload = {0xAA, 0xBB, 0xCC};
  EXPECT_EQ(link.send_fragment(0x123, payload), payload.size() + 2);
  const auto begin = link.receive();
  ASSERT_TRUE(begin.has_value());
  EXPECT_TRUE(begin->control);
  EXPECT_EQ(begin->payload, SlinkChannel::kBeginFragment | 0x123);
  for (const std::uint32_t w : payload) {
    EXPECT_EQ(link.receive()->payload, w);
  }
  const auto end = link.receive();
  EXPECT_TRUE(end->control);
  EXPECT_EQ(end->payload, SlinkChannel::kEndFragment | 0x123);
}

TEST(Slink, FragmentStopsOnXoff) {
  SlinkChannel link("sl0", 3);
  const std::vector<std::uint32_t> payload(10, 7);
  EXPECT_EQ(link.send_fragment(1, payload), 3u);  // begin + 2 data words
}

TEST(Slink, BandwidthMatchesFootnoteHardware) {
  // S-Link at 40 MHz moves 160 MB/s — the class of rate the TRT input
  // stage needs per link.
  SlinkChannel link("sl0", 1024, 40.0);
  EXPECT_DOUBLE_EQ(link.peak_mbps(), 160.0);
  EXPECT_EQ(link.transfer_time(40'000'000), util::kSecond);
}

TEST(Slink, SelfTestPasses) {
  SlinkChannel link("sl0");
  EXPECT_TRUE(link.self_test());
  // Still usable afterwards.
  EXPECT_TRUE(link.send({5, false}));
  EXPECT_EQ(link.receive()->payload, 5u);
}

TEST(Slink, LongStreamCompactsInternally) {
  SlinkChannel link("sl0", 64);
  for (int round = 0; round < 2000; ++round) {
    ASSERT_TRUE(link.send({static_cast<std::uint32_t>(round), false}));
    const auto w = link.receive();
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->payload, static_cast<std::uint32_t>(round));
  }
  EXPECT_EQ(link.words_sent(), 2000u);
  EXPECT_EQ(link.buffered(), 0u);
}

TEST(Slink, CompactionPastHeadThresholdPreservesStream) {
  // The receive path erases the consumed prefix only once the head index
  // passes 4096 AND more than half the vector is dead; this drives the
  // stream well past that threshold with live words still buffered and
  // checks nothing is lost, reordered or double-counted across the
  // compactions.
  SlinkChannel link("sl0", /*fifo_words=*/8192);
  std::uint32_t next_send = 0, next_recv = 0;
  // Keep ~1500 words in flight while pushing 20k words through: head_
  // repeatedly crosses 4096 with a non-empty tail to move.
  for (int round = 0; round < 20'000; ++round) {
    ASSERT_TRUE(link.send({next_send++, false}));
    if (link.buffered() > 1500) {
      const auto w = link.receive();
      ASSERT_TRUE(w.has_value());
      ASSERT_EQ(w->payload, next_recv++);
    }
  }
  while (const auto w = link.receive()) {
    ASSERT_EQ(w->payload, next_recv++);
  }
  EXPECT_EQ(next_recv, next_send);
  EXPECT_EQ(link.buffered(), 0u);
  EXPECT_EQ(link.words_sent(), 20'000u);
  EXPECT_EQ(link.words_refused(), 0u);
}

TEST(Slink, XoffRetryAccounting) {
  // The S-Link sender card retries words refused under XOFF; every
  // attempt during back-pressure counts in words_refused, every accepted
  // word (including the successful retry) in words_sent.
  SlinkChannel link("sl0", /*fifo_words=*/8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(link.send({i, false}));
  }
  ASSERT_TRUE(link.xoff());
  // Three retries of the same word while the receiver stalls.
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_FALSE(link.send({100, false}));
  }
  EXPECT_EQ(link.words_refused(), 3u);
  EXPECT_EQ(link.words_sent(), 8u);
  // Receiver frees one slot; the retry goes through, the stream stays
  // in order and no refused attempt left a duplicate behind.
  EXPECT_EQ(link.receive()->payload, 0u);
  EXPECT_FALSE(link.xoff());
  EXPECT_TRUE(link.send({100, false}));
  EXPECT_EQ(link.words_sent(), 9u);
  EXPECT_EQ(link.words_refused(), 3u);
  std::vector<std::uint32_t> drained;
  while (const auto w = link.receive()) drained.push_back(w->payload);
  EXPECT_EQ(drained,
            (std::vector<std::uint32_t>{1, 2, 3, 4, 5, 6, 7, 100}));
}

TEST(Slink, Validation) {
  EXPECT_THROW(SlinkChannel("x", 0), util::Error);
  EXPECT_THROW(SlinkChannel("x", 16, 0.0), util::Error);
}

}  // namespace
}  // namespace atlantis::hw
