#include "hw/slink.hpp"

#include <gtest/gtest.h>

namespace atlantis::hw {
namespace {

TEST(Slink, WordsArriveInOrder) {
  SlinkChannel link("sl0");
  EXPECT_TRUE(link.send({1, false}));
  EXPECT_TRUE(link.send({2, true}));
  EXPECT_TRUE(link.send({3, false}));
  auto a = link.receive();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->payload, 1u);
  EXPECT_FALSE(a->control);
  auto b = link.receive();
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->control);
  EXPECT_EQ(link.receive()->payload, 3u);
  EXPECT_FALSE(link.receive().has_value());
}

TEST(Slink, XoffWhenBufferFull) {
  SlinkChannel link("sl0", /*fifo_words=*/4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(link.send({static_cast<std::uint32_t>(i), false}));
  }
  EXPECT_TRUE(link.xoff());
  EXPECT_FALSE(link.send({99, false}));
  EXPECT_EQ(link.words_refused(), 1u);
  // Draining reopens the link.
  link.receive();
  EXPECT_FALSE(link.xoff());
  EXPECT_TRUE(link.send({99, false}));
}

TEST(Slink, FragmentFramedByControlWords) {
  SlinkChannel link("sl0");
  const std::vector<std::uint32_t> payload = {0xAA, 0xBB, 0xCC};
  EXPECT_EQ(link.send_fragment(0x123, payload), payload.size() + 2);
  const auto begin = link.receive();
  ASSERT_TRUE(begin.has_value());
  EXPECT_TRUE(begin->control);
  EXPECT_EQ(begin->payload, SlinkChannel::kBeginFragment | 0x123);
  for (const std::uint32_t w : payload) {
    EXPECT_EQ(link.receive()->payload, w);
  }
  const auto end = link.receive();
  EXPECT_TRUE(end->control);
  EXPECT_EQ(end->payload, SlinkChannel::kEndFragment | 0x123);
}

TEST(Slink, FragmentStopsOnXoff) {
  SlinkChannel link("sl0", 3);
  const std::vector<std::uint32_t> payload(10, 7);
  EXPECT_EQ(link.send_fragment(1, payload), 3u);  // begin + 2 data words
}

TEST(Slink, BandwidthMatchesFootnoteHardware) {
  // S-Link at 40 MHz moves 160 MB/s — the class of rate the TRT input
  // stage needs per link.
  SlinkChannel link("sl0", 1024, 40.0);
  EXPECT_DOUBLE_EQ(link.peak_mbps(), 160.0);
  EXPECT_EQ(link.transfer_time(40'000'000), util::kSecond);
}

TEST(Slink, SelfTestPasses) {
  SlinkChannel link("sl0");
  EXPECT_TRUE(link.self_test());
  // Still usable afterwards.
  EXPECT_TRUE(link.send({5, false}));
  EXPECT_EQ(link.receive()->payload, 5u);
}

TEST(Slink, LongStreamCompactsInternally) {
  SlinkChannel link("sl0", 64);
  for (int round = 0; round < 2000; ++round) {
    ASSERT_TRUE(link.send({static_cast<std::uint32_t>(round), false}));
    const auto w = link.receive();
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->payload, static_cast<std::uint32_t>(round));
  }
  EXPECT_EQ(link.words_sent(), 2000u);
  EXPECT_EQ(link.buffered(), 0u);
}

TEST(Slink, Validation) {
  EXPECT_THROW(SlinkChannel("x", 0), util::Error);
  EXPECT_THROW(SlinkChannel("x", 16, 0.0), util::Error);
}

}  // namespace
}  // namespace atlantis::hw
