#include "hw/fpga.hpp"

#include <gtest/gtest.h>

#include "chdl/builder.hpp"

namespace atlantis::hw {
namespace {

chdl::Design& small_design() {
  static chdl::Design d = [] {
    chdl::Design dd("blinky");
    const chdl::Wire en = dd.input("en", 1);
    dd.output("q", chdl::counter(dd, "c", 8, en));
    return dd;
  }();
  return d;
}

TEST(FpgaFamily, PaperFigures) {
  // ORCA 3T125: ~186k average gates; 4 of them sum to the 744k of §2.1.
  EXPECT_EQ(orca_3t125().gate_capacity * 4, 744'000);
  // "more than 100k gates and 400 I/O pins per chip".
  EXPECT_GT(orca_3t125().gate_capacity, 100'000);
  EXPECT_GE(orca_3t125().io_pins, 422);  // the ACB uses 422 signals
  EXPECT_TRUE(orca_3t125().partial_reconfig);
  EXPECT_TRUE(orca_3t125().readback);
  EXPECT_FALSE(virtex_xcv600().partial_reconfig);
  EXPECT_GT(virtex_xcv600().gate_capacity, orca_3t125().gate_capacity);
}

TEST(FpgaDevice, ConfigureLoadsDesignAndSim) {
  FpgaDevice dev("fpga0", orca_3t125());
  EXPECT_FALSE(dev.configured());
  const Bitstream bs = Bitstream::from_design(small_design());
  const util::Picoseconds t = dev.configure(bs);
  EXPECT_GT(t, 0);
  EXPECT_TRUE(dev.configured());
  EXPECT_EQ(dev.design_name(), "blinky");
  ASSERT_NE(dev.sim(), nullptr);
  dev.sim()->poke("en", 1);
  dev.sim()->run(3);
  EXPECT_EQ(dev.sim()->peek_u64("q"), 3u);
}

TEST(FpgaDevice, ConfigTimeMatchesBitstreamRate) {
  FpgaDevice dev("fpga0", orca_3t125());
  // 1.5 Mbit over 8 bits @ 10 MHz = 187500 clocks x 100 ns = 18.75 ms.
  EXPECT_EQ(dev.config_time(orca_3t125().config_bits), 187'500ll * 100'000);
}

TEST(FpgaDevice, GateBudgetEnforced) {
  FpgaDevice dev("fpga0", orca_3t125());
  Bitstream bs;
  bs.name = "huge";
  bs.stats.design_name = "huge";
  bs.stats.gate_equivalents = 1'000'000;
  EXPECT_THROW(dev.configure(bs), util::CapacityError);
  EXPECT_FALSE(dev.configured());
}

TEST(FpgaDevice, PinBudgetEnforced) {
  FpgaDevice dev("fpga0", orca_3t125());
  Bitstream bs;
  bs.name = "pins";
  bs.stats.io_pins = 500;
  EXPECT_THROW(dev.configure(bs), util::CapacityError);
}

TEST(FpgaDevice, PartialReconfigurationRules) {
  FpgaDevice orca("orca", orca_3t125());
  FpgaDevice virtex("virtex", virtex_xcv600());
  Bitstream bs = Bitstream::from_design(small_design());
  bs.fraction = 0.25;

  // Must be configured first.
  EXPECT_THROW(orca.partial_reconfigure(bs), util::StateError);
  const util::Picoseconds full = orca.configure(bs);
  const util::Picoseconds partial = orca.partial_reconfigure(bs);
  EXPECT_LT(partial, full);
  EXPECT_NEAR(static_cast<double>(partial), static_cast<double>(full) * 0.25,
              static_cast<double>(full) * 0.01);

  // Virtex generation: no partial reconfiguration.
  virtex.configure(bs);
  EXPECT_THROW(virtex.partial_reconfigure(bs), util::Error);
}

TEST(FpgaDevice, BadFractionRejected) {
  FpgaDevice dev("fpga0", orca_3t125());
  Bitstream bs = Bitstream::from_design(small_design());
  dev.configure(bs);
  bs.fraction = 0.0;
  EXPECT_THROW(dev.partial_reconfigure(bs), util::Error);
  bs.fraction = 1.5;
  EXPECT_THROW(dev.partial_reconfigure(bs), util::Error);
}

TEST(FpgaDevice, ReadbackRequiresConfiguration) {
  FpgaDevice dev("fpga0", orca_3t125());
  EXPECT_THROW(dev.readback(), util::StateError);
  dev.configure(Bitstream::from_design(small_design()));
  EXPECT_GT(dev.readback(), 0);
}

TEST(FpgaDevice, DeconfigureClearsState) {
  FpgaDevice dev("fpga0", orca_3t125());
  dev.configure(Bitstream::from_design(small_design()));
  dev.deconfigure();
  EXPECT_FALSE(dev.configured());
  EXPECT_EQ(dev.sim(), nullptr);
}

TEST(Bitstream, FromDesignAnalyzes) {
  const Bitstream bs = Bitstream::from_design(small_design());
  EXPECT_EQ(bs.name, "blinky");
  EXPECT_GT(bs.stats.gate_equivalents, 0);
  EXPECT_EQ(bs.design, &small_design());
  // from_design never invents region signatures — the scalar model stays
  // the default until a caller attaches them.
  EXPECT_FALSE(bs.has_regions());
}

TEST(FpgaDevice, RegionGeometryMatchesTheFamily) {
  const FpgaDevice orca("fpga0", orca_3t125());
  const FpgaDevice virtex("fpga1", virtex_xcv600());
  EXPECT_GT(orca.region_count(), 1);
  EXPECT_EQ(virtex.region_count(), 1);  // monolithic configuration store
  // The frames tile the bitstream: region_count frame loads cost at
  // least a full configuration (rounding may add a few clocks).
  EXPECT_GE(orca.region_count() * orca.region_time(),
            orca.config_time(orca.family().config_bits));
}

TEST(FpgaDevice, ReconfigureDiffPreservesResidentSimulator) {
  FpgaDevice dev("fpga0", orca_3t125());
  Bitstream bs = Bitstream::from_design(small_design());
  bs.region_sigs = make_region_signatures("blinky_v1", dev.region_count());
  dev.configure(bs);
  chdl::Simulator* sim = dev.sim();
  ASSERT_NE(sim, nullptr);
  sim->poke("en", 1);
  for (int i = 0; i < 5; ++i) sim->step();
  const std::uint64_t q = sim->peek_u64("q");

  // Same design name, two regions' content changed (coefficient pages):
  // the frames move, the flip-flops do not.
  Bitstream v2 = bs;
  stamp_regions(v2.region_sigs, "blinky_v2", 3, 5);
  const ReconfigOutcome oc = dev.reconfigure_diff(v2);
  EXPECT_TRUE(oc.ok);
  EXPECT_EQ(oc.regions_loaded, 2);
  EXPECT_EQ(dev.sim(), sim);
  EXPECT_EQ(dev.sim()->peek_u64("q"), q);

  // A different design name rebuilds the simulator from scratch (the
  // allocator may reuse the address, so check the state, not the
  // pointer: the counter restarts at zero).
  Bitstream other = v2;
  other.name = "blinky2";
  stamp_regions(other.region_sigs, "blinky2", 0, 2);
  EXPECT_TRUE(dev.reconfigure_diff(other).ok);
  EXPECT_EQ(dev.design_name(), "blinky2");
  ASSERT_NE(dev.sim(), nullptr);
  EXPECT_EQ(dev.sim()->peek_u64("q"), 0u);
}

TEST(FpgaDevice, SelfReconfigureRepairsOnlyItsOwnRegion) {
  FpgaDevice dev("fpga0", orca_3t125());
  Bitstream bs = Bitstream::from_design(small_design());
  bs.region_sigs = make_region_signatures("blinky", dev.region_count());

  sim::FaultPlan plan;
  // param picks the upset frame: 40 % 32 = region 8.
  plan.inject(sim::FaultKind::kSeuConfig, "fpga/fpga0", 1, /*param=*/40);
  sim::FaultInjector inj(plan);
  dev.set_fault_injector(&inj);
  dev.configure(bs);
  ASSERT_TRUE(dev.draw_config_upset());
  EXPECT_EQ(dev.upset_region(), 8);

  // Reloading a different frame leaves the upset pending…
  EXPECT_TRUE(dev.self_reconfigure_region(3).ok);
  EXPECT_TRUE(dev.upset_pending());
  // …reloading the pinned frame repairs it.
  EXPECT_TRUE(dev.self_reconfigure_region(8).ok);
  EXPECT_FALSE(dev.upset_pending());
  EXPECT_EQ(dev.upset_region(), -1);
  EXPECT_EQ(dev.self_reconfigs(), 2u);
}

}  // namespace
}  // namespace atlantis::hw
