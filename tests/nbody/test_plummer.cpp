#include "nbody/plummer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "nbody/integrator.hpp"
#include "util/status.hpp"

namespace atlantis::nbody {
namespace {

TEST(Plummer, DeterministicAndSized) {
  const ParticleSet a = make_plummer(500, 1);
  const ParticleSet b = make_plummer(500, 1);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].pos.x, b[i].pos.x);
    EXPECT_DOUBLE_EQ(a[i].vel.z, b[i].vel.z);
  }
  EXPECT_THROW(make_plummer(0), util::Error);
}

TEST(Plummer, UnitTotalMass) {
  const ParticleSet p = make_plummer(1000);
  double mass = 0.0;
  for (const Particle& q : p) mass += q.mass;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(Plummer, CenterOfMassAtRest) {
  const ParticleSet p = make_plummer(2000);
  Vec3d com{}, cov{};
  for (const Particle& q : p) {
    com += q.pos * q.mass;
    cov += q.vel * q.mass;
  }
  EXPECT_NEAR(com.norm(), 0.0, 1e-9);
  EXPECT_NEAR(cov.norm(), 0.0, 1e-9);
}

TEST(Plummer, RadiiFollowTheProfile) {
  // Half-mass radius of a Plummer sphere is ~1.3 scale radii; our
  // truncated sampling keeps the median radius near 1.
  ParticleSet p = make_plummer(5000);
  std::vector<double> radii;
  radii.reserve(p.size());
  for (const Particle& q : p) radii.push_back(q.pos.norm());
  std::nth_element(radii.begin(), radii.begin() + radii.size() / 2,
                   radii.end());
  const double median = radii[radii.size() / 2];
  EXPECT_GT(median, 0.5);
  EXPECT_LT(median, 2.0);
}

TEST(Plummer, BoundSystem) {
  // Total energy must be negative (bound cluster) and the virial ratio
  // -2K/U should be order one.
  const ParticleSet p = make_plummer(800);
  const double e = total_energy(p, 0.01);
  EXPECT_LT(e, 0.0);
  double kinetic = 0.0;
  for (const Particle& q : p) kinetic += 0.5 * q.mass * q.vel.dot(q.vel);
  const double potential = e - kinetic;
  const double virial = -2.0 * kinetic / potential;
  EXPECT_GT(virial, 0.3);
  EXPECT_LT(virial, 1.2);
}

TEST(Plummer, VelocitiesBelowEscapeSpeed) {
  const ParticleSet p = make_plummer(2000);
  for (const Particle& q : p) {
    const double r = q.pos.norm();
    const double vesc = std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    // Small slack for the centre-of-mass velocity correction.
    EXPECT_LE(q.vel.norm(), vesc * 1.05 + 0.02);
  }
}

}  // namespace
}  // namespace atlantis::nbody
