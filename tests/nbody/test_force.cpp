#include "nbody/force.hpp"

#include <gtest/gtest.h>

#include "nbody/plummer.hpp"

namespace atlantis::nbody {
namespace {

TEST(ForceReference, TwoBodyInverseSquare) {
  ParticleSet p(2);
  p[0].pos = {0, 0, 0};
  p[1].pos = {2, 0, 0};
  p[0].mass = 1.0;
  p[1].mass = 3.0;
  const auto acc = accel_reference(p, 0.0);
  // a0 = G*m1/r^2 toward +x.
  EXPECT_NEAR(acc[0].x, 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(acc[1].x, -1.0 / 4.0, 1e-12);
  EXPECT_NEAR(acc[0].y, 0.0, 1e-15);
}

TEST(ForceReference, MomentumIsConserved) {
  const ParticleSet p = make_plummer(200);
  const auto acc = accel_reference(p, 0.05);
  Vec3d net{};
  for (std::size_t i = 0; i < p.size(); ++i) {
    net += acc[i] * p[i].mass;
  }
  EXPECT_NEAR(net.norm(), 0.0, 1e-10);
}

TEST(ForceReference, SofteningBoundsCloseEncounters) {
  ParticleSet p(2);
  p[0].pos = {0, 0, 0};
  p[1].pos = {1e-8, 0, 0};
  const auto soft = accel_reference(p, 0.1);
  EXPECT_LT(soft[0].norm(), 200.0);  // ~m/eps^2
}

TEST(ForcePipeline, Float32TracksReferenceClosely) {
  const ParticleSet p = make_plummer(150);
  const auto ref = accel_reference(p, 0.05);
  ForcePipelineConfig cfg;
  cfg.format = util::kFloat32;
  const ForcePipelineResult r = accel_pipeline(p, cfg);
  const util::Accumulator err = accel_error(ref, r.accel);
  EXPECT_LT(err.mean(), 1e-5);
  EXPECT_LT(err.max(), 1e-3);
}

TEST(ForcePipeline, PrecisionLadder) {
  // The §3.3 story: 18-bit arithmetic (the 1995 pipelines) is coarse;
  // wider formats converge monotonically to the double reference.
  const ParticleSet p = make_plummer(100);
  const auto ref = accel_reference(p, 0.05);
  double prev_err = 1e9;
  for (const auto& fmt : {util::kFloat18, util::kFloat24, util::kFloat32}) {
    ForcePipelineConfig cfg;
    cfg.format = fmt;
    const util::Accumulator err =
        accel_error(ref, accel_pipeline(p, cfg).accel);
    EXPECT_LT(err.mean(), prev_err);
    prev_err = err.mean();
  }
  // 18-bit is still usable for collisionless dynamics: percent level.
  ForcePipelineConfig cfg18;
  cfg18.format = util::kFloat18;
  const util::Accumulator err18 =
      accel_error(ref, accel_pipeline(p, cfg18).accel);
  EXPECT_LT(err18.mean(), 0.05);
}

TEST(ForcePipeline, PairAndCycleAccounting) {
  const ParticleSet p = make_plummer(64);
  ForcePipelineConfig cfg;
  cfg.pipeline_depth = 40;
  cfg.pipelines = 1;
  const ForcePipelineResult r = accel_pipeline(p, cfg);
  EXPECT_EQ(r.pairs, 64u * 63u);
  EXPECT_EQ(r.cycles, r.pairs + 64u * 40u);
  EXPECT_GT(r.time, 0);
  EXPECT_GT(r.mflops(), 0.0);
}

TEST(ForcePipeline, ParallelPipelinesScaleThroughput) {
  // Large enough that the per-particle drain does not mask the scaling.
  const ParticleSet p = make_plummer(256);
  ForcePipelineConfig one;
  ForcePipelineConfig four;
  four.pipelines = 4;
  const auto r1 = accel_pipeline(p, one);
  const auto r4 = accel_pipeline(p, four);
  EXPECT_LT(r4.cycles, r1.cycles);
  EXPECT_GT(r4.pairs_per_second(), 2.0 * r1.pairs_per_second());
}

TEST(ForcePipeline, BeatsThe1995Results) {
  // §3.3 footnote: 1995 results were ~10 MFLOP (18 bit) per chip. A
  // 25 MHz pair pipeline at 20 FLOP/pair is an order of magnitude more.
  const ParticleSet p = make_plummer(96);
  ForcePipelineConfig cfg;
  cfg.format = util::kFloat18;
  cfg.clock_mhz = 25.0;
  const ForcePipelineResult r = accel_pipeline(p, cfg);
  EXPECT_GT(r.mflops(), 100.0);
}

TEST(ForcePipeline, ConfigValidation) {
  const ParticleSet p = make_plummer(8);
  ForcePipelineConfig cfg;
  cfg.pipelines = 0;
  EXPECT_THROW(accel_pipeline(p, cfg), util::Error);
}

TEST(ForceError, SizeMismatchThrows) {
  EXPECT_THROW(accel_error({{1, 0, 0}}, {}), util::Error);
}

}  // namespace
}  // namespace atlantis::nbody
