#include "nbody/integrator.hpp"

#include <gtest/gtest.h>

#include "nbody/force.hpp"
#include "nbody/plummer.hpp"

namespace atlantis::nbody {
namespace {

constexpr double kSoftening = 0.05;

ForceEngine reference_engine() {
  return [](const ParticleSet& p) { return accel_reference(p, kSoftening); };
}

TEST(Integrator, TwoBodyCircularOrbitStaysCircular) {
  // Equal masses on a circular orbit: radius must be preserved.
  ParticleSet p(2);
  p[0].mass = p[1].mass = 0.5;
  p[0].pos = {-1, 0, 0};
  p[1].pos = {1, 0, 0};
  // v for circular orbit of the reduced problem: a = G m / (2r)^2 = v^2/r.
  const double v = std::sqrt(0.5 / 4.0);
  p[0].vel = {0, -v, 0};
  p[1].vel = {0, v, 0};
  ForceEngine engine = [](const ParticleSet& q) {
    return accel_reference(q, 0.0);
  };
  for (int s = 0; s < 2000; ++s) {
    leapfrog_step(p, 0.01, engine);
  }
  EXPECT_NEAR((p[0].pos - p[1].pos).norm(), 2.0, 0.05);
}

TEST(Integrator, EnergyDriftIsSmall) {
  ParticleSet p = make_plummer(100);
  const double drift =
      integrate(p, 0.005, 100, reference_engine(), kSoftening);
  EXPECT_LT(drift, 1e-3);
}

TEST(Integrator, PipelineEngineConservesEnergyToo) {
  // Running the reduced-precision hardware engine inside the integrator:
  // the end-to-end workflow of the astronomy application.
  ParticleSet p = make_plummer(60);
  ForceEngine engine = [](const ParticleSet& q) {
    ForcePipelineConfig cfg;
    cfg.format = util::kFloat24;
    cfg.softening = kSoftening;
    return accel_pipeline(q, cfg).accel;
  };
  const double drift = integrate(p, 0.005, 30, engine, kSoftening);
  EXPECT_LT(drift, 1e-2);
}

TEST(Integrator, SmallerStepsDriftLess) {
  ParticleSet coarse = make_plummer(80, 3);
  ParticleSet fine = make_plummer(80, 3);
  const double d_coarse =
      integrate(coarse, 0.02, 50, reference_engine(), kSoftening);
  const double d_fine =
      integrate(fine, 0.005, 200, reference_engine(), kSoftening);
  EXPECT_LT(d_fine, d_coarse);
}

TEST(Integrator, EngineSizeMismatchThrows) {
  ParticleSet p = make_plummer(4);
  ForceEngine bad = [](const ParticleSet&) {
    return std::vector<Vec3d>(2);
  };
  EXPECT_THROW(leapfrog_step(p, 0.01, bad), util::Error);
}

TEST(Energy, KineticPlusPotential) {
  ParticleSet p(2);
  p[0].mass = p[1].mass = 1.0;
  p[0].pos = {0, 0, 0};
  p[1].pos = {1, 0, 0};
  p[1].vel = {0, 2, 0};
  const double e = total_energy(p, 0.0);
  EXPECT_NEAR(e, 0.5 * 4.0 - 1.0, 1e-12);
}

}  // namespace
}  // namespace atlantis::nbody
