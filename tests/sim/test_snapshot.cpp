// The snapshot stream itself: framing, versioning, corruption rejection —
// and the Timeline / FaultInjector round trips built on it.
#include "sim/snapshot.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/fault.hpp"
#include "sim/timeline.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::sim {
namespace {

std::vector<std::uint8_t> one_section_stream() {
  SnapshotWriter w;
  w.begin_section("test/section");
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_f64(3.25);
  w.put_bool(true);
  w.put_string("hello snapshot");
  w.put_words({1, 2, 3, 0xFFFFFFFFFFFFFFFFull});
  w.end_section();
  return w.bytes();
}

TEST(SnapshotStream, PrimitivesRoundTrip) {
  auto r = SnapshotReader::open(one_section_stream());
  ASSERT_TRUE(r.ok()) << r.message();
  SnapshotReader reader = std::move(r.value());
  EXPECT_EQ(reader.version_major(), kSnapshotMajor);
  EXPECT_EQ(reader.version_minor(), kSnapshotMinor);
  reader.select("test/section");
  EXPECT_EQ(reader.get_u8(), 0xAB);
  EXPECT_EQ(reader.get_u16(), 0xBEEF);
  EXPECT_EQ(reader.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.get_i64(), -42);
  EXPECT_DOUBLE_EQ(reader.get_f64(), 3.25);
  EXPECT_TRUE(reader.get_bool());
  EXPECT_EQ(reader.get_string(), "hello snapshot");
  const std::vector<std::uint64_t> words = reader.get_words();
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[3], 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(SnapshotStream, MultipleSectionsSelectByTag) {
  SnapshotWriter w;
  w.begin_section("alpha");
  w.put_u32(1);
  w.end_section();
  w.begin_section("beta");
  w.put_u32(2);
  w.end_section();
  auto r = SnapshotReader::open(w.bytes());
  ASSERT_TRUE(r.ok());
  SnapshotReader reader = std::move(r.value());
  EXPECT_TRUE(reader.has_section("alpha"));
  EXPECT_TRUE(reader.has_section("beta"));
  EXPECT_FALSE(reader.has_section("gamma"));
  ASSERT_EQ(reader.section_tags(),
            (std::vector<std::string>{"alpha", "beta"}));
  reader.select("beta");
  EXPECT_EQ(reader.get_u32(), 2u);
  reader.select("alpha");  // selection may go backwards
  EXPECT_EQ(reader.get_u32(), 1u);
  EXPECT_FALSE(reader.try_select("gamma"));
  EXPECT_THROW(reader.select("gamma"), util::StateError);
}

TEST(SnapshotStream, HeaderOnlyStreamIsValid) {
  SnapshotWriter w;
  auto r = SnapshotReader::open(w.bytes());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().section_tags().empty());
}

TEST(SnapshotStream, RejectsForeignMajorVersion) {
  std::vector<std::uint8_t> bytes = one_section_stream();
  // Header: u32 magic | u16 major (offset 4, little-endian) | u16 minor.
  bytes[4] = static_cast<std::uint8_t>((kSnapshotMajor + 1) & 0xFF);
  auto r = SnapshotReader::open(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), util::ErrorCode::kSnapshotVersion);
}

TEST(SnapshotStream, SkipsUnknownSectionsOnMinorBump) {
  SnapshotWriter w;
  w.begin_section("known");
  w.put_u64(77);
  w.end_section();
  w.begin_section("future/added-in-minor-bump");
  w.put_string("a reader of minor 0 has never heard of this");
  w.end_section();
  std::vector<std::uint8_t> bytes = w.bytes();
  bytes[6] = static_cast<std::uint8_t>((kSnapshotMinor + 3) & 0xFF);
  auto r = SnapshotReader::open(bytes);
  ASSERT_TRUE(r.ok()) << "minor bumps must stay readable";
  SnapshotReader reader = std::move(r.value());
  EXPECT_EQ(reader.version_minor(), kSnapshotMinor + 3);
  reader.select("known");
  EXPECT_EQ(reader.get_u64(), 77u);
  // The unknown section is retained (and CRC-checked), just never used.
  EXPECT_TRUE(reader.has_section("future/added-in-minor-bump"));
}

TEST(SnapshotStream, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = one_section_stream();
  bytes[0] ^= 0xFF;
  auto r = SnapshotReader::open(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), util::ErrorCode::kSnapshotCorrupt);
}

TEST(SnapshotStream, RejectsTruncation) {
  const std::vector<std::uint8_t> bytes = one_section_stream();
  // Any proper prefix must be rejected, wherever the cut lands.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, std::size_t{11}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(keep));
    auto r = SnapshotReader::open(cut);
    ASSERT_FALSE(r.ok()) << "accepted a " << keep << "-byte prefix";
    EXPECT_EQ(r.error(), util::ErrorCode::kSnapshotCorrupt);
  }
}

TEST(SnapshotStream, RejectsPayloadCorruption) {
  const std::vector<std::uint8_t> good = one_section_stream();
  // Flip one bit in every byte position after the header; every flip must
  // be caught (frame fields break parsing, payload bytes break the CRC,
  // CRC bytes mismatch the payload).
  for (std::size_t i = 12; i < good.size(); ++i) {
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= 0x01;
    auto r = SnapshotReader::open(bad);
    EXPECT_FALSE(r.ok()) << "accepted corruption at byte " << i;
  }
}

TEST(SnapshotStream, SectionOverreadThrows) {
  SnapshotWriter w;
  w.begin_section("small");
  w.put_u8(1);
  w.end_section();
  auto r = SnapshotReader::open(w.bytes());
  ASSERT_TRUE(r.ok());
  SnapshotReader reader = std::move(r.value());
  reader.select("small");
  EXPECT_EQ(reader.get_u8(), 1);
  EXPECT_THROW(reader.get_u64(), util::Error);
}

TEST(SnapshotStream, WordCountOverflowIsRejected) {
  // A CRC-valid section whose word count promises more data than the
  // section holds must throw, not wrap the size computation.
  SnapshotWriter w;
  w.begin_section("lying");
  w.put_u64(0xFFFFFFFFFFFFFFFFull);  // "word count"
  w.end_section();
  auto r = SnapshotReader::open(w.bytes());
  ASSERT_TRUE(r.ok());
  SnapshotReader reader = std::move(r.value());
  reader.select("lying");
  EXPECT_THROW(reader.get_words(), util::Error);
}

// --- Timeline ----------------------------------------------------------

struct TwinTimelines {
  Timeline a;
  Timeline b;
  ResourceId pci_a, pci_b;
  TrackId t0_a, t0_b;

  TwinTimelines() {
    pci_a = a.add_resource("cpci");
    pci_b = b.add_resource("cpci");
    t0_a = a.add_track("driver0");
    t0_b = b.add_track("driver0");
  }
};

TEST(TimelineSnapshot, RoundTripAndContinuedGrantsMatch) {
  TwinTimelines tw;
  for (int i = 0; i < 20; ++i) {
    tw.a.post(tw.t0_a, TxnKind::kPciDma, "dma", tw.pci_a, i * 10, 25, 4096);
  }
  tw.a.record_fault(tw.pci_a);
  tw.a.record_retry(tw.pci_a, 777);

  SnapshotWriter w;
  tw.a.save_state(w);
  auto r = SnapshotReader::open(w.bytes());
  ASSERT_TRUE(r.ok()) << r.message();
  tw.b.load_state(r.value());

  EXPECT_EQ(tw.b.horizon(), tw.a.horizon());
  ASSERT_EQ(tw.b.transactions().size(), tw.a.transactions().size());
  for (std::size_t i = 0; i < tw.a.transactions().size(); ++i) {
    const Transaction& x = tw.a.transactions()[i];
    const Transaction& y = tw.b.transactions()[i];
    EXPECT_EQ(x.start, y.start);
    EXPECT_EQ(x.end, y.end);
    EXPECT_EQ(x.label, y.label);
  }
  const ResourceStats sa = tw.a.stats(tw.pci_a);
  const ResourceStats sb = tw.b.stats(tw.pci_b);
  EXPECT_EQ(sb.transactions, sa.transactions);
  EXPECT_EQ(sb.busy, sa.busy);
  EXPECT_EQ(sb.faults, 1u);
  EXPECT_EQ(sb.retry_time, 777);

  // The restored arbiter state must grant the next transaction at the
  // exact same instant — that is what makes mid-stream restore exact.
  const Transaction& na =
      tw.a.post(tw.t0_a, TxnKind::kPciDma, "next", tw.pci_a, 0, 10, 64);
  const Transaction& nb =
      tw.b.post(tw.t0_b, TxnKind::kPciDma, "next", tw.pci_b, 0, 10, 64);
  EXPECT_EQ(na.start, nb.start);
  EXPECT_EQ(na.end, nb.end);
}

TEST(TimelineSnapshot, LoadRejectsMismatchedRegistration) {
  Timeline a;
  a.add_resource("cpci");
  SnapshotWriter w;
  a.save_state(w);

  Timeline other;
  other.add_resource("not-cpci");
  auto r = SnapshotReader::open(w.bytes());
  ASSERT_TRUE(r.ok());
  EXPECT_THROW(other.load_state(r.value()), util::Error);
}

TEST(TimelineSnapshot, ResetStatsClearsFaultLedgerIdempotently) {
  Timeline t;
  const ResourceId pci = t.add_resource("cpci");
  const TrackId trk = t.add_track("drv");
  t.post(trk, TxnKind::kPciDma, "dma", pci, 0, 100, 512);
  t.record_fault(pci);
  t.record_fault(pci);
  t.record_retry(pci, 999);
  ASSERT_EQ(t.stats(pci).faults, 2u);

  const util::Picoseconds horizon = t.horizon();
  t.reset_stats();
  EXPECT_EQ(t.stats(pci).faults, 0u);
  EXPECT_EQ(t.stats(pci).retries, 0u);
  EXPECT_EQ(t.stats(pci).retry_time, 0);
  // Scheduling state is untouched; a second reset is a no-op.
  EXPECT_EQ(t.horizon(), horizon);
  EXPECT_EQ(t.stats(pci).transactions, 1u);
  t.reset_stats();
  EXPECT_EQ(t.stats(pci).faults, 0u);
  EXPECT_EQ(t.stats(pci).transactions, 1u);
}

// --- FaultInjector -----------------------------------------------------

FaultPlan busy_plan() {
  FaultPlan plan;
  plan.seed = 20260808;
  plan.with_rate(FaultKind::kDmaStall, 0.15)
      .with_rate(FaultKind::kSlinkError, 0.08)
      .with_rate(FaultKind::kSeuMemory, 0.05);
  plan.inject(FaultKind::kConfigCrc, "fpga/acb0/fpga0", 3);
  return plan;
}

std::vector<bool> draw_tail(FaultInjector& inj, int n) {
  std::vector<bool> hits;
  for (int i = 0; i < n; ++i) {
    hits.push_back(inj.draw(FaultKind::kDmaStall, "pci/acb0").has_value());
    hits.push_back(inj.draw(FaultKind::kSlinkError, "slink/a").has_value());
    hits.push_back(
        inj.draw(FaultKind::kSeuMemory, "mem/acb0/m0").has_value());
    hits.push_back(
        inj.draw(FaultKind::kConfigCrc, "fpga/acb0/fpga0").has_value());
  }
  return hits;
}

TEST(FaultSnapshot, RestoredInjectorReplaysTheSameFaultTail) {
  FaultInjector a(busy_plan());
  draw_tail(a, 25);  // advance mid-stream

  SnapshotWriter w;
  a.save_state(w);
  FaultInjector b(busy_plan());
  draw_tail(b, 7);  // twin is deliberately out of sync before the load
  auto r = SnapshotReader::open(w.bytes());
  ASSERT_TRUE(r.ok()) << r.message();
  b.load_state(r.value());

  EXPECT_EQ(b.injected_total(), a.injected_total());
  EXPECT_EQ(b.log(), a.log());
  // The tail after the restore point is the tail the original produces.
  EXPECT_EQ(draw_tail(b, 40), draw_tail(a, 40));
  EXPECT_EQ(b.log(), a.log());
}

TEST(FaultSnapshot, ResetIsGenesisLoadAndIdempotent) {
  FaultInjector inj(busy_plan());
  FaultInjector fresh(busy_plan());
  const std::vector<bool> first = draw_tail(inj, 30);
  EXPECT_GT(inj.injected_total(), 0u);

  inj.reset();
  EXPECT_EQ(inj.injected_total(), 0u);
  EXPECT_TRUE(inj.log().empty());
  inj.reset();  // idempotent: a second reset changes nothing
  EXPECT_EQ(inj.injected_total(), 0u);

  // Replay after reset is bit-identical to the first run and to a
  // freshly constructed injector.
  EXPECT_EQ(draw_tail(inj, 30), first);
  EXPECT_EQ(draw_tail(fresh, 30), first);
}

TEST(FaultSnapshot, LoadRestoresPlanAndScheduledFaults) {
  FaultInjector a(busy_plan());
  draw_tail(a, 2);
  SnapshotWriter w;
  a.save_state(w);

  FaultPlan other;  // different plan; the load replaces it wholesale
  other.seed = 1;
  FaultInjector b(other);
  auto r = SnapshotReader::open(w.bytes());
  ASSERT_TRUE(r.ok());
  b.load_state(r.value());
  EXPECT_EQ(b.plan().seed, busy_plan().seed);
  EXPECT_EQ(b.plan().rate(FaultKind::kDmaStall), 0.15);
  ASSERT_EQ(b.plan().scheduled.size(), 1u);
  EXPECT_EQ(b.plan().scheduled[0].site, "fpga/acb0/fpga0");
  EXPECT_EQ(draw_tail(b, 10), draw_tail(a, 10));
}

}  // namespace
}  // namespace atlantis::sim
