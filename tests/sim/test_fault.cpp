#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace atlantis::sim {
namespace {

TEST(FaultPlan, EmptyPlanNeverFires) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  FaultInjector inj(plan);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.draw(FaultKind::kDmaStall, "pci/acb0").has_value());
  }
  EXPECT_EQ(inj.injected_total(), 0u);
  EXPECT_EQ(inj.opportunities(FaultKind::kDmaStall, "pci/acb0"), 1000u);
  EXPECT_TRUE(inj.log().empty());
}

TEST(FaultPlan, RateOneAlwaysFires) {
  FaultPlan plan;
  plan.with_rate(FaultKind::kSlinkError, 1.0);
  EXPECT_FALSE(plan.empty());
  FaultInjector inj(plan);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(inj.draw(FaultKind::kSlinkError, "slink/x").has_value());
  }
  EXPECT_EQ(inj.injected(FaultKind::kSlinkError), 32u);
  EXPECT_EQ(inj.injected_total(), 32u);
}

TEST(FaultPlan, KindNamesAreStable) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kDmaStall), "dma_stall");
  EXPECT_STREQ(fault_kind_name(FaultKind::kBoardDropout), "board_dropout");
  EXPECT_STREQ(fault_kind_name(FaultKind::kSeuConfig), "seu_config");
}

TEST(FaultInjector, SameSeedSamePlanReplaysIdentically) {
  FaultPlan plan;
  plan.seed = 99;
  plan.with_rate(FaultKind::kDmaAbort, 0.25)
      .with_rate(FaultKind::kSlinkError, 0.1);
  FaultInjector a(plan);
  FaultInjector b(plan);
  std::vector<bool> hits_a, hits_b;
  for (int i = 0; i < 500; ++i) {
    hits_a.push_back(a.draw(FaultKind::kDmaAbort, "pci/acb0").has_value());
    hits_a.push_back(a.draw(FaultKind::kSlinkError, "slink/l").has_value());
  }
  for (int i = 0; i < 500; ++i) {
    hits_b.push_back(b.draw(FaultKind::kDmaAbort, "pci/acb0").has_value());
    hits_b.push_back(b.draw(FaultKind::kSlinkError, "slink/l").has_value());
  }
  EXPECT_EQ(hits_a, hits_b);
  EXPECT_EQ(a.log(), b.log());
  EXPECT_GT(a.injected_total(), 0u);  // 0.25 over 500 draws must fire
}

TEST(FaultInjector, ResetRewindsToConstructionState) {
  FaultPlan plan;
  plan.seed = 7;
  plan.with_rate(FaultKind::kSeuMemory, 0.3);
  FaultInjector inj(plan);
  std::vector<std::uint64_t> params_first;
  for (int i = 0; i < 200; ++i) {
    if (const auto hit = inj.draw(FaultKind::kSeuMemory, "sram/m0")) {
      params_first.push_back(hit->param);
    }
  }
  const auto log_first = inj.log();
  inj.reset();
  EXPECT_EQ(inj.injected_total(), 0u);
  EXPECT_EQ(inj.opportunities(FaultKind::kSeuMemory, "sram/m0"), 0u);
  std::vector<std::uint64_t> params_second;
  for (int i = 0; i < 200; ++i) {
    if (const auto hit = inj.draw(FaultKind::kSeuMemory, "sram/m0")) {
      params_second.push_back(hit->param);
    }
  }
  EXPECT_EQ(params_first, params_second);
  EXPECT_EQ(log_first, inj.log());
}

TEST(FaultInjector, SiteStreamsAreIndependent) {
  // The draw sequence at one site must not depend on how opportunities
  // at other sites interleave with it — that is what makes replay
  // independent of scheduling order across boards.
  FaultPlan plan;
  plan.seed = 1234;
  plan.with_rate(FaultKind::kSlinkError, 0.2);
  FaultInjector solo(plan);
  std::vector<bool> solo_hits;
  for (int i = 0; i < 100; ++i) {
    solo_hits.push_back(
        solo.draw(FaultKind::kSlinkError, "slink/a").has_value());
  }
  FaultInjector mixed(plan);
  std::vector<bool> mixed_hits;
  for (int i = 0; i < 100; ++i) {
    // Interleave draws at an unrelated site and an unrelated kind.
    mixed.draw(FaultKind::kSlinkError, "slink/b");
    mixed.draw(FaultKind::kDmaStall, "pci/acb0");
    mixed_hits.push_back(
        mixed.draw(FaultKind::kSlinkError, "slink/a").has_value());
  }
  EXPECT_EQ(solo_hits, mixed_hits);
}

TEST(FaultInjector, ScheduledFaultFiresOnExactOpportunity) {
  FaultPlan plan;
  plan.inject(FaultKind::kConfigCrc, "fpga/acb0/fpga0", 3, 0xABCD);
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.draw(FaultKind::kConfigCrc, "fpga/acb0/fpga0"));
  EXPECT_FALSE(inj.draw(FaultKind::kConfigCrc, "fpga/acb0/fpga0"));
  const auto hit = inj.draw(FaultKind::kConfigCrc, "fpga/acb0/fpga0");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->param, 0xABCDu);
  EXPECT_FALSE(inj.draw(FaultKind::kConfigCrc, "fpga/acb0/fpga0"));
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].opportunity, 3u);
  EXPECT_EQ(inj.log()[0].site, "fpga/acb0/fpga0");
}

TEST(FaultInjector, ScheduledFaultIgnoresOtherSites) {
  FaultPlan plan;
  plan.inject(FaultKind::kBoardDropout, "board/acb1");
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.draw(FaultKind::kBoardDropout, "board/acb0"));
  EXPECT_TRUE(inj.draw(FaultKind::kBoardDropout, "board/acb1"));
}

TEST(RetryPolicy, BackoffIsCappedExponential) {
  RetryPolicy policy;
  policy.initial_backoff = 10 * util::kMicrosecond;
  policy.multiplier = 2.0;
  policy.max_backoff = 50 * util::kMicrosecond;
  EXPECT_EQ(policy.backoff(1), 10 * util::kMicrosecond);
  EXPECT_EQ(policy.backoff(2), 20 * util::kMicrosecond);
  EXPECT_EQ(policy.backoff(3), 40 * util::kMicrosecond);
  EXPECT_EQ(policy.backoff(4), 50 * util::kMicrosecond);  // capped
  EXPECT_EQ(policy.backoff(10), 50 * util::kMicrosecond);
}

}  // namespace
}  // namespace atlantis::sim
