#include "sim/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace atlantis::sim {
namespace {

TEST(Timeline, UncontendedStartsExactlyAtNotBefore) {
  Timeline tl;
  const ResourceId bus = tl.add_resource("bus");
  const TrackId t = tl.add_track("actor");
  const Transaction& a = tl.post(t, TxnKind::kPciDma, "a", bus, 100, 50);
  EXPECT_EQ(a.start, 100);
  EXPECT_EQ(a.end, 150);
  EXPECT_EQ(a.queue_delay(), 0);
  // Sequential chaining end-to-start stays exact: this is what makes the
  // driver's cursor bit-identical to the old scalar ledger.
  const Transaction& b = tl.post(t, TxnKind::kPciDma, "b", bus, a.end, 30);
  EXPECT_EQ(b.start, 150);
  EXPECT_EQ(b.end, 180);
  EXPECT_EQ(tl.horizon(), 180);
}

TEST(Timeline, ContentionQueuesFifo) {
  Timeline tl;
  const ResourceId bus = tl.add_resource("bus");
  const TrackId t0 = tl.add_track("board0");
  const TrackId t1 = tl.add_track("board1");
  const Transaction& a = tl.post(t0, TxnKind::kPciDma, "a", bus, 0, 100);
  const Transaction& b = tl.post(t1, TxnKind::kPciDma, "b", bus, 0, 100);
  EXPECT_EQ(a.start, 0);
  EXPECT_EQ(b.start, 100);  // second requester waits for the segment
  EXPECT_EQ(b.queue_delay(), 100);
  EXPECT_EQ(tl.horizon(), 200);
  const ResourceStats s = tl.stats(bus);
  EXPECT_EQ(s.transactions, 2u);
  EXPECT_EQ(s.busy, 200);
  EXPECT_EQ(s.queue_delay, 100);
}

TEST(Timeline, MultiChannelResourceServesConcurrently) {
  Timeline tl;
  const ResourceId banks = tl.add_resource("sdram", 2);
  const TrackId t = tl.add_track("actor");
  const Transaction& a = tl.post(t, TxnKind::kSdramBurst, "a", banks, 0, 100);
  const Transaction& b = tl.post(t, TxnKind::kSdramBurst, "b", banks, 0, 100);
  const Transaction& c = tl.post(t, TxnKind::kSdramBurst, "c", banks, 0, 100);
  EXPECT_EQ(a.start, 0);
  EXPECT_EQ(b.start, 0);    // second bank
  EXPECT_EQ(c.start, 100);  // both banks busy; earliest-free grant
  EXPECT_EQ(tl.horizon(), 200);
}

TEST(Timeline, ResourcelessTransactionNeverQueues) {
  Timeline tl;
  const TrackId t = tl.add_track("actor");
  const Transaction& a =
      tl.post(t, TxnKind::kReconfig, "configure", ResourceId{}, 42, 10);
  EXPECT_EQ(a.start, 42);
  EXPECT_EQ(a.end, 52);
  EXPECT_EQ(a.queue_delay(), 0);
}

TEST(Timeline, OverlapJoinsAtMaxNotSum) {
  // The async-DMA pattern: bus transfer and compute posted at the same
  // cursor overlap; the join is the max of the ends.
  Timeline tl;
  const ResourceId bus = tl.add_resource("bus");
  const ResourceId design = tl.add_resource("design");
  const TrackId t = tl.add_track("driver");
  const Transaction& dma = tl.post(t, TxnKind::kPciDma, "in", bus, 0, 80);
  const Transaction& scan =
      tl.post(t, TxnKind::kCompute, "scan", design, 0, 100);
  const util::Picoseconds join = std::max(dma.end, scan.end);
  EXPECT_EQ(join, 100);
  EXPECT_LT(join, dma.duration() + scan.duration());
  EXPECT_EQ(tl.track_horizon(t), 100);
}

TEST(Timeline, StatsAccumulateBytesAndUtilization) {
  Timeline tl;
  const ResourceId bus = tl.add_resource("bus");
  const TrackId t = tl.add_track("actor");
  tl.post(t, TxnKind::kPciDma, "a", bus, 0, 250, 1000);
  tl.post(t, TxnKind::kPciDma, "b", bus, 250, 750, 3000);
  const ResourceStats s = tl.stats(bus);
  EXPECT_EQ(s.bytes, 4000u);
  EXPECT_EQ(s.first_start, 0);
  EXPECT_EQ(s.last_end, 1000);
  EXPECT_DOUBLE_EQ(s.utilization(tl.horizon()), 1.0);
}

TEST(Timeline, ReconfigTransactionsCarryRegionCounts) {
  Timeline tl;
  const TrackId t = tl.add_track("switcher");
  const Transaction& full =
      tl.post(t, TxnKind::kReconfig, "full load", ResourceId{}, 0, 100);
  EXPECT_EQ(full.regions, 0u);  // monolithic load: no region count
  const Transaction& diff = tl.post(t, TxnKind::kReconfig, "diff load",
                                    ResourceId{}, 100, 10, /*bytes=*/512,
                                    /*regions=*/4);
  EXPECT_EQ(diff.regions, 4u);
  EXPECT_EQ(tl.txn(diff.id).regions, 4u);  // survives in the ledger
}

TEST(Timeline, RejectsBadPosts) {
  Timeline tl;
  const ResourceId bus = tl.add_resource("bus");
  const TrackId t = tl.add_track("actor");
  EXPECT_THROW(tl.post(TrackId{}, TxnKind::kOther, "x", bus, 0, 1),
               util::Error);
  EXPECT_THROW(tl.post(t, TxnKind::kOther, "x", ResourceId{7}, 0, 1),
               util::Error);
  EXPECT_THROW(tl.post(t, TxnKind::kOther, "x", bus, -1, 1), util::Error);
  EXPECT_THROW(tl.add_resource("zero", 0), util::Error);
}

// --- Chrome-trace schema ---------------------------------------------------

/// Builds a small contended schedule and returns its exported trace.
std::string sample_trace(Timeline& tl) {
  const ResourceId bus = tl.add_resource("crate/cpci");
  const ResourceId design = tl.add_resource("acb0/design");
  const TrackId d0 = tl.add_track("drv/acb0");
  const TrackId d1 = tl.add_track("drv/acb1");
  tl.post(d0, TxnKind::kPciDma, "dma a", bus, 0, 100, 4096);
  tl.post(d1, TxnKind::kPciDma, "dma b", bus, 0, 100, 4096);
  tl.post(d0, TxnKind::kCompute, "scan", design, 100, 300);
  tl.post(d1, TxnKind::kReconfig, "configure", ResourceId{}, 0, 50);
  std::ostringstream out;
  tl.export_chrome_trace(out);
  return out.str();
}

TEST(ChromeTrace, ParsesAndHasCataloguedPhases) {
  Timeline tl;
  const util::JsonValue doc = util::json_parse(sample_trace(tl));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const util::JsonArray& events = doc.at("traceEvents").as_array();
  // Every metadata and complete event is well formed; categories come
  // from the transaction-kind catalogue.
  const std::set<std::string> catalogue{
      "pci_dma", "target_access", "aab_channel", "slink_stream",
      "sdram_burst", "sram_burst", "reconfig", "compute", "host", "backoff",
      "queue_wait", "other"};
  int complete = 0, meta = 0;
  for (const util::JsonValue& e : events) {
    const std::string& ph = e.at("ph").as_string();
    ASSERT_TRUE(ph == "X" || ph == "M") << "unexpected phase " << ph;
    if (ph == "M") {
      ++meta;
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
      EXPECT_FALSE(e.at("args").at("name").as_string().empty());
    } else {
      ++complete;
      EXPECT_TRUE(catalogue.count(e.at("cat").as_string()))
          << "uncatalogued category " << e.at("cat").as_string();
      EXPECT_GE(e.at("ts").as_number(), 0.0);
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      EXPECT_GE(e.at("args").at("bytes").as_number(), 0.0);
    }
  }
  // One thread_name per resource and per track; one X per transaction.
  EXPECT_EQ(meta, tl.resource_count() + tl.track_count());
  EXPECT_EQ(complete, static_cast<int>(tl.transactions().size()));
}

TEST(ChromeTrace, TimestampsMonotonicPerTid) {
  Timeline tl;
  const util::JsonValue doc = util::json_parse(sample_trace(tl));
  std::map<int, double> last_ts;
  for (const util::JsonValue& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X") continue;
    const int tid = static_cast<int>(e.at("tid").as_number());
    const double ts = e.at("ts").as_number();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "track " << tid << " goes backwards";
    }
    last_ts[tid] = ts;
  }
  EXPECT_FALSE(last_ts.empty());
}

TEST(ChromeTrace, TrackIdsAreStable) {
  // tid layout: 0..R-1 resources (named "res:..."), R..R+T-1 actors
  // ("actor:..."); resource-less transactions land on their actor's tid.
  Timeline tl;
  const util::JsonValue doc = util::json_parse(sample_trace(tl));
  std::map<int, std::string> names;
  for (const util::JsonValue& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "M") continue;
    names[static_cast<int>(e.at("tid").as_number())] =
        e.at("args").at("name").as_string();
  }
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "res:crate/cpci");
  EXPECT_EQ(names[1], "res:acb0/design");
  EXPECT_EQ(names[2], "actor:drv/acb0");
  EXPECT_EQ(names[3], "actor:drv/acb1");
  // The resource-less reconfigure is attributed to drv/acb1's tid (3).
  bool reconfig_on_actor = false;
  for (const util::JsonValue& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "X" &&
        e.at("cat").as_string() == "reconfig") {
      reconfig_on_actor = static_cast<int>(e.at("tid").as_number()) == 3;
    }
  }
  EXPECT_TRUE(reconfig_on_actor);
}

}  // namespace
}  // namespace atlantis::sim
