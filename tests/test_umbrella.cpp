// The umbrella header must compile standalone and expose the public API.
#include "atlantis.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, PublicApiIsReachable) {
  atlantis::core::AtlantisSystem sys("crate");
  sys.add_acb("acb0");
  atlantis::core::AtlantisDriver drv(sys, 0);
  EXPECT_EQ(drv.elapsed(), 0);
  EXPECT_GT(atlantis::hw::orca_3t125().gate_capacity, 0);
  atlantis::chdl::Design d("hello");
  d.output("y", d.input("a", 1));
  atlantis::chdl::Simulator sim(d);
  sim.poke("a", 1);
  EXPECT_EQ(sim.peek_u64("y"), 1u);
}
