// The composed Sobel engine vs the software reference.
#include "imgproc/sobel_core.hpp"

#include <gtest/gtest.h>

#include "chdl/hostif.hpp"
#include "chdl/sim.hpp"
#include "hw/fpga.hpp"
#include "imgproc/filters.hpp"
#include "util/rng.hpp"

namespace atlantis::imgproc {
namespace {

Gray8 random_image(int w, int h, std::uint64_t seed) {
  Gray8 img(w, h);
  util::Rng rng(seed);
  for (auto& px : img.data()) {
    px = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return img;
}

Gray8 pad_replicate(const Gray8& img) {
  Gray8 out(img.width() + 2, img.height() + 2);
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      out(x, y) = img.clamped(x - 1, y - 1);
    }
  }
  return out;
}

/// Streams the padded image; returns the aligned interior output or
/// nullopt if no alignment matches (same technique as the conv tests).
std::optional<Gray8> run_sobel_engine(const Gray8& img) {
  const Gray8 padded = pad_replicate(img);
  chdl::Design d("sobel");
  build_sobel_core(d, padded.width());
  chdl::Simulator sim(d);
  chdl::HostInterface host(sim);
  host.write(0x00, 0);
  std::vector<std::uint8_t> outputs;
  for (int y = 0; y < padded.height(); ++y) {
    for (int x = 0; x < padded.width(); ++x) {
      host.write(0x01, padded(x, y));
      outputs.push_back(static_cast<std::uint8_t>(host.read(0x02)));
    }
  }
  for (int i = 0; i < 4; ++i) {
    host.write(0x01, 0);
    outputs.push_back(static_cast<std::uint8_t>(host.read(0x02)));
  }
  const Gray8 ref = sobel_magnitude(img);
  const int w = padded.width();
  for (int offset = 0; offset < 4 * w; ++offset) {
    bool match = true;
    for (int y = 0; y < img.height() && match; ++y) {
      for (int x = 0; x < img.width() && match; ++x) {
        const std::size_t idx =
            static_cast<std::size_t>((y + 1) * w + (x + 1)) + offset;
        if (idx >= outputs.size() || outputs[idx] != ref(x, y)) match = false;
      }
    }
    if (match) {
      Gray8 out(img.width(), img.height());
      for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
          out(x, y) = outputs[static_cast<std::size_t>((y + 1) * w + (x + 1)) +
                              offset];
        }
      }
      return out;
    }
  }
  return std::nullopt;
}

TEST(SobelCore, MatchesReferenceOnRandomImage) {
  const Gray8 img = random_image(12, 8, 23);
  const auto hw = run_sobel_engine(img);
  ASSERT_TRUE(hw.has_value()) << "no latency alignment matched";
  EXPECT_EQ(*hw, sobel_magnitude(img));
}

TEST(SobelCore, MatchesReferenceOnEdges) {
  Gray8 img(10, 8, 0);
  for (int y = 0; y < 8; ++y) {
    for (int x = 5; x < 10; ++x) img(x, y) = 200;
  }
  const auto hw = run_sobel_engine(img);
  ASSERT_TRUE(hw.has_value());
  EXPECT_EQ(*hw, sobel_magnitude(img));
}

TEST(SobelCore, EdgeCounterMatchesThreshold) {
  chdl::Design d("sobel");
  build_sobel_core(d, 16);
  chdl::Simulator sim(d);
  chdl::HostInterface host(sim);
  host.write(0x00, 0);
  host.write(0x05, 100);  // threshold
  // Stream two rows of flat field then a bright row: edges appear.
  util::Rng rng(5);
  std::uint64_t manual = 0;
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 16; ++x) {
      const std::uint8_t px = (y >= 6) ? 220 : 20;
      host.write(0x01, px);
      if (host.read(0x02) >= 100) {
        // The counter samples the combinational magnitude as the window
        // advances; mirror its accounting via the output register delta.
      }
    }
  }
  const std::uint64_t counted = host.read(0x04);
  EXPECT_GT(counted, 0u);
  // Manual recount from streamed outputs is fiddly (pipeline offsets);
  // instead verify monotonicity: raising the threshold cannot find more.
  host.write(0x00, 0);
  host.write(0x05, 255);
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 16; ++x) {
      host.write(0x01, (y >= 6) ? 220 : 20);
    }
  }
  EXPECT_LE(host.read(0x04), counted);
  (void)manual;
}

TEST(SobelCore, FitsTheOrcaBudget) {
  chdl::Design d("sobel");
  build_sobel_core(d, 512);
  hw::FpgaDevice orca("orca", hw::orca_3t125());
  EXPECT_NO_THROW(orca.configure(hw::Bitstream::from_design(d)));
}

TEST(SobelCore, FlatFieldProducesNoEdges) {
  chdl::Design d("sobel");
  build_sobel_core(d, 16);
  chdl::Simulator sim(d);
  chdl::HostInterface host(sim);
  host.write(0x00, 0);
  host.write(0x05, 1);  // any nonzero magnitude counts
  for (int i = 0; i < 16 * 8; ++i) host.write(0x01, 123);
  EXPECT_EQ(host.read(0x04), 0u);
}

}  // namespace
}  // namespace atlantis::imgproc
