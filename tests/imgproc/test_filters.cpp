#include "imgproc/filters.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace atlantis::imgproc {
namespace {

Gray8 random_image(int w, int h, std::uint64_t seed) {
  Gray8 img(w, h);
  util::Rng rng(seed);
  for (auto& px : img.data()) {
    px = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return img;
}

TEST(Filters, BoxBlurOfConstantIsAlmostConstant) {
  Gray8 img(16, 16, 80);
  const Gray8 out = convolve3x3(img, Kernel3x3::box_blur());
  for (const std::uint8_t px : out.data()) {
    EXPECT_EQ(px, 90);  // 9 * 80 / 8 = 90 (sum >> 3)
  }
}

TEST(Filters, GaussianPreservesConstant) {
  Gray8 img(16, 16, 100);
  const Gray8 out = convolve3x3(img, Kernel3x3::gaussian());
  // Kernel sums to 16, shift 4: exact preservation.
  for (const std::uint8_t px : out.data()) EXPECT_EQ(px, 100);
}

TEST(Filters, ImpulseResponseIsTheKernel) {
  Gray8 img(7, 7, 0);
  img(3, 3) = 255;
  const Kernel3x3 k = Kernel3x3::gaussian();
  const Gray8 out = convolve3x3(img, k);
  // Output at (2,2)..(4,4) is the flipped kernel scaled by 255 >> 4.
  int idx = 0;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      // Convolution here is correlation (kernels are symmetric anyway).
      const int expected = (255 * k.k[static_cast<std::size_t>(idx++)]) >> 4;
      EXPECT_EQ(out(3 - dx, 3 - dy), std::min(expected, 255));
    }
  }
}

TEST(Filters, SharpenClampsNegativeLobes) {
  Gray8 img(8, 8, 0);
  img(4, 4) = 255;
  const Gray8 out = convolve3x3(img, Kernel3x3::sharpen());
  // Neighbours of the impulse go negative -> clamp to 0.
  EXPECT_EQ(out(3, 4), 0);
  EXPECT_EQ(out(4, 3), 0);
  // Centre: 8*255 >> 2 = 510 -> clamps to 255.
  EXPECT_EQ(out(4, 4), 255);
}

TEST(Filters, SobelFlatFieldIsZero) {
  Gray8 img(16, 16, 123);
  const Gray8 out = sobel_magnitude(img);
  for (const std::uint8_t px : out.data()) EXPECT_EQ(px, 0);
}

TEST(Filters, SobelDetectsVerticalEdge) {
  Gray8 img(16, 16, 0);
  for (int y = 0; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) img(x, y) = 200;
  }
  const Gray8 out = sobel_magnitude(img);
  // Strong response on the edge columns, none far away.
  EXPECT_EQ(out(7, 8), 255);  // gradient 4*200 clamps
  EXPECT_EQ(out(8, 8), 255);
  EXPECT_EQ(out(2, 8), 0);
  EXPECT_EQ(out(13, 8), 0);
}

TEST(Filters, MedianRemovesSaltAndPepper) {
  Gray8 img(16, 16, 100);
  img(5, 5) = 255;  // salt
  img(9, 9) = 0;    // pepper
  const Gray8 out = median3x3(img);
  EXPECT_EQ(out(5, 5), 100);
  EXPECT_EQ(out(9, 9), 100);
}

TEST(Filters, MedianPreservesEdges) {
  Gray8 img(16, 16, 0);
  for (int y = 0; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) img(x, y) = 200;
  }
  const Gray8 out = median3x3(img);
  EXPECT_EQ(out(4, 8), 0);
  EXPECT_EQ(out(12, 8), 200);
  EXPECT_EQ(out(7, 8), 0);   // majority of the window is dark
  EXPECT_EQ(out(8, 8), 200); // majority bright
}

TEST(Filters, ThresholdBinarizes) {
  Gray8 img(4, 1);
  img(0, 0) = 10;
  img(1, 0) = 127;
  img(2, 0) = 128;
  img(3, 0) = 255;
  const Gray8 out = threshold(img, 128);
  EXPECT_EQ(out(0, 0), 0);
  EXPECT_EQ(out(1, 0), 0);
  EXPECT_EQ(out(2, 0), 255);
  EXPECT_EQ(out(3, 0), 255);
}

TEST(Filters, EdgeClampingMatchesManualComputation) {
  // Corner pixel: the window reads the clamped border.
  Gray8 img = random_image(5, 5, 7);
  const Kernel3x3 k = Kernel3x3::box_blur();
  const Gray8 out = convolve3x3(img, k);
  std::int32_t acc = 0;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      acc += img.clamped(0 + dx, 0 + dy);
    }
  }
  EXPECT_EQ(out(0, 0), static_cast<std::uint8_t>(
                           std::clamp(acc >> 3, 0, 255)));
}

TEST(Filters, OpCountsArePositive) {
  EXPECT_GT(convolve_ops_per_pixel(), 0.0);
  EXPECT_GT(sobel_ops_per_pixel(), convolve_ops_per_pixel());
  EXPECT_GT(median_ops_per_pixel(), 0.0);
}

// Parameterized: every stock kernel maps a constant field to a constant.
class KernelSweep : public ::testing::TestWithParam<int> {};

TEST_P(KernelSweep, ConstantInConstantOut) {
  const Kernel3x3 kernels[] = {Kernel3x3::box_blur(), Kernel3x3::sharpen(),
                               Kernel3x3::gaussian(), Kernel3x3::sobel_x(),
                               Kernel3x3::sobel_y()};
  const Kernel3x3& k = kernels[GetParam()];
  Gray8 img(9, 9, 64);
  const Gray8 out = convolve3x3(img, k);
  const std::uint8_t first = out(4, 4);
  for (int y = 1; y < 8; ++y) {
    for (int x = 1; x < 8; ++x) {
      EXPECT_EQ(out(x, y), first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweep, ::testing::Range(0, 5));

}  // namespace
}  // namespace atlantis::imgproc
