#include "imgproc/hwmodel.hpp"

#include <gtest/gtest.h>

namespace atlantis::imgproc {
namespace {

TEST(ImgHw, OnePixelPerClock) {
  ImgHwConfig cfg;
  cfg.clock_mhz = 40.0;
  const ImgHwResult r = filter_atlantis(512, 512, cfg);
  // 262144 pixels + priming at 25 ns each ~ 6.57 ms.
  EXPECT_NEAR(util::ps_to_ms(r.compute_time), 6.57, 0.05);
}

TEST(ImgHw, ChainedFiltersCostProportionally) {
  ImgHwConfig one;
  ImgHwConfig three;
  three.chained_filters = 3;
  const auto r1 = filter_atlantis(256, 256, one);
  const auto r3 = filter_atlantis(256, 256, three);
  EXPECT_EQ(r3.compute_cycles, 3 * r1.compute_cycles);
}

TEST(ImgHw, DriverAddsDmaBothWays) {
  core::AtlantisSystem sys("crate");
  core::AtlantisDriver drv(sys, sys.add_acb("acb0"));
  const ImgHwResult r = filter_atlantis(512, 512, ImgHwConfig{}, &drv);
  EXPECT_GT(r.io_time, 0);
  EXPECT_EQ(r.total_time, r.compute_time + r.io_time);
  EXPECT_EQ(drv.board().pci().total_bytes(), 2ull * 512 * 512);
}

TEST(ImgHw, FpgaBeatsHostOnConvolution) {
  // The generic 2-D filtering speedup story: one pixel per 25 ns clock
  // vs ~30 ops per pixel in software.
  const ImgHwResult hw = filter_atlantis(512, 512, ImgHwConfig{});
  const auto host = filter_host_time(512, 512, convolve_ops_per_pixel(),
                                     hw::pentium2_300());
  EXPECT_GT(static_cast<double>(host) / static_cast<double>(hw.compute_time),
            4.0);
}

TEST(ImgHw, Validation) {
  EXPECT_THROW(filter_atlantis(0, 10, ImgHwConfig{}), util::Error);
  ImgHwConfig cfg;
  cfg.chained_filters = 0;
  EXPECT_THROW(filter_atlantis(8, 8, cfg), util::Error);
}

}  // namespace
}  // namespace atlantis::imgproc
