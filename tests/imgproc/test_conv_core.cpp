// Gate-level check of the streaming convolution engine against the
// software reference, driven by the application through the host port.
#include "imgproc/conv_core.hpp"

#include <gtest/gtest.h>

#include "chdl/hostif.hpp"
#include "chdl/sim.hpp"
#include "chdl/stats.hpp"
#include "hw/fpga.hpp"
#include "util/rng.hpp"

namespace atlantis::imgproc {
namespace {

Gray8 random_image(int w, int h, std::uint64_t seed) {
  Gray8 img(w, h);
  util::Rng rng(seed);
  for (auto& px : img.data()) {
    px = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return img;
}

/// Edge-replicates `img` by one pixel on every side.
Gray8 pad_replicate(const Gray8& img) {
  Gray8 out(img.width() + 2, img.height() + 2);
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      out(x, y) = img.clamped(x - 1, y - 1);
    }
  }
  return out;
}

/// Streams the padded image through the engine and recovers the interior
/// outputs by latency alignment: the engine's registered result for a
/// window centred at padded position (x, y) appears when the pixel at
/// (x+1, y+1) has been pushed and one more cycle has elapsed.
Gray8 run_engine(const Gray8& img, const Kernel3x3& kernel) {
  const Gray8 padded = pad_replicate(img);
  chdl::Design d("conv");
  build_conv_core(d, padded.width(), kernel);
  chdl::Simulator sim(d);
  chdl::HostInterface host(sim);
  host.write(0x00, 0);  // reset stream state

  std::vector<std::uint8_t> outputs;
  for (int y = 0; y < padded.height(); ++y) {
    for (int x = 0; x < padded.width(); ++x) {
      host.write(0x01, padded(x, y));
      outputs.push_back(static_cast<std::uint8_t>(host.read(0x02)));
    }
  }
  // Flush the pipeline tail.
  for (int i = 0; i < 4; ++i) {
    host.write(0x01, 0);
    outputs.push_back(static_cast<std::uint8_t>(host.read(0x02)));
  }

  // The output sampled after pushing padded pixel (x, y) corresponds to
  // the window centred at padded (x-1, y-1) (one line-buffer read delay
  // plus the output register). Search the exact scalar offset once,
  // then extract the interior.
  const Gray8 ref = convolve3x3(img, kernel);
  const int w = padded.width();
  for (int offset = 0; offset < 4 * w; ++offset) {
    bool match = true;
    for (int y = 0; y < img.height() && match; ++y) {
      for (int x = 0; x < img.width() && match; ++x) {
        // Index of the push of padded pixel aligned with center (x,y).
        const std::size_t idx =
            static_cast<std::size_t>((y + 1) * w + (x + 1)) + offset;
        if (idx >= outputs.size() || outputs[idx] != ref(x, y)) {
          match = false;
        }
      }
    }
    if (match) {
      Gray8 out(img.width(), img.height());
      for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
          out(x, y) = outputs[static_cast<std::size_t>((y + 1) * w + (x + 1)) +
                              offset];
        }
      }
      return out;
    }
  }
  ADD_FAILURE() << "no latency alignment reproduces the reference";
  return Gray8(img.width(), img.height());
}

TEST(ConvCore, GaussianMatchesReference) {
  const Gray8 img = random_image(12, 8, 11);
  const Gray8 hw = run_engine(img, Kernel3x3::gaussian());
  EXPECT_EQ(hw, convolve3x3(img, Kernel3x3::gaussian()));
}

TEST(ConvCore, BoxBlurMatchesReference) {
  const Gray8 img = random_image(10, 6, 13);
  EXPECT_EQ(run_engine(img, Kernel3x3::box_blur()),
            convolve3x3(img, Kernel3x3::box_blur()));
}

TEST(ConvCore, SharpenWithNegativeCoefficientsMatches) {
  // Exercises the two's-complement MAC and both clamp directions.
  const Gray8 img = random_image(10, 6, 17);
  EXPECT_EQ(run_engine(img, Kernel3x3::sharpen()),
            convolve3x3(img, Kernel3x3::sharpen()));
}

TEST(ConvCore, SobelXMatches) {
  const Gray8 img = random_image(9, 5, 19);
  EXPECT_EQ(run_engine(img, Kernel3x3::sobel_x()),
            convolve3x3(img, Kernel3x3::sobel_x()));
}

TEST(ConvCore, PixelCounterTracksPushes) {
  chdl::Design d("conv");
  build_conv_core(d, 16, Kernel3x3::gaussian());
  chdl::Simulator sim(d);
  chdl::HostInterface host(sim);
  for (int i = 0; i < 37; ++i) host.write(0x01, 5);
  EXPECT_EQ(host.read(0x03), 37u);
  host.write(0x00, 0);
  EXPECT_EQ(host.read(0x03), 0u);
}

TEST(ConvCore, FitsInOneOrca) {
  chdl::Design d("conv");
  build_conv_core(d, 256, Kernel3x3::gaussian());
  hw::FpgaDevice dev("orca", hw::orca_3t125());
  EXPECT_NO_THROW(dev.configure(hw::Bitstream::from_design(d)));
}

TEST(ConvCore, WidthValidation) {
  chdl::Design d("conv");
  EXPECT_THROW(build_conv_core(d, 2, Kernel3x3::gaussian()), util::Error);
}

}  // namespace
}  // namespace atlantis::imgproc
