#include "chdl/export.hpp"

#include <gtest/gtest.h>

#include "chdl/builder.hpp"

namespace atlantis::chdl {
namespace {

Design make_sample() {
  Design d("sample");
  const Wire a = d.input("a", 8);
  const Wire b = d.input("b", 8);
  const Wire sum = d.add(a, b);
  d.output("q", d.reg("acc", sum));
  d.add_rom("lut", {BitVec(4, 1), BitVec(4, 2)});
  return d;
}

TEST(Export, NetlistContainsEveryComponent) {
  const Design d = make_sample();
  const std::string text = export_netlist(d);
  EXPECT_NE(text.find("design sample"), std::string::npos);
  EXPECT_NE(text.find("input()"), std::string::npos);
  EXPECT_NE(text.find("add(%"), std::string::npos);
  EXPECT_NE(text.find("reg(%"), std::string::npos);
  EXPECT_NE(text.find("\"acc\""), std::string::npos);
  EXPECT_NE(text.find("@clk"), std::string::npos);
  EXPECT_NE(text.find("rom lut : 2 x 4"), std::string::npos);
}

TEST(Export, NetlistIsDeterministic) {
  const Design d = make_sample();
  EXPECT_EQ(export_netlist(d), export_netlist(d));
}

TEST(Export, ConstEmbedsValue) {
  Design d("c");
  d.output("y", d.constant(BitVec::from_binary("1010")));
  EXPECT_NE(export_netlist(d).find("const(0b1010)"), std::string::npos);
}

TEST(Export, SliceAndShiftShowParameters) {
  Design d("s");
  const Wire a = d.input("a", 16);
  d.output("s", d.slice(a, 4, 8));
  d.output("l", d.shl(a, 3));
  const std::string text = export_netlist(d);
  EXPECT_NE(text.find("lo=4"), std::string::npos);
  EXPECT_NE(text.find("n=3"), std::string::npos);
}

TEST(Export, DotHasNodesAndEdges) {
  const Design d = make_sample();
  const std::string dot = export_dot(d);
  EXPECT_NE(dot.find("digraph \"sample\""), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // the register
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);  // ports
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("label=\"8\""), std::string::npos);    // bus width
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Export, KindNamesCoverAllKinds) {
  // Spot check a few; the exporter would print "?" for gaps.
  EXPECT_STREQ(comp_kind_name(CompKind::kMuxN), "muxn");
  EXPECT_STREQ(comp_kind_name(CompKind::kReduceXor), "rxor");
  EXPECT_STREQ(comp_kind_name(CompKind::kRamWrite), "ram_write");
}

TEST(Export, GeneratedDesignSnapshotIsStable) {
  // A regression guard for the builder: the exported structure of a
  // known generator must not silently change shape.
  Design d("cnt");
  const Wire en = d.input("en", 1);
  d.output("q", counter(d, "c", 4, en));
  const std::string text = export_netlist(d);
  // One register, one adder, one constant, the ports.
  EXPECT_NE(text.find("reg("), std::string::npos);
  EXPECT_NE(text.find("add("), std::string::npos);
  EXPECT_EQ(text.find("mux("), std::string::npos);  // plain counter: no mux
}

}  // namespace
}  // namespace atlantis::chdl
