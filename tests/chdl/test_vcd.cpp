#include "chdl/vcd.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "chdl/builder.hpp"

namespace atlantis::chdl {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Vcd, WritesHeaderAndChanges) {
  Design d("wave");
  const Wire en = d.input("en", 1);
  d.output("q", counter(d, "cnt", 4, en));
  Simulator sim(d);
  const std::string path = ::testing::TempDir() + "/wave.vcd";
  {
    VcdWriter vcd(sim, path, 25);
    sim.poke("en", 1);
    sim.run(5);
    vcd.close();
  }
  const std::string text = slurp(path);
  EXPECT_NE(text.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1"), std::string::npos);   // en
  EXPECT_NE(text.find("$var wire 4"), std::string::npos);   // q / cnt
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#25"), std::string::npos);  // first edge at 25 ns
  // Counter value 5 = b0101 appears.
  EXPECT_NE(text.find("b0101"), std::string::npos);
}

TEST(Vcd, NoChangeNoTimestamp) {
  Design d("quiet");
  const Wire a = d.input("a", 1);
  d.output("y", a);
  Simulator sim(d);
  const std::string path = ::testing::TempDir() + "/quiet.vcd";
  {
    VcdWriter vcd(sim, path, 10);
    sim.run(3);  // nothing toggles
    vcd.close();
  }
  const std::string text = slurp(path);
  EXPECT_EQ(text.find("#10"), std::string::npos);
  EXPECT_EQ(text.find("#20"), std::string::npos);
}

TEST(Vcd, SanitizesHierarchicalNames) {
  Design d("hier");
  {
    Design::Scope scope(d, "u_core");
    d.output("q", d.reg("state", d.input("a", 1)));
  }
  Simulator sim(d);
  const std::string path = ::testing::TempDir() + "/hier.vcd";
  {
    VcdWriter vcd(sim, path);
    vcd.close();
  }
  EXPECT_NE(slurp(path).find("u_core.state"), std::string::npos);
}

}  // namespace
}  // namespace atlantis::chdl
