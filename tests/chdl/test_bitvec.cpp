#include "chdl/bitvec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace atlantis::chdl {
namespace {

TEST(BitVec, ConstructionAndWidth) {
  BitVec v(8, 0xAB);
  EXPECT_EQ(v.width(), 8);
  EXPECT_EQ(v.to_u64(), 0xABu);
  EXPECT_THROW(BitVec(0), util::Error);
}

TEST(BitVec, ValueIsMaskedToWidth) {
  BitVec v(4, 0xFF);
  EXPECT_EQ(v.to_u64(), 0xFu);
}

TEST(BitVec, BitAccess) {
  BitVec v(8, 0b10100101);
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(7));
  v.set_bit(1, true);
  EXPECT_EQ(v.to_u64(), 0b10100111u);
  EXPECT_THROW(v.bit(8), util::Error);
}

TEST(BitVec, FromBinaryMsbFirst) {
  const BitVec v = BitVec::from_binary("1010");
  EXPECT_EQ(v.width(), 4);
  EXPECT_EQ(v.to_u64(), 10u);
  EXPECT_EQ(v.to_binary(), "1010");
  EXPECT_THROW(BitVec::from_binary("10x0"), util::Error);
  EXPECT_THROW(BitVec::from_binary(""), util::Error);
}

TEST(BitVec, OnesAndPopcount) {
  const BitVec v = BitVec::ones(100);
  EXPECT_EQ(v.popcount(), 100);
  EXPECT_TRUE(v.any());
  EXPECT_FALSE(BitVec(100).any());
}

TEST(BitVec, WideVectorsAcrossWordBoundaries) {
  BitVec v(176);
  v.set_bit(0, true);
  v.set_bit(63, true);
  v.set_bit(64, true);
  v.set_bit(175, true);
  EXPECT_EQ(v.popcount(), 4);
  EXPECT_TRUE(v.bit(64));
  EXPECT_TRUE(v.bit(175));
  EXPECT_FALSE(v.bit(100));
}

TEST(BitVec, SliceAndConcatRoundtrip) {
  const BitVec v(16, 0xBEEF);
  const BitVec hi = v.slice(8, 8);
  const BitVec lo = v.slice(0, 8);
  EXPECT_EQ(hi.to_u64(), 0xBEu);
  EXPECT_EQ(lo.to_u64(), 0xEFu);
  EXPECT_EQ(BitVec::concat(hi, lo), v);
  EXPECT_THROW(v.slice(10, 8), util::Error);
}

TEST(BitVec, ResizeExtendsAndTruncates) {
  const BitVec v(8, 0xFF);
  EXPECT_EQ(v.resize(12).to_u64(), 0xFFu);
  EXPECT_EQ(v.resize(4).to_u64(), 0xFu);
}

TEST(BitVec, LogicOps) {
  const BitVec a(8, 0b11001100);
  const BitVec b(8, 0b10101010);
  EXPECT_EQ((a & b).to_u64(), 0b10001000u);
  EXPECT_EQ((a | b).to_u64(), 0b11101110u);
  EXPECT_EQ((a ^ b).to_u64(), 0b01100110u);
  EXPECT_EQ((~a).to_u64(), 0b00110011u);
  EXPECT_THROW(a & BitVec(4, 1), util::Error);
}

TEST(BitVec, ModularArithmetic) {
  const BitVec a(8, 200);
  const BitVec b(8, 100);
  EXPECT_EQ((a + b).to_u64(), (200u + 100u) & 0xFF);
  EXPECT_EQ((b - a).to_u64(), (256u + 100u - 200u) & 0xFF);
}

TEST(BitVec, WideAdditionCarriesAcrossWords) {
  BitVec a = BitVec::ones(128);
  BitVec one(128, 1);
  const BitVec sum = a + one;  // wraps to zero
  EXPECT_FALSE(sum.any());
  // 2^64 - 1 + 1 = 2^64: bit 64 set.
  BitVec low64(128, ~0ull);
  const BitVec carry = low64 + one;
  EXPECT_TRUE(carry.bit(64));
  EXPECT_EQ(carry.popcount(), 1);
}

TEST(BitVec, Shifts) {
  const BitVec v(8, 0b00001111);
  EXPECT_EQ(v.shl(2).to_u64(), 0b00111100u);
  EXPECT_EQ(v.shr(2).to_u64(), 0b00000011u);
  EXPECT_EQ(v.shl(8).to_u64(), 0u);
  EXPECT_EQ(v.shr(8).to_u64(), 0u);
}

TEST(BitVec, UnsignedComparison) {
  const BitVec a(8, 5), b(8, 9);
  EXPECT_TRUE(a.ult(b));
  EXPECT_FALSE(b.ult(a));
  EXPECT_FALSE(a.ult(a));
  BitVec wa(128), wb(128);
  wa.set_bit(100, true);
  wb.set_bit(101, true);
  EXPECT_TRUE(wa.ult(wb));
}

// Property: arithmetic at width <= 64 matches native modular arithmetic.
class BitVecArithSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitVecArithSweep, MatchesNativeModular) {
  const int width = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(width));
  const std::uint64_t mask =
      width == 64 ? ~0ull : ((1ull << width) - 1);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t x = rng.next_u64() & mask;
    const std::uint64_t y = rng.next_u64() & mask;
    const BitVec a(width, x), b(width, y);
    EXPECT_EQ((a + b).to_u64(), (x + y) & mask);
    EXPECT_EQ((a - b).to_u64(), (x - y) & mask);
    EXPECT_EQ((a & b).to_u64(), x & y);
    EXPECT_EQ((a ^ b).to_u64(), x ^ y);
    EXPECT_EQ(a.ult(b), (x < y));
    EXPECT_EQ(a == b, x == y);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecArithSweep,
                         ::testing::Values(1, 3, 8, 16, 31, 32, 33, 48, 63,
                                           64));

}  // namespace
}  // namespace atlantis::chdl
