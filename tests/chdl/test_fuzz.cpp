// Randomized netlist fuzzing: build random combinational DAGs, then
// compare the levelized Simulator against an independent recursive
// BitVec interpreter over the same component list. Any disagreement is a
// kernel bug — this is the strongest single check on the CHDL simulator.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "chdl/sim.hpp"
#include "util/rng.hpp"

namespace atlantis::chdl {
namespace {

/// Reference evaluator: memoized recursion over wire producers using
/// BitVec arithmetic only (no levelization, no flat storage).
class Interpreter {
 public:
  Interpreter(const Design& d, const std::map<std::string, BitVec>& inputs)
      : d_(d), inputs_(inputs) {
    for (std::int32_t i = 0; i < static_cast<std::int32_t>(
                                     d.components().size());
         ++i) {
      const Component& c = d.components()[static_cast<std::size_t>(i)];
      if (c.out.valid()) producer_[c.out.id] = i;
    }
  }

  BitVec eval(Wire w) {
    const auto cached = values_.find(w.id);
    if (cached != values_.end()) return cached->second;
    const Component& c =
        d_.components()[static_cast<std::size_t>(producer_.at(w.id))];
    BitVec result = eval_comp(c);
    values_[w.id] = result;
    return result;
  }

 private:
  BitVec eval_comp(const Component& c) {
    auto in = [&](std::size_t k) { return eval(c.in[k]); };
    switch (c.kind) {
      case CompKind::kInput:
        return inputs_.at(c.name);
      case CompKind::kConst:
        return c.init;
      case CompKind::kNot:
        return ~in(0);
      case CompKind::kAnd:
        return in(0) & in(1);
      case CompKind::kOr:
        return in(0) | in(1);
      case CompKind::kXor:
        return in(0) ^ in(1);
      case CompKind::kAdd:
        return in(0) + in(1);
      case CompKind::kSub:
        return in(0) - in(1);
      case CompKind::kMux:
        return in(0).bit(0) ? in(1) : in(2);
      case CompKind::kEq:
        return BitVec(1, in(0) == in(1) ? 1 : 0);
      case CompKind::kUlt:
        return BitVec(1, in(0).ult(in(1)) ? 1 : 0);
      case CompKind::kReduceOr:
        return BitVec(1, in(0).any() ? 1 : 0);
      case CompKind::kReduceXor:
        return BitVec(1, static_cast<std::uint64_t>(in(0).popcount() & 1));
      case CompKind::kSlice:
        return in(0).slice(c.a, c.out.width);
      case CompKind::kConcat: {
        BitVec acc = in(0);
        for (std::size_t k = 1; k < c.in.size(); ++k) {
          acc = BitVec::concat(acc, in(k));
        }
        return acc;
      }
      case CompKind::kShl:
        return in(0).shl(c.a);
      case CompKind::kShr:
        return in(0).shr(c.a);
      default:
        ADD_FAILURE() << "fuzz interpreter hit unsupported kind";
        return BitVec(c.out.width);
    }
  }

  const Design& d_;
  const std::map<std::string, BitVec>& inputs_;
  std::map<std::int32_t, std::int32_t> producer_;
  std::map<std::int32_t, BitVec> values_;
};

/// Builds a random combinational DAG over a few input ports.
Design random_design(util::Rng& rng, int ops) {
  Design d("fuzz");
  std::vector<Wire> pool;
  for (int i = 0; i < 4; ++i) {
    const int width = 1 + static_cast<int>(rng.next_below(90));
    pool.push_back(d.input("in" + std::to_string(i), width));
  }
  pool.push_back(d.constant(BitVec(17, 0x1ABCD)));
  auto pick = [&] {
    return pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
  };
  auto pick_pair = [&] {
    // Same-width pair: resize the second operand to the first.
    const Wire a = pick();
    const Wire b = d.resize(pick(), a.width);
    return std::make_pair(a, b);
  };
  for (int i = 0; i < ops; ++i) {
    Wire out{};
    switch (rng.next_below(12)) {
      case 0: {
        const auto [a, b] = pick_pair();
        out = d.band(a, b);
        break;
      }
      case 1: {
        const auto [a, b] = pick_pair();
        out = d.bor(a, b);
        break;
      }
      case 2: {
        const auto [a, b] = pick_pair();
        out = d.bxor(a, b);
        break;
      }
      case 3: {
        const auto [a, b] = pick_pair();
        out = d.add(a, b);
        break;
      }
      case 4: {
        const auto [a, b] = pick_pair();
        out = d.sub(a, b);
        break;
      }
      case 5: {
        const auto [a, b] = pick_pair();
        out = d.mux(d.resize(pick(), 1), a, b);
        break;
      }
      case 6: {
        const auto [a, b] = pick_pair();
        out = d.eq(a, b);
        break;
      }
      case 7: {
        const auto [a, b] = pick_pair();
        out = d.ult(a, b);
        break;
      }
      case 8: {
        const Wire a = pick();
        const int lo = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(a.width)));
        const int width = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(a.width - lo)));
        out = d.slice(a, lo, width);
        break;
      }
      case 9:
        out = d.concat({pick(), pick()});
        break;
      case 10:
        out = d.shl(pick(), static_cast<int>(rng.next_below(20)));
        break;
      default:
        out = d.bnot(pick());
        break;
    }
    if (out.width <= 256) pool.push_back(out);
  }
  // Expose a handful of final values.
  for (int i = 0; i < 6; ++i) {
    d.output("out" + std::to_string(i), pick());
  }
  return d;
}

class NetlistFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistFuzz, SimulatorMatchesInterpreter) {
  util::Rng rng(GetParam());
  const Design d = random_design(rng, 120);
  Simulator sim(d);
  for (int vector = 0; vector < 25; ++vector) {
    std::map<std::string, BitVec> inputs;
    for (const auto& [name, w] : d.inputs()) {
      BitVec v(w.width);
      for (auto& word : v.words()) word = rng.next_u64();
      v = v & BitVec::ones(w.width);
      inputs[name] = v;
      sim.poke(w, v);
    }
    Interpreter ref(d, inputs);
    for (const auto& [name, w] : d.outputs()) {
      EXPECT_EQ(sim.peek(w), ref.eval(w))
          << "output '" << name << "', vector " << vector << ", seed "
          << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u));

}  // namespace
}  // namespace atlantis::chdl
