// Randomized netlist fuzzing: build random combinational DAGs, then
// compare the levelized Simulator against an independent recursive
// BitVec interpreter over the same component list. Any disagreement is a
// kernel bug — this is the strongest single check on the CHDL simulator.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "chdl/sim.hpp"
#include "chdl/vcd.hpp"
#include "util/rng.hpp"

namespace atlantis::chdl {
namespace {

/// Reference evaluator: memoized recursion over wire producers using
/// BitVec arithmetic only (no levelization, no flat storage).
class Interpreter {
 public:
  Interpreter(const Design& d, const std::map<std::string, BitVec>& inputs)
      : d_(d), inputs_(inputs) {
    for (std::int32_t i = 0; i < static_cast<std::int32_t>(
                                     d.components().size());
         ++i) {
      const Component& c = d.components()[static_cast<std::size_t>(i)];
      if (c.out.valid()) producer_[c.out.id] = i;
    }
  }

  BitVec eval(Wire w) {
    const auto cached = values_.find(w.id);
    if (cached != values_.end()) return cached->second;
    const Component& c =
        d_.components()[static_cast<std::size_t>(producer_.at(w.id))];
    BitVec result = eval_comp(c);
    values_[w.id] = result;
    return result;
  }

 private:
  BitVec eval_comp(const Component& c) {
    auto in = [&](std::size_t k) { return eval(c.in[k]); };
    switch (c.kind) {
      case CompKind::kInput:
        return inputs_.at(c.name);
      case CompKind::kConst:
        return c.init;
      case CompKind::kNot:
        return ~in(0);
      case CompKind::kAnd:
        return in(0) & in(1);
      case CompKind::kOr:
        return in(0) | in(1);
      case CompKind::kXor:
        return in(0) ^ in(1);
      case CompKind::kAdd:
        return in(0) + in(1);
      case CompKind::kSub:
        return in(0) - in(1);
      case CompKind::kMux:
        return in(0).bit(0) ? in(1) : in(2);
      case CompKind::kEq:
        return BitVec(1, in(0) == in(1) ? 1 : 0);
      case CompKind::kUlt:
        return BitVec(1, in(0).ult(in(1)) ? 1 : 0);
      case CompKind::kReduceOr:
        return BitVec(1, in(0).any() ? 1 : 0);
      case CompKind::kReduceXor:
        return BitVec(1, static_cast<std::uint64_t>(in(0).popcount() & 1));
      case CompKind::kSlice:
        return in(0).slice(c.a, c.out.width);
      case CompKind::kConcat: {
        BitVec acc = in(0);
        for (std::size_t k = 1; k < c.in.size(); ++k) {
          acc = BitVec::concat(acc, in(k));
        }
        return acc;
      }
      case CompKind::kShl:
        return in(0).shl(c.a);
      case CompKind::kShr:
        return in(0).shr(c.a);
      default:
        ADD_FAILURE() << "fuzz interpreter hit unsupported kind";
        return BitVec(c.out.width);
    }
  }

  const Design& d_;
  const std::map<std::string, BitVec>& inputs_;
  std::map<std::int32_t, std::int32_t> producer_;
  std::map<std::int32_t, BitVec> values_;
};

/// Builds a random combinational DAG over a few input ports.
Design random_design(util::Rng& rng, int ops) {
  Design d("fuzz");
  std::vector<Wire> pool;
  for (int i = 0; i < 4; ++i) {
    const int width = 1 + static_cast<int>(rng.next_below(90));
    pool.push_back(d.input("in" + std::to_string(i), width));
  }
  pool.push_back(d.constant(BitVec(17, 0x1ABCD)));
  auto pick = [&] {
    return pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
  };
  auto pick_pair = [&] {
    // Same-width pair: resize the second operand to the first.
    const Wire a = pick();
    const Wire b = d.resize(pick(), a.width);
    return std::make_pair(a, b);
  };
  for (int i = 0; i < ops; ++i) {
    Wire out{};
    switch (rng.next_below(12)) {
      case 0: {
        const auto [a, b] = pick_pair();
        out = d.band(a, b);
        break;
      }
      case 1: {
        const auto [a, b] = pick_pair();
        out = d.bor(a, b);
        break;
      }
      case 2: {
        const auto [a, b] = pick_pair();
        out = d.bxor(a, b);
        break;
      }
      case 3: {
        const auto [a, b] = pick_pair();
        out = d.add(a, b);
        break;
      }
      case 4: {
        const auto [a, b] = pick_pair();
        out = d.sub(a, b);
        break;
      }
      case 5: {
        const auto [a, b] = pick_pair();
        out = d.mux(d.resize(pick(), 1), a, b);
        break;
      }
      case 6: {
        const auto [a, b] = pick_pair();
        out = d.eq(a, b);
        break;
      }
      case 7: {
        const auto [a, b] = pick_pair();
        out = d.ult(a, b);
        break;
      }
      case 8: {
        const Wire a = pick();
        const int lo = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(a.width)));
        const int width = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(a.width - lo)));
        out = d.slice(a, lo, width);
        break;
      }
      case 9:
        out = d.concat({pick(), pick()});
        break;
      case 10:
        out = d.shl(pick(), static_cast<int>(rng.next_below(20)));
        break;
      default:
        out = d.bnot(pick());
        break;
    }
    if (out.width <= 256) pool.push_back(out);
  }
  // Expose a handful of final values.
  for (int i = 0; i < 6; ++i) {
    d.output("out" + std::to_string(i), pick());
  }
  return d;
}

class NetlistFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistFuzz, SimulatorMatchesInterpreter) {
  util::Rng rng(GetParam());
  const Design d = random_design(rng, 120);
  Simulator sim(d);
  Simulator threaded(d, EvalMode::kThreaded);
  for (int vector = 0; vector < 25; ++vector) {
    std::map<std::string, BitVec> inputs;
    for (const auto& [name, w] : d.inputs()) {
      BitVec v(w.width);
      for (auto& word : v.words()) word = rng.next_u64();
      v = v & BitVec::ones(w.width);
      inputs[name] = v;
      sim.poke(w, v);
      threaded.poke(w, v);
    }
    Interpreter ref(d, inputs);
    for (const auto& [name, w] : d.outputs()) {
      EXPECT_EQ(sim.peek(w), ref.eval(w))
          << "output '" << name << "', vector " << vector << ", seed "
          << GetParam();
      EXPECT_EQ(threaded.peek(w), ref.eval(w))
          << "threaded output '" << name << "', vector " << vector
          << ", seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u));

// ---------------------------------------------------------------------------
// Differential mode fuzz: the event-driven worklist evaluator against the
// full-sweep reference path, over SEQUENTIAL designs (registers with
// enable/reset, feedback counters, RAM read/write ports) clocked for many
// cycles with random pokes. The two policies share storage layout but no
// evaluation code, so bit-identical results across every wire, RAM word
// and VCD byte is strong evidence the incremental dirty tracking is sound.

BitVec random_bits(util::Rng& rng, int width) {
  BitVec v(width);
  for (auto& word : v.words()) word = rng.next_u64();
  return v & BitVec::ones(width);
}

/// Random design with state: comb ops plus registers (optional
/// enable/reset, random init), feedback accumulators and one RAM.
Design random_seq_design(util::Rng& rng, int ops) {
  Design d("seqfuzz");
  std::vector<Wire> pool;
  for (int i = 0; i < 4; ++i) {
    const int width = 1 + static_cast<int>(rng.next_below(70));
    pool.push_back(d.input("in" + std::to_string(i), width));
  }
  pool.push_back(d.constant(BitVec(17, 0x1ABCD)));
  auto pick = [&] {
    return pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
  };
  auto pick_pair = [&] {
    const Wire a = pick();
    const Wire b = d.resize(pick(), a.width);
    return std::make_pair(a, b);
  };
  const int ram = d.add_ram("m", 32, 24);
  int regs = 0;
  for (int i = 0; i < ops; ++i) {
    Wire out{};
    switch (rng.next_below(16)) {
      case 0: {
        const auto [a, b] = pick_pair();
        out = d.band(a, b);
        break;
      }
      case 1: {
        const auto [a, b] = pick_pair();
        out = d.bxor(a, b);
        break;
      }
      case 2: {
        const auto [a, b] = pick_pair();
        out = d.add(a, b);
        break;
      }
      case 3: {
        const auto [a, b] = pick_pair();
        out = d.sub(a, b);
        break;
      }
      case 4: {
        const auto [a, b] = pick_pair();
        out = d.mux(d.resize(pick(), 1), a, b);
        break;
      }
      case 5: {
        const auto [a, b] = pick_pair();
        out = d.eq(a, b);
        break;
      }
      case 6: {
        const auto [a, b] = pick_pair();
        out = d.ult(a, b);
        break;
      }
      case 7: {
        const Wire a = pick();
        const int lo = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(a.width)));
        const int width = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(a.width - lo)));
        out = d.slice(a, lo, width);
        break;
      }
      case 8:
        out = d.concat({pick(), pick()});
        break;
      case 9:
        out = d.shl(pick(), static_cast<int>(rng.next_below(20)));
        break;
      case 10:
        out = d.bnot(pick());
        break;
      case 11: {  // register with random enable / reset / init
        const Wire dw = pick();
        RegOpts opts;
        if (rng.next_below(2)) opts.enable = d.resize(pick(), 1);
        if (rng.next_below(2)) opts.reset = d.resize(pick(), 1);
        opts.init = random_bits(rng, dw.width);
        out = d.reg("r" + std::to_string(regs++), dw, opts);
        break;
      }
      case 12: {  // feedback accumulator (counter-style loop)
        const int width = 1 + static_cast<int>(rng.next_below(40));
        RegOpts opts;
        if (rng.next_below(2)) opts.enable = d.resize(pick(), 1);
        const Wire q = d.reg_forward("f" + std::to_string(regs++), width,
                                     opts);
        d.reg_connect(q, d.add(q, d.resize(pick(), width)));
        out = q;
        break;
      }
      case 13: {  // synchronous RAM read, sometimes gated
        const Wire en =
            rng.next_below(2) ? d.resize(pick(), 1) : Wire{};
        out = d.ram_read(ram, d.resize(pick(), 5), en);
        break;
      }
      default: {  // RAM write port (no output wire)
        d.ram_write(ram, d.resize(pick(), 5), d.resize(pick(), 24),
                    d.resize(pick(), 1));
        break;
      }
    }
    if (out.valid() && out.width <= 256) pool.push_back(out);
  }
  for (int i = 0; i < 8; ++i) {
    d.output("out" + std::to_string(i), pick());
  }
  return d;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

class SequentialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SequentialFuzz, EventDrivenMatchesFullSweep) {
  util::Rng rng(GetParam() * 7919 + 13);
  const Design d = random_seq_design(rng, 140);

  // Five evaluation policies against one reference: the unoptimized
  // full sweep. "event" exercises the dirty worklist alone; "opted"
  // additionally runs the fold/dce/cse/fuse netlist optimizer, so this
  // test is the bit-exactness proof for every optimizer rewrite; the
  // two threaded sides cover the region superop compiler and the
  // event-driven edge tape, with and without the optimizer underneath.
  SimOptions ref_opts;
  ref_opts.mode = EvalMode::kFullSweep;
  ref_opts.optimize = false;
  SimOptions raw_opts;
  raw_opts.mode = EvalMode::kEventDriven;
  raw_opts.optimize = false;
  SimOptions opt_opts;
  opt_opts.mode = EvalMode::kEventDriven;
  opt_opts.optimize = true;
  SimOptions thr_raw_opts;
  thr_raw_opts.mode = EvalMode::kThreaded;
  thr_raw_opts.optimize = false;
  SimOptions thr_opt_opts;
  thr_opt_opts.mode = EvalMode::kThreaded;
  thr_opt_opts.optimize = true;
  Simulator full(d, ref_opts);
  Simulator event(d, raw_opts);
  Simulator opted(d, opt_opts);
  Simulator thr_raw(d, thr_raw_opts);
  Simulator thr_opt(d, thr_opt_opts);
  const std::string tag = std::to_string(GetParam());
  const std::string full_vcd =
      ::testing::TempDir() + "/fuzz_full_" + tag + ".vcd";
  const std::string event_vcd =
      ::testing::TempDir() + "/fuzz_event_" + tag + ".vcd";
  const std::string opted_vcd =
      ::testing::TempDir() + "/fuzz_opted_" + tag + ".vcd";
  const std::string thr_raw_vcd =
      ::testing::TempDir() + "/fuzz_thr_raw_" + tag + ".vcd";
  const std::string thr_opt_vcd =
      ::testing::TempDir() + "/fuzz_thr_opt_" + tag + ".vcd";
  {
    VcdWriter wf(full, full_vcd);
    VcdWriter we(event, event_vcd);
    VcdWriter wo(opted, opted_vcd);
    VcdWriter wtr(thr_raw, thr_raw_vcd);
    VcdWriter wto(thr_opt, thr_opt_vcd);
    for (int cycle = 0; cycle < 50; ++cycle) {
      // Random pokes, identical on all sides; skipping inputs some
      // cycles leaves quiescent islands for the worklist to skip.
      for (const auto& [name, w] : d.inputs()) {
        if (rng.next_below(2) == 0) continue;
        const BitVec v = random_bits(rng, w.width);
        full.poke(w, v);
        event.poke(w, v);
        opted.poke(w, v);
        thr_raw.poke(w, v);
        thr_opt.poke(w, v);
      }
      // Every wire in the design, not just the ports — including wires
      // the optimizer aliased, folded or dead-code-eliminated.
      for (std::int32_t id = 0; id < d.wire_count(); ++id) {
        const Wire w{id, d.wire_width(id)};
        ASSERT_EQ(full.peek(w), event.peek(w))
            << "wire " << id << ", cycle " << cycle << ", seed "
            << GetParam();
        ASSERT_EQ(full.peek(w), opted.peek(w))
            << "optimized wire " << id << ", cycle " << cycle << ", seed "
            << GetParam();
        ASSERT_EQ(full.peek(w), thr_raw.peek(w))
            << "threaded wire " << id << ", cycle " << cycle << ", seed "
            << GetParam();
        ASSERT_EQ(full.peek(w), thr_opt.peek(w))
            << "threaded+opt wire " << id << ", cycle " << cycle
            << ", seed " << GetParam();
      }
      full.step();
      event.step();
      opted.step();
      thr_raw.step();
      thr_opt.step();
    }
  }
  // Memory images must agree word for word.
  for (std::int64_t a = 0; a < 32; ++a) {
    EXPECT_EQ(full.read_ram(0, a), event.read_ram(0, a))
        << "RAM word " << a << ", seed " << GetParam();
    EXPECT_EQ(full.read_ram(0, a), opted.read_ram(0, a))
        << "optimized RAM word " << a << ", seed " << GetParam();
    EXPECT_EQ(full.read_ram(0, a), thr_raw.read_ram(0, a))
        << "threaded RAM word " << a << ", seed " << GetParam();
    EXPECT_EQ(full.read_ram(0, a), thr_opt.read_ram(0, a))
        << "threaded+opt RAM word " << a << ", seed " << GetParam();
  }
  // Identical samples => byte-identical waveforms.
  const std::string full_bytes = slurp(full_vcd);
  ASSERT_FALSE(full_bytes.empty());
  EXPECT_EQ(full_bytes, slurp(event_vcd)) << "seed " << GetParam();
  EXPECT_EQ(full_bytes, slurp(opted_vcd)) << "optimized seed " << GetParam();
  EXPECT_EQ(full_bytes, slurp(thr_raw_vcd)) << "threaded seed " << GetParam();
  EXPECT_EQ(full_bytes, slurp(thr_opt_vcd))
      << "threaded+opt seed " << GetParam();
  std::remove(full_vcd.c_str());
  std::remove(event_vcd.c_str());
  std::remove(opted_vcd.c_str());
  std::remove(thr_raw_vcd.c_str());
  std::remove(thr_opt_vcd.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequentialFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// Regression: registers whose enable is low (or whose reset re-asserts
// the value they already hold) must not wake the combinational cone
// behind them. This is the quiescent-logic case the TRT histogrammer
// spends most of its cycles in.
TEST(SequentialFuzz, QuiescentRegistersCostNoEvaluations) {
  Design d("quiet");
  const Wire en = d.input("en", 1);
  const Wire rst = d.input("rst", 1);
  const Wire data = d.input("d", 32);
  RegOpts opts;
  opts.enable = en;
  opts.reset = rst;
  opts.init = BitVec(32, 7);
  const Wire q = d.reg("r", data, opts);
  Wire x = q;
  for (int i = 0; i < 50; ++i) x = d.add(x, q);  // 51*q
  d.output("y", x);

  Simulator event(d, EvalMode::kEventDriven);
  Simulator full(d, EvalMode::kFullSweep);
  for (Simulator* s : {&event, &full}) {
    s->poke("d", 123);
    EXPECT_EQ(s->peek_u64("y"), 51u * 7u);
    s->reset_activity();
  }
  event.run(1000);
  full.run(1000);
  // Enable low and D stable: the event-driven core does no comb work.
  EXPECT_EQ(event.activity().comp_evals, 0u);
  EXPECT_GT(full.activity().comp_evals, 10000u);

  // Reset asserted while the register already holds its init value:
  // still no change, still free.
  event.poke("rst", 1);
  event.run(100);
  EXPECT_EQ(event.activity().comp_evals, 0u);
  EXPECT_EQ(event.peek_u64("y"), 51u * 7u);

  // Releasing reset and enabling finally moves data through.
  event.poke("rst", 0);
  event.poke("en", 1);
  event.run(1);
  EXPECT_GT(event.activity().comp_evals, 0u);
  EXPECT_EQ(event.peek_u64("y"), 51u * 123u);
  full.poke("rst", 0);
  full.poke("en", 1);
  full.run(1);
  EXPECT_EQ(full.peek_u64("y"), 51u * 123u);
}

}  // namespace
}  // namespace atlantis::chdl
