// Threaded backend: region partitioning invariants, region-output
// diffing, the set_eval_mode/reset contract, and the quiescent-cost
// bound on the real TRT core. The bit-exactness of the backend itself
// is proven by the five-way differential fuzz in test_fuzz.cpp; these
// tests pin the structural properties the executor's correctness
// argument rests on.
#include "chdl/threaded.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "chdl/builder.hpp"
#include "chdl/hostif.hpp"
#include "chdl/region.hpp"
#include "chdl/sim.hpp"
#include "chdl/verify.hpp"
#include "trt/trt_core.hpp"
#include "util/rng.hpp"

namespace atlantis::chdl {
namespace {

/// A design with enough structure to produce a non-trivial region plan:
/// shared subexpressions (multi-consumer wires force region breaks),
/// long chains (single-consumer runs fuse), registers and a RAM.
Design plan_fixture() {
  Design d("fixture");
  const Wire a = d.input("a", 16);
  const Wire b = d.input("b", 16);
  const Wire shared = d.add(a, b);  // consumed three times: its own region
  Wire chain = shared;
  for (int i = 0; i < 10; ++i) chain = d.bxor(d.add(chain, a), b);
  const Wire q = d.reg("q", d.band(shared, chain));
  const int ram = d.add_ram("m", 16, 16);
  d.ram_write(ram, d.slice(q, 0, 4), shared, d.reduce_or(chain));
  const Wire rd = d.ram_read(ram, d.slice(chain, 0, 4));
  d.output("y", d.bxor(rd, q));
  d.output("z", d.ult(shared, chain));
  return d;
}

TEST(Region, PlanIsDeterministic) {
  const Design d = plan_fixture();
  SimOptions so;
  so.mode = EvalMode::kThreaded;
  Simulator s1(d, so);
  Simulator s2(d, so);
  const RegionPlan* p1 = s1.region_plan();
  const RegionPlan* p2 = s2.region_plan();
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p1->op_order, p2->op_order);
  EXPECT_EQ(p1->out_wires, p2->out_wires);
  EXPECT_EQ(p1->op_region, p2->op_region);
  EXPECT_EQ(p1->fan_begin, p2->fan_begin);
  EXPECT_EQ(p1->fan_regions, p2->fan_regions);
  ASSERT_EQ(p1->regions.size(), p2->regions.size());
  for (std::size_t r = 0; r < p1->regions.size(); ++r) {
    EXPECT_EQ(p1->regions[r].ops_begin, p2->regions[r].ops_begin);
    EXPECT_EQ(p1->regions[r].ops_end, p2->regions[r].ops_end);
    EXPECT_EQ(p1->regions[r].level, p2->regions[r].level);
  }
}

/// The executor's correctness argument: (1) every op belongs to exactly
/// one region; (2) only a region's TAIL output ever feeds another
/// region, so executing a region straight-line with one change check at
/// its outputs is sound; (3) region levels strictly increase along
/// inter-region edges, so the level-bucketed worklist drains in one
/// pass; (4) the diffed output set covers exactly the externally
/// consumed and sequentially consumed wires.
TEST(Region, SingleEntryInvariantsHoldOnRealTape) {
  const Design d = plan_fixture();
  Simulator sim(d, SimOptions{.mode = EvalMode::kThreaded});
  const RegionGraph g = sim.region_graph();
  const RegionPlan* plan = sim.region_plan();
  ASSERT_NE(plan, nullptr);

  // (1) op_order is a permutation of the tape, each op owned once.
  ASSERT_EQ(plan->op_order.size(), static_cast<std::size_t>(g.op_count()));
  std::set<std::int32_t> seen(plan->op_order.begin(), plan->op_order.end());
  EXPECT_EQ(seen.size(), plan->op_order.size());

  std::map<std::int32_t, std::int32_t> producer;  // wire -> op
  for (std::int32_t t = 0; t < g.op_count(); ++t) {
    producer[g.out_wire[static_cast<std::size_t>(t)]] = t;
  }
  std::set<std::int32_t> external_or_seq;  // wires that must be diffed
  for (std::int32_t t = 0; t < g.op_count(); ++t) {
    const std::int32_t rt = plan->op_region[static_cast<std::size_t>(t)];
    for (std::int32_t i = g.in_begin[static_cast<std::size_t>(t)];
         i < g.in_begin[static_cast<std::size_t>(t) + 1]; ++i) {
      const std::int32_t w = g.in_wires[static_cast<std::size_t>(i)];
      const auto it = producer.find(w);
      if (it == producer.end()) continue;  // port/register/RAM input
      const std::int32_t p = it->second;
      const std::int32_t rp = plan->op_region[static_cast<std::size_t>(p)];
      if (rp == rt) {
        // Intra-region edge: the producer must execute earlier in the
        // same straight-line block.
        const Region& region = plan->regions[static_cast<std::size_t>(rp)];
        std::int32_t pos_p = -1, pos_t = -1;
        for (std::int32_t k = region.ops_begin; k < region.ops_end; ++k) {
          if (plan->op_order[static_cast<std::size_t>(k)] == p) pos_p = k;
          if (plan->op_order[static_cast<std::size_t>(k)] == t) pos_t = k;
        }
        EXPECT_GE(pos_p, region.ops_begin);
        EXPECT_LT(pos_p, pos_t) << "producer after consumer in region " << rp;
        continue;
      }
      // (2) inter-region edge: producer is its region's tail op.
      const Region& pregion = plan->regions[static_cast<std::size_t>(rp)];
      EXPECT_EQ(plan->op_order[static_cast<std::size_t>(pregion.ops_end - 1)],
                p)
          << "non-tail wire " << w << " crosses region boundary";
      // (3) levels strictly increase along the edge.
      EXPECT_LT(pregion.level,
                plan->regions[static_cast<std::size_t>(rt)].level);
      external_or_seq.insert(w);
    }
  }
  for (std::int32_t t = 0; t < g.op_count(); ++t) {
    const std::int32_t w = g.out_wire[static_cast<std::size_t>(t)];
    if (g.wire_seq_consumed[static_cast<std::size_t>(w)] != 0) {
      external_or_seq.insert(w);
    }
  }
  // (4) the diffed set is exactly the externally/sequentially consumed
  // producer outputs.
  const std::set<std::int32_t> diffed(plan->out_wires.begin(),
                                      plan->out_wires.end());
  EXPECT_EQ(diffed, external_or_seq);
}

TEST(Region, MaxRegionOpsCapsChains) {
  Design d("chain");
  Wire x = d.input("x", 32);
  const Wire one = d.input("k", 32);
  for (int i = 0; i < 100; ++i) x = d.add(x, one);
  d.output("y", x);
  SimOptions so;
  so.mode = EvalMode::kThreaded;
  so.optimize = false;
  so.region.max_region_ops = 8;
  Simulator sim(d, so);
  const RegionPlan* plan = sim.region_plan();
  ASSERT_NE(plan, nullptr);
  for (const Region& r : plan->regions) {
    EXPECT_LE(r.ops_end - r.ops_begin, 8);
  }
  sim.poke("x", 5);
  sim.poke("k", 3);
  EXPECT_EQ(sim.peek_u64("y"), (5ull + 100ull * 3ull) & 0xFFFFFFFFull);
}

// A region whose output does not change must not wake its consumers:
// the single change check at region outputs preserves the event-driven
// engine's short-circuit property at region granularity.
TEST(Threaded, RegionOutputDiffShortCircuits) {
  Design d("diamond");
  const Wire a = d.input("a", 8);
  const Wire b = d.input("b", 8);
  const Wire m = d.band(a, b);  // two consumers: a one-op region
  d.output("y1", d.bor(m, d.input("c", 8)));
  d.output("y2", d.bxor(m, d.input("e", 8)));
  SimOptions so;
  so.mode = EvalMode::kThreaded;
  so.optimize = false;
  Simulator sim(d, so);
  sim.poke("a", 0x0F);
  sim.poke("b", 0xF0);  // m = 0
  sim.peek_u64("y1");
  sim.reset_activity();
  // a changes but m stays 0: only m's own region re-executes.
  sim.poke("a", 0x07);
  sim.peek_u64("y1");
  EXPECT_EQ(sim.activity().comp_evals, 1u);
  EXPECT_EQ(sim.activity().comp_changes, 0u);
  // Now make m change: downstream regions run too.
  sim.poke("b", 0xFF);
  sim.peek_u64("y1");
  EXPECT_EQ(sim.activity().comp_evals, 4u);  // m again + its two consumers
  EXPECT_EQ(sim.peek_u64("y2"), (0x07ull & 0xFFull) ^ 0ull);
}

TEST(Threaded, DispatchFlavorMatchesBuild) {
#if defined(ATLANTIS_THREADED_FORCE_SWITCH)
  // CI's fallback builds must really exercise the switch loop.
  EXPECT_FALSE(threaded_uses_computed_goto());
#elif defined(__GNUC__) || defined(__clang__)
  EXPECT_TRUE(threaded_uses_computed_goto());
#else
  EXPECT_FALSE(threaded_uses_computed_goto());
#endif
  // Whichever dispatch this build uses, it must agree with the other
  // two backends on every wire (three-way check, threaded reference).
  const Design d = plan_fixture();
  BackendCheckOptions opts;
  opts.cycles = 200;
  const BackendCheckReport rep = check_backends(d, opts);
  EXPECT_TRUE(rep) << rep.mismatch;
}

// reset() starts a fresh measurement epoch: activity counters cleared,
// all state re-marked, results identical to a freshly built simulator.
TEST(Threaded, ResetClearsActivityAndRebuildsDirtyState) {
  const Design d = plan_fixture();
  for (const EvalMode mode :
       {EvalMode::kEventDriven, EvalMode::kThreaded, EvalMode::kFullSweep}) {
    Simulator sim(d, mode);
    sim.poke("a", 123);
    sim.poke("b", 77);
    sim.run(20);
    EXPECT_GT(sim.activity().comp_evals, 0u);
    EXPECT_GT(sim.activity().edges, 0u);
    sim.reset();
    EXPECT_EQ(sim.activity().comp_evals, 0u);
    EXPECT_EQ(sim.activity().comp_changes, 0u);
    EXPECT_EQ(sim.activity().edges, 0u);
    EXPECT_EQ(sim.cycles(), 0u);
    // Post-reset behaviour matches a fresh simulator bit for bit.
    Simulator fresh(d, mode);
    sim.poke("a", 9);
    fresh.poke("a", 9);
    sim.poke("b", 4);
    fresh.poke("b", 4);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(sim.peek_u64("y"), fresh.peek_u64("y"));
      EXPECT_EQ(sim.peek_u64("z"), fresh.peek_u64("z"));
      sim.step();
      fresh.step();
    }
  }
}

// Switching backends mid-run must rebuild dirty state (no stale values
// leak) and a same-mode switch must be a no-op.
TEST(Threaded, MidRunModeSwitchIsBitIdentical) {
  const Design d = plan_fixture();
  Simulator switching(d, EvalMode::kEventDriven);
  Simulator event(d, EvalMode::kEventDriven);
  Simulator threaded(d, EvalMode::kThreaded);
  util::Rng rng(99);
  const EvalMode schedule[] = {EvalMode::kEventDriven, EvalMode::kThreaded,
                               EvalMode::kFullSweep, EvalMode::kThreaded,
                               EvalMode::kEventDriven};
  int phase = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    if (cycle % 20 == 10) {
      // Poke while dirty, THEN switch: the rebuild must pick it up.
      switching.set_eval_mode(schedule[phase++ % 5]);
    }
    const std::uint64_t va = rng.next_u64() & 0xFFFF;
    const std::uint64_t vb = rng.next_u64() & 0xFFFF;
    for (Simulator* s : {&switching, &event, &threaded}) {
      s->poke("a", va);
      s->poke("b", vb);
    }
    for (std::int32_t id = 0; id < d.wire_count(); ++id) {
      const Wire w{id, d.wire_width(id)};
      ASSERT_EQ(switching.peek(w), event.peek(w))
          << "wire " << wire_name(d, id) << " cycle " << cycle;
      ASSERT_EQ(threaded.peek(w), event.peek(w))
          << "wire " << wire_name(d, id) << " cycle " << cycle;
    }
    switching.step();
    event.step();
    threaded.step();
  }

  // Same-mode switch: no rebuild, no extra work on the next peek.
  threaded.peek_u64("y");
  threaded.reset_activity();
  threaded.set_eval_mode(EvalMode::kThreaded);
  threaded.peek_u64("y");
  EXPECT_EQ(threaded.activity().comp_evals, 0u);
}

// The headline property behind the bench_a5 speedup: an idle TRT cycle
// costs (nearly) nothing in BOTH event and threaded mode. comp_evals
// must not regress past 1.05x of the event engine's count.
TEST(Threaded, QuiescentTrtCycleCostMatchesEventMode) {
  trt::DetectorGeometry geo;
  geo.layers = 8;
  geo.straws_per_layer = 32;
  trt::PatternBank bank(geo, 64);
  Design d("trt_quiescent");
  trt::build_trt_core(d, bank);

  const auto idle_evals = [&](EvalMode mode) {
    Simulator sim(d, mode);
    HostInterface host(sim);
    host.write(0x01, 5);  // one hit, then let the core go quiescent
    host.idle(50);
    sim.reset_activity();
    host.idle(1000);  // measured region: pure idle cycles
    return sim.activity().comp_evals;
  };
  const std::uint64_t event = idle_evals(EvalMode::kEventDriven);
  const std::uint64_t threaded = idle_evals(EvalMode::kThreaded);
  EXPECT_LE(static_cast<double>(threaded),
            1.05 * static_cast<double>(event) + 1.0)
      << "threaded idle cost " << threaded << " vs event " << event;
}

TEST(Verify, CheckBackendsReportsDivergentWireByName) {
  // A healthy design passes the default three-way check.
  Design d("ok");
  const Wire x = d.input("x", 8);
  const Wire pipe = d.reg("pipe", d.add(x, d.constant(8, 1)));
  d.output("q", d.bnot(pipe));
  const BackendCheckReport rep = check_backends(d);
  EXPECT_TRUE(rep) << rep.mismatch;
  EXPECT_EQ(rep.cycles_run, 500u);

  // wire_name resolves ports, named components and anonymous nets.
  EXPECT_EQ(wire_name(d, x.id), "input 'x'");
  EXPECT_EQ(wire_name(d, d.port("q").id), "output 'q'");
  EXPECT_EQ(wire_name(d, pipe.id), "'pipe'");
  EXPECT_EQ(wire_name(d, 999), "#999");
}

TEST(Verify, CheckBackendsPinsExplicitSides) {
  const Design d = plan_fixture();
  BackendCheckOptions opts;
  opts.cycles = 100;
  SimOptions thr_raw;
  thr_raw.mode = EvalMode::kThreaded;
  thr_raw.optimize = false;
  SimOptions thr_opt;
  thr_opt.mode = EvalMode::kThreaded;
  thr_opt.optimize = true;
  SimOptions full;
  full.mode = EvalMode::kFullSweep;
  full.optimize = false;
  opts.sides = {full, thr_raw, thr_opt};
  const BackendCheckReport rep = check_backends(d, opts);
  EXPECT_TRUE(rep) << rep.mismatch;
}

/// A combinational chain long enough to clear the kAuto threshold.
Design wide_fixture(int chain_length) {
  Design d("wide");
  const Wire a = d.input("a", 16);
  Wire acc = a;
  for (int i = 0; i < chain_length; ++i) {
    acc = d.bxor(d.add(acc, a), d.constant(16, static_cast<std::uint64_t>(i)));
  }
  d.output("y", acc);
  return d;
}

TEST(Auto, SmallTapeResolvesToEventDriven) {
  // plan_fixture compiles to a few dozen ops — far below the threshold,
  // where the event-driven engine wins (BENCH_simspeed conv workload).
  const Design d = plan_fixture();
  Simulator sim(d, SimOptions{.mode = EvalMode::kAuto});
  EXPECT_EQ(sim.eval_mode(), EvalMode::kEventDriven);
  EXPECT_EQ(sim.region_plan(), nullptr);  // no threaded engine was built
}

TEST(Auto, LargeTapeResolvesToThreaded) {
  const Design d = wide_fixture(300);  // ≥ 600 compiled ops
  Simulator sim(d, SimOptions{.mode = EvalMode::kAuto});
  EXPECT_EQ(sim.eval_mode(), EvalMode::kThreaded);
  EXPECT_NE(sim.region_plan(), nullptr);
}

TEST(Auto, ThresholdIsTunable) {
  const Design d = plan_fixture();
  SimOptions so;
  so.mode = EvalMode::kAuto;
  so.auto_threaded_min_ops = 1;  // everything is "large"
  Simulator sim(d, so);
  EXPECT_EQ(sim.eval_mode(), EvalMode::kThreaded);
}

TEST(Auto, SetEvalModeReResolves) {
  const Design d = wide_fixture(300);
  Simulator sim(d, EvalMode::kEventDriven);
  EXPECT_EQ(sim.eval_mode(), EvalMode::kEventDriven);
  sim.set_eval_mode(EvalMode::kAuto);
  EXPECT_EQ(sim.eval_mode(), EvalMode::kThreaded);  // never reports kAuto
}

TEST(Auto, MatchesPinnedBackendsBitForBit) {
  const Design d = plan_fixture();
  BackendCheckOptions opts;
  opts.cycles = 200;
  SimOptions aut;
  aut.mode = EvalMode::kAuto;
  SimOptions event;
  event.mode = EvalMode::kEventDriven;
  SimOptions thr;
  thr.mode = EvalMode::kThreaded;
  opts.sides = {aut, event, thr};
  const BackendCheckReport rep = check_backends(d, opts);
  EXPECT_TRUE(rep) << rep.mismatch;
}

}  // namespace
}  // namespace atlantis::chdl
