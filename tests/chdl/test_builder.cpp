#include "chdl/builder.hpp"

#include <gtest/gtest.h>

#include "chdl/hostif.hpp"
#include "chdl/sim.hpp"
#include "util/rng.hpp"

namespace atlantis::chdl {
namespace {

TEST(Builder, CounterCountsWithEnableAndClear) {
  Design d("cnt");
  const Wire en = d.input("en", 1);
  const Wire clr = d.input("clr", 1);
  d.output("q", counter(d, "c", 8, en, clr));
  Simulator sim(d);
  sim.poke("en", 1);
  sim.run(5);
  EXPECT_EQ(sim.peek_u64("q"), 5u);
  sim.poke("en", 0);
  sim.run(3);
  EXPECT_EQ(sim.peek_u64("q"), 5u);
  sim.poke("clr", 1);
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 0u);
}

TEST(Builder, CounterWrapsAtWidth) {
  Design d("cnt");
  d.output("q", counter(d, "c", 3));
  Simulator sim(d);
  sim.run(10);
  EXPECT_EQ(sim.peek_u64("q"), 10u % 8u);
}

TEST(Builder, AdderTreeSumsWithoutOverflow) {
  Design d("tree");
  std::vector<Wire> terms;
  std::vector<std::string> names;
  for (int i = 0; i < 9; ++i) {
    terms.push_back(d.input("t" + std::to_string(i), 8));
    names.push_back("t" + std::to_string(i));
  }
  const Wire sum = adder_tree(d, terms);
  EXPECT_GE(sum.width, 12);  // 9 * 255 needs 12 bits
  d.output("sum", sum);
  Simulator sim(d);
  util::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::uint64_t expected = 0;
    for (const auto& n : names) {
      const std::uint64_t v = rng.next_u64() & 0xFF;
      expected += v;
      sim.poke(n, v);
    }
    EXPECT_EQ(sim.peek_u64("sum"), expected);
  }
}

TEST(Builder, PopcountMatchesBuiltin) {
  Design d("pop");
  const Wire in = d.input("in", 20);
  d.output("n", popcount(d, in));
  Simulator sim(d);
  util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.next_u64() & 0xFFFFF;
    sim.poke("in", v);
    EXPECT_EQ(sim.peek_u64("n"),
              static_cast<std::uint64_t>(__builtin_popcountll(v)));
  }
}

TEST(Builder, EqConst) {
  Design d("eqc");
  const Wire in = d.input("in", 8);
  d.output("is42", eq_const(d, in, 42));
  Simulator sim(d);
  sim.poke("in", 42);
  EXPECT_EQ(sim.peek_u64("is42"), 1u);
  sim.poke("in", 43);
  EXPECT_EQ(sim.peek_u64("is42"), 0u);
}

TEST(Builder, RomFromU64) {
  Design d("rom");
  const int rom = rom_from_u64(d, "r", {5, 10, 15}, 8);
  const Wire addr = d.input("a", 2);
  d.output("q", d.ram_read(rom, addr));
  Simulator sim(d);
  sim.poke("a", 2);
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 15u);
  EXPECT_THROW(rom_from_u64(d, "bad", {1}, 65), util::Error);
}

TEST(Builder, MultiplyMatchesNativeProduct) {
  Design d("mul");
  const Wire a = d.input("a", 8);
  const Wire b = d.input("b", 9);
  const Wire p = multiply(d, a, b);
  EXPECT_EQ(p.width, 17);
  d.output("p", p);
  Simulator sim(d);
  util::Rng rng(91);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t x = rng.next_u64() & 0xFF;
    const std::uint64_t y = rng.next_u64() & 0x1FF;
    sim.poke("a", x);
    sim.poke("b", y);
    EXPECT_EQ(sim.peek_u64("p"), x * y);
  }
}

TEST(Builder, ReplicateFansOutBit) {
  Design d("rep");
  const Wire b = d.input("b", 1);
  d.output("r", replicate(d, b, 12));
  Simulator sim(d);
  sim.poke("b", 1);
  EXPECT_EQ(sim.peek_u64("r"), 0xFFFu);
  sim.poke("b", 0);
  EXPECT_EQ(sim.peek_u64("r"), 0u);
}

TEST(HostRegFile, WriteRegReadback) {
  Design d("host");
  HostRegFile hrf(d);
  const Wire r0 = hrf.write_reg("r0", 0, 32);
  d.output("r0_val", r0);
  hrf.map_read(7, d.constant(32, 0xCAFE));
  hrf.finish();
  Simulator sim(d);
  HostInterface host(sim);
  host.write(0, 0x1234);
  EXPECT_EQ(host.read(0), 0x1234u);
  EXPECT_EQ(sim.peek_u64("r0_val"), 0x1234u);
  EXPECT_EQ(host.read(7), 0xCAFEu);
  EXPECT_EQ(host.read(99), 0u);  // unmapped reads as zero
}

TEST(HostRegFile, WritesAreAddressSelective) {
  Design d("host");
  HostRegFile hrf(d);
  hrf.write_reg("a", 1, 16);
  hrf.write_reg("b", 2, 16);
  hrf.finish();
  Simulator sim(d);
  HostInterface host(sim);
  host.write(1, 111);
  host.write(2, 222);
  EXPECT_EQ(host.read(1), 111u);
  EXPECT_EQ(host.read(2), 222u);
  host.write(1, 333);
  EXPECT_EQ(host.read(1), 333u);
  EXPECT_EQ(host.read(2), 222u);
}

TEST(HostRegFile, StrobeDrivesCounter) {
  Design d("host");
  HostRegFile hrf(d);
  const Wire strobe = hrf.write_strobe(5);
  hrf.map_read(0x10, counter(d, "events", 16, strobe));
  hrf.finish();
  Simulator sim(d);
  HostInterface host(sim);
  for (int i = 0; i < 7; ++i) host.write(5, 0);
  host.write(6, 0);  // different address: no count
  EXPECT_EQ(host.read(0x10), 7u);
}

TEST(HostRegFile, DoubleMapAndDoubleFinishRejected) {
  Design d("host");
  HostRegFile hrf(d);
  hrf.map_read(3, d.constant(8, 1));
  EXPECT_THROW(hrf.map_read(3, d.constant(8, 2)), util::Error);
  hrf.finish();
  EXPECT_THROW(hrf.finish(), util::Error);
}

TEST(HostInterface, BlockTransfers) {
  Design d("host");
  HostRegFile hrf(d);
  // Accumulator register: adds every word written to address 1.
  const Wire push = hrf.write_strobe(1);
  RegOpts opts;
  opts.enable = push;
  const Wire acc = d.reg_forward("acc", 32, opts);
  d.reg_connect(acc, d.add(acc, d.resize(hrf.wdata(), 32)));
  hrf.map_read(2, acc);
  hrf.finish();
  Simulator sim(d);
  HostInterface host(sim);
  const std::vector<std::uint64_t> data = {1, 2, 3, 4, 5};
  host.write_block(1, data);
  EXPECT_EQ(host.read(2), 15u);
  const auto out = host.read_block(2, 3);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 15u);
}

TEST(HostInterface, RequiresHostPorts) {
  Design d("nohost");
  d.output("y", d.input("a", 1));
  Simulator sim(d);
  EXPECT_THROW(HostInterface{sim}, util::Error);
}

}  // namespace
}  // namespace atlantis::chdl
