// Simulator snapshot round-trips: save a live simulation mid-run,
// restore it into a twin, and demand bit-identical behaviour from then
// on — across all three evaluation backends (the snapshot carries no
// backend state, so a stream saved under one backend must restore
// under any other) and through the FpgaDevice wrapper for both FPGA
// families. The randomized cases reuse the fuzz generator idea:
// random combinational DAGs driven by random vectors, with a twin
// that never saw the save/load as the reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "chdl/builder.hpp"
#include "chdl/sim.hpp"
#include "hw/fpga.hpp"
#include "sim/snapshot.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace atlantis::chdl {
namespace {

constexpr EvalMode kModes[] = {EvalMode::kEventDriven, EvalMode::kThreaded,
                               EvalMode::kFullSweep};

/// Sequential design with every kind of live state: a counter, an
/// accumulator register and a RAM written while the clock runs.
const Design& seq_design() {
  static const Design d = [] {
    Design dd("seqsnap");
    const Wire en = dd.input("en", 1);
    const Wire din = dd.input("din", 16);
    const Wire cnt = counter(dd, "cnt", 8, en);
    const Wire acc = dd.reg_forward("acc", 16);
    dd.reg_connect(acc, dd.add(acc, din));
    const int ram = dd.add_ram("mem", 64, 16);
    const Wire addr = dd.slice(cnt, 0, 6);
    dd.ram_write(ram, addr, acc, en);
    dd.output("cnt", cnt);
    dd.output("acc", acc);
    dd.output("rd", dd.ram_read(ram, addr));
    return dd;
  }();
  return d;
}

std::vector<std::uint8_t> save_sim(const Simulator& s) {
  sim::SnapshotWriter w;
  w.begin_section("chdl/sim");
  s.save_state(w);
  w.end_section();
  return w.bytes();
}

void load_sim(Simulator& s, const std::vector<std::uint8_t>& bytes) {
  auto opened = sim::SnapshotReader::open(bytes);
  ASSERT_TRUE(opened.ok()) << opened.message();
  sim::SnapshotReader r = std::move(opened.value());
  r.select("chdl/sim");
  s.load_state(r);
}

/// Drives both simulators with the same stimulus and compares every
/// output after every step.
void run_twins(Simulator& a, Simulator& b, std::uint64_t seed, int steps) {
  util::Rng rng(seed);
  for (int i = 0; i < steps; ++i) {
    const std::uint64_t en = rng.next_below(2);
    const std::uint64_t din = rng.next_below(1u << 16);
    a.poke("en", en);
    a.poke("din", din);
    b.poke("en", en);
    b.poke("din", din);
    a.step();
    b.step();
    for (const char* port : {"cnt", "acc", "rd"}) {
      ASSERT_EQ(a.peek_u64(port), b.peek_u64(port))
          << "port " << port << " diverged at step " << i;
    }
  }
  EXPECT_EQ(a.cycles(), b.cycles());
}

class SimSnapshot : public ::testing::TestWithParam<EvalMode> {};

TEST_P(SimSnapshot, MidRunRoundTripContinuesIdentically) {
  Simulator live(seq_design(), GetParam());
  util::Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    live.poke("en", rng.next_below(2));
    live.poke("din", rng.next_below(1u << 16));
    live.step();
  }
  const std::vector<std::uint8_t> bytes = save_sim(live);

  Simulator twin(seq_design(), GetParam());
  load_sim(twin, bytes);
  EXPECT_EQ(twin.cycles(), live.cycles());
  for (const char* port : {"cnt", "acc", "rd"}) {
    EXPECT_EQ(twin.peek_u64(port), live.peek_u64(port)) << port;
  }
  // RAM contents came along, not just the visible ports.
  for (std::int64_t addr = 0; addr < 64; ++addr) {
    EXPECT_TRUE(twin.read_ram(0, addr) == live.read_ram(0, addr))
        << "ram[" << addr << "]";
  }
  run_twins(live, twin, 11, 60);
}

TEST_P(SimSnapshot, RestoresAcrossBackends) {
  // A stream saved under any backend restores under every other one:
  // the snapshot holds values only, never worklists or superops.
  Simulator live(seq_design(), GetParam());
  util::Rng rng(13);
  for (int i = 0; i < 25; ++i) {
    live.poke("en", 1);
    live.poke("din", rng.next_below(1u << 16));
    live.step();
  }
  const std::vector<std::uint8_t> bytes = save_sim(live);
  for (EvalMode other : kModes) {
    SCOPED_TRACE(static_cast<int>(other));
    Simulator twin(seq_design(), other);
    load_sim(twin, bytes);
    run_twins(live, twin, 17, 30);
    // Rewind `live` back to the checkpoint for the next backend.
    load_sim(live, bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SimSnapshot,
                         ::testing::ValuesIn(kModes));

TEST(SimSnapshotErrors, LoadRejectsDifferentDesignShape) {
  Simulator live(seq_design());
  const std::vector<std::uint8_t> bytes = save_sim(live);
  Design other("othersnap");
  other.output("q", counter(other, "c", 4, other.input("en", 1)));
  Simulator wrong(other);
  auto opened = sim::SnapshotReader::open(bytes);
  ASSERT_TRUE(opened.ok());
  sim::SnapshotReader r = std::move(opened.value());
  r.select("chdl/sim");
  EXPECT_THROW(wrong.load_state(r), util::Error);
}

// --- randomized round trips ---------------------------------------------

/// Compact random combinational DAG (same idea as test_fuzz.cpp's
/// generator, which lives in that TU's anonymous namespace).
Design random_design(util::Rng& rng, int ops) {
  Design d("snapfuzz");
  std::vector<Wire> pool;
  for (int i = 0; i < 4; ++i) {
    const int width = 1 + static_cast<int>(rng.next_below(60));
    pool.push_back(d.input("in" + std::to_string(i), width));
  }
  pool.push_back(d.constant(BitVec(17, 0x1ABCD)));
  auto pick = [&] {
    return pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
  };
  auto pick_pair = [&] {
    const Wire a = pick();
    return std::make_pair(a, d.resize(pick(), a.width));
  };
  for (int i = 0; i < ops; ++i) {
    Wire out{};
    switch (rng.next_below(8)) {
      case 0: { const auto [a, b] = pick_pair(); out = d.band(a, b); break; }
      case 1: { const auto [a, b] = pick_pair(); out = d.bxor(a, b); break; }
      case 2: { const auto [a, b] = pick_pair(); out = d.add(a, b); break; }
      case 3: { const auto [a, b] = pick_pair(); out = d.sub(a, b); break; }
      case 4: {
        const auto [a, b] = pick_pair();
        out = d.mux(d.resize(pick(), 1), a, b);
        break;
      }
      case 5: {
        const Wire a = pick();
        const int lo = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(a.width)));
        const int width = 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(a.width - lo)));
        out = d.slice(a, lo, width);
        break;
      }
      case 6: out = d.concat({pick(), pick()}); break;
      default: out = d.bnot(pick()); break;
    }
    if (out.width <= 200) pool.push_back(out);
  }
  for (int i = 0; i < 6; ++i) {
    d.output("out" + std::to_string(i), pick());
  }
  return d;
}

class SnapshotFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotFuzz, RestoredTwinMatchesUndisturbedOriginal) {
  util::Rng rng(GetParam());
  const Design d = random_design(rng, 80);
  Simulator live(d);

  auto drive = [&](Simulator& s, util::Rng& r) {
    for (const auto& [name, w] : d.inputs()) {
      BitVec v(w.width);
      for (auto& word : v.words()) word = r.next_u64();
      v = v & BitVec::ones(w.width);
      s.poke(w, v);
    }
    s.step();
  };

  util::Rng stim(GetParam() ^ 0x9E3779B97F4A7C15ull);
  for (int i = 0; i < 10; ++i) drive(live, stim);
  const std::vector<std::uint8_t> bytes = save_sim(live);

  for (EvalMode mode : kModes) {
    SCOPED_TRACE(static_cast<int>(mode));
    Simulator twin(d, mode);
    load_sim(twin, bytes);
    // Same continuation stimulus for the restored twin and the
    // undisturbed original; every output must agree on every vector.
    util::Rng cont_a(GetParam() + 1);
    util::Rng cont_b(GetParam() + 1);
    Simulator original(d);
    load_sim(original, bytes);  // rewind a fresh original to the save
    for (int i = 0; i < 10; ++i) {
      drive(original, cont_a);
      drive(twin, cont_b);
      for (const auto& [name, w] : d.outputs()) {
        ASSERT_TRUE(original.peek(w) == twin.peek(w))
            << name << " diverged on vector " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 20260808u));

}  // namespace
}  // namespace atlantis::chdl

// --- FpgaDevice round trips ----------------------------------------------

namespace atlantis::hw {
namespace {

const chdl::Design& dev_design() {
  static const chdl::Design d = [] {
    chdl::Design dd("devsnap");
    const chdl::Wire en = dd.input("en", 1);
    dd.output("q", chdl::counter(dd, "c", 12, en));
    return dd;
  }();
  return d;
}

class FpgaSnapshot : public ::testing::TestWithParam<const FpgaFamily*> {};

TEST_P(FpgaSnapshot, ConfiguredDeviceRoundTrips) {
  const FpgaFamily& family = *GetParam();
  const Bitstream bs = Bitstream::from_design(dev_design());

  FpgaDevice dev("fpga0", family);
  dev.configure(bs);
  dev.sim()->poke("en", 1);
  dev.sim()->run(37);

  sim::SnapshotWriter w;
  w.begin_section("fpga");
  dev.save_state(w);
  w.end_section();

  // Migration contract: ship the bitstream first, then the state.
  FpgaDevice twin("fpga0", family);
  twin.configure(bs);
  auto opened = sim::SnapshotReader::open(w.bytes());
  ASSERT_TRUE(opened.ok()) << opened.message();
  sim::SnapshotReader r = std::move(opened.value());
  r.select("fpga");
  twin.load_state(r);

  ASSERT_NE(twin.sim(), nullptr);
  EXPECT_EQ(twin.design_name(), "devsnap");
  EXPECT_EQ(twin.sim()->peek_u64("q"), dev.sim()->peek_u64("q"));
  EXPECT_EQ(twin.sim()->cycles(), dev.sim()->cycles());
  twin.sim()->poke("en", 1);
  dev.sim()->poke("en", 1);
  twin.sim()->run(5);
  dev.sim()->run(5);
  EXPECT_EQ(twin.sim()->peek_u64("q"), 42u);
  EXPECT_EQ(dev.sim()->peek_u64("q"), 42u);
}

TEST_P(FpgaSnapshot, LoadDemandsTheResidentDesign) {
  const FpgaFamily& family = *GetParam();
  FpgaDevice dev("fpga0", family);
  dev.configure(Bitstream::from_design(dev_design()));

  sim::SnapshotWriter w;
  w.begin_section("fpga");
  dev.save_state(w);
  w.end_section();

  auto open_at = [&] {
    auto opened = sim::SnapshotReader::open(w.bytes());
    sim::SnapshotReader r = std::move(opened.value());
    r.select("fpga");
    return r;
  };

  // Unconfigured twin: no resident design to restore into.
  FpgaDevice bare("fpga0", family);
  {
    sim::SnapshotReader r = open_at();
    EXPECT_THROW(bare.load_state(r), util::StateError);
  }
  // Twin carrying a different design.
  chdl::Design other("otherdev");
  other.output("q", chdl::counter(other, "c", 4, other.input("en", 1)));
  FpgaDevice wrong("fpga0", family);
  wrong.configure(Bitstream::from_design(other));
  {
    sim::SnapshotReader r = open_at();
    EXPECT_THROW(wrong.load_state(r), util::StateError);
  }
}

INSTANTIATE_TEST_SUITE_P(BothFamilies, FpgaSnapshot,
                         ::testing::Values(&orca_3t125(), &virtex_xcv600()));

}  // namespace
}  // namespace atlantis::hw
