#include "chdl/design.hpp"

#include <gtest/gtest.h>

namespace atlantis::chdl {
namespace {

TEST(Design, PortsAreNamedAndLookedUp) {
  Design d("top");
  const Wire a = d.input("a", 8);
  d.output("y", a);
  EXPECT_TRUE(d.has_port("a"));
  EXPECT_TRUE(d.has_port("y"));
  EXPECT_FALSE(d.has_port("z"));
  EXPECT_EQ(d.port("a").id, a.id);
  EXPECT_THROW(d.port("z"), util::Error);
}

TEST(Design, DuplicatePortNameRejected) {
  Design d("top");
  d.input("a", 8);
  EXPECT_THROW(d.input("a", 4), util::Error);
  const Wire w = d.constant(4, 0);
  EXPECT_THROW(d.output("a", w), util::Error);
}

TEST(Design, WidthMismatchRejected) {
  Design d("top");
  const Wire a = d.input("a", 8);
  const Wire b = d.input("b", 4);
  EXPECT_THROW(d.band(a, b), util::Error);
  EXPECT_THROW(d.add(a, b), util::Error);
  EXPECT_THROW(d.mux(a /* not 1 bit */, a, a), util::Error);
}

TEST(Design, SliceBoundsChecked) {
  Design d("top");
  const Wire a = d.input("a", 8);
  EXPECT_NO_THROW(d.slice(a, 0, 8));
  EXPECT_THROW(d.slice(a, 4, 8), util::Error);
  EXPECT_THROW(d.slice(a, 0, 0), util::Error);
}

TEST(Design, ResizeProducesRequestedWidth) {
  Design d("top");
  const Wire a = d.input("a", 8);
  EXPECT_EQ(d.resize(a, 8).id, a.id);  // no-op returns same wire
  EXPECT_EQ(d.resize(a, 16).width, 16);
  EXPECT_EQ(d.resize(a, 3).width, 3);
}

TEST(Design, ForeignWireRejected) {
  Design d1("a"), d2("b");
  const Wire w = d1.input("x", 8);
  EXPECT_THROW(d2.bnot(w), util::Error);
}

TEST(Design, RegForwardMustBeConnected) {
  Design d("top");
  const Wire q = d.reg_forward("q", 8);
  EXPECT_THROW(d.check_complete(), util::Error);
  d.reg_connect(q, d.constant(8, 1));
  EXPECT_NO_THROW(d.check_complete());
  // Double connect rejected.
  EXPECT_THROW(d.reg_connect(q, d.constant(8, 2)), util::Error);
}

TEST(Design, RegConnectRejectsNonRegister) {
  Design d("top");
  const Wire c = d.constant(8, 0);
  EXPECT_THROW(d.reg_connect(c, c), util::Error);
}

TEST(Design, RomRequiresUniformWidth) {
  Design d("top");
  std::vector<BitVec> contents = {BitVec(8, 1), BitVec(4, 2)};
  EXPECT_THROW(d.add_rom("rom", contents), util::Error);
  EXPECT_THROW(d.add_rom("rom", {}), util::Error);
}

TEST(Design, RomIsReadOnly) {
  Design d("top");
  const int rom = d.add_rom("rom", {BitVec(8, 1), BitVec(8, 2)});
  const Wire addr = d.input("addr", 1);
  const Wire data = d.input("data", 8);
  const Wire we = d.input("we", 1);
  EXPECT_NO_THROW(d.ram_read(rom, addr));
  EXPECT_THROW(d.ram_write(rom, addr, data, we), util::Error);
}

TEST(Design, RamWriteChecksWidths) {
  Design d("top");
  const int ram = d.add_ram("ram", 16, 8);
  const Wire addr = d.input("addr", 4);
  const Wire we = d.input("we", 1);
  const Wire bad = d.input("bad", 4);
  EXPECT_THROW(d.ram_write(ram, addr, bad, we), util::Error);
  EXPECT_THROW(d.ram_write(99, addr, bad, we), util::Error);
}

TEST(Design, ScopesPrefixNames) {
  Design d("top");
  {
    Design::Scope outer(d, "u_core");
    Design::Scope inner(d, "hist");
    d.reg("cnt", d.constant(8, 0));
  }
  bool found = false;
  for (const auto& c : d.components()) {
    if (c.kind == CompKind::kReg) {
      EXPECT_EQ(c.name, "u_core/hist/cnt");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_THROW(d.pop_scope(), util::Error);
}

TEST(Design, ClockDomains) {
  Design d("top");
  EXPECT_EQ(d.clock_count(), 1);
  const ClockId io = d.add_clock("clk_io");
  EXPECT_EQ(d.clock_count(), 2);
  EXPECT_EQ(d.clock_name(io), "clk_io");
  RegOpts opts;
  opts.clock = ClockId{5};
  EXPECT_THROW(d.reg("r", d.constant(1, 0), opts), util::Error);
}

TEST(Design, MuxnValidation) {
  Design d("top");
  const Wire sel = d.input("sel", 2);
  const Wire a = d.input("a", 8);
  const Wire b = d.input("b", 8);
  EXPECT_NO_THROW(d.muxn(sel, {a, b}));
  EXPECT_THROW(d.muxn(sel, {}), util::Error);
  EXPECT_THROW(d.muxn(sel, {a, d.input("c", 4)}), util::Error);
}

TEST(Design, ConcatWidthIsSum) {
  Design d("top");
  const Wire a = d.input("a", 8);
  const Wire b = d.input("b", 3);
  EXPECT_EQ(d.concat({a, b}).width, 11);
}

}  // namespace
}  // namespace atlantis::chdl
