#include "chdl/stats.hpp"

#include <gtest/gtest.h>

#include "chdl/builder.hpp"

namespace atlantis::chdl {
namespace {

TEST(NetlistStats, CountsGatesOfKnownDesign) {
  Design d("known");
  const Wire a = d.input("a", 8);
  const Wire b = d.input("b", 8);
  const Wire x = d.band(a, b);      // 8 gates
  const Wire y = d.add(a, b);       // 48 gates
  d.output("q", d.reg("r", d.bxor(x, y)));  // xor 24 + reg 64
  const NetlistStats s = analyze(d);
  EXPECT_EQ(s.gate_equivalents, 8 + 48 + 24 + 64);
  EXPECT_EQ(s.flipflops, 8);
  EXPECT_EQ(s.io_pins, 8 + 8 + 8);
  EXPECT_GT(s.components, 0);
  EXPECT_GT(s.wires, 0);
}

TEST(NetlistStats, RamBitsCounted) {
  Design d("mem");
  d.add_ram("m", 512 * 1024, 176);
  const NetlistStats s = analyze(d);
  EXPECT_EQ(s.ram_bits, 512ll * 1024 * 176);
}

TEST(NetlistStats, WiringIsFree) {
  Design d("wires");
  const Wire a = d.input("a", 32);
  d.output("y", d.concat({d.slice(a, 16, 16), d.slice(a, 0, 16)}));
  const NetlistStats s = analyze(d);
  EXPECT_EQ(s.gate_equivalents, 0);
  EXPECT_EQ(s.flipflops, 0);
}

TEST(NetlistStats, ToStringMentionsDesign) {
  Design d("pretty");
  d.output("y", d.input("a", 1));
  EXPECT_NE(analyze(d).to_string().find("pretty"), std::string::npos);
}

TEST(NetlistStats, GrowsMonotonicallyWithStructure) {
  // Property: adding counters strictly increases gates and flipflops.
  std::int64_t prev_gates = 0;
  std::int64_t prev_ff = 0;
  for (int n = 1; n <= 4; ++n) {
    Design d("grow");
    const Wire en = d.input("en", 1);
    for (int i = 0; i < n * 8; ++i) {
      d.output("q" + std::to_string(i),
               counter(d, "c" + std::to_string(i), 8, en));
    }
    const NetlistStats s = analyze(d);
    EXPECT_GT(s.gate_equivalents, prev_gates);
    EXPECT_GT(s.flipflops, prev_ff);
    prev_gates = s.gate_equivalents;
    prev_ff = s.flipflops;
  }
}

}  // namespace
}  // namespace atlantis::chdl
