#include "chdl/verify.hpp"

#include <gtest/gtest.h>

#include "chdl/builder.hpp"

namespace atlantis::chdl {
namespace {

TEST(Verify, EquivalentImplementationsPass) {
  // Sum of four bytes: a single chained adder vs the balanced tree.
  Design chain("chain");
  Design tree("tree");
  for (Design* d : {&chain, &tree}) {
    std::vector<Wire> in;
    for (int i = 0; i < 4; ++i) {
      in.push_back(d->input("t" + std::to_string(i), 8));
    }
    Wire sum{};
    if (d == &chain) {
      sum = d->resize(in[0], 10);
      for (int i = 1; i < 4; ++i) {
        sum = d->add(sum, d->resize(in[static_cast<std::size_t>(i)], 10));
      }
    } else {
      sum = d->resize(adder_tree(*d, in), 10);
    }
    d->output("sum", sum);
  }
  const EquivalenceReport rep = check_equivalence(chain, tree);
  EXPECT_TRUE(rep) << rep.mismatch;
  EXPECT_EQ(rep.cycles_run, 1000u);
}

TEST(Verify, DetectsFunctionalDifference) {
  Design a("a");
  Design b("b");
  for (Design* d : {&a, &b}) {
    const Wire x = d->input("x", 8);
    const Wire y = d->input("y", 8);
    d->output("q", d == &a ? d->add(x, y) : d->sub(x, y));
  }
  const EquivalenceReport rep = check_equivalence(a, b);
  EXPECT_FALSE(rep);
  EXPECT_NE(rep.mismatch.find("output 'q'"), std::string::npos);
  EXPECT_GT(rep.cycles_run, 0u);
}

TEST(Verify, SequentialDesignsComparedCycleByCycle) {
  // Two counters with different widths diverge when the narrow one wraps.
  Design wide("wide");
  {
    const Wire en = wide.input("en", 1);
    wide.output("q", wide.resize(counter(wide, "c", 8, en), 4));
  }
  Design narrow("narrow");
  {
    const Wire en = narrow.input("en", 1);
    narrow.output("q", counter(narrow, "c", 4, en));
  }
  // resize(counter8) truncates to 4 bits == counter4 at all times.
  EXPECT_TRUE(check_equivalence(wide, narrow));
}

TEST(Verify, SequentialDivergenceFound) {
  Design a("a");
  {
    const Wire en = a.input("en", 1);
    a.output("q", counter(a, "c", 4, en));
  }
  Design b("b");
  {
    const Wire en = b.input("en", 1);
    // Counts by two: diverges on the first enabled cycle.
    chdl::RegOpts opts;
    opts.enable = en;
    const Wire q = b.reg_forward("c", 4, opts);
    b.reg_connect(q, b.add(q, b.constant(4, 2)));
    b.output("q", q);
  }
  EXPECT_FALSE(check_equivalence(a, b));
}

TEST(Verify, InterfaceMismatchThrows) {
  Design a("a");
  a.output("q", a.input("x", 8));
  Design b("b");
  b.output("q", b.input("x", 4));  // same name, different width
  EXPECT_THROW(check_equivalence(a, b), util::Error);

  Design c("c");
  c.output("other", c.input("x", 8));
  EXPECT_THROW(check_equivalence(a, c), util::Error);  // no common outputs
}

TEST(Verify, WarmupSkipsPipelineFill) {
  // Registered vs doubly-registered output: never equivalent cycle-by-
  // cycle, so even warmup cannot save it — but a registered copy of the
  // same depth passes with warmup.
  Design one("one");
  {
    const Wire x = one.input("x", 8);
    one.output("q", one.reg("r", x));
  }
  Design also_one("also_one");
  {
    const Wire x = also_one.input("x", 8);
    also_one.output("q", also_one.reg("r2", x));
  }
  EquivalenceOptions opts;
  opts.warmup = 2;
  EXPECT_TRUE(check_equivalence(one, also_one, opts));

  Design two("two");
  {
    const Wire x = two.input("x", 8);
    two.output("q", two.reg("b", two.reg("a", x)));
  }
  EXPECT_FALSE(check_equivalence(one, two, opts));
}

TEST(Verify, MultiplierMatchesNativeProduct) {
  // The array multiplier against a behavioural product built from
  // shift-adds over constant decomposition is overkill; instead compare
  // two independently-generated multiplier instances, then spot-check
  // values through simulation.
  Design m1("m1");
  {
    const Wire x = m1.input("x", 8);
    const Wire y = m1.input("y", 9);
    m1.output("p", multiply(m1, x, y));
  }
  Design m2("m2");
  {
    const Wire x = m2.input("x", 8);
    const Wire y = m2.input("y", 9);
    // Operand-swapped structure (different partial-product order).
    m2.output("p", m2.resize(multiply(m2, m2.resize(y, 9), m2.resize(x, 8)),
                             17));
  }
  EXPECT_TRUE(check_equivalence(m1, m2));
}

}  // namespace
}  // namespace atlantis::chdl
