#include "chdl/sim.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace atlantis::chdl {
namespace {

TEST(Sim, GateTruthTables) {
  Design d("gates");
  const Wire a = d.input("a", 1);
  const Wire b = d.input("b", 1);
  d.output("and", d.band(a, b));
  d.output("or", d.bor(a, b));
  d.output("xor", d.bxor(a, b));
  d.output("not", d.bnot(a));
  Simulator sim(d);
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      sim.poke("a", static_cast<std::uint64_t>(av));
      sim.poke("b", static_cast<std::uint64_t>(bv));
      EXPECT_EQ(sim.peek_u64("and"), static_cast<std::uint64_t>(av & bv));
      EXPECT_EQ(sim.peek_u64("or"), static_cast<std::uint64_t>(av | bv));
      EXPECT_EQ(sim.peek_u64("xor"), static_cast<std::uint64_t>(av ^ bv));
      EXPECT_EQ(sim.peek_u64("not"), static_cast<std::uint64_t>(1 - av));
    }
  }
}

TEST(Sim, CombinationalOpsMatchBitVecSemantics) {
  Design d("comb");
  const Wire a = d.input("a", 16);
  const Wire b = d.input("b", 16);
  d.output("add", d.add(a, b));
  d.output("sub", d.sub(a, b));
  d.output("eq", d.eq(a, b));
  d.output("ult", d.ult(a, b));
  d.output("rand", d.reduce_and(a));
  d.output("ror", d.reduce_or(a));
  d.output("rxor", d.reduce_xor(a));
  d.output("sl", d.shl(a, 3));
  d.output("sr", d.shr(a, 3));
  d.output("slice", d.slice(a, 4, 8));
  d.output("cat", d.concat({d.slice(a, 8, 8), d.slice(a, 0, 8)}));
  Simulator sim(d);
  util::Rng rng(71);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t x = rng.next_u64() & 0xFFFF;
    const std::uint64_t y = rng.next_u64() & 0xFFFF;
    sim.poke("a", x);
    sim.poke("b", y);
    EXPECT_EQ(sim.peek_u64("add"), (x + y) & 0xFFFF);
    EXPECT_EQ(sim.peek_u64("sub"), (x - y) & 0xFFFF);
    EXPECT_EQ(sim.peek_u64("eq"), x == y ? 1u : 0u);
    EXPECT_EQ(sim.peek_u64("ult"), x < y ? 1u : 0u);
    EXPECT_EQ(sim.peek_u64("rand"), x == 0xFFFF ? 1u : 0u);
    EXPECT_EQ(sim.peek_u64("ror"), x != 0 ? 1u : 0u);
    EXPECT_EQ(sim.peek_u64("rxor"),
              static_cast<std::uint64_t>(__builtin_popcountll(x) & 1));
    EXPECT_EQ(sim.peek_u64("sl"), (x << 3) & 0xFFFF);
    EXPECT_EQ(sim.peek_u64("sr"), x >> 3);
    EXPECT_EQ(sim.peek_u64("slice"), (x >> 4) & 0xFF);
    EXPECT_EQ(sim.peek_u64("cat"), x);  // slices reassembled
  }
}

TEST(Sim, MuxAndMuxN) {
  Design d("mux");
  const Wire sel = d.input("sel", 1);
  const Wire seln = d.input("seln", 2);
  const Wire a = d.input("a", 8);
  const Wire b = d.input("b", 8);
  const Wire c = d.input("c", 8);
  d.output("m", d.mux(sel, a, b));
  d.output("mn", d.muxn(seln, {a, b, c}));
  Simulator sim(d);
  sim.poke("a", 10);
  sim.poke("b", 20);
  sim.poke("c", 30);
  sim.poke("sel", 1);
  EXPECT_EQ(sim.peek_u64("m"), 10u);
  sim.poke("sel", 0);
  EXPECT_EQ(sim.peek_u64("m"), 20u);
  sim.poke("seln", 0);
  EXPECT_EQ(sim.peek_u64("mn"), 10u);
  sim.poke("seln", 2);
  EXPECT_EQ(sim.peek_u64("mn"), 30u);
  sim.poke("seln", 3);  // clamped to the last choice
  EXPECT_EQ(sim.peek_u64("mn"), 30u);
}

TEST(Sim, RegisterLatchesOnEdgeOnly) {
  Design d("reg");
  const Wire din = d.input("d", 8);
  d.output("q", d.reg("r", din));
  Simulator sim(d);
  sim.poke("d", 55);
  EXPECT_EQ(sim.peek_u64("q"), 0u);  // power-up value
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 55u);
  sim.poke("d", 77);
  EXPECT_EQ(sim.peek_u64("q"), 55u);  // not yet clocked
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 77u);
}

TEST(Sim, RegisterInitEnableReset) {
  Design d("reg2");
  const Wire din = d.input("d", 8);
  const Wire en = d.input("en", 1);
  const Wire rst = d.input("rst", 1);
  RegOpts opts;
  opts.enable = en;
  opts.reset = rst;
  opts.init = BitVec(8, 0xA5);
  d.output("q", d.reg("r", din, opts));
  Simulator sim(d);
  EXPECT_EQ(sim.peek_u64("q"), 0xA5u);  // init value at power-up
  sim.poke("d", 1);
  sim.poke("en", 0);
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 0xA5u);  // enable off: hold
  sim.poke("en", 1);
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 1u);
  sim.poke("rst", 1);
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 0xA5u);  // sync reset back to init
}

TEST(Sim, ResetRestoresPowerUpState) {
  Design d("reg3");
  const Wire din = d.input("d", 8);
  d.output("q", d.reg("r", din));
  Simulator sim(d);
  sim.poke("d", 9);
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 9u);
  EXPECT_EQ(sim.cycles(), 1u);
  sim.reset();
  EXPECT_EQ(sim.cycles(), 0u);
  // Inputs are cleared too; q back to 0.
  EXPECT_EQ(sim.peek_u64("q"), 0u);
}

TEST(Sim, RamSyncReadAndWrite) {
  Design d("ram");
  const int ram = d.add_ram("mem", 16, 8);
  const Wire addr = d.input("addr", 4);
  const Wire data = d.input("data", 8);
  const Wire we = d.input("we", 1);
  d.ram_write(ram, addr, data, we);
  d.output("q", d.ram_read(ram, addr));
  Simulator sim(d);
  // Write 0xAB at address 3.
  sim.poke("addr", 3);
  sim.poke("data", 0xAB);
  sim.poke("we", 1);
  sim.step();
  sim.poke("we", 0);
  // Sync read: data appears one cycle after the address is presented.
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 0xABu);
  // Read-before-write: writing a new value while reading the same
  // address returns the OLD contents on that edge.
  sim.poke("data", 0xCD);
  sim.poke("we", 1);
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 0xABu);
  sim.poke("we", 0);
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 0xCDu);
}

TEST(Sim, RamDirectAccess) {
  Design d("ram2");
  const int ram = d.add_ram("mem", 8, 16);
  const Wire addr = d.input("addr", 3);
  d.output("q", d.ram_read(ram, addr));
  Simulator sim(d);
  sim.write_ram(ram, 5, BitVec(16, 0x1234));
  EXPECT_EQ(sim.read_ram(ram, 5).to_u64(), 0x1234u);
  sim.poke("addr", 5);
  sim.step();
  EXPECT_EQ(sim.peek_u64("q"), 0x1234u);
  EXPECT_THROW(sim.write_ram(ram, 8, BitVec(16, 0)), util::Error);
  EXPECT_THROW(sim.write_ram(ram, 0, BitVec(8, 0)), util::Error);
}

TEST(Sim, RomContentsPreloaded) {
  Design d("rom");
  const int rom = d.add_rom("r", {BitVec(8, 11), BitVec(8, 22), BitVec(8, 33)});
  const Wire addr = d.input("addr", 2);
  d.output("q", d.ram_read(rom, addr));
  Simulator sim(d);
  for (std::uint64_t a = 0; a < 3; ++a) {
    sim.poke("addr", a);
    sim.step();
    EXPECT_EQ(sim.peek_u64("q"), 11 * (a + 1));
  }
}

TEST(Sim, CombinationalCycleDetected) {
  Design d("loop");
  const Wire a = d.input("a", 1);
  // Build a feedback loop through combinational logic only: forward-
  // declare a register, misuse its Q in logic, then feed the logic into
  // an AND with itself via two NOTs... simplest true cycle: x = not(y),
  // y = not(x) is impossible to express without forward refs, so use a
  // register loop and check it is FINE, then a self-referential check is
  // done via reg misuse below.
  const Wire q = d.reg_forward("q", 1);
  d.reg_connect(q, d.bxor(q, a));  // sequential feedback: legal
  d.output("y", q);
  EXPECT_NO_THROW(Simulator{d});
}

TEST(Sim, ToggleCounterViaFeedback) {
  Design d("tog");
  const Wire q = d.reg_forward("q", 4);
  d.reg_connect(q, d.add(q, d.constant(4, 1)));
  d.output("count", q);
  Simulator sim(d);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(sim.peek_u64("count"), i & 0xF);
    sim.step();
  }
  EXPECT_EQ(sim.cycles(), 20u);
}

TEST(Sim, WideDatapath176Bits) {
  // The TRT LUT row width: make sure >64-bit values flow end to end.
  Design d("wide");
  const Wire a = d.input("a", 176);
  const Wire b = d.input("b", 176);
  d.output("x", d.bxor(a, b));
  d.output("any", d.reduce_or(d.band(a, b)));
  Simulator sim(d);
  BitVec va(176), vb(176);
  va.set_bit(0, true);
  va.set_bit(175, true);
  vb.set_bit(175, true);
  sim.poke(d.port("a"), va);
  sim.poke(d.port("b"), vb);
  const BitVec x = sim.peek(d.port("x"));
  EXPECT_TRUE(x.bit(0));
  EXPECT_FALSE(x.bit(175));
  EXPECT_EQ(sim.peek_u64("any"), 1u);
}

TEST(Sim, PokeRejectsNonInputs) {
  Design d("p");
  const Wire a = d.input("a", 8);
  const Wire y = d.bnot(a);
  d.output("y", y);
  Simulator sim(d);
  EXPECT_THROW(sim.poke(y, 1), util::Error);
}

TEST(Sim, MultiClockDomainsLatchIndependently) {
  Design d("mc");
  const ClockId fast = d.add_clock("fast");
  const Wire din = d.input("d", 8);
  RegOpts slow_opts;  // domain 0
  const Wire q0 = d.reg("q0", din, slow_opts);
  RegOpts fast_opts;
  fast_opts.clock = fast;
  const Wire q1 = d.reg("q1", din, fast_opts);
  d.output("y0", q0);
  d.output("y1", q1);
  Simulator sim(d);
  sim.poke("d", 5);
  sim.step(fast);
  EXPECT_EQ(sim.peek_u64("y1"), 5u);
  EXPECT_EQ(sim.peek_u64("y0"), 0u);  // domain 0 has not ticked
  sim.step(ClockId{0});
  EXPECT_EQ(sim.peek_u64("y0"), 5u);
  EXPECT_EQ(sim.cycles(fast), 1u);
  EXPECT_EQ(sim.cycles(ClockId{0}), 1u);
}

// Property: a ripple of registers is a delay line of its depth.
class DelayLine : public ::testing::TestWithParam<int> {};

TEST_P(DelayLine, DelaysByDepth) {
  const int depth = GetParam();
  Design d("delay");
  const Wire in = d.input("in", 8);
  Wire w = in;
  for (int i = 0; i < depth; ++i) {
    w = d.reg("s" + std::to_string(i), w);
  }
  d.output("out", w);
  Simulator sim(d);
  util::Rng rng(static_cast<std::uint64_t>(depth) + 99);
  std::vector<std::uint64_t> sent;
  for (int t = 0; t < depth + 50; ++t) {
    const std::uint64_t v = rng.next_u64() & 0xFF;
    sent.push_back(v);
    sim.poke("in", v);
    sim.step();
    if (t >= depth - 1) {
      EXPECT_EQ(sim.peek_u64("out"), sent[static_cast<std::size_t>(t - depth + 1)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, DelayLine, ::testing::Values(1, 2, 5, 16));

}  // namespace
}  // namespace atlantis::chdl
