// Unit tests for the netlist optimizer (chdl/optimize.hpp): each pass
// exercised in isolation against hand-built netlists, plus randomized
// equivalence checks (chdl/verify.hpp) of every pass combination
// against the unoptimized reference simulator.
#include "chdl/optimize.hpp"

#include <gtest/gtest.h>

#include <string>

#include "chdl/design.hpp"
#include "chdl/export.hpp"
#include "chdl/sim.hpp"
#include "chdl/verify.hpp"

namespace atlantis::chdl {
namespace {

OptimizeOptions only(bool fold, bool dce, bool cse, bool fuse) {
  OptimizeOptions o;
  o.fold = fold;
  o.dce = dce;
  o.cse = cse;
  o.fuse = fuse;
  return o;
}

std::int32_t find_comp(const Design& d, CompKind kind) {
  for (std::size_t i = 0; i < d.components().size(); ++i) {
    if (d.components()[i].kind == kind) return static_cast<std::int32_t>(i);
  }
  return -1;
}

TEST(Optimize, FoldsFullyConstantExpressions) {
  Design d("fold");
  const Wire a = d.constant(16, 40);
  const Wire b = d.constant(16, 2);
  const Wire sum = d.add(a, b);
  d.output("y", sum);

  const OptimizedNetlist opt = optimize(d, only(true, false, false, false));
  ASSERT_TRUE(opt.folded(sum.id));
  EXPECT_EQ(opt.fold_value[static_cast<std::size_t>(sum.id)].to_u64(), 42u);
  const OptimizePassStats* fold = opt.report.pass("fold");
  ASSERT_NE(fold, nullptr);
  EXPECT_GE(fold->rewrites, 1);

  Simulator sim(d);
  EXPECT_EQ(sim.peek_u64("y"), 42u);
  EXPECT_TRUE(sim.optimized());
}

TEST(Optimize, FoldsIdentitiesToAliasesAndConstants) {
  Design d("ident");
  const Wire x = d.input("x", 8);
  const Wire self_xor = d.bxor(x, x);      // -> constant 0
  const Wire self_and = d.band(x, x);      // -> alias of x
  const Wire plus_zero = d.add(x, d.constant(8, 0));  // -> alias of x
  const Wire sel1 = d.mux(d.constant(1, 1), x, self_xor);  // -> alias of x
  d.output("a", self_xor);
  d.output("b", self_and);
  d.output("c", plus_zero);
  d.output("d", sel1);

  const OptimizedNetlist opt = optimize(d, only(true, false, false, false));
  EXPECT_TRUE(opt.folded(self_xor.id));
  EXPECT_EQ(opt.fold_value[static_cast<std::size_t>(self_xor.id)].to_u64(),
            0u);
  EXPECT_EQ(opt.forward[static_cast<std::size_t>(self_and.id)], x.id);
  EXPECT_EQ(opt.forward[static_cast<std::size_t>(plus_zero.id)], x.id);
  EXPECT_EQ(opt.forward[static_cast<std::size_t>(sel1.id)], x.id);

  // Aliased wires share the representative's storage: a poke is visible
  // through every alias immediately.
  Simulator sim(d);
  sim.poke("x", 0x5A);
  EXPECT_EQ(sim.peek_u64("b"), 0x5Au);
  EXPECT_EQ(sim.peek_u64("c"), 0x5Au);
  EXPECT_EQ(sim.peek_u64("d"), 0x5Au);
  EXPECT_EQ(sim.peek_u64("a"), 0u);
}

TEST(Optimize, DceDropsUnobservedLogicButPeeksStillWork) {
  Design d("dce");
  const Wire x = d.input("x", 8);
  const Wire dead = d.add(d.bnot(x), d.constant(8, 1));  // feeds nothing
  const Wire live = d.bxor(x, d.constant(8, 0xFF));
  d.output("y", live);

  const OptimizedNetlist opt = optimize(d, only(false, true, false, false));
  const std::int32_t add_idx = find_comp(d, CompKind::kAdd);
  ASSERT_GE(add_idx, 0);
  EXPECT_FALSE(opt.comp_alive[static_cast<std::size_t>(add_idx)]);
  const OptimizePassStats* dce = opt.report.pass("dce");
  ASSERT_NE(dce, nullptr);
  EXPECT_GE(dce->rewrites, 2);  // the not and the add

  // The simulator re-evaluates dropped logic lazily when peeked, so the
  // observable value is unchanged.
  Simulator sim(d);
  sim.poke("x", 7);
  EXPECT_EQ(sim.peek(dead).to_u64(), static_cast<std::uint64_t>(
                                          (~7u + 1u) & 0xFFu));
  EXPECT_EQ(sim.peek_u64("y"), (7u ^ 0xFFu));
}

TEST(Optimize, DceKeepPinsProbedWires) {
  Design d("keep");
  const Wire x = d.input("x", 8);
  const Wire probed = d.add(x, d.constant(8, 1));  // feeds nothing
  d.output("y", x);

  OptimizeOptions opts = only(false, true, false, false);
  opts.keep.push_back(probed);
  const OptimizedNetlist opt = optimize(d, opts);
  const std::int32_t add_idx = find_comp(d, CompKind::kAdd);
  ASSERT_GE(add_idx, 0);
  EXPECT_TRUE(opt.comp_alive[static_cast<std::size_t>(add_idx)]);
}

TEST(Optimize, CseMergesStructuralDuplicates) {
  Design d("cse");
  const Wire a = d.input("a", 12);
  const Wire b = d.input("b", 12);
  const Wire s1 = d.add(a, b);
  const Wire s2 = d.add(a, b);   // structural twin
  const Wire s3 = d.add(b, a);   // commutative twin
  d.output("x", s1);
  d.output("y", s2);
  d.output("z", s3);

  const OptimizedNetlist opt = optimize(d, only(false, false, true, false));
  EXPECT_EQ(opt.forward[static_cast<std::size_t>(s2.id)], s1.id);
  EXPECT_EQ(opt.forward[static_cast<std::size_t>(s3.id)], s1.id);
  const OptimizePassStats* cse = opt.report.pass("cse");
  ASSERT_NE(cse, nullptr);
  EXPECT_EQ(cse->rewrites, 2);

  Simulator sim(d);
  sim.poke("a", 100);
  sim.poke("b", 23);
  EXPECT_EQ(sim.peek_u64("x"), 123u);
  EXPECT_EQ(sim.peek_u64("y"), 123u);
  EXPECT_EQ(sim.peek_u64("z"), 123u);
}

TEST(Optimize, ConstantsAreInternedByTheDesign) {
  Design d("intern");
  const Wire c1 = d.constant(8, 5);
  const Wire c2 = d.constant(8, 5);
  const Wire c3 = d.constant(8, 6);
  const Wire c4 = d.constant(9, 5);  // same value, different width
  EXPECT_EQ(c1.id, c2.id);
  EXPECT_NE(c1.id, c3.id);
  EXPECT_NE(c1.id, c4.id);
}

TEST(Optimize, FusesInverterAndImmediateForms) {
  Design d("fuse");
  const Wire a = d.input("a", 16);
  const Wire b = d.input("b", 16);
  const Wire andnot = d.band(a, d.bnot(b));
  const Wire eqc = d.eq(a, d.constant(16, 1234));
  const Wire addc = d.add(a, d.constant(16, 7));
  d.output("x", andnot);
  d.output("y", eqc);
  d.output("z", addc);

  const OptimizedNetlist opt = optimize(d, only(false, false, false, true));
  const auto fused_of = [&](CompKind kind) {
    const std::int32_t idx = find_comp(d, kind);
    EXPECT_GE(idx, 0);
    const auto it = opt.fused.find(idx);
    return it == opt.fused.end() ? FusedComp{} : it->second;
  };
  EXPECT_EQ(fused_of(CompKind::kAnd).op, FusedOp::kAndNot);
  EXPECT_EQ(fused_of(CompKind::kEq).op, FusedOp::kEqImm);
  EXPECT_EQ(fused_of(CompKind::kEq).imm, 1234u);
  EXPECT_EQ(fused_of(CompKind::kAdd).op, FusedOp::kAddImm);

  Simulator sim(d);
  sim.poke("a", 1234);
  sim.poke("b", 0x0F0F);
  EXPECT_EQ(sim.peek_u64("x"), 1234u & ~0x0F0Fu & 0xFFFFu);
  EXPECT_EQ(sim.peek_u64("y"), 1u);
  EXPECT_EQ(sim.peek_u64("z"), 1241u);
}

TEST(Optimize, ForwardsSliceOfConcat) {
  Design d("sliceconcat");
  const Wire hi = d.input("hi", 8);
  const Wire lo = d.input("lo", 8);
  const Wire cat = d.concat({hi, lo});
  const Wire take_lo = d.slice(cat, 0, 8);   // exactly the low part
  const Wire inside = d.slice(cat, 10, 4);   // inside the high part
  d.output("a", take_lo);
  d.output("b", inside);

  const OptimizedNetlist opt = optimize(d, only(false, false, false, true));
  EXPECT_EQ(opt.forward[static_cast<std::size_t>(take_lo.id)], lo.id);

  Simulator sim(d);
  sim.poke("hi", 0xAB);
  sim.poke("lo", 0xCD);
  EXPECT_EQ(sim.peek_u64("a"), 0xCDu);
  EXPECT_EQ(sim.peek_u64("b"), (0xABu >> 2) & 0xFu);
}

TEST(Optimize, ReportCountsOpsPerPass) {
  Design d("report");
  const Wire x = d.input("x", 8);
  const Wire t = d.add(x, d.constant(8, 0));  // folds away
  d.output("y", d.band(t, t));

  const OptimizedNetlist opt = optimize(d);
  EXPECT_EQ(opt.report.passes.size(), 4u);  // fold, dce, cse, fuse
  EXPECT_GT(opt.report.ops_before, 0);
  EXPECT_LE(opt.report.ops_after, opt.report.ops_before);
  EXPECT_FALSE(opt.report.to_string().empty());
}

TEST(Optimize, OptimizedExportShowsRewrites) {
  Design d("exportopt");
  const Wire x = d.input("x", 8);
  const Wire aliased = d.band(x, x);
  const Wire folded = d.bxor(x, x);
  d.output("a", aliased);
  d.output("b", folded);

  const OptimizedNetlist opt = optimize(d);
  const std::string text = export_netlist(d, opt);
  EXPECT_NE(text.find("(optimized)"), std::string::npos);
  EXPECT_NE(text.find("; alias"), std::string::npos);
  EXPECT_NE(text.find("; folded"), std::string::npos);
}

TEST(Optimize, EscapeHatchDisablesEverything) {
  Design d("hatch");
  const Wire x = d.input("x", 8);
  d.output("y", d.band(x, x));

  SimOptions off;
  off.optimize = false;
  Simulator raw(d, off);
  Simulator opt(d);
  EXPECT_FALSE(raw.optimized());
  EXPECT_TRUE(opt.optimized());
  EXPECT_EQ(raw.optimize_report(), nullptr);
  ASSERT_NE(opt.optimize_report(), nullptr);
  EXPECT_LE(opt.tape_ops(), raw.tape_ops());
  raw.poke("x", 3);
  opt.poke("x", 3);
  EXPECT_EQ(raw.peek_u64("y"), opt.peek_u64("y"));
}

/// A design mixing everything the passes rewrite: inverter absorption,
/// immediates, duplicates, identities, slice-of-concat and a register.
void build_mixed(Design& d) {
  const Wire a = d.input("a", 16);
  const Wire b = d.input("b", 16);
  const Wire t1 = d.band(a, d.bnot(b));
  const Wire t2 = d.add(a, d.constant(16, 3));
  const Wire sel = d.eq(b, d.constant(16, 100));
  const Wire t4 = d.mux(sel, t1, t2);
  const Wire dup = d.band(a, d.bnot(b));
  const Wire cat = d.concat({a, b});
  const Wire sl = d.slice(cat, 4, 8);
  const Wire r = d.reg("r", t4);
  d.output("y", d.bxor(r, dup));
  d.output("z", sl);
  d.output("w", d.sub(t2, d.constant(16, 0)));
}

TEST(Optimize, EveryPassCombinationIsEquivalentToReference) {
  Design ref("mixed_ref");
  build_mixed(ref);
  Design opt("mixed_opt");
  build_mixed(opt);

  for (int mask = 0; mask < 16; ++mask) {
    EquivalenceOptions eq;
    eq.cycles = 200;
    eq.sim_a.optimize = false;
    eq.sim_b.optimize = true;
    eq.sim_b.opt =
        only(mask & 1, (mask & 2) != 0, (mask & 4) != 0, (mask & 8) != 0);
    const EquivalenceReport report = check_equivalence(ref, opt, eq);
    EXPECT_TRUE(report.equivalent)
        << "pass mask " << mask << ": " << report.mismatch;
  }
}

}  // namespace
}  // namespace atlantis::chdl
