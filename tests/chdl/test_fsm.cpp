#include "chdl/fsm.hpp"

#include <gtest/gtest.h>

#include "chdl/sim.hpp"

namespace atlantis::chdl {
namespace {

// A 2-state toggle: flips on every enable.
TEST(Fsm, TwoStateToggle) {
  Design d("toggle");
  const Wire en = d.input("en", 1);
  Fsm fsm(d, "t");
  const StateId s0 = fsm.state("s0");
  const StateId s1 = fsm.state("s1");
  fsm.transition(s0, s1, en);
  fsm.transition(s1, s0, en);
  fsm.build();
  d.output("in_s1", fsm.active(s1));
  d.output("enc", fsm.encoded());
  Simulator sim(d);
  EXPECT_EQ(sim.peek_u64("in_s1"), 0u);
  EXPECT_EQ(sim.peek_u64("enc"), 0u);
  sim.poke("en", 1);
  sim.step();
  EXPECT_EQ(sim.peek_u64("in_s1"), 1u);
  EXPECT_EQ(sim.peek_u64("enc"), 1u);
  sim.step();
  EXPECT_EQ(sim.peek_u64("in_s1"), 0u);
}

TEST(Fsm, HoldsWithoutGuard) {
  Design d("hold");
  const Wire go = d.input("go", 1);
  Fsm fsm(d, "h");
  const StateId idle = fsm.state("idle");
  const StateId run = fsm.state("run");
  fsm.transition(idle, run, go);
  fsm.build();
  d.output("running", fsm.active(run));
  Simulator sim(d);
  sim.poke("go", 0);
  for (int i = 0; i < 5; ++i) {
    sim.step();
    EXPECT_EQ(sim.peek_u64("running"), 0u);
  }
  sim.poke("go", 1);
  sim.step();
  EXPECT_EQ(sim.peek_u64("running"), 1u);
  // run has no outgoing transition: stays forever.
  sim.poke("go", 0);
  for (int i = 0; i < 5; ++i) {
    sim.step();
    EXPECT_EQ(sim.peek_u64("running"), 1u);
  }
}

TEST(Fsm, EarlierTransitionTakesPriority) {
  Design d("prio");
  const Wire a = d.input("a", 1);
  const Wire b = d.input("b", 1);
  Fsm fsm(d, "p");
  const StateId s = fsm.state("s");
  const StateId ta = fsm.state("ta");
  const StateId tb = fsm.state("tb");
  fsm.transition(s, ta, a);  // declared first: wins when both fire
  fsm.transition(s, tb, b);
  fsm.build();
  d.output("in_a", fsm.active(ta));
  d.output("in_b", fsm.active(tb));
  Simulator sim(d);
  sim.poke("a", 1);
  sim.poke("b", 1);
  sim.step();
  EXPECT_EQ(sim.peek_u64("in_a"), 1u);
  EXPECT_EQ(sim.peek_u64("in_b"), 0u);
}

TEST(Fsm, AlwaysTransitionFiresUnconditionally) {
  Design d("seq");
  Fsm fsm(d, "s");
  const StateId a = fsm.state("a");
  const StateId b = fsm.state("b");
  const StateId c = fsm.state("c");
  fsm.always(a, b);
  fsm.always(b, c);
  fsm.always(c, a);
  fsm.build();
  d.output("enc", fsm.encoded());
  Simulator sim(d);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(sim.peek_u64("enc"), static_cast<std::uint64_t>(i % 3));
    sim.step();
  }
}

TEST(Fsm, InitialStateOverride) {
  Design d("init");
  Fsm fsm(d, "f");
  const StateId a = fsm.state("a");
  const StateId b = fsm.state("b");
  fsm.always(a, b);
  fsm.set_initial(b);
  fsm.build();
  d.output("in_b", fsm.active(b));
  Simulator sim(d);
  EXPECT_EQ(sim.peek_u64("in_b"), 1u);
  (void)a;
}

// A sequence detector for "1101" — the classic FSM exercise, checked
// against a software shift-register model.
TEST(Fsm, SequenceDetector1101) {
  Design d("det");
  const Wire bit = d.input("bit", 1);
  const Wire nbit = d.bnot(bit);
  Fsm fsm(d, "det");
  const StateId s0 = fsm.state("s0");   // nothing matched
  const StateId s1 = fsm.state("s1");   // "1"
  const StateId s11 = fsm.state("s11"); // "11"
  const StateId s110 = fsm.state("s110");
  fsm.transition(s0, s1, bit);
  fsm.transition(s1, s11, bit);
  fsm.transition(s11, s110, nbit);
  fsm.transition(s11, s11, bit);   // stay on repeated 1s
  fsm.transition(s110, s1, bit);   // the final 1: emit + re-enter s1
  fsm.transition(s110, s0, nbit);
  fsm.transition(s1, s0, nbit);
  fsm.build();
  // Detection: we were in s110 and the bit is 1.
  d.output("hit", d.band(fsm.active(s110), bit));
  Simulator sim(d);

  const std::string stream = "110111010110101101101";
  int expected_hits = 0;
  int got_hits = 0;
  std::string window;
  for (const char ch : stream) {
    window.push_back(ch);
    if (window.size() >= 4 && window.substr(window.size() - 4) == "1101") {
      ++expected_hits;
    }
    sim.poke("bit", ch == '1' ? 1u : 0u);
    if (sim.peek_u64("hit") != 0) {
      // evaluated before the edge: hit is combinational on (state, bit)
    }
    got_hits += static_cast<int>(sim.peek_u64("hit"));
    sim.step();
  }
  EXPECT_EQ(got_hits, expected_hits);
}

TEST(Fsm, ApiMisuseThrows) {
  Design d("bad");
  Fsm fsm(d, "f");
  EXPECT_THROW(fsm.build(), util::Error);  // no states
  Fsm fsm2(d, "g");
  const StateId s = fsm2.state("s");
  EXPECT_THROW(fsm2.active(s), util::Error);  // not built
  const Wire two_bits = d.input("w2", 2);
  EXPECT_THROW(fsm2.transition(s, s, two_bits), util::Error);
  fsm2.always(s, s);
  fsm2.build();
  EXPECT_THROW(fsm2.state("late"), util::Error);
  EXPECT_THROW(fsm2.build(), util::Error);
}

}  // namespace
}  // namespace atlantis::chdl
