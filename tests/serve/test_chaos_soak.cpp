// Chaos soak over the self-healing supervisor: a storm of randomized
// faults — DMA stalls and aborts, configuration SEUs and CRC failures,
// whole-board drop-outs and service crashes — over a supervised crate
// with a spare must finish with every job's functional result intact
// (the ledger digest equals the fault-free digest, deadline markers
// aside), every quarantined board re-admitted or its work drained, and
// the entire run bit-identical when the same FaultPlan replays.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "serve/jobservice.hpp"
#include "serve/supervisor.hpp"
#include "sim/fault.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis {
namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;
constexpr int kJobs = 450;

serve::JobSpec make_job(const std::string& tenant, const std::string& config,
                        int index, util::Picoseconds compute,
                        util::Picoseconds deadline = 0) {
  serve::JobSpec job;
  job.tenant = tenant;
  job.kind = serve::JobKind::kCustom;
  job.config = config;
  job.arrival = 0;
  job.deadline = deadline;
  job.work = [index, compute] {
    serve::JobOutcome out;
    out.checksum = kGolden * static_cast<std::uint64_t>(index + 1);
    out.compute_time = compute;
    out.dma_in_bytes = 2048;
    out.dma_out_bytes = 512;
    return out;
  };
  return job;
}

void submit_storm_mix(serve::JobService& s) {
  for (int i = 0; i < kJobs; ++i) {
    const std::string tenant =
        i % 3 == 0 ? "atlas" : (i % 3 == 1 ? "cms" : "lhcb");
    const std::string config = (i % 2 == 0) ? "alpha" : "beta";
    // A sprinkling of deadlines: misses are legal under the storm, lost
    // results are not.
    const util::Picoseconds deadline =
        (i % 7 == 0) ? 50 * util::kMillisecond : 0;
    (void)s.submit(make_job(tenant, config, i,
                            (i % 5 + 1) * util::kMicrosecond, deadline))
        .value();
  }
}

sim::FaultPlan storm_plan(std::uint64_t seed) {
  sim::FaultPlan plan;
  plan.seed = seed;
  plan.with_rate(sim::FaultKind::kDmaStall, 0.35)
      .with_rate(sim::FaultKind::kDmaAbort, 0.20)
      .with_rate(sim::FaultKind::kSeuConfig, 0.50)
      .with_rate(sim::FaultKind::kConfigCrc, 0.30)
      .with_rate(sim::FaultKind::kBoardDropout, 0.03)
      .with_rate(sim::FaultKind::kServiceCrash, 0.04);
  return plan;
}

serve::ServeOptions storm_options() {
  serve::ServeOptions options;
  options.policy = serve::Policy::kPreemptive;
  options.preempt_slice = util::kMillisecond;
  options.max_queued_per_tenant = kJobs;
  return options;
}

serve::SupervisorOptions supervision() {
  serve::SupervisorOptions options;
  options.dispatches_per_tick = 2;
  options.checkpoint_every = 4;
  options.repair_after = 3;
  options.max_job_retries = 100000;  // rescue everything the storm breaks
  return options;
}

/// A supervised crate plus the spare crate it drains to.
struct ChaosWorld {
  std::unique_ptr<sim::FaultInjector> injector;
  core::AtlantisSystem sys;
  core::AtlantisSystem spare_sys;
  std::unique_ptr<serve::JobService> service;
  std::unique_ptr<serve::JobService> spare;

  explicit ChaosWorld(const sim::FaultPlan* plan, int boards = 3)
      : sys("crate"), spare_sys("spare") {
    for (int i = 0; i < boards; ++i) sys.add_acb("acb" + std::to_string(i));
    spare_sys.add_acb("spare0");
    if (plan != nullptr) {
      injector = std::make_unique<sim::FaultInjector>(*plan);
      sys.set_fault_injector(injector.get());
    }
    service = std::make_unique<serve::JobService>(sys, storm_options());
    spare = std::make_unique<serve::JobService>(spare_sys, storm_options());
    for (serve::JobService* s : {service.get(), spare.get()}) {
      s->register_config(hw::Bitstream{"alpha", {}, nullptr, 1.0, {}});
      s->register_config(hw::Bitstream{"beta", {}, nullptr, 1.0, {}});
    }
  }

  ~ChaosWorld() { sys.set_fault_injector(nullptr); }

  /// Multiset of functional results across the crate and the spare —
  /// the digest the storm must preserve.
  std::multiset<std::uint64_t> served_checksums() const {
    std::multiset<std::uint64_t> sums;
    for (const serve::JobService* s : {service.get(), spare.get()}) {
      for (const serve::JobRecord& rec : s->jobs()) {
        if (rec.error == util::ErrorCode::kOk && !rec.migrated) {
          sums.insert(rec.outcome.checksum);
        }
      }
    }
    return sums;
  }
};

std::string serialize(const std::vector<serve::JobRecord>& records) {
  std::ostringstream os;
  for (const serve::JobRecord& r : records) {
    os << r.id << '|' << r.tenant << '|' << r.config << '|' << r.board << '|'
       << r.start << '|' << r.finish << '|' << r.preemptions << '|'
       << r.migrated << '|' << util::error_name(r.error) << '|'
       << r.outcome.checksum << '\n';
  }
  return os.str();
}

std::string serialize(const serve::SupervisorReport& r) {
  std::ostringstream os;
  os << r.ticks << '|' << r.checkpoints << '|' << r.crashes << '|'
     << r.restores << '|' << r.quarantines << '|' << r.readmissions << '|'
     << r.repairs << '|' << r.scrubs << '|' << r.job_retries << '|'
     << r.drained_jobs << '|' << r.downtime << '|' << r.mttr << '|'
     << r.recoveries << '|' << r.availability;
  return os.str();
}

struct SoakOutcome {
  std::string records;
  std::string spare_records;
  std::string report;
  std::multiset<std::uint64_t> checksums;
  std::size_t fault_events = 0;
  serve::SupervisorReport sup;
  std::vector<serve::BoardCondition> conditions;
  std::size_t pending = 0;
  bool active = false;
};

SoakOutcome soak(const sim::FaultPlan& plan) {
  ChaosWorld w{&plan};
  submit_storm_mix(*w.service);
  serve::Supervisor sup(*w.service, supervision());
  sup.set_spare(w.spare.get());
  sup.run();
  SoakOutcome out;
  out.records = serialize(w.service->jobs());
  out.spare_records = serialize(w.spare->jobs());
  out.report = serialize(sup.report());
  out.checksums = w.served_checksums();
  out.fault_events = w.injector->log().size();
  out.sup = sup.report();
  for (int i = 0; i < w.service->board_count(); ++i) {
    out.conditions.push_back(sup.board_condition(i));
  }
  out.pending = w.service->pending() + w.spare->pending();
  out.active = w.service->has_active_jobs();
  return out;
}

TEST(ChaosSoak, StormLosesNoJobsAndReplaysBitIdentically) {
  // Fault-free reference: every job served, its checksum the digest of
  // its index.
  ChaosWorld ref{nullptr};
  submit_storm_mix(*ref.service);
  ref.service->run();
  ASSERT_EQ(ref.service->report().served, static_cast<std::uint64_t>(kJobs));
  const std::multiset<std::uint64_t> want = ref.served_checksums();
  ASSERT_EQ(want.size(), static_cast<std::size_t>(kJobs));

  const sim::FaultPlan plan = storm_plan(20260808);
  const SoakOutcome a = soak(plan);

  // The storm was a storm.
  EXPECT_GE(a.fault_events, 1000u) << "tune storm_plan rates up";
  EXPECT_GT(a.sup.crashes, 0u);
  EXPECT_GT(a.sup.restores, 0u);
  EXPECT_GT(a.sup.quarantines, 0u);
  EXPECT_GT(a.sup.checkpoints, 0u);
  EXPECT_GT(a.sup.scrubs, 0u);

  // Zero lost jobs: the functional digest survives the storm exactly —
  // deadline misses are legal, missing or duplicated results are not.
  EXPECT_EQ(a.checksums, want);
  EXPECT_EQ(a.pending, 0u);
  EXPECT_FALSE(a.active);

  // Quarantine bookkeeping: every readmission consumed a prior
  // quarantine, and no board ends the run quarantined with work stuck
  // behind it (pending == 0 already guarantees the latter).
  EXPECT_GE(a.sup.quarantines, a.sup.readmissions);
  EXPECT_GE(a.sup.recoveries, a.sup.readmissions + a.sup.repairs);
  EXPECT_GT(a.sup.availability, 0.0);
  EXPECT_LT(a.sup.availability, 1.0);  // the storm cost board-time

  // Replay: the same plan reproduces the run bit-for-bit — ledger,
  // spare ledger, supervision counters, availability figures.
  const SoakOutcome b = soak(plan);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.spare_records, b.spare_records);
  EXPECT_EQ(a.report, b.report);

  // A different seed is a different storm (sanity that the plan seed
  // actually reaches the draws).
  sim::FaultPlan other = storm_plan(7);
  EXPECT_NE(a.report, soak(other).report);
}

TEST(ChaosSoak, TickInvariantsHoldUnderStormWithoutASpare) {
  // No spare: the disaster path must re-admit rather than drain, and
  // the supervisor's view of each board must track the service's.
  const sim::FaultPlan plan = storm_plan(99);
  ChaosWorld w{&plan};
  submit_storm_mix(*w.service);
  serve::Supervisor sup(*w.service, supervision());

  std::uint64_t guard = 0;
  while (w.service->pending() > 0 || w.service->has_active_jobs()) {
    sup.tick();
    ASSERT_LT(++guard, 200000u) << "soak failed to converge";
    for (int i = 0; i < w.service->board_count(); ++i) {
      const serve::BoardCondition c = sup.board_condition(i);
      const double health = sup.board_health(i);
      ASSERT_GE(health, 0.0);
      ASSERT_LE(health, 1.0);
      switch (c) {
        case serve::BoardCondition::kDead:
          ASSERT_TRUE(w.service->board_dead(i));
          break;
        case serve::BoardCondition::kQuarantined:
          ASSERT_TRUE(w.service->board_quarantined(i));
          ASSERT_FALSE(w.service->board_dead(i));
          break;
        case serve::BoardCondition::kActive:
        case serve::BoardCondition::kProbation:
          ASSERT_FALSE(w.service->board_dead(i));
          ASSERT_FALSE(w.service->board_quarantined(i));
          break;
      }
    }
  }

  // Everything served on the crate itself (no spare to lean on).
  std::multiset<std::uint64_t> want;
  for (int i = 0; i < kJobs; ++i) {
    want.insert(kGolden * static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(w.served_checksums(), want);
  EXPECT_GT(sup.report().ticks, 0u);
}

}  // namespace
}  // namespace atlantis
