// The cluster front-end's contracts: placement determinism across
// worker pools and shard iteration orders, elastic add/remove with the
// functional ledger preserved, replay-identical admission verdicts
// under a fault plan, weighted-fair QoS, SLO admission, bounded-queue
// backpressure and the whole-cluster snapshot round trip.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/cluster.hpp"
#include "serve/placement.hpp"
#include "sim/fault.hpp"
#include "util/units.hpp"
#include "util/worker_pool.hpp"

namespace atlantis {
namespace {

serve::JobSpec cluster_job(const std::string& tenant,
                           const std::string& config, int index,
                           util::Picoseconds arrival,
                           util::Picoseconds deadline = 0) {
  serve::JobSpec job;
  job.tenant = tenant;
  job.kind = serve::JobKind::kCustom;
  job.config = config;
  job.arrival = arrival;
  job.deadline = deadline;
  job.work = [index] {
    serve::JobOutcome out;
    out.checksum =
        0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1);
    out.compute_time = (index % 5 + 1) * util::kMicrosecond;
    out.dma_in_bytes = 1024u * static_cast<std::uint64_t>(index % 3 + 1);
    out.dma_out_bytes = 256;
    return out;
  };
  return job;
}

/// A fleet with `shards` crates and `configs` registered bitstreams
/// named cfg0..cfgN-1.
std::unique_ptr<serve::Cluster> make_cluster(int shards, int configs,
                                             serve::ClusterOptions options =
                                                 {}) {
  auto cluster = std::make_unique<serve::Cluster>(options);
  for (int s = 0; s < shards; ++s) cluster->add_shard();
  for (int c = 0; c < configs; ++c) {
    cluster->register_config(
        hw::Bitstream{"cfg" + std::to_string(c), {}, nullptr, 1.0, {}});
  }
  return cluster;
}

void submit_wave(serve::Cluster& cluster, int jobs, int configs,
                 int first_index = 0) {
  for (int i = 0; i < jobs; ++i) {
    const int idx = first_index + i;
    const std::string tenant = idx % 2 == 0 ? "atlas" : "cms";
    const std::string config = "cfg" + std::to_string(idx % configs);
    (void)cluster.submit(
        cluster_job(tenant, config, idx, idx * util::kMicrosecond));
  }
}

// --- determinism --------------------------------------------------------

TEST(Cluster, ScheduleBitIdenticalAcrossWorkerPools) {
  std::uint64_t reference = 0;
  for (const int threads : {1, 2, 4}) {
    auto cluster = make_cluster(3, 6);
    submit_wave(*cluster, 48, 6);
    util::WorkerPool pool(threads);
    serve::RunOptions options;
    options.pool = &pool;
    cluster->run(options);
    const std::uint64_t digest = cluster->schedule_digest();
    if (reference == 0) {
      reference = digest;
    } else {
      EXPECT_EQ(digest, reference)
          << "pool size " << threads << " changed the cluster schedule";
    }
  }
  EXPECT_NE(reference, 0u);
}

TEST(Cluster, ScheduleBitIdenticalAcrossShardIterationOrder) {
  auto forward = make_cluster(3, 6);
  auto reverse = make_cluster(3, 6);
  submit_wave(*forward, 48, 6);
  submit_wave(*reverse, 48, 6);

  forward->run();  // shard 0, 1, 2

  // Drain the twin's shards back to front: each crate has its own
  // timeline, so the visit order must not leak into any schedule.
  for (int s = reverse->shard_count() - 1; s >= 0; --s) {
    reverse->service(s).run();
  }

  EXPECT_EQ(forward->schedule_digest(), reverse->schedule_digest());
  EXPECT_EQ(forward->functional_digest(), reverse->functional_digest());
}

TEST(Cluster, ConsistentHashKeepsConfigurationsHome) {
  auto cluster = make_cluster(3, 6);
  submit_wave(*cluster, 48, 6);
  // Every job of one configuration must sit on one shard.
  std::map<std::string, int> home;
  for (const serve::ClusterRecord& rec : cluster->jobs()) {
    const auto it = home.find(rec.config);
    if (it == home.end()) {
      home[rec.config] = rec.shard;
    } else {
      EXPECT_EQ(it->second, rec.shard)
          << "config " << rec.config << " split across shards";
    }
  }
  cluster->run();
  EXPECT_EQ(cluster->report().served, 48u);
}

// --- elasticity ---------------------------------------------------------

TEST(Cluster, RemoveShardDrainsPendingAndPreservesFunctionalDigest) {
  auto stable = make_cluster(3, 6);
  auto elastic = make_cluster(3, 6);

  submit_wave(*stable, 30, 6);
  submit_wave(*elastic, 30, 6);
  stable->run();
  elastic->run();

  // Second wave lands, then a shard holding some of it retires: its
  // pending jobs must re-home via migrate_job, not fail.
  submit_wave(*stable, 30, 6, /*first_index=*/30);
  submit_wave(*elastic, 30, 6, /*first_index=*/30);
  int victim = -1;
  for (int s = 0; s < 3; ++s) {
    if (elastic->service(s).pending() > 0) victim = s;
  }
  ASSERT_GE(victim, 0);
  const std::size_t pending_before = elastic->pending();
  elastic->remove_shard(victim);
  EXPECT_TRUE(elastic->shard_retired(victim));
  EXPECT_EQ(elastic->shard_count(), 2);
  EXPECT_EQ(elastic->pending(), pending_before) << "drain lost jobs";
  EXPECT_GT(elastic->service(victim == 0 ? 1 : 0).pending(), 0u);

  stable->run();
  elastic->run();
  EXPECT_EQ(stable->report().served + stable->report().failed, 30u);
  EXPECT_EQ(elastic->report().served + elastic->report().failed, 30u);
  // The re-home moved work, never outcomes: the functional ledger is
  // identical with and without the topology change.
  EXPECT_EQ(stable->functional_digest(), elastic->functional_digest());
}

TEST(Cluster, AddShardJoinsTheRingWithConfigsReplayed) {
  auto cluster = make_cluster(2, 4);
  submit_wave(*cluster, 16, 4);
  cluster->run();
  const int added = cluster->add_shard();
  EXPECT_EQ(cluster->shard_count(), 3);
  // The new shard serves any registered configuration immediately.
  submit_wave(*cluster, 16, 4, /*first_index=*/16);
  cluster->run();
  EXPECT_EQ(cluster->report().served, 16u);
  (void)added;
}

// --- admission ----------------------------------------------------------

TEST(Cluster, AdmissionVerdictsReplayIdenticalUnderFaultPlan) {
  sim::FaultPlan plan;
  // Drop a board on shard 0 mid-run; the survivor absorbs the work.
  plan.inject(sim::FaultKind::kBoardDropout, "cluster/shard0/acb0",
              /*nth=*/2);

  const auto run_once = [&plan](std::vector<util::ErrorCode>& refusals,
                                std::uint64_t& digest) {
    serve::ClusterOptions options;
    options.max_pending_per_shard = 4;
    options.max_placement_attempts = 2;
    auto cluster = make_cluster(2, 2, options);
    sim::FaultInjector injector(plan);
    cluster->system(0).set_fault_injector(&injector);
    submit_wave(*cluster, 24, 2);  // well past 2 shards x 4 slots
    cluster->run();
    refusals = cluster->refusals();
    digest = cluster->schedule_digest();
    cluster->system(0).set_fault_injector(nullptr);
  };

  std::vector<util::ErrorCode> refusals_a, refusals_b;
  std::uint64_t digest_a = 0, digest_b = 0;
  run_once(refusals_a, digest_a);
  run_once(refusals_b, digest_b);
  EXPECT_FALSE(refusals_a.empty()) << "workload was sized to overload";
  EXPECT_EQ(refusals_a, refusals_b);
  EXPECT_EQ(digest_a, digest_b);
}

TEST(Cluster, WeightedFairShareCapsTheNoisyTenant) {
  serve::ClusterOptions options;
  options.max_pending_per_shard = 8;
  options.tenant_weights["noisy"] = 1.0;
  options.tenant_weights["quiet"] = 1.0;
  auto cluster = make_cluster(2, 2, options);

  // Equal weights over 2x8 slots: 8 each. The noisy tenant floods.
  std::uint64_t noisy_admitted = 0, noisy_rejected = 0;
  for (int i = 0; i < 16; ++i) {
    const util::Result<serve::JobId> r = cluster->submit(
        cluster_job("noisy", "cfg0", i, i * util::kMicrosecond));
    if (r.ok()) {
      ++noisy_admitted;
    } else {
      EXPECT_EQ(r.error(), util::ErrorCode::kAdmissionReject);
      ++noisy_rejected;
    }
  }
  EXPECT_EQ(noisy_admitted, 8u);
  EXPECT_EQ(noisy_rejected, 8u);
  // The quiet tenant's share is untouched by the noisy one's flood.
  const util::Result<serve::JobId> quiet =
      cluster->submit(cluster_job("quiet", "cfg1", 99, 0));
  EXPECT_TRUE(quiet.ok());
  cluster->run();
  EXPECT_EQ(cluster->report().rejected_admission, 8u);
}

TEST(Cluster, SloAdmissionRejectsUnreachableDeadlines) {
  serve::ClusterOptions options;
  options.max_pending_per_shard = 64;
  auto cluster = make_cluster(1, 1, options);

  // First window trains the per-shard service-time EWMA.
  submit_wave(*cluster, 8, 1);
  cluster->run();
  ASSERT_EQ(cluster->report().served, 8u);

  // Back up the queue, then ask for an impossible deadline: the
  // backlog estimate (queue depth x EWMA) refuses it at the door.
  submit_wave(*cluster, 8, 1, /*first_index=*/8);
  const util::Result<serve::JobId> tight = cluster->submit(
      cluster_job("rt", "cfg0", 99, 0, /*deadline=*/util::kNanosecond));
  ASSERT_FALSE(tight.ok());
  EXPECT_EQ(tight.error(), util::ErrorCode::kAdmissionReject);

  // A generous deadline sails through the same gate.
  const util::Result<serve::JobId> loose = cluster->submit(cluster_job(
      "rt", "cfg0", 100, 0, /*deadline=*/util::kSecond));
  EXPECT_TRUE(loose.ok());
  cluster->run();
}

TEST(Cluster, BoundedQueuesOverflowToTheSuccessorThenShed) {
  serve::ClusterOptions options;
  options.max_pending_per_shard = 2;
  options.max_placement_attempts = 2;
  options.fair_admission = false;  // isolate the backpressure path
  auto cluster = make_cluster(2, 1, options);

  // One configuration, so every job targets the same owner shard:
  // 2 fill the owner, 2 overflow to the ring successor, then shed.
  std::uint64_t admitted = 0, shed = 0;
  for (int i = 0; i < 6; ++i) {
    const util::Result<serve::JobId> r =
        cluster->submit(cluster_job("t", "cfg0", i, 0));
    if (r.ok()) {
      ++admitted;
    } else {
      EXPECT_EQ(r.error(), util::ErrorCode::kShardOverload);
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 4u);
  EXPECT_EQ(shed, 2u);
  cluster->run();
  EXPECT_EQ(cluster->report().overflowed, 2u);
  EXPECT_EQ(cluster->report().shed_overload, 2u);
  EXPECT_EQ(cluster->report().served, 4u);
}

// --- lifecycle and snapshots -------------------------------------------

TEST(Cluster, ResetScopesMatchTheFleetWideContract) {
  auto cluster = make_cluster(2, 2);
  submit_wave(*cluster, 8, 2);
  cluster->run();
  EXPECT_EQ(cluster->report().served, 8u);
  // Placement may home every configuration on one shard; sum the fleet.
  const auto fleet_elapsed = [&cluster] {
    util::Picoseconds total = 0;
    for (int s = 0; s < 2; ++s) {
      total += cluster->service(s).driver(0).elapsed();
    }
    return total;
  };
  EXPECT_GT(fleet_elapsed(), 0);

  cluster->reset(core::ResetScope::kStats);
  EXPECT_EQ(cluster->report().served, 0u);  // report cleared
  EXPECT_EQ(fleet_elapsed(), 0);            // epochs moved, fleet-wide
  // The ledger survives: reset re-zeroes accounting, not history.
  EXPECT_EQ(cluster->jobs().size(), 8u);
}

TEST(Cluster, SnapshotRoundTripIntoATwinFleet) {
  auto live = make_cluster(2, 4);
  submit_wave(*live, 20, 4);
  live->run();
  submit_wave(*live, 10, 4, /*first_index=*/20);  // pending at save

  sim::SnapshotWriter w;
  live->save_state(w);

  // The twin replays construction and the same submissions (work
  // functors are never serialized), then restores the cluster state.
  auto twin = make_cluster(2, 4);
  submit_wave(*twin, 20, 4);
  twin->run();
  submit_wave(*twin, 10, 4, /*first_index=*/20);
  util::Result<sim::SnapshotReader> r = sim::SnapshotReader::open(w.bytes());
  ASSERT_TRUE(r.ok()) << r.message();
  twin->load_state(r.value());

  live->run();
  twin->run();
  EXPECT_EQ(live->report().served, 10u);
  EXPECT_EQ(twin->report().served, 10u);
  EXPECT_EQ(live->schedule_digest(), twin->schedule_digest());
  EXPECT_EQ(live->functional_digest(), twin->functional_digest());
}

// --- the placement ring itself -----------------------------------------

TEST(HashRing, LookupIsStableAndSuccessorsAreDistinct) {
  serve::HashRing ring(64);
  ring.add_node(0, "shard0");
  ring.add_node(1, "shard1");
  ring.add_node(2, "shard2");
  EXPECT_EQ(ring.node_count(), 3);

  const int owner = ring.lookup("cfg42");
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ring.lookup("cfg42"), owner);
  }
  const std::vector<int> succ = ring.successors("cfg42", 3);
  ASSERT_EQ(succ.size(), 3u);
  EXPECT_EQ(succ[0], owner);
  EXPECT_NE(succ[1], succ[0]);
  EXPECT_NE(succ[2], succ[0]);
  EXPECT_NE(succ[2], succ[1]);
}

TEST(HashRing, RemovalOnlyRehomesTheRemovedNodesKeys) {
  serve::HashRing ring(64);
  ring.add_node(0, "shard0");
  ring.add_node(1, "shard1");
  ring.add_node(2, "shard2");

  std::map<std::string, int> before;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "cfg" + std::to_string(i);
    before[key] = ring.lookup(key);
  }
  ring.remove_node(1);
  for (const auto& [key, owner] : before) {
    if (owner != 1) {
      EXPECT_EQ(ring.lookup(key), owner)
          << "removing shard 1 re-homed " << key << " owned by " << owner;
    } else {
      EXPECT_NE(ring.lookup(key), 1);
    }
  }
}

}  // namespace
}  // namespace atlantis
