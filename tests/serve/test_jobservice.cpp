// The serving layer's contracts: scheduler determinism across worker
// pools, replay-identical fault runs, batching economics, admission
// control and graceful degradation.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "serve/jobservice.hpp"
#include "sim/fault.hpp"
#include "sim/timeline.hpp"
#include "util/units.hpp"
#include "util/worker_pool.hpp"

namespace atlantis {
namespace {

// Full serialization of a timeline: if two runs produce the same string,
// they produced the same schedule, transaction for transaction.
std::string serialize(const sim::Timeline& tl) {
  std::ostringstream os;
  for (const sim::Transaction& t : tl.transactions()) {
    os << sim::txn_kind_name(t.kind) << '|' << t.label << '|'
       << tl.track_name(t.track) << '|' << t.post << '|' << t.start << '|'
       << t.end << '|' << t.bytes << '\n';
  }
  return os.str();
}

std::string serialize(const std::vector<serve::JobRecord>& records) {
  std::ostringstream os;
  for (const serve::JobRecord& r : records) {
    os << r.id << '|' << r.tenant << '|' << r.config << '|' << r.board << '|'
       << r.arrival << '|' << r.start << '|' << r.finish << '|'
       << r.queue_wait << '|' << util::error_code_name(r.error) << '|'
       << r.outcome.checksum << '\n';
  }
  return os.str();
}

struct RunResult {
  std::string schedule;
  std::string records;
  std::string results;  // timing-free functional identity (region tests)
  std::vector<int> boards;  // per job, the board it ran on
  serve::ServiceReport report;
};

serve::JobSpec custom_job(const std::string& tenant,
                          const std::string& config, int index,
                          util::Picoseconds arrival) {
  serve::JobSpec job;
  job.tenant = tenant;
  job.kind = serve::JobKind::kCustom;
  job.config = config;
  job.arrival = arrival;
  job.work = [index] {
    serve::JobOutcome out;
    out.checksum = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1);
    out.compute_time = (index % 5 + 1) * util::kMicrosecond;
    out.dma_in_bytes = 1024u * static_cast<std::uint64_t>(index % 3 + 1);
    out.dma_out_bytes = 256;
    return out;
  };
  return job;
}

RunResult run_workload(int pool_threads, const sim::FaultPlan* plan = nullptr,
                       serve::ServeOptions options = {}, int board_count = 2) {
  std::unique_ptr<sim::FaultInjector> injector;
  core::AtlantisSystem sys("crate");
  for (int i = 0; i < board_count; ++i) {
    sys.add_acb("acb" + std::to_string(i));
  }
  if (plan != nullptr) {
    injector = std::make_unique<sim::FaultInjector>(*plan);
    sys.set_fault_injector(injector.get());
  }
  serve::JobService service(sys, options);
  service.register_config(hw::Bitstream{"alpha", {}, nullptr, 1.0, {}});
  service.register_config(hw::Bitstream{"beta", {}, nullptr, 1.0, {}});
  for (int i = 0; i < 24; ++i) {
    const std::string tenant =
        i % 3 == 0 ? "atlas" : (i % 3 == 1 ? "cms" : "lhcb");
    const std::string config = (i % 2 == 0) ? "alpha" : "beta";
    (void)service
        .submit(custom_job(tenant, config, i, i * util::kMicrosecond))
        .value();
  }
  util::WorkerPool pool(pool_threads);
  serve::RunOptions run_options;
  run_options.pool = &pool;
  service.run(run_options);
  RunResult rr;
  rr.schedule = serialize(sys.timeline());
  rr.records = serialize(service.jobs());
  for (const serve::JobRecord& rec : service.jobs()) {
    rr.boards.push_back(rec.board);
  }
  rr.report = service.report();
  sys.set_fault_injector(nullptr);
  return rr;
}

TEST(JobService, ScheduleBitIdenticalAcrossPoolSizes) {
  const RunResult one = run_workload(1);
  const RunResult two = run_workload(2);
  const RunResult eight = run_workload(8);
  EXPECT_EQ(one.schedule, two.schedule);
  EXPECT_EQ(one.schedule, eight.schedule);
  EXPECT_EQ(one.records, two.records);
  EXPECT_EQ(one.records, eight.records);
  EXPECT_EQ(one.report.served, 24u);
  EXPECT_EQ(one.report.failed, 0u);
  EXPECT_GT(one.report.batches, 0u);
}

TEST(JobService, DropoutRunIsReplayIdenticalAndDrainsTheBoard) {
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kBoardDropout, "board/acb1", /*nth=*/1);
  const RunResult a = run_workload(1, &plan);
  const RunResult b = run_workload(8, &plan);  // fresh injector, replay
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.records, b.records);
  // The dead board was drained: every job still served, all on acb0.
  EXPECT_EQ(a.report.served, 24u);
  EXPECT_EQ(a.report.failed, 0u);
  ASSERT_EQ(a.report.dead_boards.size(), 1u);
  EXPECT_EQ(a.report.dead_boards[0], 1);
  for (const int board : a.boards) EXPECT_EQ(board, 0);
}

TEST(JobService, BatchingAndCacheBeatReconfigurePerJob) {
  serve::ServeOptions naive;
  naive.max_batch = 1;
  naive.cache_capacity = 0;
  naive.fifo_order = true;  // alternating configs -> reconfig per job
  serve::ServeOptions batched;
  batched.max_batch = 8;
  batched.cache_capacity = 4;
  // One board: with two boards the alternating alpha/beta stream lands
  // even jobs on one board and odd jobs on the other, which is perfect
  // accidental affinity and hides the reconfiguration cost.
  const RunResult n = run_workload(1, nullptr, naive, /*board_count=*/1);
  const RunResult b = run_workload(1, nullptr, batched, /*board_count=*/1);
  EXPECT_EQ(n.report.served, 24u);
  EXPECT_EQ(b.report.served, 24u);
  EXPECT_LT(b.report.full_reconfigs, n.report.full_reconfigs);
  EXPECT_LT(b.report.reconfig_time, n.report.reconfig_time);
  EXPECT_LT(b.report.makespan, n.report.makespan);
  EXPECT_GT(b.report.jobs_per_second, n.report.jobs_per_second);
  EXPECT_GT(b.report.cache_hits + b.report.cache_misses, 0u);
}

TEST(JobService, AdmissionControlRefusesOverload) {
  core::AtlantisSystem sys("crate");
  sys.add_acb("acb0");
  serve::ServeOptions opt;
  opt.max_queued_per_tenant = 2;
  serve::JobService service(sys, opt);
  service.register_config(hw::Bitstream{"alpha", {}, nullptr, 1.0, {}});
  EXPECT_TRUE(service.submit(custom_job("greedy", "alpha", 0, 0)).ok());
  EXPECT_TRUE(service.submit(custom_job("greedy", "alpha", 1, 0)).ok());
  const util::Result<serve::JobId> refused =
      service.submit(custom_job("greedy", "alpha", 2, 0));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error(), util::ErrorCode::kOverloaded);
  // Other tenants are unaffected, and serving frees the quota.
  EXPECT_TRUE(service.submit(custom_job("modest", "alpha", 3, 0)).ok());
  service.run();
  EXPECT_TRUE(service.submit(custom_job("greedy", "alpha", 4, 0)).ok());
}

TEST(JobService, AllBoardsDeadFailsRemainingJobs) {
  core::AtlantisSystem sys("crate");
  sys.add_acb("acb0");
  serve::JobService service(sys);
  service.register_config(hw::Bitstream{"alpha", {}, nullptr, 1.0, {}});
  for (int i = 0; i < 3; ++i) {
    (void)service.submit(custom_job("t", "alpha", i, 0)).value();
  }
  sys.acb(0).set_alive(false);
  const serve::ServiceReport& rep = service.run();
  EXPECT_EQ(rep.served, 0u);
  EXPECT_EQ(rep.failed, 3u);
  for (const serve::JobRecord& rec : service.jobs()) {
    EXPECT_EQ(rec.error, util::ErrorCode::kBoardDead);
    EXPECT_EQ(rec.board, -1);
  }
}

TEST(JobService, TenantStatsAndQueueWaitTracks) {
  const RunResult rr = run_workload(2);
  ASSERT_EQ(rr.report.tenants.size(), 3u);
  EXPECT_EQ(rr.report.tenants[0].tenant, "atlas");  // sorted by name
  EXPECT_EQ(rr.report.tenants[1].tenant, "cms");
  EXPECT_EQ(rr.report.tenants[2].tenant, "lhcb");
  std::uint64_t jobs = 0;
  for (const serve::TenantStats& t : rr.report.tenants) {
    jobs += t.jobs;
    EXPECT_LE(t.p50_wait, t.p99_wait);
    EXPECT_LE(t.p99_wait, t.max_wait);
    EXPECT_GT(t.mean_service, 0);
  }
  EXPECT_EQ(jobs, 24u);
  // Queue waits were posted on per-tenant tracks.
  EXPECT_NE(rr.schedule.find("queue_wait"), std::string::npos);
  EXPECT_NE(rr.schedule.find("tenant/atlas"), std::string::npos);
}

TEST(JobService, SubmitUnknownConfigIsAdmissionReject) {
  core::AtlantisSystem sys("crate");
  sys.add_acb("acb0");
  serve::JobService service(sys);
  const util::Result<serve::JobId> r =
      service.submit(custom_job("t", "nope", 0, 0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), util::ErrorCode::kAdmissionReject);
  // Callers that want the old throwing behaviour spell it out.
  EXPECT_THROW((void)r.value_or_throw(), util::StateError);
}

// --- differential partial reconfiguration on the serve path ------------

/// Functional identity of a run: which job produced what, ignoring the
/// modelled timing (which the reconfiguration policy is supposed to
/// change).
std::string serialize_results(const std::vector<serve::JobRecord>& records) {
  std::ostringstream os;
  for (const serve::JobRecord& r : records) {
    os << r.id << '|' << r.tenant << '|' << r.config << '|' << r.board << '|'
       << util::error_code_name(r.error) << '|' << r.outcome.checksum << '\n';
  }
  return os.str();
}

/// Five configurations sharing a common base: each variant differs from
/// the base in four of the ORCA's 32 frames, so a switch between any
/// two of them is an 8-frame (or less) differential load instead of a
/// full 18.75 ms bitstream.
RunResult run_region_workload(int pool_threads, serve::ServeOptions options,
                              const sim::FaultPlan* plan = nullptr) {
  std::unique_ptr<sim::FaultInjector> injector;
  core::AtlantisSystem sys("crate");
  sys.add_acb("acb0");
  if (plan != nullptr) {
    injector = std::make_unique<sim::FaultInjector>(*plan);
    sys.set_fault_injector(injector.get());
  }
  serve::JobService service(sys, options);
  constexpr int kConfigs = 5;
  for (int c = 0; c < kConfigs; ++c) {
    hw::Bitstream bs{"cfg" + std::to_string(c), {}, nullptr, 1.0, {}};
    bs.region_sigs = hw::make_region_signatures("shared_base", 32);
    hw::stamp_regions(bs.region_sigs, bs.name, 4 * c, 4 * c + 4);
    service.register_config(bs);
  }
  for (int i = 0; i < 30; ++i) {
    const std::string tenant = i % 2 == 0 ? "atlas" : "cms";
    const std::string config = "cfg" + std::to_string(i % kConfigs);
    (void)service
        .submit(custom_job(tenant, config, i, i * util::kMicrosecond))
        .value();
  }
  util::WorkerPool pool(pool_threads);
  serve::RunOptions run_options;
  run_options.pool = &pool;
  service.run(run_options);
  RunResult rr;
  rr.schedule = serialize(sys.timeline());
  rr.records = serialize(service.jobs());
  for (const serve::JobRecord& rec : service.jobs()) {
    rr.boards.push_back(rec.board);
  }
  rr.report = service.report();
  rr.results = serialize_results(service.jobs());
  sys.set_fault_injector(nullptr);
  return rr;
}

TEST(JobService, DifferentialPathMatchesFullPathResults) {
  serve::ServeOptions full;
  full.max_batch = 4;
  full.cache_capacity = 2;  // 5 configs through 2 slots: misses guaranteed
  full.differential_reconfig = false;
  serve::ServeOptions diff = full;
  diff.differential_reconfig = true;

  const RunResult f = run_region_workload(1, full);
  const RunResult d = run_region_workload(1, diff);

  // Same jobs, same boards, same outcomes — bit-identical results.
  EXPECT_EQ(f.results, d.results);
  EXPECT_EQ(f.report.served, 30u);
  EXPECT_EQ(d.report.served, 30u);
  EXPECT_EQ(f.report.failed, d.report.failed);

  // But the differential runs paid frames, not bitstreams.
  EXPECT_EQ(f.report.partial_reconfigs, 0u);
  EXPECT_GT(d.report.partial_reconfigs, 0u);
  EXPECT_GT(d.report.regions_loaded, 0u);
  EXPECT_GT(d.report.partial_reconfig_time, 0);
  EXPECT_LE(d.report.partial_reconfig_time, d.report.reconfig_time);
  EXPECT_LT(d.report.reconfig_time, f.report.reconfig_time);
  EXPECT_LT(d.report.makespan, f.report.makespan);
}

TEST(JobService, DiffOrderPicksTheCheapestQueueDeterministically) {
  serve::ServeOptions opt;
  opt.max_batch = 4;
  opt.cache_capacity = 2;
  opt.diff_order = true;
  const RunResult one = run_region_workload(1, opt);
  const RunResult eight = run_region_workload(8, opt);
  EXPECT_EQ(one.schedule, eight.schedule);
  EXPECT_EQ(one.records, eight.records);
  EXPECT_EQ(one.report.served, 30u);
  EXPECT_GT(one.report.partial_reconfigs, 0u);

  // Ordering by config-diff distance never costs more reconfiguration
  // time than the fair round-robin on the same workload.
  serve::ServeOptions unordered = opt;
  unordered.diff_order = false;
  const RunResult rr = run_region_workload(1, unordered);
  EXPECT_EQ(rr.report.served, one.report.served);
  EXPECT_LE(one.report.reconfig_time, rr.report.reconfig_time);
}

TEST(JobService, DifferentialRunIsReplayIdenticalUnderFaults) {
  sim::FaultPlan plan;
  plan.seed = 11;
  plan.with_rate(sim::FaultKind::kConfigCrc, 0.1);
  serve::ServeOptions opt;
  opt.max_batch = 4;
  opt.cache_capacity = 2;
  const RunResult a = run_region_workload(1, opt, &plan);
  const RunResult b = run_region_workload(8, opt, &plan);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.report.served + a.report.failed, 30u);
}

}  // namespace
}  // namespace atlantis
