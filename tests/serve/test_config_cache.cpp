// The LRU bitstream/configuration cache: standalone behaviour and its
// integration into the TaskSwitcher (cache hits activate instead of
// reloading, and skip the CRC opportunity).
#include <gtest/gtest.h>

#include "core/configcache.hpp"
#include "core/system.hpp"
#include "core/taskswitch.hpp"
#include "hw/fpga.hpp"
#include "sim/fault.hpp"

namespace atlantis {
namespace {

TEST(ConfigCache, DisabledAtCapacityZero) {
  core::ConfigCache cache;
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.touch("a"));
  cache.insert("a");
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ConfigCache, LruEvictionOrder) {
  core::ConfigCache cache(2);
  cache.insert("a");
  cache.insert("b");
  cache.insert("c");  // evicts a, the least recently used
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_TRUE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  // Touch promotes: b becomes MRU, so inserting d evicts c.
  EXPECT_TRUE(cache.touch("b"));
  cache.insert("d");
  EXPECT_TRUE(cache.contains("b"));
  EXPECT_FALSE(cache.contains("c"));
  const std::vector<std::string> mru = cache.contents();
  ASSERT_EQ(mru.size(), 2u);
  EXPECT_EQ(mru[0], "d");
  EXPECT_EQ(mru[1], "b");
}

TEST(ConfigCache, StatsCountHitsMissesEvictions) {
  core::ConfigCache cache(2);
  EXPECT_FALSE(cache.touch("a"));  // miss
  cache.insert("a");
  EXPECT_TRUE(cache.touch("a"));   // hit
  EXPECT_FALSE(cache.touch("b"));  // miss
  cache.insert("b");
  cache.insert("c");  // evicts a
  EXPECT_TRUE(cache.touch("c"));   // hit
  const core::ConfigCacheStats& s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

class CachedSwitcherTest : public ::testing::Test {
 protected:
  CachedSwitcherTest()
      : device_("dev0", hw::orca_3t125()),
        alpha_{"alpha", {}, nullptr, 1.0},
        beta_{"beta", {}, nullptr, 1.0},
        gamma_{"gamma", {}, nullptr, 1.0} {}

  hw::FpgaDevice device_;
  hw::Bitstream alpha_, beta_, gamma_;
};

TEST_F(CachedSwitcherTest, CacheHitActivatesAtFraction) {
  core::TaskSwitcher sw(device_);
  sw.enable_cache(2, 1.0 / 64.0);
  sw.add_task(alpha_);
  sw.add_task(beta_);

  const util::Picoseconds full = sw.switch_to("alpha");  // full load, insert
  sw.switch_to("beta");                                  // full load, insert
  const util::Picoseconds hit = sw.switch_to("alpha");   // cache hit
  EXPECT_GT(full, 0);
  EXPECT_GT(hit, 0);
  // A hit costs the configured fraction of a full configuration, not a
  // full bitstream reload (beta is a full-device config too, so the full
  // reload time is comparable to `full`).
  EXPECT_LT(hit * 32, full);
  EXPECT_EQ(sw.cache_hits(), 1u);
  EXPECT_EQ(sw.cache_misses(), 2u);
  EXPECT_EQ(sw.current(), "alpha");
  EXPECT_TRUE(device_.configured());
}

TEST_F(CachedSwitcherTest, EvictionForcesFullReload) {
  core::TaskSwitcher sw(device_);
  sw.enable_cache(1);  // only the resident task stays staged
  sw.add_task(alpha_);
  sw.add_task(beta_);
  sw.switch_to("alpha");
  sw.switch_to("beta");   // evicts alpha
  sw.switch_to("alpha");  // miss again: full reload
  EXPECT_EQ(sw.cache_hits(), 0u);
  EXPECT_EQ(sw.cache_misses(), 3u);
  EXPECT_GE(sw.cache_stats().evictions, 1u);
}

TEST_F(CachedSwitcherTest, InvalidateDropsStagedConfigs) {
  core::TaskSwitcher sw(device_);
  sw.enable_cache(2);
  sw.add_task(alpha_);
  sw.add_task(beta_);
  sw.switch_to("alpha");
  sw.switch_to("beta");
  sw.invalidate_cache();  // board power loss
  sw.switch_to("alpha");  // must be a miss (full reload)
  EXPECT_EQ(sw.cache_hits(), 0u);
}

TEST_F(CachedSwitcherTest, CapacityZeroIsBitIdenticalToNoCache) {
  hw::FpgaDevice other("dev1", hw::orca_3t125());
  core::TaskSwitcher plain(other);
  plain.add_task(alpha_);
  plain.add_task(beta_);

  core::TaskSwitcher disabled(device_);
  disabled.enable_cache(0);
  disabled.add_task(alpha_);
  disabled.add_task(beta_);

  for (const char* name : {"alpha", "beta", "alpha", "beta"}) {
    EXPECT_EQ(plain.switch_to(name), disabled.switch_to(name));
  }
  EXPECT_EQ(disabled.cache_hits(), 0u);
  EXPECT_EQ(disabled.cache_misses(), 0u);
}

TEST_F(CachedSwitcherTest, CacheHitSkipsCrcOpportunity) {
  // A cache hit moves no configuration data, so it must NOT give the
  // injector a config-CRC opportunity; a full reload must.
  sim::FaultPlan plan;  // empty: we only count opportunities
  sim::FaultInjector inj(plan);
  device_.set_fault_injector(&inj);

  core::TaskSwitcher sw(device_);
  sw.enable_cache(2);
  sw.add_task(alpha_);
  sw.add_task(beta_);
  const std::string site = "fpga/" + device_.name();

  sw.switch_to("alpha");
  sw.switch_to("beta");
  const std::uint64_t before =
      inj.opportunities(sim::FaultKind::kConfigCrc, site);
  EXPECT_GT(before, 0u);
  sw.switch_to("alpha");  // cache hit
  EXPECT_EQ(inj.opportunities(sim::FaultKind::kConfigCrc, site), before);
  EXPECT_EQ(sw.cache_hits(), 1u);
  sw.invalidate_cache();
  sw.switch_to("beta");  // full reload: one more CRC opportunity
  EXPECT_GT(inj.opportunities(sim::FaultKind::kConfigCrc, site), before);
}

}  // namespace
}  // namespace atlantis
