// The serving layer's snapshot contracts: preemptive EDF scheduling
// beats the batched drain on deadline-heavy mixes, jobs checkpoint /
// restore / migrate between services without losing their functional
// outcome, and a service frozen mid-stream with save_state — fault
// plan and all — replays the identical tail when restored into a twin.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "serve/jobservice.hpp"
#include "sim/fault.hpp"
#include "sim/snapshot.hpp"
#include "sim/timeline.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis {
namespace {

std::string serialize(const sim::Timeline& tl) {
  std::ostringstream os;
  for (const sim::Transaction& t : tl.transactions()) {
    os << sim::txn_kind_name(t.kind) << '|' << t.label << '|'
       << tl.track_name(t.track) << '|' << t.post << '|' << t.start << '|'
       << t.end << '|' << t.bytes << '\n';
  }
  return os.str();
}

std::string serialize(const std::vector<serve::JobRecord>& records) {
  std::ostringstream os;
  for (const serve::JobRecord& r : records) {
    os << r.id << '|' << r.tenant << '|' << r.config << '|' << r.board << '|'
       << r.start << '|' << r.finish << '|' << r.preemptions << '|'
       << r.migrated << '|' << util::error_code_name(r.error) << '|'
       << r.outcome.checksum << '\n';
  }
  return os.str();
}

serve::JobSpec make_job(const std::string& tenant, const std::string& config,
                        int index, util::Picoseconds compute,
                        util::Picoseconds deadline = 0) {
  serve::JobSpec job;
  job.tenant = tenant;
  job.kind = serve::JobKind::kCustom;
  job.config = config;
  job.arrival = 0;
  job.deadline = deadline;
  job.work = [index, compute] {
    serve::JobOutcome out;
    out.checksum =
        0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1);
    out.compute_time = compute;
    out.dma_in_bytes = 1024;
    out.dma_out_bytes = 256;
    return out;
  };
  return job;
}

/// One self-contained crate + service, so twins are trivially
/// identically assembled.
struct World {
  std::unique_ptr<sim::FaultInjector> injector;
  core::AtlantisSystem sys;
  std::unique_ptr<serve::JobService> service;

  explicit World(serve::ServeOptions options, int boards = 1,
                 const sim::FaultPlan* plan = nullptr,
                 const std::string& crate = "crate")
      : sys(crate) {
    for (int i = 0; i < boards; ++i) sys.add_acb("acb" + std::to_string(i));
    if (plan != nullptr) {
      injector = std::make_unique<sim::FaultInjector>(*plan);
      sys.set_fault_injector(injector.get());
    }
    service = std::make_unique<serve::JobService>(sys, options);
    service->register_config(hw::Bitstream{"alpha", {}, nullptr, 1.0, {}});
  }

  ~World() { sys.set_fault_injector(nullptr); }
};

/// 2 long background jobs (no deadline) submitted first, then 8 short
/// jobs under a deadline that the batched drain cannot hold (the longs
/// run first) but slice preemption holds easily.
void submit_deadline_mix(serve::JobService& s) {
  const util::Picoseconds kLong = 30 * util::kMillisecond;
  const util::Picoseconds kShort = 100 * util::kMicrosecond;
  const util::Picoseconds kDeadline = 40 * util::kMillisecond;
  for (int i = 0; i < 2; ++i) {
    (void)s.submit(make_job("batch", "alpha", i, kLong)).value();
  }
  for (int i = 2; i < 10; ++i) {
    (void)s.submit(make_job("rt", "alpha", i, kShort, kDeadline)).value();
  }
}

/// The deadline mix, staged so the scheduler commits to the longs
/// before the deadline jobs exist: submit the longs, let one
/// scheduling step run (the batched policy completes the whole long
/// batch; the preemptive policies start a slice), then submit the
/// shorts and drain. This is what actually exercises preemption — with
/// everything queued up front, EDF would simply run the shorts first.
void run_staged_mix(serve::JobService& s) {
  const util::Picoseconds kLong = 30 * util::kMillisecond;
  const util::Picoseconds kShort = 100 * util::kMicrosecond;
  const util::Picoseconds kDeadline = 40 * util::kMillisecond;
  for (int i = 0; i < 2; ++i) {
    (void)s.submit(make_job("batch", "alpha", i, kLong)).value();
  }
  serve::RunOptions one_step;
  one_step.max_dispatches = 1;
  s.run(one_step);
  for (int i = 2; i < 10; ++i) {
    (void)s.submit(make_job("rt", "alpha", i, kShort, kDeadline)).value();
  }
  s.run();
}

serve::ServeOptions preemptive_options(
    serve::Policy policy = serve::Policy::kPreemptive) {
  serve::ServeOptions options;
  options.policy = policy;
  options.preempt_slice = util::kMillisecond;
  return options;
}

TEST(PreemptiveScheduling, BeatsBatchedOnDeadlineMisses) {
  World batched{serve::ServeOptions{}};
  run_staged_mix(*batched.service);

  World preemptive{preemptive_options()};
  run_staged_mix(*preemptive.service);

  // Batched committed to the whole long batch at the pause: the shorts
  // wait out both 30 ms longs and every 40 ms deadline is missed.
  EXPECT_EQ(batched.service->report().served, 8u);  // final run: the shorts
  EXPECT_EQ(batched.service->report().deadline_misses, 8u);
  EXPECT_EQ(batched.service->report().preemptions, 0u);
  // EDF with a 1 ms slice evicts the running long and holds every
  // deadline; the longs resume and still finish.
  EXPECT_EQ(preemptive.service->report().served, 10u);
  EXPECT_EQ(preemptive.service->report().deadline_misses, 0u);
  EXPECT_GT(preemptive.service->report().preemptions, 0u);
  // The work itself is policy-invariant.
  for (serve::JobId id = 0; id < 10; ++id) {
    EXPECT_EQ(batched.service->job(id).error, util::ErrorCode::kOk);
    EXPECT_EQ(batched.service->job(id).outcome.checksum,
              preemptive.service->job(id).outcome.checksum);
  }
}

TEST(PreemptiveScheduling, AbortRerunPaysRecomputation) {
  World resume{preemptive_options(serve::Policy::kPreemptive)};
  run_staged_mix(*resume.service);

  World rerun{preemptive_options(serve::Policy::kAbortRerun)};
  run_staged_mix(*rerun.service);

  EXPECT_EQ(rerun.service->report().served, 10u);
  EXPECT_GT(rerun.service->report().preemptions, 0u);
  // The evicted long restarts from scratch under abort/rerun but only
  // pays its remaining compute under checkpoint/resume.
  EXPECT_GT(rerun.service->report().makespan,
            resume.service->report().makespan);
  EXPECT_GT(resume.service->job(0).preemptions, 0u);
}

TEST(JobCheckpoint, RoundTripsOnTheSameService) {
  World world{preemptive_options()};
  submit_deadline_mix(*world.service);
  const std::size_t before = world.service->pending();

  auto ckpt = world.service->checkpoint_job(5);
  ASSERT_TRUE(ckpt.ok()) << ckpt.message();
  EXPECT_EQ(ckpt.value().id, 5u);
  EXPECT_EQ(ckpt.value().tenant, "rt");
  EXPECT_EQ(ckpt.value().config, "alpha");
  EXPECT_EQ(world.service->pending(), before - 1);
  // Already checkpointed out: not pending any more.
  EXPECT_EQ(world.service->checkpoint_job(5).error(),
            util::ErrorCode::kJobNotPending);

  auto revived = world.service->restore_job(ckpt.value());
  ASSERT_TRUE(revived.ok()) << revived.message();
  EXPECT_EQ(revived.value(), 5u);  // same service -> original id revived
  EXPECT_EQ(world.service->pending(), before);

  world.service->run();
  EXPECT_EQ(world.service->report().served, 10u);
  EXPECT_EQ(world.service->job(5).error, util::ErrorCode::kOk);
  EXPECT_EQ(world.service->job(5).outcome.checksum,
            0x9e3779b97f4a7c15ull * 6u);
}

TEST(JobCheckpoint, FinishedJobIsNotCheckpointable) {
  World world{serve::ServeOptions{}};
  submit_deadline_mix(*world.service);
  world.service->run();
  EXPECT_EQ(world.service->checkpoint_job(3).error(),
            util::ErrorCode::kJobNotPending);
}

TEST(JobMigration, MovesAPendingJobToAnotherService) {
  World src{preemptive_options(), 1, nullptr, "crateA"};
  World dst{preemptive_options(), 1, nullptr, "crateB"};
  submit_deadline_mix(*src.service);

  auto moved = src.service->migrate_job(7, *dst.service);
  ASSERT_TRUE(moved.ok()) << moved.message();
  EXPECT_TRUE(src.service->job(7).migrated);
  EXPECT_EQ(src.service->pending(), 9u);
  EXPECT_EQ(dst.service->pending(), 1u);

  src.service->run();
  dst.service->run();
  EXPECT_EQ(src.service->report().served, 9u);
  EXPECT_EQ(dst.service->report().served, 1u);
  // The outcome travelled inside the checkpoint — the target never saw
  // the work functor, yet serves the identical result.
  EXPECT_EQ(dst.service->job(moved.value()).outcome.checksum,
            0x9e3779b97f4a7c15ull * 8u);
}

TEST(JobMigration, DropoutDrainsThroughTheMigrationTarget) {
  sim::FaultPlan plan;
  plan.seed = 99;
  plan.inject(sim::FaultKind::kBoardDropout, "board/acb0", 1);

  World src{preemptive_options(), 1, &plan, "crateA"};
  World dst{preemptive_options(), 1, nullptr, "crateB"};
  src.service->set_migration_target(dst.service.get());
  submit_deadline_mix(*src.service);
  src.service->run();
  dst.service->run();

  // Nothing died with the board: every job either finished on the
  // source before the drop-out or was drained to the target.
  std::multiset<std::uint64_t> checksums;
  for (const auto& svc : {std::cref(*src.service), std::cref(*dst.service)}) {
    for (const serve::JobRecord& rec : svc.get().jobs()) {
      EXPECT_NE(rec.error, util::ErrorCode::kBoardDead)
          << "job " << rec.id << " on "
          << (&svc.get() == src.service.get() ? "src" : "dst");
      if (rec.error == util::ErrorCode::kOk && !rec.migrated) {
        checksums.insert(rec.outcome.checksum);
      }
    }
  }
  std::multiset<std::uint64_t> expected;
  for (int i = 0; i < 10; ++i) {
    expected.insert(0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(checksums, expected);
  EXPECT_GT(src.service->report().migrated, 0u);
  EXPECT_EQ(src.service->report().migrated + src.service->report().served,
            10u);
}

// --- mid-stream save/restore ---------------------------------------------

/// Shared workload for the replay tests: two configurations, three
/// tenants, a fault plan with recoverable faults and a board drop-out.
void submit_replay_mix(serve::JobService& s) {
  s.register_config(hw::Bitstream{"beta", {}, nullptr, 1.0, {}});
  for (int i = 0; i < 18; ++i) {
    const std::string tenant =
        i % 3 == 0 ? "atlas" : (i % 3 == 1 ? "cms" : "lhcb");
    const std::string config = (i % 2 == 0) ? "alpha" : "beta";
    (void)s.submit(make_job(tenant, config, i,
                            (i % 5 + 1) * util::kMicrosecond))
        .value();
  }
}

sim::FaultPlan replay_plan() {
  sim::FaultPlan plan;
  plan.seed = 20260808;
  plan.with_rate(sim::FaultKind::kDmaStall, 0.10);
  plan.inject(sim::FaultKind::kBoardDropout, "board/acb1", 2);
  return plan;
}

class MidStreamRestore : public ::testing::TestWithParam<serve::Policy> {};

TEST_P(MidStreamRestore, FaultPlanRunReplaysIdentically) {
  serve::ServeOptions options = preemptive_options(GetParam());

  // Reference: the same world runs to completion undisturbed.
  const sim::FaultPlan plan = replay_plan();
  World ref{options, 2, &plan, "crate"};
  submit_replay_mix(*ref.service);
  ref.service->run();
  const std::string want_records = serialize(ref.service->jobs());
  const std::string want_schedule = serialize(ref.sys.timeline());

  // Live: pause mid-stream, snapshot, continue — the pause must not
  // perturb the schedule.
  World live{options, 2, &plan, "crate"};
  submit_replay_mix(*live.service);
  serve::RunOptions three_steps;
  three_steps.max_dispatches = 3;
  live.service->run(three_steps);
  sim::SnapshotWriter w;
  live.service->save_state(w);
  const std::vector<std::uint8_t> bytes = w.bytes();
  live.service->run();
  EXPECT_EQ(serialize(live.service->jobs()), want_records);
  EXPECT_EQ(serialize(live.sys.timeline()), want_schedule);

  // Twin: identically assembled world restores the snapshot and runs
  // the tail — schedule, results and the fault tail all replay.
  World twin{options, 2, &plan, "crate"};
  submit_replay_mix(*twin.service);
  auto opened = sim::SnapshotReader::open(bytes);
  ASSERT_TRUE(opened.ok()) << opened.message();
  sim::SnapshotReader r = std::move(opened.value());
  twin.service->load_state(r);
  twin.service->run();
  EXPECT_EQ(serialize(twin.service->jobs()), want_records);
  EXPECT_EQ(serialize(twin.sys.timeline()), want_schedule);
  EXPECT_EQ(twin.injector->log(), live.injector->log());
}

INSTANTIATE_TEST_SUITE_P(Policies, MidStreamRestore,
                         ::testing::Values(serve::Policy::kBatched,
                                           serve::Policy::kPreemptive));

// --- checkpoint stream corruption fuzz -----------------------------------

TEST(JobCheckpointFuzz, EveryCorruptionIsRejectedAtomically) {
  World world{preemptive_options()};
  submit_deadline_mix(*world.service);
  auto taken = world.service->checkpoint_job(4);
  ASSERT_TRUE(taken.ok()) << taken.message();
  const serve::JobCheckpoint good = taken.value();
  ASSERT_GT(good.bytes.size(), 16u);
  const std::size_t pending = world.service->pending();
  const std::size_t ledger = world.service->jobs().size();

  auto expect_rejected = [&](const serve::JobCheckpoint& bad,
                             util::ErrorCode want, const std::string& what) {
    auto r = world.service->restore_job(bad);
    ASSERT_FALSE(r.ok()) << what;
    EXPECT_EQ(r.error(), want) << what;
    // Atomic rejection: nothing was admitted, no ledger entry appeared.
    EXPECT_EQ(world.service->pending(), pending) << what;
    EXPECT_EQ(world.service->jobs().size(), ledger) << what;
  };

  // Truncation at every possible length.
  for (std::size_t len = 0; len < good.bytes.size(); ++len) {
    serve::JobCheckpoint bad = good;
    bad.bytes.resize(len);
    expect_rejected(bad, util::ErrorCode::kSnapshotCorrupt,
                    "truncated to " + std::to_string(len) + " bytes");
  }

  // One flipped bit in every byte. Header layout (sim/snapshot.hpp):
  // magic u32 | major u16 | minor u16 | reserved u32. A corrupt magic or
  // major fails header validation; minor and reserved may legally
  // differ (forward compatibility); every byte from the first section
  // frame on is CRC-covered.
  for (std::size_t at = 0; at < good.bytes.size(); ++at) {
    if (at >= 6 && at < 12) continue;  // minor + reserved
    serve::JobCheckpoint bad = good;
    bad.bytes[at] ^= static_cast<std::uint8_t>(1u << (at % 8));
    const util::ErrorCode want = (at == 4 || at == 5)
                                     ? util::ErrorCode::kSnapshotVersion
                                     : util::ErrorCode::kSnapshotCorrupt;
    expect_rejected(bad, want, "bit flip at byte " + std::to_string(at));
  }

  // The intact stream still restores after the storm of rejections, so
  // no failed attempt left partial state behind.
  auto revived = world.service->restore_job(good);
  ASSERT_TRUE(revived.ok()) << revived.message();
  EXPECT_EQ(revived.value(), 4u);
  world.service->run();
  EXPECT_EQ(world.service->job(4).error, util::ErrorCode::kOk);
  EXPECT_EQ(world.service->job(4).outcome.checksum,
            0x9e3779b97f4a7c15ull * 5u);
}

TEST(ServiceSnapshot, LoadRejectsAMismatchedTwin) {
  World live{serve::ServeOptions{}};
  submit_deadline_mix(*live.service);
  sim::SnapshotWriter w;
  live.service->save_state(w);

  // Twin with a different submission history.
  World twin{serve::ServeOptions{}};
  (void)twin.service->submit(make_job("rt", "alpha", 0, util::kMicrosecond))
      .value();
  auto opened = sim::SnapshotReader::open(w.bytes());
  ASSERT_TRUE(opened.ok());
  sim::SnapshotReader r = std::move(opened.value());
  EXPECT_THROW(twin.service->load_state(r), util::StateError);
}

}  // namespace
}  // namespace atlantis
