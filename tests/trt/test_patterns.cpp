#include "trt/patterns.hpp"

#include <gtest/gtest.h>

namespace atlantis::trt {
namespace {

DetectorGeometry small_geo() {
  DetectorGeometry geo;
  geo.layers = 8;
  geo.straws_per_layer = 32;
  return geo;
}

TEST(PatternBank, ProducesRequestedCount) {
  // The paper's range: "from 240 to more than 2,400".
  const DetectorGeometry geo;
  for (const int n : {240, 1584, 2400}) {
    PatternBank bank(geo, n);
    EXPECT_EQ(bank.pattern_count(), n);
  }
}

TEST(PatternBank, PatternsAreDistinct) {
  PatternBank bank(small_geo(), 48);
  for (int a = 0; a < bank.pattern_count(); ++a) {
    for (int b = a + 1; b < bank.pattern_count(); ++b) {
      EXPECT_NE(bank.pattern_straws(a), bank.pattern_straws(b))
          << "patterns " << a << " and " << b;
    }
  }
}

TEST(PatternBank, InverseMappingIsConsistent) {
  PatternBank bank(small_geo(), 36);
  // pattern -> straws and straw -> patterns must describe the same
  // membership relation.
  for (int p = 0; p < bank.pattern_count(); ++p) {
    for (const std::int32_t s : bank.pattern_straws(p)) {
      const auto& back = bank.straw_patterns(s);
      EXPECT_NE(std::find(back.begin(), back.end(), p), back.end());
    }
  }
  std::int64_t from_patterns = 0;
  for (int p = 0; p < bank.pattern_count(); ++p) {
    from_patterns += static_cast<std::int64_t>(bank.pattern_straws(p).size());
  }
  std::int64_t from_straws = 0;
  for (int s = 0; s < small_geo().straw_count(); ++s) {
    from_straws += static_cast<std::int64_t>(bank.straw_patterns(s).size());
  }
  EXPECT_EQ(from_patterns, from_straws);
}

TEST(PatternBank, LutRowMatchesStrawPatterns) {
  PatternBank bank(small_geo(), 36);
  for (int s = 0; s < small_geo().straw_count(); ++s) {
    const chdl::BitVec row = bank.lut_row(s);
    EXPECT_EQ(row.width(), bank.pattern_count());
    EXPECT_EQ(row.popcount(),
              static_cast<int>(bank.straw_patterns(s).size()));
    for (const std::int32_t p : bank.straw_patterns(s)) {
      EXPECT_TRUE(row.bit(p));
    }
  }
}

TEST(PatternBank, LutSlicesTileTheRow) {
  PatternBank bank(small_geo(), 40);
  const std::int32_t s = 17;
  const chdl::BitVec full = bank.lut_row(s);
  const chdl::BitVec lo = bank.lut_row_slice(s, 0, 16);
  const chdl::BitVec mid = bank.lut_row_slice(s, 16, 16);
  const chdl::BitVec hi = bank.lut_row_slice(s, 32, 8);
  EXPECT_EQ(chdl::BitVec::concat(chdl::BitVec::concat(hi, mid), lo), full);
}

TEST(PatternBank, EveryPatternCrossesEveryLayer) {
  PatternBank bank(small_geo(), 24);
  for (int p = 0; p < bank.pattern_count(); ++p) {
    EXPECT_EQ(bank.pattern_straws(p).size(),
              static_cast<std::size_t>(small_geo().layers));
  }
}

TEST(PatternBank, MeanPatternsPerStrawMatchesTotals) {
  PatternBank bank(small_geo(), 24);
  const double expected =
      static_cast<double>(24 * small_geo().layers) /
      static_cast<double>(small_geo().straw_count());
  EXPECT_NEAR(bank.mean_patterns_per_straw(), expected, 1e-9);
}

TEST(PatternBank, LutBitsScaleWithPatterns) {
  const DetectorGeometry geo;
  PatternBank small(geo, 240);
  EXPECT_EQ(small.lut_bits(), 80'000ll * 240);
}

TEST(PatternBank, EmptyBankRejected) {
  EXPECT_THROW(PatternBank(small_geo(), 0), util::Error);
}

}  // namespace
}  // namespace atlantis::trt
