#include "trt/events.hpp"

#include <gtest/gtest.h>

namespace atlantis::trt {
namespace {

DetectorGeometry small_geo() {
  DetectorGeometry geo;
  geo.layers = 10;
  geo.straws_per_layer = 100;
  return geo;
}

TEST(Events, DeterministicFromSeed) {
  PatternBank bank(small_geo(), 60);
  EventGenerator g1(bank, EventParams{}, 99);
  EventGenerator g2(bank, EventParams{}, 99);
  const Event a = g1.generate();
  const Event b = g2.generate();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.true_tracks, b.true_tracks);
}

TEST(Events, HitListMatchesMask) {
  PatternBank bank(small_geo(), 60);
  EventGenerator gen(bank, EventParams{});
  const Event ev = gen.generate();
  std::size_t mask_hits = 0;
  for (std::size_t s = 0; s < ev.hit_mask.size(); ++s) {
    if (ev.hit_mask[s] != 0) {
      ++mask_hits;
      EXPECT_TRUE(std::binary_search(ev.hits.begin(), ev.hits.end(),
                                     static_cast<std::int32_t>(s)));
    }
  }
  EXPECT_EQ(ev.hits.size(), mask_hits);
}

TEST(Events, TrueTracksLightUpTheirStraws) {
  PatternBank bank(small_geo(), 60);
  EventParams p;
  p.straw_efficiency = 1.0;  // no losses: every track straw must fire
  p.noise_occupancy = 0.0;
  EventGenerator gen(bank, p);
  const Event ev = gen.generate();
  for (const std::int32_t t : ev.true_tracks) {
    for (const std::int32_t s : bank.pattern_straws(t)) {
      EXPECT_EQ(ev.hit_mask[static_cast<std::size_t>(s)], 1);
    }
  }
}

TEST(Events, NoiseOccupancyIsRespected) {
  PatternBank bank(small_geo(), 60);
  EventParams p;
  p.tracks = 0;
  p.noise_occupancy = 0.1;
  EventGenerator gen(bank, p);
  const Event ev = gen.generate();
  const double occupancy = static_cast<double>(ev.hits.size()) /
                           static_cast<double>(small_geo().straw_count());
  EXPECT_NEAR(occupancy, 0.1, 0.02);
  EXPECT_TRUE(ev.true_tracks.empty());
}

TEST(Events, ZeroNoiseZeroTracksIsEmpty) {
  PatternBank bank(small_geo(), 60);
  EventParams p;
  p.tracks = 0;
  p.noise_occupancy = 0.0;
  EventGenerator gen(bank, p);
  EXPECT_TRUE(gen.generate().hits.empty());
}

TEST(Events, TrueTracksAreSortedUnique) {
  PatternBank bank(small_geo(), 8);  // few patterns: duplicates likely
  EventParams p;
  p.tracks = 20;
  EventGenerator gen(bank, p);
  const Event ev = gen.generate();
  EXPECT_TRUE(std::is_sorted(ev.true_tracks.begin(), ev.true_tracks.end()));
  EXPECT_EQ(std::adjacent_find(ev.true_tracks.begin(), ev.true_tracks.end()),
            ev.true_tracks.end());
}

TEST(Events, ParamValidation) {
  PatternBank bank(small_geo(), 8);
  EventParams p;
  p.straw_efficiency = 0.0;
  EXPECT_THROW(EventGenerator(bank, p), util::Error);
  p = EventParams{};
  p.noise_occupancy = 1.0;
  EXPECT_THROW(EventGenerator(bank, p), util::Error);
  p = EventParams{};
  p.tracks = -1;
  EXPECT_THROW(EventGenerator(bank, p), util::Error);
}

TEST(Events, SuccessiveEventsDiffer) {
  PatternBank bank(small_geo(), 60);
  EventGenerator gen(bank, EventParams{});
  EXPECT_NE(gen.generate().hits, gen.generate().hits);
}

}  // namespace
}  // namespace atlantis::trt
