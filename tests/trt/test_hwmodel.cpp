#include "trt/hwmodel.hpp"

#include <gtest/gtest.h>

namespace atlantis::trt {
namespace {

DetectorGeometry small_geo() {
  DetectorGeometry geo;
  geo.layers = 10;
  geo.straws_per_layer = 100;
  return geo;
}

TEST(TrtHw, FunctionalResultMatchesReference) {
  PatternBank bank(small_geo(), 60);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  const TrtHwConfig cfg;
  EXPECT_EQ(histogram_atlantis(bank, ev, cfg).histogram.counts,
            histogram_reference(bank, ev).histogram.counts);
}

TEST(TrtHw, CycleFormula) {
  PatternBank bank(small_geo(), 352);  // exactly 2 passes at 176 bits
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  TrtHwConfig cfg;
  cfg.ram_width_bits = 176;
  cfg.pipeline_depth = 8;
  const TrtHwResult r = histogram_atlantis(bank, ev, cfg);
  EXPECT_DOUBLE_EQ(r.passes, 2.0);
  EXPECT_EQ(r.compute_cycles,
            static_cast<std::uint64_t>(small_geo().straw_count()) * 2 + 8 +
                352);
}

TEST(TrtHw, WiderMemoryIsFaster) {
  PatternBank bank(small_geo(), 1584);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  std::uint64_t prev = ~0ull;
  // 1..8 TRT modules: 176 -> 1408 bits, monotone speedup.
  for (int modules = 1; modules <= 8; modules *= 2) {
    TrtHwConfig cfg;
    cfg.ram_width_bits = 176 * modules;
    const TrtHwResult r = histogram_atlantis(bank, ev, cfg);
    EXPECT_LT(r.compute_cycles, prev);
    prev = r.compute_cycles;
  }
}

TEST(TrtHw, IdealPackingMatchesPaperExtrapolation) {
  PatternBank bank(small_geo(), 1584);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  TrtHwConfig honest;
  honest.ram_width_bits = 1408;
  TrtHwConfig ideal = honest;
  ideal.ideal_packing = true;
  const TrtHwResult rh = histogram_atlantis(bank, ev, honest);
  const TrtHwResult ri = histogram_atlantis(bank, ev, ideal);
  EXPECT_DOUBLE_EQ(rh.passes, 2.0);                  // ceil(1584/1408)
  EXPECT_NEAR(ri.passes, 1584.0 / 1408.0, 1e-12);    // linear model
  EXPECT_LT(ri.compute_cycles, rh.compute_cycles);
}

TEST(TrtHw, HitStreamingModeUsesOnlyHits) {
  PatternBank bank(small_geo(), 176);
  EventParams p;
  p.tracks = 2;
  p.noise_occupancy = 0.01;
  const Event ev = EventGenerator(bank, p).generate();
  TrtHwConfig full;
  TrtHwConfig hits = full;
  hits.stream_all_straws = false;
  const auto rf = histogram_atlantis(bank, ev, full);
  const auto rh = histogram_atlantis(bank, ev, hits);
  EXPECT_LT(rh.compute_cycles, rf.compute_cycles);
  EXPECT_EQ(rh.histogram.counts, rf.histogram.counts);
}

TEST(TrtHw, ClockScalesTime) {
  PatternBank bank(small_geo(), 176);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  TrtHwConfig slow;
  slow.clock_mhz = 20.0;
  TrtHwConfig fast;
  fast.clock_mhz = 40.0;
  const auto rs = histogram_atlantis(bank, ev, slow);
  const auto rf = histogram_atlantis(bank, ev, fast);
  EXPECT_EQ(rs.compute_cycles, rf.compute_cycles);
  EXPECT_NEAR(static_cast<double>(rs.compute_time),
              2.0 * static_cast<double>(rf.compute_time), 1e6);
}

TEST(TrtHw, DriverAddsIoTime) {
  PatternBank bank(small_geo(), 176);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  core::AtlantisSystem sys("crate");
  core::AtlantisDriver drv(sys, sys.add_acb("acb0"));
  TrtHwConfig cfg;
  const TrtHwResult r = histogram_atlantis(bank, ev, cfg, &drv);
  EXPECT_GT(r.io_in_time, 0);
  EXPECT_GT(r.readout_time, 0);
  EXPECT_EQ(r.total_time, r.io_in_time + r.compute_time + r.readout_time);
  EXPECT_EQ(drv.elapsed(), r.total_time);
}

TEST(TrtHw, ReadoutCanBeExcluded) {
  PatternBank bank(small_geo(), 176);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  TrtHwConfig with;
  TrtHwConfig without = with;
  without.include_readout = false;
  EXPECT_EQ(histogram_atlantis(bank, ev, with).compute_cycles,
            histogram_atlantis(bank, ev, without).compute_cycles + 176);
}

TEST(TrtHw, FullScaleReproducesPaperBallpark) {
  // The E2 anchor at full scale: 80k straws, 1584 patterns, 176-bit RAM,
  // 40 MHz -> ~18 ms compute (paper measured 19.2 ms incl. I/O).
  const DetectorGeometry geo;
  PatternBank bank(geo, 1584);
  EventParams p;
  p.tracks = 10;
  const Event ev = EventGenerator(bank, p).generate();
  TrtHwConfig cfg;
  const TrtHwResult r = histogram_atlantis(bank, ev, cfg);
  const double ms = util::ps_to_ms(r.compute_time);
  EXPECT_GT(ms, 15.0);
  EXPECT_LT(ms, 22.0);
}

}  // namespace
}  // namespace atlantis::trt
