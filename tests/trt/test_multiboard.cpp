#include "trt/multiboard.hpp"

#include <gtest/gtest.h>

namespace atlantis::trt {
namespace {

DetectorGeometry small_geo() {
  DetectorGeometry geo;
  geo.layers = 10;
  geo.straws_per_layer = 100;
  return geo;
}

core::AtlantisSystem make_system(int acbs) {
  core::AtlantisSystem sys("crate");
  for (int i = 0; i < acbs; ++i) sys.add_acb("acb" + std::to_string(i));
  sys.add_aib("aib0");
  return sys;
}

TEST(MultiBoard, FunctionallyIdenticalToReference) {
  PatternBank bank(small_geo(), 120);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto sys = make_system(2);
  const MultiBoardResult r =
      histogram_multiboard(bank, ev, MultiBoardConfig{}, sys);
  EXPECT_EQ(r.histogram.counts,
            histogram_reference(bank, ev).histogram.counts);
  EXPECT_EQ(r.patterns_per_board, 60);
}

TEST(MultiBoard, TwoBoardsBeatOne) {
  const DetectorGeometry geo;  // full scale: compute dominates
  PatternBank bank(geo, 1584);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto sys = make_system(2);
  MultiBoardConfig one;
  one.boards = 1;
  MultiBoardConfig two;
  two.boards = 2;
  const auto r1 = histogram_multiboard(bank, ev, one, sys);
  const auto r2 = histogram_multiboard(bank, ev, two, sys);
  EXPECT_LT(r2.compute_time, r1.compute_time);
  EXPECT_LT(r2.total_time, r1.total_time);
}

TEST(MultiBoard, BroadcastAndCollectDoNotShrink) {
  // The phases the paper's extrapolation ignores: fixed broadcast cost,
  // growing collection cost.
  const DetectorGeometry geo;
  PatternBank bank(geo, 1584);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto sys = make_system(3);
  MultiBoardConfig one;
  one.boards = 1;
  MultiBoardConfig three;
  three.boards = 3;
  const auto r1 = histogram_multiboard(bank, ev, one, sys);
  const auto r3 = histogram_multiboard(bank, ev, three, sys);
  EXPECT_GE(r3.broadcast_time, r1.broadcast_time);
  EXPECT_GT(r3.collect_time, 0);
  // Speedup is therefore sublinear in boards.
  const double speedup = static_cast<double>(r1.total_time) /
                         static_cast<double>(r3.total_time);
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 3.0);
}

TEST(MultiBoard, DetectorFedSkipsBroadcast) {
  PatternBank bank(small_geo(), 120);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto sys = make_system(2);
  MultiBoardConfig fed;
  fed.detector_fed = true;
  const auto r = histogram_multiboard(bank, ev, fed, sys);
  EXPECT_EQ(r.broadcast_time, 0);
  MultiBoardConfig host;
  const auto rh = histogram_multiboard(bank, ev, host, sys);
  EXPECT_GT(rh.broadcast_time, 0);
  EXPECT_LT(r.total_time, rh.total_time);
}

TEST(MultiBoard, SystemRequirementsChecked) {
  PatternBank bank(small_geo(), 120);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto small = make_system(1);
  MultiBoardConfig two;
  two.boards = 2;
  EXPECT_THROW(histogram_multiboard(bank, ev, two, small), util::Error);

  core::AtlantisSystem no_aib("crate");
  no_aib.add_acb("acb0");
  MultiBoardConfig one;
  one.boards = 1;
  EXPECT_THROW(histogram_multiboard(bank, ev, one, no_aib), util::Error);
}

}  // namespace
}  // namespace atlantis::trt
