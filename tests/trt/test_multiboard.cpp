#include "trt/multiboard.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/fault.hpp"
#include "util/worker_pool.hpp"

namespace atlantis::trt {
namespace {

DetectorGeometry small_geo() {
  DetectorGeometry geo;
  geo.layers = 10;
  geo.straws_per_layer = 100;
  return geo;
}

core::AtlantisSystem make_system(int acbs) {
  core::AtlantisSystem sys("crate");
  for (int i = 0; i < acbs; ++i) sys.add_acb("acb" + std::to_string(i));
  sys.add_aib("aib0");
  return sys;
}

TEST(MultiBoard, FunctionallyIdenticalToReference) {
  PatternBank bank(small_geo(), 120);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto sys = make_system(2);
  const MultiBoardResult r =
      histogram_multiboard(bank, ev, MultiBoardConfig{}, sys);
  EXPECT_EQ(r.histogram.counts,
            histogram_reference(bank, ev).histogram.counts);
  EXPECT_EQ(r.patterns_per_board, 60);
}

TEST(MultiBoard, TwoBoardsBeatOne) {
  const DetectorGeometry geo;  // full scale: compute dominates
  PatternBank bank(geo, 1584);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto sys = make_system(2);
  MultiBoardConfig one;
  one.boards = 1;
  MultiBoardConfig two;
  two.boards = 2;
  const auto r1 = histogram_multiboard(bank, ev, one, sys);
  const auto r2 = histogram_multiboard(bank, ev, two, sys);
  EXPECT_LT(r2.compute_time, r1.compute_time);
  EXPECT_LT(r2.total_time, r1.total_time);
}

TEST(MultiBoard, BroadcastAndCollectDoNotShrink) {
  // The phases the paper's extrapolation ignores: fixed broadcast cost,
  // growing collection cost.
  const DetectorGeometry geo;
  PatternBank bank(geo, 1584);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto sys = make_system(3);
  MultiBoardConfig one;
  one.boards = 1;
  MultiBoardConfig three;
  three.boards = 3;
  const auto r1 = histogram_multiboard(bank, ev, one, sys);
  const auto r3 = histogram_multiboard(bank, ev, three, sys);
  EXPECT_GE(r3.broadcast_time, r1.broadcast_time);
  EXPECT_GT(r3.collect_time, 0);
  // Speedup is therefore sublinear in boards.
  const double speedup = static_cast<double>(r1.total_time) /
                         static_cast<double>(r3.total_time);
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 3.0);
}

TEST(MultiBoard, DetectorFedSkipsBroadcast) {
  PatternBank bank(small_geo(), 120);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto sys = make_system(2);
  MultiBoardConfig fed;
  fed.detector_fed = true;
  const auto r = histogram_multiboard(bank, ev, fed, sys);
  EXPECT_EQ(r.broadcast_time, 0);
  MultiBoardConfig host;
  const auto rh = histogram_multiboard(bank, ev, host, sys);
  EXPECT_GT(rh.broadcast_time, 0);
  EXPECT_LT(r.total_time, rh.total_time);
}

TEST(MultiBoard, BoardDropoutDegradesButStaysCorrect) {
  PatternBank bank(small_geo(), 120);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto sys = make_system(2);
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kBoardDropout, "board/acb1", 1);
  sim::FaultInjector inj(plan);
  sys.set_fault_injector(&inj);
  const MultiBoardResult r =
      histogram_multiboard(bank, ev, MultiBoardConfig{}, sys);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.active_boards, 1);
  ASSERT_EQ(r.masked_boards.size(), 1u);
  EXPECT_EQ(r.masked_boards[0], "acb1");
  // The survivor absorbed the dead board's slice: the histogram is still
  // the full reference result, just with single-board parallelism.
  EXPECT_EQ(r.histogram.counts,
            histogram_reference(bank, ev).histogram.counts);
  EXPECT_EQ(r.patterns_per_board, 120);
  // A dead board stays masked on the next run too.
  const MultiBoardResult r2 =
      histogram_multiboard(bank, ev, MultiBoardConfig{}, sys);
  EXPECT_TRUE(r2.degraded);
  EXPECT_EQ(r2.active_boards, 1);
}

TEST(MultiBoard, AllBoardsDeadThrows) {
  PatternBank bank(small_geo(), 120);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto sys = make_system(2);
  sim::FaultPlan plan;
  plan.with_rate(sim::FaultKind::kBoardDropout, 1.0);
  sim::FaultInjector inj(plan);
  sys.set_fault_injector(&inj);
  EXPECT_THROW(histogram_multiboard(bank, ev, MultiBoardConfig{}, sys),
               util::Error);
}

TEST(MultiBoard, LderrBurstRetransmitsVisibleInResult) {
  PatternBank bank(small_geo(), 120);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto sys = make_system(2);
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kSlinkError, "slink/acb0/lvds", 1);
  sim::FaultInjector inj(plan);
  sys.set_fault_injector(&inj);
  MultiBoardConfig fed;
  fed.detector_fed = true;
  const MultiBoardResult r = histogram_multiboard(bank, ev, fed, sys);
  EXPECT_FALSE(r.degraded);  // a link error is recovered, not fatal
  EXPECT_EQ(r.slink_retransmits, 1u);
  EXPECT_GT(r.recovery_time, 0);
  EXPECT_EQ(r.histogram.counts,
            histogram_reference(bank, ev).histogram.counts);
  // Clean boards report no recovery.
  auto clean_sys = make_system(2);
  const MultiBoardResult rc = histogram_multiboard(bank, ev, fed, clean_sys);
  EXPECT_EQ(rc.slink_retransmits, 0u);
  EXPECT_EQ(rc.recovery_time, 0);
}

TEST(MultiBoard, FaultReplayInvariantAcrossPoolSizes) {
  // The determinism contract: fault draws happen on the scheduling
  // thread, so the same seeded plan gives bit-identical results no
  // matter how many workers histogram the slices.
  PatternBank bank(small_geo(), 120);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto run = [&](int threads) {
    auto sys = make_system(3);
    sim::FaultPlan plan;
    plan.seed = 77;
    plan.with_rate(sim::FaultKind::kSlinkError, 0.5);
    plan.inject(sim::FaultKind::kBoardDropout, "board/acb2", 2);
    sim::FaultInjector inj(plan);
    sys.set_fault_injector(&inj);
    util::WorkerPool pool(threads);
    MultiBoardConfig cfg;
    cfg.boards = 3;
    cfg.detector_fed = true;
    cfg.pool = &pool;
    std::vector<MultiBoardResult> runs;
    for (int i = 0; i < 3; ++i) {
      runs.push_back(histogram_multiboard(bank, ev, cfg, sys));
    }
    return std::make_pair(std::move(runs), inj.log());
  };
  const auto a = run(1);
  const auto b = run(4);
  ASSERT_EQ(a.first.size(), b.first.size());
  for (std::size_t i = 0; i < a.first.size(); ++i) {
    EXPECT_EQ(a.first[i].histogram.counts, b.first[i].histogram.counts);
    EXPECT_EQ(a.first[i].degraded, b.first[i].degraded);
    EXPECT_EQ(a.first[i].active_boards, b.first[i].active_boards);
    EXPECT_EQ(a.first[i].masked_boards, b.first[i].masked_boards);
    EXPECT_EQ(a.first[i].slink_retransmits, b.first[i].slink_retransmits);
    EXPECT_EQ(a.first[i].recovery_time, b.first[i].recovery_time);
    EXPECT_EQ(a.first[i].total_time, b.first[i].total_time);
  }
  EXPECT_EQ(a.second, b.second);  // identical fault logs, run for run
}

TEST(MultiBoard, SystemRequirementsChecked) {
  PatternBank bank(small_geo(), 120);
  const Event ev = EventGenerator(bank, EventParams{}).generate();
  auto small = make_system(1);
  MultiBoardConfig two;
  two.boards = 2;
  EXPECT_THROW(histogram_multiboard(bank, ev, two, small), util::Error);

  core::AtlantisSystem no_aib("crate");
  no_aib.add_acb("acb0");
  MultiBoardConfig one;
  one.boards = 1;
  EXPECT_THROW(histogram_multiboard(bank, ev, one, no_aib), util::Error);
}

}  // namespace
}  // namespace atlantis::trt
