#include "trt/histogram.hpp"

#include <gtest/gtest.h>

#include "trt/hwmodel.hpp"

namespace atlantis::trt {
namespace {

DetectorGeometry small_geo() {
  DetectorGeometry geo;
  geo.layers = 10;
  geo.straws_per_layer = 100;
  return geo;
}

TEST(Histogram, CountsMatchBruteForce) {
  PatternBank bank(small_geo(), 60);
  EventGenerator gen(bank, EventParams{});
  const Event ev = gen.generate();
  const ReferenceResult r = histogram_reference(bank, ev);
  // Brute force: for each pattern, count its hit straws.
  for (int p = 0; p < bank.pattern_count(); ++p) {
    int expected = 0;
    for (const std::int32_t s : bank.pattern_straws(p)) {
      if (ev.hit_mask[static_cast<std::size_t>(s)] != 0) ++expected;
    }
    EXPECT_EQ(r.histogram.counts[static_cast<std::size_t>(p)], expected);
  }
}

TEST(Histogram, DenseAndSparseAgree) {
  PatternBank bank(small_geo(), 60);
  EventGenerator gen(bank, EventParams{});
  const Event ev = gen.generate();
  EXPECT_EQ(histogram_reference(bank, ev).histogram.counts,
            histogram_reference_dense(bank, ev).histogram.counts);
}

TEST(Histogram, PerfectTracksReachFullLayerCount) {
  PatternBank bank(small_geo(), 60);
  EventParams p;
  p.straw_efficiency = 1.0;
  p.noise_occupancy = 0.0;
  EventGenerator gen(bank, p);
  const Event ev = gen.generate();
  const ReferenceResult r = histogram_reference(bank, ev);
  for (const std::int32_t t : ev.true_tracks) {
    EXPECT_EQ(r.histogram.counts[static_cast<std::size_t>(t)],
              small_geo().layers);
  }
}

TEST(Histogram, ThresholdSelectsTracks) {
  TrackHistogram h;
  h.counts = {3, 9, 5, 10, 0, 7};
  const auto found = h.tracks_above(7);
  EXPECT_EQ(found, (std::vector<std::int32_t>{1, 3, 5}));
  EXPECT_TRUE(h.tracks_above(11).empty());
  EXPECT_EQ(h.tracks_above(0).size(), 6u);
}

TEST(Histogram, TrackFinderRecoversPlantedTracks) {
  // The end-to-end trigger property: with realistic efficiency and low
  // noise, thresholding finds (nearly) all planted tracks with high
  // purity.
  PatternBank bank(small_geo(), 120);
  EventParams p;
  p.tracks = 6;
  p.straw_efficiency = 0.95;
  p.noise_occupancy = 0.02;
  EventGenerator gen(bank, p, 7);
  const int threshold = default_threshold(small_geo(), p.straw_efficiency);
  int total_true = 0, total_matched = 0, total_found = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Event ev = gen.generate();
    const ReferenceResult r = histogram_reference(bank, ev);
    const TrackFinderQuality q =
        score_tracks(ev, r.histogram.tracks_above(threshold));
    total_true += q.true_tracks;
    total_matched += q.matched;
    total_found += q.found_tracks;
  }
  EXPECT_GT(static_cast<double>(total_matched) / total_true, 0.9);
  EXPECT_GT(static_cast<double>(total_matched) / total_found, 0.6);
}

TEST(Histogram, ScoreTracksCountsMatches) {
  Event ev;
  ev.true_tracks = {2, 5, 9};
  const TrackFinderQuality q = score_tracks(ev, {1, 2, 9, 11});
  EXPECT_EQ(q.true_tracks, 3);
  EXPECT_EQ(q.found_tracks, 4);
  EXPECT_EQ(q.matched, 2);
  EXPECT_NEAR(q.efficiency(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.purity(), 0.5, 1e-12);
}

TEST(Histogram, OpCountScalesWithHits) {
  PatternBank bank(small_geo(), 60);
  EventParams quiet;
  quiet.tracks = 1;
  quiet.noise_occupancy = 0.0;
  EventParams busy;
  busy.tracks = 10;
  busy.noise_occupancy = 0.2;
  const Event small = EventGenerator(bank, quiet, 1).generate();
  const Event large = EventGenerator(bank, busy, 1).generate();
  EXPECT_LT(histogram_reference(bank, small).op_count,
            histogram_reference(bank, large).op_count);
}

TEST(Histogram, DefaultThresholdIsReasonable) {
  const int t = default_threshold(small_geo(), 0.95);
  EXPECT_GT(t, small_geo().layers / 2);
  EXPECT_LT(t, small_geo().layers);
}

}  // namespace
}  // namespace atlantis::trt
