// Gate-level integration: the CHDL TRT core must agree bit-for-bit with
// the software reference when the application drives it through the host
// interface — the paper's "no test bench" workflow, end to end.
#include "trt/trt_core.hpp"

#include <gtest/gtest.h>

#include "chdl/hostif.hpp"
#include "chdl/sim.hpp"
#include "chdl/stats.hpp"
#include "hw/fpga.hpp"
#include "trt/events.hpp"
#include "trt/histogram.hpp"

namespace atlantis::trt {
namespace {

DetectorGeometry tiny_geo() {
  DetectorGeometry geo;
  geo.layers = 6;
  geo.straws_per_layer = 16;
  return geo;
}

struct CoreFixture {
  CoreFixture()
      : bank(tiny_geo(), 12), design("trt_core"),
        layout(build_trt_core(design, bank)), sim(design), host(sim) {}

  void push_event(const Event& ev) {
    host.write(0x00, 0);  // clear
    for (const std::int32_t s : ev.hits) {
      host.write(0x01, static_cast<std::uint64_t>(s));
    }
    host.idle(2);  // drain the LUT/increment pipeline
  }

  std::vector<std::uint16_t> read_counters() {
    std::vector<std::uint16_t> counts;
    for (int p = 0; p < bank.pattern_count(); ++p) {
      counts.push_back(static_cast<std::uint16_t>(
          host.read(0x10 + static_cast<std::uint32_t>(p))));
    }
    return counts;
  }

  PatternBank bank;
  chdl::Design design;
  TrtCoreLayout layout;
  chdl::Simulator sim;
  chdl::HostInterface host;
};

TEST(TrtCore, MatchesReferenceBitForBit) {
  CoreFixture f;
  EventGenerator gen(f.bank, EventParams{.tracks = 3,
                                         .straw_efficiency = 0.9,
                                         .noise_occupancy = 0.05});
  for (int trial = 0; trial < 5; ++trial) {
    const Event ev = gen.generate();
    f.push_event(ev);
    const ReferenceResult ref = histogram_reference(f.bank, ev);
    EXPECT_EQ(f.read_counters(), ref.histogram.counts) << "trial " << trial;
  }
}

TEST(TrtCore, ClearZeroesCounters) {
  CoreFixture f;
  EventGenerator gen(f.bank, EventParams{});
  f.push_event(gen.generate());
  f.host.write(0x00, 0);
  for (const std::uint16_t c : f.read_counters()) {
    EXPECT_EQ(c, 0);
  }
}

TEST(TrtCore, ThresholdComparatorCountsTracks) {
  CoreFixture f;
  EventParams p;
  p.tracks = 2;
  p.straw_efficiency = 1.0;
  p.noise_occupancy = 0.0;
  EventGenerator gen(f.bank, p, 5);
  const Event ev = gen.generate();
  f.host.write(0x02, static_cast<std::uint64_t>(tiny_geo().layers));
  f.push_event(ev);
  const ReferenceResult ref = histogram_reference(f.bank, ev);
  const auto expected = ref.histogram.tracks_above(tiny_geo().layers);
  EXPECT_EQ(f.host.read(0x03), expected.size());
}

TEST(TrtCore, PatternCountReadable) {
  CoreFixture f;
  EXPECT_EQ(f.host.read(0x04), 12u);
}

TEST(TrtCore, OneStrawPerClock) {
  CoreFixture f;
  const std::uint64_t before = f.sim.cycles();
  for (int i = 0; i < 10; ++i) f.host.write(0x01, 0);
  // Each push is exactly one clock of the design (plus none hidden).
  EXPECT_EQ(f.sim.cycles() - before, 10u);
}

TEST(TrtCore, RepeatedStrawIncrementsTwice) {
  CoreFixture f;
  const std::int32_t straw = f.bank.pattern_straws(0).front();
  f.host.write(0x00, 0);
  f.host.write(0x01, static_cast<std::uint64_t>(straw));
  f.host.write(0x01, static_cast<std::uint64_t>(straw));
  f.host.idle(2);
  const auto counts = f.read_counters();
  for (const std::int32_t p : f.bank.straw_patterns(straw)) {
    EXPECT_EQ(counts[static_cast<std::size_t>(p)], 2);
  }
}

TEST(TrtCore, ReadoutFsmDrainsHistogram) {
  CoreFixture f;
  EventGenerator gen(f.bank, EventParams{});
  const Event ev = gen.generate();
  f.push_event(ev);
  const ReferenceResult ref = histogram_reference(f.bank, ev);

  EXPECT_EQ(f.host.read(0x08), 0u);  // acquire
  f.host.write(0x05, 0);             // start the scan
  EXPECT_EQ(f.host.read(0x08), 1u);  // scanning
  std::vector<std::uint16_t> drained;
  for (int p = 0; p < f.bank.pattern_count(); ++p) {
    EXPECT_EQ(f.host.read(0x07), static_cast<std::uint64_t>(p));
    drained.push_back(static_cast<std::uint16_t>(f.host.read(0x06)));
    f.host.idle(1);
  }
  EXPECT_EQ(drained, ref.histogram.counts);
  EXPECT_EQ(f.host.read(0x08), 2u);  // done
  // Clear re-arms acquisition.
  f.host.write(0x00, 0);
  EXPECT_EQ(f.host.read(0x08), 0u);
}

TEST(TrtCore, ScanAbortsOnClear) {
  CoreFixture f;
  f.host.write(0x05, 0);
  EXPECT_EQ(f.host.read(0x08), 1u);
  f.host.write(0x00, 0);
  EXPECT_EQ(f.host.read(0x08), 0u);
  EXPECT_EQ(f.host.read(0x07), 0u);  // index reset
}

TEST(TrtCore, FitsInOneOrca) {
  // The A4 claim in miniature: the generated netlist passes the ORCA
  // capacity check.
  CoreFixture f;
  const chdl::NetlistStats stats = chdl::analyze(f.design);
  EXPECT_GT(stats.gate_equivalents, 0);
  hw::FpgaDevice dev("orca", hw::orca_3t125());
  EXPECT_NO_THROW(dev.configure(hw::Bitstream::from_design(f.design)));
}

TEST(TrtCore, RejectsUnreasonableConfigs) {
  PatternBank bank(tiny_geo(), 12);
  chdl::Design d("bad");
  EXPECT_THROW(build_trt_core(d, bank, 2), util::Error);   // counters
  chdl::Design d2("bad2");
  EXPECT_THROW(build_trt_core(d2, bank, 20), util::Error);
}

}  // namespace
}  // namespace atlantis::trt
