#include "trt/slink_frontend.hpp"

#include <gtest/gtest.h>

namespace atlantis::trt {
namespace {

DetectorGeometry small_geo() {
  DetectorGeometry geo;
  geo.layers = 10;
  geo.straws_per_layer = 100;
  return geo;
}

TEST(SlinkFrontend, EventRoundtrip) {
  PatternBank bank(small_geo(), 60);
  EventGenerator gen(bank, EventParams{});
  const Event ev = gen.generate();
  hw::SlinkChannel link("det0", 1 << 16);
  const std::size_t sent = send_event(link, ev, 0x42);
  EXPECT_EQ(sent, ev.hits.size() + 2);
  const auto got = receive_event(link);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first, 0x42u);
  EXPECT_EQ(got->second, ev.hits);
}

TEST(SlinkFrontend, MultipleEventsStayFramed) {
  PatternBank bank(small_geo(), 60);
  EventGenerator gen(bank, EventParams{});
  hw::SlinkChannel link("det0", 1 << 16);
  const Event a = gen.generate();
  const Event b = gen.generate();
  send_event(link, a, 1);
  send_event(link, b, 2);
  EXPECT_EQ(receive_event(link)->second, a.hits);
  const auto second = receive_event(link);
  EXPECT_EQ(second->first, 2u);
  EXPECT_EQ(second->second, b.hits);
  EXPECT_FALSE(receive_event(link).has_value());
}

TEST(SlinkFrontend, TruncatedFragmentDetected) {
  hw::SlinkChannel link("det0");
  link.send({hw::SlinkChannel::kBeginFragment | 7, true});
  link.send({123, false});
  EXPECT_THROW(receive_event(link), util::Error);
}

TEST(SlinkFrontend, StrayDataDetected) {
  hw::SlinkChannel link("det0");
  link.send({99, false});
  EXPECT_THROW(receive_event(link), util::Error);
}

TEST(SlinkFrontend, TriggerRateBudget) {
  // §3.1: up to 100 kHz repetition rate. A 2%-occupancy image of the
  // 80k-straw detector is ~1600 hit words per event; at 100 kHz that is
  // ~641 MB/s — four 40 MHz links, matching the AIB's four mezzanine
  // channels.
  const LinkBudget b = slink_budget(1600, 100.0);
  EXPECT_NEAR(b.mbps_needed, 640.8, 1.0);
  EXPECT_EQ(b.links_needed, 5);  // 4 links saturate at 640; 5th has margin
  EXPECT_TRUE(b.feasible(8));
  EXPECT_FALSE(b.feasible(4));
  // The 240-pattern low-luminosity configuration fits one link.
  const LinkBudget lite = slink_budget(300, 50.0);
  EXPECT_EQ(lite.links_needed, 1);
}

TEST(SlinkFrontend, BudgetValidation) {
  EXPECT_THROW(slink_budget(100, 0.0), util::Error);
  EXPECT_THROW(slink_budget(-1, 10.0), util::Error);
}

}  // namespace
}  // namespace atlantis::trt
