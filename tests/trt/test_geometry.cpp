#include "trt/geometry.hpp"

#include <gtest/gtest.h>

namespace atlantis::trt {
namespace {

TEST(Geometry, DefaultIs80kStraws) {
  const DetectorGeometry geo;
  // "The size of the detector image is 80,000 pixels."
  EXPECT_EQ(geo.straw_count(), 80'000);
}

TEST(Geometry, StrawIdsAreLayerMajor) {
  DetectorGeometry geo;
  geo.layers = 4;
  geo.straws_per_layer = 10;
  EXPECT_EQ(geo.straw_id(0, 0), 0);
  EXPECT_EQ(geo.straw_id(0, 9), 9);
  EXPECT_EQ(geo.straw_id(1, 0), 10);
  EXPECT_EQ(geo.straw_id(3, 9), 39);
  EXPECT_THROW(geo.straw_id(4, 0), util::Error);
}

TEST(Geometry, PositionsWrapAroundBarrel) {
  DetectorGeometry geo;
  geo.layers = 2;
  geo.straws_per_layer = 10;
  EXPECT_EQ(geo.straw_id(0, 12), 2);
  EXPECT_EQ(geo.straw_id(0, -1), 9);
  EXPECT_EQ(geo.straw_id(1, -11), 9 + 10);
}

TEST(Geometry, StraightTrackHasConstantSlopeSteps) {
  DetectorGeometry geo;
  geo.layers = 10;
  geo.straws_per_layer = 100;
  TrackParams t;
  t.phi = 5.0;
  t.slope = 2.0;
  const auto straws = track_straws(geo, t);
  ASSERT_EQ(straws.size(), 10u);
  for (int l = 0; l < 10; ++l) {
    EXPECT_EQ(straws[static_cast<std::size_t>(l)], l * 100 + 5 + 2 * l);
  }
}

TEST(Geometry, CurvedTrackBends) {
  DetectorGeometry geo;
  geo.layers = 10;
  geo.straws_per_layer = 1000;
  TrackParams straight{100.0, 1.0, 0.0};
  TrackParams curved{100.0, 1.0, 0.5};
  const auto s = track_straws(geo, straight);
  const auto c = track_straws(geo, curved);
  EXPECT_EQ(s[0], c[0]);  // same origin
  // The quadratic term pulls the curved track away monotonically.
  int diverging = 0;
  for (std::size_t l = 1; l < s.size(); ++l) {
    if (c[l] - s[l] > c[l - 1] - s[l - 1]) ++diverging;
  }
  EXPECT_GE(diverging, 8);
}

TEST(Geometry, TrackCrossesEachLayerOnce) {
  const DetectorGeometry geo;
  const auto straws = track_straws(geo, TrackParams{123.0, -1.5, 0.02});
  ASSERT_EQ(straws.size(), static_cast<std::size_t>(geo.layers));
  for (int l = 0; l < geo.layers; ++l) {
    const std::int32_t s = straws[static_cast<std::size_t>(l)];
    EXPECT_GE(s, l * geo.straws_per_layer);
    EXPECT_LT(s, (l + 1) * geo.straws_per_layer);
  }
}

}  // namespace
}  // namespace atlantis::trt
