#include "core/aib.hpp"

#include <gtest/gtest.h>

namespace atlantis::core {
namespace {

TEST(Aib, BoardShape) {
  AibBoard aib("aib0");
  EXPECT_EQ(AibBoard::kFpgaCount, 2);
  EXPECT_EQ(AibBoard::kChannelCount, 4);
  EXPECT_EQ(aib.fpga(0).family().name, "Virtex XCV600");
  EXPECT_THROW(aib.fpga(2), util::Error);
  EXPECT_THROW(aib.channel(4), util::Error);
}

TEST(Aib, ChannelBandwidthMatchesPaper) {
  // "The default capacity of any of the four channels is 32+4 bit data @
  // 66 MHz (or 264 MB/s ...)"; four channels ~ 1 GB/s.
  EXPECT_NEAR(AibChannel::peak_mbps(), 264.0, 0.1);
  AibBoard aib("aib0");
  EXPECT_NEAR(aib.total_io_mbps(), 1056.0, 0.5);
}

TEST(Aib, SteadyTrafficFlowsAtOfferedRate) {
  AibChannel ch("ch");
  ChannelTrafficParams p;
  p.burst_words = 256;
  p.gap_cycles = 256;      // 50% duty producer
  p.drain_period = 1;      // consumer always available
  p.drain_window = 1;
  p.cycles = 200'000;
  const ChannelTrafficResult r = ch.simulate(p);
  EXPECT_EQ(r.stalled_words, 0u);
  EXPECT_NEAR(r.sustained_mbps, r.offered_mbps, r.offered_mbps * 0.02);
}

TEST(Aib, TwoStageBufferSustainsBurstyDrain) {
  // The §2.2 claim: buffering in two stages provides sustained bandwidth
  // even at small block sizes. The consumer only drains in large
  // arbitration windows; the 32k FIFO alone overflows, the 1M SRAM
  // behind it absorbs the backlog.
  ChannelTrafficParams p;
  p.burst_words = 3584;
  p.gap_cycles = 1536;          // offered ~70% of link rate
  p.drain_period = 300'000;     // long arbitration cycle...
  p.drain_window = 240'000;     // ...with a 60k-cycle dead time: the
                                // backlog (~42k words) overflows the 32k
                                // FIFO but not the 1M SRAM
  p.cycles = 3'000'000;

  AibChannel ch1("one-stage");
  p.use_stage2 = false;
  const ChannelTrafficResult without = ch1.simulate(p);

  AibChannel ch2("two-stage");
  p.use_stage2 = true;
  const ChannelTrafficResult with = ch2.simulate(p);

  EXPECT_GT(without.stalled_words, 0u);
  EXPECT_LT(with.stalled_words, without.stalled_words / 4);
  EXPECT_GT(with.sustained_mbps, without.sustained_mbps);
  // The SRAM stage actually absorbed a backlog deeper than the FIFO.
  EXPECT_GT(with.sram_watermark, AibChannel::kFifoWords);
}

TEST(Aib, ConservationOfWords) {
  AibChannel ch("ch");
  ChannelTrafficParams p;
  p.burst_words = 100;
  p.gap_cycles = 100;
  p.drain_period = 4;
  p.drain_window = 2;
  p.cycles = 100'000;
  const ChannelTrafficResult r = ch.simulate(p);
  EXPECT_EQ(r.offered_words, r.accepted_words + r.stalled_words);
  EXPECT_LE(r.delivered_words, r.accepted_words);
}

TEST(Aib, InvalidTrafficParamsRejected) {
  AibChannel ch("ch");
  ChannelTrafficParams p;
  p.burst_words = 0;
  EXPECT_THROW(ch.simulate(p), util::Error);
  p.burst_words = 10;
  p.drain_period = 4;
  p.drain_window = 8;
  EXPECT_THROW(ch.simulate(p), util::Error);
}

}  // namespace
}  // namespace atlantis::core
