// Parallel stepping of the 2x2 FPGA matrix must be indistinguishable
// from serial stepping: identical neighbour-link traffic, identical RAM
// contents, identical port values. The four node designs exchange LFSR
// streams over the h/v links and fold what they receive into a RAM, so
// any ordering bug in the worker-pool barrier shows up as a diff.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/acb.hpp"
#include "core/system.hpp"
#include "hw/fpga.hpp"

namespace atlantis::core {
namespace {

using chdl::BitVec;
using chdl::Design;
using chdl::RegOpts;
using chdl::Wire;

/// One matrix node: a seeded 16-bit LFSR drives both link outputs, the
/// link inputs are latched into registers (the registered-link property
/// that makes per-edge exchange cycle-accurate) and mixed into a RAM.
Design make_node(int index) {
  Design d("node" + std::to_string(index));
  RegOpts seed;
  seed.init = BitVec(16, 0xACE1u + 0x111u * static_cast<unsigned>(index));
  const Wire q = d.reg_forward("lfsr", 16, seed);
  const Wire fb = d.bxor(d.bit(q, 0),
                         d.bxor(d.bit(q, 2), d.bxor(d.bit(q, 3), d.bit(q, 5))));
  d.reg_connect(q, d.concat({fb, d.slice(q, 1, 15)}));
  d.output("h_out", q);
  d.output("v_out", d.bnot(q));

  const Wire hr = d.reg("h_r", d.input("h_in", 16));
  const Wire vr = d.reg("v_r", d.input("v_in", 16));

  const int ram = d.add_ram("acc", 16, 16);
  const Wire addr = d.reg_forward("addr", 4);
  d.reg_connect(addr, d.add(addr, d.constant(4, 1)));
  d.ram_write(ram, addr, d.bxor(d.add(hr, vr), q), d.constant(1, 1));
  d.output("mix", d.bxor(hr, vr));
  return d;
}

struct MatrixRun {
  AcbMatrixReport report;
  std::vector<std::vector<BitVec>> ram;  // per FPGA, 16 words
  std::vector<std::uint64_t> mix;
  std::vector<std::uint64_t> pattern;
};

MatrixRun run_matrix(const std::vector<Design>& nodes, bool parallel) {
  AcbBoard board(parallel ? "acb_par" : "acb_ser");
  for (int i = 0; i < AcbBoard::kFpgaCount; ++i) {
    board.fpga(i).configure(
        hw::Bitstream::from_design(nodes[static_cast<std::size_t>(i)]));
  }
  MatrixRun r;
  r.report = board.step_matrix(200, parallel, /*record_trace=*/true);
  for (int i = 0; i < AcbBoard::kFpgaCount; ++i) {
    chdl::Simulator* sim = board.fpga(i).sim();
    std::vector<BitVec> words;
    for (std::int64_t a = 0; a < 16; ++a) words.push_back(sim->read_ram(0, a));
    r.ram.push_back(std::move(words));
    r.mix.push_back(sim->peek_u64("mix"));
    r.pattern.push_back(sim->peek_u64("h_out"));
  }
  return r;
}

TEST(AcbMatrix, ParallelSteppingMatchesSerial) {
  std::vector<Design> nodes;
  for (int i = 0; i < AcbBoard::kFpgaCount; ++i) nodes.push_back(make_node(i));

  const MatrixRun serial = run_matrix(nodes, false);
  const MatrixRun parallel = run_matrix(nodes, true);

  EXPECT_EQ(serial.report.sims, 4);
  EXPECT_EQ(serial.report.links, 8);  // 4 nodes x (h + v)
  EXPECT_EQ(serial.report.cycles, 200u);
  EXPECT_EQ(parallel.report.sims, serial.report.sims);
  EXPECT_EQ(parallel.report.links, serial.report.links);
  EXPECT_EQ(parallel.report.cycles, serial.report.cycles);

  // The link traffic is live (the LFSRs run), not a constant stream.
  ASSERT_FALSE(serial.report.trace.empty());
  EXPECT_NE(serial.report.trace.front().value,
            serial.report.trace.back().value);

  // Cycle-exact traffic equality, transfer by transfer.
  ASSERT_EQ(serial.report.trace.size(), parallel.report.trace.size());
  for (std::size_t k = 0; k < serial.report.trace.size(); ++k) {
    const AcbLinkTransfer& s = serial.report.trace[k];
    const AcbLinkTransfer& p = parallel.report.trace[k];
    EXPECT_EQ(s.cycle, p.cycle) << "transfer " << k;
    EXPECT_EQ(s.from, p.from) << "transfer " << k;
    EXPECT_EQ(s.to, p.to) << "transfer " << k;
    EXPECT_EQ(s.value, p.value) << "transfer " << k;
  }

  // Final architectural state: RAM images and port values.
  for (int i = 0; i < AcbBoard::kFpgaCount; ++i) {
    const auto fi = static_cast<std::size_t>(i);
    EXPECT_EQ(serial.mix[fi], parallel.mix[fi]) << "fpga " << i;
    EXPECT_EQ(serial.pattern[fi], parallel.pattern[fi]) << "fpga " << i;
    for (std::size_t a = 0; a < 16; ++a) {
      EXPECT_EQ(serial.ram[fi][a], parallel.ram[fi][a])
          << "fpga " << i << " RAM word " << a;
    }
  }
}

TEST(AcbMatrix, DiagonalPairHasNoLinks) {
  std::vector<Design> nodes;
  for (int i = 0; i < AcbBoard::kFpgaCount; ++i) nodes.push_back(make_node(i));
  AcbBoard board("acb_diag");
  board.fpga(0).configure(hw::Bitstream::from_design(nodes[0]));
  board.fpga(3).configure(hw::Bitstream::from_design(nodes[3]));
  const AcbMatrixReport r = board.step_matrix(5, /*parallel=*/true);
  EXPECT_EQ(r.sims, 2);
  EXPECT_EQ(r.links, 0);  // FPGAs 0 and 3 are not matrix neighbours
  EXPECT_EQ(r.cycles, 5u);
}

TEST(AcbMatrix, SystemStepsAllBoards) {
  std::vector<Design> nodes;
  for (int i = 0; i < AcbBoard::kFpgaCount; ++i) nodes.push_back(make_node(i));
  AtlantisSystem sys("crate");
  const int b0 = sys.add_acb("acb0");
  const int b1 = sys.add_acb("acb1");
  for (const int b : {b0, b1}) {
    for (int i = 0; i < AcbBoard::kFpgaCount; ++i) {
      sys.acb(b).fpga(i).configure(
          hw::Bitstream::from_design(nodes[static_cast<std::size_t>(i)]));
    }
  }
  // 10 cycles x 2 boards x 4 sims = 80 simulator edges.
  EXPECT_EQ(sys.step_acbs(10, /*parallel=*/true), 80u);
  EXPECT_EQ(sys.acb(b0).fpga(0).sim()->cycles(), 10u);
}

}  // namespace
}  // namespace atlantis::core
