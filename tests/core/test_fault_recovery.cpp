// End-to-end fault injection and recovery across the crate: driver DMA
// retry/backoff, task-switcher CRC retry and SEU scrub, self-test health
// counters, and the zero-cost-when-off contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/driver.hpp"
#include "core/selftest.hpp"
#include "core/taskswitch.hpp"
#include "sim/fault.hpp"

namespace atlantis::core {
namespace {

hw::Bitstream make_task(const std::string& name, double fraction) {
  hw::Bitstream bs;
  bs.name = name;
  bs.stats.design_name = name;
  bs.stats.gate_equivalents = 50'000;
  bs.fraction = fraction;
  return bs;
}

std::vector<std::string> txn_labels(const sim::Timeline& tl) {
  std::vector<std::string> labels;
  for (const auto& t : tl.transactions()) labels.push_back(t.label);
  return labels;
}

TEST(FaultRecovery, EmptyPlanIsBitIdenticalToNoInjector) {
  // The zero-cost-when-off contract: a bound injector whose plan can
  // never fire produces exactly the schedule of an unbound system —
  // same ledger, same transactions, same labels.
  auto run = [](sim::FaultInjector* inj) {
    AtlantisSystem sys("crate");
    AtlantisDriver drv(sys, sys.add_acb("acb0"));
    if (inj != nullptr) sys.set_fault_injector(inj);
    drv.dma_write(64 * util::kKiB);
    drv.dma_read(7 * util::kKiB);
    drv.advance_cycles(1000);
    return std::make_pair(drv.elapsed(), txn_labels(sys.timeline()));
  };
  const auto bare = run(nullptr);
  sim::FaultInjector idle{sim::FaultPlan{}};
  const auto bound = run(&idle);
  EXPECT_EQ(bare.first, bound.first);
  EXPECT_EQ(bare.second, bound.second);
  EXPECT_EQ(idle.injected_total(), 0u);
  EXPECT_GT(idle.opportunities(sim::FaultKind::kDmaStall, "pci/acb0"), 0u);
}

TEST(FaultRecovery, DriverRetriesStalledDma) {
  AtlantisSystem sys("crate");
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kDmaStall, "pci/acb0", 1);
  sim::FaultInjector inj(plan);
  sys.set_fault_injector(&inj);
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  const util::Result<hw::DmaTransfer> r = drv.try_dma_write(64 * util::kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(drv.dma_faults(), 1u);
  EXPECT_EQ(drv.dma_retries(), 1u);
  // Recovery = the watchdog that reaped the stall plus the first backoff,
  // both visible in the ledger and the recovery account.
  const sim::RetryPolicy& p = drv.retry_policy();
  EXPECT_EQ(drv.recovery_time(), p.stall_watchdog + p.backoff(1));
  EXPECT_EQ(drv.elapsed(),
            p.stall_watchdog + p.backoff(1) + r.value().duration);
  // The faulted attempt and the backoff are on the timeline.
  const auto labels = txn_labels(sys.timeline());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "dma_write (stall)"),
            labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "dma_write backoff"),
            labels.end());
  // ...and in the per-resource stats.
  const sim::ResourceStats st = sys.timeline().stats(sys.pci_segment());
  EXPECT_EQ(st.faults, 1u);
  EXPECT_EQ(st.retries, 1u);
  EXPECT_EQ(st.retry_time, p.stall_watchdog + p.backoff(1));
  // The lifetime byte counter only saw the successful attempt.
  EXPECT_EQ(drv.board().pci().total_bytes(), 64 * util::kKiB);
}

TEST(FaultRecovery, DriverGivesUpAfterAttemptBudget) {
  AtlantisSystem sys("crate");
  sim::FaultPlan plan;
  plan.with_rate(sim::FaultKind::kDmaAbort, 1.0);  // every attempt aborts
  sim::FaultInjector inj(plan);
  sys.set_fault_injector(&inj);
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  const util::Result<hw::DmaTransfer> r = drv.try_dma_read(util::kKiB);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), util::ErrorCode::kRetriesExhausted);
  EXPECT_EQ(drv.dma_faults(),
            static_cast<std::uint64_t>(drv.retry_policy().max_attempts));
  // The exception surface reports the same failure.
  EXPECT_THROW(drv.dma_read(util::kKiB), util::Error);
}

TEST(FaultRecovery, DriverTimesOutWithinBudget) {
  AtlantisSystem sys("crate");
  sim::FaultPlan plan;
  plan.with_rate(sim::FaultKind::kDmaStall, 1.0);
  sim::FaultInjector inj(plan);
  sys.set_fault_injector(&inj);
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  sim::RetryPolicy tight;
  tight.max_attempts = 100;
  tight.timeout_budget = tight.stall_watchdog;  // one watchdog, no room
  drv.set_retry_policy(tight);
  const util::Result<hw::DmaTransfer> r = drv.try_dma_write(util::kKiB);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), util::ErrorCode::kTimeout);
}

TEST(FaultRecovery, TaskSwitcherRetriesCrcFailure) {
  hw::FpgaDevice dev("orca", hw::orca_3t125());
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kConfigCrc, "fpga/orca", 1);
  sim::FaultInjector inj(plan);
  dev.set_fault_injector(&inj);
  TaskSwitcher sw(dev);
  sw.add_task(make_task("trt", 0.3));
  const util::Result<util::Picoseconds> r = sw.try_switch_to("trt");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(sw.current(), "trt");
  EXPECT_TRUE(dev.configured());
  EXPECT_EQ(sw.reconfig_retries(), 1u);
  EXPECT_EQ(dev.crc_failures(), 1u);
  // Two full configuration passes: the failed one and its repair.
  EXPECT_EQ(r.value(), 2 * dev.config_time(dev.family().config_bits));
}

TEST(FaultRecovery, TaskSwitcherGivesUpAfterAttemptBudget) {
  hw::FpgaDevice dev("orca", hw::orca_3t125());
  sim::FaultPlan plan;
  plan.with_rate(sim::FaultKind::kConfigCrc, 1.0);
  sim::FaultInjector inj(plan);
  dev.set_fault_injector(&inj);
  TaskSwitcher sw(dev);
  sw.add_task(make_task("trt", 0.3));
  const util::Result<util::Picoseconds> r = sw.try_switch_to("trt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), util::ErrorCode::kConfigCrc);
  EXPECT_FALSE(dev.configured());
  EXPECT_TRUE(sw.current().empty());
  EXPECT_THROW(sw.switch_to("trt"), util::Error);
}

TEST(FaultRecovery, ScrubRepairsConfigurationUpset) {
  hw::FpgaDevice dev("orca", hw::orca_3t125());
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kSeuConfig, "fpga/orca", 1);
  sim::FaultInjector inj(plan);
  dev.set_fault_injector(&inj);
  TaskSwitcher sw(dev);
  sw.add_task(make_task("trt", 0.3));
  sw.switch_to("trt");
  EXPECT_TRUE(sw.scrub());  // the scheduled upset, found and repaired
  EXPECT_EQ(sw.upsets_corrected(), 1u);
  EXPECT_EQ(dev.config_upsets(), 1u);
  EXPECT_FALSE(dev.upset_pending());
  EXPECT_FALSE(sw.scrub());  // clean window
  EXPECT_EQ(sw.scrub_count(), 2u);
  EXPECT_EQ(sw.current(), "trt");
}

TEST(FaultRecovery, SelfTestReportsHealthCounters) {
  AtlantisSystem sys("crate");
  sim::FaultPlan plan;
  plan.seed = 5;
  plan.with_rate(sim::FaultKind::kSeuMemory, 1.0);
  sim::FaultInjector inj(plan);
  sys.set_fault_injector(&inj);
  AcbBoard& board = sys.acb(sys.add_acb("acb0"));
  board.attach_memory(0, MemModule::make_trt("m0"));
  const SelfTestReport report = self_test_acb(board);
  EXPECT_TRUE(report.all_passed());  // every upset found and repaired
  EXPECT_GT(report.health.seu_flips, 0u);
  EXPECT_GT(report.health.total(), 0u);
  EXPECT_NE(report.to_string().find("health:"), std::string::npos);
  // A fault-free board reports a clean page (and no health line).
  AtlantisSystem clean_sys("crate2");
  AcbBoard& clean = clean_sys.acb(clean_sys.add_acb("acb0"));
  const SelfTestReport clean_report = self_test_acb(clean);
  EXPECT_EQ(clean_report.health.total(), 0u);
  EXPECT_EQ(clean_report.to_string().find("health:"), std::string::npos);
}

TEST(FaultRecovery, BackoffJitterIsDeterministicAndBounded) {
  sim::RetryPolicy p;
  // jitter = 0 (the default): the jittered overload is the plain one.
  EXPECT_EQ(p.backoff(2, sim::jitter_stream(1, "retry/acb0", 0)),
            p.backoff(2));
  p.jitter = 0.5;
  for (int retry = 1; retry <= 6; ++retry) {
    const util::Picoseconds base = p.backoff(retry);
    for (std::uint64_t ordinal = 0; ordinal < 8; ++ordinal) {
      const std::uint64_t s = sim::jitter_stream(42, "retry/acb0", ordinal);
      const util::Picoseconds wait = p.backoff(retry, s);
      EXPECT_LE(wait, base);
      EXPECT_GE(wait, base / 2);  // scale in (1 - jitter, 1]
      // Pure function of its inputs: replay is bit-identical.
      EXPECT_EQ(wait, p.backoff(retry, s));
    }
  }
  // Distinct seeds, sites and ordinals draw distinct words, so
  // concurrent retries desynchronize.
  EXPECT_NE(sim::jitter_stream(42, "retry/acb0", 3),
            sim::jitter_stream(42, "retry/acb1", 3));
  EXPECT_NE(sim::jitter_stream(42, "retry/acb0", 3),
            sim::jitter_stream(42, "retry/acb0", 4));
  EXPECT_NE(sim::jitter_stream(42, "retry/acb0", 3),
            sim::jitter_stream(43, "retry/acb0", 3));
}

TEST(FaultRecovery, JitteredDriverScheduleReplaysIdentically) {
  auto run = [](double jitter) {
    AtlantisSystem sys("crate");
    sim::FaultPlan plan;
    plan.seed = 42;
    plan.with_rate(sim::FaultKind::kDmaStall, 0.3)
        .with_rate(sim::FaultKind::kDmaAbort, 0.2);
    sim::FaultInjector inj(plan);
    sys.set_fault_injector(&inj);
    AtlantisDriver drv(sys, sys.add_acb("acb0"));
    sim::RetryPolicy p;
    p.jitter = jitter;
    drv.set_retry_policy(p);
    for (int i = 0; i < 20; ++i) {
      (void)drv.try_dma_write(util::kKiB * (1 + i % 4));
    }
    return std::make_tuple(drv.dma_faults(), drv.dma_retries(),
                           drv.recovery_time(), drv.elapsed(),
                           txn_labels(sys.timeline()));
  };
  const auto jittered = run(0.5);
  EXPECT_EQ(jittered, run(0.5));  // bit-identical replay, jitter and all
  const auto plain = run(0.0);
  // The jitter stream is separate from the fault streams: the same
  // faults fire either way, only the backoff waits shrink.
  EXPECT_EQ(std::get<0>(jittered), std::get<0>(plain));
  EXPECT_EQ(std::get<1>(jittered), std::get<1>(plain));
  EXPECT_GT(std::get<1>(jittered), 0u);
  EXPECT_LT(std::get<2>(jittered), std::get<2>(plain));
}

TEST(FaultRecovery, DeterministicReplayOfDriverSchedule) {
  // Same seed, same plan, same call sequence: the retry counters and the
  // complete transaction list replay bit-identically.
  auto run = [] {
    AtlantisSystem sys("crate");
    sim::FaultPlan plan;
    plan.seed = 42;
    plan.with_rate(sim::FaultKind::kDmaStall, 0.3)
        .with_rate(sim::FaultKind::kDmaAbort, 0.2);
    sim::FaultInjector inj(plan);
    sys.set_fault_injector(&inj);
    AtlantisDriver drv(sys, sys.add_acb("acb0"));
    for (int i = 0; i < 20; ++i) {
      (void)drv.try_dma_write(util::kKiB * (1 + i % 4));
    }
    return std::make_tuple(drv.dma_faults(), drv.dma_retries(),
                           drv.recovery_time(), drv.elapsed(),
                           txn_labels(sys.timeline()), inj.log());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<0>(a), 0u);  // the rates actually fired
}

}  // namespace
}  // namespace atlantis::core
