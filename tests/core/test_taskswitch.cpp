#include "core/taskswitch.hpp"

#include <gtest/gtest.h>

#include "chdl/builder.hpp"

namespace atlantis::core {
namespace {

hw::Bitstream make_task(const std::string& name, double fraction) {
  hw::Bitstream bs;
  bs.name = name;
  bs.stats.design_name = name;
  bs.stats.gate_equivalents = 50'000;
  bs.fraction = fraction;
  return bs;
}

TEST(TaskSwitcher, FirstActivationIsFullConfiguration) {
  hw::FpgaDevice dev("orca", hw::orca_3t125());
  TaskSwitcher sw(dev);
  sw.add_task(make_task("trt", 0.3));
  const util::Picoseconds t = sw.switch_to("trt");
  EXPECT_EQ(t, dev.config_time(dev.family().config_bits));
  EXPECT_EQ(sw.current(), "trt");
  EXPECT_EQ(sw.switch_count(), 1u);
}

TEST(TaskSwitcher, LaterSwitchesArePartialOnOrca) {
  hw::FpgaDevice dev("orca", hw::orca_3t125());
  TaskSwitcher sw(dev);
  sw.add_task(make_task("trt", 0.3));
  sw.add_task(make_task("conv", 0.3));
  const util::Picoseconds full = sw.switch_to("trt");
  const util::Picoseconds partial = sw.switch_to("conv");
  EXPECT_LT(partial, full / 2);
  EXPECT_EQ(sw.last_switch_time(), partial);
  EXPECT_EQ(sw.total_switch_time(), full + partial);
}

TEST(TaskSwitcher, VirtexAlwaysReconfiguresFully) {
  hw::FpgaDevice dev("virtex", hw::virtex_xcv600());
  TaskSwitcher sw(dev);
  sw.add_task(make_task("a", 0.3));
  sw.add_task(make_task("b", 0.3));
  const util::Picoseconds first = sw.switch_to("a");
  const util::Picoseconds second = sw.switch_to("b");
  EXPECT_EQ(first, second);  // no partial support: both are full loads
}

TEST(TaskSwitcher, SwitchToResidentTaskIsFree) {
  hw::FpgaDevice dev("orca", hw::orca_3t125());
  TaskSwitcher sw(dev);
  sw.add_task(make_task("trt", 0.5));
  sw.switch_to("trt");
  EXPECT_EQ(sw.switch_to("trt"), 0);
  EXPECT_EQ(sw.switch_count(), 1u);
}

TEST(TaskSwitcher, Validation) {
  hw::FpgaDevice dev("orca", hw::orca_3t125());
  TaskSwitcher sw(dev);
  EXPECT_THROW(sw.switch_to("ghost"), util::StateError);
  sw.add_task(make_task("trt", 0.5));
  EXPECT_THROW(sw.add_task(make_task("trt", 0.5)), util::Error);
  hw::Bitstream unnamed;
  EXPECT_THROW(sw.add_task(unnamed), util::Error);
}

}  // namespace
}  // namespace atlantis::core
