#include "core/acb.hpp"

#include <gtest/gtest.h>

#include "chdl/builder.hpp"

namespace atlantis::core {
namespace {

TEST(Acb, PortBudgetMatchesPaper) {
  // 2x72 neighbour + 72 I/O + 206 memory = 422 signals per FPGA.
  EXPECT_EQ(2 * AcbPortSpec::kNeighborLines + AcbPortSpec::kIoLines +
                AcbPortSpec::kMemoryLines,
            AcbPortSpec::kTotalIoSignals);
}

TEST(Acb, FourOrcasTotal744kGates) {
  AcbBoard acb("acb0");
  EXPECT_EQ(acb.total_gate_capacity(), 744'000);
  for (int i = 0; i < AcbBoard::kFpgaCount; ++i) {
    EXPECT_EQ(acb.fpga(i).family().name, "ORCA 3T125");
  }
  EXPECT_THROW(acb.fpga(4), util::Error);
}

TEST(Acb, IoRolesAssignedByPosition) {
  AcbBoard acb("acb0");
  EXPECT_EQ(acb.io_role(0), AcbIoRole::kHostPci);
  EXPECT_EQ(acb.io_role(1), AcbIoRole::kBackplaneA);
  EXPECT_EQ(acb.io_role(2), AcbIoRole::kBackplaneB);
  EXPECT_EQ(acb.io_role(3), AcbIoRole::kExternalLvds);
}

TEST(Acb, FourTrtModulesFill) {
  AcbBoard acb("acb0");
  for (int i = 0; i < 4; ++i) {
    acb.attach_memory(i, MemModule::make_trt("trt" + std::to_string(i)));
  }
  EXPECT_EQ(acb.free_mezzanine_slots(), 0);
  EXPECT_EQ(acb.total_memory_width_bits(), 4 * 176);
  ASSERT_NE(acb.memory_at(2), nullptr);
  EXPECT_EQ(acb.memory_at(2)->data_width_bits(), 176);
}

TEST(Acb, TripleWidthModuleConsumesThreeSlots) {
  AcbBoard acb("acb0");
  acb.attach_memory(0, MemModule::make_volren("vr"));
  EXPECT_EQ(acb.free_mezzanine_slots(), 1);
  // Another triple-width module cannot fit.
  EXPECT_THROW(acb.attach_memory(1, MemModule::make_volren("vr2")),
               util::CapacityError);
  // But a single-width one can.
  EXPECT_NO_THROW(acb.attach_memory(1, MemModule::make_trt("t")));
  EXPECT_EQ(acb.free_mezzanine_slots(), 0);
}

TEST(Acb, OneModulePerFpgaPort) {
  AcbBoard acb("acb0");
  acb.attach_memory(0, MemModule::make_trt("a"));
  EXPECT_THROW(acb.attach_memory(0, MemModule::make_trt("b")), util::Error);
}

TEST(Acb, ConfigureAllIsSequential) {
  AcbBoard acb("acb0");
  chdl::Design d("noop");
  d.output("q", chdl::counter(d, "c", 4, d.input("en", 1)));
  const hw::Bitstream bs = hw::Bitstream::from_design(d);
  const util::Picoseconds total = acb.configure_all(bs);
  EXPECT_EQ(total, 4 * acb.fpga(0).config_time(
                           acb.fpga(0).family().config_bits));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(acb.fpga(i).configured());
}

TEST(Acb, BackplaneBandwidthIsGigabytePerSecond) {
  AcbBoard acb("acb0");
  // 2 ports x 64 bit x 66 MHz = 1056 MB/s ("1 GB/s").
  EXPECT_NEAR(acb.backplane_mbps(), 1056.0, 1.0);
}

TEST(Acb, ClocksExistPerFpga) {
  AcbBoard acb("acb0");
  for (int i = 0; i < 4; ++i) {
    EXPECT_NO_THROW(acb.io_clock(i).set_mhz(66.0));
  }
  EXPECT_THROW(acb.io_clock(5), util::Error);
  acb.local_clock().set_mhz(40.0);
  EXPECT_DOUBLE_EQ(acb.local_clock().mhz(), 40.0);
}

}  // namespace
}  // namespace atlantis::core
