#include "core/driver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "chdl/builder.hpp"
#include "util/json.hpp"

namespace atlantis::core {
namespace {

// A host-accessible design: register 0 echoes, register 1 counts writes.
chdl::Design& echo_design() {
  static chdl::Design d = [] {
    chdl::Design dd("echo");
    chdl::HostRegFile hrf(dd);
    hrf.write_reg("r0", 0, 32);
    hrf.map_read(1, chdl::counter(dd, "writes", 16, hrf.we()));
    hrf.finish();
    return dd;
  }();
  return d;
}

TEST(Driver, TimeLedgerStartsAtZero) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  EXPECT_EQ(drv.elapsed(), 0);
}

TEST(Driver, ConfigureAdvancesLedger) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.configure(0, hw::Bitstream::from_design(echo_design()));
  // An ORCA full configuration is ~18.75 ms at 8 bit / 10 MHz.
  EXPECT_NEAR(util::ps_to_ms(drv.elapsed()), 18.75, 0.1);
  EXPECT_TRUE(drv.board().fpga(0).configured());
}

TEST(Driver, RegisterAccessReachesSimulatedDesign) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.configure(0, hw::Bitstream::from_design(echo_design()));
  drv.reset(core::ResetScope::kTime);
  drv.reg_write(0, 0, 0xBEEF);
  EXPECT_EQ(drv.reg_read(0, 0), 0xBEEFu);
  EXPECT_EQ(drv.reg_read(0, 1), 1u);  // one write seen by the fabric
  EXPECT_GT(drv.elapsed(), 0);        // target-mode accesses cost time
}

TEST(Driver, RegisterAccessWithoutSimStillCostsTime) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  EXPECT_EQ(drv.reg_read(0, 0), 0u);
  EXPECT_GT(drv.elapsed(), 0);
  EXPECT_EQ(drv.host_if(0), nullptr);
}

TEST(Driver, DmaAdvancesLedgerAndPciCounters) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  const hw::DmaTransfer w = drv.dma_write(64 * util::kKiB);
  const hw::DmaTransfer r = drv.dma_read(64 * util::kKiB);
  EXPECT_EQ(drv.elapsed(), w.duration + r.duration);
  EXPECT_EQ(drv.board().pci().total_bytes(), 128 * util::kKiB);
  EXPECT_GT(w.mbps(), r.mbps());
}

TEST(Driver, DesignClockProgrammable) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.set_design_clock(40.0);
  EXPECT_DOUBLE_EQ(drv.design_clock_mhz(), 40.0);
  drv.reset(core::ResetScope::kTime);
  drv.advance_cycles(1'000'000);  // 1M cycles @ 40 MHz = 25 ms
  EXPECT_NEAR(util::ps_to_ms(drv.elapsed()), 25.0, 0.01);
}

TEST(Driver, DmaToSimDeliversPayload) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.configure(0, hw::Bitstream::from_design(echo_design()));
  drv.reset(core::ResetScope::kTime);
  const std::vector<std::uint64_t> words = {1, 2, 3, 4, 5, 6, 7};
  drv.dma_write_to_sim(0, 0, words);
  // Register 0 holds the last word; the write counter saw all of them.
  EXPECT_EQ(drv.reg_read(0, 0), 7u);
  EXPECT_EQ(drv.reg_read(0, 1), static_cast<std::uint64_t>(words.size()));
}

TEST(Driver, DmaToSimRequiresHostPort) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  const std::vector<std::uint64_t> words = {1};
  EXPECT_THROW(drv.dma_write_to_sim(0, 0, words), util::Error);
}

TEST(Driver, PartialReconfigureFasterThanFull) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  hw::Bitstream bs = hw::Bitstream::from_design(echo_design());
  drv.configure(0, bs);
  const util::Picoseconds after_full = drv.elapsed();
  bs.fraction = 0.1;
  drv.partial_reconfigure(0, bs);
  EXPECT_LT(drv.elapsed() - after_full, after_full / 2);
}

TEST(Driver, LedgerBitIdenticalToScalarSum) {
  // The compatibility contract of the timeline refactor: a single driver
  // with no contention produces exactly the pre-refactor ledger — the
  // picosecond-for-picosecond sum of the pure calculator durations.
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  hw::Plx9080 reference;  // pure calculator, identical default params
  util::Picoseconds expected = 0;
  for (const std::uint64_t kb : {1, 7, 64, 300}) {
    drv.dma_write(kb * util::kKiB);
    drv.dma_read(kb * util::kKiB);
    expected +=
        reference.transfer(hw::DmaDirection::kWrite, kb * util::kKiB).duration;
    expected +=
        reference.transfer(hw::DmaDirection::kRead, kb * util::kKiB).duration;
  }
  drv.reg_read(0, 0);
  expected += reference.target_access();
  drv.advance_cycles(12345);
  expected += drv.board().local_clock().cycles(12345);
  EXPECT_EQ(drv.elapsed(), expected);
  // Nothing queued anywhere on the crate.
  EXPECT_EQ(sys.timeline().stats(sys.pci_segment()).queue_delay, 0);
}

TEST(Driver, TwoBoardsContendOnPciSegment) {
  AtlantisSystem sys("crate");
  AtlantisDriver d0(sys, sys.add_acb("acb0"));
  AtlantisDriver d1(sys, sys.add_acb("acb1"));
  // Alone, a transfer takes its service time (pure calculator, so the
  // baseline itself does not occupy the shared segment)...
  const util::Picoseconds solo =
      d0.board().pci().transfer(hw::DmaDirection::kWrite, util::kMiB).duration;
  // ...but when both boards post at the same instant, the segment
  // serializes them: one of the two waits a full transfer.
  d0.dma_write_async(util::kMiB);
  d1.dma_write_async(util::kMiB);
  const util::Picoseconds e0 = d0.wait();
  const util::Picoseconds e1 = d1.wait();
  EXPECT_EQ(std::min(e0, e1), solo);
  EXPECT_EQ(std::max(e0, e1), 2 * solo);
  EXPECT_EQ(sys.timeline().stats(sys.pci_segment()).queue_delay, solo);
}

TEST(Driver, AsyncDmaOverlapsCompute) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.set_design_clock(40.0);
  // Serial: transfer then compute.
  const util::Picoseconds io = drv.dma_write(256 * util::kKiB).duration;
  const util::Picoseconds serial_extra = drv.elapsed();
  EXPECT_EQ(serial_extra, io);
  drv.advance_cycles(1'000'000);
  const util::Picoseconds serial = drv.elapsed();
  drv.reset(core::ResetScope::kTime);
  // Overlapped: the async transfer occupies the bus while the design
  // clock runs; the join is the max, strictly less than the sum.
  drv.dma_write_async(256 * util::kKiB);
  EXPECT_EQ(drv.pending_dma(), 1);
  drv.advance_cycles(1'000'000);
  drv.wait();
  EXPECT_EQ(drv.pending_dma(), 0);
  const util::Picoseconds overlapped = drv.elapsed();
  EXPECT_LT(overlapped, serial);
  EXPECT_EQ(overlapped,
            std::max(io, drv.board().local_clock().cycles(1'000'000)));
}

TEST(Driver, ResetTimeKeepsPciLifetimeCounters) {
  // Regression: reset_time() resets ONLY the elapsed() ledger. The PLX
  // 9080 lifetime DMA counters keep accumulating (they model the
  // device's statistics registers) — reset_stats() is the call that
  // clears both.
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.dma_write(64 * util::kKiB);
  const std::uint64_t bytes_before = drv.board().pci().total_bytes();
  EXPECT_EQ(bytes_before, 64 * util::kKiB);
  drv.reset(core::ResetScope::kTime);
  EXPECT_EQ(drv.elapsed(), 0);
  EXPECT_EQ(drv.board().pci().total_bytes(), bytes_before)
      << "reset_time() must not clear PLX lifetime counters";
  EXPECT_GT(drv.board().pci().total_time(), 0);

  drv.dma_read(32 * util::kKiB);
  EXPECT_EQ(drv.board().pci().total_bytes(), 96 * util::kKiB);

  drv.reset(core::ResetScope::kStats);
  EXPECT_EQ(drv.elapsed(), 0);
  EXPECT_EQ(drv.board().pci().total_bytes(), 0u);
  EXPECT_EQ(drv.board().pci().total_time(), 0);
}

TEST(Driver, CrateTraceExportsValidJson) {
  // A real crate schedule (configure + DMA + compute on two boards)
  // exports a parseable Chrome trace with one complete event per
  // transaction.
  AtlantisSystem sys("crate");
  AtlantisDriver d0(sys, sys.add_acb("acb0"));
  AtlantisDriver d1(sys, sys.add_acb("acb1"));
  d0.configure(0, hw::Bitstream::from_design(echo_design()));
  d0.dma_write(16 * util::kKiB);
  d1.dma_write_async(16 * util::kKiB);
  d1.advance_cycles(1000);
  d1.wait();
  std::ostringstream out;
  sys.timeline().export_chrome_trace(out);
  const util::JsonValue doc = util::json_parse(out.str());
  int complete = 0;
  for (const util::JsonValue& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "X") ++complete;
  }
  EXPECT_EQ(complete, static_cast<int>(sys.timeline().transactions().size()));
  EXPECT_GE(complete, 4);
}

}  // namespace
}  // namespace atlantis::core
