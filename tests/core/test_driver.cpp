#include "core/driver.hpp"

#include <gtest/gtest.h>

#include "chdl/builder.hpp"

namespace atlantis::core {
namespace {

// A host-accessible design: register 0 echoes, register 1 counts writes.
chdl::Design& echo_design() {
  static chdl::Design d = [] {
    chdl::Design dd("echo");
    chdl::HostRegFile hrf(dd);
    hrf.write_reg("r0", 0, 32);
    hrf.map_read(1, chdl::counter(dd, "writes", 16, hrf.we()));
    hrf.finish();
    return dd;
  }();
  return d;
}

TEST(Driver, TimeLedgerStartsAtZero) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  EXPECT_EQ(drv.elapsed(), 0);
}

TEST(Driver, ConfigureAdvancesLedger) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.configure(0, hw::Bitstream::from_design(echo_design()));
  // An ORCA full configuration is ~18.75 ms at 8 bit / 10 MHz.
  EXPECT_NEAR(util::ps_to_ms(drv.elapsed()), 18.75, 0.1);
  EXPECT_TRUE(drv.board().fpga(0).configured());
}

TEST(Driver, RegisterAccessReachesSimulatedDesign) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.configure(0, hw::Bitstream::from_design(echo_design()));
  drv.reset_time();
  drv.reg_write(0, 0, 0xBEEF);
  EXPECT_EQ(drv.reg_read(0, 0), 0xBEEFu);
  EXPECT_EQ(drv.reg_read(0, 1), 1u);  // one write seen by the fabric
  EXPECT_GT(drv.elapsed(), 0);        // target-mode accesses cost time
}

TEST(Driver, RegisterAccessWithoutSimStillCostsTime) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  EXPECT_EQ(drv.reg_read(0, 0), 0u);
  EXPECT_GT(drv.elapsed(), 0);
  EXPECT_EQ(drv.host_if(0), nullptr);
}

TEST(Driver, DmaAdvancesLedgerAndPciCounters) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  const hw::DmaTransfer w = drv.dma_write(64 * util::kKiB);
  const hw::DmaTransfer r = drv.dma_read(64 * util::kKiB);
  EXPECT_EQ(drv.elapsed(), w.duration + r.duration);
  EXPECT_EQ(drv.board().pci().total_bytes(), 128 * util::kKiB);
  EXPECT_GT(w.mbps(), r.mbps());
}

TEST(Driver, DesignClockProgrammable) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.set_design_clock(40.0);
  EXPECT_DOUBLE_EQ(drv.design_clock_mhz(), 40.0);
  drv.reset_time();
  drv.advance_cycles(1'000'000);  // 1M cycles @ 40 MHz = 25 ms
  EXPECT_NEAR(util::ps_to_ms(drv.elapsed()), 25.0, 0.01);
}

TEST(Driver, DmaToSimDeliversPayload) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  drv.configure(0, hw::Bitstream::from_design(echo_design()));
  drv.reset_time();
  const std::vector<std::uint64_t> words = {1, 2, 3, 4, 5, 6, 7};
  drv.dma_write_to_sim(0, 0, words);
  // Register 0 holds the last word; the write counter saw all of them.
  EXPECT_EQ(drv.reg_read(0, 0), 7u);
  EXPECT_EQ(drv.reg_read(0, 1), static_cast<std::uint64_t>(words.size()));
}

TEST(Driver, DmaToSimRequiresHostPort) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  const std::vector<std::uint64_t> words = {1};
  EXPECT_THROW(drv.dma_write_to_sim(0, 0, words), util::Error);
}

TEST(Driver, PartialReconfigureFasterThanFull) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  hw::Bitstream bs = hw::Bitstream::from_design(echo_design());
  drv.configure(0, bs);
  const util::Picoseconds after_full = drv.elapsed();
  bs.fraction = 0.1;
  drv.partial_reconfigure(0, bs);
  EXPECT_LT(drv.elapsed() - after_full, after_full / 2);
}

}  // namespace
}  // namespace atlantis::core
