// Differential partial reconfiguration under faults: per-region CRC
// retry, region scrubbing that preserves live design state, the
// self-reconfiguration protocol through the driver, and a fuzzer that
// checks the differential switch path is bit-identical (every wire,
// every RAM word) to the full-configure path.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "chdl/builder.hpp"
#include "chdl/design.hpp"
#include "core/driver.hpp"
#include "core/system.hpp"
#include "core/taskswitch.hpp"
#include "hw/fpga.hpp"
#include "sim/fault.hpp"
#include "util/units.hpp"

namespace atlantis::core {
namespace {

hw::Bitstream make_task(const std::string& name, const std::string& tag,
                        int regions) {
  hw::Bitstream bs;
  bs.name = name;
  bs.stats.gate_equivalents = 50'000;
  bs.region_sigs = hw::make_region_signatures(tag, regions);
  return bs;
}

/// Counter-addressed RAM design: variants differ only in the constant
/// added to the write data, so every variant has the same port layout
/// and the same wire numbering.
chdl::Design make_ram_design(const std::string& name, std::uint64_t k) {
  chdl::Design d(name);
  const chdl::Wire en = d.input("en", 1);
  const chdl::Wire din = d.input("din", 8);
  const chdl::Wire c = chdl::counter(d, "c", 5, en);
  const int ram = d.add_ram("m", 32, 8);
  d.ram_write(ram, c, d.add(din, d.constant(8, k)), en);
  d.output("q", d.ram_read(ram, c));
  d.output("count", c);
  return d;
}

/// FSM that requests a self-reconfiguration of `region` until acked:
/// reconfig_req starts high and clears on the reconfig_ack pulse.
chdl::Design make_self_reconfig_design(const std::string& name, int region) {
  chdl::Design d(name);
  const chdl::Wire ack = d.input("reconfig_ack", 1);
  chdl::RegOpts opts;
  opts.init = chdl::BitVec(1, 1);
  const chdl::Wire req = d.reg_forward("req", 1, opts);
  d.reg_connect(req, d.band(req, d.bnot(ack)));
  d.output("reconfig_req", req);
  d.output("reconfig_region", d.constant(8, static_cast<std::uint64_t>(region)));
  d.output("count", chdl::counter(d, "c", 8));
  return d;
}

TEST(PartialReconfig, RegionSignatureHelpers) {
  const auto a = hw::make_region_signatures("base", 32);
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(a, hw::make_region_signatures("base", 32));  // deterministic
  EXPECT_NE(a, hw::make_region_signatures("other", 32));

  auto b = a;
  hw::stamp_regions(b, "variant", 8, 12);
  for (int r = 0; r < 32; ++r) {
    const bool stamped = r >= 8 && r < 12;
    EXPECT_EQ(a[static_cast<std::size_t>(r)] != b[static_cast<std::size_t>(r)],
              stamped)
        << "region " << r;
  }
  EXPECT_EQ(hw::region_diff_count(a, a), 0);
  EXPECT_EQ(hw::region_diff_count(a, b), 4);
  EXPECT_EQ(hw::region_diff_count({}, a), -1);  // incomparable: empty
  EXPECT_EQ(hw::region_diff_count(a, hw::make_region_signatures("base", 16)),
            -1);  // incomparable: different region counts
}

TEST(PartialReconfig, DiffLoadsOnlyChangedRegions) {
  hw::FpgaDevice dev("d0", hw::orca_3t125());
  const int n = dev.region_count();
  ASSERT_GT(n, 1);
  const hw::Bitstream base = make_task("base", "base", n);
  hw::Bitstream variant = make_task("variant", "base", n);
  hw::stamp_regions(variant.region_sigs, "variant", 8, 12);

  dev.configure(base);
  EXPECT_EQ(dev.resident_regions(), base.region_sigs);

  const hw::ReconfigOutcome oc = dev.reconfigure_diff(variant);
  EXPECT_TRUE(oc.ok);
  EXPECT_TRUE(oc.differential);
  EXPECT_EQ(oc.regions_total, n);
  EXPECT_EQ(oc.regions_loaded, 4);
  EXPECT_EQ(oc.region_retries, 0);
  EXPECT_EQ(oc.time, 4 * dev.region_time());
  EXPECT_LT(oc.time, dev.config_time(dev.family().config_bits));
  EXPECT_EQ(dev.design_name(), "variant");
  EXPECT_EQ(dev.resident_regions(), variant.region_sigs);
  EXPECT_EQ(dev.partial_reconfigs(), 1u);
  EXPECT_EQ(dev.regions_loaded(), 4u);
}

TEST(PartialReconfig, IncomparableResidentLoadsEveryRegion) {
  hw::FpgaDevice dev("d0", hw::orca_3t125());
  const int n = dev.region_count();
  hw::Bitstream legacy;  // no region signatures
  legacy.name = "legacy";
  legacy.stats.gate_equivalents = 50'000;
  dev.configure(legacy);
  EXPECT_TRUE(dev.resident_regions().empty());

  const hw::ReconfigOutcome oc =
      dev.reconfigure_diff(make_task("base", "base", n));
  EXPECT_TRUE(oc.ok);
  EXPECT_FALSE(oc.differential);  // resident config was opaque
  EXPECT_EQ(oc.regions_loaded, n);
  EXPECT_EQ(oc.time, n * dev.region_time());
}

TEST(PartialReconfig, PerRegionCrcRetryRetriesOnlyThatFrame) {
  hw::FpgaDevice dev("d0", hw::orca_3t125());
  const int n = dev.region_count();
  const hw::Bitstream base = make_task("base", "base", n);
  hw::Bitstream variant = make_task("variant", "base", n);
  hw::stamp_regions(variant.region_sigs, "variant", 8, 12);

  // Opportunity 1 is the full configure; opportunity 2 is the first
  // frame of the differential load — fail exactly that one.
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kConfigCrc, "fpga/d0", 2);
  sim::FaultInjector inj(plan);
  dev.set_fault_injector(&inj);

  dev.configure(base);
  ASSERT_TRUE(dev.config_crc_ok());

  const hw::ReconfigOutcome oc = dev.reconfigure_diff(variant, 2);
  EXPECT_TRUE(oc.ok);
  EXPECT_EQ(oc.regions_loaded, 4);
  EXPECT_EQ(oc.region_retries, 1);
  // Four frames plus one re-shift of the failed frame — not a full
  // bitstream retry.
  EXPECT_EQ(oc.time, 5 * dev.region_time());
  EXPECT_TRUE(dev.configured());
  EXPECT_TRUE(dev.config_crc_ok());
  EXPECT_EQ(dev.crc_failures(), 1u);
  EXPECT_EQ(dev.region_crc_retries(), 1u);
  EXPECT_EQ(dev.resident_regions(), variant.region_sigs);
}

TEST(PartialReconfig, RegionRetryExhaustionClearsDevice) {
  hw::FpgaDevice dev("d0", hw::orca_3t125());
  const int n = dev.region_count();
  dev.configure(make_task("base", "base", n));

  sim::FaultPlan plan;
  plan.with_rate(sim::FaultKind::kConfigCrc, 1.0);  // every frame fails
  sim::FaultInjector inj(plan);
  dev.set_fault_injector(&inj);

  hw::Bitstream variant = make_task("variant", "base", n);
  hw::stamp_regions(variant.region_sigs, "variant", 0, 1);
  const hw::ReconfigOutcome oc = dev.reconfigure_diff(variant, 3);
  EXPECT_FALSE(oc.ok);
  EXPECT_EQ(oc.regions_loaded, 0);
  EXPECT_EQ(oc.time, 3 * dev.region_time());  // every attempt was paid for
  EXPECT_FALSE(dev.configured());
  EXPECT_FALSE(dev.config_crc_ok());
  EXPECT_TRUE(dev.resident_regions().empty());
}

TEST(PartialReconfig, SwitcherPaysOnlyTheDelta) {
  hw::FpgaDevice dev("d0", hw::orca_3t125());
  const int n = dev.region_count();
  TaskSwitcher sw(dev);
  hw::Bitstream a = make_task("a", "base", n);
  hw::Bitstream b = make_task("b", "base", n);
  hw::stamp_regions(b.region_sigs, "b", 8, 12);
  sw.add_task(a);
  sw.add_task(b);

  const util::Picoseconds full = dev.config_time(dev.family().config_bits);
  EXPECT_EQ(sw.estimate_switch_cost("a"), full);  // cold device: full load
  EXPECT_EQ(sw.switch_to("a"), full);
  EXPECT_EQ(sw.estimate_switch_cost("a"), 0);  // resident is free
  EXPECT_EQ(sw.estimate_switch_cost("b"), 4 * dev.region_time());

  const util::Picoseconds t = sw.switch_to("b");
  EXPECT_EQ(t, 4 * dev.region_time());
  EXPECT_EQ(sw.partial_switches(), 1u);
  EXPECT_EQ(sw.last_regions_loaded(), 4);
  EXPECT_EQ(sw.regions_loaded(), 4u);
  EXPECT_EQ(sw.partial_switch_time(), t);

  // Pinned to the legacy scalar path, the same switch pays the
  // fraction-scaled load instead of the region delta.
  sw.set_differential(false);
  EXPECT_EQ(sw.estimate_switch_cost("a"), full);  // fraction 1.0
  const util::Picoseconds t2 = sw.switch_to("a");
  EXPECT_EQ(t2, full);
  EXPECT_EQ(sw.partial_switches(), 1u);  // no new differential switch
}

TEST(PartialReconfig, SwitcherFallsBackToFullConfigureAfterDiffFailure) {
  hw::FpgaDevice dev("d0", hw::orca_3t125());
  const int n = dev.region_count();
  TaskSwitcher sw(dev);
  sim::RetryPolicy policy;
  policy.max_attempts = 2;
  sw.set_retry_policy(policy);
  hw::Bitstream a = make_task("a", "base", n);
  hw::Bitstream b = make_task("b", "base", n);
  hw::stamp_regions(b.region_sigs, "b", 0, 1);
  sw.add_task(a);
  sw.add_task(b);

  // Opportunity 1: full configure of "a" (clean). Opportunities 2 and 3:
  // both attempts at the single differing frame of "b" — the region
  // budget exhausts, the device drops unconfigured, and the switcher's
  // outer retry takes the full-configure path (opportunity 4, clean).
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kConfigCrc, "fpga/d0", 2);
  plan.inject(sim::FaultKind::kConfigCrc, "fpga/d0", 3);
  sim::FaultInjector inj(plan);
  dev.set_fault_injector(&inj);

  sw.switch_to("a");
  const util::Result<util::Picoseconds> r = sw.try_switch_to("b");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(dev.configured());
  EXPECT_EQ(sw.current(), "b");
  EXPECT_EQ(dev.design_name(), "b");
  // 2 failed frame shifts + the recovery full configuration.
  EXPECT_EQ(r.value(),
            2 * dev.region_time() + dev.config_time(dev.family().config_bits));
  // One per-region retry inside the diff load, one outer full-configure
  // retry after it exhausted.
  EXPECT_EQ(sw.reconfig_retries(), 2u);
  EXPECT_EQ(sw.partial_switches(), 0u);  // the diff attempt never succeeded
  EXPECT_EQ(dev.resident_regions(), b.region_sigs);
}

TEST(PartialReconfig, RegionScrubPreservesLiveSimState) {
  const chdl::Design design = make_ram_design("ram_task", 1);
  hw::Bitstream bs = hw::Bitstream::from_design(design);
  bs.region_sigs = hw::make_region_signatures("ram_task", 32);

  // Reference device: no faults, same stimulus, never scrubbed.
  hw::FpgaDevice ref("ref", hw::orca_3t125());
  ref.configure(bs);

  hw::FpgaDevice dev("d0", hw::orca_3t125());
  TaskSwitcher sw(dev);
  sw.add_task(bs);
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kSeuConfig, "fpga/d0", 1, /*param=*/7);
  sim::FaultInjector inj(plan);
  dev.set_fault_injector(&inj);
  sw.switch_to("ram_task");

  auto drive = [](chdl::Simulator& s, int steps) {
    s.poke("en", 1);
    for (int i = 0; i < steps; ++i) {
      s.poke("din", static_cast<std::uint64_t>(0x40 + i));
      s.step();
    }
  };
  ASSERT_NE(dev.sim(), nullptr);
  drive(*dev.sim(), 10);
  drive(*ref.sim(), 10);
  chdl::Simulator* before = dev.sim();

  // The scrub window draws the scheduled upset (pinned to region 7) and
  // repairs it by re-shifting that one frame; the live simulator — its
  // flip-flops and RAM contents — must survive.
  EXPECT_TRUE(sw.scrub());
  EXPECT_EQ(sw.region_scrubs(), 1u);
  EXPECT_EQ(sw.upsets_corrected(), 1u);
  EXPECT_FALSE(dev.upset_pending());
  EXPECT_EQ(dev.sim(), before);  // same simulator object, not a rebuild

  drive(*dev.sim(), 10);
  drive(*ref.sim(), 10);
  for (std::int32_t w = 0; w < design.wire_count(); ++w) {
    const chdl::Wire wire{w, design.wire_width(w)};
    if (wire.width <= 0) continue;
    EXPECT_EQ(dev.sim()->peek(wire), ref.sim()->peek(wire)) << "wire " << w;
  }
  for (std::int64_t addr = 0; addr < 32; ++addr) {
    EXPECT_EQ(dev.sim()->read_ram(0, addr), ref.sim()->read_ram(0, addr))
        << "ram word " << addr;
  }
}

TEST(PartialReconfig, DifferentialFuzzerMatchesFullConfigurePath) {
  // Three variants of the RAM design sharing most configuration regions.
  std::vector<chdl::Design> designs;
  designs.reserve(3);
  for (int v = 0; v < 3; ++v) {
    designs.push_back(
        make_ram_design("v" + std::to_string(v), static_cast<std::uint64_t>(v)));
  }
  std::vector<hw::Bitstream> tasks;
  for (int v = 0; v < 3; ++v) {
    hw::Bitstream bs = hw::Bitstream::from_design(designs[static_cast<std::size_t>(v)]);
    bs.region_sigs = hw::make_region_signatures("shared_base", 32);
    hw::stamp_regions(bs.region_sigs, bs.name, 4 * v, 4 * v + 4);
    tasks.push_back(bs);
  }

  hw::FpgaDevice dev_diff("diff", hw::orca_3t125());
  hw::FpgaDevice dev_full("full", hw::orca_3t125());
  TaskSwitcher sw_diff(dev_diff);
  TaskSwitcher sw_full(dev_full);
  sw_full.set_differential(false);
  for (const hw::Bitstream& bs : tasks) {
    sw_diff.add_task(bs);
    sw_full.add_task(bs);
  }

  std::mt19937_64 rng(12345);
  for (int round = 0; round < 40; ++round) {
    const std::size_t pick = rng() % tasks.size();
    const chdl::Design& design = designs[pick];
    sw_diff.switch_to(tasks[pick].name);
    sw_full.switch_to(tasks[pick].name);

    chdl::Simulator* a = dev_diff.sim();
    chdl::Simulator* b = dev_full.sim();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    const int steps = 1 + static_cast<int>(rng() % 6);
    for (int s = 0; s < steps; ++s) {
      const std::uint64_t en = rng() % 2;
      const std::uint64_t din = rng() % 256;
      a->poke("en", en);
      a->poke("din", din);
      b->poke("en", en);
      b->poke("din", din);
      a->step();
      b->step();
    }
    // Partial-then-run must equal full-configure-then-run on every wire
    // and every RAM word.
    for (std::int32_t w = 0; w < design.wire_count(); ++w) {
      const chdl::Wire wire{w, design.wire_width(w)};
      if (wire.width <= 0) continue;
      ASSERT_EQ(a->peek(wire), b->peek(wire))
          << "round " << round << " wire " << w;
    }
    for (std::int64_t addr = 0; addr < 32; ++addr) {
      ASSERT_EQ(a->read_ram(0, addr), b->read_ram(0, addr))
          << "round " << round << " ram word " << addr;
    }
  }
  // Same functional results, but the differential path moved far less
  // configuration data.
  EXPECT_GT(sw_diff.partial_switches(), 0u);
  EXPECT_LT(sw_diff.total_switch_time(), sw_full.total_switch_time());
}

TEST(PartialReconfig, SelfReconfigProtocolThroughDriver) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  const chdl::Design design = make_self_reconfig_design("selfrc", 5);
  hw::Bitstream bs = hw::Bitstream::from_design(design);
  bs.region_sigs = hw::make_region_signatures("selfrc", 32);
  drv.configure(0, bs);

  hw::FpgaDevice& dev = drv.board().fpga(0);
  ASSERT_NE(dev.sim(), nullptr);
  EXPECT_EQ(dev.sim()->peek_u64("reconfig_req"), 1u);
  const std::uint64_t count_before = dev.sim()->peek_u64("count");

  const util::Result<util::Picoseconds> r = drv.poll_self_reconfig(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), dev.region_time());  // one frame re-shifted
  EXPECT_EQ(dev.self_reconfigs(), 1u);
  // The ack pulse stepped the design once; its state survived the
  // frame reload.
  EXPECT_EQ(dev.sim()->peek_u64("count"), count_before + 1);
  EXPECT_EQ(dev.sim()->peek_u64("reconfig_req"), 0u);  // FSM deasserted

  // With the request deasserted, polling is free and does nothing.
  const util::Result<util::Picoseconds> r2 = drv.poll_self_reconfig(0);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), 0);
  EXPECT_EQ(dev.self_reconfigs(), 1u);

  // The reload is visible on the timeline as a kReconfig transaction.
  bool found = false;
  for (const sim::Transaction& txn : sys.timeline().transactions()) {
    if (txn.label == "self-reconfig region 5") {
      EXPECT_EQ(txn.regions, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PartialReconfig, SelfReconfigCrcFailureDropsDevice) {
  AtlantisSystem sys("crate");
  sim::FaultPlan plan;
  // Opportunity 1 is the driver's configure(); the poll's frame loads
  // are opportunities 2..5 — fail every attempt of the polled frame.
  plan.inject(sim::FaultKind::kConfigCrc, "fpga/acb0/fpga0", 2);
  plan.inject(sim::FaultKind::kConfigCrc, "fpga/acb0/fpga0", 3);
  plan.inject(sim::FaultKind::kConfigCrc, "fpga/acb0/fpga0", 4);
  plan.inject(sim::FaultKind::kConfigCrc, "fpga/acb0/fpga0", 5);
  sim::FaultInjector inj(plan);
  sys.set_fault_injector(&inj);
  AtlantisDriver drv(sys, sys.add_acb("acb0"));
  const chdl::Design design = make_self_reconfig_design("selfrc", 3);
  hw::Bitstream bs = hw::Bitstream::from_design(design);
  bs.region_sigs = hw::make_region_signatures("selfrc", 32);
  drv.configure(0, bs);

  const util::Result<util::Picoseconds> r = drv.poll_self_reconfig(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), util::ErrorCode::kConfigCrc);
  EXPECT_FALSE(drv.board().fpga(0).configured());
}

}  // namespace
}  // namespace atlantis::core
