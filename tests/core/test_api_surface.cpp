// The unified API surface of this PR: reset(ResetScope) and its
// deprecated forwarders, the Result<T> duals (self test, board
// configure, S-Link fragment), try_switch_task, and the kOverloaded
// error code.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "core/selftest.hpp"
#include "core/system.hpp"
#include "core/taskswitch.hpp"
#include "hw/slink.hpp"
#include "sim/fault.hpp"
#include "util/status.hpp"

namespace atlantis {
namespace {

// These two tests exist to pin the deprecated forwarders' behaviour;
// calling them here is the point, so the deprecation diagnostic (fatal
// on the -Werror=deprecated-declarations CI leg) is silenced locally.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ResetScope, KTimeMatchesDeprecatedResetTime) {
  core::AtlantisSystem sys_a("a"), sys_b("b");
  core::AtlantisDriver a(sys_a, sys_a.add_acb("acb0"));
  core::AtlantisDriver b(sys_b, sys_b.add_acb("acb0"));
  a.dma_write(4096);
  b.dma_write(4096);
  a.reset(core::ResetScope::kTime);
  b.reset_time();  // deprecated forwarder must behave identically
  EXPECT_EQ(a.elapsed(), b.elapsed());
  EXPECT_EQ(a.elapsed(), 0);
  // kTime does not touch the PLX lifetime counters.
  EXPECT_EQ(a.board().pci().total_bytes(), 4096u);
}

TEST(ResetScope, KStatsMatchesDeprecatedResetStats) {
  core::AtlantisSystem sys_a("a"), sys_b("b");
  core::AtlantisDriver a(sys_a, sys_a.add_acb("acb0"));
  core::AtlantisDriver b(sys_b, sys_b.add_acb("acb0"));
  a.dma_write(4096);
  b.dma_write(4096);
  a.reset(core::ResetScope::kStats);
  b.reset_stats();
  EXPECT_EQ(a.elapsed(), 0);  // kStats implies kTime (legacy behaviour)
  EXPECT_EQ(b.elapsed(), 0);
  EXPECT_EQ(a.board().pci().total_bytes(), 0u);
  EXPECT_EQ(b.board().pci().total_bytes(), 0u);
  EXPECT_EQ(a.dma_faults(), 0u);
}

#pragma GCC diagnostic pop

TEST(ResetScope, KFaultsRewindsTheInjector) {
  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kBoardDropout, "board/acb0", /*nth=*/1);
  sim::FaultInjector inj(plan);
  core::AtlantisSystem sys("crate");
  core::AtlantisDriver drv(sys, sys.add_acb("acb0"));
  sys.set_fault_injector(&inj);
  EXPECT_TRUE(sys.acb(0).draw_dropout());
  EXPECT_EQ(inj.injected_total(), 1u);
  drv.reset(core::ResetScope::kFaults);
  EXPECT_EQ(inj.injected_total(), 0u);  // rewound for replay
  sys.acb(0).set_alive(true);
  EXPECT_TRUE(sys.acb(0).draw_dropout());  // same draw fires again
  sys.set_fault_injector(nullptr);
}

TEST(ApiDuals, TrySelfTestMatchesThrowingVersion) {
  core::AcbBoard board("acb0");
  const util::Result<core::SelfTestReport> r = core::try_self_test_acb(board);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().all_passed());

  core::AcbBoard dead("acb1");
  dead.set_alive(false);
  const util::Result<core::SelfTestReport> d = core::try_self_test_acb(dead);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.error(), util::ErrorCode::kBoardDead);
  EXPECT_THROW((void)core::self_test_acb(dead), util::Error);
}

TEST(ApiDuals, TryConfigureAllMatchesThrowingVersion) {
  const hw::Bitstream bs{"blank", {}, nullptr, 1.0, {}};
  core::AcbBoard board("acb0");
  const util::Result<util::Picoseconds> r = board.try_configure_all(bs);
  ASSERT_TRUE(r.ok());
  core::AcbBoard twin("acb0");  // same name -> same timing model
  EXPECT_EQ(r.value(), twin.configure_all(bs));

  core::AcbBoard dead("acb2");
  dead.set_alive(false);
  const util::Result<util::Picoseconds> d = dead.try_configure_all(bs);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.error(), util::ErrorCode::kBoardDead);
}

TEST(ApiDuals, TrySendFragmentReportsOutcomeAsCode) {
  hw::SlinkChannel link("lvds");
  const std::vector<std::uint32_t> payload{1, 2, 3, 4};
  const util::Result<std::size_t> ok = link.try_send_fragment(7, payload);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), payload.size() + 2);  // begin + payload + end

  sim::FaultPlan plan;
  plan.inject(sim::FaultKind::kSlinkTruncation, "slink/lvds", /*nth=*/1);
  sim::FaultInjector inj(plan);
  link.set_fault_injector(&inj);
  const util::Result<std::size_t> bad = link.try_send_fragment(8, payload);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), util::ErrorCode::kTruncatedFrame);
  link.set_fault_injector(nullptr);
}

TEST(ApiDuals, TrySwitchTaskPostsAtTheDriverCursor) {
  core::AtlantisSystem sys("crate");
  core::AtlantisDriver drv(sys, sys.add_acb("acb0"));
  core::TaskSwitcher sw(sys.acb(0).fpga(0));
  sw.add_task(hw::Bitstream{"alpha", {}, nullptr, 1.0, {}});

  const util::Picoseconds before = drv.now();
  const util::Result<util::Picoseconds> r = drv.try_switch_task(sw, "alpha");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value(), 0);
  EXPECT_EQ(drv.now(), before + r.value());
  bool posted = false;
  for (const sim::Transaction& t : sys.timeline().transactions()) {
    posted = posted || (t.kind == sim::TxnKind::kReconfig &&
                        t.label == "switch to alpha");
  }
  EXPECT_TRUE(posted);

  // A bound switcher would double-post; that is caller misuse.
  core::TaskSwitcher bound_sw(sys.acb(0).fpga(1));
  bound_sw.add_task(hw::Bitstream{"alpha", {}, nullptr, 1.0, {}});
  bound_sw.bind(sys.timeline(), sys.timeline().add_track("sw"));
  EXPECT_THROW((void)drv.try_switch_task(bound_sw, "alpha"), util::Error);
}

TEST(ErrorCodes, OverloadedHasStableName) {
  EXPECT_STREQ(util::error_code_name(util::ErrorCode::kOverloaded),
               "overloaded");
}

}  // namespace
}  // namespace atlantis
