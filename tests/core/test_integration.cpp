// End-to-end integration: one ACB FPGA hardware-task-switches between
// the two gate-level application cores (the §2 co-processing claim),
// with both cores verified against their software references through
// the driver path after every switch.
#include <gtest/gtest.h>

#include "chdl/hostif.hpp"
#include "core/driver.hpp"
#include "core/taskswitch.hpp"
#include "imgproc/conv_core.hpp"
#include "imgproc/filters.hpp"
#include "trt/histogram.hpp"
#include "trt/trt_core.hpp"
#include "util/rng.hpp"

namespace atlantis::core {
namespace {

trt::DetectorGeometry tiny_geo() {
  trt::DetectorGeometry geo;
  geo.layers = 6;
  geo.straws_per_layer = 16;
  return geo;
}

TEST(Integration, HardwareTaskSwitchBetweenApplications) {
  AtlantisSystem sys("crate");
  AtlantisDriver drv(sys, sys.add_acb("acb0"));

  // Two application bitstreams, each claiming a fraction of the array.
  trt::PatternBank bank(tiny_geo(), 12);
  chdl::Design trt_design("trt_task");
  trt::build_trt_core(trt_design, bank);
  hw::Bitstream trt_bs = hw::Bitstream::from_design(trt_design);
  trt_bs.fraction = 0.4;

  chdl::Design conv_design("conv_task");
  imgproc::build_conv_core(conv_design, 18,
                           imgproc::Kernel3x3::gaussian());
  hw::Bitstream conv_bs = hw::Bitstream::from_design(conv_design);
  conv_bs.fraction = 0.4;

  TaskSwitcher switcher(drv.board().fpga(0));
  switcher.add_task(trt_bs);
  switcher.add_task(conv_bs);

  // --- Task 1: trigger an event ---------------------------------------
  const util::Picoseconds full_load = switcher.switch_to("trt_task");
  chdl::Simulator* sim = drv.board().fpga(0).sim();
  ASSERT_NE(sim, nullptr);
  {
    chdl::HostInterface host(*sim);
    trt::EventGenerator gen(bank, trt::EventParams{.tracks = 2});
    const trt::Event ev = gen.generate();
    host.write(0x00, 0);
    for (const std::int32_t s : ev.hits) {
      host.write(0x01, static_cast<std::uint64_t>(s));
    }
    host.idle(2);
    const auto ref = trt::histogram_reference(bank, ev);
    for (int p = 0; p < bank.pattern_count(); ++p) {
      EXPECT_EQ(host.read(0x10 + static_cast<std::uint32_t>(p)),
                ref.histogram.counts[static_cast<std::size_t>(p)]);
    }
  }

  // --- Task switch: partial reconfiguration ----------------------------
  const util::Picoseconds switch_time = switcher.switch_to("conv_task");
  EXPECT_LT(switch_time, full_load / 2);
  sim = drv.board().fpga(0).sim();
  ASSERT_NE(sim, nullptr);

  // --- Task 2: filter an image stripe ----------------------------------
  {
    chdl::HostInterface host(*sim);
    util::Rng rng(3);
    imgproc::Gray8 img(16, 6);
    for (auto& px : img.data()) {
      px = static_cast<std::uint8_t>(rng.next_below(256));
    }
    imgproc::Gray8 padded(18, 8);
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 18; ++x) padded(x, y) = img.clamped(x - 1, y - 1);
    }
    host.write(0x00, 0);
    std::vector<std::uint8_t> out;
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 18; ++x) {
        host.write(0x01, padded(x, y));
        out.push_back(static_cast<std::uint8_t>(host.read(0x02)));
      }
    }
    for (int i = 0; i < 4; ++i) {  // flush the pipeline tail
      host.write(0x01, 0);
      out.push_back(static_cast<std::uint8_t>(host.read(0x02)));
    }
    const imgproc::Gray8 ref =
        imgproc::convolve3x3(img, imgproc::Kernel3x3::gaussian());
    bool matched = false;
    for (int offset = 0; offset < 72 && !matched; ++offset) {
      matched = true;
      for (int y = 0; y < 6 && matched; ++y) {
        for (int x = 0; x < 16; ++x) {
          const std::size_t idx =
              static_cast<std::size_t>((y + 1) * 18 + (x + 1)) + offset;
          if (idx >= out.size() || out[idx] != ref(x, y)) {
            matched = false;
            break;
          }
        }
      }
    }
    EXPECT_TRUE(matched) << "convolution task wrong after the switch";
  }

  // --- Switch back: the trigger state starts fresh ----------------------
  switcher.switch_to("trt_task");
  sim = drv.board().fpga(0).sim();
  chdl::HostInterface host(*sim);
  for (int p = 0; p < bank.pattern_count(); ++p) {
    EXPECT_EQ(host.read(0x10 + static_cast<std::uint32_t>(p)), 0u);
  }
  EXPECT_EQ(switcher.switch_count(), 3u);
}

TEST(Integration, SwitchRateSupportsEventLevelMultiplexing) {
  // §2: task switching matters for co-processing. A 40% partial
  // bitstream switches in a few ms — hundreds of switches per second,
  // enough to time-multiplex two applications at camera frame rates.
  hw::FpgaDevice dev("orca", hw::orca_3t125());
  TaskSwitcher sw(dev);
  hw::Bitstream a;
  a.name = "a";
  a.fraction = 0.4;
  hw::Bitstream b = a;
  b.name = "b";
  sw.add_task(a);
  sw.add_task(b);
  sw.switch_to("a");
  util::Picoseconds total = 0;
  for (int i = 0; i < 10; ++i) {
    total += sw.switch_to(i % 2 == 0 ? "b" : "a");
  }
  const double mean_ms = util::ps_to_ms(total) / 10.0;
  EXPECT_LT(mean_ms, 10.0);
  EXPECT_GT(1000.0 / mean_ms, 100.0);
}

}  // namespace
}  // namespace atlantis::core
