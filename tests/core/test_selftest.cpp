#include "core/selftest.hpp"

#include <gtest/gtest.h>

namespace atlantis::core {
namespace {

TEST(SelfTest, CleanBoardPasses) {
  AcbBoard board("acb0");
  board.attach_memory(0, MemModule::make_trt("trt0"));
  board.attach_memory(1, MemModule::make_image("img0"));
  const SelfTestReport report = self_test_acb(board);
  EXPECT_TRUE(report.all_passed()) << report.to_string();
  // 4 FPGA steps + 1 TRT bank + 2 image banks + DMA loopback.
  EXPECT_EQ(report.steps.size(), 4u + 1u + 2u + 1u);
  EXPECT_GT(report.total_time(), 0);
  // Self test leaves the FPGAs free for the application.
  for (int i = 0; i < AcbBoard::kFpgaCount; ++i) {
    EXPECT_FALSE(board.fpga(i).configured());
  }
}

TEST(SelfTest, ReportListsEveryStep) {
  AcbBoard board("acb0");
  const SelfTestReport report = self_test_acb(board);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("fpga0 configure/readback"), std::string::npos);
  EXPECT_NE(text.find("fpga3 configure/readback"), std::string::npos);
  EXPECT_NE(text.find("pci dma loopback"), std::string::npos);
  EXPECT_NE(text.find("board self-test PASSED"), std::string::npos);
}

TEST(SelfTest, MarchTestCoversPatterns) {
  hw::SyncSram sram("m", hw::SramConfig{256, 72, 2, 40.0});
  EXPECT_TRUE(march_test_sram(sram, 0));
  EXPECT_TRUE(march_test_sram(sram, 1));
  // The march leaves a checkerboard behind (deterministic final state).
  chdl::BitVec checker(72);
  for (int b = 0; b < 72; b += 2) checker.set_bit(b, true);
  EXPECT_EQ(sram.read(0, 0), checker);
}

TEST(SelfTest, MarchTestRespectsWordLimit) {
  hw::SyncSram sram("m", hw::SramConfig{1 << 20, 176, 1, 40.0});
  EXPECT_TRUE(march_test_sram(sram, 0, /*words_to_test=*/128));
  // Words beyond the limit stay untouched (zero).
  EXPECT_FALSE(sram.read(0, 200).any());
}

TEST(SelfTest, SlinkStepReportsPatternResult) {
  hw::SlinkChannel link("ext0");
  const SelfTestStep step = slink_test(link);
  EXPECT_TRUE(step.passed);
  EXPECT_EQ(step.name, "slink/ext0");
  EXPECT_GT(step.duration, 0);
}

TEST(SelfTest, EmptyReportIsNotAPass) {
  SelfTestReport report;
  EXPECT_FALSE(report.all_passed());
}

}  // namespace
}  // namespace atlantis::core
