#include "core/memmodule.hpp"

#include <gtest/gtest.h>

namespace atlantis::core {
namespace {

TEST(MemModule, TrtModuleShape) {
  MemModule m = MemModule::make_trt("trt0");
  EXPECT_EQ(m.kind(), MemModuleKind::kTrtSsram);
  EXPECT_EQ(m.slots_occupied(), 1);
  EXPECT_EQ(m.data_width_bits(), 176);
  ASSERT_NE(m.sram(), nullptr);
  EXPECT_EQ(m.sdram(), nullptr);
  EXPECT_EQ(m.sram()->config().words, 512 * 1024);
  EXPECT_EQ(m.sram()->config().width_bits, 176);
  // 4 modules = the paper's "44 MB per ACB" (exact in binary megabytes:
  // 4 x 512k x 176 bit = 44.0 MiB).
  const double mib4 =
      4.0 * static_cast<double>(m.capacity_bytes()) / (1024.0 * 1024.0);
  EXPECT_NEAR(mib4, 44.0, 0.01);
}

TEST(MemModule, VolrenModuleShape) {
  MemModule m = MemModule::make_volren("vr0");
  EXPECT_EQ(m.kind(), MemModuleKind::kVolrenSdram);
  EXPECT_EQ(m.slots_occupied(), 3);  // "a single module of triple width"
  ASSERT_NE(m.sdram(), nullptr);
  EXPECT_EQ(m.sdram()->config().banks, 8);
  EXPECT_EQ(m.capacity_bytes(), 512ll * 1024 * 1024);
}

TEST(MemModule, ImageModuleShape) {
  MemModule m = MemModule::make_image("img0");
  EXPECT_EQ(m.kind(), MemModuleKind::kImageSsram);
  ASSERT_NE(m.sram(), nullptr);
  EXPECT_EQ(m.sram()->config().banks, 2);
  EXPECT_EQ(m.sram()->config().width_bits, 72);
  // "9 MB of synchronous SRAM organized in 2 banks of 512k*72".
  EXPECT_NEAR(static_cast<double>(m.capacity_bytes()) / 1e6, 9.4, 0.5);
}

TEST(MemModule, ClockIsConfigurable) {
  MemModule m = MemModule::make_trt("trt0", 66.0);
  EXPECT_DOUBLE_EQ(m.sram()->config().clock_mhz, 66.0);
}

}  // namespace
}  // namespace atlantis::core
