#include "core/system.hpp"

#include <gtest/gtest.h>

namespace atlantis::core {
namespace {

TEST(System, BoardsTakeSlots) {
  AtlantisSystem sys("crate");
  const int acb0 = sys.add_acb("acb0");
  const int aib0 = sys.add_aib("aib0");
  const int acb1 = sys.add_acb("acb1");
  EXPECT_EQ(sys.acb_count(), 2);
  EXPECT_EQ(sys.aib_count(), 1);
  // Slot 0 is the CPU module; boards follow in order.
  EXPECT_EQ(sys.acb_slot(acb0), 1);
  EXPECT_EQ(sys.aib_slot(aib0), 2);
  EXPECT_EQ(sys.acb_slot(acb1), 3);
  EXPECT_EQ(sys.acb(acb1).name(), "acb1");
}

TEST(System, CrateCapacityEnforced) {
  AtlantisSystem sys("crate", hw::pentium200_mmx(), /*slots=*/3);
  sys.add_acb("a");
  sys.add_aib("b");
  EXPECT_THROW(sys.add_acb("c"), util::CapacityError);
}

TEST(System, DefaultHostIsPentium200) {
  AtlantisSystem sys("crate");
  EXPECT_EQ(sys.host().name, "Pentium-200 MMX");
  AtlantisSystem sys2("crate2", hw::celeron450());
  EXPECT_EQ(sys2.host().name, "Celeron-450");
}

TEST(System, TotalGateCapacitySums) {
  AtlantisSystem sys("crate");
  sys.add_acb("acb0");
  sys.add_aib("aib0");
  // 744k (ACB) + 2 x 661k (AIB Virtex).
  EXPECT_EQ(sys.total_gate_capacity(), 744'000 + 2 * 661'000);
}

TEST(System, MainClockProgrammable) {
  AtlantisSystem sys("crate");
  sys.main_clock().set_mhz(66.0);
  EXPECT_DOUBLE_EQ(sys.main_clock().mhz(), 66.0);
}

TEST(System, PassiveBackplaneOption) {
  AtlantisSystem sys("crate", hw::pentium200_mmx(), 8, true);
  EXPECT_TRUE(sys.backplane().passive());
}

TEST(System, IndexValidation) {
  AtlantisSystem sys("crate");
  sys.add_acb("a");
  EXPECT_THROW(sys.acb(1), util::Error);
  EXPECT_THROW(sys.aib(0), util::Error);
  EXPECT_THROW(sys.acb_slot(-1), util::Error);
}

}  // namespace
}  // namespace atlantis::core
