#include "core/aab.hpp"

#include <gtest/gtest.h>

namespace atlantis::core {
namespace {

TEST(Aab, DefaultIsFourBy32) {
  Backplane bp("aab");
  EXPECT_EQ(bp.channel_count(), 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(bp.channel_mbps(c), 264.0, 0.1);  // 32 bit @ 66 MHz
  }
  // 1 GB/s per slot (128 data bits @ 66 MHz = 1056 MB/s).
  EXPECT_NEAR(bp.slot_mbps(), 1056.0, 0.5);
}

TEST(Aab, GranularityRange) {
  Backplane bp("aab");
  // "any granularity from 16 channels of a single byte to 2 channels of
  // 64 bit might be useful" — both extremes keep the 1 GB/s slot rate.
  bp.configure_channels(std::vector<int>(16, 8));
  EXPECT_EQ(bp.channel_count(), 16);
  EXPECT_NEAR(bp.slot_mbps(), 1056.0, 0.5);
  bp.configure_channels({64, 64});
  EXPECT_EQ(bp.channel_count(), 2);
  EXPECT_NEAR(bp.slot_mbps(), 1056.0, 0.5);
  bp.configure_channels({64, 32, 16, 8, 8});
  EXPECT_EQ(bp.channel_count(), 5);
}

TEST(Aab, InvalidConfigurationsRejected) {
  Backplane bp("aab");
  EXPECT_THROW(bp.configure_channels({}), util::Error);
  EXPECT_THROW(bp.configure_channels({24}), util::Error);       // bad width
  EXPECT_THROW(bp.configure_channels({64, 64, 8}), util::Error);  // >128 lines
}

TEST(Aab, PassiveBackplaneIsFixed) {
  // "A simple pipelined, passive, i.e. not configurable, backplane is
  // currently used for system and performance tests."
  Backplane bp("aab", 8, /*passive=*/true);
  EXPECT_TRUE(bp.passive());
  EXPECT_EQ(bp.channel_count(), 4);
  EXPECT_THROW(bp.configure_channels({64, 64}), util::StateError);
}

TEST(Aab, TransferTimeHasBurstPlusPipeline) {
  Backplane bp("aab");
  const std::uint64_t bytes = 1024 * 1024;
  const auto near_slots = bp.transfer(1, 2, 0, bytes);
  const auto far_slots = bp.transfer(1, 7, 0, bytes);
  EXPECT_GT(far_slots, near_slots);  // more pipeline hops
  // Burst dominates: 1 MiB at 264 MB/s ~ 3.97 ms.
  EXPECT_NEAR(util::ps_to_ms(near_slots), 3.97, 0.1);
}

TEST(Aab, TransferValidation) {
  Backplane bp("aab", 4);
  EXPECT_THROW(bp.transfer(0, 0, 0, 100), util::Error);   // same slot
  EXPECT_THROW(bp.transfer(0, 9, 0, 100), util::Error);   // bad slot
  EXPECT_THROW(bp.transfer(0, 1, 7, 100), util::Error);   // bad channel
}

TEST(Aab, PairedBandwidthScales) {
  Backplane bp("aab", 8);
  // "two independent pairs of ACBs and AIBs -> 2 GB/s".
  EXPECT_NEAR(bp.paired_mbps(2), 2112.0, 1.0);
  EXPECT_THROW(bp.paired_mbps(0), util::Error);
  EXPECT_THROW(bp.paired_mbps(5), util::Error);  // 10 slots needed
}

TEST(Aab, SignalBudget) {
  EXPECT_EQ(AabSpec::kSignalLines, 160);
  EXPECT_EQ(AabSpec::kDataLines, 128);
}

}  // namespace
}  // namespace atlantis::core
