#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/status.hpp"

namespace atlantis::util {
namespace {

TEST(Table, RendersTitleHeaderAndRows) {
  Table t("Table 1. DMA performance");
  t.set_header({"Block size", "Read MB/s", "Write MB/s"});
  t.add_row({"64 kB", "105.2", "118.9"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Table 1. DMA performance"), std::string::npos);
  EXPECT_NE(out.find("Block size"), std::string::npos);
  EXPECT_NE(out.find("105.2"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("x");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Table, SeparatorAndNotes) {
  Table t("x");
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  t.add_note("reconstructed from the garbled scrape");
  const std::string out = t.render();
  EXPECT_NE(out.find("note: reconstructed"), std::string::npos);
  // Four rules: top, under header, separator, bottom.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+--", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t("x");
  t.set_header({"col"});
  t.add_row({"very-long-cell-content"});
  t.add_row({"s"});
  const std::string out = t.render();
  // Each data line has the same length.
  std::size_t first_len = 0;
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);  // title
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first_len == 0) {
      first_len = line.size();
    } else {
      EXPECT_EQ(line.size(), first_len) << line;
    }
  }
}

TEST(Table, FmtFormatsPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(10.0, 0), "10");
  EXPECT_EQ(Table::fmt(1.5), "1.5");
}

TEST(Table, WorksWithoutHeader) {
  Table t("no header");
  t.add_row({"a", "b"});
  EXPECT_NE(t.render().find("| a | b |"), std::string::npos);
}

}  // namespace
}  // namespace atlantis::util
