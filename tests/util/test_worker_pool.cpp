// WorkerPool: chunked dispatch correctness and per-worker accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/worker_pool.hpp"

namespace atlantis::util {
namespace {

TEST(WorkerPool, ChunkedCoversEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  for (const int n : {0, 1, 3, 4, 7, 64, 1000}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n > 0 ? n : 1));
    for (auto& h : hits) h.store(0);
    pool.parallel_for_chunked(n, [&](int i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    int total = 0;
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "n=" << n << " index " << i;
      total += hits[static_cast<std::size_t>(i)].load();
    }
    EXPECT_EQ(total, n > 0 ? n : 0);
  }
}

TEST(WorkerPool, ChunkedMatchesParallelForResults) {
  WorkerPool pool(3);
  const int n = 257;
  std::vector<std::int64_t> a(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> b(static_cast<std::size_t>(n), 0);
  pool.parallel_for(n, [&](int i) { a[static_cast<std::size_t>(i)] = 3 * i; });
  pool.parallel_for_chunked(
      n, [&](int i) { b[static_cast<std::size_t>(i)] = 3 * i; });
  EXPECT_EQ(a, b);
}

TEST(WorkerPool, SingleThreadPoolStillRunsChunked) {
  WorkerPool pool(1);
  std::int64_t sum = 0;
  pool.parallel_for_chunked(100, [&](int i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(WorkerPool, WorkerStatsAccountForEveryTask) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.worker_stats().size(), 4u);
  pool.reset_worker_stats();

  const int n = 1024;
  std::atomic<int> ran{0};
  pool.parallel_for(n, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), n);

  std::uint64_t tasks = 0;
  for (const WorkerPool::WorkerStats& s : pool.worker_stats()) {
    tasks += s.tasks;
  }
  // Per-index dispatch: every index is one task, wherever it landed.
  EXPECT_EQ(tasks, static_cast<std::uint64_t>(n));

  // Chunked dispatch: at most size() chunks are handed out in total
  // (which worker grabs each one depends on wake-up timing).
  pool.reset_worker_stats();
  pool.parallel_for_chunked(n, [&](int) {});
  std::uint64_t chunks = 0;
  for (const WorkerPool::WorkerStats& s : pool.worker_stats()) {
    chunks += s.tasks;
  }
  EXPECT_GE(chunks, 1u);
  EXPECT_LE(chunks, 4u);
}

TEST(WorkerPool, SerialFallbackChargesTheCaller) {
  WorkerPool pool(1);  // helpers_.empty(): serial path
  pool.reset_worker_stats();
  pool.parallel_for(10, [](int) {});
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].tasks, 10u);
}

}  // namespace
}  // namespace atlantis::util
