#include "util/fixed_point.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace atlantis::util {
namespace {

TEST(Fixed, IntRoundtrip) {
  for (int i = -100; i <= 100; ++i) {
    EXPECT_EQ(Fix16::from_int(i).to_int(), i);
  }
}

TEST(Fixed, DoubleRoundtripWithinHalfUlp) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    const double back = Fix16::from_double(v).to_double();
    EXPECT_NEAR(back, v, 1.0 / 256.0 / 2.0 + 1e-12);
  }
}

TEST(Fixed, AdditionIsExact) {
  const auto a = Fix16::from_double(1.25);
  const auto b = Fix16::from_double(2.5);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((a - b).to_double(), -1.25);
  EXPECT_DOUBLE_EQ((-a).to_double(), -1.25);
}

TEST(Fixed, MultiplicationOfDyadicsIsExact) {
  const auto a = Fix16::from_double(1.5);
  const auto b = Fix16::from_double(2.25);
  EXPECT_DOUBLE_EQ((a * b).to_double(), 3.375);
}

TEST(Fixed, DivisionApproximatesRatio) {
  const auto a = Fix32::from_double(10.0);
  const auto b = Fix32::from_double(3.0);
  EXPECT_NEAR((a / b).to_double(), 10.0 / 3.0, 1.0 / 65536.0);
}

TEST(Fixed, DivisionByZeroThrows) {
  EXPECT_THROW(Fix16::from_int(1) / Fix16::from_int(0), Error);
}

TEST(Fixed, SaturatesInsteadOfWrapping) {
  const auto big = Fix16::from_double(127.0);
  const auto sum = big + big;
  EXPECT_DOUBLE_EQ(sum.to_double(), Fix16::from_raw(Fix16::kMaxRaw).to_double());
  const auto neg = Fix16::from_double(-128.0);
  const auto diff = neg + neg;
  EXPECT_EQ(diff.raw(), Fix16::kMinRaw);
}

TEST(Fixed, ComparisonFollowsValue) {
  const auto a = Fix16::from_double(1.0);
  const auto b = Fix16::from_double(2.0);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, Fix16::from_double(1.0));
}

TEST(Fixed, LerpEndpointsAndMidpoint) {
  const auto a = Fix16::from_double(10.0);
  const auto b = Fix16::from_double(20.0);
  EXPECT_DOUBLE_EQ(Fix16::lerp(a, b, Fix16::from_double(0.0)).to_double(), 10.0);
  EXPECT_DOUBLE_EQ(Fix16::lerp(a, b, Fix16::from_double(1.0)).to_double(), 20.0);
  EXPECT_DOUBLE_EQ(Fix16::lerp(a, b, Fix16::from_double(0.5)).to_double(), 15.0);
}

// Property: fixed-point add matches double add when no saturation occurs.
class FixedAddSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FixedAddSweep, MatchesDouble) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-50.0, 50.0);
    const double y = rng.uniform(-50.0, 50.0);
    const auto fx = Fix32::from_double(x);
    const auto fy = Fix32::from_double(y);
    EXPECT_NEAR((fx + fy).to_double(), x + y, 2.0 / 65536.0);
    EXPECT_NEAR((fx * fy).to_double(), x * y, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedAddSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace atlantis::util
