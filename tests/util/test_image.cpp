#include "util/image.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace atlantis::util {
namespace {

TEST(Image, ConstructionAndAccess) {
  Image<std::uint8_t> img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  EXPECT_EQ(img.at(0, 0), 7);
  img.at(2, 1) = 42;
  EXPECT_EQ(img(2, 1), 42);
}

TEST(Image, OutOfBoundsThrows) {
  Image<std::uint8_t> img(4, 3);
  EXPECT_THROW(img.at(4, 0), Error);
  EXPECT_THROW(img.at(0, 3), Error);
  EXPECT_THROW(img.at(-1, 0), Error);
}

TEST(Image, ZeroSizeRejected) {
  EXPECT_THROW((Image<std::uint8_t>(0, 4)), Error);
  EXPECT_THROW((Image<std::uint8_t>(4, -1)), Error);
}

TEST(Image, ClampedReadsEdge) {
  Image<std::uint8_t> img(2, 2);
  img(0, 0) = 1;
  img(1, 0) = 2;
  img(0, 1) = 3;
  img(1, 1) = 4;
  EXPECT_EQ(img.clamped(-5, -5), 1);
  EXPECT_EQ(img.clamped(9, 0), 2);
  EXPECT_EQ(img.clamped(0, 9), 3);
  EXPECT_EQ(img.clamped(9, 9), 4);
}

TEST(Image, EqualityIsValueBased) {
  Image<std::uint8_t> a(2, 2, 5), b(2, 2, 5);
  EXPECT_EQ(a, b);
  b(1, 1) = 6;
  EXPECT_NE(a, b);
}

TEST(Image, PgmWriterProducesValidHeader) {
  Image<std::uint8_t> img(3, 2, 128);
  const std::string path = ::testing::TempDir() + "/test.pgm";
  write_pgm(img, path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::string payload((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(payload.size(), 6u);
  EXPECT_EQ(static_cast<unsigned char>(payload[0]), 128);
}

TEST(Image, PpmWriterProducesValidHeader) {
  Image<Rgb> img(2, 2, Rgb{10, 20, 30});
  const std::string path = ::testing::TempDir() + "/test.ppm";
  write_ppm(img, path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
}

TEST(Image, WriteToBadPathThrows) {
  Image<std::uint8_t> img(2, 2);
  EXPECT_THROW(write_pgm(img, "/nonexistent-dir-xyz/out.pgm"), Error);
}

}  // namespace
}  // namespace atlantis::util
