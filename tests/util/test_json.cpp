#include "util/json.hpp"

#include <gtest/gtest.h>

namespace atlantis::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_FALSE(json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json_parse("42").as_number(), 42.0);
  EXPECT_EQ(json_parse("\"hi\\n\"").as_string(), "hi\n");
}

TEST(Json, ParsesNestedContainers) {
  const JsonValue v = json_parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  const JsonArray& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
  EXPECT_EQ(a[2].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").at("e").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, RejectsTrailingGarbage) {
  // Regression: a valid document followed by anything non-whitespace is
  // malformed, not a successful parse of the prefix.
  EXPECT_THROW(json_parse("{} {}"), Error);
  EXPECT_THROW(json_parse("[1,2] x"), Error);
  EXPECT_THROW(json_parse("1 2"), Error);
  EXPECT_THROW(json_parse("null,"), Error);
  EXPECT_THROW(json_parse("\"s\"\"t\""), Error);
  // Trailing whitespace stays legal.
  EXPECT_DOUBLE_EQ(json_parse(" 7 \n\t").as_number(), 7.0);
}

TEST(Json, AcceptsRfc8259Numbers) {
  EXPECT_DOUBLE_EQ(json_parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(json_parse("-0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(json_parse("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(json_parse("0.5").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(json_parse("10.25").as_number(), 10.25);
  EXPECT_DOUBLE_EQ(json_parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(json_parse("1.5E+2").as_number(), 150.0);
  EXPECT_DOUBLE_EQ(json_parse("2e-2").as_number(), 0.02);
  EXPECT_DOUBLE_EQ(json_parse("0e0").as_number(), 0.0);
}

TEST(Json, RejectsNonRfc8259Numbers) {
  // strtod would happily take most of these; the grammar must not.
  EXPECT_THROW(json_parse("1."), Error);       // fraction needs digits
  EXPECT_THROW(json_parse("1.e5"), Error);
  EXPECT_THROW(json_parse(".5"), Error);       // integer part required
  EXPECT_THROW(json_parse("01"), Error);       // no leading zeros
  EXPECT_THROW(json_parse("-01"), Error);
  EXPECT_THROW(json_parse("+1"), Error);       // no leading plus
  EXPECT_THROW(json_parse("1e"), Error);       // exponent needs digits
  EXPECT_THROW(json_parse("1e+"), Error);
  EXPECT_THROW(json_parse("-"), Error);
  EXPECT_THROW(json_parse("0x10"), Error);
  EXPECT_THROW(json_parse("inf"), Error);
  EXPECT_THROW(json_parse("NaN"), Error);
  EXPECT_THROW(json_parse("[01]"), Error);     // inside containers too
  EXPECT_THROW(json_parse(R"({"k": 1.})"), Error);
}

TEST(Json, ReportsOffsets) {
  try {
    json_parse("[1, 01]");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

}  // namespace
}  // namespace atlantis::util
