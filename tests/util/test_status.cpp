#include "util/status.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace atlantis::util {
namespace {

TEST(ErrorCode, NamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_STREQ(error_code_name(ErrorCode::kDmaStall), "dma_stall");
  EXPECT_STREQ(error_code_name(ErrorCode::kDmaAbort), "dma_abort");
  EXPECT_STREQ(error_code_name(ErrorCode::kLinkError), "link_error");
  EXPECT_STREQ(error_code_name(ErrorCode::kTruncatedFrame),
               "truncated_frame");
  EXPECT_STREQ(error_code_name(ErrorCode::kXoff), "xoff");
  EXPECT_STREQ(error_code_name(ErrorCode::kSeu), "seu");
  EXPECT_STREQ(error_code_name(ErrorCode::kConfigCrc), "config_crc");
  EXPECT_STREQ(error_code_name(ErrorCode::kBoardDead), "board_dead");
  EXPECT_STREQ(error_code_name(ErrorCode::kTimeout), "timeout");
  EXPECT_STREQ(error_code_name(ErrorCode::kRetriesExhausted),
               "retries_exhausted");
  EXPECT_STREQ(error_code_name(ErrorCode::kCircuitOpen), "circuit_open");
  EXPECT_STREQ(error_code_name(ErrorCode::kServiceCrash), "service_crash");
  EXPECT_STREQ(error_code_name(ErrorCode::kAdmissionReject),
               "admission_reject");
  EXPECT_STREQ(error_code_name(ErrorCode::kShardOverload), "shard_overload");
}

TEST(ErrorCode, EveryCodeHasAName) {
  // Guards kErrorCodeCount against the enum drifting: a code added
  // without a name (or without bumping the count) fails here.
  std::set<std::string> seen;
  for (int i = 0; i < kErrorCodeCount; ++i) {
    const char* name = error_name(static_cast<ErrorCode>(i));
    EXPECT_STRNE(name, "unknown") << "ErrorCode " << i << " has no name";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate ErrorCode name: " << name;
  }
  EXPECT_STREQ(error_name(static_cast<ErrorCode>(kErrorCodeCount)),
               "unknown");
}

TEST(Result, SuccessCarriesValue) {
  const Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.error(), ErrorCode::kOk);
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(-1), 7);
  EXPECT_TRUE(r.message().empty());
}

TEST(Result, FailureCarriesCodeAndMessage) {
  const auto r = Result<int>::failure(ErrorCode::kTimeout, "budget spent");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.error(), ErrorCode::kTimeout);
  EXPECT_EQ(r.message(), "budget spent");
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_THROW(r.value(), Error);
}

TEST(Result, ValueOrThrowIsTheSanctionedBridge) {
  Result<int> ok = 11;
  EXPECT_EQ(ok.value_or_throw(), 11);
  const Result<int> bad =
      Result<int>::failure(ErrorCode::kShardOverload, "queues full");
  try {
    (void)bad.value_or_throw();
    FAIL() << "value_or_throw on a failure must throw";
  } catch (const StateError& e) {
    // The exception names the code, so throwing call sites lose no
    // diagnostics compared with the old ad-hoc throwing variants.
    EXPECT_NE(std::string(e.what()).find("shard_overload"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("queues full"), std::string::npos);
  }
}

TEST(Result, WorksWithMoveOnlyishPayloads) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "payload");
  const auto f = Result<std::string>::failure(ErrorCode::kLinkError);
  EXPECT_EQ(f.value_or("fallback"), "fallback");
}

}  // namespace
}  // namespace atlantis::util
