#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace atlantis::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MatchesDirectComputation) {
  Accumulator a;
  const double xs[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (const double x : xs) {
    a.add(x);
    sum += x;
  }
  const double mean = sum / 5.0;
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= 4.0;
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_NEAR(a.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 16.0);
  EXPECT_DOUBLE_EQ(a.sum(), sum);
}

TEST(Accumulator, MergeEqualsSinglePass) {
  Rng rng(17);
  Accumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator a, empty;
  a.add(3.0);
  a.add(5.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Accumulator, SingleSampleHasZeroVariance) {
  Accumulator a;
  a.add(42.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.mean(), 42.0);
}

TEST(Histogram, RejectsBadShape) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), Error);
}

TEST(Histogram, BinsAndTotals) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < h.bins(); ++b) EXPECT_EQ(h.bin(b), 1u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(3), 1u);
}

TEST(Histogram, QuantileApproximatesMedian) {
  Histogram h(0.0, 100.0, 100);
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(0.0, 100.0));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 3.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 3.0);
}

TEST(LogHistogram, QuantilesTrackADistributionSpanningDecades) {
  // Latencies spanning 1e3..1e9 — a linear histogram would put nearly
  // everything in one bin; the log buckets keep ~2.6% relative error.
  LogHistogram h;
  Rng rng(29);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::pow(10.0, rng.uniform(3.0, 9.0));
    samples.push_back(x);
    h.add(x);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.5, 0.99, 0.999}) {
    const double exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    EXPECT_NEAR(h.quantile(q) / exact, 1.0, 0.05) << "q=" << q;
  }
  EXPECT_EQ(h.count(), 20000u);
}

TEST(LogHistogram, TinyAndHugeSamplesLandInTheEdgeBins) {
  LogHistogram h(/*max_value=*/1e6);
  h.add(0.0);     // <= 1 -> first bin
  h.add(0.5);
  h.add(1e12);    // beyond max -> saturates, never throws
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LE(h.quantile(0.0), 1.0);
  EXPECT_GE(h.quantile(1.0), 1e6 * 0.9);
}

TEST(LogHistogram, MergeMatchesPooledSamples) {
  LogHistogram a, b, pooled;
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    const double x = std::pow(10.0, rng.uniform(2.0, 8.0));
    (i % 2 == 0 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  for (const double q : {0.5, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), pooled.quantile(q)) << "q=" << q;
  }
}

}  // namespace
}  // namespace atlantis::util
