#include "util/cfloat.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace atlantis::util {
namespace {

TEST(CFloat, ZeroAndSpecials) {
  const CFloat z = CFloat::from_double(0.0, kFloat32);
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.to_double(), 0.0);
  const CFloat inf = CFloat::from_double(INFINITY, kFloat32);
  EXPECT_TRUE(inf.is_inf());
  const CFloat nan = CFloat::from_double(NAN, kFloat32);
  EXPECT_TRUE(nan.is_nan());
  EXPECT_TRUE(std::isnan(nan.to_double()));
}

TEST(CFloat, Float32FormatMatchesIeeeSingle) {
  // In the 8/23 format, from_double must round exactly like a float cast.
  Rng rng(41);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(-1e6, 1e6);
    EXPECT_EQ(CFloat::from_double(v, kFloat32).to_double(),
              static_cast<double>(static_cast<float>(v)))
        << "v=" << v;
  }
}

TEST(CFloat, PackUnpackRoundtrip) {
  Rng rng(43);
  for (const auto& fmt : {kFloat32, kFloat24, kFloat18}) {
    for (int i = 0; i < 1000; ++i) {
      const CFloat a = CFloat::from_double(rng.uniform(-100.0, 100.0), fmt);
      const CFloat b = CFloat::from_bits(a.pack(), fmt);
      EXPECT_EQ(a.pack(), b.pack());
      EXPECT_EQ(a.to_double(), b.to_double());
    }
  }
}

TEST(CFloat, PackedWidthFitsFormat) {
  const CFloat a = CFloat::from_double(-123.456, kFloat18);
  EXPECT_LT(a.pack(), 1ull << kFloat18.total_bits());
  EXPECT_EQ(kFloat18.total_bits(), 18);
  EXPECT_EQ(kFloat32.total_bits(), 32);
  EXPECT_EQ(kFloat24.total_bits(), 24);
}

TEST(CFloat, AddMatchesFloatInSingleFormat) {
  // float hardware is the oracle for the 8/23 format: single-rounded
  // add/sub/mul/div in round-to-nearest-even.
  Rng rng(47);
  for (int i = 0; i < 3000; ++i) {
    const float x = static_cast<float>(rng.uniform(-1e4, 1e4));
    const float y = static_cast<float>(rng.uniform(-1e4, 1e4));
    const CFloat a = CFloat::from_double(x, kFloat32);
    const CFloat b = CFloat::from_double(y, kFloat32);
    EXPECT_EQ((a + b).to_double(), static_cast<double>(x + y));
    EXPECT_EQ((a - b).to_double(), static_cast<double>(x - y));
    EXPECT_EQ((a * b).to_double(), static_cast<double>(x * y));
    if (y != 0.0f) {
      EXPECT_EQ((a / b).to_double(), static_cast<double>(x / y));
    }
  }
}

TEST(CFloat, CancellationIsExact) {
  const CFloat a = CFloat::from_double(1.0, kFloat32);
  const CFloat b = CFloat::from_double(1.0, kFloat32);
  EXPECT_TRUE((a - b).is_zero());
}

TEST(CFloat, InfinityArithmetic) {
  const CFloat inf = CFloat::from_double(INFINITY, kFloat32);
  const CFloat one = CFloat::from_double(1.0, kFloat32);
  EXPECT_TRUE((inf + one).is_inf());
  EXPECT_TRUE((inf - inf).is_nan());
  EXPECT_TRUE((inf * one).is_inf());
  EXPECT_TRUE((one / CFloat::from_double(0.0, kFloat32)).is_inf());
  EXPECT_TRUE((CFloat::from_double(0.0, kFloat32) /
               CFloat::from_double(0.0, kFloat32))
                  .is_nan());
}

TEST(CFloat, OverflowSaturatesToInfinity) {
  const CFloat big = CFloat::from_double(1e30, kFloat18);
  EXPECT_TRUE(big.is_inf());  // 6-bit exponent cannot hold 1e30
  const CFloat max24 = CFloat::from_double(1e18, kFloat24);
  EXPECT_TRUE((max24 * max24).is_inf());
}

TEST(CFloat, UnderflowFlushesToZero) {
  const CFloat tiny = CFloat::from_double(1e-30, kFloat18);
  EXPECT_TRUE(tiny.is_zero());
}

TEST(CFloat, NegFlipsSign) {
  const CFloat a = CFloat::from_double(2.5, kFloat24);
  EXPECT_EQ(CFloat::neg(a).to_double(), -2.5);
}

TEST(CFloat, RsqrtAccuracyScalesWithFormat) {
  Rng rng(53);
  double worst18 = 0.0, worst32 = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0.01, 1000.0);
    const double exact = 1.0 / std::sqrt(v);
    const double e18 = std::fabs(
        CFloat::rsqrt(CFloat::from_double(v, kFloat18)).to_double() - exact) /
        exact;
    const double e32 = std::fabs(
        CFloat::rsqrt(CFloat::from_double(v, kFloat32)).to_double() - exact) /
        exact;
    worst18 = std::max(worst18, e18);
    worst32 = std::max(worst32, e32);
  }
  EXPECT_LT(worst18, 1e-2);   // 11-bit mantissa
  EXPECT_LT(worst32, 1e-6);   // 23-bit mantissa
  EXPECT_LT(worst32, worst18);
}

TEST(CFloat, SqrtSpecials) {
  EXPECT_TRUE(CFloat::sqrt(CFloat::from_double(-1.0, kFloat32)).is_nan());
  EXPECT_TRUE(CFloat::sqrt(CFloat::from_double(0.0, kFloat32)).is_zero());
  EXPECT_NEAR(CFloat::sqrt(CFloat::from_double(16.0, kFloat32)).to_double(),
              4.0, 1e-5);
}

TEST(CFloat, FormatMismatchThrows) {
  const CFloat a = CFloat::from_double(1.0, kFloat32);
  const CFloat b = CFloat::from_double(1.0, kFloat18);
  EXPECT_THROW(a + b, Error);
  EXPECT_THROW(a * b, Error);
}

// Parameterized precision ladder: narrower formats must not beat wider
// ones on roundtrip error.
class FormatLadder : public ::testing::TestWithParam<double> {};

TEST_P(FormatLadder, RoundtripErrorOrdering) {
  const double v = GetParam();
  const double e18 =
      std::fabs(CFloat::from_double(v, kFloat18).to_double() - v);
  const double e24 =
      std::fabs(CFloat::from_double(v, kFloat24).to_double() - v);
  const double e32 =
      std::fabs(CFloat::from_double(v, kFloat32).to_double() - v);
  EXPECT_LE(e32, e24);
  EXPECT_LE(e24, e18);
}

INSTANTIATE_TEST_SUITE_P(Values, FormatLadder,
                         ::testing::Values(3.14159, -2.71828, 1234.5678,
                                           0.0001234, -99999.9, 7.0,
                                           1.0 / 3.0));

}  // namespace
}  // namespace atlantis::util
