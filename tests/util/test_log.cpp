#include "util/log.hpp"

#include <gtest/gtest.h>

namespace atlantis::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelIsProcessWide) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(Log, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kOff));
}

TEST(Log, LoggingBelowLevelIsANoOp) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Nothing may be emitted or crash at any level when logging is off.
  ATLANTIS_LOG_DEBUG() << "suppressed " << 1;
  ATLANTIS_LOG_INFO() << "suppressed " << 2.5;
  ATLANTIS_LOG_WARN() << "suppressed " << "three";
  ATLANTIS_LOG_ERROR() << "suppressed";
  SUCCEED();
}

TEST(Log, EmittingLinesDoesNotThrow) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_NO_THROW({ ATLANTIS_LOG_DEBUG() << "visible debug " << 42; });
  EXPECT_NO_THROW({ ATLANTIS_LOG_ERROR() << "visible error"; });
}

}  // namespace
}  // namespace atlantis::util
