// Algebraic property sweeps over every CFloat format: the identities a
// correctly implemented rounded floating point must satisfy regardless
// of precision.
#include <gtest/gtest.h>

#include <cmath>

#include "util/cfloat.hpp"
#include "util/rng.hpp"

namespace atlantis::util {
namespace {

class FormatSweep : public ::testing::TestWithParam<CFloatFormat> {
 protected:
  CFloat num(double v) const { return CFloat::from_double(v, GetParam()); }
};

TEST_P(FormatSweep, AdditionCommutes) {
  Rng rng(101);
  for (int i = 0; i < 500; ++i) {
    const CFloat a = num(rng.uniform(-1e3, 1e3));
    const CFloat b = num(rng.uniform(-1e3, 1e3));
    EXPECT_EQ((a + b).pack(), (b + a).pack());
  }
}

TEST_P(FormatSweep, MultiplicationCommutes) {
  Rng rng(103);
  for (int i = 0; i < 500; ++i) {
    const CFloat a = num(rng.uniform(-1e3, 1e3));
    const CFloat b = num(rng.uniform(-1e3, 1e3));
    EXPECT_EQ((a * b).pack(), (b * a).pack());
  }
}

TEST_P(FormatSweep, AdditiveAndMultiplicativeIdentity) {
  Rng rng(107);
  const CFloat zero = num(0.0);
  const CFloat one = num(1.0);
  for (int i = 0; i < 300; ++i) {
    const CFloat a = num(rng.uniform(-1e4, 1e4));
    EXPECT_EQ((a + zero).pack(), a.pack());
    EXPECT_EQ((a * one).pack(), a.pack());
  }
}

TEST_P(FormatSweep, SelfSubtractionIsZero) {
  Rng rng(109);
  for (int i = 0; i < 300; ++i) {
    const CFloat a = num(rng.uniform(-1e4, 1e4));
    EXPECT_TRUE((a - a).is_zero());
  }
}

TEST_P(FormatSweep, SelfDivisionIsOne) {
  Rng rng(113);
  for (int i = 0; i < 300; ++i) {
    double v = rng.uniform(0.001, 1e4);
    if (rng.bernoulli(0.5)) v = -v;
    const CFloat a = num(v);
    EXPECT_EQ((a / a).to_double(), 1.0);
  }
}

TEST_P(FormatSweep, NegationIsInvolutive) {
  Rng rng(127);
  for (int i = 0; i < 300; ++i) {
    const CFloat a = num(rng.uniform(-1e4, 1e4));
    EXPECT_EQ(CFloat::neg(CFloat::neg(a)).pack(), a.pack());
    EXPECT_TRUE((a + CFloat::neg(a)).is_zero());
  }
}

TEST_P(FormatSweep, RoundingIsMonotone) {
  // If x <= y then round(x) <= round(y) — a property any rounding
  // function must have.
  Rng rng(131);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1e4, 1e4);
    const double y = x + std::fabs(rng.uniform(0.0, 10.0));
    EXPECT_LE(num(x).to_double(), num(y).to_double());
  }
}

TEST_P(FormatSweep, RelativeRoundingErrorBounded) {
  // |round(v) - v| <= ulp/2 <= |v| * 2^-(mant_bits) for normal values.
  Rng rng(137);
  const double bound = std::ldexp(1.0, -GetParam().mant_bits);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0.5, 1e4);
    const double r = num(v).to_double();
    EXPECT_LE(std::fabs(r - v), std::fabs(v) * bound) << v;
  }
}

TEST_P(FormatSweep, SqrtInvertsSquareApproximately) {
  Rng rng(139);
  const double tol = std::ldexp(8.0, -GetParam().mant_bits);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0.1, 100.0);
    const CFloat a = num(v);
    const double back = CFloat::sqrt(a * a).to_double();
    EXPECT_NEAR(back / v, 1.0, tol) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, FormatSweep,
                         ::testing::Values(kFloat18, kFloat24, kFloat32),
                         [](const auto& info) {
                           return "e" + std::to_string(info.param.exp_bits) +
                                  "m" + std::to_string(info.param.mant_bits);
                         });

}  // namespace
}  // namespace atlantis::util
