#include "util/units.hpp"

#include <gtest/gtest.h>

namespace atlantis::util {
namespace {

TEST(Units, PeriodFromMhz) {
  EXPECT_EQ(period_from_mhz(40.0), 25'000);
  EXPECT_EQ(period_from_mhz(33.0), 30'303);
  EXPECT_EQ(period_from_mhz(100.0), 10'000);
  EXPECT_EQ(period_from_mhz(1.0), 1'000'000);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(ps_to_ms(kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(ps_to_us(kMicrosecond), 1.0);
  EXPECT_DOUBLE_EQ(ps_to_s(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ps_to_ms(25 * kMicrosecond), 0.025);
}

TEST(Units, MbPerS) {
  // 100 MB in one second = 100 MB/s.
  EXPECT_DOUBLE_EQ(mb_per_s(100'000'000, kSecond), 100.0);
  // 1 KiB in 10 us ~ 102.4 MB/s.
  EXPECT_NEAR(mb_per_s(kKiB, 10 * kMicrosecond), 102.4, 0.01);
  EXPECT_EQ(mb_per_s(100, 0), 0.0);
  EXPECT_EQ(mb_per_s(100, -5), 0.0);
}

TEST(Units, ByteConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
}

}  // namespace
}  // namespace atlantis::util
