#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace atlantis::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroYieldsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(-1.0, 1.0);
  EXPECT_NEAR(sum / n, 0.0, 0.02);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(8);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, BitsLookBalanced) {
  Rng rng(10);
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ones += __builtin_popcountll(rng.next_u64());
  }
  EXPECT_NEAR(static_cast<double>(ones) / (64.0 * n), 0.5, 0.01);
}

}  // namespace
}  // namespace atlantis::util
