#include "util/bitops.hpp"

#include <gtest/gtest.h>

namespace atlantis::util {
namespace {

TEST(BitOps, BitWidthOf) {
  EXPECT_EQ(bit_width_of(0), 1);
  EXPECT_EQ(bit_width_of(1), 1);
  EXPECT_EQ(bit_width_of(2), 2);
  EXPECT_EQ(bit_width_of(255), 8);
  EXPECT_EQ(bit_width_of(256), 9);
  EXPECT_EQ(bit_width_of(~0ull), 64);
}

TEST(BitOps, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(64), ~0ull);
  EXPECT_THROW(low_mask(65), Error);
  EXPECT_THROW(low_mask(-1), Error);
}

TEST(BitOps, ExtractBits) {
  EXPECT_EQ(extract_bits(0xDEADBEEF, 0, 8), 0xEFu);
  EXPECT_EQ(extract_bits(0xDEADBEEF, 8, 8), 0xBEu);
  EXPECT_EQ(extract_bits(0xDEADBEEF, 16, 16), 0xDEADu);
  EXPECT_EQ(extract_bits(0xF0, 4, 0), 0u);
  EXPECT_THROW(extract_bits(1, 60, 8), Error);
}

TEST(BitOps, SignExtend) {
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x1FF, 8), -1);  // upper bits ignored
  EXPECT_EQ(sign_extend(1, 1), -1);
  EXPECT_EQ(sign_extend(0, 1), 0);
  EXPECT_THROW(sign_extend(0, 0), Error);
}

TEST(BitOps, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
  EXPECT_THROW(round_up(1, 0), Error);
}

TEST(BitOps, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_THROW(ceil_div(5, 0), Error);
}

TEST(BitOps, IsPow2AndLog2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(log2_exact(1), 0);
  EXPECT_EQ(log2_exact(1024), 10);
  EXPECT_THROW(log2_exact(3), Error);
}

// Property sweep: extract composes with shifts for many (lo, width).
class ExtractSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExtractSweep, ExtractMatchesShiftMask) {
  const int lo = GetParam();
  const std::uint64_t v = 0x0123456789ABCDEFull;
  for (int width = 0; lo + width <= 64; width += 7) {
    EXPECT_EQ(extract_bits(v, lo, width), (v >> lo) & low_mask(width))
        << "lo=" << lo << " width=" << width;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOffsets, ExtractSweep,
                         ::testing::Values(0, 1, 7, 8, 31, 32, 33, 63));

}  // namespace
}  // namespace atlantis::util
