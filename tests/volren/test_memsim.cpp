#include "volren/memsim.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace atlantis::volren {
namespace {

TEST(VoxelMemory, FirstAccessMissesThenStreams) {
  const Volume v(64, 64, 64);
  VoxelMemory mem(v);
  const std::uint64_t first = mem.sample_access(10.5, 10.5, 10.5);
  EXPECT_GT(first, 1u);  // eight cold banks
  const std::uint64_t second = mem.sample_access(11.5, 10.5, 10.5);
  EXPECT_EQ(second, 1u);  // same rows in all banks
  EXPECT_EQ(mem.total_samples(), 2u);
}

TEST(VoxelMemory, AxisAlignedMarchIsRowFriendly) {
  const Volume v(128, 128, 64);
  VoxelMemory mem(v);
  for (int x = 1; x < 126; ++x) {
    mem.sample_access(x + 0.5, 64.2, 32.2);
  }
  EXPECT_GT(mem.hit_rate(), 0.95);
  EXPECT_LT(mem.mean_cycles_per_sample(), 1.2);
}

TEST(VoxelMemory, RandomAccessThrashesRows) {
  const Volume v(128, 128, 64);
  VoxelMemory aligned(v);
  VoxelMemory random(v);
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    aligned.sample_access(1.0 + i % 120, 64.0, 32.0);
    random.sample_access(rng.uniform(1, 126), rng.uniform(1, 126),
                         rng.uniform(1, 62));
  }
  EXPECT_GT(random.mean_cycles_per_sample(),
            2.0 * aligned.mean_cycles_per_sample());
  EXPECT_LT(random.hit_rate(), aligned.hit_rate());
}

TEST(VoxelMemory, ObliqueCostsMoreThanAxisAligned) {
  // This is the mechanism behind the paper's "perspective views reduce
  // the rendering speed by a factor of about 2".
  const Volume v(128, 128, 128);
  VoxelMemory axis(v);
  VoxelMemory oblique(v);
  for (int i = 1; i < 120; ++i) {
    axis.sample_access(i, 64.0, 64.0);
    oblique.sample_access(i, 10.0 + 0.9 * i, 20.0 + 0.8 * i);
  }
  EXPECT_GT(oblique.total_cycles(), axis.total_cycles());
}

TEST(VoxelMemory, ResetClearsStateAndCounters) {
  const Volume v(32, 32, 32);
  VoxelMemory mem(v);
  mem.sample_access(5, 5, 5);
  mem.sample_access(6, 5, 5);
  mem.reset();
  EXPECT_EQ(mem.total_cycles(), 0u);
  EXPECT_EQ(mem.total_samples(), 0u);
  EXPECT_GT(mem.sample_access(5, 5, 5), 1u);  // banks closed again
}

TEST(VoxelMemory, CostBoundedByWorstBankPenalty) {
  const Volume v(64, 64, 64);
  hw::SdramConfig cfg;
  VoxelMemory mem(v, cfg);
  util::Rng rng(9);
  const std::uint64_t worst =
      static_cast<std::uint64_t>(cfg.t_rp + cfg.t_rcd + cfg.t_cas) + 1;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t c = mem.sample_access(
        rng.uniform(1, 62), rng.uniform(1, 62), rng.uniform(1, 62));
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, worst);
  }
}

}  // namespace
}  // namespace atlantis::volren
