#include "volren/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace atlantis::volren {
namespace {

std::vector<std::uint32_t> uniform_rays(int rays, std::uint32_t samples) {
  return std::vector<std::uint32_t>(static_cast<std::size_t>(rays), samples);
}

TEST(Pipeline, SingleContextStallsMoreThan90Percent) {
  // The paper's "more than 90% of rendering time" without
  // multi-threading: one ray issues a sample every `depth` cycles.
  PipelineParams p;
  p.depth = 24;
  p.contexts = 1;
  const PipelineResult r = simulate_pipeline(uniform_rays(100, 50), p);
  EXPECT_GT(r.stall_fraction(), 0.9);
  EXPECT_LT(r.efficiency(), 0.1);
}

TEST(Pipeline, EnoughContextsPushStallsBelow10Percent) {
  // "...to less than 10%" with ray multi-threading.
  PipelineParams p;
  p.depth = 24;
  p.contexts = 32;
  const PipelineResult r = simulate_pipeline(uniform_rays(1000, 50), p);
  EXPECT_LT(r.stall_fraction(), 0.1);
  EXPECT_GT(r.efficiency(), 0.9);
}

TEST(Pipeline, AllSamplesAreIssuedExactlyOnce) {
  util::Rng rng(13);
  std::vector<std::uint32_t> rays;
  std::uint64_t total = 0;
  for (int i = 0; i < 500; ++i) {
    const auto n = static_cast<std::uint32_t>(rng.next_below(40));
    rays.push_back(n);
    total += n;
  }
  for (const int contexts : {1, 4, 16, 64}) {
    PipelineParams p;
    p.depth = 16;
    p.contexts = contexts;
    const PipelineResult r = simulate_pipeline(rays, p);
    EXPECT_EQ(r.issued, total) << contexts << " contexts";
    EXPECT_GE(r.cycles, total);  // at most one issue per cycle
  }
}

TEST(Pipeline, EfficiencyMonotoneInContexts) {
  const auto rays = uniform_rays(400, 30);
  double prev = 0.0;
  for (const int contexts : {1, 2, 4, 8, 16, 32}) {
    PipelineParams p;
    p.depth = 24;
    p.contexts = contexts;
    const double eff = simulate_pipeline(rays, p).efficiency();
    EXPECT_GE(eff, prev) << contexts;
    prev = eff;
  }
}

TEST(Pipeline, SingleContextEfficiencyIsOneOverDepth) {
  PipelineParams p;
  p.depth = 10;
  p.contexts = 1;
  const PipelineResult r = simulate_pipeline(uniform_rays(10, 100), p);
  EXPECT_NEAR(r.efficiency(), 0.1, 0.005);
}

TEST(Pipeline, DepthOneNeverStalls) {
  PipelineParams p;
  p.depth = 1;
  p.contexts = 1;
  const PipelineResult r = simulate_pipeline(uniform_rays(10, 100), p);
  EXPECT_EQ(r.stalls, 0u);
  EXPECT_DOUBLE_EQ(r.efficiency(), 1.0);
}

TEST(Pipeline, ZeroSampleRaysAreSkipped) {
  std::vector<std::uint32_t> rays = {0, 0, 5, 0, 3, 0};
  PipelineParams p;
  p.depth = 4;
  p.contexts = 2;
  const PipelineResult r = simulate_pipeline(rays, p);
  EXPECT_EQ(r.issued, 8u);
}

TEST(Pipeline, EmptyWorkloadIsZeroCycles) {
  const PipelineResult r = simulate_pipeline({}, PipelineParams{});
  EXPECT_EQ(r.cycles, 0u);
  EXPECT_EQ(r.issued, 0u);
}

TEST(Pipeline, ParamValidation) {
  PipelineParams p;
  p.depth = 0;
  EXPECT_THROW(simulate_pipeline({1}, p), util::Error);
  p.depth = 4;
  p.contexts = 0;
  EXPECT_THROW(simulate_pipeline({1}, p), util::Error);
}

// Parameterized: stall fraction approximates 1 - min(1, C/D).
class ContextSweep : public ::testing::TestWithParam<int> {};

TEST_P(ContextSweep, MatchesAnalyticOccupancy) {
  const int contexts = GetParam();
  PipelineParams p;
  p.depth = 20;
  p.contexts = contexts;
  const PipelineResult r = simulate_pipeline(uniform_rays(2000, 25), p);
  const double expected =
      1.0 - std::min(1.0, static_cast<double>(contexts) / p.depth);
  EXPECT_NEAR(r.stall_fraction(), expected, 0.06) << contexts;
}

INSTANTIATE_TEST_SUITE_P(Contexts, ContextSweep,
                         ::testing::Values(1, 2, 5, 10, 15, 20, 40));

}  // namespace
}  // namespace atlantis::volren
