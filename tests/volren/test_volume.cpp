#include "volren/volume.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace atlantis::volren {
namespace {

TEST(Volume, ConstructionAndAccess) {
  Volume v(8, 4, 2);
  EXPECT_EQ(v.voxel_count(), 64);
  v.set(7, 3, 1, 200);
  EXPECT_EQ(v.at(7, 3, 1), 200);
  EXPECT_THROW(v.at(8, 0, 0), util::Error);
  EXPECT_THROW(Volume(0, 1, 1), util::Error);
}

TEST(Volume, ClampedReadsNearestVoxel) {
  Volume v(2, 2, 2);
  v.set(0, 0, 0, 10);
  v.set(1, 1, 1, 99);
  EXPECT_EQ(v.clamped(-3, -3, -3), 10);
  EXPECT_EQ(v.clamped(5, 5, 5), 99);
}

TEST(Volume, TrilinearIsExactAtVoxelCenters) {
  Volume v(4, 4, 4);
  util::Rng rng(3);
  for (int z = 0; z < 4; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        v.set(x, y, z, static_cast<std::uint8_t>(rng.next_below(256)));
      }
    }
  }
  for (int z = 0; z < 4; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        EXPECT_DOUBLE_EQ(v.sample(x, y, z), v.at(x, y, z));
      }
    }
  }
}

TEST(Volume, TrilinearIsLinearAlongAxes) {
  Volume v(3, 3, 3);
  v.set(0, 1, 1, 0);
  v.set(1, 1, 1, 100);
  EXPECT_DOUBLE_EQ(v.sample(0.5, 1, 1), 50.0);
  EXPECT_DOUBLE_EQ(v.sample(0.25, 1, 1), 25.0);
}

TEST(Volume, TrilinearMidpointAveragesCube) {
  Volume v(2, 2, 2);
  int sum = 0;
  int val = 0;
  for (int z = 0; z < 2; ++z) {
    for (int y = 0; y < 2; ++y) {
      for (int x = 0; x < 2; ++x) {
        val += 30;
        v.set(x, y, z, static_cast<std::uint8_t>(val));
        sum += val;
      }
    }
  }
  EXPECT_DOUBLE_EQ(v.sample(0.5, 0.5, 0.5), sum / 8.0);
}

TEST(Volume, GradientPointsUphill) {
  Volume v(5, 5, 5);
  // Ramp along x: value = 40x.
  for (int z = 0; z < 5; ++z) {
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        v.set(x, y, z, static_cast<std::uint8_t>(40 * x));
      }
    }
  }
  const Vec3 g = v.gradient(2, 2, 2);
  EXPECT_NEAR(g.x, 40.0, 1e-9);
  EXPECT_NEAR(g.y, 0.0, 1e-9);
  EXPECT_NEAR(g.z, 0.0, 1e-9);
}

TEST(Vec3, BasicOps) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ((a + b).x, 5.0);
  EXPECT_DOUBLE_EQ((b - a).z, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_NEAR((Vec3{3, 4, 0}).norm(), 5.0, 1e-12);
  EXPECT_NEAR((Vec3{10, 0, 0}).normalized().x, 1.0, 1e-12);
  const Vec3 c = Vec3{1, 0, 0}.cross(Vec3{0, 1, 0});
  EXPECT_DOUBLE_EQ(c.z, 1.0);
  EXPECT_DOUBLE_EQ(Vec3{}.normalized().norm(), 0.0);
}

TEST(Phantom, HasThePaperMaterialMix) {
  // CT-like: air, soft tissue, and a hard (bone) shell must all be
  // present in the proportions that make space-skipping worthwhile.
  const Volume v = make_ct_phantom(64, 64, 32);
  std::int64_t air = 0, tissue = 0, bone = 0;
  for (const std::uint8_t val : v.data()) {
    if (val < 20) {
      ++air;
    } else if (val >= 180) {
      ++bone;
    } else {
      ++tissue;
    }
  }
  const auto total = static_cast<double>(v.voxel_count());
  EXPECT_GT(air / total, 0.3);     // mostly empty space around the head
  EXPECT_GT(tissue / total, 0.2);  // brain
  EXPECT_GT(bone / total, 0.01);   // skull shell
  EXPECT_LT(bone / total, 0.2);
}

TEST(Phantom, DeterministicFromSeed) {
  EXPECT_EQ(make_ct_phantom(32, 32, 16, 5).data(),
            make_ct_phantom(32, 32, 16, 5).data());
  EXPECT_NE(make_ct_phantom(32, 32, 16, 5).data(),
            make_ct_phantom(32, 32, 16, 6).data());
}

TEST(Phantom, CenterIsTissueCornerIsAir) {
  const Volume v = make_ct_phantom(64, 64, 64);
  EXPECT_EQ(v.at(0, 0, 0), 0);
  const std::uint8_t center = v.at(32, 32, 32);
  EXPECT_GT(center, 20);
  EXPECT_LT(center, 180);
}

}  // namespace
}  // namespace atlantis::volren
