#include "volren/renderer.hpp"

#include <gtest/gtest.h>

namespace atlantis::volren {
namespace {

// One shared small phantom: frame rendering is the expensive part.
const Volume& test_volume() {
  static const Volume v = make_ct_phantom(64, 64, 32);
  return v;
}

FpgaRendererConfig small_config() {
  FpgaRendererConfig cfg;
  cfg.image_width = 64;
  cfg.image_height = 32;
  return cfg;
}

TEST(Renderer, ReportIsInternallyConsistent) {
  FpgaVolumeRenderer r(test_volume(), small_config());
  const FrameReport rep = r.render_frame(tf_opaque(), ViewDirection::kFrontal);
  EXPECT_EQ(rep.view, "frontal");
  EXPECT_EQ(rep.transfer, "opaque");
  EXPECT_EQ(rep.stats.rays, 64u * 32u);
  EXPECT_EQ(rep.pipeline.issued, rep.stats.samples);
  EXPECT_GT(rep.memory_cycles, 0u);
  EXPECT_GT(rep.fps_tech, 0.0);
  EXPECT_NEAR(rep.sample_fraction,
              rep.stats.sample_fraction(test_volume().voxel_count()), 1e-12);
}

TEST(Renderer, PipelineEfficiencyInPaperRange) {
  // "On average one achieves efficiencies of between 90% and 97%."
  FpgaVolumeRenderer r(test_volume(), small_config());
  const FrameReport rep =
      r.render_frame(tf_semi_high(), ViewDirection::kFrontal);
  EXPECT_GT(rep.efficiency, 0.85);
  EXPECT_LE(rep.efficiency, 1.0);
}

TEST(Renderer, OpaqueRendersFasterThanSemiTransparent) {
  // The 138 Hz (opaque) vs 20 Hz (semi-transparent) ordering.
  FpgaVolumeRenderer r(test_volume(), small_config());
  const FrameReport opaque =
      r.render_frame(tf_opaque(), ViewDirection::kFrontal);
  const FrameReport semi =
      r.render_frame(tf_semi_high(), ViewDirection::kFrontal);
  EXPECT_GT(opaque.fps_tech, 2.0 * semi.fps_tech);
}

TEST(Renderer, PerspectiveRoughlyHalvesFrameRate) {
  // "Perspective views reduce the rendering speed by a factor of about 2."
  FpgaVolumeRenderer r(test_volume(), small_config());
  const FrameReport par =
      r.render_frame(tf_semi_low(), ViewDirection::kOblique, false);
  const FrameReport persp =
      r.render_frame(tf_semi_low(), ViewDirection::kOblique, true);
  const double factor = par.fps_tech / persp.fps_tech;
  EXPECT_GT(factor, 1.2);
  EXPECT_LT(factor, 4.0);
}

TEST(Renderer, FpgaClockSlowsFramesProportionally) {
  // ">25 MHz ... reduces the frame rate accordingly" vs the 100 MHz
  // technology simulations.
  FpgaVolumeRenderer r(test_volume(), small_config());
  const FrameReport rep = r.render_frame(tf_opaque(), ViewDirection::kLateral);
  EXPECT_LE(rep.fps_fpga, rep.fps_tech);
  // When logic limits, the ratio approaches 4 (100/25).
  EXPECT_GT(rep.fps_tech / rep.fps_fpga, 1.5);
}

TEST(Renderer, VolumeProBaselineMatchesKnownFigure) {
  // The real board: 256^3 at 30 Hz => 500 Mvoxel/s.
  EXPECT_NEAR(FpgaVolumeRenderer::volumepro_fps(256ll * 256 * 256), 29.8,
              0.5);
  EXPECT_THROW(FpgaVolumeRenderer::volumepro_fps(0), util::Error);
}

TEST(Renderer, BeatsVolumeProOnSparseData) {
  // E4's mechanism: the brute-force engine touches every voxel; the
  // optimized renderer touches the sample fraction only.
  FpgaVolumeRenderer r(test_volume(), small_config());
  const FrameReport rep = r.render_frame(tf_opaque(), ViewDirection::kFrontal);
  const double vp = FpgaVolumeRenderer::volumepro_fps(
      test_volume().voxel_count());
  EXPECT_GT(rep.fps_tech, vp);
}

TEST(Renderer, ImageIsNotBlack) {
  FpgaVolumeRenderer r(test_volume(), small_config());
  const FrameReport rep = r.render_frame(tf_opaque(), ViewDirection::kFrontal);
  std::int64_t lit = 0;
  for (const std::uint8_t px : rep.image.data()) {
    if (px > 16) ++lit;
  }
  EXPECT_GT(lit, static_cast<std::int64_t>(rep.image.size() / 10));
}

TEST(Renderer, ConfigValidation) {
  FpgaRendererConfig cfg;
  cfg.logic_clock_mhz = 0.0;
  EXPECT_THROW(FpgaVolumeRenderer(test_volume(), cfg), util::Error);
}

}  // namespace
}  // namespace atlantis::volren
