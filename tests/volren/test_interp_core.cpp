// Gate-level trilinear interpolator vs its bit-exact software model and
// the double-precision reference.
#include "volren/interp_core.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "chdl/sim.hpp"
#include "chdl/stats.hpp"
#include "hw/fpga.hpp"
#include "util/rng.hpp"
#include "volren/volume.hpp"

namespace atlantis::volren {
namespace {

struct InterpFixture {
  InterpFixture() : design("trilin") {
    build_trilinear_core(design);
    sim = std::make_unique<chdl::Simulator>(design);
  }

  std::uint8_t run(const std::array<std::uint8_t, 8>& corners, std::uint8_t fx,
                   std::uint8_t fy, std::uint8_t fz) {
    for (int i = 0; i < 8; ++i) {
      sim->poke("c" + std::to_string(i), corners[static_cast<std::size_t>(i)]);
    }
    sim->poke("fx", fx);
    sim->poke("fy", fy);
    sim->poke("fz", fz);
    sim->run(InterpCoreLayout::kLatency);
    return static_cast<std::uint8_t>(sim->peek_u64("value"));
  }

  chdl::Design design;
  std::unique_ptr<chdl::Simulator> sim;
};

TEST(InterpCore, MatchesSoftwareModelExhaustiveCorners) {
  InterpFixture f;
  // Axis-aligned cases: fraction 0 returns corner 'low', 255 nearly 'high'.
  const std::array<std::uint8_t, 8> corners = {10, 250, 30, 70,
                                               90, 110, 130, 150};
  EXPECT_EQ(f.run(corners, 0, 0, 0), 10);
  EXPECT_EQ(f.run(corners, 0, 0, 0),
            trilinear_fixed(corners, 0, 0, 0));
  EXPECT_EQ(f.run(corners, 255, 0, 0), trilinear_fixed(corners, 255, 0, 0));
  EXPECT_EQ(f.run(corners, 128, 128, 128),
            trilinear_fixed(corners, 128, 128, 128));
}

TEST(InterpCore, MatchesSoftwareModelRandomSweep) {
  InterpFixture f;
  util::Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    std::array<std::uint8_t, 8> corners{};
    for (auto& c : corners) {
      c = static_cast<std::uint8_t>(rng.next_below(256));
    }
    const auto fx = static_cast<std::uint8_t>(rng.next_below(256));
    const auto fy = static_cast<std::uint8_t>(rng.next_below(256));
    const auto fz = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(f.run(corners, fx, fy, fz),
              trilinear_fixed(corners, fx, fy, fz))
        << "case " << i;
  }
}

TEST(InterpCore, PipelinesOneSamplePerClock) {
  // Present a new input every clock; after the fill latency a result
  // emerges every cycle (check by streaming distinguishable constants).
  InterpFixture f;
  std::vector<std::uint8_t> expected;
  std::vector<std::uint8_t> got;
  for (int v = 0; v < 32; ++v) {
    const std::array<std::uint8_t, 8> corners = {
        static_cast<std::uint8_t>(v * 8), static_cast<std::uint8_t>(v * 8),
        static_cast<std::uint8_t>(v * 8), static_cast<std::uint8_t>(v * 8),
        static_cast<std::uint8_t>(v * 8), static_cast<std::uint8_t>(v * 8),
        static_cast<std::uint8_t>(v * 8), static_cast<std::uint8_t>(v * 8)};
    expected.push_back(trilinear_fixed(corners, 13, 77, 200));
    for (int i = 0; i < 8; ++i) {
      f.sim->poke("c" + std::to_string(i), static_cast<std::uint64_t>(v * 8));
    }
    f.sim->poke("fx", 13);
    f.sim->poke("fy", 77);
    f.sim->poke("fz", 200);
    f.sim->step();
    got.push_back(static_cast<std::uint8_t>(f.sim->peek_u64("value")));
  }
  // got is expected delayed by the pipeline fill. Sampling happens after
  // each edge, so the visible offset is kLatency-1 issue slots.
  const std::size_t offset = InterpCoreLayout::kLatency - 1;
  for (std::size_t i = offset; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i - offset]);
  }
}

TEST(InterpCore, TracksDoublePrecisionWithinQuantization) {
  util::Rng rng(91);
  Volume vol(4, 4, 4);
  for (int z = 0; z < 4; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 4; ++x) {
        vol.set(x, y, z, static_cast<std::uint8_t>(rng.next_below(256)));
      }
    }
  }
  InterpFixture f;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0.0, 2.999);
    const double y = rng.uniform(0.0, 2.999);
    const double z = rng.uniform(0.0, 2.999);
    const int x0 = static_cast<int>(x), y0 = static_cast<int>(y),
              z0 = static_cast<int>(z);
    std::array<std::uint8_t, 8> corners{};
    for (int c = 0; c < 8; ++c) {
      corners[static_cast<std::size_t>(c)] = vol.at(
          x0 + (c & 1), y0 + ((c >> 1) & 1), z0 + ((c >> 2) & 1));
    }
    const auto fx = static_cast<std::uint8_t>((x - x0) * 256.0);
    const auto fy = static_cast<std::uint8_t>((y - y0) * 256.0);
    const auto fz = static_cast<std::uint8_t>((z - z0) * 256.0);
    const double exact = vol.sample(x, y, z);
    const double fixed = f.run(corners, fx, fy, fz);
    // 8-bit fractions + three truncating lerp planes: a few LSB.
    EXPECT_NEAR(fixed, exact, 6.0) << "at " << x << "," << y << "," << z;
  }
}

TEST(InterpCore, FitsTheOrcaBudget) {
  chdl::Design d("trilin");
  build_trilinear_core(d);
  hw::FpgaDevice orca("orca", hw::orca_3t125());
  EXPECT_NO_THROW(orca.configure(hw::Bitstream::from_design(d)));
  const chdl::NetlistStats stats = chdl::analyze(d);
  EXPECT_GT(stats.gate_equivalents, 1000);  // 14 multipliers is not free
}

}  // namespace
}  // namespace atlantis::volren
