#include "volren/transfer.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace atlantis::volren {
namespace {

TEST(Transfer, AirIsTransparentEverywhere) {
  for (const TransferFunction& tf :
       {tf_opaque(), tf_semi_low(), tf_semi_high()}) {
    EXPECT_EQ(tf.classify(0.0, 100.0).opacity, 0.0);
    EXPECT_EQ(tf.classify(10.0, 0.0).opacity, 0.0);
    EXPECT_EQ(tf.max_opacity(5.0), 0.0);
  }
}

TEST(Transfer, OpaquePresetHasHardBone) {
  EXPECT_GT(tf_opaque().classify(220.0, 10.0).opacity, 0.9);
  EXPECT_GT(tf_opaque().max_opacity(220.0), 0.9);
}

TEST(Transfer, SemiPresetsMakeBoneTranslucent) {
  // Semi-transparent CT presets let rays see into the skull: bone is
  // still the densest material, but no longer a wall.
  for (const TransferFunction& tf : {tf_semi_low(), tf_semi_high()}) {
    const double bone = tf.classify(220.0, 10.0).opacity;
    EXPECT_GT(bone, 0.05);
    EXPECT_LT(bone, 0.5);
    EXPECT_GT(bone, tf.classify(90.0, 10.0).opacity);
  }
}

TEST(Transfer, TissueOpacityLadder) {
  // The paper's "three different levels of opacity for soft tissue".
  const double value = 90.0;
  EXPECT_EQ(tf_opaque().classify(value, 5.0).opacity, 0.0);
  const double low = tf_semi_low().classify(value, 5.0).opacity;
  const double high = tf_semi_high().classify(value, 5.0).opacity;
  EXPECT_GT(low, 0.0);
  EXPECT_GT(high, low);
}

TEST(Transfer, GradientBrightensSurfaces) {
  const TransferFunction tf = tf_semi_high();
  const double flat = tf.classify(90.0, 0.0).intensity;
  const double edge = tf.classify(90.0, 80.0).intensity;
  EXPECT_GT(edge, flat);
}

TEST(Transfer, IntensityBounded) {
  const TransferFunction tf = tf_semi_high();
  for (double v = 0; v <= 255.0; v += 5.0) {
    for (double g = 0; g <= 200.0; g += 25.0) {
      const Classified c = tf.classify(v, g);
      EXPECT_GE(c.opacity, 0.0);
      EXPECT_LE(c.opacity, 1.0);
      EXPECT_GE(c.intensity, 0.0);
      EXPECT_LE(c.intensity, 1.0);
    }
  }
}

TEST(Transfer, MaxOpacityBoundsClassify) {
  // The space-skipping data structure relies on max_opacity being a true
  // upper bound on classify() for every gradient.
  const TransferFunction tf = tf_semi_low();
  for (double v = 0; v <= 255.0; v += 1.0) {
    for (double g = 0; g <= 150.0; g += 10.0) {
      EXPECT_LE(tf.classify(v, g).opacity, tf.max_opacity(v) + 1e-12);
    }
  }
}

TEST(Transfer, InvalidOpacityRejected) {
  EXPECT_THROW(TransferFunction("bad", -0.1), util::Error);
  EXPECT_THROW(TransferFunction("bad", 1.1), util::Error);
}

TEST(Transfer, NamesExposed) {
  EXPECT_EQ(tf_opaque().name(), "opaque");
  EXPECT_EQ(tf_semi_low().name(), "semi-low");
  EXPECT_EQ(tf_semi_high().name(), "semi-high");
}

}  // namespace
}  // namespace atlantis::volren
