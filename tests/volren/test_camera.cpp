#include "volren/camera.hpp"

#include <gtest/gtest.h>

namespace atlantis::volren {
namespace {

TEST(Camera, ParallelRaysShareDirection) {
  const Volume v(32, 32, 32);
  const Camera cam(v, ViewDirection::kFrontal, 16, 8, false);
  const Ray r0 = cam.ray(0, 0);
  const Ray r1 = cam.ray(15, 7);
  EXPECT_NEAR(r0.dir.x, r1.dir.x, 1e-12);
  EXPECT_NEAR(r0.dir.y, r1.dir.y, 1e-12);
  EXPECT_NEAR(r0.dir.z, r1.dir.z, 1e-12);
  EXPECT_NE(r0.origin.x, r1.origin.x);
}

TEST(Camera, PerspectiveRaysDiverge) {
  const Volume v(32, 32, 32);
  const Camera cam(v, ViewDirection::kFrontal, 16, 8, true);
  const Ray r0 = cam.ray(0, 0);
  const Ray r1 = cam.ray(15, 7);
  const double dot = r0.dir.dot(r1.dir);
  EXPECT_LT(dot, 0.9999);  // not parallel
  // Shared eye point.
  EXPECT_DOUBLE_EQ(r0.origin.x, r1.origin.x);
  EXPECT_DOUBLE_EQ(r0.origin.y, r1.origin.y);
}

TEST(Camera, DirectionsAreNormalized) {
  const Volume v(32, 32, 32);
  for (const auto view : {ViewDirection::kFrontal, ViewDirection::kLateral,
                          ViewDirection::kOblique}) {
    for (const bool persp : {false, true}) {
      const Camera cam(v, view, 8, 8, persp);
      for (int p = 0; p < 8; ++p) {
        EXPECT_NEAR(cam.ray(p, p).dir.norm(), 1.0, 1e-9);
      }
    }
  }
}

TEST(Camera, ViewsLookAlongExpectedAxes) {
  const Volume v(32, 32, 32);
  const Camera frontal(v, ViewDirection::kFrontal, 8, 8, false);
  EXPECT_NEAR(frontal.ray(4, 4).dir.y, 1.0, 1e-9);
  const Camera lateral(v, ViewDirection::kLateral, 8, 8, false);
  EXPECT_NEAR(lateral.ray(4, 4).dir.x, 1.0, 1e-9);
  const Camera oblique(v, ViewDirection::kOblique, 8, 8, false);
  EXPECT_GT(oblique.ray(4, 4).dir.x, 0.3);
  EXPECT_GT(oblique.ray(4, 4).dir.y, 0.3);
}

TEST(Camera, CentralRayPassesNearVolumeCenter) {
  const Volume v(64, 64, 64);
  for (const auto view : {ViewDirection::kFrontal, ViewDirection::kLateral,
                          ViewDirection::kOblique}) {
    const Camera cam(v, view, 64, 64, false);
    const Ray r = cam.ray(32, 32);
    // Distance from the volume center to the ray line.
    const Vec3 center{32, 32, 32};
    const Vec3 to_center = center - r.origin;
    const double along = to_center.dot(r.dir);
    const Vec3 closest = r.origin + r.dir * along;
    EXPECT_LT((closest - center).norm(), 3.0) << view_name(view);
  }
}

TEST(Camera, BadImageSizeRejected) {
  const Volume v(8, 8, 8);
  EXPECT_THROW(Camera(v, ViewDirection::kFrontal, 0, 8), util::Error);
}

TEST(Camera, ViewNames) {
  EXPECT_STREQ(view_name(ViewDirection::kFrontal), "frontal");
  EXPECT_STREQ(view_name(ViewDirection::kLateral), "lateral");
  EXPECT_STREQ(view_name(ViewDirection::kOblique), "oblique");
}

}  // namespace
}  // namespace atlantis::volren
