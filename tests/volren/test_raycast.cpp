#include "volren/raycast.hpp"

#include <gtest/gtest.h>

namespace atlantis::volren {
namespace {

struct Scene {
  Scene() : vol(make_ct_phantom(64, 64, 32)) {}
  Volume vol;
};

RenderParams brute_force() {
  RenderParams p;
  p.space_skipping = false;
  p.early_termination = false;
  return p;
}

TEST(Raycast, OptimizedImageMatchesBruteForce) {
  // "Our implementation has the same speed-up like software
  // implementations of this algorithm" — and crucially the same images.
  Scene s;
  const TransferFunction tf = tf_opaque();
  const Camera cam(s.vol, ViewDirection::kFrontal, 64, 32, false);
  const RenderOutput ref = render(s.vol, tf, cam, brute_force());
  const RenderOutput opt = render(s.vol, tf, cam, RenderParams{});
  ASSERT_EQ(ref.image.size(), opt.image.size());
  // Skipping only jumps provably-empty blocks and termination cuts rays
  // that are already saturated, so pixels differ by at most the
  // termination threshold's worth of intensity.
  std::int64_t total_diff = 0;
  int worst = 0;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 64; ++x) {
      const int diff = std::abs(static_cast<int>(ref.image(x, y)) -
                                static_cast<int>(opt.image(x, y)));
      total_diff += diff;
      worst = std::max(worst, diff);
    }
  }
  EXPECT_LE(worst, 16);
  EXPECT_LT(static_cast<double>(total_diff) / (64 * 32), 1.0);
}

TEST(Raycast, OptimizationsReduceSamples) {
  Scene s;
  const TransferFunction tf = tf_opaque();
  const Camera cam(s.vol, ViewDirection::kFrontal, 32, 16, false);
  const RenderOutput ref = render(s.vol, tf, cam, brute_force());
  RenderParams skip_only;
  skip_only.early_termination = false;
  RenderParams term_only;
  term_only.space_skipping = false;
  const RenderOutput with_skip = render(s.vol, tf, cam, skip_only);
  const RenderOutput with_term = render(s.vol, tf, cam, term_only);
  const RenderOutput both = render(s.vol, tf, cam, RenderParams{});
  EXPECT_LT(with_skip.stats.samples, ref.stats.samples);
  EXPECT_LT(with_term.stats.samples, ref.stats.samples);
  EXPECT_LE(both.stats.samples, with_skip.stats.samples);
  EXPECT_LE(both.stats.samples, with_term.stats.samples);
  EXPECT_GT(with_skip.stats.skipped_steps, 0u);
  EXPECT_GT(with_term.stats.terminated_rays, 0u);
}

TEST(Raycast, SampleFractionInPaperRangeForOpaque) {
  // "The number of sample points varies between 10-15% of all voxels if
  // the data set consists mainly of empty space and opaque objects."
  Scene s;
  const Camera cam(s.vol, ViewDirection::kFrontal, 64, 64, false);
  const RenderOutput out = render(s.vol, tf_opaque(), cam, RenderParams{});
  const double fraction = out.stats.sample_fraction(s.vol.voxel_count());
  EXPECT_GT(fraction, 0.01);
  EXPECT_LT(fraction, 0.25);
}

TEST(Raycast, SemiTransparentSamplesMore) {
  // "...and 25-40% for semi transparent opacity levels."
  Scene s;
  const Camera cam(s.vol, ViewDirection::kFrontal, 64, 64, false);
  const auto opaque = render(s.vol, tf_opaque(), cam, RenderParams{});
  const auto semi = render(s.vol, tf_semi_high(), cam, RenderParams{});
  EXPECT_GT(semi.stats.samples, 3 * opaque.stats.samples / 2);
}

TEST(Raycast, StatsAreConsistent) {
  Scene s;
  const Camera cam(s.vol, ViewDirection::kOblique, 32, 16, false);
  const RenderOutput out = render(s.vol, tf_semi_low(), cam, RenderParams{});
  EXPECT_EQ(out.stats.rays, 32u * 16u);
  EXPECT_EQ(out.stats.samples_per_ray.size(), out.stats.rays);
  std::uint64_t sum = 0;
  for (const std::uint32_t n : out.stats.samples_per_ray) sum += n;
  EXPECT_EQ(sum, out.stats.samples);
}

TEST(Raycast, HookSeesEverySample) {
  Scene s;
  const Camera cam(s.vol, ViewDirection::kFrontal, 16, 8, false);
  std::uint64_t hook_calls = 0;
  const RenderOutput out =
      render(s.vol, tf_opaque(), cam, RenderParams{},
             [&hook_calls](double, double, double) { ++hook_calls; });
  EXPECT_EQ(hook_calls, out.stats.samples);
}

TEST(Raycast, EmptyTransferRendersBlack) {
  Scene s;
  TransferFunction invisible("none", 0.0, /*bone_opacity=*/0.0);
  const Camera cam(s.vol, ViewDirection::kFrontal, 16, 8, false);
  const RenderOutput out = render(s.vol, invisible, cam, RenderParams{});
  for (const std::uint8_t px : out.image.data()) EXPECT_EQ(px, 0);
  // Space skipping should eliminate essentially all sampling work.
  EXPECT_EQ(out.stats.samples, 0u);
}

TEST(Raycast, OccupancyGridMarksPhantomInterior) {
  Scene s;
  const OccupancyGrid grid(s.vol, tf_opaque());
  EXPECT_FALSE(grid.occupied(1, 1, 1));          // air corner
  EXPECT_FALSE(grid.occupied(-5, 0, 0));          // outside
  // The skull shell must be occupied: probe along the midline.
  bool found_occupied = false;
  for (int y = 0; y < 64; ++y) {
    if (grid.occupied(32, y, 16)) {
      found_occupied = true;
      break;
    }
  }
  EXPECT_TRUE(found_occupied);
}

TEST(Raycast, QuantizedDatapathTracksDoubleImage) {
  // Rendering through the 8-bit hardware interpolator must produce
  // nearly the same image as double precision: the datapath's
  // quantization is a few LSB per sample.
  Scene s;
  const Camera cam(s.vol, ViewDirection::kFrontal, 48, 24, false);
  RenderParams exact;
  RenderParams quantized;
  quantized.quantized_datapath = true;
  const RenderOutput a = render(s.vol, tf_opaque(), cam, exact);
  const RenderOutput b = render(s.vol, tf_opaque(), cam, quantized);
  std::int64_t total_diff = 0;
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 48; ++x) {
      total_diff += std::abs(static_cast<int>(a.image(x, y)) -
                             static_cast<int>(b.image(x, y)));
    }
  }
  EXPECT_LT(static_cast<double>(total_diff) / (48 * 24), 6.0);
  // And it is not a no-op: at least some samples quantize differently.
  EXPECT_GT(b.stats.samples, 0u);
}

TEST(Raycast, StepSizeValidation) {
  Scene s;
  const Camera cam(s.vol, ViewDirection::kFrontal, 4, 4, false);
  RenderParams p;
  p.step = 0.0;
  EXPECT_THROW(render(s.vol, tf_opaque(), cam, p), util::Error);
}

}  // namespace
}  // namespace atlantis::volren
