#include "core/driver.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace atlantis::core {

AtlantisDriver::AtlantisDriver(AtlantisSystem& system, int acb_index)
    : system_(system), board_(system.acb(acb_index)) {
  ATLANTIS_CHECK(board_.timeline() != nullptr,
                 "board is not bound to the crate timeline");
  track_ = board_.timeline()->add_track("drv/" + board_.name());
  host_ifs_.resize(AcbBoard::kFpgaCount);
}

void AtlantisDriver::post_compute(util::Picoseconds t, const char* label) {
  const sim::Transaction& txn =
      timeline().post(track_, sim::TxnKind::kCompute, label,
                      board_.compute_resource(), now_, t);
  now_ = txn.end;
}

void AtlantisDriver::reset_stats() {
  reset_time();
  board_.pci().reset_counters();
}

void AtlantisDriver::advance(util::Picoseconds t) {
  post_compute(t, "compute");
}

void AtlantisDriver::advance_cycles(std::uint64_t cycles) {
  post_compute(board_.local_clock().cycles(cycles), "compute");
}

void AtlantisDriver::configure(int fpga, const hw::Bitstream& bs) {
  const util::Picoseconds t = board_.fpga(fpga).configure(bs);
  const sim::Transaction& txn = timeline().post(
      track_, sim::TxnKind::kReconfig, "configure " + bs.name,
      sim::ResourceId{}, now_, t, static_cast<std::uint64_t>(
          board_.fpga(fpga).family().config_bits / 8));
  now_ = txn.end;
  host_ifs_[static_cast<std::size_t>(fpga)].reset();
}

void AtlantisDriver::partial_reconfigure(int fpga, const hw::Bitstream& bs) {
  const util::Picoseconds t = board_.fpga(fpga).partial_reconfigure(bs);
  const sim::Transaction& txn = timeline().post(
      track_, sim::TxnKind::kReconfig, "partial " + bs.name,
      sim::ResourceId{}, now_, t);
  now_ = txn.end;
  host_ifs_[static_cast<std::size_t>(fpga)].reset();
}

void AtlantisDriver::set_design_clock(double mhz) {
  board_.local_clock().set_mhz(mhz);
}

chdl::HostInterface* AtlantisDriver::host_if(int fpga) {
  auto& slot = host_ifs_[static_cast<std::size_t>(fpga)];
  if (slot == nullptr) {
    chdl::Simulator* sim = board_.fpga(fpga).sim();
    if (sim == nullptr) return nullptr;
    if (!sim->design().has_port("host_rdata")) return nullptr;
    slot = std::make_unique<chdl::HostInterface>(*sim);
  }
  return slot.get();
}

void AtlantisDriver::reg_write(int fpga, std::uint32_t addr,
                               std::uint64_t data) {
  now_ = board_.pci().post_target_access(track_, now_, "reg_write").end;
  if (chdl::HostInterface* hif = host_if(fpga)) {
    hif->write(addr, data);
    post_compute(board_.local_clock().cycles(1), "reg_write drain");
  }
}

std::uint64_t AtlantisDriver::reg_read(int fpga, std::uint32_t addr) {
  now_ = board_.pci().post_target_access(track_, now_, "reg_read").end;
  if (chdl::HostInterface* hif = host_if(fpga)) {
    return hif->read(addr);
  }
  return 0;
}

hw::DmaTransfer AtlantisDriver::dma_write(std::uint64_t bytes) {
  const sim::Transaction& txn = board_.pci().post_transfer(
      track_, hw::DmaDirection::kWrite, bytes, now_);
  now_ = txn.end;
  return hw::DmaTransfer{bytes, txn.duration()};
}

hw::DmaTransfer AtlantisDriver::dma_read(std::uint64_t bytes) {
  const sim::Transaction& txn = board_.pci().post_transfer(
      track_, hw::DmaDirection::kRead, bytes, now_);
  now_ = txn.end;
  return hw::DmaTransfer{bytes, txn.duration()};
}

std::uint64_t AtlantisDriver::dma_write_async(std::uint64_t bytes) {
  const sim::Transaction& txn = board_.pci().post_transfer(
      track_, hw::DmaDirection::kWrite, bytes, now_, "dma_write async");
  pending_.push_back(txn.end);
  return txn.id;
}

std::uint64_t AtlantisDriver::dma_read_async(std::uint64_t bytes) {
  const sim::Transaction& txn = board_.pci().post_transfer(
      track_, hw::DmaDirection::kRead, bytes, now_, "dma_read async");
  pending_.push_back(txn.end);
  return txn.id;
}

util::Picoseconds AtlantisDriver::wait() {
  for (const util::Picoseconds end : pending_) now_ = std::max(now_, end);
  pending_.clear();
  return elapsed();
}

hw::DmaTransfer AtlantisDriver::dma_write_to_sim(
    int fpga, std::uint32_t addr, std::span<const std::uint64_t> words) {
  chdl::HostInterface* hif = host_if(fpga);
  ATLANTIS_CHECK(hif != nullptr,
                 "dma_write_to_sim needs a simulated design with a host port");
  hif->write_block(addr, words);
  // Time: the DMA burst and the design-side drain overlap; the modelled
  // duration is the larger of bus time and design-clock time.
  const std::uint64_t bytes = words.size() * 4;  // 32-bit local bus words
  const hw::DmaTransfer bus =
      board_.pci().transfer(hw::DmaDirection::kWrite, bytes);
  const util::Picoseconds drain = board_.local_clock().cycles(words.size());
  const util::Picoseconds service = std::max(bus.duration, drain);
  const sim::Transaction& txn = board_.pci().post_transfer(
      track_, hw::DmaDirection::kWrite, bytes, now_, "dma_write to sim",
      service);
  now_ = txn.end;
  return hw::DmaTransfer{bytes, txn.duration()};
}

}  // namespace atlantis::core
