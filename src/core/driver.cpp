#include "core/driver.hpp"

#include "util/status.hpp"

namespace atlantis::core {

AtlantisDriver::AtlantisDriver(AtlantisSystem& system, int acb_index)
    : system_(system), board_(system.acb(acb_index)) {
  host_ifs_.resize(AcbBoard::kFpgaCount);
}

void AtlantisDriver::advance_cycles(std::uint64_t cycles) {
  elapsed_ += board_.local_clock().cycles(cycles);
}

void AtlantisDriver::configure(int fpga, const hw::Bitstream& bs) {
  elapsed_ += board_.fpga(fpga).configure(bs);
  host_ifs_[static_cast<std::size_t>(fpga)].reset();
}

void AtlantisDriver::partial_reconfigure(int fpga, const hw::Bitstream& bs) {
  elapsed_ += board_.fpga(fpga).partial_reconfigure(bs);
  host_ifs_[static_cast<std::size_t>(fpga)].reset();
}

void AtlantisDriver::set_design_clock(double mhz) {
  board_.local_clock().set_mhz(mhz);
}

chdl::HostInterface* AtlantisDriver::host_if(int fpga) {
  auto& slot = host_ifs_[static_cast<std::size_t>(fpga)];
  if (slot == nullptr) {
    chdl::Simulator* sim = board_.fpga(fpga).sim();
    if (sim == nullptr) return nullptr;
    if (!sim->design().has_port("host_rdata")) return nullptr;
    slot = std::make_unique<chdl::HostInterface>(*sim);
  }
  return slot.get();
}

void AtlantisDriver::reg_write(int fpga, std::uint32_t addr,
                               std::uint64_t data) {
  elapsed_ += board_.pci().target_access();
  if (chdl::HostInterface* hif = host_if(fpga)) {
    hif->write(addr, data);
    elapsed_ += board_.local_clock().cycles(1);
  }
}

std::uint64_t AtlantisDriver::reg_read(int fpga, std::uint32_t addr) {
  elapsed_ += board_.pci().target_access();
  if (chdl::HostInterface* hif = host_if(fpga)) {
    return hif->read(addr);
  }
  return 0;
}

hw::DmaTransfer AtlantisDriver::dma_write(std::uint64_t bytes) {
  const hw::DmaTransfer t =
      board_.pci().transfer(hw::DmaDirection::kWrite, bytes);
  board_.pci().record(t);
  elapsed_ += t.duration;
  return t;
}

hw::DmaTransfer AtlantisDriver::dma_read(std::uint64_t bytes) {
  const hw::DmaTransfer t =
      board_.pci().transfer(hw::DmaDirection::kRead, bytes);
  board_.pci().record(t);
  elapsed_ += t.duration;
  return t;
}

hw::DmaTransfer AtlantisDriver::dma_write_to_sim(
    int fpga, std::uint32_t addr, std::span<const std::uint64_t> words) {
  chdl::HostInterface* hif = host_if(fpga);
  ATLANTIS_CHECK(hif != nullptr,
                 "dma_write_to_sim needs a simulated design with a host port");
  hif->write_block(addr, words);
  // Time: the DMA burst and the design-side drain overlap; the modelled
  // duration is the larger of bus time and design-clock time.
  const std::uint64_t bytes = words.size() * 4;  // 32-bit local bus words
  const hw::DmaTransfer bus =
      board_.pci().transfer(hw::DmaDirection::kWrite, bytes);
  const util::Picoseconds drain = board_.local_clock().cycles(words.size());
  hw::DmaTransfer t = bus;
  t.duration = std::max(bus.duration, drain);
  board_.pci().record(t);
  elapsed_ += t.duration;
  return t;
}

}  // namespace atlantis::core
