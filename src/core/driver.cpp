#include "core/driver.hpp"

#include <algorithm>

#include "core/taskswitch.hpp"
#include "sim/fault.hpp"
#include "util/status.hpp"

namespace atlantis::core {

AtlantisDriver::AtlantisDriver(AtlantisSystem& system, int acb_index)
    : system_(system), board_(system.acb(acb_index)) {
  ATLANTIS_CHECK(board_.timeline() != nullptr,
                 "board is not bound to the crate timeline");
  track_ = board_.timeline()->add_track("drv/" + board_.name());
  host_ifs_.resize(AcbBoard::kFpgaCount);
}

void AtlantisDriver::post_compute(util::Picoseconds t, const char* label) {
  const sim::Transaction& txn =
      timeline().post(track_, sim::TxnKind::kCompute, label,
                      board_.compute_resource(), now_, t);
  now_ = txn.end;
}

void AtlantisDriver::reset(ResetScope scope) {
  if (scope == ResetScope::kTime || scope == ResetScope::kStats ||
      scope == ResetScope::kAll) {
    epoch_ = now_;
  }
  if (scope == ResetScope::kStats || scope == ResetScope::kAll) {
    board_.pci().reset_counters();
    dma_faults_ = 0;
    dma_retries_ = 0;
    config_retries_ = 0;
    recovery_time_ = 0;
  }
  if (scope == ResetScope::kFaults || scope == ResetScope::kAll) {
    // The injector rewind is "load the post-construction snapshot"
    // (FaultInjector::reset); the timeline's per-resource fault/retry
    // counters must rewind with it, or the two fault ledgers diverge
    // after a mid-run reset (injected_total() == 0 while the timeline
    // still reports the pre-reset faults). Both are idempotent.
    if (sim::FaultInjector* inj = system_.fault_injector()) inj->reset();
    timeline().reset_stats();
  }
}

void AtlantisDriver::save_state(sim::SnapshotWriter& w) const {
  w.put_i64(now_);
  w.put_i64(epoch_);
  w.put_u32(static_cast<std::uint32_t>(pending_.size()));
  for (const util::Picoseconds t : pending_) w.put_i64(t);
  w.put_u64(dma_faults_);
  w.put_u64(dma_retries_);
  w.put_u64(config_retries_);
  w.put_i64(recovery_time_);
}

void AtlantisDriver::load_state(sim::SnapshotReader& r) {
  now_ = r.get_i64();
  epoch_ = r.get_i64();
  const std::uint32_t n_pending = r.get_u32();
  pending_.assign(n_pending, 0);
  for (util::Picoseconds& t : pending_) t = r.get_i64();
  dma_faults_ = r.get_u64();
  dma_retries_ = r.get_u64();
  config_retries_ = r.get_u64();
  recovery_time_ = r.get_i64();
}

util::Result<util::Picoseconds> AtlantisDriver::try_switch_task(
    TaskSwitcher& switcher, const std::string& name) {
  ATLANTIS_CHECK(!switcher.bound(),
                 "try_switch_task needs an unbound switcher (a bound one "
                 "would post the reconfiguration twice)");
  util::Result<util::Picoseconds> r = switcher.try_switch_to(name);
  if (!r.ok()) return r;
  if (r.value() > 0) {
    const sim::Transaction& txn =
        timeline().post(track_, sim::TxnKind::kReconfig, "switch to " + name,
                        sim::ResourceId{}, now_, r.value(), 0,
                        static_cast<std::uint32_t>(
                            switcher.last_regions_loaded()));
    now_ = txn.end;
  }
  return r;
}

util::Result<util::Picoseconds> AtlantisDriver::poll_self_reconfig(int fpga) {
  hw::FpgaDevice& dev = board_.fpga(fpga);
  chdl::Simulator* sim = dev.sim();
  if (sim == nullptr) return util::Picoseconds{0};
  const chdl::Design& design = sim->design();
  if (!design.has_port("reconfig_req")) return util::Picoseconds{0};
  if (sim->peek_u64("reconfig_req") == 0) return util::Picoseconds{0};
  int region = 0;
  if (design.has_port("reconfig_region")) {
    region = static_cast<int>(sim->peek_u64("reconfig_region") %
                              static_cast<std::uint64_t>(dev.region_count()));
  }
  const hw::ReconfigOutcome oc =
      dev.self_reconfigure_region(region, policy_.max_attempts);
  const sim::Transaction& txn = timeline().post(
      track_, sim::TxnKind::kReconfig,
      oc.ok ? "self-reconfig region " + std::to_string(region)
            : "self-reconfig region " + std::to_string(region) +
                  " (crc fail)",
      sim::ResourceId{}, now_, oc.time,
      static_cast<std::uint64_t>(
          dev.family().config_bits / dev.family().config_regions / 8),
      oc.ok ? 1u : 0u);
  now_ = txn.end;
  config_retries_ += static_cast<std::uint64_t>(oc.region_retries);
  if (!oc.ok) {
    recovery_time_ += oc.time;
    host_ifs_[static_cast<std::size_t>(fpga)].reset();
    return util::Result<util::Picoseconds>::failure(
        util::ErrorCode::kConfigCrc,
        "self-reconfiguration of " + dev.name() + " region " +
            std::to_string(region) + " failed CRC");
  }
  // Ack pulse: one design clock with reconfig_ack high lets the
  // requesting FSM deassert its request. The simulator (and the design
  // state) survived the frame reload, so this is the same sim.
  if (design.has_port("reconfig_ack")) {
    sim->poke("reconfig_ack", 1);
    sim->step();
    sim->poke("reconfig_ack", 0);
  }
  return util::Result<util::Picoseconds>(oc.time);
}

void AtlantisDriver::advance(util::Picoseconds t, const char* label) {
  post_compute(t, label);
}

void AtlantisDriver::advance_cycles(std::uint64_t cycles) {
  post_compute(board_.local_clock().cycles(cycles), "compute");
}

void AtlantisDriver::configure(int fpga, const hw::Bitstream& bs) {
  hw::FpgaDevice& dev = board_.fpga(fpga);
  for (int attempt = 1;; ++attempt) {
    const util::Picoseconds t = dev.configure(bs);
    const bool ok = dev.config_crc_ok();
    const sim::Transaction& txn = timeline().post(
        track_, sim::TxnKind::kReconfig,
        ok ? "configure " + bs.name : "configure " + bs.name + " (crc fail)",
        sim::ResourceId{}, now_, t,
        static_cast<std::uint64_t>(dev.family().config_bits / 8));
    now_ = txn.end;
    if (ok) break;
    recovery_time_ += t;
    if (attempt >= policy_.max_attempts) {
      throw util::Error("configuration of " + dev.name() +
                        " failed CRC after " + std::to_string(attempt) +
                        " attempts");
    }
    ++config_retries_;
  }
  host_ifs_[static_cast<std::size_t>(fpga)].reset();
}

void AtlantisDriver::partial_reconfigure(int fpga, const hw::Bitstream& bs) {
  const util::Picoseconds t = board_.fpga(fpga).partial_reconfigure(bs);
  const sim::Transaction& txn = timeline().post(
      track_, sim::TxnKind::kReconfig, "partial " + bs.name,
      sim::ResourceId{}, now_, t);
  now_ = txn.end;
  host_ifs_[static_cast<std::size_t>(fpga)].reset();
}

void AtlantisDriver::set_design_clock(double mhz) {
  board_.local_clock().set_mhz(mhz);
}

chdl::HostInterface* AtlantisDriver::host_if(int fpga) {
  auto& slot = host_ifs_[static_cast<std::size_t>(fpga)];
  if (slot == nullptr) {
    chdl::Simulator* sim = board_.fpga(fpga).sim();
    if (sim == nullptr) return nullptr;
    if (!sim->design().has_port("host_rdata")) return nullptr;
    slot = std::make_unique<chdl::HostInterface>(*sim);
  }
  return slot.get();
}

void AtlantisDriver::reg_write(int fpga, std::uint32_t addr,
                               std::uint64_t data) {
  now_ = board_.pci().post_target_access(track_, now_, "reg_write").end;
  if (chdl::HostInterface* hif = host_if(fpga)) {
    hif->write(addr, data);
    post_compute(board_.local_clock().cycles(1), "reg_write drain");
  }
}

std::uint64_t AtlantisDriver::reg_read(int fpga, std::uint32_t addr) {
  now_ = board_.pci().post_target_access(track_, now_, "reg_read").end;
  if (chdl::HostInterface* hif = host_if(fpga)) {
    return hif->read(addr);
  }
  return 0;
}

util::Result<hw::DmaTransfer> AtlantisDriver::try_dma(hw::DmaDirection dir,
                                                      std::uint64_t bytes) {
  hw::Plx9080& pci = board_.pci();
  const char* base =
      dir == hw::DmaDirection::kWrite ? "dma_write" : "dma_read";
  const util::Picoseconds deadline = now_ + policy_.timeout_budget;
  for (int attempt = 1;; ++attempt) {
    const auto fault = pci.draw_dma_fault();
    if (!fault) {
      const sim::Transaction& txn = pci.post_transfer(track_, dir, bytes,
                                                      now_);
      now_ = txn.end;
      return hw::DmaTransfer{bytes, txn.duration()};
    }
    // The faulted attempt occupies the bus without moving data: a stall
    // holds it until the watchdog fires, an abort dies during setup.
    const bool stall = *fault == sim::FaultKind::kDmaStall;
    const util::Picoseconds wasted =
        stall ? policy_.stall_watchdog : pci.params().setup_latency;
    const sim::Transaction& bad = timeline().post(
        track_, sim::TxnKind::kPciDma,
        std::string(base) + (stall ? " (stall)" : " (abort)"), pci.segment(),
        now_, wasted, /*bytes=*/0);
    now_ = bad.end;
    ++dma_faults_;
    timeline().record_fault(pci.segment());
    if (attempt >= policy_.max_attempts) {
      recovery_time_ += wasted;
      return util::Result<hw::DmaTransfer>::failure(
          util::ErrorCode::kRetriesExhausted,
          std::string(base) + " on " + board_.name() + " failed after " +
              std::to_string(attempt) + " attempts");
    }
    // Jitter (when enabled) draws from a pure function of the fault-plan
    // seed, the board's retry site and the lifetime retry ordinal — no
    // hidden RNG state, so snapshot restore and replay stay bit-identical.
    const sim::FaultInjector* inj = system_.fault_injector();
    const util::Picoseconds wait =
        policy_.jitter > 0.0
            ? policy_.backoff(
                  attempt,
                  sim::jitter_stream(inj != nullptr ? inj->plan().seed : 0,
                                     "retry/" + board_.name(), dma_retries_))
            : policy_.backoff(attempt);
    if (now_ + wait > deadline) {
      recovery_time_ += wasted;
      return util::Result<hw::DmaTransfer>::failure(
          util::ErrorCode::kTimeout,
          std::string(base) + " on " + board_.name() +
              " exceeded its recovery time budget");
    }
    const sim::Transaction& backoff = timeline().post(
        track_, sim::TxnKind::kBackoff, std::string(base) + " backoff",
        sim::ResourceId{}, now_, wait);
    now_ = backoff.end;
    ++dma_retries_;
    recovery_time_ += wasted + wait;
    timeline().record_retry(pci.segment(), wasted + wait);
  }
}

util::Result<hw::DmaTransfer> AtlantisDriver::try_dma_write(
    std::uint64_t bytes) {
  return try_dma(hw::DmaDirection::kWrite, bytes);
}

util::Result<hw::DmaTransfer> AtlantisDriver::try_dma_read(
    std::uint64_t bytes) {
  return try_dma(hw::DmaDirection::kRead, bytes);
}

hw::DmaTransfer AtlantisDriver::dma_write(std::uint64_t bytes) {
  util::Result<hw::DmaTransfer> r = try_dma(hw::DmaDirection::kWrite, bytes);
  if (!r.ok()) throw util::Error(r.message());
  return r.value();
}

hw::DmaTransfer AtlantisDriver::dma_read(std::uint64_t bytes) {
  util::Result<hw::DmaTransfer> r = try_dma(hw::DmaDirection::kRead, bytes);
  if (!r.ok()) throw util::Error(r.message());
  return r.value();
}

std::uint64_t AtlantisDriver::dma_write_async(std::uint64_t bytes) {
  const sim::Transaction& txn = board_.pci().post_transfer(
      track_, hw::DmaDirection::kWrite, bytes, now_, "dma_write async");
  pending_.push_back(txn.end);
  return txn.id;
}

std::uint64_t AtlantisDriver::dma_read_async(std::uint64_t bytes) {
  const sim::Transaction& txn = board_.pci().post_transfer(
      track_, hw::DmaDirection::kRead, bytes, now_, "dma_read async");
  pending_.push_back(txn.end);
  return txn.id;
}

util::Picoseconds AtlantisDriver::wait() {
  for (const util::Picoseconds end : pending_) now_ = std::max(now_, end);
  pending_.clear();
  return elapsed();
}

hw::DmaTransfer AtlantisDriver::dma_write_to_sim(
    int fpga, std::uint32_t addr, std::span<const std::uint64_t> words) {
  chdl::HostInterface* hif = host_if(fpga);
  ATLANTIS_CHECK(hif != nullptr,
                 "dma_write_to_sim needs a simulated design with a host port");
  hif->write_block(addr, words);
  // Time: the DMA burst and the design-side drain overlap; the modelled
  // duration is the larger of bus time and design-clock time.
  const std::uint64_t bytes = words.size() * 4;  // 32-bit local bus words
  const hw::DmaTransfer bus =
      board_.pci().transfer(hw::DmaDirection::kWrite, bytes);
  const util::Picoseconds drain = board_.local_clock().cycles(words.size());
  const util::Picoseconds service = std::max(bus.duration, drain);
  const sim::Transaction& txn = board_.pci().post_transfer(
      track_, hw::DmaDirection::kWrite, bytes, now_, "dma_write to sim",
      service);
  now_ = txn.end;
  return hw::DmaTransfer{bytes, txn.duration()};
}

}  // namespace atlantis::core
