#include "core/acb.hpp"

#include "util/status.hpp"

namespace atlantis::core {

AcbBoard::AcbBoard(std::string name)
    : name_(std::move(name)), local_clock_(name_ + "/clk_local") {
  for (int i = 0; i < kFpgaCount; ++i) {
    fpgas_.push_back(std::make_unique<hw::FpgaDevice>(
        name_ + "/fpga" + std::to_string(i), hw::orca_3t125()));
    io_clocks_.emplace_back(name_ + "/clk_io" + std::to_string(i));
    module_of_fpga_.emplace_back(std::nullopt);
  }
}

hw::FpgaDevice& AcbBoard::fpga(int index) {
  ATLANTIS_CHECK(index >= 0 && index < kFpgaCount, "FPGA index out of range");
  return *fpgas_[static_cast<std::size_t>(index)];
}

const hw::FpgaDevice& AcbBoard::fpga(int index) const {
  ATLANTIS_CHECK(index >= 0 && index < kFpgaCount, "FPGA index out of range");
  return *fpgas_[static_cast<std::size_t>(index)];
}

AcbIoRole AcbBoard::io_role(int fpga_index) const {
  ATLANTIS_CHECK(fpga_index >= 0 && fpga_index < kFpgaCount,
                 "FPGA index out of range");
  // §2.1: one FPGA on the PLX, two on the backplane, one on LVDS.
  switch (fpga_index) {
    case 0:
      return AcbIoRole::kHostPci;
    case 1:
      return AcbIoRole::kBackplaneA;
    case 2:
      return AcbIoRole::kBackplaneB;
    default:
      return AcbIoRole::kExternalLvds;
  }
}

std::int64_t AcbBoard::total_gate_capacity() const {
  std::int64_t total = 0;
  for (const auto& f : fpgas_) total += f->family().gate_capacity;
  return total;
}

void AcbBoard::attach_memory(int fpga_index, MemModule module) {
  ATLANTIS_CHECK(fpga_index >= 0 && fpga_index < kFpgaCount,
                 "FPGA index out of range");
  ATLANTIS_CHECK(!module_of_fpga_[static_cast<std::size_t>(fpga_index)],
                 "FPGA memory port already occupied");
  if (module.slots_occupied() > free_slots_) {
    throw util::CapacityError("memory module '" + module.name() + "' needs " +
                              std::to_string(module.slots_occupied()) +
                              " mezzanine slots; only " +
                              std::to_string(free_slots_) + " free on " +
                              name_);
  }
  free_slots_ -= module.slots_occupied();
  modules_.push_back(std::move(module));
  module_of_fpga_[static_cast<std::size_t>(fpga_index)] =
      static_cast<int>(modules_.size() - 1);
}

MemModule* AcbBoard::memory_at(int fpga_index) {
  ATLANTIS_CHECK(fpga_index >= 0 && fpga_index < kFpgaCount,
                 "FPGA index out of range");
  const auto& slot = module_of_fpga_[static_cast<std::size_t>(fpga_index)];
  if (!slot) return nullptr;
  return &modules_[static_cast<std::size_t>(*slot)];
}

int AcbBoard::total_memory_width_bits() const {
  int width = 0;
  for (const auto& m : modules_) width += m.data_width_bits();
  return width;
}

util::Picoseconds AcbBoard::configure_all(const hw::Bitstream& bs) {
  util::Picoseconds total = 0;
  for (auto& f : fpgas_) total += f->configure(bs);
  return total;
}

hw::ClockGenerator& AcbBoard::io_clock(int fpga_index) {
  ATLANTIS_CHECK(fpga_index >= 0 && fpga_index < kFpgaCount,
                 "FPGA index out of range");
  return io_clocks_[static_cast<std::size_t>(fpga_index)];
}

}  // namespace atlantis::core
