#include "core/acb.hpp"

#include "util/status.hpp"
#include "util/worker_pool.hpp"

namespace atlantis::core {
namespace {

/// One wired neighbour link: peek src's out port, poke dst's in port.
struct MatrixLink {
  chdl::Simulator* src = nullptr;
  chdl::Simulator* dst = nullptr;
  chdl::Wire out{};
  chdl::Wire in{};
  std::int32_t from = 0;
  std::int32_t to = 0;
};

/// Looks up a named port restricted to the design's inputs or outputs.
chdl::Wire find_port(const chdl::Design& d, const std::string& name,
                     bool want_input) {
  const auto& list = want_input ? d.inputs() : d.outputs();
  for (const auto& [n, w] : list) {
    if (n == name) return w;
  }
  return chdl::Wire{};
}

}  // namespace

AcbBoard::AcbBoard(std::string name)
    : name_(std::move(name)), slink_(name_ + "/lvds"),
      local_clock_(name_ + "/clk_local") {
  for (int i = 0; i < kFpgaCount; ++i) {
    fpgas_.push_back(std::make_unique<hw::FpgaDevice>(
        name_ + "/fpga" + std::to_string(i), hw::orca_3t125()));
    io_clocks_.emplace_back(name_ + "/clk_io" + std::to_string(i));
    module_of_fpga_.emplace_back(std::nullopt);
  }
}

void AcbBoard::bind_timeline(sim::Timeline& timeline,
                             sim::ResourceId segment) {
  timeline_ = &timeline;
  pci_.bind(&timeline, segment);
  compute_resource_ = timeline.add_resource(name_ + "/design");
  slink_.bind(timeline);
}

void AcbBoard::set_fault_injector(sim::FaultInjector* injector) {
  injector_ = injector;
  pci_.set_fault_injector(injector, "pci/" + name_);
  slink_.set_fault_injector(injector);
  for (auto& f : fpgas_) f->set_fault_injector(injector);
  for (auto& m : modules_) {
    if (m.sram() != nullptr) m.sram()->set_fault_injector(injector);
    if (m.sdram() != nullptr) m.sdram()->set_fault_injector(injector);
  }
}

bool AcbBoard::draw_dropout() {
  if (injector_ == nullptr || !alive_) return false;
  if (!injector_->draw(sim::FaultKind::kBoardDropout, "board/" + name_)) {
    return false;
  }
  alive_ = false;
  return true;
}

HealthProbe AcbBoard::probe_health() {
  HealthProbe probe;
  probe.alive = alive_;
  SelfTestHealth& h = probe.counters;
  h.dma_stalls = pci_.dma_stalls();
  h.dma_aborts = pci_.dma_aborts();
  h.slink_errors = slink_.link_errors();
  h.truncated_frames = slink_.truncated_frames();
  h.retransmissions = slink_.retransmissions();
  for (int i = 0; i < kFpgaCount; ++i) {
    h.config_upsets += fpga(i).config_upsets();
    h.crc_failures += fpga(i).crc_failures();
  }
  for (auto& m : modules_) {
    if (m.sram() != nullptr) h.seu_flips += m.sram()->seu_flips();
    if (m.sdram() != nullptr) h.ecc_corrections += m.sdram()->ecc_corrections();
  }
  if (timeline_ != nullptr) {
    for (const sim::ResourceId id : {compute_resource_, slink_.resource()}) {
      if (!id.valid()) continue;
      const sim::ResourceStats stats = timeline_->stats(id);
      probe.resource_faults += stats.faults;
      probe.resource_retries += stats.retries;
      probe.resource_retry_time += stats.retry_time;
    }
  }
  return probe;
}

hw::FpgaDevice& AcbBoard::fpga(int index) {
  ATLANTIS_CHECK(index >= 0 && index < kFpgaCount, "FPGA index out of range");
  return *fpgas_[static_cast<std::size_t>(index)];
}

const hw::FpgaDevice& AcbBoard::fpga(int index) const {
  ATLANTIS_CHECK(index >= 0 && index < kFpgaCount, "FPGA index out of range");
  return *fpgas_[static_cast<std::size_t>(index)];
}

AcbIoRole AcbBoard::io_role(int fpga_index) const {
  ATLANTIS_CHECK(fpga_index >= 0 && fpga_index < kFpgaCount,
                 "FPGA index out of range");
  // §2.1: one FPGA on the PLX, two on the backplane, one on LVDS.
  switch (fpga_index) {
    case 0:
      return AcbIoRole::kHostPci;
    case 1:
      return AcbIoRole::kBackplaneA;
    case 2:
      return AcbIoRole::kBackplaneB;
    default:
      return AcbIoRole::kExternalLvds;
  }
}

std::int64_t AcbBoard::total_gate_capacity() const {
  std::int64_t total = 0;
  for (const auto& f : fpgas_) total += f->family().gate_capacity;
  return total;
}

void AcbBoard::attach_memory(int fpga_index, MemModule module) {
  ATLANTIS_CHECK(fpga_index >= 0 && fpga_index < kFpgaCount,
                 "FPGA index out of range");
  ATLANTIS_CHECK(!module_of_fpga_[static_cast<std::size_t>(fpga_index)],
                 "FPGA memory port already occupied");
  if (module.slots_occupied() > free_slots_) {
    throw util::CapacityError("memory module '" + module.name() + "' needs " +
                              std::to_string(module.slots_occupied()) +
                              " mezzanine slots; only " +
                              std::to_string(free_slots_) + " free on " +
                              name_);
  }
  free_slots_ -= module.slots_occupied();
  modules_.push_back(std::move(module));
  module_of_fpga_[static_cast<std::size_t>(fpga_index)] =
      static_cast<int>(modules_.size() - 1);
  if (injector_ != nullptr) {
    MemModule& m = modules_.back();
    if (m.sram() != nullptr) m.sram()->set_fault_injector(injector_);
    if (m.sdram() != nullptr) m.sdram()->set_fault_injector(injector_);
  }
}

MemModule* AcbBoard::memory_at(int fpga_index) {
  ATLANTIS_CHECK(fpga_index >= 0 && fpga_index < kFpgaCount,
                 "FPGA index out of range");
  const auto& slot = module_of_fpga_[static_cast<std::size_t>(fpga_index)];
  if (!slot) return nullptr;
  return &modules_[static_cast<std::size_t>(*slot)];
}

int AcbBoard::total_memory_width_bits() const {
  int width = 0;
  for (const auto& m : modules_) width += m.data_width_bits();
  return width;
}

util::Picoseconds AcbBoard::configure_all(const hw::Bitstream& bs) {
  util::Picoseconds total = 0;
  for (auto& f : fpgas_) total += f->configure(bs);
  return total;
}

util::Result<util::Picoseconds> AcbBoard::try_configure_all(
    const hw::Bitstream& bs) {
  if (!alive_) {
    return util::Result<util::Picoseconds>::failure(
        util::ErrorCode::kBoardDead,
        "configure_all on " + name_ + ": board is not alive");
  }
  util::Picoseconds total = 0;
  for (auto& f : fpgas_) {
    total += f->configure(bs);
    if (!f->config_crc_ok()) {
      return util::Result<util::Picoseconds>::failure(
          util::ErrorCode::kConfigCrc,
          "configure_all on " + name_ + ": " + f->name() + " failed CRC");
    }
  }
  return total;
}

AcbMatrixReport AcbBoard::step_matrix(int cycles, bool parallel,
                                      bool record_trace,
                                      util::WorkerPool* pool_override) {
  ATLANTIS_CHECK(cycles >= 0, "negative cycle count");
  AcbMatrixReport report;

  std::vector<chdl::Simulator*> sims(kFpgaCount, nullptr);
  std::vector<std::int32_t> active;  // FPGA indices carrying a design
  for (int i = 0; i < kFpgaCount; ++i) {
    sims[static_cast<std::size_t>(i)] = fpga(i).sim();
    if (sims[static_cast<std::size_t>(i)] != nullptr) active.push_back(i);
  }
  report.sims = static_cast<int>(active.size());
  if (active.empty() || cycles == 0) return report;

  // Wire up the neighbour links declared by the loaded designs.
  std::vector<MatrixLink> links;
  for (const std::int32_t i : active) {
    const int row = i / 2, col = i % 2;
    const struct {
      int neighbour;
      const char* out_name;
      const char* in_name;
    } dirs[] = {
        {row * 2 + (1 - col), "h_out", "h_in"},  // horizontal neighbour
        {(1 - row) * 2 + col, "v_out", "v_in"},  // vertical neighbour
    };
    for (const auto& dir : dirs) {
      chdl::Simulator* dst = sims[static_cast<std::size_t>(dir.neighbour)];
      if (dst == nullptr) continue;
      chdl::Simulator* src = sims[static_cast<std::size_t>(i)];
      const chdl::Wire out = find_port(src->design(), dir.out_name, false);
      const chdl::Wire in = find_port(dst->design(), dir.in_name, true);
      if (!out.valid() || !in.valid()) continue;
      ATLANTIS_CHECK(out.width == in.width,
                     "neighbour-link width mismatch between FPGAs");
      ATLANTIS_CHECK(out.width <= AcbPortSpec::kNeighborLines,
                     "neighbour link exceeds the 72-line port");
      links.push_back({src, dst, out, in, i, dir.neighbour});
    }
  }
  report.links = static_cast<int>(links.size());

  util::WorkerPool& pool =
      pool_override != nullptr ? *pool_override : util::WorkerPool::shared();
  const int n = static_cast<int>(active.size());
  for (int c = 0; c < cycles; ++c) {
    // Edge: each simulator advances one clock. The simulators share no
    // mutable state, so they may run concurrently; the chunked dispatch
    // hands each worker a slice of sims (one mutex round-trip per worker
    // per cycle, not per sim — a single event-driven step is ~100 ns,
    // far below the per-index handout cost) and its return is the
    // barrier.
    if (parallel && n > 1) {
      pool.parallel_for_chunked(n, [&](int k) {
        sims[static_cast<std::size_t>(active[static_cast<std::size_t>(k)])]
            ->step();
      });
    } else {
      for (const std::int32_t i : active) {
        sims[static_cast<std::size_t>(i)]->step();
      }
    }
    // Exchange: move post-edge link outputs into the neighbours' input
    // ports so the next edge latches them (registered-link protocol).
    for (const MatrixLink& link : links) {
      chdl::BitVec v = link.src->peek(link.out);
      if (record_trace) {
        report.trace.push_back({report.cycles, link.from, link.to, v});
      }
      link.dst->poke(link.in, v);
    }
    ++report.cycles;
  }
  return report;
}

hw::ClockGenerator& AcbBoard::io_clock(int fpga_index) {
  ATLANTIS_CHECK(fpga_index >= 0 && fpga_index < kFpgaCount,
                 "FPGA index out of range");
  return io_clocks_[static_cast<std::size_t>(fpga_index)];
}

void AcbBoard::save_state(sim::SnapshotWriter& w) const {
  w.put_string(name_);
  w.put_bool(alive_);
  w.put_f64(local_clock_.mhz());
  w.put_u32(static_cast<std::uint32_t>(io_clocks_.size()));
  for (const auto& c : io_clocks_) w.put_f64(c.mhz());
  pci_.save_state(w);
  slink_.save_state(w);
  for (const auto& f : fpgas_) f->save_state(w);
  w.put_u32(static_cast<std::uint32_t>(modules_.size()));
  for (const auto& m : modules_) {
    w.put_u8(static_cast<std::uint8_t>(m.kind()));
    if (m.sram() != nullptr) m.sram()->save_state(w);
    if (m.sdram() != nullptr) m.sdram()->save_state(w);
  }
}

void AcbBoard::load_state(sim::SnapshotReader& r) {
  const std::string name = r.get_string();
  if (name != name_) {
    throw util::StateError("board snapshot is for '" + name + "', not '" +
                           name_ + "'");
  }
  alive_ = r.get_bool();
  local_clock_.set_mhz(r.get_f64());
  const std::uint32_t n_io = r.get_u32();
  ATLANTIS_CHECK(n_io == io_clocks_.size(),
                 "board snapshot I/O clock count mismatch");
  for (auto& c : io_clocks_) c.set_mhz(r.get_f64());
  pci_.load_state(r);
  slink_.load_state(r);
  for (auto& f : fpgas_) f->load_state(r);
  const std::uint32_t n_mod = r.get_u32();
  if (n_mod != modules_.size()) {
    throw util::StateError("board snapshot has " + std::to_string(n_mod) +
                           " memory modules; " + name_ + " has " +
                           std::to_string(modules_.size()));
  }
  for (auto& m : modules_) {
    const auto kind = static_cast<MemModuleKind>(r.get_u8());
    if (kind != m.kind()) {
      throw util::StateError("board snapshot memory-module kind mismatch on " +
                             m.name());
    }
    if (m.sram() != nullptr) m.sram()->load_state(r);
    if (m.sdram() != nullptr) m.sdram()->load_state(r);
  }
}

}  // namespace atlantis::core
