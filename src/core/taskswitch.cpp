#include "core/taskswitch.hpp"

#include "util/status.hpp"

namespace atlantis::core {

void TaskSwitcher::add_task(const hw::Bitstream& bs) {
  ATLANTIS_CHECK(!bs.name.empty(), "task needs a name");
  ATLANTIS_CHECK(tasks_.find(bs.name) == tasks_.end(),
                 "task '" + bs.name + "' already registered");
  tasks_.emplace(bs.name, bs);
}

util::Picoseconds TaskSwitcher::switch_to(const std::string& name) {
  const auto it = tasks_.find(name);
  if (it == tasks_.end()) {
    throw util::StateError("unknown task '" + name + "'");
  }
  if (current_ == name) {
    last_time_ = 0;
    return 0;  // already resident
  }
  util::Picoseconds t = 0;
  if (device_.configured() && device_.family().partial_reconfig) {
    t = device_.partial_reconfigure(it->second);
  } else {
    t = device_.configure(it->second);
  }
  current_ = name;
  ++switches_;
  total_time_ += t;
  last_time_ = t;
  if (bound()) {
    cursor_ = timeline_
                  ->post(track_, sim::TxnKind::kReconfig,
                         "switch to " + name, sim::ResourceId{}, cursor_, t)
                  .end;
  }
  return t;
}

}  // namespace atlantis::core
