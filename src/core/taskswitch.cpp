#include "core/taskswitch.hpp"

#include "util/status.hpp"

namespace atlantis::core {

void TaskSwitcher::add_task(const hw::Bitstream& bs) {
  ATLANTIS_CHECK(!bs.name.empty(), "task needs a name");
  ATLANTIS_CHECK(tasks_.find(bs.name) == tasks_.end(),
                 "task '" + bs.name + "' already registered");
  if (bs.has_regions()) {
    ATLANTIS_CHECK(static_cast<int>(bs.region_sigs.size()) ==
                       device_.region_count(),
                   "task '" + bs.name + "' region count does not match " +
                       device_.family().name);
  }
  tasks_.emplace(bs.name, bs);
}

util::Picoseconds TaskSwitcher::post_reconfig(const std::string& label,
                                              util::Picoseconds t,
                                              std::uint32_t regions) {
  if (bound()) {
    cursor_ = timeline_
                  ->post(track_, sim::TxnKind::kReconfig, label,
                         sim::ResourceId{}, cursor_, t, 0, regions)
                  .end;
  }
  return t;
}

void TaskSwitcher::enable_cache(std::size_t capacity, double hit_fraction) {
  ATLANTIS_CHECK(hit_fraction > 0.0 && hit_fraction <= 1.0,
                 "cache hit fraction out of range");
  cache_ = ConfigCache(capacity);
  cache_hit_fraction_ = hit_fraction;
}

bool TaskSwitcher::diff_applicable(const hw::Bitstream& bs) const {
  return differential_ && device_.configured() &&
         device_.family().partial_reconfig && device_.region_count() > 1 &&
         bs.has_regions() &&
         hw::region_diff_count(device_.resident_regions(), bs.region_sigs) >= 0;
}

util::Picoseconds TaskSwitcher::estimate_switch_cost(
    const std::string& name) const {
  const auto it = tasks_.find(name);
  if (it == tasks_.end()) {
    throw util::StateError("unknown task '" + name + "'");
  }
  if (current_ == name && device_.configured()) return 0;
  const util::Picoseconds full = device_.config_time(
      device_.family().config_bits);
  if (cache_.enabled() && cache_.contains(name) && device_.configured() &&
      !device_.upset_pending()) {
    return static_cast<util::Picoseconds>(
        static_cast<double>(full) * cache_hit_fraction_);
  }
  if (diff_applicable(it->second)) {
    const int d = hw::region_diff_count(device_.resident_regions(),
                                        it->second.region_sigs);
    return device_.region_time() * d;
  }
  if (device_.configured() && device_.family().partial_reconfig) {
    return static_cast<util::Picoseconds>(
        static_cast<double>(full) * it->second.fraction);
  }
  return full;
}

util::Picoseconds TaskSwitcher::switch_to(const std::string& name) {
  util::Result<util::Picoseconds> r = try_switch_to(name);
  if (!r.ok()) throw util::Error(r.message());
  return r.value();
}

util::Result<util::Picoseconds> TaskSwitcher::try_switch_to(
    const std::string& name) {
  const auto it = tasks_.find(name);
  if (it == tasks_.end()) {
    throw util::StateError("unknown task '" + name + "'");
  }
  last_regions_ = 0;
  if (current_ == name && device_.configured()) {
    last_time_ = 0;
    return util::Picoseconds{0};  // already resident
  }
  // Bitstream-cache hit: the configuration data is staged in the local
  // configuration store, so the context is activated (a small fraction
  // of the full load) without moving the bitstream — and therefore
  // without a CRC opportunity. An upset or unconfigured device must take
  // the full reload path below, which repairs it.
  if (cache_.enabled()) {
    const bool staged = cache_.touch(name);
    if (staged && device_.configured() && !device_.upset_pending()) {
      const util::Picoseconds t =
          device_.activate(it->second, cache_hit_fraction_);
      post_reconfig("switch to " + name + " (cached)", t);
      current_ = name;
      ++switches_;
      total_time_ += t;
      last_time_ = t;
      return t;
    }
  }
  util::Picoseconds total = 0;
  for (int attempt = 1;; ++attempt) {
    util::Picoseconds t = 0;
    bool ok = false;
    std::uint32_t regions = 0;
    if (diff_applicable(it->second)) {
      // Differential load: only changed frames move, each with its own
      // CRC opportunity retried up to the policy budget. Exhausting the
      // budget on one frame drops the device unconfigured and the outer
      // loop falls back to a full configuration.
      const hw::ReconfigOutcome oc =
          device_.reconfigure_diff(it->second, policy_.max_attempts);
      t = oc.time;
      ok = oc.ok;
      reconfig_retries_ += static_cast<std::uint64_t>(oc.region_retries);
      if (ok) {
        regions = static_cast<std::uint32_t>(oc.regions_loaded);
        ++partial_switches_;
        regions_loaded_ += static_cast<std::uint64_t>(oc.regions_loaded);
        partial_time_ += t;
        last_regions_ = oc.regions_loaded;
      }
    } else if (device_.configured() && device_.family().partial_reconfig) {
      t = device_.partial_reconfigure(it->second);
      ok = device_.config_crc_ok();
    } else {
      t = device_.configure(it->second);
      ok = device_.config_crc_ok();
    }
    total += t;
    post_reconfig(ok ? "switch to " + name
                     : "switch to " + name + " (crc fail)",
                  t, regions);
    if (ok) break;
    // The CRC failure left the device unconfigured: the next attempt is
    // a full configuration, not a partial one.
    if (attempt >= policy_.max_attempts) {
      current_.clear();
      return util::Result<util::Picoseconds>::failure(
          util::ErrorCode::kConfigCrc,
          "task switch to '" + name + "' on " + device_.name() +
              " failed CRC after " + std::to_string(attempt) + " attempts");
    }
    ++reconfig_retries_;
  }
  current_ = name;
  ++switches_;
  total_time_ += total;
  last_time_ = total;
  // Both the full load and the differential one leave a complete fresh
  // copy of the configuration staged locally.
  cache_.insert(name, it->second.region_sigs);
  return total;
}

bool TaskSwitcher::scrub() {
  if (!device_.configured()) return false;
  ++scrubs_;
  device_.draw_config_upset();  // one SEU opportunity per scrub window
  util::Picoseconds t = device_.readback();
  bool repaired = false;
  std::uint32_t regions = 0;
  if (device_.upset_pending()) {
    // Readback shows a bitstream mismatch: repair it. With the
    // differential path available the upset frame is re-shifted alone
    // and the live design state survives (reconfigure_diff of the
    // resident bitstream touches only the upset region); otherwise the
    // current task is reloaded wholesale. Either reload is a CRC
    // opportunity; a failure there surfaces via the next
    // try_switch_to(), which sees an unconfigured device.
    const auto it = tasks_.find(current_);
    if (it != tasks_.end()) {
      if (diff_applicable(it->second)) {
        const hw::ReconfigOutcome oc =
            device_.reconfigure_diff(it->second, policy_.max_attempts);
        t += oc.time;
        reconfig_retries_ += static_cast<std::uint64_t>(oc.region_retries);
        if (oc.ok) {
          repaired = true;
          ++upsets_corrected_;
          ++region_scrubs_;
          regions = static_cast<std::uint32_t>(oc.regions_loaded);
        } else {
          current_.clear();
        }
      } else {
        if (device_.family().partial_reconfig) {
          t += device_.partial_reconfigure(it->second);
        } else {
          t += device_.configure(it->second);
        }
        if (device_.config_crc_ok()) {
          repaired = true;
          ++upsets_corrected_;
        } else {
          current_.clear();
        }
      }
    }
  }
  post_reconfig(repaired ? "scrub (repair)" : "scrub", t, regions);
  return repaired;
}

void TaskSwitcher::save_state(sim::SnapshotWriter& w) const {
  w.put_string(current_);
  w.put_u64(switches_);
  w.put_i64(total_time_);
  w.put_i64(last_time_);
  w.put_u64(reconfig_retries_);
  w.put_u64(scrubs_);
  w.put_u64(upsets_corrected_);
  w.put_u64(partial_switches_);
  w.put_u64(regions_loaded_);
  w.put_i64(partial_time_);
  w.put_i64(last_regions_);
  w.put_u64(region_scrubs_);
  w.put_bool(differential_);
  w.put_f64(cache_hit_fraction_);
  w.put_i64(cursor_);
  cache_.save_state(w);
}

void TaskSwitcher::load_state(sim::SnapshotReader& r) {
  std::string current = r.get_string();
  if (!current.empty() && tasks_.find(current) == tasks_.end()) {
    throw util::StateError("snapshot current task '" + current +
                           "' is not registered on this switcher");
  }
  current_ = std::move(current);
  switches_ = r.get_u64();
  total_time_ = r.get_i64();
  last_time_ = r.get_i64();
  reconfig_retries_ = r.get_u64();
  scrubs_ = r.get_u64();
  upsets_corrected_ = r.get_u64();
  partial_switches_ = r.get_u64();
  regions_loaded_ = r.get_u64();
  partial_time_ = r.get_i64();
  last_regions_ = static_cast<int>(r.get_i64());
  region_scrubs_ = r.get_u64();
  differential_ = r.get_bool();
  cache_hit_fraction_ = r.get_f64();
  cursor_ = r.get_i64();
  cache_.load_state(r);
}

}  // namespace atlantis::core
