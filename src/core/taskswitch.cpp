#include "core/taskswitch.hpp"

#include "util/status.hpp"

namespace atlantis::core {

void TaskSwitcher::add_task(const hw::Bitstream& bs) {
  ATLANTIS_CHECK(!bs.name.empty(), "task needs a name");
  ATLANTIS_CHECK(tasks_.find(bs.name) == tasks_.end(),
                 "task '" + bs.name + "' already registered");
  tasks_.emplace(bs.name, bs);
}

util::Picoseconds TaskSwitcher::post_reconfig(const std::string& label,
                                              util::Picoseconds t) {
  if (bound()) {
    cursor_ = timeline_
                  ->post(track_, sim::TxnKind::kReconfig, label,
                         sim::ResourceId{}, cursor_, t)
                  .end;
  }
  return t;
}

void TaskSwitcher::enable_cache(std::size_t capacity, double hit_fraction) {
  ATLANTIS_CHECK(hit_fraction > 0.0 && hit_fraction <= 1.0,
                 "cache hit fraction out of range");
  cache_ = ConfigCache(capacity);
  cache_hit_fraction_ = hit_fraction;
}

util::Picoseconds TaskSwitcher::switch_to(const std::string& name) {
  util::Result<util::Picoseconds> r = try_switch_to(name);
  if (!r.ok()) throw util::Error(r.message());
  return r.value();
}

util::Result<util::Picoseconds> TaskSwitcher::try_switch_to(
    const std::string& name) {
  const auto it = tasks_.find(name);
  if (it == tasks_.end()) {
    throw util::StateError("unknown task '" + name + "'");
  }
  if (current_ == name && device_.configured()) {
    last_time_ = 0;
    return util::Picoseconds{0};  // already resident
  }
  // Bitstream-cache hit: the configuration data is staged in the local
  // configuration store, so the context is activated (a small fraction
  // of the full load) without moving the bitstream — and therefore
  // without a CRC opportunity. An upset or unconfigured device must take
  // the full reload path below, which repairs it.
  if (cache_.enabled()) {
    const bool staged = cache_.touch(name);
    if (staged && device_.configured() && !device_.upset_pending()) {
      const util::Picoseconds t =
          device_.activate(it->second, cache_hit_fraction_);
      post_reconfig("switch to " + name + " (cached)", t);
      current_ = name;
      ++switches_;
      total_time_ += t;
      last_time_ = t;
      return t;
    }
  }
  util::Picoseconds total = 0;
  for (int attempt = 1;; ++attempt) {
    util::Picoseconds t = 0;
    if (device_.configured() && device_.family().partial_reconfig) {
      t = device_.partial_reconfigure(it->second);
    } else {
      t = device_.configure(it->second);
    }
    total += t;
    const bool ok = device_.config_crc_ok();
    post_reconfig(ok ? "switch to " + name
                     : "switch to " + name + " (crc fail)",
                  t);
    if (ok) break;
    // The CRC failure left the device unconfigured: the next attempt is
    // a full configuration, not a partial one.
    if (attempt >= policy_.max_attempts) {
      current_.clear();
      return util::Result<util::Picoseconds>::failure(
          util::ErrorCode::kConfigCrc,
          "task switch to '" + name + "' on " + device_.name() +
              " failed CRC after " + std::to_string(attempt) + " attempts");
    }
    ++reconfig_retries_;
  }
  current_ = name;
  ++switches_;
  total_time_ += total;
  last_time_ = total;
  cache_.insert(name);  // the full load staged a fresh local copy
  return total;
}

bool TaskSwitcher::scrub() {
  if (!device_.configured()) return false;
  ++scrubs_;
  device_.draw_config_upset();  // one SEU opportunity per scrub window
  util::Picoseconds t = device_.readback();
  bool repaired = false;
  if (device_.upset_pending()) {
    // Readback shows a bitstream mismatch: reload the current task. The
    // reload is itself a CRC opportunity; a failure there surfaces via
    // the next try_switch_to(), which sees an unconfigured device.
    const auto it = tasks_.find(current_);
    if (it != tasks_.end()) {
      if (device_.family().partial_reconfig) {
        t += device_.partial_reconfigure(it->second);
      } else {
        t += device_.configure(it->second);
      }
      if (device_.config_crc_ok()) {
        repaired = true;
        ++upsets_corrected_;
      } else {
        current_.clear();
      }
    }
  }
  post_reconfig(repaired ? "scrub (repair)" : "scrub", t);
  return repaired;
}

}  // namespace atlantis::core
