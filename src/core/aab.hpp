// ATLANTIS Active Backplane (AAB).
//
// §2.3: ACBs and AIBs share an I/O circuit of 160 signal lines; the
// private bus connects boards point to point. The default configuration
// is 4 channels of 32 bit plus control, but "any granularity from 16
// channels of a single byte to 2 channels of 64 bit might be useful".
// Total bandwidth is 1 GB/s per slot (128 data bits at 66 MHz); two
// independent ACB/AIB pairs yield 2 GB/s per crate. A simple pipelined
// passive backplane is what the paper's tests used; it is modelled as a
// fixed-configuration variant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/timeline.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::core {

struct AabSpec {
  static constexpr int kSignalLines = 160;
  static constexpr int kDataLines = 128;  // the rest is control
  static constexpr double kClockMhz = 66.0;
  static constexpr int kDefaultSlots = 8;
};

class Backplane {
 public:
  /// `passive` models the simple pipelined test backplane: channel
  /// configuration is fixed at the 4 x 32 bit default.
  explicit Backplane(std::string name, int slots = AabSpec::kDefaultSlots,
                     bool passive = false);

  const std::string& name() const { return name_; }
  int slots() const { return slots_; }
  bool passive() const { return passive_; }

  /// Reconfigures the channel granularity under host-CPU control.
  /// Widths must be 8/16/32/64 bits and sum to at most 128.
  void configure_channels(const std::vector<int>& widths);
  const std::vector<int>& channel_widths() const { return widths_; }
  int channel_count() const { return static_cast<int>(widths_.size()); }

  /// Bandwidth of one channel at the backplane clock.
  double channel_mbps(int channel) const;
  /// Aggregate per-slot bandwidth (the 1 GB/s figure).
  double slot_mbps() const;

  /// Models a point-to-point block transfer between two slots over one
  /// channel: burst time plus one pipeline stage per slot traversed.
  util::Picoseconds transfer(int from_slot, int to_slot, int channel,
                             std::uint64_t bytes) const;

  /// Aggregate bandwidth with `pairs` independent ACB/AIB pairs streaming
  /// concurrently (the "2 GB/s for a single ATLANTIS system" example).
  double paired_mbps(int pairs) const;

  // --- timeline binding ------------------------------------------------
  /// Registers one timeline resource per channel; transfers posted on a
  /// channel arbitrate FIFO against every other board's bursts on it.
  /// configure_channels() re-registers (the old resources keep their
  /// recorded history).
  void bind(sim::Timeline& timeline);
  bool bound() const { return timeline_ != nullptr; }
  sim::ResourceId channel_resource(int channel) const;

  /// Posts a point-to-point block transfer onto the bound channel no
  /// earlier than `not_before`; service time is exactly transfer().
  const sim::Transaction& post_transfer(sim::TrackId track, int from_slot,
                                        int to_slot, int channel,
                                        std::uint64_t bytes,
                                        util::Picoseconds not_before,
                                        std::string label = {});

 private:
  std::string name_;
  int slots_;
  bool passive_;
  std::vector<int> widths_;
  sim::Timeline* timeline_ = nullptr;
  std::vector<sim::ResourceId> channel_resources_;
};

}  // namespace atlantis::core
