// Board health sampling for the supervision layer.
//
// Production detector-side crates (the ATCA full-mesh processor, the
// HL-LHC track trigger) run under always-on health monitoring: something
// reads the fault counters every few milliseconds and decides whether a
// board is still trustworthy. This header is the data side of that loop:
// SelfTestHealth is the cumulative per-component counter page (also
// embedded in the self-test report), and HealthProbe is one sampled
// observation of a board — counters plus liveness plus the timeline's
// per-resource fault/retry accounting attributable to the board.
//
// Deliberately header-only and dependency-free (util only) so both
// core/acb.hpp and core/selftest.hpp can include it without cycles.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace atlantis::core {

/// Fault/recovery counters gathered from every component on the board —
/// the health page of the self-test report. All zero on a fault-free run.
struct SelfTestHealth {
  std::uint64_t dma_stalls = 0;
  std::uint64_t dma_aborts = 0;
  std::uint64_t slink_errors = 0;
  std::uint64_t truncated_frames = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t seu_flips = 0;        // memory-module data upsets
  std::uint64_t config_upsets = 0;    // FPGA configuration upsets
  std::uint64_t crc_failures = 0;     // configuration CRC failures
  std::uint64_t ecc_corrections = 0;  // SDRAM ECC events
  std::uint64_t total() const {
    return dma_stalls + dma_aborts + slink_errors + truncated_frames +
           retransmissions + seu_flips + config_upsets + crc_failures +
           ecc_corrections;
  }
};

/// One sampled health observation of a board, as returned by
/// AcbBoard::probe_health() / AtlantisSystem::probe_health(). Counters
/// are cumulative; a monitor diffs consecutive probes to get per-window
/// event counts.
struct HealthProbe {
  int board = -1;   // index within the crate; -1 for a standalone board
  bool alive = true;
  SelfTestHealth counters;
  /// Timeline fault/retry accounting on the board's own resources
  /// (compute track + S-Link stream). The shared CompactPCI segment is
  /// crate-wide and deliberately not attributed to any single board.
  std::uint64_t resource_faults = 0;
  std::uint64_t resource_retries = 0;
  util::Picoseconds resource_retry_time = 0;

  std::uint64_t total_faults() const {
    return counters.total() + resource_faults;
  }
};

}  // namespace atlantis::core
