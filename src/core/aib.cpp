#include "core/aib.hpp"

#include "util/status.hpp"

namespace atlantis::core {

AibChannel::AibChannel(std::string name) : name_(std::move(name)) {}

ChannelTrafficResult AibChannel::simulate(const ChannelTrafficParams& p) {
  ATLANTIS_CHECK(p.burst_words > 0, "empty producer burst");
  ATLANTIS_CHECK(p.drain_period >= p.drain_window,
                 "drain window longer than its period");
  hw::Fifo fifo(name_ + "/fifo", kFifoWords);
  hw::Fifo sram(name_ + "/sram", kSramWords);

  ChannelTrafficResult r;
  const std::uint64_t burst_period = p.burst_words + p.gap_cycles;
  for (std::uint64_t cycle = 0; cycle < p.cycles; ++cycle) {
    // Producer: one word per cycle during the burst phase.
    const bool producing = (cycle % burst_period) < p.burst_words;
    if (producing) {
      ++r.offered_words;
      if (fifo.push(1) == 1) {
        ++r.accepted_words;
      } else {
        ++r.stalled_words;
      }
    }
    // Stage 1 -> stage 2 spill (one word per SRAM cycle) when enabled.
    if (p.use_stage2 && !fifo.empty() && !sram.full()) {
      fifo.pop(1);
      sram.push(1);
    }
    // Consumer: backplane drains during its arbitration window.
    const bool draining = (cycle % p.drain_period) < p.drain_window;
    if (draining) {
      if (p.use_stage2) {
        if (sram.pop(1) == 1) ++r.delivered_words;
      } else {
        if (fifo.pop(1) == 1) ++r.delivered_words;
      }
    }
    fifo.tick();
    sram.tick();
  }
  r.fifo_watermark = fifo.high_watermark();
  r.sram_watermark = sram.high_watermark();
  const double seconds =
      static_cast<double>(p.cycles) / (kClockMhz * 1e6);
  const double bytes_per_word = kDataBits / 8.0;
  r.offered_mbps =
      static_cast<double>(r.offered_words) * bytes_per_word / seconds / 1e6;
  r.sustained_mbps =
      static_cast<double>(r.delivered_words) * bytes_per_word / seconds / 1e6;
  return r;
}

const sim::Transaction& AibChannel::post_window(sim::TrackId track,
                                                std::uint64_t cycles,
                                                std::uint64_t delivered_words,
                                                util::Picoseconds not_before,
                                                std::string label) {
  ATLANTIS_CHECK(bound(), "AIB channel is not bound to a timeline");
  if (label.empty()) label = name_ + " window";
  const util::Picoseconds span =
      static_cast<util::Picoseconds>(cycles) *
      util::period_from_mhz(kClockMhz);
  return timeline_->post(track, sim::TxnKind::kAabChannel, std::move(label),
                         resource_, not_before, span, delivered_words * 4);
}

AibBoard::AibBoard(std::string name)
    : name_(std::move(name)), local_clock_(name_ + "/clk_local") {
  for (int i = 0; i < kFpgaCount; ++i) {
    fpgas_.push_back(std::make_unique<hw::FpgaDevice>(
        name_ + "/fpga" + std::to_string(i), hw::virtex_xcv600()));
  }
  for (int i = 0; i < kChannelCount; ++i) {
    channels_.emplace_back(name_ + "/ch" + std::to_string(i));
  }
}

void AibBoard::bind_timeline(sim::Timeline& timeline,
                             sim::ResourceId segment) {
  timeline_ = &timeline;
  pci_.bind(&timeline, segment);
  for (AibChannel& ch : channels_) ch.bind(timeline);
}

hw::FpgaDevice& AibBoard::fpga(int index) {
  ATLANTIS_CHECK(index >= 0 && index < kFpgaCount, "FPGA index out of range");
  return *fpgas_[static_cast<std::size_t>(index)];
}

AibChannel& AibBoard::channel(int index) {
  ATLANTIS_CHECK(index >= 0 && index < kChannelCount,
                 "channel index out of range");
  return channels_[static_cast<std::size_t>(index)];
}

}  // namespace atlantis::core
