// ATLANTIS I/O Board (AIB).
//
// §2.2: two Virtex XCV600 control four mezzanine I/O channels of
// 36 bit @ 66 MHz (264 MB/s each ignoring the 4 tag bits; the four
// channels together match the 1 GB/s of the two backplane ports). Each
// channel buffers in two stages to sustain bandwidth even at small block
// sizes: a 32k x 36 dual-ported FIFO at the port and a 1M x 36
// synchronous-SRAM general-purpose buffer behind it.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "hw/clock.hpp"
#include "hw/fifo.hpp"
#include "hw/fpga.hpp"
#include "hw/pci.hpp"
#include "sim/timeline.hpp"
#include "util/units.hpp"

namespace atlantis::core {

/// Cycle-driven traffic model of one AIB channel: an external producer
/// pushes bursts into the port; the backplane drains in arbitration
/// windows. The two-stage buffer decouples the two rhythms.
struct ChannelTrafficParams {
  /// Producer: `burst_words` at one word/cycle, then `gap_cycles` idle.
  std::uint64_t burst_words = 256;
  std::uint64_t gap_cycles = 0;
  /// Consumer: every `drain_period` cycles the backplane grants a window
  /// of `drain_window` cycles draining one word/cycle.
  std::uint64_t drain_period = 1024;
  std::uint64_t drain_window = 1024;
  /// Total simulated cycles at the 66 MHz channel clock.
  std::uint64_t cycles = 1'000'000;
  bool use_stage2 = true;
};

struct ChannelTrafficResult {
  std::uint64_t offered_words = 0;
  std::uint64_t accepted_words = 0;   // made it into the buffers
  std::uint64_t delivered_words = 0;  // reached the backplane
  std::uint64_t stalled_words = 0;    // arrived while the input was full
  std::uint64_t fifo_watermark = 0;
  std::uint64_t sram_watermark = 0;
  double offered_mbps = 0.0;
  double sustained_mbps = 0.0;
};

class AibChannel {
 public:
  static constexpr std::uint64_t kFifoWords = 32 * 1024;   // 32k x 36
  static constexpr std::uint64_t kSramWords = 1024 * 1024; // 1M x 36
  static constexpr int kDataBits = 32;                     // 36 incl. tags
  static constexpr double kClockMhz = 66.0;

  explicit AibChannel(std::string name);

  /// Runs the traffic model from empty buffers.
  ChannelTrafficResult simulate(const ChannelTrafficParams& params);

  /// Peak channel bandwidth (the paper's 264 MB/s).
  static double peak_mbps() { return kClockMhz * kDataBits / 8.0; }

  // --- timeline binding ------------------------------------------------
  /// Registers the mezzanine channel as a timeline resource.
  void bind(sim::Timeline& timeline) {
    timeline_ = &timeline;
    resource_ = timeline.add_resource("aibch/" + name_);
  }
  bool bound() const { return timeline_ != nullptr; }
  sim::ResourceId resource() const { return resource_; }

  /// Posts a simulated traffic window (the wall-clock span of `cycles`
  /// channel clocks, `delivered_words` moved) onto the timeline.
  const sim::Transaction& post_window(sim::TrackId track,
                                      std::uint64_t cycles,
                                      std::uint64_t delivered_words,
                                      util::Picoseconds not_before,
                                      std::string label = {});

 private:
  std::string name_;
  sim::Timeline* timeline_ = nullptr;
  sim::ResourceId resource_;
};

class AibBoard {
 public:
  explicit AibBoard(std::string name);

  const std::string& name() const { return name_; }
  static constexpr int kFpgaCount = 2;
  static constexpr int kChannelCount = 4;

  hw::FpgaDevice& fpga(int index);
  AibChannel& channel(int index);

  /// Aggregate I/O bandwidth: 4 x 264 MB/s ~ 1 GB/s, matching the two
  /// backplane ports.
  double total_io_mbps() const { return kChannelCount * AibChannel::peak_mbps(); }

  hw::Plx9080& pci() { return pci_; }
  hw::ClockGenerator& local_clock() { return local_clock_; }

  /// Binds the board into a crate timeline: the PLX joins the shared
  /// CompactPCI `segment` and every mezzanine channel gets a resource.
  void bind_timeline(sim::Timeline& timeline, sim::ResourceId segment);
  sim::Timeline* timeline() const { return timeline_; }

  /// Wires a fault injector through the PLX and the control FPGAs.
  void set_fault_injector(sim::FaultInjector* injector) {
    pci_.set_fault_injector(injector, "pci/" + name_);
    for (auto& f : fpgas_) f->set_fault_injector(injector);
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<hw::FpgaDevice>> fpgas_;
  std::vector<AibChannel> channels_;
  hw::Plx9080 pci_;
  hw::ClockGenerator local_clock_;
  sim::Timeline* timeline_ = nullptr;
};

}  // namespace atlantis::core
