// AtlantisDriver: the microEnable-compatible software interface.
//
// §2 and §2.4: the PLX 9080 and the CPLD support logic are taken from the
// microEnable coprocessor, so "virtually all basic software (WinNT
// driver, test tools, etc.) are immediately available for ATLANTIS".
// This class is that driver surface: configure, register access, block
// DMA. Applications written against it run identically whether the
// target FPGA carries a cycle-simulated CHDL design (the CHDL workflow)
// or only a timing model.
//
// The driver keeps a time ledger: every call advances `elapsed()` by the
// modelled hardware cost, which is how the experiment harnesses obtain
// end-to-end execution times ("algorithm plus I/O").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "chdl/hostif.hpp"
#include "core/system.hpp"
#include "hw/fpga.hpp"
#include "hw/pci.hpp"
#include "util/units.hpp"

namespace atlantis::core {

class AtlantisDriver {
 public:
  /// Opens the ACB with the given index, like the driver's open() call.
  AtlantisDriver(AtlantisSystem& system, int acb_index);

  AcbBoard& board() { return board_; }

  // --- time ledger ---------------------------------------------------
  util::Picoseconds elapsed() const { return elapsed_; }
  void reset_time() { elapsed_ = 0; }
  /// Adds externally-computed hardware time (e.g. N design clocks).
  void advance(util::Picoseconds t) { elapsed_ += t; }
  /// Adds `cycles` of the board's design clock.
  void advance_cycles(std::uint64_t cycles);

  // --- configuration --------------------------------------------------
  /// Full configuration of one FPGA.
  void configure(int fpga, const hw::Bitstream& bs);
  /// Partial reconfiguration (hardware task switch on the ORCA parts).
  void partial_reconfigure(int fpga, const hw::Bitstream& bs);

  /// Programs the board's design clock (the "design speed 40 MHz" knob
  /// from the Table 1 measurements).
  void set_design_clock(double mhz);
  double design_clock_mhz() const { return board_.local_clock().mhz(); }

  // --- register access -------------------------------------------------
  /// Single-word target-mode access. If the FPGA carries a simulated
  /// design with a host port, the access is also applied to it.
  void reg_write(int fpga, std::uint32_t addr, std::uint64_t data);
  std::uint64_t reg_read(int fpga, std::uint32_t addr);

  // --- DMA --------------------------------------------------------------
  /// Block DMA host->board / board->host; advances the ledger and
  /// returns the modelled transfer.
  hw::DmaTransfer dma_write(std::uint64_t bytes);
  hw::DmaTransfer dma_read(std::uint64_t bytes);

  /// DMA that also delivers payload words into the simulated design,
  /// one word per design clock through the host port at `addr`
  /// (the FIFO-push pattern of the microEnable driver).
  hw::DmaTransfer dma_write_to_sim(int fpga, std::uint32_t addr,
                                   std::span<const std::uint64_t> words);

  /// Direct access to the simulated design (tests and loaders).
  chdl::HostInterface* host_if(int fpga);
  chdl::Simulator* sim(int fpga) { return board_.fpga(fpga).sim(); }

 private:
  AtlantisSystem& system_;
  AcbBoard& board_;
  util::Picoseconds elapsed_ = 0;
  std::vector<std::unique_ptr<chdl::HostInterface>> host_ifs_;
};

}  // namespace atlantis::core
