// AtlantisDriver: the microEnable-compatible software interface.
//
// §2 and §2.4: the PLX 9080 and the CPLD support logic are taken from the
// microEnable coprocessor, so "virtually all basic software (WinNT
// driver, test tools, etc.) are immediately available for ATLANTIS".
// This class is that driver surface: configure, register access, block
// DMA. Applications written against it run identically whether the
// target FPGA carries a cycle-simulated CHDL design (the CHDL workflow)
// or only a timing model.
//
// Timing: every call posts a typed transaction onto the crate's
// sim::Timeline and advances this driver's cursor to the transaction's
// end. elapsed() — the legacy scalar ledger — is the compatibility view
// over that cursor: with a single driver and no concurrency it is
// bit-identical to the old sum-of-durations ledger, because nothing
// queues; with several boards sharing the CompactPCI segment it
// additionally contains the queuing delay the bus arbiter imposed.
// Overlap is expressed with dma_*_async() + wait(): asynchronous
// transfers occupy the bus without advancing the cursor, so design-clock
// compute posted meanwhile runs concurrently and wait() joins at the
// maximum, not the sum.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "chdl/hostif.hpp"
#include "core/system.hpp"
#include "hw/fpga.hpp"
#include "hw/pci.hpp"
#include "sim/fault.hpp"
#include "sim/timeline.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::core {

class TaskSwitcher;

/// What AtlantisDriver::reset() clears. The scopes nest upward: kStats
/// implies kTime (per-phase accounting always restarts the ledger, the
/// behaviour the deprecated reset_stats() always had); kAll is every
/// scope including the crate's fault-injector replay state.
enum class ResetScope {
  kTime,    // elapsed() ledger only (epoch moves to the cursor)
  kStats,   // ledger + PLX lifetime counters + driver recovery counters
  kFaults,  // fault-injector site streams and replay log (crate-wide)
  kAll,     // everything above
};

class AtlantisDriver {
 public:
  /// Opens the ACB with the given index, like the driver's open() call.
  AtlantisDriver(AtlantisSystem& system, int acb_index);

  AcbBoard& board() { return board_; }
  AtlantisSystem& system() { return system_; }

  // --- time ledger -----------------------------------------------------
  /// Elapsed hardware time since construction (or the last reset_time):
  /// the timeline horizon of this driver's transactions, as a scalar.
  util::Picoseconds elapsed() const { return now_ - epoch_; }
  /// This driver's cursor on the crate timeline (absolute).
  util::Picoseconds now() const { return now_; }
  /// The one reset entry point. reset(kTime) moves the elapsed() epoch
  /// to the cursor; reset(kStats) additionally clears the PLX 9080
  /// lifetime DMA counters and the driver's recovery counters;
  /// reset(kFaults) rewinds the crate's fault injector for bit-identical
  /// replay; reset(kAll) does all of the above.
  void reset(ResetScope scope);

  /// Deprecated: use reset(ResetScope::kTime). Thin forwarder kept so
  /// existing call sites compile and behave identically; in-tree use
  /// fails the -Werror=deprecated-declarations CI leg.
  [[deprecated("use reset(ResetScope::kTime)")]]
  void reset_time() { reset(ResetScope::kTime); }
  /// Deprecated: use reset(ResetScope::kStats). Thin forwarder kept so
  /// existing call sites compile and behave identically; in-tree use
  /// fails the -Werror=deprecated-declarations CI leg.
  [[deprecated("use reset(ResetScope::kStats)")]]
  void reset_stats() { reset(ResetScope::kStats); }
  /// Adds externally-computed hardware time (e.g. N design clocks),
  /// posted as a design-clock compute transaction. `label` names the
  /// transaction in traces (the serve layer labels jobs).
  void advance(util::Picoseconds t, const char* label = "compute");
  /// Adds `cycles` of the board's design clock.
  void advance_cycles(std::uint64_t cycles);

  /// The crate timeline and this driver's track on it.
  sim::Timeline& timeline() { return *board_.timeline(); }
  sim::TrackId track() const { return track_; }

  // --- configuration ---------------------------------------------------
  /// Full configuration of one FPGA.
  void configure(int fpga, const hw::Bitstream& bs);
  /// Partial reconfiguration (hardware task switch on the ORCA parts).
  void partial_reconfigure(int fpga, const hw::Bitstream& bs);

  /// Hardware task switch through a TaskSwitcher: runs the switch (with
  /// its configuration cache and CRC-retry semantics), posts the
  /// kReconfig transaction at THIS driver's cursor and advances past it
  /// — so a serving layer keeps one cursor per board instead of two.
  /// The switcher must wrap one of this board's devices and must not be
  /// bound to the timeline itself (it would double-post).
  util::Result<util::Picoseconds> try_switch_task(TaskSwitcher& switcher,
                                                  const std::string& name);

  /// Self-reconfiguration service poll (driver-mediated, deterministic):
  /// if the FPGA's resident design asserts its `reconfig_req` output,
  /// the driver re-shifts the requested frame (`reconfig_region` output,
  /// region 0 when the port is absent) from the staged configuration
  /// data via FpgaDevice::self_reconfigure_region — live design state
  /// survives — posts the kReconfig transaction at this driver's cursor
  /// and acknowledges with a one-cycle pulse on the design's
  /// `reconfig_ack` input (when present) so the design can deassert the
  /// request. Returns 0 when there is no simulator, no request port or
  /// no pending request; fails with kConfigCrc when the frame reload
  /// exhausts the retry budget (the device is then unconfigured and the
  /// next task switch takes the full-configure path).
  util::Result<util::Picoseconds> poll_self_reconfig(int fpga);

  /// Programs the board's design clock (the "design speed 40 MHz" knob
  /// from the Table 1 measurements).
  void set_design_clock(double mhz);
  double design_clock_mhz() const { return board_.local_clock().mhz(); }

  // --- register access -------------------------------------------------
  /// Single-word target-mode access. If the FPGA carries a simulated
  /// design with a host port, the access is also applied to it.
  void reg_write(int fpga, std::uint32_t addr, std::uint64_t data);
  std::uint64_t reg_read(int fpga, std::uint32_t addr);

  // --- DMA -------------------------------------------------------------
  /// Block DMA host->board / board->host; posts the transfer on the
  /// shared CompactPCI segment, advances the cursor past it (queuing
  /// included) and returns the modelled transfer (service time only, so
  /// mbps() stays the device rate). Throws util::Error when the transfer
  /// cannot be completed within the retry policy.
  hw::DmaTransfer dma_write(std::uint64_t bytes);
  hw::DmaTransfer dma_read(std::uint64_t bytes);

  /// Recoverable DMA: same semantics, but injected faults surface as a
  /// Result instead of an exception. A faulted attempt occupies the bus
  /// (a stall until the watchdog, an abort for the setup time), then the
  /// driver backs off exponentially and retries, up to the policy's
  /// attempt and time budgets. Every faulted attempt and every backoff
  /// is posted on the timeline.
  util::Result<hw::DmaTransfer> try_dma_write(std::uint64_t bytes);
  util::Result<hw::DmaTransfer> try_dma_read(std::uint64_t bytes);

  /// Retry/backoff policy shared by DMA and configuration retries.
  void set_retry_policy(const sim::RetryPolicy& policy) { policy_ = policy; }
  const sim::RetryPolicy& retry_policy() const { return policy_; }

  /// Recovery statistics since construction (or the last reset_stats()).
  std::uint64_t dma_faults() const { return dma_faults_; }
  std::uint64_t dma_retries() const { return dma_retries_; }
  std::uint64_t config_retries() const { return config_retries_; }
  util::Picoseconds recovery_time() const { return recovery_time_; }

  /// Asynchronous DMA: occupies the bus from the current cursor but does
  /// NOT advance it, so compute posted afterwards overlaps the transfer.
  /// Returns the scheduled transaction id; wait() joins all outstanding
  /// asynchronous transfers (cursor = max of their ends).
  std::uint64_t dma_write_async(std::uint64_t bytes);
  std::uint64_t dma_read_async(std::uint64_t bytes);
  /// Joins every outstanding asynchronous DMA; returns elapsed().
  util::Picoseconds wait();
  int pending_dma() const { return static_cast<int>(pending_.size()); }

  /// DMA that also delivers payload words into the simulated design,
  /// one word per design clock through the host port at `addr`
  /// (the FIFO-push pattern of the microEnable driver).
  hw::DmaTransfer dma_write_to_sim(int fpga, std::uint32_t addr,
                                   std::span<const std::uint64_t> words);

  /// Direct access to the simulated design (tests and loaders).
  chdl::HostInterface* host_if(int fpga);
  chdl::Simulator* sim(int fpga) { return board_.fpga(fpga).sim(); }

  /// Snapshottable leaf, written into the caller's open section: the
  /// timeline cursor, elapsed() epoch, outstanding async-DMA ends and
  /// the recovery counters. The board's devices are saved by the board;
  /// the retry policy is construction configuration.
  void save_state(sim::SnapshotWriter& w) const;
  void load_state(sim::SnapshotReader& r);

 private:
  /// Posts design-clock compute on the board's compute resource and
  /// moves the cursor past it.
  void post_compute(util::Picoseconds t, const char* label);
  util::Result<hw::DmaTransfer> try_dma(hw::DmaDirection dir,
                                        std::uint64_t bytes);

  AtlantisSystem& system_;
  AcbBoard& board_;
  sim::TrackId track_;
  util::Picoseconds now_ = 0;
  util::Picoseconds epoch_ = 0;
  std::vector<util::Picoseconds> pending_;  // ends of async transfers
  std::vector<std::unique_ptr<chdl::HostInterface>> host_ifs_;
  sim::RetryPolicy policy_;
  std::uint64_t dma_faults_ = 0;
  std::uint64_t dma_retries_ = 0;
  std::uint64_t config_retries_ = 0;
  util::Picoseconds recovery_time_ = 0;
};

}  // namespace atlantis::core
