#include "core/memmodule.hpp"

namespace atlantis::core {

MemModule MemModule::make_trt(const std::string& name, double clock_mhz) {
  MemModule m;
  m.kind_ = MemModuleKind::kTrtSsram;
  m.name_ = name;
  m.slots_ = 1;
  m.width_bits_ = 176;
  hw::SramConfig cfg;
  cfg.words = 512 * 1024;
  cfg.width_bits = 176;
  cfg.banks = 1;
  cfg.clock_mhz = clock_mhz;
  m.capacity_bytes_ = cfg.total_bytes();
  m.sram_ = std::make_shared<hw::SyncSram>(name, cfg);
  return m;
}

MemModule MemModule::make_volren(const std::string& name) {
  MemModule m;
  m.kind_ = MemModuleKind::kVolrenSdram;
  m.name_ = name;
  m.slots_ = 3;  // "a single module of triple width"
  m.width_bits_ = 8 * 64;
  hw::SdramConfig cfg;  // defaults: 512 MB, 8 banks, 100 MHz
  m.capacity_bytes_ = cfg.capacity_bytes;
  m.sdram_ = std::make_shared<hw::Sdram>(name, cfg);
  return m;
}

MemModule MemModule::make_image(const std::string& name, double clock_mhz) {
  MemModule m;
  m.kind_ = MemModuleKind::kImageSsram;
  m.name_ = name;
  m.slots_ = 1;
  m.width_bits_ = 2 * 72;
  hw::SramConfig cfg;
  cfg.words = 512 * 1024;
  cfg.width_bits = 72;
  cfg.banks = 2;
  cfg.clock_mhz = clock_mhz;
  m.capacity_bytes_ = cfg.total_bytes();
  m.sram_ = std::make_shared<hw::SyncSram>(name, cfg);
  return m;
}

}  // namespace atlantis::core
