#include "core/configcache.hpp"

namespace atlantis::core {

bool ConfigCache::touch(const std::string& name) {
  if (!enabled()) return false;  // inert: no lookup, no stats
  const auto it = index_.find(name);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return true;
}

void ConfigCache::insert(const std::string& name) {
  if (!enabled()) return;
  const auto it = index_.find(name);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(name);
  index_[name] = lru_.begin();
  ++stats_.insertions;
}

void ConfigCache::erase(const std::string& name) {
  const auto it = index_.find(name);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

void ConfigCache::clear() {
  lru_.clear();
  index_.clear();
}

std::vector<std::string> ConfigCache::contents() const {
  return {lru_.begin(), lru_.end()};
}

}  // namespace atlantis::core
