#include "core/configcache.hpp"

namespace atlantis::core {

bool ConfigCache::touch(const std::string& name) {
  if (!enabled()) return false;  // inert: no lookup, no stats
  const auto it = index_.find(name);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return true;
}

void ConfigCache::insert(const std::string& name,
                         std::vector<std::uint64_t> sigs) {
  if (!enabled()) return;
  const auto it = index_.find(name);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    if (!sigs.empty()) sigs_[name] = std::move(sigs);
    return;
  }
  if (lru_.size() >= capacity_) {
    sigs_.erase(lru_.back());
    index_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(name);
  index_[name] = lru_.begin();
  if (!sigs.empty()) sigs_[name] = std::move(sigs);
  ++stats_.insertions;
}

const std::vector<std::uint64_t>& ConfigCache::signatures(
    const std::string& name) const {
  static const std::vector<std::uint64_t> kEmpty;
  const auto it = sigs_.find(name);
  return it == sigs_.end() ? kEmpty : it->second;
}

void ConfigCache::erase(const std::string& name) {
  const auto it = index_.find(name);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
  sigs_.erase(name);
}

void ConfigCache::clear() {
  lru_.clear();
  index_.clear();
  sigs_.clear();
}

std::vector<std::string> ConfigCache::contents() const {
  return {lru_.begin(), lru_.end()};
}

}  // namespace atlantis::core
