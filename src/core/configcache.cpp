#include "core/configcache.hpp"

namespace atlantis::core {

bool ConfigCache::touch(const std::string& name) {
  if (!enabled()) return false;  // inert: no lookup, no stats
  const auto it = index_.find(name);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return true;
}

void ConfigCache::insert(const std::string& name,
                         std::vector<std::uint64_t> sigs) {
  if (!enabled()) return;
  const auto it = index_.find(name);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    if (!sigs.empty()) sigs_[name] = std::move(sigs);
    return;
  }
  if (lru_.size() >= capacity_) {
    sigs_.erase(lru_.back());
    index_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(name);
  index_[name] = lru_.begin();
  if (!sigs.empty()) sigs_[name] = std::move(sigs);
  ++stats_.insertions;
}

const std::vector<std::uint64_t>& ConfigCache::signatures(
    const std::string& name) const {
  static const std::vector<std::uint64_t> kEmpty;
  const auto it = sigs_.find(name);
  return it == sigs_.end() ? kEmpty : it->second;
}

void ConfigCache::erase(const std::string& name) {
  const auto it = index_.find(name);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
  sigs_.erase(name);
}

void ConfigCache::clear() {
  lru_.clear();
  index_.clear();
  sigs_.clear();
}

std::vector<std::string> ConfigCache::contents() const {
  return {lru_.begin(), lru_.end()};
}

void ConfigCache::save_state(sim::SnapshotWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(lru_.size()));
  for (const std::string& name : lru_) {  // MRU -> LRU
    w.put_string(name);
    const auto it = sigs_.find(name);
    w.put_words(it == sigs_.end() ? std::vector<std::uint64_t>{}
                                  : it->second);
  }
  w.put_u64(stats_.hits);
  w.put_u64(stats_.misses);
  w.put_u64(stats_.insertions);
  w.put_u64(stats_.evictions);
}

void ConfigCache::load_state(sim::SnapshotReader& r) {
  clear();
  const std::uint32_t n = r.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = r.get_string();
    std::vector<std::uint64_t> sigs = r.get_words();
    // Entries arrive MRU-first; appending at the back preserves order.
    lru_.push_back(name);
    index_[name] = std::prev(lru_.end());
    if (!sigs.empty()) sigs_[std::move(name)] = std::move(sigs);
  }
  stats_.hits = r.get_u64();
  stats_.misses = r.get_u64();
  stats_.insertions = r.get_u64();
  stats_.evictions = r.get_u64();
}

}  // namespace atlantis::core
