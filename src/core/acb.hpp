// ATLANTIS Computing Board (ACB).
//
// §2.1: a 2x2 matrix of ORCA 3T125 FPGAs (~744k gates total). Each FPGA
// has four ports totalling 422 I/O signals:
//   * 2 x 72 lines to the vertical and horizontal neighbour,
//   * 1 x 72-line logical I/O port (role depends on position: one FPGA
//     talks to the PLX 9080, two drive the backplane, one the external
//     LVDS connectors),
//   * 1 x 206-line memory interconnect (two 124-pin mezzanine connectors).
// The board carries a local programmable clock and per-FPGA I/O clocks.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/health_probe.hpp"
#include "core/memmodule.hpp"
#include "hw/clock.hpp"
#include "hw/fpga.hpp"
#include "hw/pci.hpp"
#include "hw/slink.hpp"
#include "sim/fault.hpp"
#include "sim/timeline.hpp"
#include "util/units.hpp"

namespace atlantis::util {
class WorkerPool;
}

namespace atlantis::core {

/// Role of an FPGA's logical I/O port, fixed by board position.
enum class AcbIoRole {
  kHostPci,    // connected to the PLX 9080
  kBackplaneA, // first private-bus port (64 bit @ 66 MHz)
  kBackplaneB, // second private-bus port
  kExternalLvds,
};

/// Port width constants from the paper.
struct AcbPortSpec {
  static constexpr int kNeighborLines = 72;   // per direction
  static constexpr int kIoLines = 72;
  static constexpr int kMemoryLines = 206;
  static constexpr int kTotalIoSignals = 422; // 2*72 + 72 + 206
  static constexpr int kMezzanineSlots = 4;   // per board
  static constexpr int kBackplaneBits = 64;   // per backplane port
  static constexpr double kBackplaneMhz = 66.0;
};

/// One value carried over a neighbour link after a clock edge (the
/// traffic trace lets tests prove parallel and serial stepping are
/// cycle-identical).
struct AcbLinkTransfer {
  std::uint64_t cycle = 0;
  std::int32_t from = 0;  // source FPGA index
  std::int32_t to = 0;    // destination FPGA index
  chdl::BitVec value;
};

/// Result of stepping the 2x2 matrix.
struct AcbMatrixReport {
  std::uint64_t cycles = 0;        // edges applied per simulator
  int sims = 0;                    // FPGAs that carried a design
  int links = 0;                   // neighbour links wired up
  std::vector<AcbLinkTransfer> trace;  // filled when record_trace is set
};

class AcbBoard {
 public:
  explicit AcbBoard(std::string name);

  const std::string& name() const { return name_; }

  /// The 2x2 FPGA matrix, row-major: index = row*2 + col.
  hw::FpgaDevice& fpga(int index);
  const hw::FpgaDevice& fpga(int index) const;
  static constexpr int kFpgaCount = 4;

  AcbIoRole io_role(int fpga_index) const;

  /// Sum of the family gate capacities (the paper's 744k figure).
  std::int64_t total_gate_capacity() const;

  /// Attaches a memory module to the given FPGA's memory port. Triple-
  /// width modules occupy three of the board's four mezzanine positions.
  void attach_memory(int fpga_index, MemModule module);
  /// Modules currently attached (board-wide).
  const std::vector<MemModule>& memory() const { return modules_; }
  /// Module on one FPGA's port, if any.
  MemModule* memory_at(int fpga_index);
  int free_mezzanine_slots() const { return free_slots_; }

  /// Combined RAM width of all attached modules — the quantity the TRT
  /// scaling argument is about ("RAM access with a width of 4*176 bits").
  int total_memory_width_bits() const;

  /// Configures all four FPGAs with the same bitstream; returns the total
  /// (sequential) configuration time through the CPLD support logic.
  util::Picoseconds configure_all(const hw::Bitstream& bs);

  /// Recoverable dual (the try_dma_* convention): a dead board returns
  /// kBoardDead, a configuration-CRC failure on any chip returns
  /// kConfigCrc naming the chip. configure_all() remains the legacy
  /// surface for fault-free runs.
  util::Result<util::Picoseconds> try_configure_all(const hw::Bitstream& bs);

  /// Steps every configured FPGA's cycle simulator `cycles` edges in
  /// lockstep, exchanging neighbour-link port values between edges.
  ///
  /// Link convention (2x2 matrix, row-major index = row*2 + col): a
  /// design drives its horizontal neighbour (row, 1-col) by declaring an
  /// output "h_out" which is poked into the neighbour's input "h_in";
  /// likewise "v_out"/"v_in" for the vertical neighbour (1-row, col).
  /// Ports are <= 72 bits (the paper's neighbour-port width) and both
  /// ends must agree on the width. Because the links are registered at
  /// board level (designs latch h_in/v_in into flip-flops), a per-edge
  /// exchange preserves cycle accuracy, which is what makes the
  /// `parallel` mode legal: the four simulators step concurrently on the
  /// shared worker pool with a barrier at each edge, then link values are
  /// exchanged before the next edge.
  ///
  /// `record_trace` captures every link transfer for cross-checking.
  /// `pool` selects the worker pool used in parallel mode (benchmarks
  /// sweep pools of different sizes); nullptr uses the shared pool.
  AcbMatrixReport step_matrix(int cycles, bool parallel = false,
                              bool record_trace = false,
                              util::WorkerPool* pool = nullptr);

  hw::Plx9080& pci() { return pci_; }
  hw::ClockGenerator& local_clock() { return local_clock_; }
  hw::ClockGenerator& io_clock(int fpga_index);

  /// The S-Link carried by the external-LVDS FPGA (detector feed for a
  /// downscaled or test system).
  hw::SlinkChannel& slink() { return slink_; }

  /// Binds the board into a crate timeline: the PLX joins the shared
  /// CompactPCI `segment`, the design clock gets a compute resource and
  /// the LVDS S-Link its own stream resource. Called by AtlantisSystem;
  /// standalone boards (unit benches) stay unbound and keep the pure
  /// calculator behaviour.
  void bind_timeline(sim::Timeline& timeline, sim::ResourceId segment);
  sim::Timeline* timeline() const { return timeline_; }
  sim::ResourceId compute_resource() const { return compute_resource_; }

  /// Peak backplane bandwidth of this board (2 ports x 64 bit x 66 MHz).
  double backplane_mbps() const {
    return 2.0 * AcbPortSpec::kBackplaneBits / 8.0 * AcbPortSpec::kBackplaneMhz;
  }

  // --- fault injection --------------------------------------------------
  /// Wires a fault injector through every component on the board (PLX,
  /// S-Link, FPGAs, attached memory modules); modules attached later are
  /// wired on attach. nullptr detaches everything.
  void set_fault_injector(sim::FaultInjector* injector);
  sim::FaultInjector* fault_injector() const { return injector_; }

  /// Whole-board health. A drop-out (power/clock/configuration loss)
  /// clears alive(); multi-board applications mask dead boards and
  /// redistribute their share of the work.
  bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  /// One board-drop-out opportunity at site "board/<name>". Returns true
  /// when a drop-out fired now (the board also goes !alive()).
  bool draw_dropout();

  /// Samples the board's health: liveness, the cumulative component
  /// fault counters (PLX, S-Link, FPGAs, memory modules) and the
  /// timeline fault/retry stats on the board's own resources. Cheap
  /// enough for a supervisor to call every probe window.
  HealthProbe probe_health();

  /// Snapshottable leaf, written into the caller's open section (the
  /// system opens one "board/<name>" section per ACB): health, clock
  /// programming, the PLX/S-Link devices, all four FPGAs (with resident
  /// simulator state inline) and every attached memory module. load_state
  /// requires an identically assembled board (same modules attached to
  /// the same ports, same designs configured).
  void save_state(sim::SnapshotWriter& w) const;
  void load_state(sim::SnapshotReader& r);

 private:
  std::string name_;
  std::vector<std::unique_ptr<hw::FpgaDevice>> fpgas_;
  std::vector<std::optional<int>> module_of_fpga_;  // index into modules_
  std::vector<MemModule> modules_;
  int free_slots_ = AcbPortSpec::kMezzanineSlots;
  hw::Plx9080 pci_;
  hw::SlinkChannel slink_;
  hw::ClockGenerator local_clock_;
  std::vector<hw::ClockGenerator> io_clocks_;
  sim::Timeline* timeline_ = nullptr;
  sim::ResourceId compute_resource_;
  sim::FaultInjector* injector_ = nullptr;
  bool alive_ = true;
};

}  // namespace atlantis::core
