#include "core/system.hpp"

#include "util/status.hpp"

namespace atlantis::core {

AtlantisSystem::AtlantisSystem(std::string name, hw::HostCpuModel host,
                               int slots, bool passive_backplane)
    : name_(std::move(name)), host_(std::move(host)),
      timeline_(std::make_unique<sim::Timeline>()),
      backplane_(name_ + "/aab", slots, passive_backplane),
      main_clock_(name_ + "/clk_main") {
  pci_segment_ = timeline_->add_resource(name_ + "/cpci");
  backplane_.bind(*timeline_);
}

int AtlantisSystem::take_slot(const std::string& what) {
  if (next_slot_ >= backplane_.slots()) {
    throw util::CapacityError("no free crate slot for " + what);
  }
  return next_slot_++;
}

int AtlantisSystem::add_acb(const std::string& name) {
  const int slot = take_slot(name);
  acbs_.push_back(std::make_unique<AcbBoard>(name));
  acbs_.back()->bind_timeline(*timeline_, pci_segment_);
  if (injector_ != nullptr) acbs_.back()->set_fault_injector(injector_);
  acb_slots_.push_back(slot);
  return static_cast<int>(acbs_.size() - 1);
}

int AtlantisSystem::add_aib(const std::string& name) {
  const int slot = take_slot(name);
  aibs_.push_back(std::make_unique<AibBoard>(name));
  aibs_.back()->bind_timeline(*timeline_, pci_segment_);
  if (injector_ != nullptr) aibs_.back()->set_fault_injector(injector_);
  aib_slots_.push_back(slot);
  return static_cast<int>(aibs_.size() - 1);
}

std::unique_ptr<AtlantisSystem> assemble_crate(const std::string& name,
                                               int acbs, int aibs) {
  ATLANTIS_CHECK(acbs >= 1, "a crate needs at least one computing board");
  ATLANTIS_CHECK(aibs >= 0, "negative I/O board count");
  auto sys = std::make_unique<AtlantisSystem>(name);
  for (int i = 0; i < acbs; ++i) {
    sys->add_acb(name + "/acb" + std::to_string(i));
  }
  for (int i = 0; i < aibs; ++i) {
    sys->add_aib(name + "/aib" + std::to_string(i));
  }
  return sys;
}

void AtlantisSystem::set_fault_injector(sim::FaultInjector* injector) {
  injector_ = injector;
  for (auto& b : acbs_) b->set_fault_injector(injector);
  for (auto& b : aibs_) b->set_fault_injector(injector);
}

AcbBoard& AtlantisSystem::acb(int index) {
  ATLANTIS_CHECK(index >= 0 && index < acb_count(), "ACB index out of range");
  return *acbs_[static_cast<std::size_t>(index)];
}

AibBoard& AtlantisSystem::aib(int index) {
  ATLANTIS_CHECK(index >= 0 && index < aib_count(), "AIB index out of range");
  return *aibs_[static_cast<std::size_t>(index)];
}

int AtlantisSystem::acb_slot(int index) const {
  ATLANTIS_CHECK(index >= 0 && index < acb_count(), "ACB index out of range");
  return acb_slots_[static_cast<std::size_t>(index)];
}

int AtlantisSystem::aib_slot(int index) const {
  ATLANTIS_CHECK(index >= 0 && index < aib_count(), "AIB index out of range");
  return aib_slots_[static_cast<std::size_t>(index)];
}

std::vector<int> AtlantisSystem::alive_acbs() const {
  std::vector<int> out;
  for (int i = 0; i < acb_count(); ++i) {
    if (acbs_[static_cast<std::size_t>(i)]->alive()) out.push_back(i);
  }
  return out;
}

std::vector<HealthProbe> AtlantisSystem::probe_health() {
  std::vector<HealthProbe> probes;
  probes.reserve(acbs_.size());
  for (int i = 0; i < acb_count(); ++i) {
    HealthProbe probe = acbs_[static_cast<std::size_t>(i)]->probe_health();
    probe.board = i;
    probes.push_back(probe);
  }
  return probes;
}

std::uint64_t AtlantisSystem::step_acbs(int cycles, bool parallel) {
  ATLANTIS_CHECK(cycles >= 0, "negative cycle count");
  std::uint64_t edges = 0;
  for (int c = 0; c < cycles; ++c) {
    for (auto& b : acbs_) {
      const AcbMatrixReport r = b->step_matrix(1, parallel);
      edges += r.cycles * static_cast<std::uint64_t>(r.sims);
    }
  }
  return edges;
}

void AtlantisSystem::save_state(sim::SnapshotWriter& w) const {
  w.begin_section("system");
  w.put_string(name_);
  w.put_u32(static_cast<std::uint32_t>(acbs_.size()));
  w.put_u32(static_cast<std::uint32_t>(aibs_.size()));
  w.put_bool(injector_ != nullptr);
  w.end_section();
  timeline_->save_state(w);
  if (injector_ != nullptr) injector_->save_state(w);
  for (const auto& b : acbs_) {
    w.begin_section("board/" + b->name());
    b->save_state(w);
    w.end_section();
  }
}

void AtlantisSystem::load_state(sim::SnapshotReader& r) {
  r.select("system");
  r.get_string();  // crate name is informational; twins may be renamed
  const std::uint32_t n_acb = r.get_u32();
  const std::uint32_t n_aib = r.get_u32();
  const bool had_injector = r.get_bool();
  if (n_acb != acbs_.size() || n_aib != aibs_.size()) {
    throw util::StateError("system snapshot board census mismatch: " +
                           std::to_string(n_acb) + " ACB / " +
                           std::to_string(n_aib) + " AIB saved vs " +
                           std::to_string(acbs_.size()) + " / " +
                           std::to_string(aibs_.size()) + " assembled");
  }
  if (had_injector && injector_ == nullptr) {
    throw util::StateError(
        "system snapshot carries fault-injector state but no injector is "
        "attached");
  }
  timeline_->load_state(r);
  if (had_injector && injector_ != nullptr) injector_->load_state(r);
  for (auto& b : acbs_) {
    r.select("board/" + b->name());
    b->load_state(r);
  }
}

std::int64_t AtlantisSystem::total_gate_capacity() const {
  std::int64_t total = 0;
  for (const auto& b : acbs_) total += b->total_gate_capacity();
  for (const auto& b : aibs_) {
    for (int i = 0; i < AibBoard::kFpgaCount; ++i) {
      total += b->fpga(i).family().gate_capacity;
    }
  }
  return total;
}

}  // namespace atlantis::core
