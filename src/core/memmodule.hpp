// Exchangeable memory mezzanine modules.
//
// "Depending on the application, memory modules with different
// architectures can be used to optimize system performance" (§2.1).
// The three module types the paper names:
//   * TRT trigger:        1 bank of 512k x 176 synchronous SRAM
//                          (44 MB per ACB with 4 modules),
//   * volume rendering:   one triple-width module, 512 MB SDRAM in
//                          8 simultaneously accessible banks,
//   * 2-D image processing: 9 MB of synchronous SRAM as 2 banks of
//                          512k x 72.
#pragma once

#include <memory>
#include <string>

#include "hw/sdram.hpp"
#include "hw/sram.hpp"
#include "util/status.hpp"

namespace atlantis::core {

enum class MemModuleKind {
  kTrtSsram,     // 512k x 176 SSRAM, single width
  kVolrenSdram,  // 512 MB SDRAM, 8 banks, triple width
  kImageSsram,   // 2 banks of 512k x 72 SSRAM, single width
};

/// One mezzanine module. Exactly one of sram()/sdram() is non-null
/// depending on the kind.
class MemModule {
 public:
  static MemModule make_trt(const std::string& name, double clock_mhz = 40.0);
  static MemModule make_volren(const std::string& name);
  static MemModule make_image(const std::string& name,
                              double clock_mhz = 40.0);

  MemModuleKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  /// Mezzanine connector positions occupied (the SDRAM module is "a
  /// single module of triple width").
  int slots_occupied() const { return slots_; }
  /// Total data width presented to the FPGA memory port.
  int data_width_bits() const { return width_bits_; }
  std::int64_t capacity_bytes() const { return capacity_bytes_; }

  hw::SyncSram* sram() { return sram_.get(); }
  const hw::SyncSram* sram() const { return sram_.get(); }
  hw::Sdram* sdram() { return sdram_.get(); }
  const hw::Sdram* sdram() const { return sdram_.get(); }

 private:
  MemModule() = default;

  MemModuleKind kind_ = MemModuleKind::kTrtSsram;
  std::string name_;
  int slots_ = 1;
  int width_bits_ = 0;
  std::int64_t capacity_bytes_ = 0;
  std::shared_ptr<hw::SyncSram> sram_;
  std::shared_ptr<hw::Sdram> sdram_;
};

}  // namespace atlantis::core
