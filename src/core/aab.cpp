#include "core/aab.hpp"

#include <cmath>
#include <cstdlib>

namespace atlantis::core {

Backplane::Backplane(std::string name, int slots, bool passive)
    : name_(std::move(name)), slots_(slots), passive_(passive) {
  ATLANTIS_CHECK(slots > 1, "backplane needs at least two slots");
  widths_ = {32, 32, 32, 32};  // the paper's default configuration
}

void Backplane::configure_channels(const std::vector<int>& widths) {
  if (passive_) {
    throw util::StateError(
        "the passive test backplane has a fixed channel configuration");
  }
  ATLANTIS_CHECK(!widths.empty(), "at least one channel required");
  int total = 0;
  for (const int w : widths) {
    ATLANTIS_CHECK(w == 8 || w == 16 || w == 32 || w == 64,
                   "channel width must be 8, 16, 32 or 64 bits");
    total += w;
  }
  ATLANTIS_CHECK(total <= AabSpec::kDataLines,
                 "channel widths exceed the 128 data lines");
  widths_ = widths;
  if (timeline_ != nullptr) bind(*timeline_);  // re-register channels
}

void Backplane::bind(sim::Timeline& timeline) {
  timeline_ = &timeline;
  channel_resources_.clear();
  for (int c = 0; c < channel_count(); ++c) {
    channel_resources_.push_back(timeline.add_resource(
        name_ + "/ch" + std::to_string(c) + "x" +
        std::to_string(widths_[static_cast<std::size_t>(c)])));
  }
}

sim::ResourceId Backplane::channel_resource(int channel) const {
  ATLANTIS_CHECK(bound(), "backplane is not bound to a timeline");
  ATLANTIS_CHECK(channel >= 0 && channel < channel_count(),
                 "channel index out of range");
  return channel_resources_[static_cast<std::size_t>(channel)];
}

const sim::Transaction& Backplane::post_transfer(
    sim::TrackId track, int from_slot, int to_slot, int channel,
    std::uint64_t bytes, util::Picoseconds not_before, std::string label) {
  const util::Picoseconds service = transfer(from_slot, to_slot, channel,
                                             bytes);
  if (label.empty()) {
    label = "aab " + std::to_string(from_slot) + "->" +
            std::to_string(to_slot);
  }
  return timeline_->post(track, sim::TxnKind::kAabChannel, std::move(label),
                         channel_resource(channel), not_before, service,
                         bytes);
}

double Backplane::channel_mbps(int channel) const {
  ATLANTIS_CHECK(channel >= 0 && channel < channel_count(),
                 "channel index out of range");
  return AabSpec::kClockMhz *
         static_cast<double>(widths_[static_cast<std::size_t>(channel)]) / 8.0;
}

double Backplane::slot_mbps() const {
  double total = 0.0;
  for (int c = 0; c < channel_count(); ++c) total += channel_mbps(c);
  return total;
}

util::Picoseconds Backplane::transfer(int from_slot, int to_slot, int channel,
                                      std::uint64_t bytes) const {
  ATLANTIS_CHECK(from_slot >= 0 && from_slot < slots_, "slot out of range");
  ATLANTIS_CHECK(to_slot >= 0 && to_slot < slots_, "slot out of range");
  ATLANTIS_CHECK(from_slot != to_slot, "transfer to the same slot");
  const double rate_mbps = channel_mbps(channel);
  const auto burst = static_cast<util::Picoseconds>(
      static_cast<double>(bytes) / (rate_mbps * 1e6) *
      static_cast<double>(util::kSecond));
  // One pipeline register per slot traversed on the pipelined bus.
  const int hops = std::abs(to_slot - from_slot);
  return burst + static_cast<util::Picoseconds>(hops) *
                     util::period_from_mhz(AabSpec::kClockMhz);
}

double Backplane::paired_mbps(int pairs) const {
  ATLANTIS_CHECK(pairs >= 1, "need at least one pair");
  ATLANTIS_CHECK(2 * pairs <= slots_, "not enough slots for that many pairs");
  return static_cast<double>(pairs) * slot_mbps();
}

}  // namespace atlantis::core
