// The assembled ATLANTIS machine: host CPU module, backplane, and a mix
// of computing and I/O boards in the CompactPCI crate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/aab.hpp"
#include "core/acb.hpp"
#include "core/aib.hpp"
#include "hw/clock.hpp"
#include "hw/hostcpu.hpp"
#include "sim/fault.hpp"
#include "sim/timeline.hpp"

namespace atlantis::core {

class AtlantisSystem : public sim::Snapshottable {
 public:
  /// Creates a crate with the host CPU in slot 0 and an empty backplane.
  explicit AtlantisSystem(std::string name,
                          hw::HostCpuModel host = hw::pentium200_mmx(),
                          int slots = AabSpec::kDefaultSlots,
                          bool passive_backplane = false);

  const std::string& name() const { return name_; }

  /// Adds a board to the next free slot; returns its board index.
  int add_acb(const std::string& name);
  int add_aib(const std::string& name);

  AcbBoard& acb(int index);
  AibBoard& aib(int index);
  int acb_count() const { return static_cast<int>(acbs_.size()); }
  int aib_count() const { return static_cast<int>(aibs_.size()); }
  /// Crate slot occupied by a board.
  int acb_slot(int index) const;
  int aib_slot(int index) const;

  /// Indices of computing boards still alive (drop-outs excluded) —
  /// the rotation a serving layer schedules over.
  std::vector<int> alive_acbs() const;

  /// One health sample per computing board (probe.board carries the
  /// index) — the crate-wide observation a supervisor diffs every probe
  /// window. See core/health_probe.hpp.
  std::vector<HealthProbe> probe_health();

  Backplane& backplane() { return backplane_; }
  const hw::HostCpuModel& host() const { return host_; }

  /// The crate-wide discrete-event timeline every board's timing model
  /// posts onto. Heap-owned so bound component pointers survive moves of
  /// the system object.
  sim::Timeline& timeline() { return *timeline_; }
  const sim::Timeline& timeline() const { return *timeline_; }
  /// The one shared CompactPCI segment (the 125 MB/s bottleneck every
  /// board's PLX 9080 contends for).
  sim::ResourceId pci_segment() const { return pci_segment_; }

  /// The central clock distributed from the AAB; boards may fall back to
  /// their local generators when it is absent.
  hw::ClockGenerator& main_clock() { return main_clock_; }

  /// Total gate capacity across all boards (sales-brochure number, but
  /// also the budget configure() enforces per chip).
  std::int64_t total_gate_capacity() const;

  /// Steps every ACB's FPGA matrix `cycles` edges in lockstep (boards
  /// advance one edge at a time so multi-board designs stay cycle-
  /// synchronous). With `parallel` set, each board's per-FPGA simulators
  /// step concurrently on the shared worker pool. Returns the total
  /// number of simulator edges applied across the crate.
  std::uint64_t step_acbs(int cycles, bool parallel = false);

  // --- fault injection --------------------------------------------------
  /// Wires a fault injector through every board in the crate; boards
  /// added later are wired on add. The injector is not owned and must
  /// outlive the system (or be detached with nullptr).
  void set_fault_injector(sim::FaultInjector* injector);
  sim::FaultInjector* fault_injector() const { return injector_; }

  /// Snapshottable composite: a "system" section (board census), the
  /// crate timeline ("sim/timeline"), the attached fault injector
  /// ("sim/fault", when one is attached) and one "board/<name>" section
  /// per ACB. load_state restores into an identically assembled crate
  /// (same boards in the same order, same designs configured, an
  /// injector attached iff one was attached at save) and throws
  /// util::StateError / util::Error otherwise. AIB boards carry no
  /// mutable state beyond their buffers' timing models and are not
  /// serialized; their count is verified.
  void save_state(sim::SnapshotWriter& w) const override;
  void load_state(sim::SnapshotReader& r) override;

 private:
  int take_slot(const std::string& what);

  std::string name_;
  hw::HostCpuModel host_;
  std::unique_ptr<sim::Timeline> timeline_;
  sim::ResourceId pci_segment_;
  Backplane backplane_;
  hw::ClockGenerator main_clock_;
  std::vector<std::unique_ptr<AcbBoard>> acbs_;
  std::vector<std::unique_ptr<AibBoard>> aibs_;
  std::vector<int> acb_slots_;
  std::vector<int> aib_slots_;
  int next_slot_ = 1;  // slot 0 is the CPU module
  sim::FaultInjector* injector_ = nullptr;
};

/// Assembles one crate with `acbs` computing boards (named
/// "<name>/acb<i>") and `aibs` I/O boards ("<name>/aib<i>") — the
/// per-shard construction path of the serving cluster, which needs N
/// identically laid-out crates whose board names (and therefore fault
/// sites and timeline tracks) are distinct per shard. The heap
/// allocation keeps references into the system (drivers, services)
/// valid wherever the owner moves.
std::unique_ptr<AtlantisSystem> assemble_crate(const std::string& name,
                                               int acbs, int aibs = 0);

}  // namespace atlantis::core
