// LRU bitstream/configuration cache.
//
// The Self-Reconfigurable Computing Platform line of work shows that
// reconfiguration cost dominates a time-multiplexed FPGA service unless
// recently used configurations are kept staged close to the device. The
// ATLANTIS CPLD support logic holds configuration data in local memory;
// this cache models which bitstreams are currently staged there. A hit
// means the configuration context can be activated without shifting the
// full bitstream through the serial port — and without the CRC check a
// full data reload requires.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/snapshot.hpp"

namespace atlantis::core {

/// Lifetime counters of one cache; hit_rate() is over touch() calls.
struct ConfigCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// String-keyed LRU set. Capacity 0 disables the cache entirely:
/// touch() returns false without counting, insert() is a no-op, so a
/// disabled cache is bit-identical (timing AND stats) to not having one.
class ConfigCache {
 public:
  explicit ConfigCache(std::size_t capacity = 0) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return lru_.size(); }
  bool enabled() const { return capacity_ > 0; }

  /// Looks `name` up and promotes it to most-recently-used on a hit.
  /// Counts one hit or one miss.
  bool touch(const std::string& name);

  /// True when `name` is resident; no promotion, no stats.
  bool contains(const std::string& name) const {
    return index_.find(name) != index_.end();
  }

  /// Stages `name` as most-recently-used, evicting the least-recently-
  /// used entry when the cache is full. Re-inserting a resident entry
  /// only promotes it.
  void insert(const std::string& name) { insert(name, {}); }

  /// Same, remembering the staged bitstream's per-region content
  /// signatures (hw::Bitstream::region_sigs) so the task switcher can
  /// compute config-diff distances against staged entries.
  void insert(const std::string& name, std::vector<std::uint64_t> sigs);

  /// Region signatures recorded for a staged entry; empty when the entry
  /// is absent or was staged without a region model. No promotion.
  const std::vector<std::uint64_t>& signatures(const std::string& name) const;

  /// Drops one entry (e.g. a bitstream whose staged copy went bad).
  void erase(const std::string& name);

  /// Drops everything (board power loss clears the staging memory).
  void clear();

  /// Entries from most- to least-recently-used (tests and reports).
  std::vector<std::string> contents() const;

  const ConfigCacheStats& stats() const { return stats_; }

  /// Snapshottable leaf: entries in MRU→LRU order with their region
  /// signatures, plus the lifetime stats, written into the caller's open
  /// section. load_state replaces the contents (capacity is construction
  /// configuration and must already match).
  void save_state(sim::SnapshotWriter& w) const;
  void load_state(sim::SnapshotReader& r);

 private:
  std::size_t capacity_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<std::string>::iterator> index_;
  std::unordered_map<std::string, std::vector<std::uint64_t>> sigs_;
  ConfigCacheStats stats_;
};

}  // namespace atlantis::core
