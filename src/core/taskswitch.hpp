// Hardware task switching via (partial) reconfiguration.
//
// §2: "In particular the partial reconfiguration is of great interest for
// co-processing applications involving hardware task switches." The
// switcher keeps a set of named tasks (bitstreams) for one FPGA and swaps
// between them, using partial reconfiguration when the device supports it
// and the incoming task declares the array fraction it touches.
#pragma once

#include <map>
#include <string>

#include "hw/fpga.hpp"
#include "sim/timeline.hpp"
#include "util/units.hpp"

namespace atlantis::core {

class TaskSwitcher {
 public:
  explicit TaskSwitcher(hw::FpgaDevice& device) : device_(device) {}

  /// Registers a task under its bitstream name.
  void add_task(const hw::Bitstream& bs);

  /// Switches to `name`. The first activation is always a full
  /// configuration; later switches are partial when the device allows it.
  /// Returns the reconfiguration time.
  util::Picoseconds switch_to(const std::string& name);

  const std::string& current() const { return current_; }
  std::uint64_t switch_count() const { return switches_; }
  util::Picoseconds total_switch_time() const { return total_time_; }
  util::Picoseconds last_switch_time() const { return last_time_; }

  /// Binds the switcher to a timeline: every switch_to() additionally
  /// posts a kReconfig transaction at the switcher's cursor (sequential
  /// switches chain end to start).
  void bind(sim::Timeline& timeline, sim::TrackId track) {
    timeline_ = &timeline;
    track_ = track;
  }
  bool bound() const { return timeline_ != nullptr; }

 private:
  hw::FpgaDevice& device_;
  std::map<std::string, hw::Bitstream> tasks_;
  std::string current_;
  std::uint64_t switches_ = 0;
  util::Picoseconds total_time_ = 0;
  util::Picoseconds last_time_ = 0;
  sim::Timeline* timeline_ = nullptr;
  sim::TrackId track_;
  util::Picoseconds cursor_ = 0;
};

}  // namespace atlantis::core
