// Hardware task switching via (partial) reconfiguration.
//
// §2: "In particular the partial reconfiguration is of great interest for
// co-processing applications involving hardware task switches." The
// switcher keeps a set of named tasks (bitstreams) for one FPGA and swaps
// between them, using partial reconfiguration when the device supports it
// and the incoming task declares the array fraction it touches.
//
// Differential switching: tasks whose bitstreams carry per-region content
// signatures (hw::make_region_signatures) switch by loading only the
// regions that differ from the resident configuration
// (hw::FpgaDevice::reconfigure_diff) — two TRT variants sharing pattern
// banks, or imgproc kernels differing only in coefficient pages, pay a
// few frames instead of the full 18.75 ms ORCA load. The scalar
// `fraction` path and full configuration remain the fallbacks, and
// set_differential(false) pins the switcher to them so schedulers can A/B
// the two policies on identical workloads.
#pragma once

#include <map>
#include <string>

#include "core/configcache.hpp"
#include "hw/fpga.hpp"
#include "sim/fault.hpp"
#include "sim/timeline.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::core {

class TaskSwitcher {
 public:
  explicit TaskSwitcher(hw::FpgaDevice& device) : device_(device) {}

  /// Registers a task under its bitstream name.
  void add_task(const hw::Bitstream& bs);

  /// Switches to `name`. The first activation is always a full
  /// configuration; later switches are partial when the device allows it.
  /// Returns the reconfiguration time. Throws util::Error when the switch
  /// cannot complete within the retry policy.
  util::Picoseconds switch_to(const std::string& name);

  /// Recoverable switch: a configuration-CRC failure drops the device to
  /// the unconfigured state and the switcher retries with a full
  /// configuration, up to the policy's attempt budget. On the
  /// differential path the budget applies per region first (a failed
  /// frame is re-shifted alone). The returned time includes every failed
  /// attempt. Unknown task names still throw — that is caller misuse,
  /// not a hardware fault.
  util::Result<util::Picoseconds> try_switch_to(const std::string& name);

  /// One configuration-SRAM scrub window: gives the injector an SEU
  /// opportunity, reads the configuration back, and repairs an upset by
  /// reloading the current task — a single-frame region scrub when the
  /// differential path is available (which leaves the live design state
  /// untouched), a full reload otherwise. Returns true when an upset was
  /// found and repaired. No-op on an unconfigured device.
  bool scrub();

  void set_retry_policy(const sim::RetryPolicy& policy) { policy_ = policy; }
  const sim::RetryPolicy& retry_policy() const { return policy_; }

  /// Differential region loading on cache misses (default on). Only
  /// bites when the task and the resident configuration both carry
  /// region signatures — behaviour is bit-identical to the legacy
  /// switcher otherwise, so leaving this on is always safe.
  void set_differential(bool on) { differential_ = on; }
  bool differential() const { return differential_; }

  /// Estimated cost of switching to `name` right now, in configuration
  /// time units — the scheduler's config-diff distance. 0 when resident;
  /// the activation fraction when staged in the cache; the region diff
  /// when the differential path applies; a full load otherwise. Pure
  /// (no stats, no promotion). Unknown tasks throw.
  util::Picoseconds estimate_switch_cost(const std::string& name) const;

  // --- bitstream/configuration cache ------------------------------------
  /// Enables the LRU bitstream cache: up to `capacity` recently used
  /// configurations stay staged in the board's local configuration
  /// store. A switch to a staged task activates the context (paying
  /// `hit_fraction` of the full configuration time) instead of reloading
  /// the bitstream — and skips the CRC check, since no configuration
  /// data moved. Capacity 0 (the default) disables the cache; behaviour
  /// is then bit-identical to the pre-cache switcher.
  void enable_cache(std::size_t capacity, double hit_fraction = 1.0 / 64.0);
  const ConfigCache& cache() const { return cache_; }
  const ConfigCacheStats& cache_stats() const { return cache_.stats(); }
  /// Drops every staged configuration (board power loss / drop-out).
  void invalidate_cache() { cache_.clear(); }
  std::uint64_t cache_hits() const { return cache_.stats().hits; }
  std::uint64_t cache_misses() const { return cache_.stats().misses; }

  const std::string& current() const { return current_; }
  std::uint64_t switch_count() const { return switches_; }
  util::Picoseconds total_switch_time() const { return total_time_; }
  util::Picoseconds last_switch_time() const { return last_time_; }
  std::uint64_t reconfig_retries() const { return reconfig_retries_; }
  std::uint64_t scrub_count() const { return scrubs_; }
  std::uint64_t upsets_corrected() const { return upsets_corrected_; }

  /// Differential-path accounting.
  std::uint64_t partial_switches() const { return partial_switches_; }
  std::uint64_t regions_loaded() const { return regions_loaded_; }
  util::Picoseconds partial_switch_time() const { return partial_time_; }
  /// Regions moved by the most recent switch (0: full/scalar/cached).
  int last_regions_loaded() const { return last_regions_; }
  /// Upsets repaired by a single-frame region scrub (subset of
  /// upsets_corrected()).
  std::uint64_t region_scrubs() const { return region_scrubs_; }

  /// Binds the switcher to a timeline: every switch_to() additionally
  /// posts a kReconfig transaction at the switcher's cursor (sequential
  /// switches chain end to start). Differential switches carry their
  /// region count on the transaction.
  void bind(sim::Timeline& timeline, sim::TrackId track) {
    timeline_ = &timeline;
    track_ = track;
  }
  bool bound() const { return timeline_ != nullptr; }

  /// Snapshottable leaf, written into the caller's open section: the A/B
  /// pin (differential_), current task, every lifetime counter, the
  /// reconfiguration cursor and the staged-bitstream cache. The task
  /// registry is construction configuration — a restored switcher must
  /// have the same add_task() calls applied; load_state verifies the
  /// current task is registered. Device state is saved separately by the
  /// board that owns the FPGA.
  void save_state(sim::SnapshotWriter& w) const;
  void load_state(sim::SnapshotReader& r);

 private:
  util::Picoseconds post_reconfig(const std::string& label,
                                  util::Picoseconds t, std::uint32_t regions = 0);
  bool diff_applicable(const hw::Bitstream& bs) const;

  hw::FpgaDevice& device_;
  std::map<std::string, hw::Bitstream> tasks_;
  std::string current_;
  std::uint64_t switches_ = 0;
  util::Picoseconds total_time_ = 0;
  util::Picoseconds last_time_ = 0;
  std::uint64_t reconfig_retries_ = 0;
  std::uint64_t scrubs_ = 0;
  std::uint64_t upsets_corrected_ = 0;
  std::uint64_t partial_switches_ = 0;
  std::uint64_t regions_loaded_ = 0;
  util::Picoseconds partial_time_ = 0;
  int last_regions_ = 0;
  std::uint64_t region_scrubs_ = 0;
  bool differential_ = true;
  ConfigCache cache_;
  double cache_hit_fraction_ = 1.0 / 64.0;
  sim::RetryPolicy policy_;
  sim::Timeline* timeline_ = nullptr;
  sim::TrackId track_;
  util::Picoseconds cursor_ = 0;
};

}  // namespace atlantis::core
