#include "core/selftest.hpp"

#include <sstream>

#include "chdl/builder.hpp"
#include "hw/pci.hpp"

namespace atlantis::core {
namespace {

/// A small known-good design used for the configure/readback step.
chdl::Design make_test_design() {
  chdl::Design d("selftest_lfsr");
  // 16-bit Fibonacci LFSR (taps 16,15,13,4) — a classic test pattern
  // generator with a known period.
  chdl::RegOpts opts;
  opts.init = chdl::BitVec(16, 0xACE1);
  const chdl::Wire q = d.reg_forward("lfsr", 16, opts);
  const chdl::Wire fb = d.bxor(
      d.bxor(d.bit(q, 15), d.bit(q, 14)),
      d.bxor(d.bit(q, 12), d.bit(q, 3)));
  d.reg_connect(q, d.concat({d.slice(q, 0, 15), fb}));
  d.output("pattern", q);
  return d;
}

}  // namespace

bool march_test_sram(hw::SyncSram& sram, int bank,
                     std::int64_t words_to_test) {
  const int width = sram.config().width_bits;
  const std::int64_t n = std::min<std::int64_t>(words_to_test,
                                                sram.config().words);
  const chdl::BitVec zeros(width);
  const chdl::BitVec ones = chdl::BitVec::ones(width);
  // March element 1: ascending write 0, verify, write 1.
  for (std::int64_t a = 0; a < n; ++a) sram.write(bank, a, zeros);
  for (std::int64_t a = 0; a < n; ++a) {
    if (sram.read(bank, a) != zeros) return false;
    sram.write(bank, a, ones);
  }
  // March element 2: descending verify 1, write checkerboard, verify.
  chdl::BitVec checker(width);
  for (int b = 0; b < width; b += 2) checker.set_bit(b, true);
  for (std::int64_t a = n; a-- > 0;) {
    if (sram.read(bank, a) != ones) return false;
    sram.write(bank, a, checker);
    if (sram.read(bank, a) != checker) return false;
  }
  return true;
}

SelfTestStep slink_test(hw::SlinkChannel& link) {
  SelfTestStep step;
  step.name = "slink/" + link.name();
  step.passed = link.self_test();
  step.duration = link.transfer_time(2 * 256);  // out and back
  step.detail = step.passed ? "pattern loop ok" : "pattern corrupted";
  return step;
}

SelfTestHealth collect_health(AcbBoard& board) {
  // The counter walk lives in AcbBoard::probe_health() (shared with the
  // supervision layer); the self-test report only wants the counter page.
  return board.probe_health().counters;
}

SelfTestReport self_test_acb(AcbBoard& board) {
  util::Result<SelfTestReport> r = try_self_test_acb(board);
  if (!r.ok()) throw util::Error(r.message());
  return r.value();
}

util::Result<SelfTestReport> try_self_test_acb(AcbBoard& board) {
  if (!board.alive()) {
    return util::Result<SelfTestReport>::failure(
        util::ErrorCode::kBoardDead,
        "self test of " + board.name() + ": board is not alive");
  }
  SelfTestReport report;
  const bool injected = board.fault_injector() != nullptr;

  // 1. Configure + readback every FPGA with the LFSR test design and
  //    run it a few cycles.
  const chdl::Design test_design = make_test_design();
  const hw::Bitstream bs = hw::Bitstream::from_design(test_design);
  for (int i = 0; i < AcbBoard::kFpgaCount; ++i) {
    SelfTestStep step;
    step.name = "fpga" + std::to_string(i) + " configure/readback";
    hw::FpgaDevice& dev = board.fpga(i);
    step.duration += dev.configure(bs);
    chdl::Simulator* sim = dev.sim();
    bool pattern_ok = sim != nullptr;
    if (pattern_ok) {
      const std::uint64_t first = sim->peek_u64("pattern");
      sim->run(16);
      pattern_ok = sim->peek_u64("pattern") != first;  // LFSR must advance
    }
    // 1b. SEU scrub window while the device is configured: an upset in
    //     the configuration SRAM shows up in readback and is repaired by
    //     reloading. Only runs when an injector is wired, so fault-free
    //     reports are unchanged.
    if (injected && dev.configured()) {
      SelfTestStep scrub;
      scrub.name = "fpga" + std::to_string(i) + " seu scrub";
      const bool upset = dev.draw_config_upset();
      scrub.duration += dev.readback();
      if (dev.upset_pending()) scrub.duration += dev.configure(bs);
      scrub.passed = !dev.upset_pending();
      scrub.detail = upset ? (scrub.passed ? "upset found, repaired"
                                           : "upset persists")
                           : "configuration clean";
      report.steps.push_back(std::move(scrub));
    }
    if (dev.configured()) step.duration += dev.readback();
    dev.deconfigure();
    step.passed = pattern_ok;
    step.detail = pattern_ok ? "LFSR runs, readback clean" : "LFSR stuck";
    report.steps.push_back(std::move(step));
  }

  // 2. Memory module march tests.
  for (int i = 0; i < AcbBoard::kFpgaCount; ++i) {
    MemModule* module = board.memory_at(i);
    if (module == nullptr || module->sram() == nullptr) continue;
    hw::SyncSram& sram = *module->sram();
    for (int bank = 0; bank < sram.config().banks; ++bank) {
      SelfTestStep step;
      step.name = module->name() + " bank " + std::to_string(bank) +
                  " march test";
      constexpr std::int64_t kWords = 4096;
      step.passed = march_test_sram(sram, bank, kWords);
      // 6 passes over the words under test at the module clock.
      step.duration = sram.time_for(6 * kWords);
      step.detail = step.passed ? "0/1/checker patterns ok" : "miscompare";
      report.steps.push_back(std::move(step));
    }
    // 2b. Memory scrub window: one SEU opportunity per module; a hit is
    //     repaired by flipping the bit back (the ECC scrubber).
    if (injected) {
      SelfTestStep scrub;
      scrub.name = module->name() + " seu scrub";
      scrub.duration = sram.time_for(4096);  // one scrubber pass
      if (const auto upset = sram.draw_seu()) {
        sram.flip_bit(upset->bank, upset->addr, upset->bit);
        scrub.detail = "upset bank " + std::to_string(upset->bank) +
                       " addr " + std::to_string(upset->addr) + " bit " +
                       std::to_string(upset->bit) + ", repaired";
      } else {
        scrub.detail = "memory clean";
      }
      scrub.passed = true;
      report.steps.push_back(std::move(scrub));
    }
  }

  // 3. PCI DMA loopback: write a block down, read it back; the model
  //    checks timing plausibility (data integrity is the driver's CRC).
  {
    SelfTestStep step;
    step.name = "pci dma loopback";
    const auto down = board.pci().transfer(hw::DmaDirection::kWrite,
                                           256 * util::kKiB);
    const auto up = board.pci().transfer(hw::DmaDirection::kRead,
                                         256 * util::kKiB);
    step.duration = down.duration + up.duration;
    step.passed = down.mbps() > 50.0 && up.mbps() > 50.0;
    std::ostringstream os;
    os << "write " << static_cast<int>(down.mbps()) << " MB/s, read "
       << static_cast<int>(up.mbps()) << " MB/s";
    step.detail = os.str();
    report.steps.push_back(std::move(step));
  }

  report.health = collect_health(board);
  return report;
}

std::string SelfTestReport::to_string() const {
  std::ostringstream os;
  for (const auto& s : steps) {
    os << (s.passed ? "[ ok ] " : "[FAIL] ") << s.name << " ("
       << util::ps_to_ms(s.duration) << " ms): " << s.detail << "\n";
  }
  os << (all_passed() ? "board self-test PASSED" : "board self-test FAILED")
     << ", total " << util::ps_to_ms(total_time()) << " ms\n";
  if (health.total() > 0) {
    os << "health: " << health.dma_stalls << " dma stalls, "
       << health.dma_aborts << " dma aborts, " << health.slink_errors
       << " link errors, " << health.truncated_frames
       << " truncated frames, " << health.retransmissions
       << " retransmissions, " << health.seu_flips << " memory upsets, "
       << health.config_upsets << " config upsets, " << health.crc_failures
       << " crc failures, " << health.ecc_corrections
       << " ecc corrections\n";
  }
  return os.str();
}

}  // namespace atlantis::core
