// Board self-test routines.
//
// §2 stresses that the microEnable-compatible support logic makes the
// "test tools" immediately available on ATLANTIS, and that the ORCA
// parts were chosen partly for read-back/test support. This module is
// that tool: a configuration/readback check per FPGA, a memory-module
// march test, a PCI DMA loopback and an S-Link pattern test, producing a
// pass/fail report with the time each step took.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/acb.hpp"
#include "core/health_probe.hpp"
#include "hw/slink.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace atlantis::core {

struct SelfTestStep {
  std::string name;
  bool passed = false;
  util::Picoseconds duration = 0;
  std::string detail;
};

// SelfTestHealth now lives in core/health_probe.hpp (shared with the
// supervision layer's HealthProbe); this header re-exports it unchanged.

/// Reads the health counters off a board's components.
SelfTestHealth collect_health(AcbBoard& board);

struct SelfTestReport {
  std::vector<SelfTestStep> steps;
  SelfTestHealth health;
  bool all_passed() const {
    for (const auto& s : steps) {
      if (!s.passed) return false;
    }
    return !steps.empty();
  }
  util::Picoseconds total_time() const {
    util::Picoseconds t = 0;
    for (const auto& s : steps) t += s.duration;
    return t;
  }
  std::string to_string() const;
};

/// Recoverable form of the full board check (the try_dma_* convention):
/// a dead board — drop-out, power/clock loss — comes back as
/// ErrorCode::kBoardDead instead of a meaningless report. A live board
/// always yields a report; individual step failures are data inside it,
/// not errors. Runs per-FPGA configure+readback, a march-C-style test
/// over every attached memory module, and a DMA loopback through the
/// PLX bridge; leaves the FPGAs deconfigured. When a fault injector is
/// wired to the board the run additionally performs SEU scrub steps
/// (configuration and memory) and the report's health page carries the
/// fault counters.
util::Result<SelfTestReport> try_self_test_acb(AcbBoard& board);

/// Throwing dual of try_self_test_acb (thin wrapper; throws util::Error
/// on a dead board).
SelfTestReport self_test_acb(AcbBoard& board);

/// March test over one SRAM module bank (write/verify two complementary
/// patterns at every word). Returns false on the first miscompare.
bool march_test_sram(hw::SyncSram& sram, int bank,
                     std::int64_t words_to_test = 4096);

/// S-Link loopback check for an external I/O channel.
SelfTestStep slink_test(hw::SlinkChannel& link);

}  // namespace atlantis::core
