// Board self-test routines.
//
// §2 stresses that the microEnable-compatible support logic makes the
// "test tools" immediately available on ATLANTIS, and that the ORCA
// parts were chosen partly for read-back/test support. This module is
// that tool: a configuration/readback check per FPGA, a memory-module
// march test, a PCI DMA loopback and an S-Link pattern test, producing a
// pass/fail report with the time each step took.
#pragma once

#include <string>
#include <vector>

#include "core/acb.hpp"
#include "hw/slink.hpp"
#include "util/units.hpp"

namespace atlantis::core {

struct SelfTestStep {
  std::string name;
  bool passed = false;
  util::Picoseconds duration = 0;
  std::string detail;
};

struct SelfTestReport {
  std::vector<SelfTestStep> steps;
  bool all_passed() const {
    for (const auto& s : steps) {
      if (!s.passed) return false;
    }
    return !steps.empty();
  }
  util::Picoseconds total_time() const {
    util::Picoseconds t = 0;
    for (const auto& s : steps) t += s.duration;
    return t;
  }
  std::string to_string() const;
};

/// Runs the full board check: per-FPGA configure+readback, a march-C-
/// style test over every attached memory module, and a DMA loopback
/// through the PLX bridge. Leaves the FPGAs deconfigured.
SelfTestReport self_test_acb(AcbBoard& board);

/// March test over one SRAM module bank (write/verify two complementary
/// patterns at every word). Returns false on the first miscompare.
bool march_test_sram(hw::SyncSram& sram, int bank,
                     std::int64_t words_to_test = 4096);

/// S-Link loopback check for an external I/O channel.
SelfTestStep slink_test(hw::SlinkChannel& link);

}  // namespace atlantis::core
