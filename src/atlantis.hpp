// Umbrella header: the public API of the ATLANTIS reproduction.
//
//   #include "atlantis.hpp"
//
// pulls in every layer, bottom to top. Individual headers remain the
// preferred include for library code; this header serves examples and
// downstream quick starts.
//
// Which header do I include?
//
//   I want to...                          | include
//   --------------------------------------+---------------------------
//   serve jobs from many clients          | serve/jobservice.hpp
//   define a job / write an adapter       | serve/job.hpp
//   drive one board like the WinNT driver | core/driver.hpp
//   hardware task switching + the cache   | core/taskswitch.hpp
//   assemble a crate of boards            | core/system.hpp
//   run the power-on self test            | core/selftest.hpp
//   build / simulate a gate-level design  | chdl/builder.hpp, chdl/sim.hpp
//   model PCI / SDRAM / S-Link timing     | hw/pci.hpp, hw/sdram.hpp, ...
//   inspect the crate-wide schedule       | sim/timeline.hpp
//   inject faults, replay deterministically| sim/fault.hpp
//   Result<T> / ErrorCode error handling  | util/status.hpp
//   TRT / volren / imgproc / N-body       | trt/, volren/, imgproc/, nbody/
#pragma once

// Foundation: statuses, units, math, containers.
#include "util/bitops.hpp"
#include "util/cfloat.hpp"
#include "util/fixed_point.hpp"
#include "util/image.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "util/worker_pool.hpp"

// Simulation substrate: the crate timeline and the fault injector.
#include "sim/fault.hpp"
#include "sim/timeline.hpp"

// CHDL: design entry, simulation, analysis, export, verification.
#include "chdl/bitvec.hpp"
#include "chdl/builder.hpp"
#include "chdl/design.hpp"
#include "chdl/export.hpp"
#include "chdl/fsm.hpp"
#include "chdl/hostif.hpp"
#include "chdl/sim.hpp"
#include "chdl/stats.hpp"
#include "chdl/vcd.hpp"
#include "chdl/verify.hpp"

// Hardware substrate models.
#include "hw/clock.hpp"
#include "hw/fifo.hpp"
#include "hw/fpga.hpp"
#include "hw/hostcpu.hpp"
#include "hw/pci.hpp"
#include "hw/sdram.hpp"
#include "hw/slink.hpp"
#include "hw/sram.hpp"

// The ATLANTIS machine: boards, crate, driver, task switching.
#include "core/aab.hpp"
#include "core/acb.hpp"
#include "core/aib.hpp"
#include "core/configcache.hpp"
#include "core/driver.hpp"
#include "core/memmodule.hpp"
#include "core/selftest.hpp"
#include "core/system.hpp"
#include "core/taskswitch.hpp"

// Serving layer: multi-tenant batch scheduling over the crate.
#include "serve/job.hpp"
#include "serve/jobservice.hpp"
#include "serve/queue.hpp"

// Applications (each ships a serve_adapter.hpp job factory).
#include "imgproc/conv_core.hpp"
#include "imgproc/filters.hpp"
#include "imgproc/hwmodel.hpp"
#include "imgproc/serve_adapter.hpp"
#include "imgproc/sobel_core.hpp"
#include "nbody/force.hpp"
#include "nbody/integrator.hpp"
#include "nbody/plummer.hpp"
#include "nbody/serve_adapter.hpp"
#include "trt/hwmodel.hpp"
#include "trt/multiboard.hpp"
#include "trt/serve_adapter.hpp"
#include "trt/slink_frontend.hpp"
#include "trt/trt_core.hpp"
#include "volren/interp_core.hpp"
#include "volren/renderer.hpp"
#include "volren/serve_adapter.hpp"
