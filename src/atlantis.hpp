// Umbrella header: the public API of the ATLANTIS reproduction.
//
//   #include "atlantis.hpp"
//
// pulls in the CHDL toolchain, the hardware models, the machine layer
// and the four application libraries. Individual headers remain the
// preferred include for library code; this header serves examples and
// downstream quick starts.
#pragma once

// Foundation.
#include "util/bitops.hpp"
#include "util/cfloat.hpp"
#include "util/fixed_point.hpp"
#include "util/image.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

// CHDL: design entry, simulation, analysis, export, verification.
#include "chdl/bitvec.hpp"
#include "chdl/builder.hpp"
#include "chdl/design.hpp"
#include "chdl/export.hpp"
#include "chdl/fsm.hpp"
#include "chdl/hostif.hpp"
#include "chdl/sim.hpp"
#include "chdl/stats.hpp"
#include "chdl/vcd.hpp"
#include "chdl/verify.hpp"

// Hardware substrate models.
#include "hw/clock.hpp"
#include "hw/fifo.hpp"
#include "hw/fpga.hpp"
#include "hw/hostcpu.hpp"
#include "hw/pci.hpp"
#include "hw/sdram.hpp"
#include "hw/slink.hpp"
#include "hw/sram.hpp"

// The ATLANTIS machine.
#include "core/aab.hpp"
#include "core/acb.hpp"
#include "core/aib.hpp"
#include "core/driver.hpp"
#include "core/memmodule.hpp"
#include "core/selftest.hpp"
#include "core/system.hpp"
#include "core/taskswitch.hpp"

// Applications.
#include "imgproc/conv_core.hpp"
#include "imgproc/filters.hpp"
#include "imgproc/hwmodel.hpp"
#include "imgproc/sobel_core.hpp"
#include "nbody/force.hpp"
#include "nbody/integrator.hpp"
#include "nbody/plummer.hpp"
#include "trt/hwmodel.hpp"
#include "trt/multiboard.hpp"
#include "trt/slink_frontend.hpp"
#include "trt/trt_core.hpp"
#include "volren/interp_core.hpp"
#include "volren/renderer.hpp"
