// Crate-wide discrete-event timeline.
//
// The paper's headline numbers are end-to-end times — "algorithm plus
// I/O" (§3) — and the crate's interconnect is shared: every board's DMA
// crosses the one 32-bit/33 MHz CompactPCI segment, backplane channels
// are granted per transfer, SDRAM banks serve one burst at a time. A
// scatter of per-component scalar ledgers cannot show two boards
// contending for the bus or compute overlapping I/O, so every timing
// model in the crate posts typed Transactions onto this one scheduler
// instead of returning a bare util::Picoseconds.
//
// The model is transaction-level discrete event: a Transaction requests
// `service` time on a Resource no earlier than `post` time; the resource
// arbitrates FIFO over its channels (capacity > 1 models the 8 SDRAM
// banks or the four 32-bit backplane channels), so the granted `start`
// may be later than `post` — that difference is the queuing delay the
// scalar ledgers could never see. Actors (drivers, boards) keep their
// own cursor: sequential calls chain end-to-start, asynchronous calls
// post without advancing the cursor and join at wait(), which is how
// compute/DMA overlap is expressed.
//
// Observability: every transaction is kept; export_chrome_trace() writes
// Chrome-trace/Perfetto JSON (one track per resource, one per actor) and
// stats() reports per-resource utilization, queue delay and bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/snapshot.hpp"
#include "util/units.hpp"

namespace atlantis::sim {

/// What a transaction models; the catalogue of event phases the trace
/// schema test checks against.
enum class TxnKind {
  kPciDma,        // block DMA over the CompactPCI segment
  kTargetAccess,  // single-word PCI target-mode access
  kAabChannel,    // backplane channel burst
  kSlinkStream,   // S-Link word stream
  kSdramBurst,    // SDRAM bank burst
  kSramBurst,     // synchronous-SRAM burst
  kReconfig,      // FPGA (partial) reconfiguration
  kCompute,       // design-clock compute on a board
  kHost,          // host-CPU work
  kBackoff,       // recovery wait between retry attempts
  kQueueWait,     // job waiting in a service queue (serve layer)
  kOther,
};

/// Stable lowercase name used in traces and tables.
const char* txn_kind_name(TxnKind kind);

struct ResourceId {
  int value = -1;
  bool valid() const { return value >= 0; }
  bool operator==(const ResourceId&) const = default;
};

struct TrackId {
  int value = -1;
  bool valid() const { return value >= 0; }
  bool operator==(const TrackId&) const = default;
};

/// One scheduled transaction. `post` is when the actor requested it,
/// `start` is when the resource granted it (start - post = queuing
/// delay), `end` = start + service time.
struct Transaction {
  std::uint64_t id = 0;
  TxnKind kind = TxnKind::kOther;
  std::string label;
  TrackId track;        // posting actor
  ResourceId resource;  // invalid when no shared resource is involved
  util::Picoseconds post = 0;
  util::Picoseconds start = 0;
  util::Picoseconds end = 0;
  std::uint64_t bytes = 0;
  /// Configuration regions moved by a kReconfig transaction (0 = a
  /// monolithic load, or not a reconfiguration at all). Lets traces and
  /// benches separate full-bitstream loads from differential ones.
  std::uint32_t regions = 0;

  util::Picoseconds queue_delay() const { return start - post; }
  util::Picoseconds duration() const { return end - start; }
};

/// Aggregate view of one resource over the whole run.
struct ResourceStats {
  std::string name;
  int channels = 1;
  std::uint64_t transactions = 0;
  std::uint64_t bytes = 0;
  util::Picoseconds busy = 0;         // sum of service durations
  util::Picoseconds queue_delay = 0;  // sum of start - post
  util::Picoseconds first_start = 0;
  util::Picoseconds last_end = 0;

  // Fault/recovery accounting (populated by record_fault/record_retry):
  // how often transactions on this resource faulted, how many retries the
  // recovery layer issued, and the time those retries waited in backoff
  // plus retransmission.
  std::uint64_t faults = 0;
  std::uint64_t retries = 0;
  util::Picoseconds retry_time = 0;

  /// Busy fraction of one channel over [0, horizon] (can exceed 1 for
  /// multi-channel resources; divide by `channels` for the mean).
  double utilization(util::Picoseconds horizon) const {
    if (horizon <= 0) return 0.0;
    return static_cast<double>(busy) / static_cast<double>(horizon);
  }
  double mbps() const { return util::mb_per_s(bytes, last_end - first_start); }
};

class Timeline : public Snapshottable {
 public:
  /// Registers a shared resource with `channels` independent servers
  /// (1 = the CompactPCI segment; 4 = the default backplane channel
  /// grant; 8 = SDRAM banks).
  ResourceId add_resource(std::string name, int channels = 1);

  /// Registers an actor (driver, board, bench phase) for attribution.
  TrackId add_track(std::string name);

  /// Posts a transaction requesting `service` time on `resource` no
  /// earlier than `not_before`. With an invalid resource the transaction
  /// starts exactly at `not_before` (private hardware, no arbitration);
  /// otherwise the earliest-free channel is granted FIFO. Returns the
  /// scheduled transaction (valid until the next post()).
  const Transaction& post(TrackId track, TxnKind kind, std::string label,
                          ResourceId resource, util::Picoseconds not_before,
                          util::Picoseconds service, std::uint64_t bytes = 0,
                          std::uint32_t regions = 0);

  /// Latest end over all transactions (the crate-wide makespan).
  util::Picoseconds horizon() const { return horizon_; }
  /// Latest end over one actor's transactions.
  util::Picoseconds track_horizon(TrackId track) const;

  const std::vector<Transaction>& transactions() const { return txns_; }
  const Transaction& txn(std::uint64_t id) const;

  int resource_count() const { return static_cast<int>(resources_.size()); }
  int track_count() const { return static_cast<int>(tracks_.size()); }
  const std::string& resource_name(ResourceId id) const;
  const std::string& track_name(TrackId id) const;

  ResourceStats stats(ResourceId id) const;
  std::vector<ResourceStats> all_stats() const;

  /// Aggregate view of one actor track over the whole run — the
  /// per-tenant accounting hook: a serving layer that posts each
  /// tenant's queue waits on a dedicated track reads latency totals and
  /// transaction counts straight off the timeline.
  struct TrackStats {
    std::string name;
    std::uint64_t transactions = 0;
    std::uint64_t bytes = 0;
    util::Picoseconds busy = 0;        // sum of service durations
    util::Picoseconds queue_wait = 0;  // sum of kQueueWait durations
    util::Picoseconds first_post = 0;
    util::Picoseconds last_end = 0;
  };
  TrackStats track_stats(TrackId id) const;

  /// Fault/recovery bookkeeping: a transaction on `id` faulted, or a
  /// retry was issued and spent `recovery` (backoff + retransmission)
  /// recovering. The recovery layer calls these next to the transactions
  /// it posts, so a fault sweep's stats() table shows where the recovery
  /// time went per resource.
  void record_fault(ResourceId id);
  void record_retry(ResourceId id, util::Picoseconds recovery);

  /// Clears the per-resource fault/retry counters (faults, retries,
  /// retry_time) on every resource. Idempotent. This is the timeline
  /// half of a `ResetScope::kFaults` reset: `FaultInjector::reset()`
  /// rewinds the injector's streams and counters, and without this call
  /// the timeline's ResourceStats would keep reporting the pre-reset
  /// fault tallies — the two ledgers would diverge after a mid-run
  /// reset. Scheduling state (free times, transactions, horizon) is
  /// untouched.
  void reset_stats();

  /// Snapshottable: writes/restores the complete timeline — resources
  /// with their channel free-times and stats, tracks, every transaction
  /// and the horizon — under a "sim/timeline" section. load_state fully
  /// replaces the current contents; ResourceId/TrackId handles held by
  /// callers stay valid only when the restored stream was taken from an
  /// identically registered timeline (same add_resource/add_track
  /// order), which load_state verifies by count and name.
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  /// Chrome-trace/Perfetto JSON: complete events ("ph":"X") with
  /// microsecond timestamps, one named thread per resource and one per
  /// actor track (resource-less transactions land on the actor thread).
  /// Loads directly in Perfetto / chrome://tracing.
  void export_chrome_trace(std::ostream& out) const;
  /// Convenience: writes the trace to `path`; returns false on I/O error.
  bool export_chrome_trace_file(const std::string& path) const;

 private:
  struct Resource {
    std::string name;
    // Next free time per channel; arbitration grants the earliest-free.
    std::vector<util::Picoseconds> free_at;
    ResourceStats stats;
  };
  struct Track {
    std::string name;
    util::Picoseconds horizon = 0;
  };

  std::vector<Resource> resources_;
  std::vector<Track> tracks_;
  std::vector<Transaction> txns_;
  util::Picoseconds horizon_ = 0;
};

}  // namespace atlantis::sim
