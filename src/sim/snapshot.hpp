// Versioned, tagged binary snapshot stream — the uniform save/restore
// layer for every stateful component in the crate.
//
// The ROADMAP's preemptive-scheduling and live-migration items both
// reduce to one primitive: serialize the complete state of a component
// tree to bytes, and later restore those bytes into an identically
// constructed tree, bit-identically. The model is QEMU's savevm: a
// stream of flat, *tagged sections*, each independently framed with a
// length and a CRC, so a reader can (a) verify integrity eagerly, (b)
// skip sections whose tag it does not know (forward compatibility on
// minor version bumps), and (c) reject streams whose major version it
// cannot interpret at all.
//
// Stream layout (all integers little-endian):
//
//   header:   u32 magic "ATLS" | u16 major | u16 minor | u32 reserved
//   section:  u32 tag_len | tag bytes | u64 payload_len | payload
//             | u32 crc32(tag_len..payload)
//   ...repeated; no nesting, no trailer. The CRC covers the whole
//   frame — tag length, tag, payload length and payload — so a flipped
//   bit anywhere after the header is detected, not just in the payload.
//
// Section contract: *composite* components (Timeline, FaultInjector,
// AtlantisSystem, JobService) open their own tagged sections — their
// save_state must be called with no section open. *Leaf* components
// (chdl::Simulator, the hw devices, TaskSwitcher, AtlantisDriver) write
// primitives into whatever section the caller has open, so an
// orchestrator owns the tag namespace and a leaf can be embedded
// anywhere. Readers consume a section with the exact same sequence of
// typed reads; an overread within a section throws util::Error (that is
// a programming error, not a recoverable stream condition).
//
// Versioning rules: bump kSnapshotMinor when adding sections or
// appending fields readers may skip; bump kSnapshotMajor when the
// meaning of existing bytes changes. open() fails with
// ErrorCode::kSnapshotVersion on a foreign major and with
// ErrorCode::kSnapshotCorrupt on truncation or a CRC mismatch.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace atlantis::sim {

inline constexpr std::uint32_t kSnapshotMagic = 0x534C5441u;  // "ATLS"
inline constexpr std::uint16_t kSnapshotMajor = 1;
// Minor 1: "serve/service" appends a quarantine bitmask readers may skip.
inline constexpr std::uint16_t kSnapshotMinor = 1;

/// CRC-32 (IEEE 802.3 polynomial, reflected), the framing checksum.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

/// Appends a header + tagged sections to a growable byte buffer.
/// Typed puts are only legal between begin_section()/end_section().
class SnapshotWriter {
 public:
  SnapshotWriter();

  void begin_section(const std::string& tag);
  void end_section();
  bool in_section() const { return open_; }

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_string(const std::string& s);
  /// u64 count followed by the words.
  void put_words(const std::vector<std::uint64_t>& words);
  /// Raw bytes, no count prefix (caller frames them).
  void put_bytes(const std::uint8_t* data, std::size_t len);

  /// The finished stream; requires no section be open.
  const std::vector<std::uint8_t>& bytes() const;
  std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n);

  std::vector<std::uint8_t> buf_;
  std::size_t frame_at_ = 0;    // offset of the open section's frame start
  std::size_t len_at_ = 0;      // offset of the open section's length field
  std::size_t payload_at_ = 0;  // offset of the open section's payload
  bool open_ = false;
};

/// Parses and validates a stream eagerly at open(): header, every
/// section frame and every CRC are checked up front, so load_state
/// implementations never see a torn stream. Duplicate tags keep their
/// stream order; select() addresses the first occurrence and
/// select_index() any of them.
class SnapshotReader {
 public:
  /// Validates the stream. Fails with kSnapshotVersion on an unknown
  /// major version, kSnapshotCorrupt on bad magic, truncation or CRC
  /// mismatch. Unknown sections are retained and simply never selected
  /// (minor-version forward compatibility).
  static util::Result<SnapshotReader> open(std::vector<std::uint8_t> data);

  std::uint16_t version_major() const { return major_; }
  std::uint16_t version_minor() const { return minor_; }

  bool has_section(const std::string& tag) const;
  /// Section tags in stream order.
  std::vector<std::string> section_tags() const;
  /// Selects the first section with `tag` for reading; throws
  /// util::StateError when absent.
  void select(const std::string& tag);
  bool try_select(const std::string& tag);
  /// Selects section `i` in stream order.
  void select_index(std::size_t i);

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  double get_f64();
  bool get_bool() { return get_u8() != 0; }
  std::string get_string();
  std::vector<std::uint64_t> get_words();
  void get_bytes(std::uint8_t* out, std::size_t len);

  /// Bytes left in the selected section.
  std::size_t remaining() const { return end_ - cursor_; }

 private:
  struct Section {
    std::string tag;
    std::size_t begin = 0;  // payload offset into data_
    std::size_t len = 0;
  };

  SnapshotReader() = default;
  void need(std::size_t n) const;

  std::vector<std::uint8_t> data_;
  std::vector<Section> sections_;
  std::map<std::string, std::size_t> index_;  // tag -> first section
  std::size_t cursor_ = 0;
  std::size_t end_ = 0;
  std::uint16_t major_ = 0;
  std::uint16_t minor_ = 0;

  friend class util::Result<SnapshotReader>;
};

/// The uniform save/load interface. save_state serializes the
/// component's complete replayable state; load_state restores it into an
/// identically constructed component (same design, same topology, same
/// registrations) and throws util::StateError / util::Error when the
/// stream does not match that construction. See the section contract
/// above for who opens sections.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual void save_state(SnapshotWriter& w) const = 0;
  virtual void load_state(SnapshotReader& r) = 0;
};

}  // namespace atlantis::sim
