// Deterministic fault injection for the ATLANTIS fabric.
//
// The machine the paper describes is a trigger/DAQ component: detector-fed
// S-Link streams, PCI DMA through a PLX 9080, and SRAM-configured ORCA
// parts — all of which fail in the field (link errors, DMA stalls,
// configuration upsets). A robustness model therefore needs faults that
// are *reproducible*: the same seed and the same FaultPlan must produce
// the same faults, the same retries and the same recovery time, run after
// run, regardless of how many worker threads the functional simulation
// uses.
//
// The mechanism: every injection point in hw/ and core/ names a *site*
// ("pci/acb0", "slink/acb0/lvds", "fpga/acb0/fpga0", "board/acb1") and
// asks the injector at each fault *opportunity* (one DMA transfer, one
// S-Link word, one reconfiguration, one scrub window). Each (kind, site)
// pair owns an independent RNG stream derived from the plan seed, so the
// draw sequence at one site does not depend on how opportunities at other
// sites interleave with it. Faults can also be *scheduled* outright: fire
// on exactly the nth opportunity at a site, which is how tests and the
// fault bench script exact failure scenarios.
//
// Recovery policy lives here too: RetryPolicy is the capped exponential
// backoff the driver and the task switcher share. Components bound to an
// injector stay bit-identical to the fault-free build when the plan is
// empty or the injector is absent — the hooks cost one null check.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/snapshot.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace atlantis::sim {

/// The fault taxonomy: everything the paper's hardware can plausibly
/// suffer, at the granularity the timing model works in.
enum class FaultKind {
  kDmaStall,        // PCI DMA hangs; detected by the driver watchdog
  kDmaAbort,        // PCI master/target abort during DMA programming
  kSlinkError,      // S-Link transmission error (LDERR): corrupted word
  kSlinkTruncation, // event fragment cut short, end marker lost
  kSlinkXoff,       // persistent XOFF: link refuses words for a while
  kSeuConfig,       // SEU in FPGA configuration SRAM
  kSeuMemory,       // SEU in mezzanine SSRAM/SDRAM data
  kConfigCrc,       // configuration CRC check fails after (re)config
  kBoardDropout,    // whole-board drop-out (power/clock/config loss)
  kServiceCrash,    // the serving process itself dies (host crash)
};
inline constexpr int kFaultKindCount = 10;

/// Stable lowercase name used in logs, tables and BENCH_fault.json.
const char* fault_kind_name(FaultKind kind);

/// A fault pinned to an exact opportunity: fires on the `nth` (1-based)
/// opportunity of `kind` at `site`. `param` is the kind-specific payload
/// (bit index for SEUs, corruption mask for link errors, refusal count
/// for XOFF); 0 lets the injector draw one from the site stream.
struct ScheduledFault {
  FaultKind kind = FaultKind::kDmaStall;
  std::string site;
  std::uint64_t nth = 1;
  std::uint64_t param = 0;
};

/// The deterministic fault specification: a seed, a per-kind fault
/// probability per opportunity, and a list of scheduled faults.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::array<double, kFaultKindCount> rates{};
  std::vector<ScheduledFault> scheduled;

  FaultPlan& with_rate(FaultKind kind, double probability);
  double rate(FaultKind kind) const {
    return rates[static_cast<std::size_t>(kind)];
  }
  FaultPlan& inject(FaultKind kind, std::string site, std::uint64_t nth = 1,
                    std::uint64_t param = 0);
  /// True when the plan can never fire (all rates zero, nothing
  /// scheduled) — bound components then behave exactly as if unbound.
  bool empty() const;
};

/// One fault that actually fired.
struct FaultRecord {
  FaultKind kind = FaultKind::kDmaStall;
  std::string site;
  std::uint64_t opportunity = 0;  // 1-based ordinal at the site
  std::uint64_t param = 0;
  bool operator==(const FaultRecord&) const = default;
};

/// What a successful draw hands back to the injection hook.
struct FaultHit {
  std::uint64_t param = 0;
};

/// Capped exponential backoff shared by the driver's DMA retry and the
/// task switcher's reconfiguration retry. Attempt 1 is the original try;
/// backoff(n) is the wait before attempt n+1.
struct RetryPolicy {
  int max_attempts = 4;
  util::Picoseconds initial_backoff = 10 * util::kMicrosecond;
  double multiplier = 2.0;
  util::Picoseconds max_backoff = 1 * util::kMillisecond;
  /// Total recovery time (faulted attempts + backoff) a single operation
  /// may consume before giving up with kTimeout.
  util::Picoseconds timeout_budget = 50 * util::kMillisecond;
  /// How long a stalled DMA holds the bus before the watchdog aborts it.
  util::Picoseconds stall_watchdog = 500 * util::kMicrosecond;
  /// Multiplicative backoff jitter in [0, 1): each jittered wait is drawn
  /// uniformly from [(1 - jitter) * backoff(n), backoff(n)] so concurrent
  /// retries at different sites desynchronize. 0 (the default) disables
  /// jitter entirely — backoff(retry, stream) == backoff(retry) and the
  /// fault-free/jitter-free timing stays bit-identical.
  double jitter = 0.0;

  /// Backoff before retry `retry` (1-based): initial * multiplier^(retry-1),
  /// capped at max_backoff.
  util::Picoseconds backoff(int retry) const;

  /// Jittered variant. `stream` is a deterministic per-draw word (see
  /// jitter_stream below); the same (policy, retry, stream) always yields
  /// the same wait, so replay stays bit-identical and nothing about the
  /// draw needs to live in a snapshot.
  util::Picoseconds backoff(int retry, std::uint64_t stream) const;
};

/// Derives the deterministic jitter word for one backoff draw from the
/// fault-plan seed, the retry site name and the site-local draw ordinal
/// (e.g. the driver's lifetime retry counter). Same inputs, same word —
/// across runs, across snapshot restore, across worker-pool sizes.
std::uint64_t jitter_stream(std::uint64_t seed, const std::string& site,
                            std::uint64_t ordinal);

/// Draws faults against a FaultPlan. Not thread-safe by design: all
/// injection hooks run on the (single) scheduling thread; the functional
/// worker pool never draws.
class FaultInjector : public Snapshottable {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// One fault opportunity of `kind` at `site`. Returns the hit (with
  /// its kind-specific parameter) when the plan fires, nullopt otherwise.
  /// Every call advances the (kind, site) opportunity counter; rate draws
  /// consume that stream's RNG exactly once per opportunity.
  std::optional<FaultHit> draw(FaultKind kind, const std::string& site);

  /// Counters and the replay log.
  std::uint64_t opportunities(FaultKind kind, const std::string& site) const;
  std::uint64_t injected(FaultKind kind) const;
  std::uint64_t injected_total() const;
  const std::vector<FaultRecord>& log() const { return log_; }

  /// Rewinds every site stream and counter to the freshly-constructed
  /// state (same plan, same seed), for bit-identical replay. Implemented
  /// as a load of the post-construction snapshot captured by the
  /// constructor — reset *is* restore, so the two paths cannot drift.
  /// Idempotent.
  void reset();

  /// Snapshottable: the complete injector — plan (seed, rates, scheduled
  /// faults), per-(kind, site) opportunity counters and RNG stream
  /// positions, injected tallies and the replay log — under a
  /// "sim/fault" section. A restored injector continues the exact fault
  /// tail the saved one would have produced.
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

 private:
  struct SiteState {
    std::uint64_t opportunities = 0;
    util::Rng rng{0};
  };
  using SiteKey = std::pair<int, std::string>;

  SiteState& site_state(FaultKind kind, const std::string& site);

  FaultPlan plan_;
  std::map<SiteKey, SiteState> sites_;
  std::array<std::uint64_t, kFaultKindCount> injected_{};
  std::vector<FaultRecord> log_;
  /// Post-construction snapshot; reset() loads it.
  std::vector<std::uint8_t> genesis_;
};

}  // namespace atlantis::sim
