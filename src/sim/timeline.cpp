#include "sim/timeline.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "util/status.hpp"

namespace atlantis::sim {

const char* txn_kind_name(TxnKind kind) {
  switch (kind) {
    case TxnKind::kPciDma: return "pci_dma";
    case TxnKind::kTargetAccess: return "target_access";
    case TxnKind::kAabChannel: return "aab_channel";
    case TxnKind::kSlinkStream: return "slink_stream";
    case TxnKind::kSdramBurst: return "sdram_burst";
    case TxnKind::kSramBurst: return "sram_burst";
    case TxnKind::kReconfig: return "reconfig";
    case TxnKind::kCompute: return "compute";
    case TxnKind::kHost: return "host";
    case TxnKind::kBackoff: return "backoff";
    case TxnKind::kQueueWait: return "queue_wait";
    case TxnKind::kOther: return "other";
  }
  return "other";
}

ResourceId Timeline::add_resource(std::string name, int channels) {
  ATLANTIS_CHECK(channels >= 1, "resource needs at least one channel");
  Resource r;
  r.name = std::move(name);
  r.free_at.assign(static_cast<std::size_t>(channels), 0);
  r.stats.name = r.name;
  r.stats.channels = channels;
  resources_.push_back(std::move(r));
  return ResourceId{static_cast<int>(resources_.size() - 1)};
}

TrackId Timeline::add_track(std::string name) {
  tracks_.push_back(Track{std::move(name), 0});
  return TrackId{static_cast<int>(tracks_.size() - 1)};
}

const Transaction& Timeline::post(TrackId track, TxnKind kind,
                                  std::string label, ResourceId resource,
                                  util::Picoseconds not_before,
                                  util::Picoseconds service,
                                  std::uint64_t bytes,
                                  std::uint32_t regions) {
  ATLANTIS_CHECK(track.valid() && track.value < track_count(),
                 "post() needs a registered track");
  ATLANTIS_CHECK(not_before >= 0 && service >= 0,
                 "transaction times must be non-negative");
  Transaction t;
  t.id = txns_.size();
  t.kind = kind;
  t.label = std::move(label);
  t.track = track;
  t.resource = resource;
  t.post = not_before;
  t.bytes = bytes;
  t.regions = regions;
  if (resource.valid()) {
    ATLANTIS_CHECK(resource.value < resource_count(),
                   "post() on an unregistered resource");
    Resource& r = resources_[static_cast<std::size_t>(resource.value)];
    // FIFO grant on the earliest-free channel.
    auto ch = std::min_element(r.free_at.begin(), r.free_at.end());
    t.start = std::max(not_before, *ch);
    t.end = t.start + service;
    *ch = t.end;
    ResourceStats& s = r.stats;
    if (s.transactions == 0) s.first_start = t.start;
    s.first_start = std::min(s.first_start, t.start);
    s.last_end = std::max(s.last_end, t.end);
    s.busy += service;
    s.queue_delay += t.queue_delay();
    s.bytes += bytes;
    ++s.transactions;
  } else {
    t.start = not_before;
    t.end = t.start + service;
  }
  horizon_ = std::max(horizon_, t.end);
  Track& tr = tracks_[static_cast<std::size_t>(track.value)];
  tr.horizon = std::max(tr.horizon, t.end);
  txns_.push_back(std::move(t));
  return txns_.back();
}

util::Picoseconds Timeline::track_horizon(TrackId track) const {
  ATLANTIS_CHECK(track.valid() && track.value < track_count(),
                 "unknown track");
  return tracks_[static_cast<std::size_t>(track.value)].horizon;
}

const Transaction& Timeline::txn(std::uint64_t id) const {
  ATLANTIS_CHECK(id < txns_.size(), "unknown transaction id");
  return txns_[static_cast<std::size_t>(id)];
}

const std::string& Timeline::resource_name(ResourceId id) const {
  ATLANTIS_CHECK(id.valid() && id.value < resource_count(),
                 "unknown resource");
  return resources_[static_cast<std::size_t>(id.value)].name;
}

const std::string& Timeline::track_name(TrackId id) const {
  ATLANTIS_CHECK(id.valid() && id.value < track_count(), "unknown track");
  return tracks_[static_cast<std::size_t>(id.value)].name;
}

ResourceStats Timeline::stats(ResourceId id) const {
  ATLANTIS_CHECK(id.valid() && id.value < resource_count(),
                 "unknown resource");
  return resources_[static_cast<std::size_t>(id.value)].stats;
}

void Timeline::record_fault(ResourceId id) {
  ATLANTIS_CHECK(id.valid() && id.value < resource_count(),
                 "unknown resource");
  ++resources_[static_cast<std::size_t>(id.value)].stats.faults;
}

void Timeline::record_retry(ResourceId id, util::Picoseconds recovery) {
  ATLANTIS_CHECK(id.valid() && id.value < resource_count(),
                 "unknown resource");
  ATLANTIS_CHECK(recovery >= 0, "recovery time must be non-negative");
  ResourceStats& s = resources_[static_cast<std::size_t>(id.value)].stats;
  ++s.retries;
  s.retry_time += recovery;
}

void Timeline::reset_stats() {
  for (Resource& r : resources_) {
    r.stats.faults = 0;
    r.stats.retries = 0;
    r.stats.retry_time = 0;
  }
}

void Timeline::save_state(SnapshotWriter& w) const {
  w.begin_section("sim/timeline");
  w.put_u32(static_cast<std::uint32_t>(resources_.size()));
  for (const Resource& r : resources_) {
    w.put_string(r.name);
    w.put_u32(static_cast<std::uint32_t>(r.free_at.size()));
    for (const util::Picoseconds t : r.free_at) w.put_i64(t);
    const ResourceStats& s = r.stats;
    w.put_u64(s.transactions);
    w.put_u64(s.bytes);
    w.put_i64(s.busy);
    w.put_i64(s.queue_delay);
    w.put_i64(s.first_start);
    w.put_i64(s.last_end);
    w.put_u64(s.faults);
    w.put_u64(s.retries);
    w.put_i64(s.retry_time);
  }
  w.put_u32(static_cast<std::uint32_t>(tracks_.size()));
  for (const Track& t : tracks_) {
    w.put_string(t.name);
    w.put_i64(t.horizon);
  }
  w.put_u64(txns_.size());
  for (const Transaction& t : txns_) {
    w.put_u64(t.id);
    w.put_u8(static_cast<std::uint8_t>(t.kind));
    w.put_string(t.label);
    w.put_u32(static_cast<std::uint32_t>(t.track.value));
    w.put_u32(static_cast<std::uint32_t>(t.resource.value));
    w.put_i64(t.post);
    w.put_i64(t.start);
    w.put_i64(t.end);
    w.put_u64(t.bytes);
    w.put_u32(t.regions);
  }
  w.put_i64(horizon_);
  w.end_section();
}

void Timeline::load_state(SnapshotReader& r) {
  r.select("sim/timeline");
  const std::uint32_t n_res = r.get_u32();
  ATLANTIS_CHECK(n_res == resources_.size(),
                 "snapshot timeline resource count mismatch");
  for (Resource& res : resources_) {
    const std::string name = r.get_string();
    ATLANTIS_CHECK(name == res.name, "snapshot timeline resource mismatch");
    const std::uint32_t channels = r.get_u32();
    ATLANTIS_CHECK(channels == res.free_at.size(),
                   "snapshot timeline channel count mismatch");
    for (util::Picoseconds& t : res.free_at) t = r.get_i64();
    ResourceStats& s = res.stats;
    s.transactions = r.get_u64();
    s.bytes = r.get_u64();
    s.busy = r.get_i64();
    s.queue_delay = r.get_i64();
    s.first_start = r.get_i64();
    s.last_end = r.get_i64();
    s.faults = r.get_u64();
    s.retries = r.get_u64();
    s.retry_time = r.get_i64();
  }
  // Tracks grow lazily (tenant tracks appear at first dispatch), so a
  // snapshot may carry more tracks than the twin has created — and a
  // rollback restore may carry fewer than the live timeline grew since
  // the checkpoint. Both directions resize; components that own late
  // track ids restore them from the same stream.
  const std::uint32_t n_tracks = r.get_u32();
  tracks_.resize(n_tracks);
  for (Track& t : tracks_) {
    t.name = r.get_string();
    t.horizon = r.get_i64();
  }
  const std::uint64_t n_txns = r.get_u64();
  txns_.clear();
  txns_.reserve(n_txns);
  for (std::uint64_t i = 0; i < n_txns; ++i) {
    Transaction t;
    t.id = r.get_u64();
    t.kind = static_cast<TxnKind>(r.get_u8());
    t.label = r.get_string();
    t.track = TrackId{static_cast<int>(r.get_u32())};
    t.resource = ResourceId{static_cast<int>(r.get_u32())};
    t.post = r.get_i64();
    t.start = r.get_i64();
    t.end = r.get_i64();
    t.bytes = r.get_u64();
    t.regions = r.get_u32();
    txns_.push_back(std::move(t));
  }
  horizon_ = r.get_i64();
}

Timeline::TrackStats Timeline::track_stats(TrackId id) const {
  ATLANTIS_CHECK(id.valid() && id.value < track_count(), "unknown track");
  TrackStats s;
  s.name = tracks_[static_cast<std::size_t>(id.value)].name;
  bool first = true;
  for (const Transaction& t : txns_) {
    if (!(t.track == id)) continue;
    ++s.transactions;
    s.bytes += t.bytes;
    s.busy += t.duration();
    if (t.kind == TxnKind::kQueueWait) s.queue_wait += t.duration();
    s.first_post = first ? t.post : std::min(s.first_post, t.post);
    s.last_end = std::max(s.last_end, t.end);
    first = false;
  }
  return s;
}

std::vector<ResourceStats> Timeline::all_stats() const {
  std::vector<ResourceStats> out;
  out.reserve(resources_.size());
  for (const Resource& r : resources_) out.push_back(r.stats);
  return out;
}

namespace {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';  // control characters never appear in our labels
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

double ps_to_trace_us(util::Picoseconds t) {
  return static_cast<double>(t) / 1.0e6;
}

}  // namespace

void Timeline::export_chrome_trace(std::ostream& out) const {
  // Track layout: tid 0..R-1 are resources, tid R..R+T-1 are actor
  // tracks. Stable across runs of the same system construction order.
  const int resource_base = 0;
  const int track_base = resource_count();
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (int r = 0; r < resource_count(); ++r) {
    sep();
    out << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << (resource_base + r)
        << ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    write_json_string(out, "res:" + resources_[static_cast<std::size_t>(r)].name);
    out << "}}";
  }
  for (int t = 0; t < track_count(); ++t) {
    sep();
    out << "  {\"ph\": \"M\", \"pid\": 1, \"tid\": " << (track_base + t)
        << ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    write_json_string(out, "actor:" + tracks_[static_cast<std::size_t>(t)].name);
    out << "}}";
  }
  // Complete events, sorted by start so every track is monotonic.
  std::vector<const Transaction*> order;
  order.reserve(txns_.size());
  for (const Transaction& t : txns_) order.push_back(&t);
  std::stable_sort(order.begin(), order.end(),
                   [](const Transaction* a, const Transaction* b) {
                     return a->start < b->start;
                   });
  for (const Transaction* t : order) {
    const int tid = t->resource.valid() ? resource_base + t->resource.value
                                        : track_base + t->track.value;
    sep();
    out << "  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << tid << ", \"name\": ";
    write_json_string(out, t->label.empty() ? txn_kind_name(t->kind)
                                            : t->label);
    out << ", \"cat\": ";
    write_json_string(out, txn_kind_name(t->kind));
    out << ", \"ts\": " << ps_to_trace_us(t->start)
        << ", \"dur\": " << ps_to_trace_us(t->duration())
        << ", \"args\": {\"bytes\": " << t->bytes
        << ", \"regions\": " << t->regions
        << ", \"queue_delay_us\": " << ps_to_trace_us(t->queue_delay())
        << ", \"actor\": ";
    write_json_string(out, track_name(t->track));
    out << "}}";
  }
  out << "\n]}\n";
}

bool Timeline::export_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  export_chrome_trace(out);
  return static_cast<bool>(out);
}

}  // namespace atlantis::sim
