#include "sim/fault.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace atlantis::sim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDmaStall: return "dma_stall";
    case FaultKind::kDmaAbort: return "dma_abort";
    case FaultKind::kSlinkError: return "slink_error";
    case FaultKind::kSlinkTruncation: return "slink_truncation";
    case FaultKind::kSlinkXoff: return "slink_xoff";
    case FaultKind::kSeuConfig: return "seu_config";
    case FaultKind::kSeuMemory: return "seu_memory";
    case FaultKind::kConfigCrc: return "config_crc";
    case FaultKind::kBoardDropout: return "board_dropout";
    case FaultKind::kServiceCrash: return "service_crash";
  }
  return "unknown";
}

FaultPlan& FaultPlan::with_rate(FaultKind kind, double probability) {
  ATLANTIS_CHECK(probability >= 0.0 && probability <= 1.0,
                 "fault rate must be a probability");
  rates[static_cast<std::size_t>(kind)] = probability;
  return *this;
}

FaultPlan& FaultPlan::inject(FaultKind kind, std::string site,
                             std::uint64_t nth, std::uint64_t param) {
  ATLANTIS_CHECK(nth >= 1, "scheduled faults fire on a 1-based opportunity");
  scheduled.push_back(ScheduledFault{kind, std::move(site), nth, param});
  return *this;
}

bool FaultPlan::empty() const {
  if (!scheduled.empty()) return false;
  return std::all_of(rates.begin(), rates.end(),
                     [](double r) { return r == 0.0; });
}

util::Picoseconds RetryPolicy::backoff(int retry) const {
  ATLANTIS_CHECK(retry >= 1, "backoff is indexed from the first retry");
  util::Picoseconds wait = initial_backoff;
  for (int i = 1; i < retry; ++i) {
    const auto next = static_cast<util::Picoseconds>(
        static_cast<double>(wait) * multiplier);
    if (next >= max_backoff || next <= wait) return max_backoff;
    wait = next;
  }
  return std::min(wait, max_backoff);
}

namespace {

/// splitmix64 finalizer: a full-avalanche mix, so consecutive ordinals
/// at one site land on unrelated jitter factors.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

util::Picoseconds RetryPolicy::backoff(int retry,
                                       std::uint64_t stream) const {
  const util::Picoseconds base = backoff(retry);
  if (jitter <= 0.0) return base;
  ATLANTIS_CHECK(jitter < 1.0, "backoff jitter must stay below 1");
  // Map the stream word to u in [0, 1) and scale into [1 - jitter, 1].
  const double u =
      static_cast<double>(mix64(stream) >> 11) * 0x1.0p-53;
  const double scale = 1.0 - jitter * u;
  const auto wait =
      static_cast<util::Picoseconds>(static_cast<double>(base) * scale);
  return std::max<util::Picoseconds>(1, wait);
}

std::uint64_t jitter_stream(std::uint64_t seed, const std::string& site,
                            std::uint64_t ordinal) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return mix64(h ^ mix64(seed) ^ (ordinal * 0x9E3779B97F4A7C15ull));
}

namespace {

/// FNV-1a over the site name; mixed with the seed and kind so every
/// (kind, site) stream is independent of every other.
std::uint64_t site_hash(std::uint64_t seed, int kind,
                        const std::string& site) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  h ^= seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(kind + 1);
  return h;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  // Capture the post-construction state; reset() restores exactly this.
  SnapshotWriter w;
  save_state(w);
  genesis_ = w.bytes();
}

FaultInjector::SiteState& FaultInjector::site_state(FaultKind kind,
                                                    const std::string& site) {
  const SiteKey key{static_cast<int>(kind), site};
  auto it = sites_.find(key);
  if (it == sites_.end()) {
    SiteState st;
    st.rng.reseed(site_hash(plan_.seed, static_cast<int>(kind), site));
    it = sites_.emplace(key, std::move(st)).first;
  }
  return it->second;
}

std::optional<FaultHit> FaultInjector::draw(FaultKind kind,
                                            const std::string& site) {
  SiteState& st = site_state(kind, site);
  ++st.opportunities;
  // Rate draw first (and always, so the stream position is a pure
  // function of the opportunity count), then the scheduled list.
  const double rate = plan_.rate(kind);
  bool fire = rate > 0.0 && st.rng.bernoulli(rate);
  std::uint64_t param = 0;
  if (fire) param = st.rng.next_u64();
  for (const ScheduledFault& sf : plan_.scheduled) {
    if (sf.kind == kind && sf.nth == st.opportunities && sf.site == site) {
      fire = true;
      if (sf.param != 0) param = sf.param;
      if (param == 0) param = st.rng.next_u64();
      break;
    }
  }
  if (!fire) return std::nullopt;
  ++injected_[static_cast<std::size_t>(kind)];
  log_.push_back(FaultRecord{kind, site, st.opportunities, param});
  return FaultHit{param};
}

std::uint64_t FaultInjector::opportunities(FaultKind kind,
                                           const std::string& site) const {
  const auto it = sites_.find(SiteKey{static_cast<int>(kind), site});
  return it == sites_.end() ? 0 : it->second.opportunities;
}

std::uint64_t FaultInjector::injected(FaultKind kind) const {
  return injected_[static_cast<std::size_t>(kind)];
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_) total += n;
  return total;
}

void FaultInjector::reset() {
  // "Reset" is defined as loading the post-construction snapshot; the
  // hand-rolled member clearing this replaced could silently fall out of
  // sync with new state as it was added.
  auto r = SnapshotReader::open(genesis_);
  load_state(r.value());
}

void FaultInjector::save_state(SnapshotWriter& w) const {
  w.begin_section("sim/fault");
  w.put_u64(plan_.seed);
  for (const double rate : plan_.rates) w.put_f64(rate);
  w.put_u32(static_cast<std::uint32_t>(plan_.scheduled.size()));
  for (const ScheduledFault& sf : plan_.scheduled) {
    w.put_u8(static_cast<std::uint8_t>(sf.kind));
    w.put_string(sf.site);
    w.put_u64(sf.nth);
    w.put_u64(sf.param);
  }
  for (const std::uint64_t n : injected_) w.put_u64(n);
  w.put_u64(log_.size());
  for (const FaultRecord& rec : log_) {
    w.put_u8(static_cast<std::uint8_t>(rec.kind));
    w.put_string(rec.site);
    w.put_u64(rec.opportunity);
    w.put_u64(rec.param);
  }
  w.put_u32(static_cast<std::uint32_t>(sites_.size()));
  for (const auto& [key, st] : sites_) {
    w.put_u32(static_cast<std::uint32_t>(key.first));
    w.put_string(key.second);
    w.put_u64(st.opportunities);
    for (const std::uint64_t word : st.rng.save_state()) w.put_u64(word);
  }
  w.end_section();
}

void FaultInjector::load_state(SnapshotReader& r) {
  r.select("sim/fault");
  plan_.seed = r.get_u64();
  for (double& rate : plan_.rates) rate = r.get_f64();
  const std::uint32_t n_sched = r.get_u32();
  plan_.scheduled.clear();
  plan_.scheduled.reserve(n_sched);
  for (std::uint32_t i = 0; i < n_sched; ++i) {
    ScheduledFault sf;
    sf.kind = static_cast<FaultKind>(r.get_u8());
    sf.site = r.get_string();
    sf.nth = r.get_u64();
    sf.param = r.get_u64();
    plan_.scheduled.push_back(std::move(sf));
  }
  for (std::uint64_t& n : injected_) n = r.get_u64();
  const std::uint64_t n_log = r.get_u64();
  log_.clear();
  log_.reserve(n_log);
  for (std::uint64_t i = 0; i < n_log; ++i) {
    FaultRecord rec;
    rec.kind = static_cast<FaultKind>(r.get_u8());
    rec.site = r.get_string();
    rec.opportunity = r.get_u64();
    rec.param = r.get_u64();
    log_.push_back(std::move(rec));
  }
  const std::uint32_t n_sites = r.get_u32();
  sites_.clear();
  for (std::uint32_t i = 0; i < n_sites; ++i) {
    const int kind = static_cast<int>(r.get_u32());
    std::string site = r.get_string();
    SiteState st;
    st.opportunities = r.get_u64();
    std::array<std::uint64_t, 6> rng_state{};
    for (std::uint64_t& word : rng_state) word = r.get_u64();
    st.rng.load_state(rng_state);
    sites_.emplace(SiteKey{kind, std::move(site)}, std::move(st));
  }
}

}  // namespace atlantis::sim
