#include "sim/fault.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace atlantis::sim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDmaStall: return "dma_stall";
    case FaultKind::kDmaAbort: return "dma_abort";
    case FaultKind::kSlinkError: return "slink_error";
    case FaultKind::kSlinkTruncation: return "slink_truncation";
    case FaultKind::kSlinkXoff: return "slink_xoff";
    case FaultKind::kSeuConfig: return "seu_config";
    case FaultKind::kSeuMemory: return "seu_memory";
    case FaultKind::kConfigCrc: return "config_crc";
    case FaultKind::kBoardDropout: return "board_dropout";
  }
  return "unknown";
}

FaultPlan& FaultPlan::with_rate(FaultKind kind, double probability) {
  ATLANTIS_CHECK(probability >= 0.0 && probability <= 1.0,
                 "fault rate must be a probability");
  rates[static_cast<std::size_t>(kind)] = probability;
  return *this;
}

FaultPlan& FaultPlan::inject(FaultKind kind, std::string site,
                             std::uint64_t nth, std::uint64_t param) {
  ATLANTIS_CHECK(nth >= 1, "scheduled faults fire on a 1-based opportunity");
  scheduled.push_back(ScheduledFault{kind, std::move(site), nth, param});
  return *this;
}

bool FaultPlan::empty() const {
  if (!scheduled.empty()) return false;
  return std::all_of(rates.begin(), rates.end(),
                     [](double r) { return r == 0.0; });
}

util::Picoseconds RetryPolicy::backoff(int retry) const {
  ATLANTIS_CHECK(retry >= 1, "backoff is indexed from the first retry");
  util::Picoseconds wait = initial_backoff;
  for (int i = 1; i < retry; ++i) {
    const auto next = static_cast<util::Picoseconds>(
        static_cast<double>(wait) * multiplier);
    if (next >= max_backoff || next <= wait) return max_backoff;
    wait = next;
  }
  return std::min(wait, max_backoff);
}

namespace {

/// FNV-1a over the site name; mixed with the seed and kind so every
/// (kind, site) stream is independent of every other.
std::uint64_t site_hash(std::uint64_t seed, int kind,
                        const std::string& site) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  h ^= seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(kind + 1);
  return h;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

FaultInjector::SiteState& FaultInjector::site_state(FaultKind kind,
                                                    const std::string& site) {
  const SiteKey key{static_cast<int>(kind), site};
  auto it = sites_.find(key);
  if (it == sites_.end()) {
    SiteState st;
    st.rng.reseed(site_hash(plan_.seed, static_cast<int>(kind), site));
    it = sites_.emplace(key, std::move(st)).first;
  }
  return it->second;
}

std::optional<FaultHit> FaultInjector::draw(FaultKind kind,
                                            const std::string& site) {
  SiteState& st = site_state(kind, site);
  ++st.opportunities;
  // Rate draw first (and always, so the stream position is a pure
  // function of the opportunity count), then the scheduled list.
  const double rate = plan_.rate(kind);
  bool fire = rate > 0.0 && st.rng.bernoulli(rate);
  std::uint64_t param = 0;
  if (fire) param = st.rng.next_u64();
  for (const ScheduledFault& sf : plan_.scheduled) {
    if (sf.kind == kind && sf.nth == st.opportunities && sf.site == site) {
      fire = true;
      if (sf.param != 0) param = sf.param;
      if (param == 0) param = st.rng.next_u64();
      break;
    }
  }
  if (!fire) return std::nullopt;
  ++injected_[static_cast<std::size_t>(kind)];
  log_.push_back(FaultRecord{kind, site, st.opportunities, param});
  return FaultHit{param};
}

std::uint64_t FaultInjector::opportunities(FaultKind kind,
                                           const std::string& site) const {
  const auto it = sites_.find(SiteKey{static_cast<int>(kind), site});
  return it == sites_.end() ? 0 : it->second.opportunities;
}

std::uint64_t FaultInjector::injected(FaultKind kind) const {
  return injected_[static_cast<std::size_t>(kind)];
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_) total += n;
  return total;
}

void FaultInjector::reset() {
  sites_.clear();
  injected_.fill(0);
  log_.clear();
}

}  // namespace atlantis::sim
