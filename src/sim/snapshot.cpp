#include "sim/snapshot.hpp"

#include <array>
#include <cstring>

namespace atlantis::sim {
namespace {

// CRC-32 table for the reflected IEEE polynomial 0xEDB88320, built once.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void store_le(std::uint8_t* out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t load_le(const std::uint8_t* in, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  const auto& table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

SnapshotWriter::SnapshotWriter() {
  std::uint8_t header[12];
  store_le(header, kSnapshotMagic, 4);
  store_le(header + 4, kSnapshotMajor, 2);
  store_le(header + 6, kSnapshotMinor, 2);
  store_le(header + 8, 0, 4);  // reserved
  buf_.insert(buf_.end(), header, header + sizeof(header));
}

void SnapshotWriter::raw(const void* p, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(p);
  buf_.insert(buf_.end(), bytes, bytes + n);
}

void SnapshotWriter::begin_section(const std::string& tag) {
  ATLANTIS_CHECK(!open_, "snapshot sections do not nest");
  ATLANTIS_CHECK(!tag.empty(), "snapshot section tag must be non-empty");
  open_ = true;
  frame_at_ = buf_.size();
  std::uint8_t len4[4];
  store_le(len4, tag.size(), 4);
  raw(len4, 4);
  raw(tag.data(), tag.size());
  len_at_ = buf_.size();
  std::uint8_t len8[8] = {};
  raw(len8, 8);  // payload length backpatched by end_section()
  payload_at_ = buf_.size();
}

void SnapshotWriter::end_section() {
  ATLANTIS_CHECK(open_, "end_section without begin_section");
  open_ = false;
  const std::size_t payload_len = buf_.size() - payload_at_;
  store_le(buf_.data() + len_at_, payload_len, 8);
  // The CRC covers the whole frame (tag length, tag, payload length,
  // payload), so tag corruption is as detectable as payload corruption.
  const std::uint32_t crc =
      crc32(buf_.data() + frame_at_, buf_.size() - frame_at_);
  std::uint8_t crc4[4];
  store_le(crc4, crc, 4);
  raw(crc4, 4);
}

void SnapshotWriter::put_u8(std::uint8_t v) {
  ATLANTIS_CHECK(open_, "snapshot put outside a section");
  buf_.push_back(v);
}

void SnapshotWriter::put_u16(std::uint16_t v) {
  ATLANTIS_CHECK(open_, "snapshot put outside a section");
  std::uint8_t b[2];
  store_le(b, v, 2);
  raw(b, 2);
}

void SnapshotWriter::put_u32(std::uint32_t v) {
  ATLANTIS_CHECK(open_, "snapshot put outside a section");
  std::uint8_t b[4];
  store_le(b, v, 4);
  raw(b, 4);
}

void SnapshotWriter::put_u64(std::uint64_t v) {
  ATLANTIS_CHECK(open_, "snapshot put outside a section");
  std::uint8_t b[8];
  store_le(b, v, 8);
  raw(b, 8);
}

void SnapshotWriter::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void SnapshotWriter::put_f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void SnapshotWriter::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  ATLANTIS_CHECK(open_, "snapshot put outside a section");
  raw(s.data(), s.size());
}

void SnapshotWriter::put_words(const std::vector<std::uint64_t>& words) {
  put_u64(words.size());
  for (const std::uint64_t w : words) put_u64(w);
}

void SnapshotWriter::put_bytes(const std::uint8_t* data, std::size_t len) {
  ATLANTIS_CHECK(open_, "snapshot put outside a section");
  raw(data, len);
}

const std::vector<std::uint8_t>& SnapshotWriter::bytes() const {
  ATLANTIS_CHECK(!open_, "snapshot stream read with a section still open");
  return buf_;
}

util::Result<SnapshotReader> SnapshotReader::open(
    std::vector<std::uint8_t> data) {
  using R = util::Result<SnapshotReader>;
  SnapshotReader r;
  r.data_ = std::move(data);
  const std::uint8_t* p = r.data_.data();
  const std::size_t n = r.data_.size();
  if (n < 12) {
    return R::failure(util::ErrorCode::kSnapshotCorrupt,
                      "snapshot shorter than its header");
  }
  if (load_le(p, 4) != kSnapshotMagic) {
    return R::failure(util::ErrorCode::kSnapshotCorrupt,
                      "bad snapshot magic");
  }
  r.major_ = static_cast<std::uint16_t>(load_le(p + 4, 2));
  r.minor_ = static_cast<std::uint16_t>(load_le(p + 6, 2));
  if (r.major_ != kSnapshotMajor) {
    return R::failure(util::ErrorCode::kSnapshotVersion,
                      "snapshot major version " + std::to_string(r.major_) +
                          " (this build reads " +
                          std::to_string(kSnapshotMajor) + ")");
  }
  std::size_t at = 12;
  while (at < n) {
    const std::size_t frame_at = at;
    if (n - at < 4) {
      return R::failure(util::ErrorCode::kSnapshotCorrupt,
                        "truncated section tag length");
    }
    const std::size_t tag_len = load_le(p + at, 4);
    at += 4;
    if (n - at < tag_len) {
      return R::failure(util::ErrorCode::kSnapshotCorrupt,
                        "truncated section tag");
    }
    std::string tag(reinterpret_cast<const char*>(p + at), tag_len);
    at += tag_len;
    if (n - at < 8) {
      return R::failure(util::ErrorCode::kSnapshotCorrupt,
                        "truncated section length");
    }
    const std::size_t payload_len = load_le(p + at, 8);
    at += 8;
    if (n - at < payload_len || n - at - payload_len < 4) {
      return R::failure(util::ErrorCode::kSnapshotCorrupt,
                        "truncated section '" + tag + "'");
    }
    const std::uint32_t want =
        static_cast<std::uint32_t>(load_le(p + at + payload_len, 4));
    if (crc32(p + frame_at, at - frame_at + payload_len) != want) {
      return R::failure(util::ErrorCode::kSnapshotCorrupt,
                        "CRC mismatch in section '" + tag + "'");
    }
    r.index_.try_emplace(tag, r.sections_.size());
    r.sections_.push_back(Section{std::move(tag), at, payload_len});
    at += payload_len + 4;
  }
  return R(std::move(r));
}

bool SnapshotReader::has_section(const std::string& tag) const {
  return index_.count(tag) != 0;
}

std::vector<std::string> SnapshotReader::section_tags() const {
  std::vector<std::string> tags;
  tags.reserve(sections_.size());
  for (const Section& s : sections_) tags.push_back(s.tag);
  return tags;
}

void SnapshotReader::select(const std::string& tag) {
  if (!try_select(tag)) {
    throw util::StateError("snapshot has no section '" + tag + "'");
  }
}

bool SnapshotReader::try_select(const std::string& tag) {
  const auto it = index_.find(tag);
  if (it == index_.end()) return false;
  select_index(it->second);
  return true;
}

void SnapshotReader::select_index(std::size_t i) {
  ATLANTIS_CHECK(i < sections_.size(), "snapshot section index out of range");
  cursor_ = sections_[i].begin;
  end_ = cursor_ + sections_[i].len;
}

void SnapshotReader::need(std::size_t n) const {
  if (end_ - cursor_ < n) {
    throw util::Error("snapshot section overread");
  }
}

std::uint8_t SnapshotReader::get_u8() {
  need(1);
  return data_[cursor_++];
}

std::uint16_t SnapshotReader::get_u16() {
  need(2);
  const auto v = static_cast<std::uint16_t>(load_le(data_.data() + cursor_, 2));
  cursor_ += 2;
  return v;
}

std::uint32_t SnapshotReader::get_u32() {
  need(4);
  const auto v = static_cast<std::uint32_t>(load_le(data_.data() + cursor_, 4));
  cursor_ += 4;
  return v;
}

std::uint64_t SnapshotReader::get_u64() {
  need(8);
  const std::uint64_t v = load_le(data_.data() + cursor_, 8);
  cursor_ += 8;
  return v;
}

std::int64_t SnapshotReader::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

double SnapshotReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SnapshotReader::get_string() {
  const std::uint32_t len = get_u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + cursor_), len);
  cursor_ += len;
  return s;
}

std::vector<std::uint64_t> SnapshotReader::get_words() {
  const std::uint64_t count = get_u64();
  if (count > remaining() / 8) throw util::Error("snapshot section overread");
  std::vector<std::uint64_t> words(count);
  for (std::uint64_t i = 0; i < count; ++i) words[i] = get_u64();
  return words;
}

void SnapshotReader::get_bytes(std::uint8_t* out, std::size_t len) {
  need(len);
  std::memcpy(out, data_.data() + cursor_, len);
  cursor_ += len;
}

}  // namespace atlantis::sim
