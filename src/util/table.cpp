#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/status.hpp"

namespace atlantis::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    ATLANTIS_CHECK(row.size() == header_.size(),
                   "table row width does not match header");
  }
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::render() const {
  // Column widths across header and all rows.
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(width[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t i = 0; i < cols; ++i)
      os << std::string(width[i] + 2, '-') << "+";
    os << "\n";
  };
  emit_rule();
  if (!header_.empty()) {
    emit_row(header_);
    emit_rule();
  }
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  emit_rule();
  for (const auto& note : notes_) os << "  note: " << note << "\n";
  return os.str();
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace atlantis::util
