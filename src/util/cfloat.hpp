// Reduced-precision software floating point ("CFloat").
//
// §3.3 of the paper revisits FPGA floating point for the N-body force
// pipeline, citing 1995 results of ~10 MFLOP/chip at 18-bit precision and
// 40 MFLOP at 32-bit on an 8-chip board. CFloat reproduces the number
// formats such pipelines used: a sign bit, EXP exponent bits (biased),
// MANT stored mantissa bits with an implicit leading one, round-to-nearest
// -even, flush-to-zero denormals (denormal hardware was never built on
// FPGAs of that era), and saturation to +-inf on overflow.
//
// Every operation goes through integer arithmetic only, so results are
// bit-identical to what a synthesized pipeline would produce.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace atlantis::util {

/// Runtime-parameterized float format. Kept as a value class (not a
/// template) so the N-body benches can sweep formats from one binary.
struct CFloatFormat {
  int exp_bits = 8;
  int mant_bits = 23;  // stored mantissa bits (excluding hidden one)

  int bias() const { return (1 << (exp_bits - 1)) - 1; }
  int total_bits() const { return 1 + exp_bits + mant_bits; }
  int max_biased_exp() const { return (1 << exp_bits) - 1; }

  bool operator==(const CFloatFormat&) const = default;
};

/// IEEE-754 single equivalent.
inline constexpr CFloatFormat kFloat32{8, 23};
/// The 18-bit format of the 1995 Xilinx N-body pipeline (6-bit exponent).
inline constexpr CFloatFormat kFloat18{6, 11};
/// A 24-bit compromise format used in the ablation sweep.
inline constexpr CFloatFormat kFloat24{7, 16};

/// One value in a given CFloatFormat. Stored unpacked for speed; pack()
/// produces the bit pattern a hardware register would hold.
class CFloat {
 public:
  CFloat() = default;

  /// Round a double into the format (this is the "load from host" path).
  static CFloat from_double(double v, const CFloatFormat& fmt);

  /// Reconstruct from a packed bit pattern.
  static CFloat from_bits(std::uint64_t bits, const CFloatFormat& fmt);

  double to_double() const;
  std::uint64_t pack() const;
  const CFloatFormat& format() const { return fmt_; }

  bool is_zero() const { return !inf_ && !nan_ && mant_ == 0; }
  bool is_inf() const { return inf_; }
  bool is_nan() const { return nan_; }
  bool sign() const { return sign_; }

  /// Arithmetic; both operands must share a format.
  friend CFloat operator+(const CFloat& a, const CFloat& b);
  friend CFloat operator-(const CFloat& a, const CFloat& b);
  friend CFloat operator*(const CFloat& a, const CFloat& b);
  friend CFloat operator/(const CFloat& a, const CFloat& b);

  /// Newton-Raphson reciprocal square root seeded from a small LUT —
  /// the implementation the GRAPE-style force pipelines used.
  static CFloat rsqrt(const CFloat& a);
  static CFloat sqrt(const CFloat& a);
  static CFloat neg(const CFloat& a);

  std::string to_string() const;

  /// Factory from a normalized (sign, exponent-of-leading-one, mantissa
  /// including hidden bit) triple; renormalizes, saturates to infinity on
  /// exponent overflow and flushes to zero on underflow.
  static CFloat make(bool sign, std::int64_t exp, std::uint64_t mant,
                     const CFloatFormat& fmt);
  static CFloat make_special(bool sign, bool inf, bool nan,
                             const CFloatFormat& fmt);

 private:
  // Normalized representation: value = (-1)^sign * mant * 2^(exp - mant_bits)
  // with mant in [2^mant_bits, 2^(mant_bits+1)) unless zero.
  CFloatFormat fmt_{};
  bool sign_ = false;
  bool inf_ = false;
  bool nan_ = false;
  std::int32_t exp_ = 0;        // unbiased exponent of the leading one
  std::uint64_t mant_ = 0;      // includes the hidden bit when nonzero

  friend CFloat add_impl(const CFloat& a, const CFloat& b, bool subtract);
};

}  // namespace atlantis::util
