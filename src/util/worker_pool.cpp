#include "util/worker_pool.hpp"

#include <algorithm>

namespace atlantis::util {

WorkerPool::WorkerPool(int threads) {
  if (threads <= 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = static_cast<int>(std::min(4u, std::max(1u, hc)));
  }
  // The caller is worker 0; spawn the helpers.
  for (int i = 1; i < threads; ++i) {
    helpers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : helpers_) t.join();
}

void WorkerPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (helpers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    job_ = &fn;
    job_n_ = n;
    next_index_ = 0;
    remaining_ = n;
  }
  start_cv_.notify_all();
  work(fn);
  std::unique_lock<std::mutex> lk(mutex_);
  done_cv_.wait(lk, [&] { return remaining_ == 0; });
  job_ = nullptr;  // fn's frame is about to die; helpers are idle again
}

void WorkerPool::work(const std::function<void(int)>& fn) {
  for (;;) {
    int i;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (next_index_ >= job_n_) return;
      i = next_index_++;
    }
    fn(i);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    start_cv_.wait(
        lk, [&] { return stop_ || (job_ != nullptr && next_index_ < job_n_); });
    if (stop_) return;
    const std::function<void(int)>* fn = job_;
    while (job_ != nullptr && next_index_ < job_n_) {
      const int i = next_index_++;
      lk.unlock();
      (*fn)(i);
      lk.lock();
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool;
  return pool;
}

}  // namespace atlantis::util
