#include "util/worker_pool.hpp"

#include <algorithm>
#include <chrono>

namespace atlantis::util {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Yield iterations a helper burns waiting for the next job before it
// sleeps on the condition variable. Lockstep stepping posts a job every
// few microseconds; staying runnable across that gap avoids a futex
// sleep/wake round-trip per simulated cycle.
constexpr int kIdleSpins = 512;

}  // namespace

WorkerPool::WorkerPool(int threads) {
  if (threads <= 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = static_cast<int>(std::min(4u, std::max(1u, hc)));
  }
  stats_.resize(static_cast<std::size_t>(threads));
  // The caller is worker 0; spawn the helpers.
  for (int i = 1; i < threads; ++i) {
    helpers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
    stopping_.store(true, std::memory_order_release);
  }
  start_cv_.notify_all();
  for (std::thread& t : helpers_) t.join();
}

std::vector<WorkerPool::WorkerStats> WorkerPool::worker_stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

void WorkerPool::reset_worker_stats() {
  std::lock_guard<std::mutex> lk(mutex_);
  std::fill(stats_.begin(), stats_.end(), WorkerStats{});
}

void WorkerPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (helpers_.empty() || n == 1) {
    const std::uint64_t t0 = now_ns();
    for (int i = 0; i < n; ++i) fn(i);
    const std::uint64_t dt = now_ns() - t0;
    std::lock_guard<std::mutex> lk(mutex_);
    stats_[0].tasks += static_cast<std::uint64_t>(n);
    stats_[0].busy_ns += dt;
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    job_ = &fn;
    job_n_ = n;
    next_index_ = 0;
    remaining_ = n;
    ++job_seq_;
    job_gen_.fetch_add(1, std::memory_order_release);
  }
  start_cv_.notify_all();
  work(fn);
  std::unique_lock<std::mutex> lk(mutex_);
  done_cv_.wait(lk, [&] { return remaining_ == 0; });
  job_ = nullptr;  // fn's frame is about to die; helpers are idle again
}

void WorkerPool::parallel_for_chunked(int n,
                                      const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const int workers = std::min(n, size());
  if (workers <= 1) {
    parallel_for(n, fn);
    return;
  }
  const int chunk = (n + workers - 1) / workers;
  parallel_for(workers, [&](int w) {
    const int lo = w * chunk;
    const int hi = std::min(n, lo + chunk);
    for (int i = lo; i < hi; ++i) fn(i);
  });
}

void WorkerPool::work(const std::function<void(int)>& fn) {
  for (;;) {
    int i;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (next_index_ >= job_n_) return;
      i = next_index_++;
    }
    const std::uint64_t t0 = now_ns();
    fn(i);
    const std::uint64_t dt = now_ns() - t0;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stats_[0].tasks += 1;
      stats_[0].busy_ns += dt;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::worker_loop(int wid) {
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    if (!stop_ && (job_ == nullptr || next_index_ >= job_n_)) {
      // Nothing to do right now: spin briefly on the (lock-free) job
      // generation before committing to a condition-variable sleep.
      const std::uint64_t seen = job_gen_.load(std::memory_order_acquire);
      lk.unlock();
      for (int spin = 0; spin < kIdleSpins; ++spin) {
        if (stopping_.load(std::memory_order_acquire) ||
            job_gen_.load(std::memory_order_acquire) != seen) {
          break;
        }
        std::this_thread::yield();
      }
      lk.lock();
    }
    start_cv_.wait(
        lk, [&] { return stop_ || (job_ != nullptr && next_index_ < job_n_); });
    if (stop_) return;
    const std::function<void(int)>* fn = job_;
    while (job_ != nullptr && next_index_ < job_n_) {
      const int i = next_index_++;
      lk.unlock();
      const std::uint64_t t0 = now_ns();
      (*fn)(i);
      const std::uint64_t dt = now_ns() - t0;
      lk.lock();
      stats_[static_cast<std::size_t>(wid)].tasks += 1;
      stats_[static_cast<std::size_t>(wid)].busy_ns += dt;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool;
  return pool;
}

}  // namespace atlantis::util
