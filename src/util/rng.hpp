// Deterministic, seedable pseudo-random number generation.
//
// All workload generators in the reproduction (TRT events, CT phantoms,
// Plummer spheres, traffic patterns) draw from this engine so that every
// experiment is bit-reproducible from its seed.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace atlantis::util {

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference
/// implementation, adapted). Fast, high-quality, 256-bit state.
class Rng {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64,
  /// as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method for unbiased bounded draws.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) { return next_double() < p; }

  /// Complete engine state as 6 words (4 state words, the cached
  /// normal() spare bit-cast to an integer, and the spare-valid flag) —
  /// the snapshot layer's representation. load_state(save_state()) is an
  /// exact round trip: the draw sequence continues bit-identically.
  std::array<std::uint64_t, 6> save_state() const {
    std::uint64_t spare_bits = 0;
    std::memcpy(&spare_bits, &spare_, sizeof(spare_bits));
    return {state_[0], state_[1], state_[2], state_[3], spare_bits,
            have_spare_ ? 1ull : 0ull};
  }
  void load_state(const std::array<std::uint64_t, 6>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<std::size_t>(i)];
    std::memcpy(&spare_, &s[4], sizeof(spare_));
    have_spare_ = s[5] != 0;
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace atlantis::util
