// Streaming statistics accumulators used by the benchmark harnesses and
// the hardware timing models.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/status.hpp"

namespace atlantis::util {

/// Welford single-pass accumulator: mean/variance/min/max without storing
/// the samples. Numerically stable for long benchmark runs.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void merge(const Accumulator& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact nearest-rank percentile (q in [0,1]) over an unsorted sample
/// set; sorts a copy. Deterministic — the serving layer's p50/p99 queue
/// latencies come from here, so they must not depend on sample order.
inline double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[rank];
}

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in the
/// first/last bin. Used for track histograms and latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    ATLANTIS_CHECK(bins > 0, "histogram needs at least one bin");
    ATLANTIS_CHECK(hi > lo, "histogram range must be non-empty");
  }

  void add(double x) {
    double t = (x - lo_) / (hi_ - lo_);
    t = std::clamp(t, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    ++counts_[idx];
    ++total_;
  }

  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }

  /// Approximate quantile from the binned counts (q in [0,1]).
  double quantile(double q) const {
    if (total_ == 0) return lo_;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) {
        const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
        return lo_ + width * (static_cast<double>(i) + 0.5);
      }
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Log-bucketed latency histogram (HdrHistogram-style): geometric bins
/// spanning [1, max_value] with `bins_per_decade` buckets per factor of
/// ten, so p50 and p999 carry the same ~relative error no matter how
/// heavy the tail. The serving cluster records one sample per request —
/// a million-user open-loop sweep cannot afford to keep (or sort) every
/// sample the way util::percentile does. Deterministic: quantiles
/// depend only on the multiset of samples, never on insertion order.
class LogHistogram {
 public:
  explicit LogHistogram(double max_value = 1e15, int bins_per_decade = 90)
      : bins_per_decade_(bins_per_decade) {
    ATLANTIS_CHECK(max_value > 1.0, "log histogram needs max_value > 1");
    ATLANTIS_CHECK(bins_per_decade > 0,
                   "log histogram needs at least one bin per decade");
    const double decades = std::log10(max_value);
    counts_.assign(static_cast<std::size_t>(decades * bins_per_decade) + 2, 0);
  }

  /// Samples <= 1 (including zero latencies) land in the first bin;
  /// samples beyond max_value saturate into the last.
  void add(double x) {
    ++counts_[index(x)];
    ++total_;
  }
  void add(double x, std::uint64_t n) {
    counts_[index(x)] += n;
    total_ += n;
  }

  std::uint64_t count() const { return total_; }

  /// Nearest-rank quantile over the binned counts (q in [0,1]); returns
  /// the geometric midpoint of the winning bin. Error is bounded by one
  /// bin width (~2.6% with 90 bins/decade), independent of q.
  double quantile(double q) const {
    if (total_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_ - 1) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > target) return midpoint(i);
    }
    return midpoint(counts_.size() - 1);
  }

  /// Merge per-shard histograms into the cluster-wide distribution.
  /// Requires identical bucket geometry.
  void merge(const LogHistogram& other) {
    ATLANTIS_CHECK(counts_.size() == other.counts_.size() &&
                       bins_per_decade_ == other.bins_per_decade_,
                   "merging log histograms needs identical geometry");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

 private:
  std::size_t index(double x) const {
    if (!(x > 1.0)) return 0;
    const auto i = static_cast<std::size_t>(
        std::log10(x) * static_cast<double>(bins_per_decade_)) + 1;
    return std::min(i, counts_.size() - 1);
  }
  double midpoint(std::size_t i) const {
    if (i == 0) return 1.0;
    const double lo = static_cast<double>(i - 1) /
                      static_cast<double>(bins_per_decade_);
    const double hi = static_cast<double>(i) /
                      static_cast<double>(bins_per_decade_);
    return std::pow(10.0, 0.5 * (lo + hi));
  }

  int bins_per_decade_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace atlantis::util
