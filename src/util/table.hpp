// ASCII table renderer for the benchmark harnesses: every experiment
// prints "paper" and "measured" rows side by side in the same shape the
// paper reports them.
#pragma once

#include <string>
#include <vector>

namespace atlantis::util {

/// Column-aligned text table with a title and optional footnotes.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row (also fixes the column count).
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header width if one was set.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator between row groups.
  void add_separator();

  void add_note(std::string note) { notes_.push_back(std::move(note)); }

  /// Renders to a string; `print()` writes it to stdout.
  std::string render() const;
  void print() const;

  /// Convenience: format a double with the given precision.
  static std::string fmt(double v, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
  std::vector<std::string> notes_;
};

}  // namespace atlantis::util
