// Physical units used throughout the timing models. Time is kept in
// integral picoseconds (exact arithmetic at every clock rate the paper
// uses: 33 MHz PCI, 40 MHz designs, 66 MHz backplane, 80 MHz max).
#pragma once

#include <cstdint>

namespace atlantis::util {

/// Simulation time in picoseconds.
using Picoseconds = std::int64_t;

inline constexpr Picoseconds kPicosecond = 1;
inline constexpr Picoseconds kNanosecond = 1'000;
inline constexpr Picoseconds kMicrosecond = 1'000'000;
inline constexpr Picoseconds kMillisecond = 1'000'000'000;
inline constexpr Picoseconds kSecond = 1'000'000'000'000;

/// Clock period for a frequency in MHz (rounded to the nearest ps).
constexpr Picoseconds period_from_mhz(double mhz) {
  return static_cast<Picoseconds>(1'000'000.0 / mhz + 0.5);
}

constexpr double ps_to_ms(Picoseconds t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
constexpr double ps_to_us(Picoseconds t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
constexpr double ps_to_s(Picoseconds t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Throughput in MB/s given bytes moved over a duration.
constexpr double mb_per_s(std::uint64_t bytes, Picoseconds t) {
  if (t <= 0) return 0.0;
  return (static_cast<double>(bytes) / 1.0e6) / ps_to_s(t);
}

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * 1024;

}  // namespace atlantis::util
