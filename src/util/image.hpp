// Simple dense 2-D image container plus PGM/PPM writers. Used by the
// volume-rendering and image-processing libraries and their examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace atlantis::util {

/// Row-major 2-D grid of T.
template <typename T>
class Image {
 public:
  Image() = default;
  Image(int width, int height, T fill = T{})
      : width_(width), height_(height),
        data_(checked_size(width, height), fill) {}

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t size() const { return data_.size(); }

  T& at(int x, int y) {
    ATLANTIS_CHECK(in_bounds(x, y), "image access out of bounds");
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  const T& at(int x, int y) const {
    ATLANTIS_CHECK(in_bounds(x, y), "image access out of bounds");
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Unchecked access for hot loops.
  T& operator()(int x, int y) {
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  const T& operator()(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Clamped access: coordinates outside the image read the nearest edge
  /// pixel (the boundary convention of the 2-D filter hardware).
  const T& clamped(int x, int y) const {
    x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return (*this)(x, y);
  }

  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  bool operator==(const Image&) const = default;

 private:
  static std::size_t checked_size(int width, int height) {
    ATLANTIS_CHECK(width > 0 && height > 0,
                   "image dimensions must be positive");
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

/// 8-bit RGB pixel.
struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
  bool operator==(const Rgb&) const = default;
};

/// Write a grayscale image as binary PGM (P5).
void write_pgm(const Image<std::uint8_t>& img, const std::string& path);

/// Write an RGB image as binary PPM (P6).
void write_ppm(const Image<Rgb>& img, const std::string& path);

}  // namespace atlantis::util
