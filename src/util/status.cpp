#include "util/status.hpp"

#include <sstream>

namespace atlantis::util::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: (" << expr << ") " << msg;
  throw Error(os.str());
}

}  // namespace atlantis::util::detail
