#include "util/status.hpp"

#include <sstream>

namespace atlantis::util {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kDmaStall: return "dma_stall";
    case ErrorCode::kDmaAbort: return "dma_abort";
    case ErrorCode::kLinkError: return "link_error";
    case ErrorCode::kTruncatedFrame: return "truncated_frame";
    case ErrorCode::kXoff: return "xoff";
    case ErrorCode::kSeu: return "seu";
    case ErrorCode::kConfigCrc: return "config_crc";
    case ErrorCode::kBoardDead: return "board_dead";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kRetriesExhausted: return "retries_exhausted";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kSnapshotVersion: return "snapshot_version";
    case ErrorCode::kSnapshotCorrupt: return "snapshot_corrupt";
    case ErrorCode::kJobNotPending: return "job_not_pending";
    case ErrorCode::kCircuitOpen: return "circuit_open";
    case ErrorCode::kServiceCrash: return "service_crash";
    case ErrorCode::kAdmissionReject: return "admission_reject";
    case ErrorCode::kShardOverload: return "shard_overload";
  }
  return "unknown";
}

}  // namespace atlantis::util

namespace atlantis::util::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: (" << expr << ") " << msg;
  throw Error(os.str());
}

}  // namespace atlantis::util::detail
