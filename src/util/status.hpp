// Error handling primitives for the ATLANTIS libraries.
//
// Unrecoverable misuse (bad configuration, out-of-range port widths,
// netlist violations) throws util::Error; recoverable outcomes are
// returned as values. This follows the C++ Core Guidelines (E.2/E.14):
// exceptions for errors that cannot be handled locally, types for the rest.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace atlantis::util {

/// Base exception for all ATLANTIS library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Thrown when a design exceeds a hardware resource budget
/// (gates, pins, memory size, backplane lines).
class CapacityError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an API is driven in an invalid order
/// (e.g. DMA before configuration, simulation of an unelaborated design).
class StateError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace atlantis::util

/// Precondition check that is active in all build types.
/// Usage: ATLANTIS_CHECK(width > 0, "port width must be positive");
#define ATLANTIS_CHECK(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::atlantis::util::detail::throw_check_failure(#expr, __FILE__,        \
                                                    __LINE__, (msg));       \
    }                                                                       \
  } while (false)
