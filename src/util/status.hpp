// Error handling primitives for the ATLANTIS libraries.
//
// Unrecoverable misuse (bad configuration, out-of-range port widths,
// netlist violations) throws util::Error; recoverable outcomes are
// returned as values. This follows the C++ Core Guidelines (E.2/E.14):
// exceptions for errors that cannot be handled locally, types for the rest.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace atlantis::util {

/// Base exception for all ATLANTIS library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Thrown when a design exceeds a hardware resource budget
/// (gates, pins, memory size, backplane lines).
class CapacityError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an API is driven in an invalid order
/// (e.g. DMA before configuration, simulation of an unelaborated design).
class StateError : public Error {
 public:
  using Error::Error;
};

/// Recoverable failure classification for the fault/recovery layer.
/// These travel by value through Result<T>; unrecoverable misuse keeps
/// throwing the exception types above.
enum class ErrorCode {
  kOk = 0,
  kDmaStall,          // DMA hung until the watchdog fired
  kDmaAbort,          // PCI master/target abort
  kLinkError,         // S-Link transmission error (LDERR)
  kTruncatedFrame,    // event fragment lost its end marker
  kXoff,              // link stuck in flow control
  kSeu,               // single-event upset in memory or configuration
  kConfigCrc,         // configuration CRC failure
  kBoardDead,         // whole-board drop-out
  kTimeout,           // recovery exceeded its time budget
  kRetriesExhausted,  // all retry attempts failed
  kOverloaded,        // admission control refused the request
  kSnapshotVersion,   // snapshot stream from an incompatible major version
  kSnapshotCorrupt,   // snapshot stream truncated or failed its CRC
  kJobNotPending,     // checkpoint/migrate target is not a pending job
  kCircuitOpen,       // circuit breaker refused the operation
  kServiceCrash,      // the serving process itself went down
  kAdmissionReject,   // QoS/SLO admission control refused the job up front
  kShardOverload,     // every candidate shard's bounded queue is full
};

/// One past the last ErrorCode value. Keep in sync with the enum above;
/// the status unit test iterates [0, kErrorCodeCount) and fails on any
/// code whose name falls through to "unknown".
inline constexpr int kErrorCodeCount =
    static_cast<int>(ErrorCode::kShardOverload) + 1;

/// Stable lowercase name ("dma_stall", "config_crc", ...).
const char* error_code_name(ErrorCode code);

/// Alias for error_code_name — the short spelling used by newer call
/// sites (supervisor reports, bench tables).
inline const char* error_name(ErrorCode code) { return error_code_name(code); }

/// Value-or-error return for recoverable outcomes (E.2/E.14: types for
/// errors a caller can handle locally). A Result is either ok() and
/// carries a T, or carries an ErrorCode plus a human-readable message.
/// value() on a failed Result throws util::Error — reaching for a value
/// without checking is misuse, not a recoverable condition.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit success wrapper, so `return transfer;` just works.
  Result(T value) : value_(std::move(value)) {}

  static Result failure(ErrorCode code, std::string message = {}) {
    Result r;
    r.code_ = code;
    r.message_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// kOk when ok(); the failure classification otherwise.
  ErrorCode error() const { return code_; }
  const std::string& message() const { return message_; }

  T& value() {
    require_ok();
    return *value_;
  }
  const T& value() const {
    require_ok();
    return *value_;
  }
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

  /// The one sanctioned bridge back into the throwing world: returns the
  /// value, or throws util::StateError naming the ErrorCode. Call sites
  /// that used to rely on an API throwing on misuse (submit() of an
  /// unregistered configuration, restore of a foreign checkpoint) write
  /// `.value_or_throw()` instead of keeping per-API throwing variants.
  T& value_or_throw() {
    if (!ok()) throw_state_error();
    return *value_;
  }
  const T& value_or_throw() const {
    if (!ok()) throw_state_error();
    return *value_;
  }

 private:
  Result() = default;
  void require_ok() const {
    if (!ok()) {
      throw Error(std::string("Result::value() on failure (") +
                  error_code_name(code_) +
                  (message_.empty() ? ")" : "): " + message_));
    }
  }
  [[noreturn]] void throw_state_error() const {
    throw StateError(std::string(error_code_name(code_)) +
                     (message_.empty() ? "" : ": " + message_));
  }

  std::optional<T> value_;
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace atlantis::util

/// Precondition check that is active in all build types.
/// Usage: ATLANTIS_CHECK(width > 0, "port width must be positive");
#define ATLANTIS_CHECK(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::atlantis::util::detail::throw_check_failure(#expr, __FILE__,        \
                                                    __LINE__, (msg));       \
    }                                                                       \
  } while (false)
