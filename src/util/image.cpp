#include "util/image.hpp"

#include <cstdio>
#include <memory>

namespace atlantis::util {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_for_write(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  ATLANTIS_CHECK(f != nullptr, "cannot open output file: " + path);
  return f;
}

}  // namespace

void write_pgm(const Image<std::uint8_t>& img, const std::string& path) {
  FilePtr f = open_for_write(path);
  std::fprintf(f.get(), "P5\n%d %d\n255\n", img.width(), img.height());
  std::fwrite(img.data().data(), 1, img.data().size(), f.get());
}

void write_ppm(const Image<Rgb>& img, const std::string& path) {
  FilePtr f = open_for_write(path);
  std::fprintf(f.get(), "P6\n%d %d\n255\n", img.width(), img.height());
  std::fwrite(img.data().data(), sizeof(Rgb), img.data().size(), f.get());
}

}  // namespace atlantis::util
