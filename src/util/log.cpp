#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace atlantis::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void emit(LogLevel level, const std::string& msg) {
  const std::scoped_lock lock(g_emit_mutex);
  std::fprintf(stderr, "[atlantis %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace atlantis::util
