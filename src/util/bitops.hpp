// Small bit-manipulation helpers shared by the CHDL value types and the
// hardware models.
#pragma once

#include <bit>
#include <cstdint>

#include "util/status.hpp"

namespace atlantis::util {

/// Number of bits needed to represent `value` (0 -> 1).
constexpr int bit_width_of(std::uint64_t value) {
  return value == 0 ? 1 : std::bit_width(value);
}

/// Mask with the low `n` bits set; n in [0, 64].
constexpr std::uint64_t low_mask(int n) {
  ATLANTIS_CHECK(n >= 0 && n <= 64, "mask width out of range");
  return n == 64 ? ~0ull : ((1ull << n) - 1ull);
}

/// Extract bits [lo, lo+width) of `value`.
constexpr std::uint64_t extract_bits(std::uint64_t value, int lo, int width) {
  ATLANTIS_CHECK(lo >= 0 && width >= 0 && lo + width <= 64,
                 "bit extract out of range");
  return (value >> lo) & low_mask(width);
}

/// Sign-extend the low `width` bits of `value` to 64 bits.
constexpr std::int64_t sign_extend(std::uint64_t value, int width) {
  ATLANTIS_CHECK(width > 0 && width <= 64, "sign extend width out of range");
  const std::uint64_t m = 1ull << (width - 1);
  const std::uint64_t v = value & low_mask(width);
  return static_cast<std::int64_t>((v ^ m) - m);
}

/// Round `value` up to the next multiple of `align` (align must be > 0).
constexpr std::uint64_t round_up(std::uint64_t value, std::uint64_t align) {
  ATLANTIS_CHECK(align > 0, "alignment must be positive");
  return (value + align - 1) / align * align;
}

/// Integer ceil division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  ATLANTIS_CHECK(b > 0, "division by zero");
  return (a + b - 1) / b;
}

/// True if `value` is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

/// log2 of a power of two.
constexpr int log2_exact(std::uint64_t value) {
  ATLANTIS_CHECK(is_pow2(value), "log2_exact of non power of two");
  return std::bit_width(value) - 1;
}

}  // namespace atlantis::util
