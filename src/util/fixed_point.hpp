// Signed fixed-point arithmetic (Q-format) used by the volume-rendering
// and image-processing hardware cores. FPGA datapaths in the paper's era
// were fixed-point almost without exception; this type makes the bit
// behaviour of those datapaths explicit and testable.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

#include "util/bitops.hpp"
#include "util/status.hpp"

namespace atlantis::util {

/// Q(INT).(FRAC) signed fixed point held in 64-bit storage.
/// INT counts integer bits excluding sign; FRAC counts fractional bits.
/// Arithmetic saturates on overflow (the classic DSP/FPGA choice; wrapping
/// would silently corrupt image data).
template <int INT, int FRAC>
class Fixed {
  static_assert(INT >= 0 && FRAC >= 0 && INT + FRAC + 1 <= 64,
                "Q format must fit in 64 bits including sign");

 public:
  static constexpr int kIntBits = INT;
  static constexpr int kFracBits = FRAC;
  static constexpr int kTotalBits = INT + FRAC + 1;
  static constexpr std::int64_t kOne = std::int64_t{1} << FRAC;
  static constexpr std::int64_t kMaxRaw =
      (std::int64_t{1} << (INT + FRAC)) - 1;
  static constexpr std::int64_t kMinRaw = -(std::int64_t{1} << (INT + FRAC));

  constexpr Fixed() = default;

  static constexpr Fixed from_raw(std::int64_t raw) {
    Fixed f;
    f.raw_ = saturate(raw);
    return f;
  }

  static Fixed from_double(double v) {
    return from_raw(static_cast<std::int64_t>(
        std::llround(v * static_cast<double>(kOne))));
  }

  static constexpr Fixed from_int(std::int64_t v) {
    return from_raw(v << FRAC);
  }

  constexpr std::int64_t raw() const { return raw_; }
  double to_double() const {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }
  constexpr std::int64_t to_int() const { return raw_ >> FRAC; }

  constexpr Fixed operator+(Fixed o) const { return from_raw(raw_ + o.raw_); }
  constexpr Fixed operator-(Fixed o) const { return from_raw(raw_ - o.raw_); }
  constexpr Fixed operator-() const { return from_raw(-raw_); }

  constexpr Fixed operator*(Fixed o) const {
    const __int128 wide = static_cast<__int128>(raw_) * o.raw_;
    return from_raw(static_cast<std::int64_t>(wide >> FRAC));
  }

  constexpr Fixed operator/(Fixed o) const {
    ATLANTIS_CHECK(o.raw_ != 0, "fixed point division by zero");
    const __int128 wide = (static_cast<__int128>(raw_) << FRAC) / o.raw_;
    return from_raw(static_cast<std::int64_t>(wide));
  }

  constexpr auto operator<=>(const Fixed&) const = default;

  /// Linear interpolation a + t*(b-a); t should be in [0,1].
  static constexpr Fixed lerp(Fixed a, Fixed b, Fixed t) {
    return a + (b - a) * t;
  }

  /// Saturating clamp of an arbitrary raw value into the Q range.
  static constexpr std::int64_t saturate(std::int64_t raw) {
    if (raw > kMaxRaw) return kMaxRaw;
    if (raw < kMinRaw) return kMinRaw;
    return raw;
  }

 private:
  std::int64_t raw_ = 0;
};

/// The formats used by the rendering datapath: 16-bit sample values with
/// 8 fractional bits and wide accumulators.
using Fix16 = Fixed<7, 8>;
using Fix32 = Fixed<15, 16>;

}  // namespace atlantis::util
