// Small fixed worker pool for stepping independent simulators in
// lockstep (per-FPGA cycle simulators on a board, per-board TRT slices).
//
// parallel_for(n, fn) runs fn(0..n-1) across the workers and the calling
// thread and returns when every index has completed — the return is the
// barrier the board-level stepping protocol relies on. The pool is
// deliberately simple: one job at a time, indices handed out by an
// atomic cursor, completion signalled through a condition variable, so
// it is easy to reason about under TSan.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace atlantis::util {

class WorkerPool {
 public:
  /// `threads` is the total worker count including the caller;
  /// 0 picks min(hardware_concurrency, 4) — "a small worker pool".
  explicit WorkerPool(int threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers participating in a parallel_for (helpers + caller).
  int size() const { return static_cast<int>(helpers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n); returns when all have finished.
  /// The calling thread participates. Must not be called re-entrantly
  /// from inside a task.
  void parallel_for(int n, const std::function<void(int)>& fn);

  /// Process-wide pool shared by board stepping and multiboard runs.
  static WorkerPool& shared();

 private:
  void worker_loop();
  void work(const std::function<void(int)>& fn);

  std::vector<std::thread> helpers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;  // guarded by mutex_
  int job_n_ = 0;
  int next_index_ = 0;       // guarded by mutex_
  int remaining_ = 0;        // indices not yet completed
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
};

}  // namespace atlantis::util
