// Small fixed worker pool for stepping independent simulators in
// lockstep (per-FPGA cycle simulators on a board, per-board TRT slices).
//
// parallel_for(n, fn) runs fn(0..n-1) across the workers and the calling
// thread and returns when every index has completed — the return is the
// barrier the board-level stepping protocol relies on. The pool is
// deliberately simple: one job at a time, indices handed out by an
// atomic cursor, completion signalled through a condition variable, so
// it is easy to reason about under TSan.
//
// Granularity: per-index handout costs one mutex round-trip, which
// swamps sub-microsecond tasks (the ACB matrix steps four ~100ns event
// sims per cycle). parallel_for_chunked() hands each worker one
// contiguous slice instead, and helpers briefly spin for the next job
// before sleeping on the condition variable, so back-to-back
// parallel_for calls don't pay a futex wake per cycle. Per-worker
// utilization counters (worker_stats) make the granularity visible in
// the benches instead of leaving a silent flat-line.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace atlantis::util {

class WorkerPool {
 public:
  /// Work done by one worker since the last reset_worker_stats().
  /// Worker 0 is the calling thread; 1..size()-1 are the helpers.
  struct WorkerStats {
    std::uint64_t tasks = 0;    // indices (or chunks) executed
    std::uint64_t busy_ns = 0;  // wall time spent inside the functor
  };

  /// `threads` is the total worker count including the caller;
  /// 0 picks min(hardware_concurrency, 4) — "a small worker pool".
  explicit WorkerPool(int threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers participating in a parallel_for (helpers + caller).
  int size() const { return static_cast<int>(helpers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n); returns when all have finished.
  /// The calling thread participates. Must not be called re-entrantly
  /// from inside a task.
  void parallel_for(int n, const std::function<void(int)>& fn);

  /// Same contract, but indices are handed out as at most size()
  /// contiguous chunks — one mutex round-trip per worker instead of per
  /// index. Use for many small uniform tasks; results are identical to
  /// parallel_for whenever fn(i) calls are independent (which the
  /// barrier contract already requires).
  void parallel_for_chunked(int n, const std::function<void(int)>& fn);

  /// Per-worker counters since the last reset (snapshot; call while no
  /// parallel_for is in flight for exact totals). Index 0 = caller.
  std::vector<WorkerStats> worker_stats() const;
  void reset_worker_stats();

  /// Process-wide pool shared by board stepping and multiboard runs.
  static WorkerPool& shared();

 private:
  void worker_loop(int wid);
  void work(const std::function<void(int)>& fn);

  std::vector<std::thread> helpers_;
  mutable std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;  // guarded by mutex_
  int job_n_ = 0;
  int next_index_ = 0;       // guarded by mutex_
  int remaining_ = 0;        // indices not yet completed
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
  std::vector<WorkerStats> stats_;  // guarded by mutex_
  // Lock-free signals for the helpers' pre-sleep spin: bumped/set under
  // mutex_ by the publisher, read unlocked by spinning helpers.
  std::atomic<std::uint64_t> job_gen_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace atlantis::util
