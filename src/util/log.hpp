// Minimal leveled logger. The hardware models log configuration and DMA
// events at Debug level; benches run with the logger at Warn so timing is
// unaffected.
#pragma once

#include <sstream>
#include <string>

namespace atlantis::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void emit(LogLevel level, const std::string& msg);
}

/// RAII message builder: LogLine(kInfo) << "configured " << n << " FPGAs";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace atlantis::util

#define ATLANTIS_LOG_DEBUG() \
  ::atlantis::util::LogLine(::atlantis::util::LogLevel::kDebug)
#define ATLANTIS_LOG_INFO() \
  ::atlantis::util::LogLine(::atlantis::util::LogLevel::kInfo)
#define ATLANTIS_LOG_WARN() \
  ::atlantis::util::LogLine(::atlantis::util::LogLevel::kWarn)
#define ATLANTIS_LOG_ERROR() \
  ::atlantis::util::LogLine(::atlantis::util::LogLevel::kError)
