#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace atlantis::util {

bool JsonValue::as_bool() const {
  if (!is_bool()) throw Error("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) throw Error("JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw Error("JSON value is not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  if (!is_array()) throw Error("JSON value is not an array");
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  if (!is_object()) throw Error("JSON value is not an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw Error("JSON object has no member \"" + key + "\"");
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    const JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': expect_word("true"); return JsonValue(true);
      case 'f': expect_word("false"); return JsonValue(false);
      case 'n': expect_word("null"); return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return JsonValue(std::move(obj));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return JsonValue(std::move(arr));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // \uXXXX: decode the code unit; non-ASCII becomes '?' (the
            // validator never needs the exact code point).
            unsigned int cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            out.push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
            break;
          }
          default: fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  bool digit_at(std::size_t p) const {
    return p < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[p])) != 0;
  }

  JsonValue parse_number() {
    // RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
    // strtod alone is too permissive ("1.", "01", ".5", "+1", "0x10",
    // "inf" all parse), so the token is validated before conversion.
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit_at(pos_)) {
      pos_ = begin;
      fail("expected a value");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // a leading zero must stand alone ("01" is malformed)
    } else {
      while (digit_at(pos_)) ++pos_;
    }
    if (digit_at(pos_)) {
      pos_ = begin;
      fail("malformed number: leading zero");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit_at(pos_)) {
        pos_ = begin;
        fail("malformed number: fraction needs digits");
      }
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit_at(pos_)) {
        pos_ = begin;
        fail("malformed number: exponent needs digits");
      }
      while (digit_at(pos_)) ++pos_;
    }
    const std::string tok = text_.substr(begin, pos_ - begin);
    return JsonValue(std::strtod(tok.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace atlantis::util
