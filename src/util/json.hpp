// Minimal JSON reader.
//
// Just enough of RFC 8259 to validate the machine-readable artifacts the
// benches emit (BENCH_*.json, Chrome traces): objects, arrays, strings
// with the common escapes, numbers as double, true/false/null. Parsing
// throws util::Error with a character offset on malformed input. This is
// a validator's parser, not a serializer — emission stays with the
// component that owns the format.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace atlantis::util {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(JsonArray a)
      : type_(Type::kArray),
        array_(std::make_shared<JsonArray>(std::move(a))) {}
  explicit JsonValue(JsonObject o)
      : type_(Type::kObject),
        object_(std::make_shared<JsonObject>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw util::Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws util::Error when absent.
  const JsonValue& at(const std::string& key) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
JsonValue json_parse(const std::string& text);

}  // namespace atlantis::util
