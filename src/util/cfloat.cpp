#include "util/cfloat.hpp"

#include <cmath>
#include <sstream>

#include "util/bitops.hpp"

namespace atlantis::util {
namespace {

// Round-to-nearest-even removal of the low 3 guard/round/sticky bits.
std::uint64_t round_rne(std::uint64_t mant_grs) {
  const std::uint64_t g = (mant_grs >> 2) & 1;
  const std::uint64_t r = (mant_grs >> 1) & 1;
  const std::uint64_t s = mant_grs & 1;
  std::uint64_t m = mant_grs >> 3;
  if (g && (r || s || (m & 1))) ++m;
  return m;
}

// Right shift preserving a sticky bit in bit 0.
std::uint64_t shift_right_sticky(std::uint64_t v, std::int64_t s) {
  if (s <= 0) return v;
  if (s >= 64) return v != 0 ? 1 : 0;
  const std::uint64_t lost = v & low_mask(static_cast<int>(s));
  return (v >> s) | (lost != 0 ? 1 : 0);
}

void check_format(const CFloatFormat& fmt) {
  ATLANTIS_CHECK(fmt.exp_bits >= 2 && fmt.exp_bits <= 11,
                 "CFloat exponent width out of supported range");
  ATLANTIS_CHECK(fmt.mant_bits >= 2 && fmt.mant_bits <= 30,
                 "CFloat mantissa width out of supported range");
}

}  // namespace

CFloat CFloat::make_special(bool sign, bool inf, bool nan,
                            const CFloatFormat& fmt) {
  CFloat f;
  f.fmt_ = fmt;
  f.sign_ = sign;
  f.inf_ = inf;
  f.nan_ = nan;
  return f;
}

CFloat CFloat::make(bool sign, std::int64_t exp, std::uint64_t mant,
                    const CFloatFormat& fmt) {
  CFloat f;
  f.fmt_ = fmt;
  f.sign_ = sign;
  if (mant == 0) return f;
  const int mb = fmt.mant_bits;
  // Renormalize after rounding carries or cancellation.
  while (mant >= (std::uint64_t{2} << mb)) {
    mant = (mant >> 1) | (mant & 1);
    ++exp;
  }
  while (mant < (std::uint64_t{1} << mb)) {
    mant <<= 1;
    --exp;
  }
  const std::int64_t biased = exp + fmt.bias();
  if (biased >= fmt.max_biased_exp()) {
    return make_special(sign, /*inf=*/true, /*nan=*/false, fmt);
  }
  if (biased < 1) {
    // Flush-to-zero: the era's FPGA pipelines had no denormal hardware.
    return f;
  }
  f.exp_ = static_cast<std::int32_t>(exp);
  f.mant_ = mant;
  return f;
}

namespace {

// Normalize value = M * 2^E to mant_bits+1 significant bits with RNE.
CFloat normalize_round(bool sign, std::int64_t E, std::uint64_t M,
                       const CFloatFormat& fmt) {
  if (M == 0) return CFloat::make_special(sign, false, false, fmt);
  const int mb = fmt.mant_bits;
  const int target = mb + 4;  // hidden + stored + 3 GRS bits
  const int width = bit_width_of(M);
  if (width > target) {
    const int s = width - target;
    M = shift_right_sticky(M, s);
    E += s;
  } else if (width < target) {
    M <<= (target - width);
    E -= (target - width);
  }
  const std::uint64_t rounded = round_rne(M);
  return CFloat::make(sign, E + 3 + mb, rounded, fmt);
}

}  // namespace

CFloat CFloat::from_double(double v, const CFloatFormat& fmt) {
  check_format(fmt);
  if (std::isnan(v)) return make_special(false, false, true, fmt);
  const bool sign = std::signbit(v);
  if (std::isinf(v)) return make_special(sign, true, false, fmt);
  if (v == 0.0) return make_special(sign, false, false, fmt);
  int e = 0;
  const double fr = std::frexp(std::fabs(v), &e);  // fr in [0.5, 1)
  const int mb = fmt.mant_bits;
  const double scaled = std::ldexp(fr, mb + 4);
  auto ip = static_cast<std::uint64_t>(scaled);
  if (scaled != std::floor(scaled)) ip |= 1;  // sticky
  const std::uint64_t rounded = round_rne(ip);
  return make(sign, e - 1, rounded, fmt);
}

CFloat CFloat::from_bits(std::uint64_t bits, const CFloatFormat& fmt) {
  check_format(fmt);
  const int mb = fmt.mant_bits;
  const int eb = fmt.exp_bits;
  const bool sign = ((bits >> (mb + eb)) & 1) != 0;
  const auto biased =
      static_cast<std::int64_t>(extract_bits(bits, mb, eb));
  const std::uint64_t frac = extract_bits(bits, 0, mb);
  if (biased == fmt.max_biased_exp()) {
    return make_special(sign, frac == 0, frac != 0, fmt);
  }
  if (biased == 0) {
    // Denormals flush to (signed) zero on load as well.
    return make_special(sign, false, false, fmt);
  }
  CFloat f;
  f.fmt_ = fmt;
  f.sign_ = sign;
  f.exp_ = static_cast<std::int32_t>(biased - fmt.bias());
  f.mant_ = frac | (std::uint64_t{1} << mb);
  return f;
}

double CFloat::to_double() const {
  if (nan_) return std::nan("");
  if (inf_) return sign_ ? -INFINITY : INFINITY;
  if (mant_ == 0) return sign_ ? -0.0 : 0.0;
  const double mag =
      std::ldexp(static_cast<double>(mant_), exp_ - fmt_.mant_bits);
  return sign_ ? -mag : mag;
}

std::uint64_t CFloat::pack() const {
  const int mb = fmt_.mant_bits;
  const int eb = fmt_.exp_bits;
  const std::uint64_t s = sign_ ? (std::uint64_t{1} << (mb + eb)) : 0;
  if (nan_) {
    return s | (static_cast<std::uint64_t>(fmt_.max_biased_exp()) << mb) |
           (std::uint64_t{1} << (mb - 1));
  }
  if (inf_) {
    return s | (static_cast<std::uint64_t>(fmt_.max_biased_exp()) << mb);
  }
  if (mant_ == 0) return s;
  const auto biased = static_cast<std::uint64_t>(exp_ + fmt_.bias());
  return s | (biased << mb) | (mant_ & low_mask(mb));
}

CFloat add_impl(const CFloat& a, const CFloat& b, bool subtract) {
  ATLANTIS_CHECK(a.fmt_ == b.fmt_, "CFloat format mismatch");
  const CFloatFormat& fmt = a.fmt_;
  const bool bsign = subtract ? !b.sign_ : b.sign_;
  if (a.nan_ || b.nan_) return CFloat::make_special(false, false, true, fmt);
  if (a.inf_ && b.inf_) {
    if (a.sign_ != bsign) return CFloat::make_special(false, false, true, fmt);
    return CFloat::make_special(a.sign_, true, false, fmt);
  }
  if (a.inf_) return CFloat::make_special(a.sign_, true, false, fmt);
  if (b.inf_) return CFloat::make_special(bsign, true, false, fmt);
  if (a.mant_ == 0 && b.mant_ == 0) {
    // +0 unless both are -0 (IEEE default rounding behaviour).
    return CFloat::make_special(a.sign_ && bsign, false, false, fmt);
  }
  if (a.mant_ == 0) {
    CFloat r = b;
    r.sign_ = bsign;
    return r;
  }
  if (b.mant_ == 0) return a;

  // Order so that x has the larger exponent.
  const CFloat* x = &a;
  bool xsign = a.sign_;
  const CFloat* y = &b;
  bool ysign = bsign;
  if (b.exp_ > a.exp_ || (b.exp_ == a.exp_ && b.mant_ > a.mant_)) {
    x = &b;
    xsign = bsign;
    y = &a;
    ysign = a.sign_;
  }
  std::uint64_t mx = x->mant_ << 3;
  std::uint64_t my = shift_right_sticky(y->mant_ << 3, x->exp_ - y->exp_);
  std::uint64_t m = 0;
  bool rsign = xsign;
  if (xsign == ysign) {
    m = mx + my;
  } else {
    m = mx - my;  // mx >= my by the ordering above
  }
  // Result value = m * 2^(x->exp_ - mant_bits - 3).
  return normalize_round(rsign, x->exp_ - fmt.mant_bits - 3, m, fmt);
}

CFloat operator+(const CFloat& a, const CFloat& b) {
  return add_impl(a, b, false);
}

CFloat operator-(const CFloat& a, const CFloat& b) {
  return add_impl(a, b, true);
}

CFloat operator*(const CFloat& a, const CFloat& b) {
  ATLANTIS_CHECK(a.format() == b.format(), "CFloat format mismatch");
  const CFloatFormat& fmt = a.format();
  if (a.is_nan() || b.is_nan())
    return CFloat::make_special(false, false, true, fmt);
  const bool sign = a.sign() != b.sign();
  if (a.is_inf() || b.is_inf()) {
    if (a.is_zero() || b.is_zero())
      return CFloat::make_special(false, false, true, fmt);
    return CFloat::make_special(sign, true, false, fmt);
  }
  if (a.is_zero() || b.is_zero())
    return CFloat::make_special(sign, false, false, fmt);
  const std::uint64_t p = a.mant_ * b.mant_;  // <= 2*(mant_bits+1) <= 62 bits
  return normalize_round(sign, static_cast<std::int64_t>(a.exp_) + b.exp_ -
                                   2 * fmt.mant_bits,
                         p, fmt);
}

CFloat operator/(const CFloat& a, const CFloat& b) {
  ATLANTIS_CHECK(a.format() == b.format(), "CFloat format mismatch");
  const CFloatFormat& fmt = a.format();
  if (a.is_nan() || b.is_nan())
    return CFloat::make_special(false, false, true, fmt);
  const bool sign = a.sign() != b.sign();
  if (a.is_inf()) {
    if (b.is_inf()) return CFloat::make_special(false, false, true, fmt);
    return CFloat::make_special(sign, true, false, fmt);
  }
  if (b.is_inf()) return CFloat::make_special(sign, false, false, fmt);
  if (b.is_zero()) {
    if (a.is_zero()) return CFloat::make_special(false, false, true, fmt);
    return CFloat::make_special(sign, true, false, fmt);
  }
  if (a.is_zero()) return CFloat::make_special(sign, false, false, fmt);
  const int mb = fmt.mant_bits;
  const std::uint64_t num = a.mant_ << (mb + 4);
  std::uint64_t q = num / b.mant_;
  if (num % b.mant_ != 0) q |= 1;  // sticky
  return normalize_round(
      sign, static_cast<std::int64_t>(a.exp_) - b.exp_ - mb - 4, q, fmt);
}

CFloat CFloat::neg(const CFloat& a) {
  CFloat r = a;
  r.sign_ = !r.sign_;
  return r;
}

CFloat CFloat::rsqrt(const CFloat& a) {
  const CFloatFormat& fmt = a.format();
  if (a.is_nan() || (a.sign() && !a.is_zero()))
    return make_special(false, false, true, fmt);
  if (a.is_zero()) return make_special(a.sign(), true, false, fmt);
  if (a.is_inf()) return make_special(false, false, false, fmt);

  // Seed as a hardware pipeline would: halve the exponent and look up the
  // top mantissa bits in a small table — here synthesized from a double
  // evaluation truncated to 8 significant bits.
  const double d = a.to_double();
  int e = 0;
  std::frexp(d, &e);
  const double seed_full = 1.0 / std::sqrt(d);
  const double seed_trunc =
      std::ldexp(std::floor(std::ldexp(seed_full, 8 - std::ilogb(seed_full) - 1)),
                 std::ilogb(seed_full) + 1 - 8);
  CFloat y = from_double(seed_trunc, fmt);
  const CFloat half = from_double(0.5, fmt);
  const CFloat three_halves = from_double(1.5, fmt);
  // Newton-Raphson: y <- y * (1.5 - 0.5 * x * y^2). Three iterations take
  // an 8-bit seed past 30 bits of precision.
  for (int i = 0; i < 3; ++i) {
    const CFloat y2 = y * y;
    const CFloat t = three_halves - (half * a) * y2;
    y = y * t;
  }
  return y;
}

CFloat CFloat::sqrt(const CFloat& a) {
  const CFloatFormat& fmt = a.format();
  if (a.is_zero()) return a;
  if (a.is_nan() || a.sign()) return make_special(false, false, true, fmt);
  if (a.is_inf()) return a;
  return a * rsqrt(a);
}

std::string CFloat::to_string() const {
  std::ostringstream os;
  os << to_double() << " [fp" << fmt_.total_bits() << " e" << fmt_.exp_bits
     << "m" << fmt_.mant_bits << "]";
  return os.str();
}

}  // namespace atlantis::util
