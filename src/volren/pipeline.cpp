#include "volren/pipeline.hpp"

#include <algorithm>
#include <limits>

#include "util/status.hpp"

namespace atlantis::volren {

PipelineResult simulate_pipeline(
    const std::vector<std::uint32_t>& samples_per_ray,
    const PipelineParams& params) {
  ATLANTIS_CHECK(params.depth >= 1, "pipeline depth must be >= 1");
  ATLANTIS_CHECK(params.contexts >= 1, "need at least one ray context");

  struct Context {
    std::uint32_t remaining = 0;
    std::uint64_t ready = 0;
  };
  std::vector<Context> ctx(static_cast<std::size_t>(params.contexts));

  std::size_t next_ray = 0;
  auto load_next = [&](Context& c, std::uint64_t cycle) {
    while (next_ray < samples_per_ray.size() &&
           samples_per_ray[next_ray] == 0) {
      ++next_ray;  // rays that miss the volume never enter the pipeline
    }
    if (next_ray < samples_per_ray.size()) {
      c.remaining = samples_per_ray[next_ray++];
      c.ready = cycle;  // a fresh ray can issue immediately
    } else {
      c.remaining = 0;
    }
  };
  for (auto& c : ctx) load_next(c, 0);

  PipelineResult r;
  std::uint64_t cycle = 0;
  std::size_t rr = 0;  // round-robin scan start
  for (;;) {
    bool any_active = false;
    bool issued = false;
    std::uint64_t min_ready = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t k = 0; k < ctx.size(); ++k) {
      Context& c = ctx[(rr + k) % ctx.size()];
      if (c.remaining == 0) continue;
      any_active = true;
      if (!issued && c.ready <= cycle) {
        // Issue one sample for this ray; the hazard blocks its next
        // sample for a full pipeline depth.
        --c.remaining;
        c.ready = cycle + static_cast<std::uint64_t>(params.depth);
        if (c.remaining == 0) load_next(c, cycle + 1);
        ++r.issued;
        issued = true;
        rr = (rr + k + 1) % ctx.size();
      }
      min_ready = std::min(min_ready, c.ready);
    }
    if (!any_active) break;
    if (issued) {
      ++cycle;
    } else {
      // No context ready: fast-forward to the next completion and count
      // the dead issue slots as stalls.
      r.stalls += min_ready - cycle;
      cycle = min_ready;
    }
  }
  r.cycles = cycle;
  return r;
}

}  // namespace atlantis::volren
