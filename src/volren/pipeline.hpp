// Multi-threaded ray-pipeline stall simulator.
//
// §3.2: the algorithmic optimizations introduce data and branch hazards —
// whether a ray continues depends on the compositing result of its
// previous sample, which emerges at the end of the deep rendering
// pipeline. "To overcome the resulting data and branch hazards ...
// multi-threading is introduced. Each ray is considered as a single
// thread, and after each sample point the context is switched to the
// next ray." The paper's claim: stalls drop from >90 % of rendering time
// to <10 %.
//
// The simulator issues at most one sample per cycle. A ray may issue its
// next sample only `depth` cycles after its previous one (the hazard);
// with C resident ray contexts the scheduler round-robins across ready
// rays, hiding the latency once C approaches the pipeline depth.
#pragma once

#include <cstdint>
#include <vector>

namespace atlantis::volren {

struct PipelineParams {
  int depth = 24;     // rendering pipeline stages (interp/classify/composite)
  int contexts = 32;  // resident ray threads
};

struct PipelineResult {
  std::uint64_t cycles = 0;
  std::uint64_t issued = 0;   // samples issued
  std::uint64_t stalls = 0;   // cycles with no ready context
  double efficiency() const {
    return cycles ? static_cast<double>(issued) / static_cast<double>(cycles)
                  : 0.0;
  }
  double stall_fraction() const {
    return cycles ? static_cast<double>(stalls) / static_cast<double>(cycles)
                  : 0.0;
  }
};

/// Runs the schedule for the given per-ray sample counts (from
/// RenderStats::samples_per_ray).
PipelineResult simulate_pipeline(const std::vector<std::uint32_t>& samples_per_ray,
                                 const PipelineParams& params);

}  // namespace atlantis::volren
