#include "volren/renderer.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace atlantis::volren {

FpgaVolumeRenderer::FpgaVolumeRenderer(const Volume& volume,
                                       FpgaRendererConfig cfg)
    : volume_(volume), cfg_(cfg) {
  ATLANTIS_CHECK(cfg.logic_clock_mhz > 0 && cfg.memory_clock_mhz > 0,
                 "clocks must be positive");
  ATLANTIS_CHECK(cfg.memory_reuse >= 1.0, "memory reuse factor must be >= 1");
}

FrameReport FpgaVolumeRenderer::render_frame(const TransferFunction& tf,
                                             ViewDirection view,
                                             bool perspective) {
  Camera cam(volume_, view, cfg_.image_width, cfg_.image_height, perspective,
             cfg_.camera_zoom);
  VoxelMemory mem(volume_);
  RenderOutput out = render(volume_, tf, cam, cfg_.render,
                            [&mem](double x, double y, double z) {
                              mem.sample_access(x, y, z);
                            });

  FrameReport rep;
  rep.view = view_name(view);
  rep.transfer = tf.name();
  rep.perspective = perspective;
  rep.stats = out.stats;
  rep.image = std::move(out.image);
  rep.pipeline = simulate_pipeline(out.stats.samples_per_ray, cfg_.pipeline);
  rep.memory_cycles = mem.total_cycles();
  rep.sdram_hit_rate = mem.hit_rate();
  rep.sample_fraction = out.stats.sample_fraction(volume_.voxel_count());
  rep.efficiency = rep.pipeline.efficiency();

  // Frame time: the logic pipeline and the memory system run
  // concurrently; the slower one sets the pace.
  // Perspective rays need a perspective-correct divide per sample; the
  // era's iterative divider units issue one result every other clock, so
  // the logic pipeline runs at half rate (the §3.4 "factor of about 2").
  const double issue_penalty = perspective ? 2.0 : 1.0;
  auto fps_for = [&](double logic_mhz, double memory_mhz) {
    const double logic_s = static_cast<double>(rep.pipeline.cycles) *
                           issue_penalty / (logic_mhz * 1e6);
    const double memory_s = static_cast<double>(rep.memory_cycles) /
                            cfg_.memory_reuse / (memory_mhz * 1e6);
    const double frame_s = std::max(logic_s, memory_s);
    return frame_s > 0.0 ? 1.0 / frame_s : 0.0;
  };
  rep.fps_tech = fps_for(cfg_.memory_clock_mhz, cfg_.memory_clock_mhz);
  rep.fps_fpga = fps_for(cfg_.logic_clock_mhz, cfg_.memory_clock_mhz);

  if (bound()) {
    // One compute transaction for the logic pipeline and one SDRAM
    // transaction for the voxel traffic, both starting when the previous
    // frame finished; the frame ends at the slower of the two.
    const std::string tag = "frame " + std::to_string(frame_index_++) + " " +
                            rep.view + "/" + rep.transfer;
    const auto logic_ps = static_cast<util::Picoseconds>(std::llround(
        static_cast<double>(rep.pipeline.cycles) * issue_penalty *
        1e6 / cfg_.logic_clock_mhz));
    const auto memory_ps = static_cast<util::Picoseconds>(std::llround(
        static_cast<double>(rep.memory_cycles) / cfg_.memory_reuse *
        1e6 / cfg_.memory_clock_mhz));
    const sim::Transaction& logic =
        timeline_->post(track_, sim::TxnKind::kCompute, "pipeline " + tag,
                        pipeline_resource_, cursor_, logic_ps);
    const sim::Transaction& memory = timeline_->post(
        track_, sim::TxnKind::kSdramBurst, "voxels " + tag, memory_resource_,
        cursor_, memory_ps, rep.memory_cycles * 8);
    cursor_ = std::max(logic.end, memory.end);
  }
  return rep;
}

void FpgaVolumeRenderer::bind(sim::Timeline& timeline,
                              const std::string& name) {
  timeline_ = &timeline;
  track_ = timeline.add_track(name);
  pipeline_resource_ = timeline.add_resource(name + "/pipeline");
  memory_resource_ = timeline.add_resource(name + "/sdram");
  cursor_ = 0;
  frame_index_ = 0;
}

double FpgaVolumeRenderer::volumepro_fps(std::int64_t voxels,
                                         double mvoxels_per_s) {
  ATLANTIS_CHECK(voxels > 0, "empty volume");
  return mvoxels_per_s * 1e6 / static_cast<double>(voxels);
}

}  // namespace atlantis::volren
