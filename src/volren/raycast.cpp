#include "volren/raycast.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>

#include "util/bitops.hpp"
#include "util/status.hpp"
#include "volren/interp_core.hpp"

namespace atlantis::volren {
namespace {

/// Samples through the hardware's fixed-point trilinear datapath.
double sample_quantized(const Volume& vol, double x, double y, double z) {
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const int z0 = static_cast<int>(std::floor(z));
  std::array<std::uint8_t, 8> corners{};
  for (int c = 0; c < 8; ++c) {
    corners[static_cast<std::size_t>(c)] =
        vol.clamped(x0 + (c & 1), y0 + ((c >> 1) & 1), z0 + ((c >> 2) & 1));
  }
  const auto frac = [](double v, int lo) {
    return static_cast<std::uint8_t>(
        std::clamp((v - lo) * 256.0, 0.0, 255.0));
  };
  return trilinear_fixed(corners, frac(x, x0), frac(y, y0), frac(z, z0));
}

}  // namespace

OccupancyGrid::OccupancyGrid(const Volume& vol, const TransferFunction& tf,
                             int block_size)
    : block_(block_size) {
  ATLANTIS_CHECK(block_size > 0, "block size must be positive");
  bx_ = (vol.nx() + block_ - 1) / block_;
  by_ = (vol.ny() + block_ - 1) / block_;
  bz_ = (vol.nz() + block_ - 1) / block_;
  flags_.assign(static_cast<std::size_t>(bx_) * by_ * bz_, 0);
  for (int bz = 0; bz < bz_; ++bz) {
    for (int by = 0; by < by_; ++by) {
      for (int bx = 0; bx < bx_; ++bx) {
        // Max value over the block plus a one-voxel apron (interpolation
        // reaches into neighbouring blocks).
        std::uint8_t vmax = 0;
        const int x0 = bx * block_ - 1, x1 = (bx + 1) * block_;
        const int y0 = by * block_ - 1, y1 = (by + 1) * block_;
        const int z0 = bz * block_ - 1, z1 = (bz + 1) * block_;
        for (int z = std::max(0, z0); z <= std::min(vol.nz() - 1, z1); ++z) {
          for (int y = std::max(0, y0); y <= std::min(vol.ny() - 1, y1); ++y) {
            for (int x = std::max(0, x0); x <= std::min(vol.nx() - 1, x1);
                 ++x) {
              vmax = std::max(vmax, vol.at(x, y, z));
            }
          }
        }
        const bool contributes = tf.max_opacity(vmax) > 0.0;
        flags_[(static_cast<std::size_t>(bz) * by_ + by) * bx_ + bx] =
            contributes ? 1 : 0;
      }
    }
  }
}

bool OccupancyGrid::occupied(double x, double y, double z) const {
  const int bx = static_cast<int>(x) / block_;
  const int by = static_cast<int>(y) / block_;
  const int bz = static_cast<int>(z) / block_;
  if (bx < 0 || bx >= bx_ || by < 0 || by >= by_ || bz < 0 || bz >= bz_) {
    return false;
  }
  return flags_[(static_cast<std::size_t>(bz) * by_ + by) * bx_ + bx] != 0;
}

namespace {

/// Slab intersection of a ray with the volume bounding box.
/// Returns false if the ray misses.
bool intersect_box(const Ray& r, double nx, double ny, double nz,
                   double& t0, double& t1) {
  t0 = 0.0;
  t1 = std::numeric_limits<double>::infinity();
  const double origin[3] = {r.origin.x, r.origin.y, r.origin.z};
  const double dir[3] = {r.dir.x, r.dir.y, r.dir.z};
  const double hi[3] = {nx - 1.0, ny - 1.0, nz - 1.0};
  for (int axis = 0; axis < 3; ++axis) {
    if (std::fabs(dir[axis]) < 1e-12) {
      if (origin[axis] < 0.0 || origin[axis] > hi[axis]) return false;
      continue;
    }
    double ta = (0.0 - origin[axis]) / dir[axis];
    double tb = (hi[axis] - origin[axis]) / dir[axis];
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
  }
  return t0 <= t1;
}

}  // namespace

RenderOutput render(const Volume& vol, const TransferFunction& tf,
                    const Camera& cam, const RenderParams& params,
                    const SampleHook& hook) {
  ATLANTIS_CHECK(params.step > 0.0, "sample step must be positive");
  RenderOutput out{util::Image<std::uint8_t>(cam.width(), cam.height()),
                   RenderStats{}};
  std::unique_ptr<OccupancyGrid> grid;
  if (params.space_skipping) {
    grid = std::make_unique<OccupancyGrid>(vol, tf, params.skip_block);
  }
  out.stats.samples_per_ray.reserve(
      static_cast<std::size_t>(cam.width()) * cam.height());

  for (int py = 0; py < cam.height(); ++py) {
    for (int px = 0; px < cam.width(); ++px) {
      const Ray ray = cam.ray(px, py);
      ++out.stats.rays;
      std::uint32_t ray_samples = 0;
      double accum = 0.0;          // composited intensity
      double transmittance = 1.0;  // remaining light

      double t0 = 0.0, t1 = 0.0;
      if (intersect_box(ray, vol.nx(), vol.ny(), vol.nz(), t0, t1)) {
        const int block =
            params.space_skipping ? grid->block_size() : 0;
        for (double t = t0; t <= t1; t += params.step) {
          const double x = ray.origin.x + ray.dir.x * t;
          const double y = ray.origin.y + ray.dir.y * t;
          const double z = ray.origin.z + ray.dir.z * t;
          if (params.space_skipping && !grid->occupied(x, y, z)) {
            // Jump to the next block boundary along the ray.
            const double skip =
                std::max(params.step, static_cast<double>(block) * 0.5);
            out.stats.skipped_steps += static_cast<std::uint64_t>(
                skip / params.step);
            t += skip - params.step;
            continue;
          }
          ++out.stats.samples;
          ++ray_samples;
          if (hook) hook(x, y, z);
          const double value = params.quantized_datapath
                                   ? sample_quantized(vol, x, y, z)
                                   : vol.sample(x, y, z);
          // The gradient (six more interpolations) is only needed for
          // shading, so samples that classify to zero opacity skip it —
          // the same short-circuit the hardware classification stage has.
          Classified c{};
          if (tf.max_opacity(value) > 0.0) {
            c = tf.classify(value, vol.gradient(x, y, z).norm());
          }
          if (c.opacity > 0.0) {
            // Front-to-back compositing, opacity corrected for step size.
            const double alpha =
                1.0 - std::pow(1.0 - c.opacity, params.step);
            accum += transmittance * alpha * c.intensity;
            transmittance *= 1.0 - alpha;
            if (params.early_termination &&
                transmittance < params.termination_threshold) {
              ++out.stats.terminated_rays;
              break;
            }
          }
        }
      }
      out.stats.samples_per_ray.push_back(ray_samples);
      out.image(px, py) = static_cast<std::uint8_t>(
          std::clamp(accum * 255.0, 0.0, 255.0));
    }
  }
  return out;
}

}  // namespace atlantis::volren
