#include "volren/volume.hpp"

#include <algorithm>
#include <cmath>

namespace atlantis::volren {

double Vec3::norm() const { return std::sqrt(dot(*this)); }

Vec3 Vec3::normalized() const {
  const double n = norm();
  if (n == 0.0) return {};
  return {x / n, y / n, z / n};
}

Volume::Volume(int nx, int ny, int nz, std::uint8_t fill)
    : nx_(nx), ny_(ny), nz_(nz),
      data_(static_cast<std::size_t>(nx) * ny * nz, fill) {
  ATLANTIS_CHECK(nx > 0 && ny > 0 && nz > 0, "volume dims must be positive");
}

std::uint8_t Volume::clamped(int x, int y, int z) const {
  x = std::clamp(x, 0, nx_ - 1);
  y = std::clamp(y, 0, ny_ - 1);
  z = std::clamp(z, 0, nz_ - 1);
  return data_[(static_cast<std::size_t>(z) * ny_ + y) * nx_ + x];
}

double Volume::sample(double x, double y, double z) const {
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const int z0 = static_cast<int>(std::floor(z));
  const double fx = x - x0;
  const double fy = y - y0;
  const double fz = z - z0;
  // The eight corner fetches — exactly the 8-bank parallel read of the
  // SDRAM module.
  const double c000 = clamped(x0, y0, z0);
  const double c100 = clamped(x0 + 1, y0, z0);
  const double c010 = clamped(x0, y0 + 1, z0);
  const double c110 = clamped(x0 + 1, y0 + 1, z0);
  const double c001 = clamped(x0, y0, z0 + 1);
  const double c101 = clamped(x0 + 1, y0, z0 + 1);
  const double c011 = clamped(x0, y0 + 1, z0 + 1);
  const double c111 = clamped(x0 + 1, y0 + 1, z0 + 1);
  const double c00 = c000 + (c100 - c000) * fx;
  const double c10 = c010 + (c110 - c010) * fx;
  const double c01 = c001 + (c101 - c001) * fx;
  const double c11 = c011 + (c111 - c011) * fx;
  const double c0 = c00 + (c10 - c00) * fy;
  const double c1 = c01 + (c11 - c01) * fy;
  return c0 + (c1 - c0) * fz;
}

Vec3 Volume::gradient(double x, double y, double z) const {
  return {
      (sample(x + 1, y, z) - sample(x - 1, y, z)) * 0.5,
      (sample(x, y + 1, z) - sample(x, y - 1, z)) * 0.5,
      (sample(x, y, z + 1) - sample(x, y, z - 1)) * 0.5,
  };
}

Volume make_ct_phantom(int nx, int ny, int nz, std::uint64_t seed) {
  Volume v(nx, ny, nz);
  util::Rng rng(seed);
  const double cx = nx / 2.0;
  const double cy = ny / 2.0;
  const double cz = nz / 2.0;
  // Head axes: fill ~70% of the grid.
  const double ax = 0.38 * nx;
  const double ay = 0.42 * ny;
  const double az = 0.40 * nz;

  // A couple of dense inclusions (calcifications) inside the brain.
  struct Inclusion {
    double x, y, z, r;
  };
  std::vector<Inclusion> inclusions;
  for (int i = 0; i < 3; ++i) {
    inclusions.push_back({cx + rng.uniform(-0.2, 0.2) * nx,
                          cy + rng.uniform(-0.2, 0.2) * ny,
                          cz + rng.uniform(-0.2, 0.2) * nz,
                          rng.uniform(2.0, 5.0)});
  }

  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const double ex = (x - cx) / ax;
        const double ey = (y - cy) / ay;
        const double ez = (z - cz) / az;
        const double r = std::sqrt(ex * ex + ey * ey + ez * ez);
        std::uint8_t value = 0;  // air
        if (r < 1.0) {
          if (r > 0.92) {
            value = 220;  // skull shell (hard surface)
          } else {
            // Soft tissue with mild texture.
            value = static_cast<std::uint8_t>(
                std::clamp(90.0 + 8.0 * rng.normal(), 60.0, 120.0));
            // Ventricles: two small off-center ellipsoids of CSF.
            for (const double side : {-1.0, 1.0}) {
              const double vx2 = (x - (cx + side * 0.08 * nx)) / (0.06 * nx);
              const double vy2 = (y - cy) / (0.14 * ny);
              const double vz2 = (z - cz) / (0.10 * nz);
              if (vx2 * vx2 + vy2 * vy2 + vz2 * vz2 < 1.0) value = 40;
            }
            for (const auto& inc : inclusions) {
              const double dx = x - inc.x;
              const double dy = y - inc.y;
              const double dz = z - inc.z;
              if (dx * dx + dy * dy + dz * dz < inc.r * inc.r) value = 250;
            }
          }
        }
        v.set(x, y, z, value);
      }
    }
  }
  return v;
}

}  // namespace atlantis::volren
