// Classification: "sample points are classified with opacity or
// reflectivity according to gray values and gradient magnitude" (§3.2).
//
// A transfer function maps the interpolated gray value to opacity and
// emitted intensity; gradient magnitude modulates surface reflectivity
// (simple Phong-free headlight shading). Three opacity presets for soft
// tissue implement the paper's "three different levels of opacity".
#pragma once

#include <string>

namespace atlantis::volren {

struct Classified {
  double opacity = 0.0;    // per-sample alpha in [0, 1]
  double intensity = 0.0;  // emitted/reflected light in [0, 1]
};

class TransferFunction {
 public:
  /// Opacity assigned to soft tissue (0 = bone-only rendering) and to
  /// bone above `bone_iso`. The semi-transparent presets lower the bone
  /// opacity as well — that is what lets rays see *into* the skull, and
  /// why their sample counts (and rendering times) grow the way §3.4
  /// reports.
  TransferFunction(std::string name, double tissue_opacity,
                   double bone_opacity = 0.95, double bone_iso = 180.0);

  const std::string& name() const { return name_; }
  double tissue_opacity() const { return tissue_opacity_; }
  double bone_opacity() const { return bone_opacity_; }

  /// Classifies one sample (value in [0,255], gradient magnitude >= 0).
  Classified classify(double value, double gradient_mag) const;

  /// Opacity upper bound for a gray value: used by the empty-space
  /// data structure (a block is skippable if the bound is 0 for its
  /// whole value range).
  double max_opacity(double value) const;

 private:
  std::string name_;
  double tissue_opacity_;
  double bone_opacity_;
  double bone_iso_;
};

/// The paper's three soft-tissue opacity levels.
TransferFunction tf_opaque();          // bone surface only
TransferFunction tf_semi_low();        // faint soft tissue
TransferFunction tf_semi_high();       // strong soft tissue

}  // namespace atlantis::volren
