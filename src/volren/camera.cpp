#include "volren/camera.hpp"

#include <cmath>

#include "util/status.hpp"

namespace atlantis::volren {

const char* view_name(ViewDirection v) {
  switch (v) {
    case ViewDirection::kFrontal:
      return "frontal";
    case ViewDirection::kLateral:
      return "lateral";
    default:
      return "oblique";
  }
}

Camera::Camera(const Volume& vol, ViewDirection view, int image_width,
               int image_height, bool perspective, double zoom)
    : view_(view), width_(image_width), height_(image_height),
      perspective_(perspective) {
  ATLANTIS_CHECK(image_width > 0 && image_height > 0, "bad image size");
  ATLANTIS_CHECK(zoom >= 1.0, "zoom must be >= 1");
  const Vec3 center{vol.nx() / 2.0, vol.ny() / 2.0, vol.nz() / 2.0};
  const double extent =
      std::sqrt(static_cast<double>(vol.nx()) * vol.nx() +
                static_cast<double>(vol.ny()) * vol.ny() +
                static_cast<double>(vol.nz()) * vol.nz());

  Vec3 dir;
  switch (view) {
    case ViewDirection::kFrontal:
      dir = {0.0, 1.0, 0.0};
      break;
    case ViewDirection::kLateral:
      dir = {1.0, 0.0, 0.0};
      break;
    default:
      dir = Vec3{1.0, 1.0, 0.6}.normalized();
      break;
  }
  forward_ = dir;
  // Perspective eye close enough for a wide field of view (rays through
  // neighbouring pixels diverge measurably — the §3.4 perspective cost).
  eye_ = center - dir * (0.55 * extent);

  // Image plane basis perpendicular to the view direction.
  const Vec3 up = std::fabs(dir.z) > 0.9 ? Vec3{0, 1, 0} : Vec3{0, 0, 1};
  const Vec3 right = dir.cross(up).normalized();
  const Vec3 down = dir.cross(right).normalized();
  // Plane spans the volume diagonal (scaled down by the zoom framing).
  const double span_u = extent / zoom;
  const double span_v = extent / zoom * static_cast<double>(height_) / width_;
  du_ = right * (span_u / width_);
  dv_ = down * (span_v / height_);
  plane_origin_ =
      center - right * (span_u / 2.0) - down * (span_v / 2.0);
}

Ray Camera::ray(int px, int py) const {
  const Vec3 pixel =
      plane_origin_ + du_ * (px + 0.5) + dv_ * (py + 0.5);
  Ray r;
  if (perspective_) {
    r.origin = eye_;
    r.dir = (pixel - eye_).normalized();
  } else {
    r.origin = pixel - forward_ * 1.0e4;  // parallel rays from far away
    r.dir = forward_;
  }
  return r;
}

}  // namespace atlantis::volren
