// Ray generation: parallel and perspective cameras around the volume.
//
// §3.4 evaluates three viewing directions (frontal, lateral and oblique)
// in parallel projection, and notes that "perspective views reduce the
// rendering speed by a factor of about 2".
#pragma once

#include <string>

#include "volren/volume.hpp"

namespace atlantis::volren {

struct Ray {
  Vec3 origin;
  Vec3 dir;  // normalized
};

enum class ViewDirection { kFrontal, kLateral, kOblique };

const char* view_name(ViewDirection v);

class Camera {
 public:
  /// Builds a camera looking at the volume center from the given
  /// direction. The image plane spans the volume diagonal divided by
  /// `zoom`: zoom 1 guarantees every voxel projects inside the image,
  /// larger values frame the object (the paper's head renderings fill
  /// the 256x128 image; zoom ~1.8 reproduces that framing).
  Camera(const Volume& vol, ViewDirection view, int image_width,
         int image_height, bool perspective = false, double zoom = 1.0);

  /// Ray through pixel (px, py).
  Ray ray(int px, int py) const;

  int width() const { return width_; }
  int height() const { return height_; }
  bool perspective() const { return perspective_; }
  ViewDirection view() const { return view_; }

 private:
  ViewDirection view_;
  int width_;
  int height_;
  bool perspective_;
  Vec3 eye_;
  Vec3 plane_origin_;  // world position of pixel (0,0)
  Vec3 du_;            // world step per pixel in x
  Vec3 dv_;            // world step per pixel in y
  Vec3 forward_;
};

}  // namespace atlantis::volren
