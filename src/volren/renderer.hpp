// The ATLANTIS volume renderer: functional image, pipeline occupancy and
// memory timing combined into frame-rate predictions, plus the
// VolumePro-class brute-force baseline of the §3.4 comparison.
#pragma once

#include <string>

#include "sim/timeline.hpp"
#include "volren/camera.hpp"
#include "volren/memsim.hpp"
#include "volren/pipeline.hpp"
#include "volren/raycast.hpp"

namespace atlantis::volren {

struct FpgaRendererConfig {
  /// The achieved FPGA logic clock (">25 MHz", §3.4).
  double logic_clock_mhz = 25.0;
  /// The memory-technology clock of the paper's detailed simulations
  /// ("assuming 100 MHz devices").
  double memory_clock_mhz = 100.0;
  PipelineParams pipeline{};
  RenderParams render{};
  int image_width = 256;
  int image_height = 128;
  /// Camera framing; kPaperCameraZoom frames the head like the paper.
  double camera_zoom = 1.0;
  /// Memory-traffic reduction from the interpolation neighbourhood
  /// registers: consecutive samples of a 0.5-step ray share at least
  /// half of their eight voxel corners, which the datapath holds in
  /// registers instead of refetching. 1.0 disables the optimization;
  /// the paper-era pipelines achieved ~2.
  double memory_reuse = 1.0;
};

struct FrameReport {
  std::string view;
  std::string transfer;
  bool perspective = false;
  RenderStats stats;
  PipelineResult pipeline;
  std::uint64_t memory_cycles = 0;
  double sdram_hit_rate = 0.0;
  double sample_fraction = 0.0;  // samples / voxels
  double efficiency = 0.0;       // pipeline issue efficiency
  /// Frame rate with logic and memory both at the 100 MHz technology
  /// clock (the paper's simulation numbers)...
  double fps_tech = 0.0;
  /// ...and with the achieved >25 MHz FPGA logic clock.
  double fps_fpga = 0.0;
  util::Image<std::uint8_t> image;
};

class FpgaVolumeRenderer {
 public:
  FpgaVolumeRenderer(const Volume& volume, FpgaRendererConfig cfg = {});

  /// Renders one frame and produces the full timing report.
  FrameReport render_frame(const TransferFunction& tf, ViewDirection view,
                           bool perspective = false);

  const FpgaRendererConfig& config() const { return cfg_; }
  const Volume& volume() const { return volume_; }

  /// Binds the renderer to a timeline: every render_frame() additionally
  /// posts one logic-pipeline transaction and one overlapping SDRAM
  /// transaction (the two run concurrently; the slower one paces the
  /// frame, exactly the fps_fpga model). Frames chain sequentially.
  void bind(sim::Timeline& timeline, const std::string& name = "volren");
  bool bound() const { return timeline_ != nullptr; }
  sim::Timeline* timeline() const { return timeline_; }
  sim::TrackId track() const { return track_; }

  /// VolumePro-class baseline: a fixed-function engine that processes
  /// every voxel every frame. The real board resampled 256^3 at 30 Hz,
  /// i.e. ~500 Mvoxel/s.
  static double volumepro_fps(std::int64_t voxels,
                              double mvoxels_per_s = 500.0);

 private:
  const Volume& volume_;
  FpgaRendererConfig cfg_;
  sim::Timeline* timeline_ = nullptr;
  sim::TrackId track_;
  sim::ResourceId pipeline_resource_;
  sim::ResourceId memory_resource_;
  util::Picoseconds cursor_ = 0;
  int frame_index_ = 0;
};

}  // namespace atlantis::volren
