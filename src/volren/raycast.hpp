// The ray-processing pipeline of §3.2, in its two variants:
//
//   * brute force — every ray samples every step through the volume
//     bounding box (this is the VolumePro-class baseline: no algorithmic
//     optimization), and
//   * optimized — "regions with no contribution are skipped, and
//     processing is aborted as soon as the remaining intensity drops
//     under an adjustable threshold": empty-space skipping over a
//     min/max block grid plus early ray termination on transmittance.
//
// The renderer is the functional model; per-sample callbacks feed the
// SDRAM timing model and the per-ray sample counts feed the pipeline
// stall simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/image.hpp"
#include "volren/camera.hpp"
#include "volren/transfer.hpp"
#include "volren/volume.hpp"

namespace atlantis::volren {

/// Block grid of per-block value ranges; a block whose whole value range
/// classifies to zero opacity is skippable.
class OccupancyGrid {
 public:
  OccupancyGrid(const Volume& vol, const TransferFunction& tf,
                int block_size = 4);

  int block_size() const { return block_; }
  /// True if the block containing voxel (x,y,z) can contribute.
  bool occupied(double x, double y, double z) const;

 private:
  int block_;
  int bx_, by_, bz_;
  std::vector<std::uint8_t> flags_;
};

struct RenderParams {
  double step = 1.0;                   // sample spacing in voxel units
  bool space_skipping = true;
  bool early_termination = true;
  double termination_threshold = 0.05; // remaining transmittance cutoff
  /// Granularity of the empty-space data structure. The paper's system
  /// used coarse octree-level blocks (16 voxels reproduces its 10-15% /
  /// 25-40% sample fractions); small experiments default to 4 for tight
  /// skipping.
  int skip_block = 4;
  /// Interpolate through the gate-level datapath's arithmetic (8-bit
  /// fractions, truncating lerp planes — see interp_core) instead of
  /// double precision. The image is then exactly what the hardware
  /// produces.
  bool quantized_datapath = false;
};

/// The sampling setup of the paper's detailed simulations: 2x oversampled
/// rays and octree-block skipping. Pair with a camera zoom of ~1.8 so the
/// head fills the 256x128 image as in the paper's figures.
inline RenderParams paper_render_params() {
  RenderParams p;
  p.step = 0.5;
  p.skip_block = 8;
  return p;
}
inline constexpr double kPaperCameraZoom = 1.8;

struct RenderStats {
  std::uint64_t rays = 0;
  std::uint64_t samples = 0;           // interpolated + classified samples
  std::uint64_t skipped_steps = 0;     // steps jumped over empty blocks
  std::uint64_t terminated_rays = 0;   // rays cut by early termination
  std::vector<std::uint32_t> samples_per_ray;

  /// The paper's "number of sample points ... of all voxels" metric.
  double sample_fraction(std::int64_t voxels) const {
    return voxels ? static_cast<double>(samples) /
                        static_cast<double>(voxels)
                  : 0.0;
  }
};

struct RenderOutput {
  util::Image<std::uint8_t> image;
  RenderStats stats;
};

/// Per-sample observer: continuous sample position (voxel units).
/// Used to drive the SDRAM access model.
using SampleHook = std::function<void(double, double, double)>;

RenderOutput render(const Volume& vol, const TransferFunction& tf,
                    const Camera& cam, const RenderParams& params,
                    const SampleHook& hook = {});

}  // namespace atlantis::volren
