// SDRAM access model for the rendering memory system.
//
// The volume lives in the 8-bank SDRAM mezzanine (§2.1). Voxels are
// interleaved by coordinate parity, so the 8 corners of every trilinear
// neighbourhood land in 8 *different* banks and are fetched in parallel —
// this is the whole reason the module has "8 simultaneously accessible
// banks". A sample costs one memory cycle when all banks hit their open
// rows and the worst-case bank penalty otherwise; axis-aligned marching
// stays row-resident while oblique and perspective rays change rows more
// often, which is where the perspective slowdown comes from.
#pragma once

#include <cstdint>

#include "hw/sdram.hpp"
#include "volren/volume.hpp"

namespace atlantis::volren {

class VoxelMemory {
 public:
  VoxelMemory(const Volume& vol, hw::SdramConfig cfg = {});

  /// Accounts one trilinear sample at a continuous position; returns the
  /// memory cycles it cost (max over the 8 parallel bank accesses).
  std::uint64_t sample_access(double x, double y, double z);

  std::uint64_t total_cycles() const { return cycles_; }
  std::uint64_t total_samples() const { return samples_; }
  double hit_rate() const {
    const std::uint64_t accesses = samples_ * 8;
    return accesses ? static_cast<double>(hits_) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
  double mean_cycles_per_sample() const {
    return samples_ ? static_cast<double>(cycles_) /
                          static_cast<double>(samples_)
                    : 0.0;
  }
  void reset();

 private:
  hw::SdramConfig cfg_;
  int half_nx_, half_ny_;
  std::int64_t rows_per_bank_words_;  // voxels per row
  std::int64_t open_row_[8];
  std::uint64_t cycles_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t hits_ = 0;
  int nx_, ny_, nz_;
};

}  // namespace atlantis::volren
