#include "volren/memsim.hpp"

#include <algorithm>
#include <cmath>

namespace atlantis::volren {

VoxelMemory::VoxelMemory(const Volume& vol, hw::SdramConfig cfg)
    : cfg_(cfg), nx_(vol.nx()), ny_(vol.ny()), nz_(vol.nz()) {
  half_nx_ = (nx_ + 1) / 2;
  half_ny_ = (ny_ + 1) / 2;
  rows_per_bank_words_ = cfg_.row_bytes;  // one byte per voxel
  reset();
}

void VoxelMemory::reset() {
  for (auto& r : open_row_) r = -1;
  cycles_ = 0;
  samples_ = 0;
  hits_ = 0;
}

std::uint64_t VoxelMemory::sample_access(double x, double y, double z) {
  const int x0 = std::clamp(static_cast<int>(std::floor(x)), 0, nx_ - 2);
  const int y0 = std::clamp(static_cast<int>(std::floor(y)), 0, ny_ - 2);
  const int z0 = std::clamp(static_cast<int>(std::floor(z)), 0, nz_ - 2);
  std::uint64_t worst = 1;
  for (int corner = 0; corner < 8; ++corner) {
    const int cx = x0 + (corner & 1);
    const int cy = y0 + ((corner >> 1) & 1);
    const int cz = z0 + ((corner >> 2) & 1);
    // Parity interleave: the 8 neighbourhood corners always map to the
    // 8 distinct banks.
    const int bank = (cx & 1) | ((cy & 1) << 1) | ((cz & 1) << 2);
    const std::int64_t addr =
        (static_cast<std::int64_t>(cz >> 1) * half_ny_ + (cy >> 1)) *
            half_nx_ +
        (cx >> 1);
    const std::int64_t row = addr / rows_per_bank_words_;
    if (open_row_[bank] == row) {
      ++hits_;
    } else {
      const bool was_open = open_row_[bank] >= 0;
      open_row_[bank] = row;
      const std::uint64_t penalty =
          static_cast<std::uint64_t>((was_open ? cfg_.t_rp : 0) + cfg_.t_rcd +
                                     cfg_.t_cas) +
          1;
      worst = std::max(worst, penalty);
    }
  }
  ++samples_;
  cycles_ += worst;
  return worst;
}

}  // namespace atlantis::volren
