#include "volren/interp_core.hpp"

#include <vector>

#include "chdl/builder.hpp"

namespace atlantis::volren {
namespace {

using chdl::Design;
using chdl::Wire;

/// (a*(256-f) + b*f) >> 8, all unsigned; a/b are 8-bit, f is 8-bit.
Wire lerp_unit(Design& d, Wire a, Wire b, Wire f) {
  // 256 - f as a 9-bit value.
  const Wire f9 = d.resize(f, 9);
  const Wire c256 = d.constant(9, 256);
  const Wire inv = d.sub(c256, f9);
  const Wire pa = chdl::multiply(d, a, inv);  // 8 x 9 -> 17 bits
  const Wire pb = chdl::multiply(d, b, f9);
  const Wire sum = d.add(d.resize(pa, 18), d.resize(pb, 18));
  return d.slice(sum, 8, 8);  // >> 8, keep 8 bits
}

}  // namespace

InterpCoreLayout build_trilinear_core(chdl::Design& d) {
  Wire c[8];
  for (int i = 0; i < 8; ++i) {
    c[i] = d.input("c" + std::to_string(i), 8);
  }
  const Wire fx = d.input("fx", 8);
  const Wire fy = d.input("fy", 8);
  const Wire fz = d.input("fz", 8);

  // Plane 1: four x-lerps, registered.
  Design::Scope scope(d, "trilin");
  Wire x_regs[4];
  Wire fy_d1{}, fz_d1{};
  {
    for (int i = 0; i < 4; ++i) {
      const Wire lo = c[2 * i];      // x=0 corner
      const Wire hi = c[2 * i + 1];  // x=1 corner
      x_regs[i] = d.reg("x" + std::to_string(i), lerp_unit(d, lo, hi, fx));
    }
    fy_d1 = d.reg("fy_d1", fy);
    fz_d1 = d.reg("fz_d1", fz);
  }
  // Plane 2: two y-lerps, registered.
  const Wire y0 = d.reg("y0", lerp_unit(d, x_regs[0], x_regs[1], fy_d1));
  const Wire y1 = d.reg("y1", lerp_unit(d, x_regs[2], x_regs[3], fy_d1));
  const Wire fz_d2 = d.reg("fz_d2", fz_d1);
  // Plane 3: the z-lerp, registered output.
  const Wire out = d.reg("value_q", lerp_unit(d, y0, y1, fz_d2));
  d.output("value", out);
  return InterpCoreLayout{};
}

std::uint8_t trilinear_fixed(const std::array<std::uint8_t, 8>& corners,
                             std::uint8_t fx, std::uint8_t fy,
                             std::uint8_t fz) {
  auto lerp = [](std::uint32_t a, std::uint32_t b, std::uint32_t f) {
    return static_cast<std::uint32_t>((a * (256 - f) + b * f) >> 8);
  };
  const std::uint32_t x0 = lerp(corners[0], corners[1], fx);
  const std::uint32_t x1 = lerp(corners[2], corners[3], fx);
  const std::uint32_t x2 = lerp(corners[4], corners[5], fx);
  const std::uint32_t x3 = lerp(corners[6], corners[7], fx);
  const std::uint32_t y0 = lerp(x0, x1, fy);
  const std::uint32_t y1 = lerp(x2, x3, fy);
  return static_cast<std::uint8_t>(lerp(y0, y1, fz));
}

}  // namespace atlantis::volren
