#include "volren/transfer.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace atlantis::volren {

TransferFunction::TransferFunction(std::string name, double tissue_opacity,
                                   double bone_opacity, double bone_iso)
    : name_(std::move(name)), tissue_opacity_(tissue_opacity),
      bone_opacity_(bone_opacity), bone_iso_(bone_iso) {
  ATLANTIS_CHECK(tissue_opacity >= 0.0 && tissue_opacity <= 1.0,
                 "tissue opacity out of range");
  ATLANTIS_CHECK(bone_opacity >= 0.0 && bone_opacity <= 1.0,
                 "bone opacity out of range");
}

Classified TransferFunction::classify(double value, double gradient_mag) const {
  Classified c;
  if (value < 20.0) {
    return c;  // air: fully transparent
  }
  if (value >= bone_iso_) {
    c.opacity = bone_opacity_;
  } else {
    c.opacity = tissue_opacity_;
  }
  if (c.opacity <= 0.0) return Classified{};
  // Headlight shading: gradient magnitude highlights surfaces; a small
  // ambient floor keeps homogeneous tissue visible.
  const double g = std::min(1.0, gradient_mag / 64.0);
  c.intensity = std::clamp(0.25 + 0.75 * g, 0.0, 1.0) *
                std::min(1.0, value / 255.0 + 0.3);
  return c;
}

double TransferFunction::max_opacity(double value) const {
  if (value < 20.0) return 0.0;
  if (value >= bone_iso_) return bone_opacity_;
  return tissue_opacity_;
}

TransferFunction tf_opaque() {
  // Hard bone surface, invisible tissue: the fast case.
  return TransferFunction("opaque", 0.0, 0.95);
}
TransferFunction tf_semi_low() {
  // Faint tissue; bone translucent enough to see major structures.
  return TransferFunction("semi-low", 0.02, 0.40);
}
TransferFunction tf_semi_high() {
  // Strong tissue rendering with glassy bone: rays traverse the head.
  return TransferFunction("semi-high", 0.03, 0.12);
}

}  // namespace atlantis::volren
