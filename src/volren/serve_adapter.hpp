// JobService adapter for volume rendering: one frame per job.
#pragma once

#include <string>

#include "serve/job.hpp"
#include "volren/renderer.hpp"

namespace atlantis::volren {

/// Builds a serving-layer job that renders one frame. The volume is
/// captured by reference and must outlive the service run; the transfer
/// function and view are captured by value. Each invocation constructs
/// its own (unbound) FpgaVolumeRenderer, so concurrent evaluation on the
/// worker pool shares no mutable state. The volume is board-resident, so
/// only the finished image crosses PCI.
serve::JobSpec make_frame_job(const Volume& volume, FpgaRendererConfig cfg,
                              TransferFunction tf, ViewDirection view,
                              std::string tenant, std::string config,
                              util::Picoseconds arrival = 0);

}  // namespace atlantis::volren
