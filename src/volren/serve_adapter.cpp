#include "volren/serve_adapter.hpp"

#include <cmath>

namespace atlantis::volren {

serve::JobSpec make_frame_job(const Volume& volume, FpgaRendererConfig cfg,
                              TransferFunction tf, ViewDirection view,
                              std::string tenant, std::string config,
                              util::Picoseconds arrival) {
  serve::JobSpec spec;
  spec.tenant = std::move(tenant);
  spec.kind = serve::JobKind::kVolrenFrame;
  spec.config = std::move(config);
  spec.arrival = arrival;
  spec.work = [&volume, cfg, tf = std::move(tf), view]() {
    serve::JobOutcome out;
    FpgaVolumeRenderer renderer(volume, cfg);
    const FrameReport frame = renderer.render_frame(tf, view);
    out.checksum = serve::digest(frame.image.data());
    out.value = frame.fps_fpga;
    out.detail = std::string(view_name(view)) + " frame, " + tf.name();
    // The frame time at the achieved FPGA clock is the job's compute.
    out.compute_time =
        frame.fps_fpga > 0.0
            ? static_cast<util::Picoseconds>(std::llround(1e12 /
                                                          frame.fps_fpga))
            : 0;
    out.dma_in_bytes = 0;  // volume already resident on the mezzanine
    out.dma_out_bytes = static_cast<std::uint64_t>(frame.image.width()) *
                        static_cast<std::uint64_t>(frame.image.height());
    return out;
  };
  return spec;
}

}  // namespace atlantis::volren
