// Volume data set: dense 8-bit voxel grid with trilinear sampling and
// central-difference gradients, plus a procedural CT-like phantom.
//
// The paper's detailed simulations use "a CT data set with 256*256*128
// voxels" with hard surfaces (bone), soft tissue and empty space. The
// scanner data is not available, so make_ct_phantom() builds a head-like
// phantom with the same material mix: an ellipsoidal skull shell over
// soft tissue with ventricle cavities, embedded in air. DESIGN.md records
// the substitution.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace atlantis::volren {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm() const;
  Vec3 normalized() const;
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
};

class Volume {
 public:
  Volume(int nx, int ny, int nz, std::uint8_t fill = 0);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::int64_t voxel_count() const {
    return static_cast<std::int64_t>(nx_) * ny_ * nz_;
  }

  std::uint8_t at(int x, int y, int z) const {
    return data_[index(x, y, z)];
  }
  void set(int x, int y, int z, std::uint8_t v) { data_[index(x, y, z)] = v; }

  /// Clamped voxel fetch (out-of-grid reads the nearest voxel).
  std::uint8_t clamped(int x, int y, int z) const;

  /// Trilinear interpolation at a continuous position in voxel units.
  double sample(double x, double y, double z) const;

  /// Central-difference gradient (the classification input).
  Vec3 gradient(double x, double y, double z) const;

  const std::vector<std::uint8_t>& data() const { return data_; }
  std::vector<std::uint8_t>& data() { return data_; }

 private:
  std::size_t index(int x, int y, int z) const {
    ATLANTIS_CHECK(x >= 0 && x < nx_ && y >= 0 && y < ny_ && z >= 0 && z < nz_,
                   "voxel index out of range");
    return (static_cast<std::size_t>(z) * ny_ + y) * nx_ + x;
  }

  int nx_, ny_, nz_;
  std::vector<std::uint8_t> data_;
};

/// CT-like head phantom. Values: air 0, soft tissue ~90 with texture,
/// ventricles ~40, skull shell ~220, a few dense inclusions ~250.
Volume make_ct_phantom(int nx, int ny, int nz, std::uint64_t seed = 0xC7);

}  // namespace atlantis::volren
