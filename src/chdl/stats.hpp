// Netlist resource estimation.
//
// ATLANTIS sizes designs against FPGAs "with more than 100k gates and
// 400 I/O pins per chip" (ORCA 3T125: ~186k average gates, 422 used I/O
// on the ACB). This report counts gate equivalents with the conventional
// marketing-gate model of the era so that fit checks against those
// published budgets are meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chdl/design.hpp"

namespace atlantis::chdl {

struct NetlistStats {
  std::string design_name;
  std::int64_t components = 0;
  std::int64_t gate_equivalents = 0;  // combinational + register gates
  std::int64_t flipflops = 0;         // register bits
  std::int64_t lut4_estimate = 0;     // ~4 gate equivalents per LUT4
  std::int64_t ram_bits = 0;          // block/external memory bits
  std::int64_t io_pins = 0;           // top-level port bits
  std::int64_t wires = 0;
  std::int64_t comb_components = 0;   // evaluated per event-driven pass
  std::int64_t comb_levels = 0;       // levelization depth (critical path)
  double mean_fanout = 0.0;           // avg comb consumers per driven wire

  std::string to_string() const;
};

/// Walks the netlist and accumulates the resource model:
///   and/or/not: 1 gate/bit        xor: 3 gates/bit
///   mux2: 3 gates/bit             add/sub: 6 gates/bit
///   eq: 3 gates/bit + tree        ult: 6 gates/bit
///   reductions: 1-3 gates/bit     register: 8 gates/bit (counted as FF too)
///   slice/concat/const shifts: 0 (wiring only)
///   RAM ports: width gates of addressing/steering; contents in ram_bits
///
/// analyze() always sees the netlist as elaborated — the simulator-side
/// optimizer (chdl/optimize.hpp) never mutates the Design, so gate/fit
/// budget checks (bench_a4) are unaffected by simulation options.
NetlistStats analyze(const Design& design);

/// Live-op accounting for one optimizer pass (see chdl/optimize.hpp).
/// `ops_before`/`ops_after` count combinational ops still bound for the
/// simulator's op tape when the pass starts/finishes (a pass's "after"
/// includes the dead-logic sweep that cleans up its orphans);
/// `rewrites` counts the pass's own transformations (folds + identity
/// aliases, removals, merges, fusions respectively).
struct OptimizePassStats {
  std::string name;
  std::int64_t ops_before = 0;
  std::int64_t ops_after = 0;
  std::int64_t rewrites = 0;
};

/// Per-pass op counts for one optimizer run, reported in pipeline order
/// (fold, dce, cse, fuse).
struct OptimizeReport {
  std::vector<OptimizePassStats> passes;
  std::int64_t ops_before = 0;      // comb ops entering the pipeline
  std::int64_t ops_after = 0;       // comb ops compiled onto the tape
  std::int64_t wires_aliased = 0;   // wires forwarded to a representative
  std::int64_t wires_folded = 0;    // wires pinned to a constant

  const OptimizePassStats* pass(const std::string& name) const;
  std::string to_string() const;
};

}  // namespace atlantis::chdl
