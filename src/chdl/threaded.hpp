// Threaded-code execution backend for the CHDL op tape.
//
// The event-driven engine (chdl/sim.cpp) pays a double switch
// (op.fused, then op.kind) plus worklist bookkeeping for every single
// op it touches, and its edge commit sweeps every sequential component
// whether or not anything changed. This backend removes both costs,
// QEMU-TCG-style, while keeping the interpreter bit-identical as the
// differential reference:
//
//  * flat opcode space — the tape is re-decoded once into TOp records
//    whose single `code` byte covers plain, single-word-fast-path and
//    peephole-fused forms alike, so dispatch is one indirection;
//  * computed-goto dispatch — on GCC/Clang each opcode's handler jumps
//    straight to the next op through a `&&label` table (one indirect
//    branch per op, predicted per-opcode); elsewhere, or when
//    ATLANTIS_THREADED_FORCE_SWITCH is defined, a portable switch loop
//    executes the identical handler bodies;
//  * region superops — chdl/region.hpp partitions the tape into
//    single-entry chains executed as straight-line blocks: no per-op
//    queue flags, one change check at the region outputs (diffed
//    against a shadow copy of the last value each consumer saw);
//  * an event-driven edge tape — sequential components are compiled
//    into SeqOp records and latched only when marked dirty by a fanin
//    change (registers are idempotent once their inputs are stable; an
//    asserted RAM write port re-arms itself; a RAM word change re-arms
//    the RAM's read ports). A quiescent design commits an edge in O(1).
//
// Scheduling stays deterministic: regions drain level-by-level exactly
// like the per-op worklist, and dirty sequential components commit in
// component-creation order, preserving the reference's last-write-wins
// ordering for multi-port RAM writes.
#pragma once

#include <cstdint>
#include <vector>

#include "chdl/design.hpp"
#include "chdl/region.hpp"

namespace atlantis::chdl {

class Simulator;

/// True when this build dispatches through the computed-goto label
/// table; false on non-GNU compilers or when the portable switch loop
/// was forced with -DATLANTIS_THREADED_FORCE_SWITCH (CI builds both).
bool threaded_uses_computed_goto();

/// Flat opcode space: one byte selects the handler directly. Order must
/// match the label table in threaded.cpp (static_assert'd there).
enum class TCode : std::uint8_t {
  kEnd = 0,    // region terminator
  kWide,       // multi-word / general op: delegate to Simulator::eval_comp
  // Single-word CompKind fast paths (semantics of Simulator::eval_op).
  kNot,
  kAnd,
  kOr,
  kXor,
  kMux,
  kAdd,
  kSub,
  kEq,
  kUlt,
  kReduceAnd,
  kReduceOr,
  kReduceXor,
  kSlice,
  kConcat2,
  kShl,
  kShr,
  // Peephole-fused forms (chdl/optimize.hpp FusedOp).
  kAndNot,
  kOrNot,
  kEqImm,
  kNeImm,
  kUltImm,
  kImmUlt,
  kAddImm,
  kSubImm,
  kAndImm,
  kOrImm,
  kXorImm,
  kSliceImm,
  kCount_,
};

/// One decoded op. Offsets index the simulator's flat value array; no
/// Component/Wire chasing on the execution path except kWide.
struct TOp {
  TCode code = TCode::kEnd;
  std::int32_t in0 = 0, in1 = 0, in2 = 0;  // input word offsets
  std::int32_t out = 0;                    // output word offset
  std::int32_t a = 0;        // shift amount / slice lo / concat lo width
  std::int32_t comp = -1;    // kWide: component index
  std::uint64_t mask = ~std::uint64_t{0};  // output width mask
  std::uint64_t imm = 0;     // fused immediate; kReduceAnd input mask
};

/// The compiled backend for one Simulator. Owns the region plan, the
/// decoded superop blocks, the shadow value copy and the sequential
/// edge tape; the Simulator forwards poke/eval/step/write_ram events
/// here when its mode is EvalMode::kThreaded.
class ThreadedBackend {
 public:
  ThreadedBackend(Simulator& sim, const RegionBuildOptions& opts);

  /// Marks everything dirty: every region queued, every sequential
  /// component armed for its next edge. Used on mode switches / reset.
  void mark_all();
  /// A wire's value changed (poke or sequential commit): queue its
  /// consumer regions and arm its sequential consumers.
  void mark_wire(std::int32_t wire_id);
  /// Drains the region worklist level by level.
  void eval();
  /// Latches dirty registers / RAM ports on `clock`, then marks the
  /// fanout of every output that changed.
  void commit_edge(ClockId clock);
  /// RAM contents changed behind the design's back (Simulator::write_ram):
  /// re-arm the RAM's read ports.
  void note_ram_written(std::int32_t ram);

  const RegionPlan& plan() const { return plan_; }

 private:
  /// One compiled sequential component (register or RAM port).
  struct SeqOp {
    enum Kind : std::uint8_t { kReg1, kRegN, kRamRead, kRamWrite };
    Kind kind = kReg1;
    std::int32_t comp = -1;      // design component index (commit order key)
    std::int32_t clock = 0;
    std::int32_t out_wire = -1;
    std::int32_t out_off = 0;
    std::int32_t out_words = 0;
    std::int32_t d_off = -1;     // D / write-data word offset
    std::int32_t en_off = -1;    // enable / we offset; -1 = always enabled
    std::int32_t rst_off = -1;   // sync reset offset; -1 = none
    std::int32_t addr_off = -1;  // RAM port address offset
    std::int32_t ram = -1;
    const std::uint64_t* init = nullptr;  // register reset/init words
  };

  void decode_tape();
  void build_seq_tape();
  void execute_region(std::int32_t r);
  void mark_region(std::int32_t r);
  void mark_seq(std::int32_t s);

  Simulator& sim_;
  RegionPlan plan_;
  std::vector<TOp> code_;                  // superop blocks, kEnd-terminated
  std::vector<std::int32_t> code_begin_;   // region -> first TOp
  // Last value each region output propagated; diffing against it is the
  // single change check that replaces per-op change propagation.
  std::vector<std::uint64_t> shadow_;

  // Region worklist (mirrors the per-op level_queue_).
  std::vector<std::vector<std::int32_t>> buckets_;  // by region level
  std::vector<std::uint8_t> region_queued_;
  std::int64_t dirty_regions_ = 0;

  // Sequential edge tape.
  std::vector<SeqOp> seq_ops_;
  std::vector<std::vector<std::int32_t>> seq_dirty_;  // per clock domain
  std::vector<std::uint8_t> seq_queued_;
  std::vector<std::int32_t> seq_fan_begin_;  // wire -> consuming SeqOps CSR
  std::vector<std::int32_t> seq_fan_ops_;
  std::vector<std::vector<std::int32_t>> ram_readers_;  // ram -> SeqOp ids
  // Commit scratch (kept here so commits stay allocation-free).
  std::vector<std::int32_t> commit_order_;
  struct PendingWrite {
    std::int32_t ram;
    std::int64_t addr;
    std::int32_t src_off;
    std::int32_t words;
  };
  std::vector<PendingWrite> pending_writes_;
  std::vector<std::int32_t> touched_;
};

}  // namespace atlantis::chdl
